/**
 * @file
 * Tests for the deterministic fault-injection subsystem: golden seeded
 * fault streams per FaultRegistry key (pure-function corruption of the
 * synthetic audit blocks), FaultPlane determinism and its side-effect
 * free peek protocol, health-monitor blacklist convergence onto spares,
 * fault.* / service.shed config-text and builder wiring with eager
 * registry validation, shed-policy admission behaviour, DS_LOCKSTEP
 * bit-identity across all nine design presets with faults active, and
 * FaultReport / WorkloadResult JSON round trips.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "drstrange.h"
#include "fault/fault_plane.h"
#include "fault/fault_registry.h"
#include "service/shed_policy.h"
#include "sim/lockstep.h"

using namespace dstrange;

namespace {

fault::FaultConfig
faultedConfig(const std::string &models)
{
    fault::FaultConfig fc;
    fc.models = models;
    fc.cellsPerChannel = 16;
    fc.weakCells = 4;
    fc.stuckRows = 2;
    fc.spareCells = 8;
    return fc;
}

/** A service cell with fault injection underneath it. */
sim::SimConfig
faultyServiceConfig(const std::string &models, bool monitor = true)
{
    sim::SimConfig cfg;
    cfg.service.enabled = true;
    cfg.service.offeredMbps = 2560.0;
    cfg.service.durationCycles = 10000;
    cfg.service.sloTargetCycles = 500;
    cfg.fault.models = models;
    cfg.fault.monitor = monitor;
    return cfg;
}

workloads::WorkloadSpec
serviceSpec()
{
    workloads::WorkloadSpec spec;
    spec.name = "svc";
    spec.rngThroughputMbps = 0.0;
    return spec;
}

// ---------------------------------------------------------------------
// Registry and golden seeded fault streams.
// ---------------------------------------------------------------------

TEST(FaultRegistry, BuiltinsRegistered)
{
    auto &reg = fault::FaultRegistry::instance();
    for (const char *key :
         {"bitflip", "weak-cell", "stuck-row", "outage"})
        EXPECT_TRUE(reg.contains(key)) << key;
    const auto keys = reg.keys();
    EXPECT_GE(keys.size(), 4u);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(FaultRegistry, UnknownKeyNamesRegisteredOnes)
{
    try {
        fault::FaultRegistry::instance().make("cosmic-ray",
                                              fault::FaultConfig{});
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("cosmic-ray"), std::string::npos);
        EXPECT_NE(msg.find("bitflip"), std::string::npos);
        EXPECT_NE(msg.find("stuck-row"), std::string::npos);
    }
}

TEST(FaultRegistry, RejectsBadKeys)
{
    auto factory = [](const fault::FaultConfig &)
        -> std::unique_ptr<fault::FaultModel> { return nullptr; };
    auto &reg = fault::FaultRegistry::instance();
    EXPECT_THROW(reg.add("", factory), std::invalid_argument);
    EXPECT_THROW(reg.add("a,b", factory), std::invalid_argument);
    EXPECT_THROW(reg.add("has space", factory), std::invalid_argument);
    EXPECT_THROW(reg.add("bitflip", factory), std::invalid_argument);
}

TEST(FaultModels, HealthyBlockIsPureAndVaries)
{
    fault::RoundContext ctx;
    ctx.seed = 7;
    ctx.channel = 1;
    ctx.cell = 3;
    ctx.use = 11;
    const fault::AuditBlock a = fault::healthyBlock(ctx);
    EXPECT_EQ(a, fault::healthyBlock(ctx));
    ctx.use = 12;
    EXPECT_NE(a, fault::healthyBlock(ctx));
    ctx.use = 11;
    ctx.cell = 4;
    EXPECT_NE(a, fault::healthyBlock(ctx));
}

/** Same seed, same context -> bit-identical corruption, every model. */
TEST(FaultModels, GoldenStreamsAreDeterministic)
{
    const fault::FaultConfig fc = faultedConfig("unused");
    for (const char *key : {"bitflip", "weak-cell", "stuck-row"}) {
        auto m1 = fault::FaultRegistry::instance().make(key, fc);
        auto m2 = fault::FaultRegistry::instance().make(key, fc);
        for (std::uint64_t use = 0; use < 64; ++use) {
            fault::RoundContext ctx;
            ctx.seed = fc.seed;
            ctx.channel = 0;
            ctx.cell = 2;
            ctx.use = use;
            ctx.cls = key == std::string("stuck-row")
                          ? fault::CellClass::Stuck
                          : fault::CellClass::Weak;
            ctx.severity = fc.weakSeverity;
            fault::AuditBlock b1 = fault::healthyBlock(ctx);
            fault::AuditBlock b2 = b1;
            const std::uint64_t f1 = m1->corrupt(b1, ctx);
            const std::uint64_t f2 = m2->corrupt(b2, ctx);
            EXPECT_EQ(b1, b2) << key << " use " << use;
            EXPECT_EQ(f1, f2) << key << " use " << use;
        }
    }
}

TEST(FaultModels, BitflipFlipsSilently)
{
    fault::FaultConfig fc = faultedConfig("bitflip");
    fc.bitflipRate = 8.0; // dense enough to observe on a few rounds
    auto m = fault::FaultRegistry::instance().make("bitflip", fc);
    std::uint64_t total = 0;
    for (std::uint64_t use = 0; use < 32; ++use) {
        fault::RoundContext ctx;
        ctx.seed = fc.seed;
        ctx.cell = 1;
        ctx.use = use;
        fault::AuditBlock b = fault::healthyBlock(ctx);
        const fault::AuditBlock before = b;
        const std::uint64_t flips = m->corrupt(b, ctx);
        total += flips;
        // The reported flip count matches the actual Hamming distance.
        std::uint64_t hamming = 0;
        for (std::size_t i = 0; i < b.size(); ++i)
            hamming += static_cast<std::uint64_t>(
                __builtin_popcount(b[i] ^ before[i]));
        EXPECT_EQ(flips, hamming);
    }
    EXPECT_GT(total, 0u);
}

TEST(FaultModels, StuckRowPinsTheBlock)
{
    const fault::FaultConfig fc = faultedConfig("stuck-row");
    auto m = fault::FaultRegistry::instance().make("stuck-row", fc);
    fault::RoundContext ctx;
    ctx.seed = fc.seed;
    ctx.cell = 5;
    ctx.cls = fault::CellClass::Stuck;
    fault::AuditBlock b = fault::healthyBlock(ctx);
    EXPECT_EQ(m->corrupt(b, ctx), 0u); // caught by audit, not silent
    // All bytes pinned to the same all-zeros/all-ones value.
    for (const std::uint8_t byte : b)
        EXPECT_EQ(byte, b[0]);
    EXPECT_TRUE(b[0] == 0x00 || b[0] == 0xff);
}

// ---------------------------------------------------------------------
// FaultPlane: determinism, peek protocol, blacklist convergence.
// ---------------------------------------------------------------------

TEST(FaultPlane, RoundStreamIsDeterministic)
{
    const fault::FaultConfig fc =
        faultedConfig("bitflip,weak-cell,stuck-row");
    fault::FaultPlane a(fc, 2), b(fc, 2);
    for (int i = 0; i < 2000; ++i) {
        const unsigned ch = static_cast<unsigned>(i % 2);
        EXPECT_EQ(a.onRound(ch, i % 3 == 0), b.onRound(ch, i % 3 == 0));
    }
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    const fault::FaultReport &r = a.stats();
    EXPECT_EQ(r.roundsDiscarded,
              r.discardsStuck + r.discardsWeak + r.discardsOther);
    EXPECT_GT(r.roundsAudited, 0u);
    EXPECT_GT(r.roundsDiscarded, 0u);
}

TEST(FaultPlane, PeekMatchesCommitWithoutMutating)
{
    const fault::FaultConfig fc =
        faultedConfig("bitflip,weak-cell,stuck-row");
    fault::FaultPlane plane(fc, 1);
    fault::FaultPlane mirror(fc, 1);
    for (int span = 0; span < 200; ++span) {
        // Peek a run of rounds, then verify the tick path agrees.
        const std::string before = plane.fingerprint();
        plane.beginPeek();
        std::vector<bool> peeked;
        for (int i = 0; i < 5; ++i)
            peeked.push_back(plane.peekRound(0));
        EXPECT_EQ(plane.fingerprint(), before) << "peek mutated state";
        for (const bool pass : peeked) {
            EXPECT_EQ(plane.onRound(0, false), pass);
            // commitRound() must replay passing rounds identically.
            if (pass)
                mirror.commitRound(0);
            else
                mirror.onRound(0, false);
        }
        EXPECT_EQ(plane.fingerprint(), mirror.fingerprint());
    }
}

TEST(FaultPlane, MonitorBlacklistsAndConverges)
{
    fault::FaultConfig fc = faultedConfig("weak-cell,stuck-row");
    fc.weakSeverity = 1; // weak cells always fail: fast convergence
    fault::FaultPlane plane(fc, 1);
    EXPECT_EQ(plane.faultyActive(0), fc.weakCells + fc.stuckRows);
    EXPECT_EQ(plane.sparesLeft(0), fc.spareCells);
    for (int i = 0; i < 20000 && plane.faultyActive(0) > 0; ++i)
        plane.onRound(0, false);
    // Every faulty cell ends up blacklisted and remapped to a spare.
    EXPECT_EQ(plane.faultyActive(0), 0u);
    const fault::FaultReport &r = plane.stats();
    EXPECT_EQ(r.blacklisted, fc.weakCells + fc.stuckRows);
    EXPECT_EQ(r.remapped, r.blacklisted); // spares covered them all
    EXPECT_EQ(plane.sparesLeft(0),
              fc.spareCells - static_cast<unsigned>(r.remapped));
    // A converged plane discards only via healthy false alarms.
    const std::uint64_t discarded = r.roundsDiscarded;
    const std::uint64_t other = r.discardsOther;
    for (int i = 0; i < 2000; ++i)
        plane.onRound(0, false);
    EXPECT_EQ(plane.stats().roundsDiscarded - discarded,
              plane.stats().discardsOther - other);
}

TEST(FaultPlane, MonitorOffNeverMitigates)
{
    fault::FaultConfig fc = faultedConfig("weak-cell,stuck-row");
    fc.monitor = false;
    fault::FaultPlane plane(fc, 1);
    for (int i = 0; i < 5000; ++i)
        plane.onRound(0, true);
    EXPECT_EQ(plane.stats().blacklisted, 0u);
    EXPECT_EQ(plane.stats().remapped, 0u);
    EXPECT_EQ(plane.faultyActive(0), fc.weakCells + fc.stuckRows);
    EXPECT_GT(plane.stats().roundsDiscarded, 0u);
}

TEST(FaultPlane, RetryLimitForcesBlacklistUnderDemand)
{
    fault::FaultConfig fc = faultedConfig("stuck-row");
    // An all-stuck pool: the rotation cannot reach a passing cell, so
    // only the retry escalation (consecutive discards while demand
    // waits) can recover the channel.
    fc.cellsPerChannel = 4;
    fc.stuckRows = 4;
    fc.blacklistThreshold = 1000000; // never via the failure counter
    // A passing round resets the consecutive-discard counter, so once
    // the first spare is swapped in, runs longer than 1 stop happening;
    // retryLimit=1 keeps the escalation deterministic.
    fc.retryLimit = 1;
    fault::FaultPlane plane(fc, 1);
    for (int i = 0; i < 5000 && plane.stats().forcedBlacklists <
                                    fc.stuckRows;
         ++i)
        plane.onRound(0, true); // demand waiting arms the escalation
    EXPECT_EQ(plane.stats().forcedBlacklists, fc.stuckRows);
    EXPECT_EQ(plane.faultyActive(0), 0u);
}

// ---------------------------------------------------------------------
// Config text, builder, and CLI-visible validation.
// ---------------------------------------------------------------------

TEST(FaultConfigText, RoundTripsThroughCanonicalText)
{
    sim::SimConfig cfg;
    cfg.fault.models = "bitflip,weak-cell";
    cfg.fault.seed = 99;
    cfg.fault.bitflipRate = 0.5;
    cfg.fault.cellsPerChannel = 32;
    cfg.fault.weakCells = 6;
    cfg.fault.weakSeverity = 2;
    cfg.fault.driftInterval = 500;
    cfg.fault.stuckRows = 3;
    cfg.fault.spareCells = 4;
    cfg.fault.blacklistThreshold = 5;
    cfg.fault.retryLimit = 2;
    cfg.fault.monitor = false;
    cfg.fault.outagePeriod = 4000;
    cfg.fault.outageDuration = 250;
    cfg.fault.outageScope = "rank";
    cfg.service.shed = "shed-tail";
    cfg.service.shedLimit = 64;
    const std::string text = sim::serializeConfig(cfg);
    sim::SimConfig back;
    sim::applyConfigText(back, text);
    EXPECT_EQ(sim::serializeConfig(back), text);
    EXPECT_EQ(back.fault.models, "bitflip,weak-cell");
    EXPECT_EQ(back.fault.seed, 99u);
    EXPECT_FALSE(back.fault.monitor);
    EXPECT_EQ(back.fault.outageScope, "rank");
    EXPECT_EQ(back.service.shed, "shed-tail");
    EXPECT_EQ(back.service.shedLimit, 64u);
}

TEST(FaultConfigText, InvalidKeysFailEagerlyNamingValidOnes)
{
    sim::SimConfig cfg;
    try {
        sim::applyConfigText(cfg, "fault.mdoels=bitflip");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("fault.mdoels"), std::string::npos);
        EXPECT_NE(msg.find("models"), std::string::npos);
        EXPECT_NE(msg.find("retry-limit"), std::string::npos);
    }
    // Unknown model / shed keys name the registered alternatives.
    try {
        sim::applyConfigText(cfg, "fault.models=bitflip,gamma-ray");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("gamma-ray"), std::string::npos);
        EXPECT_NE(msg.find("weak-cell"), std::string::npos);
    }
    try {
        sim::applyConfigText(cfg, "service.shed=shed-everything");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("shed-everything"), std::string::npos);
        EXPECT_NE(msg.find("shed-tail"), std::string::npos);
    }
    EXPECT_THROW(sim::applyConfigText(cfg, "fault.outage-scope=bank"),
                 std::invalid_argument);
}

TEST(FaultBuilder, SettersValidateAndRoundTrip)
{
    sim::SimulationBuilder b;
    b.faultModels("bitflip,stuck-row")
        .faultSeed(7)
        .faultBitflipRate(0.1)
        .faultWeakCells(2)
        .faultStuckRows(1)
        .faultSpares(3)
        .faultMonitor(false)
        .faultOutagePeriod(1000)
        .faultOutageDuration(100)
        .faultOutageScope("rank")
        .serviceShedPolicy("shed-priority")
        .serviceShedLimit(32);
    EXPECT_EQ(b.config().fault.models, "bitflip,stuck-row");
    EXPECT_EQ(b.config().service.shed, "shed-priority");
    const std::string text = b.toText();
    EXPECT_EQ(sim::SimulationBuilder::fromText(text).toText(), text);

    EXPECT_THROW(sim::SimulationBuilder().faultModels("bitflip,nope"),
                 std::out_of_range);
    EXPECT_THROW(sim::SimulationBuilder().faultOutageScope("bank"),
                 std::out_of_range);
    EXPECT_THROW(sim::SimulationBuilder().serviceShedPolicy("nope"),
                 std::out_of_range);
}

// ---------------------------------------------------------------------
// Shed policies.
// ---------------------------------------------------------------------

TEST(ShedPolicy, BuiltinsRegisteredAndDeterministic)
{
    auto &reg = service::ShedRegistry::instance();
    for (const char *key : {"shed-none", "shed-tail", "shed-priority"})
        EXPECT_TRUE(reg.contains(key)) << key;
    EXPECT_THROW(reg.make("nope", service::ShedContext{}),
                 std::out_of_range);

    service::ShedContext ctx;
    ctx.seed = 42;
    ctx.limit = 16;
    for (const char *key : {"shed-none", "shed-tail", "shed-priority"}) {
        auto p1 = reg.make(key, ctx);
        auto p2 = reg.make(key, ctx);
        for (std::uint64_t i = 0; i < 200; ++i)
            EXPECT_EQ(p1->admit(i, i % 24), p2->admit(i, i % 24))
                << key << " arrival " << i;
    }
}

TEST(ShedPolicy, TailShedsOnlyAtTheLimit)
{
    service::ShedContext ctx;
    ctx.limit = 8;
    auto none = service::ShedRegistry::instance().make("shed-none", ctx);
    auto tail = service::ShedRegistry::instance().make("shed-tail", ctx);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_TRUE(none->admit(i, 1000));
        EXPECT_TRUE(tail->admit(i, ctx.limit - 1));
        EXPECT_FALSE(tail->admit(i, ctx.limit));
    }
}

TEST(ShedPolicy, ServiceRunShedsUnderOverload)
{
    sim::SimConfig cfg;
    cfg.service.enabled = true;
    cfg.service.offeredMbps = 20480.0; // far past saturation
    cfg.service.durationCycles = 10000;
    cfg.service.sloTargetCycles = 500;
    cfg.service.shed = "shed-tail";
    sim::Runner runner(cfg);
    const auto shed_run = runner.run(cfg, serviceSpec());
    ASSERT_TRUE(shed_run.service.has_value());
    EXPECT_EQ(shed_run.service->shedPolicy, "shed-tail");
    EXPECT_GT(shed_run.service->shed, 0u);
    EXPECT_GT(shed_run.service->pctShed, 0.0);

    cfg.service.shed = "shed-none";
    const auto keep_run = runner.run(cfg, serviceSpec());
    ASSERT_TRUE(keep_run.service.has_value());
    EXPECT_EQ(keep_run.service->shed, 0u);
    // Shedding is graceful degradation: strictly better tail latency
    // than admitting everything into a diverging backlog.
    EXPECT_LT(shed_run.service->p99, keep_run.service->p99);
    EXPECT_LT(shed_run.service->maxBacklog, keep_run.service->maxBacklog);
}

// ---------------------------------------------------------------------
// End-to-end: Runner cells, lockstep across presets, JSON round trips.
// ---------------------------------------------------------------------

TEST(FaultRun, ReportsAndRerunsBitIdentically)
{
    const sim::SimConfig cfg =
        faultyServiceConfig("bitflip,weak-cell,stuck-row");
    sim::Runner runner(cfg);
    const auto a = runner.run(cfg, serviceSpec());
    ASSERT_TRUE(a.fault.has_value());
    EXPECT_EQ(a.fault->models, "bitflip,weak-cell,stuck-row");
    EXPECT_TRUE(a.fault->monitor);
    EXPECT_GT(a.fault->roundsAudited, 0u);
    const auto b = runner.run(cfg, serviceSpec());
    EXPECT_EQ(sim::serializeWorkloadResult(a),
              sim::serializeWorkloadResult(b));

    // A fault-free run omits the report entirely.
    const auto clean =
        runner.run(faultyServiceConfig(""), serviceSpec());
    EXPECT_FALSE(clean.fault.has_value());
}

TEST(FaultRun, MitigationBeatsNoMitigation)
{
    // Heavy enough load and fault population that unmitigated discards
    // visibly cost goodput (mirrors bench/fault_resilience).
    sim::SimConfig mit = faultyServiceConfig("weak-cell,stuck-row");
    mit.service.offeredMbps = 5120.0;
    mit.service.durationCycles = 20000;
    mit.fault.weakCells = 16;
    mit.fault.stuckRows = 4;
    sim::SimConfig nomit = mit;
    nomit.fault.monitor = false;
    sim::Runner runner(mit);
    const auto with = runner.run(mit, serviceSpec());
    const auto without = runner.run(nomit, serviceSpec());
    ASSERT_TRUE(with.service.has_value());
    ASSERT_TRUE(without.service.has_value());
    EXPECT_GT(with.service->goodputRps, without.service->goodputRps);
    EXPECT_LT(with.fault->roundsDiscarded,
              without.fault->roundsDiscarded);
    EXPECT_GT(with.fault->blacklisted, 0u);
    EXPECT_EQ(without.fault->blacklisted, 0u);
}

TEST(FaultLockstep, AllPresetsWithFaultsActive)
{
#ifdef _WIN32
    _putenv_s("DS_LOCKSTEP", "1");
#else
    setenv("DS_LOCKSTEP", "1", 1);
#endif
    // verifyLockstep (driven by the Runner) throws on any fast-forward
    // divergence; faults make every audit failure a span-ending event.
    for (sim::SystemDesign d : sim::kAllDesigns) {
        sim::SimConfig cfg = sim::designConfig(d);
        cfg.service.enabled = true;
        cfg.service.offeredMbps = 1280.0;
        cfg.service.durationCycles = 6000;
        cfg.service.sloTargetCycles = 500;
        cfg.fault.models = "bitflip,weak-cell,stuck-row";
        cfg.fault.cellsPerChannel = 16;
        sim::Runner runner(cfg);
        EXPECT_NO_THROW(runner.run(cfg, serviceSpec()))
            << sim::designKey(d);
    }
#ifdef _WIN32
    _putenv_s("DS_LOCKSTEP", "");
#else
    unsetenv("DS_LOCKSTEP");
#endif
}

TEST(FaultLockstep, OutageDecoratorIsBitIdentical)
{
#ifdef _WIN32
    _putenv_s("DS_LOCKSTEP", "1");
#else
    setenv("DS_LOCKSTEP", "1", 1);
#endif
    for (const char *scope : {"channel", "rank"}) {
        sim::SimConfig cfg = faultyServiceConfig("outage");
        cfg.fault.outagePeriod = 2000;
        cfg.fault.outageDuration = 150;
        cfg.fault.outageScope = scope;
        sim::Runner runner(cfg);
        EXPECT_NO_THROW(runner.run(cfg, serviceSpec())) << scope;
    }
#ifdef _WIN32
    _putenv_s("DS_LOCKSTEP", "");
#else
    unsetenv("DS_LOCKSTEP");
#endif
}

TEST(FaultReportJson, RoundTripIsBitExact)
{
    const sim::SimConfig cfg =
        faultyServiceConfig("bitflip,weak-cell,stuck-row");
    sim::Runner runner(cfg);
    const auto res = runner.run(cfg, serviceSpec());
    ASSERT_TRUE(res.fault.has_value());

    JsonWriter w;
    res.fault->writeJson(w);
    const fault::FaultReport back =
        fault::FaultReport::fromJson(JsonValue::parse(w.str()));
    JsonWriter w2;
    back.writeJson(w2);
    EXPECT_EQ(w.str(), w2.str());
    EXPECT_EQ(back.roundsDiscarded, res.fault->roundsDiscarded);
    EXPECT_EQ(back.blacklisted, res.fault->blacklisted);

    // The WorkloadResult serialization carries the fault report too.
    const std::string text = sim::serializeWorkloadResult(res);
    const auto parsed = sim::parseWorkloadResult(text);
    ASSERT_TRUE(parsed.fault.has_value());
    EXPECT_EQ(sim::serializeWorkloadResult(parsed), text);
}

} // namespace
