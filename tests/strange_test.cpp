/**
 * @file
 * Tests for the DR-STRaNGe mechanisms: the random number buffer and the
 * two DRAM idleness predictors.
 */

#include <gtest/gtest.h>

#include "strange/random_buffer.h"
#include "strange/rl_predictor.h"
#include "strange/simple_predictor.h"

using namespace dstrange;
using namespace dstrange::strange;

TEST(RandomNumberBuffer, DepositAndServeAccounting)
{
    RandomNumberBuffer buf(2); // 128 bits
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.canServe64());
    EXPECT_DOUBLE_EQ(buf.deposit(64.0), 64.0);
    EXPECT_TRUE(buf.canServe64());
    buf.serve64();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.servedCount(), 1u);
    EXPECT_DOUBLE_EQ(buf.totalDeposited(), 64.0);
}

TEST(RandomNumberBuffer, OverflowIsDiscarded)
{
    RandomNumberBuffer buf(1); // 64 bits
    EXPECT_DOUBLE_EQ(buf.deposit(100.0), 64.0);
    EXPECT_TRUE(buf.full());
    EXPECT_DOUBLE_EQ(buf.deposit(8.0), 0.0);
    EXPECT_DOUBLE_EQ(buf.totalOverflowed(), 44.0);
}

TEST(RandomNumberBuffer, FractionalBitsAccumulate)
{
    RandomNumberBuffer buf(1);
    for (int i = 0; i < 128; ++i)
        buf.deposit(0.5);
    EXPECT_TRUE(buf.canServe64());
}

TEST(RandomNumberBuffer, ZeroEntryBufferNeverServes)
{
    RandomNumberBuffer buf(0);
    EXPECT_DOUBLE_EQ(buf.deposit(64.0), 0.0);
    EXPECT_FALSE(buf.canServe64());
    EXPECT_TRUE(buf.full());
}

class SimplePredictorTest : public ::testing::Test
{
  protected:
    SimpleIdlenessPredictor::Config cfg{};
    SimpleIdlenessPredictor pred{cfg};
    static constexpr Addr kAddr = 0x1000;
};

TEST_F(SimplePredictorTest, StartsWeaklyLong)
{
    EXPECT_TRUE(pred.predictLong(kAddr));
    EXPECT_EQ(pred.counterValue(kAddr), 2u);
}

TEST_F(SimplePredictorTest, LearnsShortAfterOneShortPeriod)
{
    pred.periodEnded(kAddr, 1);
    EXPECT_EQ(pred.counterValue(kAddr), 1u);
    EXPECT_FALSE(pred.predictLong(kAddr));
}

TEST_F(SimplePredictorTest, CounterSaturatesAtThreeAndZero)
{
    for (int i = 0; i < 10; ++i)
        pred.periodEnded(kAddr, cfg.periodThreshold + 5);
    EXPECT_EQ(pred.counterValue(kAddr), 3u);
    for (int i = 0; i < 10; ++i)
        pred.periodEnded(kAddr, 1);
    EXPECT_EQ(pred.counterValue(kAddr), 0u);
}

TEST_F(SimplePredictorTest, HysteresisRequiresTwoShortsToFlip)
{
    for (int i = 0; i < 4; ++i)
        pred.periodEnded(kAddr, cfg.periodThreshold); // saturate at 3
    pred.periodEnded(kAddr, 1);                       // counter -> 2
    EXPECT_TRUE(pred.predictLong(kAddr));
    pred.periodEnded(kAddr, 1); // counter -> 1
    EXPECT_FALSE(pred.predictLong(kAddr));
}

TEST_F(SimplePredictorTest, AccuracyTracksOutcomes)
{
    // Prediction long (initial), outcome long: correct.
    pred.predictLong(kAddr);
    pred.periodEnded(kAddr, cfg.periodThreshold);
    // Train to short, then predict short, outcome long: false negative.
    pred.periodEnded(kAddr, 1);
    pred.periodEnded(kAddr, 1);
    pred.predictLong(kAddr);
    pred.periodEnded(kAddr, cfg.periodThreshold);
    const PredictorStats &s = pred.stats();
    EXPECT_EQ(s.predictions, 2u);
    EXPECT_EQ(s.correct, 1u);
    EXPECT_EQ(s.falsePositives, 0u);
    EXPECT_EQ(s.falseNegatives, 1u);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.5);
}

TEST_F(SimplePredictorTest, PeekDoesNotRegisterAPrediction)
{
    pred.peekLong(kAddr);
    pred.periodEnded(kAddr, 100);
    EXPECT_EQ(pred.stats().predictions, 0u);
}

TEST_F(SimplePredictorTest, TrainingWithoutPredictionIsUnscored)
{
    pred.periodEnded(kAddr, 100);
    pred.periodEnded(kAddr, 1);
    EXPECT_EQ(pred.stats().predictions, 0u);
}

TEST_F(SimplePredictorTest, DistinctRegionsUseDistinctCounters)
{
    // The table is indexed at 4 MB region granularity; addresses in
    // different regions train independent counters.
    const Addr other = Addr(5) << 22;
    pred.periodEnded(kAddr, 1);
    pred.periodEnded(kAddr, 1);
    EXPECT_FALSE(pred.predictLong(kAddr));
    EXPECT_TRUE(pred.predictLong(other));
}

TEST_F(SimplePredictorTest, SameRegionSharesACounter)
{
    const Addr nearby = kAddr + 64 * 1024; // same 4 MB region
    pred.periodEnded(kAddr, 1);
    pred.periodEnded(kAddr, 1);
    EXPECT_FALSE(pred.predictLong(nearby));
}

class RlPredictorTest : public ::testing::Test
{
  protected:
    RlIdlenessPredictor::Config cfg{};
    static constexpr Addr kAddr = 0x40;
};

TEST_F(RlPredictorTest, LearnsToGenerateUnderAllLongPeriods)
{
    RlIdlenessPredictor pred(cfg);
    for (int i = 0; i < 400; ++i) {
        pred.predictLong(kAddr);
        pred.periodEnded(kAddr, cfg.periodThreshold + 10);
    }
    // After convergence the agent should predict long almost always.
    int generate = 0;
    for (int i = 0; i < 100; ++i) {
        if (pred.predictLong(kAddr))
            ++generate;
        pred.periodEnded(kAddr, cfg.periodThreshold + 10);
    }
    EXPECT_GE(generate, 90);
    EXPECT_GT(pred.stats().accuracy(), 0.8);
}

TEST_F(RlPredictorTest, LearnsToWaitUnderAllShortPeriods)
{
    RlIdlenessPredictor pred(cfg);
    for (int i = 0; i < 400; ++i) {
        pred.predictLong(kAddr);
        pred.periodEnded(kAddr, 1);
    }
    int generate = 0;
    for (int i = 0; i < 100; ++i) {
        if (pred.predictLong(kAddr))
            ++generate;
        pred.periodEnded(kAddr, 1);
    }
    EXPECT_LE(generate, 10);
}

TEST_F(RlPredictorTest, QValueUpdateFollowsLearningRule)
{
    RlIdlenessPredictor::Config c = cfg;
    c.epsilon = 0.0; // deterministic
    c.alpha = 0.5;
    RlIdlenessPredictor pred(c);
    // Force one observed (state, action, reward) transition.
    const bool action = pred.predictLong(kAddr);
    pred.periodEnded(kAddr, c.periodThreshold + 1); // long
    // Q(s,a) = (1-alpha)*0 + alpha*r, r = +1 if generate else -0.5 (FN).
    const double expected = action ? 0.5 * c.rewardCorrectGenerate
                                   : 0.5 * c.penaltyFalseNegative;
    // The state used at prediction time had empty history (0): the
    // high-order address bits, mixed (see rl_predictor.cpp).
    const unsigned state = static_cast<unsigned>(
        mix64(kAddr >> 22) & ((1u << c.stateBits) - 1));
    EXPECT_DOUBLE_EQ(pred.qValue(state, action), expected);
}

TEST_F(RlPredictorTest, HistoryShiftsLongShortBits)
{
    RlIdlenessPredictor pred(cfg);
    pred.periodEnded(kAddr, cfg.periodThreshold); // long -> 1
    pred.periodEnded(kAddr, 1);                   // short -> 0
    pred.periodEnded(kAddr, cfg.periodThreshold); // long -> 1
    EXPECT_EQ(pred.history(), 0b101u);
}

TEST_F(RlPredictorTest, DeterministicForSameSeed)
{
    RlIdlenessPredictor a(cfg), b(cfg);
    for (int i = 0; i < 200; ++i) {
        const Addr addr = (i % 7) * kLineBytes;
        ASSERT_EQ(a.predictLong(addr), b.predictLong(addr));
        const Cycle len = (i % 3 == 0) ? 100 : 2;
        a.periodEnded(addr, len);
        b.periodEnded(addr, len);
    }
}

TEST_F(RlPredictorTest, PeekIsSideEffectFree)
{
    RlIdlenessPredictor pred(cfg);
    pred.peekLong(kAddr);
    pred.periodEnded(kAddr, 100);
    EXPECT_EQ(pred.stats().predictions, 0u);
}
