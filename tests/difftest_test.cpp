/**
 * @file
 * Randomized differential-testing harness for the three time-advance
 * strategies: step-1 (every bus cycle ticked), fast-forward (event
 * horizons + span skips), and batch mode (fast-forward + batched
 * command retirement / controller-only drains). For every randomly
 * drawn configuration and workload the three runs must produce
 * bit-identical full-statistics fingerprints (the DS_LOCKSTEP
 * invariant, extended to the batch path).
 *
 * The draw space covers the full policy cross product the simulator
 * exposes: the nine design presets x scheduler / predictor overrides x
 * multi-rank geometries x address mappings x both memory backends x
 * the open-loop service layer x fault-injection knobs x mechanisms,
 * buffer shapes, priorities and power-down.
 *
 * Reproducing a failure: every mismatch prints the master seed, the
 * config index, and the canonical config text (sim/config_text.h),
 * plus the workload and a redundant service/fault summary for
 * readability. Re-running with DS_DIFFTEST_SEED=<seed> regenerates
 * the identical sequence; see docs/testing.md.
 *
 * Budget: DS_DIFFTEST_CONFIGS (default 120) random configurations,
 * time-boxed by DS_DIFFTEST_SECONDS (default 60) — the loop stops
 * early once the box is exceeded, after a minimum of 16 configs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/env_util.h"
#include "common/rng.h"
#include "drstrange.h"
#include "sim/lockstep.h"

using namespace dstrange;

namespace {

/** Deterministic draw helper over SplitMix64. */
class Draw
{
  public:
    explicit Draw(std::uint64_t seed) : gen(seed) {}

    /** Uniform integer in [0, n). */
    std::uint64_t
    below(std::uint64_t n)
    {
        return gen.next() % n;
    }

    /** true with probability num/den. */
    bool
    chance(unsigned num, unsigned den)
    {
        return below(den) < num;
    }

    template <typename T>
    T
    pick(const std::vector<T> &options)
    {
        return options[static_cast<std::size_t>(below(options.size()))];
    }

  private:
    SplitMix64 gen;
};

/** One randomly drawn scenario: a configuration plus its workload. */
struct Scenario
{
    sim::SimConfig cfg;
    std::vector<std::string> apps; ///< Non-RNG synthetic traces.
    double rngMbps = 0.0;          ///< RNG benchmark rate (0 = none).
};

Scenario
drawScenario(std::uint64_t seed)
{
    Draw d(seed);
    Scenario s;
    sim::SimConfig &cfg = s.cfg;

    // Design preset, then orthogonal-knob overrides on top of it — the
    // construction path composes knobs, so overridden presets are valid
    // configurations in their own right.
    sim::applyDesign(cfg,
                     sim::kAllDesigns[d.below(sim::kAllDesigns.size())]);
    if (d.chance(1, 4))
        cfg.scheduler =
            d.pick<std::string>({"fr-fcfs", "fr-fcfs-cap", "bliss"});
    if (d.chance(1, 4))
        cfg.predictor = d.pick<std::string>({"none", "simple", "rl"});

    cfg.geometry.channels = d.pick<unsigned>({1, 2, 4});
    cfg.geometry.ranksPerChannel = d.pick<unsigned>({1, 1, 2});
    cfg.addressMapping = d.pick<std::string>(
        {"row-bank-col-ch", "row-bank-col-rank-ch", "permute-bank"});
    cfg.backend = d.chance(1, 4) ? "fixed-latency" : "ddr4";

    if (d.chance(1, 3))
        cfg.mechanism = *trng::TrngMechanism::byName(
            d.chance(1, 2) ? "quac" : "drange");
    cfg.bufferEntries = d.pick<unsigned>({4, 8, 16, 32});
    cfg.bufferPartitions = d.chance(1, 4) ? 2 : 0;
    if (d.chance(1, 8))
        cfg.powerDownThreshold = 200;

    // Small budgets keep each run in the low milliseconds; the safety
    // bound caps configurations that retire slowly.
    cfg.instrBudget = 1500 + d.below(5) * 1200;
    cfg.maxBusCycles = 400'000;
    cfg.seed = seed ^ 0x5eedU;

    // Workload: up to two synthetic applications plus an optional RNG
    // benchmark core.
    const auto &table = workloads::appTable();
    const unsigned n_apps = static_cast<unsigned>(d.below(3));
    for (unsigned i = 0; i < n_apps; ++i)
        s.apps.push_back(table[d.below(table.size())].name);
    if (d.chance(3, 5))
        s.rngMbps = d.pick<double>({320.0, 1280.0, 5120.0});

    // Open-loop service layer on its own port.
    if (d.chance(1, 4)) {
        cfg.service.enabled = true;
        cfg.service.arrival = d.pick<std::string>(
            {"poisson", "bursty", "diurnal", "closed-loop"});
        cfg.service.shed = d.pick<std::string>(
            {"shed-none", "shed-tail", "shed-priority"});
        cfg.service.offeredMbps = d.pick<double>({640.0, 5120.0});
        cfg.service.durationCycles = 4000 + d.below(4) * 4000;
        cfg.service.sloTargetCycles = 500;
    }

    // Fault injection.
    if (d.chance(1, 4)) {
        cfg.fault.models = d.pick<std::string>(
            {"bitflip", "bitflip,weak-cell", "weak-cell,stuck-row",
             "weak-cell,stuck-row,outage"});
        cfg.fault.seed = seed ^ 0xfau;
        cfg.fault.cellsPerChannel = 16;
        cfg.fault.weakCells = 4;
        cfg.fault.stuckRows = 1;
        cfg.fault.blacklistThreshold = 2;
        cfg.fault.monitor = d.chance(3, 4);
        if (d.chance(1, 2))
            cfg.fault.driftInterval = 40;
        if (cfg.fault.models.find("outage") != std::string::npos) {
            cfg.fault.outagePeriod = 6000;
            cfg.fault.outageDuration = 400;
            cfg.fault.outageScope =
                d.chance(1, 2) ? "channel" : "rank";
        }
    }

    // A System needs at least one request source.
    if (s.apps.empty() && s.rngMbps == 0.0 && !cfg.service.enabled)
        s.rngMbps = 1280.0;

    // Priorities over all cores (RNG core occupies the last slot).
    const unsigned n_cores =
        static_cast<unsigned>(s.apps.size()) + (s.rngMbps > 0.0 ? 1 : 0);
    if (n_cores > 0 && d.chance(1, 3)) {
        for (unsigned i = 0; i < n_cores; ++i)
            cfg.priorities.push_back(static_cast<int>(d.below(3)));
    }
    return s;
}

std::vector<std::unique_ptr<cpu::TraceSource>>
makeTraces(const Scenario &s)
{
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    CoreId core = 0;
    for (const std::string &app : s.apps) {
        traces.push_back(std::make_unique<workloads::SyntheticTrace>(
            workloads::appByName(app), s.cfg.geometry, core++,
            s.cfg.seed));
    }
    if (s.rngMbps > 0.0) {
        traces.push_back(std::make_unique<workloads::RngBenchmark>(
            s.rngMbps, s.cfg.geometry, s.cfg.seed + core));
    }
    return traces;
}

enum class Mode
{
    Step1, ///< Every bus cycle ticked.
    Ff,    ///< Fast-forward on, batch mode off.
    Batch, ///< Fast-forward + batched command retirement.
};

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Step1: return "step-1";
      case Mode::Ff:    return "fast-forward";
      case Mode::Batch: return "batch";
    }
    return "?";
}

std::string
runFingerprint(const Scenario &s, Mode mode)
{
    sim::System sys(s.cfg, makeTraces(s));
    sys.setFastForward(mode != Mode::Step1);
    sys.setBatchMode(mode == Mode::Batch);
    sys.run();
    return sim::systemFingerprint(sys);
}

/** First differing fingerprint line, for the failure message. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    while (true) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "(no differing line?)";
        if (!ga || !gb || la != lb)
            return (ga ? la : "(end)") + "  vs  " + (gb ? lb : "(end)");
    }
}

/** Everything needed to reproduce one scenario outside the harness. */
std::string
reproText(const Scenario &s, std::uint64_t master_seed,
          std::uint64_t index)
{
    std::ostringstream os;
    os << "master-seed=" << master_seed << " config-index=" << index
       << "\nconfig-text: " << sim::serializeConfig(s.cfg) << "\napps:";
    for (const std::string &a : s.apps)
        os << ' ' << a;
    os << " rng-mbps=" << s.rngMbps;
    if (s.cfg.service.enabled) {
        os << "\nservice: arrival=" << s.cfg.service.arrival
           << " shed=" << s.cfg.service.shed
           << " offered-mbps=" << s.cfg.service.offeredMbps
           << " duration=" << s.cfg.service.durationCycles;
    }
    if (s.cfg.fault.enabled()) {
        os << "\nfault: models=" << s.cfg.fault.models
           << " seed=" << s.cfg.fault.seed
           << " monitor=" << s.cfg.fault.monitor
           << " drift=" << s.cfg.fault.driftInterval
           << " outage=" << s.cfg.fault.outagePeriod << '/'
           << s.cfg.fault.outageDuration << '/'
           << s.cfg.fault.outageScope;
    }
    return os.str();
}

TEST(DiffTest, RandomizedThreeWayLockstep)
{
    const std::uint64_t master_seed = envU64("DS_DIFFTEST_SEED", 2022);
    const std::uint64_t n_configs = envU64("DS_DIFFTEST_CONFIGS", 120);
    const std::uint64_t budget_s = envU64("DS_DIFFTEST_SECONDS", 60);
    constexpr std::uint64_t kMinConfigs = 16;

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t ran = 0;
    for (std::uint64_t i = 0; i < n_configs; ++i) {
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::seconds>(std::chrono::steady_clock::now() -
                                  start);
        if (i >= kMinConfigs &&
            elapsed.count() >= static_cast<std::int64_t>(budget_s)) {
            std::printf("[difftest] time box (%llus) reached after %llu "
                        "configs\n",
                        (unsigned long long)budget_s,
                        (unsigned long long)i);
            break;
        }

        const Scenario s = drawScenario(mix64(master_seed + i));
        const std::string ref = runFingerprint(s, Mode::Step1);
        for (const Mode mode : {Mode::Ff, Mode::Batch}) {
            const std::string got = runFingerprint(s, mode);
            ASSERT_EQ(got, ref)
                << "mode " << modeName(mode)
                << " diverges from step-1\nfirst diff: "
                << firstDiff(got, ref) << '\n'
                << reproText(s, master_seed, i);
        }
        ++ran;
    }
    std::printf("[difftest] %llu configs, 3 runs each, bit-identical\n",
                (unsigned long long)ran);
}

/** Three-way fingerprint identity for one fixed scenario. */
void
expectThreeWayIdentical(const Scenario &s, const char *what)
{
    const std::string ref = runFingerprint(s, Mode::Step1);
    for (const Mode mode : {Mode::Ff, Mode::Batch}) {
        const std::string got = runFingerprint(s, mode);
        ASSERT_EQ(got, ref) << what << ": mode " << modeName(mode)
                            << " diverges\nfirst diff: "
                            << firstDiff(got, ref);
    }
}

/**
 * BLISS forced-choice under blacklisting: batch mode memoizes the
 * scheduler's forced picks, and BLISS reorders around blacklisted
 * requestors — the combination must still match the step-1 command
 * stream while the fault monitor is simultaneously retiring cells.
 */
TEST(DiffTestEdge, BlissForcedChoiceUnderBlacklisting)
{
    Scenario s;
    sim::applyDesign(s.cfg, sim::SystemDesign::BlissBaseline);
    s.cfg.scheduler = "bliss";
    s.cfg.fault.models = "bitflip,weak-cell";
    s.cfg.fault.cellsPerChannel = 16;
    s.cfg.fault.weakCells = 6;
    s.cfg.fault.blacklistThreshold = 2;
    s.cfg.fault.monitor = true;
    s.cfg.instrBudget = 6000;
    s.apps = {"mcf", "lbm"};
    s.rngMbps = 5120.0;
    expectThreeWayIdentical(s, "bliss+blacklist");

    sim::System sys(s.cfg, makeTraces(s));
    sys.setFastForward(true);
    sys.setBatchMode(true);
    sys.run();
    EXPECT_GT(sys.ffStats().drainTicks, 0u)
        << "scenario never entered the batch drain";
    ASSERT_NE(sys.mc().faultInjection(), nullptr);
    EXPECT_GT(sys.mc().faultInjection()->stats().blacklisted, 0u)
        << "monitor never blacklisted a cell; forced-choice path unhit";
}

/**
 * Batch aborts at timing fences: a two-rank DDR4 system under a
 * DR-STRaNGe design crosses refresh, tFAW, and rank-to-rank (tRTRS)
 * boundaries as well as RNG-priority fences. Every such boundary must
 * end a batched span at exactly the cycle step-1 would have stalled.
 */
TEST(DiffTestEdge, BatchAbortAtTimingBoundaries)
{
    Scenario s;
    sim::applyDesign(s.cfg, sim::SystemDesign::DrStrange);
    s.cfg.geometry.channels = 2;
    s.cfg.geometry.ranksPerChannel = 2;
    s.cfg.addressMapping = "row-bank-col-rank-ch";
    s.cfg.instrBudget = 8000;
    s.apps = {"ycsb0", "lbm"};
    s.rngMbps = 5120.0;
    expectThreeWayIdentical(s, "timing-fences");

    sim::System sys(s.cfg, makeTraces(s));
    sys.setFastForward(true);
    sys.setBatchMode(true);
    sys.run();
    // Refresh/tFAW/tRTRS stalls force the drain to re-tick: both
    // drained and normally-stepped cycles must appear.
    EXPECT_GT(sys.ffStats().drainTicks, 0u);
    EXPECT_GT(sys.ffStats().steppedCycles, 0u);
}

/**
 * Fault-plane use-count parity: the plane's rotation state (cell use
 * counts, pool pointer, spares) feeds future audit outcomes, so a
 * single use-count divergence between replayed and ticked rounds would
 * silently corrupt every later draw. Compare the plane fingerprint —
 * not just top-level stats — across all three modes.
 */
TEST(DiffTestEdge, FaultPlaneUseCountParity)
{
    Scenario s;
    sim::applyDesign(s.cfg, sim::SystemDesign::DrStrange);
    s.cfg.fault.models = "bitflip,weak-cell,stuck-row";
    s.cfg.fault.cellsPerChannel = 24;
    s.cfg.fault.weakCells = 8;
    s.cfg.fault.stuckRows = 2;
    s.cfg.fault.driftInterval = 64;
    s.cfg.instrBudget = 5000;
    s.rngMbps = 5120.0;

    std::string ref;
    for (const Mode mode : {Mode::Step1, Mode::Ff, Mode::Batch}) {
        sim::System sys(s.cfg, makeTraces(s));
        sys.setFastForward(mode != Mode::Step1);
        sys.setBatchMode(mode == Mode::Batch);
        sys.run();
        ASSERT_NE(sys.mc().faultInjection(), nullptr);
        const std::string fp = sys.mc().faultInjection()->fingerprint();
        if (mode == Mode::Step1)
            ref = fp;
        else
            EXPECT_EQ(fp, ref) << "fault-plane state diverged in "
                               << modeName(mode) << " mode";
    }
}

/**
 * Horizon caches across outage edges: outage windows flip channel
 * availability, which must invalidate the controller's memoized issue
 * horizons and the production-event memo at both edges. A run spanning
 * several outage periods must stay bit-identical and still skip spans.
 */
TEST(DiffTestEdge, HorizonCacheAcrossOutageEdges)
{
    Scenario s;
    sim::applyDesign(s.cfg, sim::SystemDesign::DrStrange);
    s.cfg.fault.models = "outage";
    s.cfg.fault.outagePeriod = 150;
    s.cfg.fault.outageDuration = 40;
    s.cfg.fault.outageScope = "channel";
    s.cfg.instrBudget = 6000;
    s.apps = {"ycsb3"};
    s.rngMbps = 1280.0;
    expectThreeWayIdentical(s, "outage-edges");

    sim::System sys(s.cfg, makeTraces(s));
    sys.setFastForward(true);
    sys.setBatchMode(true);
    sys.run();
    // The run must be long enough to cross several outage edges and the
    // fast path must still find skippable spans between them.
    EXPECT_GT(sys.busCycles(), 2 * s.cfg.fault.outagePeriod);
    EXPECT_GT(sys.ffStats().skippedCycles, 0u);
}

/**
 * A fixed spot-check that the scenario generator actually exercises
 * the batch drain: across the first configs at the default seed, batch
 * mode must take controller-only drain ticks somewhere (otherwise the
 * harness compares three identical step paths and proves nothing).
 */
TEST(DiffTest, GeneratorExercisesBatchDrain)
{
    std::uint64_t drain_ticks = 0;
    std::uint64_t skipped = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const Scenario s = drawScenario(mix64(2022 + i));
        sim::System sys(s.cfg, makeTraces(s));
        sys.setFastForward(true);
        sys.setBatchMode(true);
        sys.run();
        drain_ticks += sys.ffStats().drainTicks;
        skipped += sys.ffStats().skippedCycles;
    }
    EXPECT_GT(drain_ticks, 0u);
    EXPECT_GT(skipped, 0u);
}

} // namespace
