/**
 * @file
 * Tests for the mem::MemoryBackend seam: the BackendRegistry (built-in
 * keys, validation, user registration), the fixed-latency analytical
 * backend's timing behavior, and full-system runs over a non-default
 * backend (including fast-forward bit-identity).
 */

#include <gtest/gtest.h>

#include "api/simulation_builder.h"
#include "dram/dram_channel.h"
#include "mem/backend_registry.h"
#include "mem/fixed_latency_backend.h"
#include "mem/memory_controller.h"
#include "sim/config_text.h"
#include "sim/lockstep.h"
#include "sim/system.h"
#include "workloads/synthetic_trace.h"

using namespace dstrange;

namespace {

mem::McConfig
defaultMcConfig()
{
    return mem::McConfig{};
}

} // namespace

// ---------------------------------------------------------------------
// BackendRegistry.
// ---------------------------------------------------------------------

TEST(BackendRegistry, BuiltInKeysAreRegistered)
{
    auto &reg = mem::BackendRegistry::instance();
    EXPECT_TRUE(reg.contains("ddr4"));
    EXPECT_TRUE(reg.contains("fixed-latency"));
    const auto keys = reg.keys();
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_GE(keys.size(), 2u);
}

TEST(BackendRegistry, MakeInstantiatesTheRightModel)
{
    const dram::DramTimings timings;
    const dram::DramGeometry geometry;
    const mem::McConfig cfg = defaultMcConfig();
    const mem::BackendContext ctx{timings, geometry, cfg};

    auto ddr4 = mem::BackendRegistry::instance().make("ddr4", ctx);
    EXPECT_NE(dynamic_cast<dram::DramChannel *>(ddr4.get()), nullptr);

    auto fixed =
        mem::BackendRegistry::instance().make("fixed-latency", ctx);
    EXPECT_NE(dynamic_cast<mem::FixedLatencyBackend *>(fixed.get()),
              nullptr);
    EXPECT_EQ(fixed->numBanks(), geometry.banksPerChannel());
    EXPECT_EQ(fixed->numRanks(), geometry.ranksPerChannel);
}

TEST(BackendRegistry, UnknownKeyThrowsWithInventory)
{
    const dram::DramTimings timings;
    const dram::DramGeometry geometry;
    const mem::McConfig cfg = defaultMcConfig();
    const mem::BackendContext ctx{timings, geometry, cfg};
    try {
        mem::BackendRegistry::instance().make("no-such-backend", ctx);
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown backend"), std::string::npos);
        EXPECT_NE(msg.find("ddr4"), std::string::npos);
    }
}

TEST(BackendRegistry, RejectsInvalidAndDuplicateKeys)
{
    auto &reg = mem::BackendRegistry::instance();
    const auto factory = [](const mem::BackendContext &ctx) {
        return std::make_unique<mem::FixedLatencyBackend>(ctx.geometry,
                                                          1, 1, 1);
    };
    EXPECT_THROW(reg.add("", factory), std::invalid_argument);
    EXPECT_THROW(reg.add("Bad Key!", factory), std::invalid_argument);
    EXPECT_THROW(reg.add("ddr4", factory), std::invalid_argument);
}

TEST(BackendRegistry, UserBackendReachesTheController)
{
    auto &reg = mem::BackendRegistry::instance();
    if (!reg.contains("test-fixed")) {
        reg.add("test-fixed", [](const mem::BackendContext &ctx) {
            return std::make_unique<mem::FixedLatencyBackend>(
                ctx.geometry, 5, 5, 1);
        });
    }
    sim::SimulationBuilder b;
    b.backend("test-fixed").instrBudget(2000);
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName("soplex"), b.config().geometry, 0,
        b.config().seed));
    sim::System sys = b.buildSystem(std::move(traces));
    sys.run();
    EXPECT_TRUE(sys.allFinished());
    EXPECT_NE(
        dynamic_cast<const mem::FixedLatencyBackend *>(&sys.mc().channel(0)),
        nullptr);
}

// ---------------------------------------------------------------------
// SimulationBuilder / config text.
// ---------------------------------------------------------------------

TEST(BackendConfig, BuilderValidatesEagerly)
{
    sim::SimulationBuilder b;
    EXPECT_THROW(b.backend("no-such-backend"), std::out_of_range);
    b.backend("fixed-latency")
        .backendReadLatency(7)
        .backendWriteLatency(9)
        .backendGap(2);
    EXPECT_EQ(b.config().backend, "fixed-latency");
    EXPECT_EQ(b.config().backendReadLatency, 7u);
    EXPECT_EQ(b.config().backendWriteLatency, 9u);
    EXPECT_EQ(b.config().backendGap, 2u);
}

TEST(BackendConfig, ConfigTextRoundTrips)
{
    sim::SimConfig cfg;
    sim::applyConfigText(cfg,
                         "backend.kind=fixed-latency "
                         "backend.read-latency=11 backend.gap=3");
    EXPECT_EQ(cfg.backend, "fixed-latency");
    EXPECT_EQ(cfg.backendReadLatency, 11u);
    EXPECT_EQ(cfg.backendGap, 3u);

    const std::string text = sim::serializeConfig(cfg);
    EXPECT_NE(text.find("backend.kind=fixed-latency"),
              std::string::npos);
    sim::SimConfig back;
    sim::applyConfigText(back, text);
    EXPECT_EQ(sim::serializeConfig(back), text);
}

TEST(BackendConfig, ConfigTextRejectsUnknownBackend)
{
    sim::SimConfig cfg;
    EXPECT_THROW(sim::applyConfigText(cfg, "backend.kind=nope"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// FixedLatencyBackend timing semantics.
// ---------------------------------------------------------------------

TEST(FixedLatencyBackend, ActivateOpenReadClose)
{
    const dram::DramGeometry geometry;
    mem::FixedLatencyBackend chan(geometry, /*read=*/20, /*write=*/25,
                                  /*gap=*/4);

    // Reads need an open row; activates need a closed bank.
    EXPECT_FALSE(chan.canIssue(dram::DramCmd::Rd, 0, 10));
    EXPECT_TRUE(chan.canIssue(dram::DramCmd::Act, 0, 10));
    chan.issue(dram::DramCmd::Act, 0, 10, 42);
    EXPECT_EQ(chan.openRow(0), 42);
    EXPECT_EQ(chan.openBankCount(), 1u);

    // The command bus carries one command per cycle.
    EXPECT_FALSE(chan.canIssue(dram::DramCmd::Rd, 0, 10));
    EXPECT_TRUE(chan.canIssue(dram::DramCmd::Rd, 0, 11));
    const Cycle done = chan.issue(dram::DramCmd::Rd, 0, 11);
    EXPECT_EQ(done, 11 + 20);

    // Column gap throttles back-to-back column commands.
    EXPECT_FALSE(chan.canIssue(dram::DramCmd::Rd, 0, 12));
    EXPECT_TRUE(chan.canIssue(dram::DramCmd::Rd, 0, 11 + 4));

    chan.issue(dram::DramCmd::Pre, 0, 20);
    EXPECT_EQ(chan.openRow(0), dram::kNoOpenRow);
    EXPECT_EQ(chan.energyCounters().nAct, 1u);
    EXPECT_EQ(chan.energyCounters().nRd, 1u);
    EXPECT_EQ(chan.energyCounters().nPre, 1u);
}

TEST(FixedLatencyBackend, RngOccupancyClosesBanksAndBlocks)
{
    const dram::DramGeometry geometry;
    mem::FixedLatencyBackend chan(geometry, 20, 20, 4);
    chan.issue(dram::DramCmd::Act, 0, 0, 7);
    chan.occupyForRng(100);
    EXPECT_EQ(chan.openBankCount(), 0u);
    EXPECT_TRUE(chan.rngBusy(50));
    EXPECT_FALSE(chan.rngBusy(100));
    EXPECT_FALSE(chan.canIssue(dram::DramCmd::Act, 0, 50));
    EXPECT_TRUE(chan.canIssue(dram::DramCmd::Act, 0, 100));
}

// ---------------------------------------------------------------------
// Full-system runs over the fixed-latency backend.
// ---------------------------------------------------------------------

namespace {

sim::SimConfig
fixedLatencyConfig()
{
    sim::SimConfig cfg;
    cfg.backend = "fixed-latency";
    cfg.instrBudget = 5000;
    return cfg;
}

std::vector<std::unique_ptr<cpu::TraceSource>>
soplexTrace(const sim::SimConfig &cfg)
{
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName("soplex"), cfg.geometry, 0, cfg.seed));
    return traces;
}

} // namespace

TEST(FixedLatencyBackend, SystemRunsToCompletion)
{
    const sim::SimConfig cfg = fixedLatencyConfig();
    sim::System sys(cfg, soplexTrace(cfg));
    sys.run();
    EXPECT_TRUE(sys.allFinished());
    EXPECT_GT(sys.mc().stats().readsCompleted, 0u);
}

TEST(FixedLatencyBackend, FastForwardIsBitIdentical)
{
    const sim::SimConfig cfg = fixedLatencyConfig();
    sim::System ff(cfg, soplexTrace(cfg));
    ff.setFastForward(true);
    ff.run();
    sim::System step(cfg, soplexTrace(cfg));
    step.setFastForward(false);
    step.run();
    EXPECT_EQ(sim::systemFingerprint(ff), sim::systemFingerprint(step));
    EXPECT_GT(ff.ffStats().skippedCycles, 0u);
}
