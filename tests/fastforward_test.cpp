/**
 * @file
 * Tests for the event-driven cycle-skipping simulation core: per-
 * component event-horizon units, fast-forward batching equivalence,
 * and full-system bit-identity between the step-1 and fast-forward
 * paths — across all nine design presets, both TRNG mechanisms, and
 * randomized configurations with mixed RNG/non-RNG workloads.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "drstrange.h"
#include "dram/dram_channel.h"
#include "mem/bliss.h"
#include "mem/fr_fcfs.h"
#include "mem/rng_aware.h"
#include "sim/lockstep.h"
#include "trng/rng_engine.h"

using namespace dstrange;

namespace {

// ---------------------------------------------------------------------
// Full-system bit-identity (the DS_LOCKSTEP invariant, driven directly).
// ---------------------------------------------------------------------

std::vector<std::unique_ptr<cpu::TraceSource>>
makeTraces(const sim::SimConfig &cfg, const std::string &app, double mbps)
{
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    CoreId core = 0;
    if (!app.empty()) {
        traces.push_back(std::make_unique<workloads::SyntheticTrace>(
            workloads::appByName(app), cfg.geometry, core++, cfg.seed));
    }
    if (mbps > 0.0) {
        traces.push_back(std::make_unique<workloads::RngBenchmark>(
            mbps, cfg.geometry, cfg.seed + core));
    }
    return traces;
}

/** Run to completion with or without fast-forward; full fingerprint. */
std::string
runFingerprint(const sim::SimConfig &cfg, const std::string &app,
               double mbps, bool fast_forward)
{
    sim::System sys(cfg, makeTraces(cfg, app, mbps));
    sys.setFastForward(fast_forward);
    sys.run();
    if (fast_forward) {
        // The fast path must actually have fast-forwarded something on
        // these workloads, or the test proves nothing.
        EXPECT_GT(sys.ffStats().skippedCycles, 0u);
    }
    return sim::systemFingerprint(sys);
}

void
expectBitIdentical(const sim::SimConfig &cfg, const std::string &app,
                   double mbps, const std::string &label)
{
    const std::string fast = runFingerprint(cfg, app, mbps, true);
    const std::string ref = runFingerprint(cfg, app, mbps, false);
    EXPECT_EQ(fast, ref) << label;
}

TEST(FastForwardLockstep, AllPresetsDualWorkload)
{
    for (sim::SystemDesign d : sim::kAllDesigns) {
        sim::SimConfig cfg = sim::designConfig(d);
        cfg.instrBudget = 15000;
        expectBitIdentical(cfg, "mcf", 5120.0, sim::designKey(d));
    }
}

TEST(FastForwardLockstep, AllPresetsRngOnly)
{
    for (sim::SystemDesign d : sim::kAllDesigns) {
        sim::SimConfig cfg = sim::designConfig(d);
        cfg.instrBudget = 15000;
        expectBitIdentical(cfg, "", 640.0, sim::designKey(d));
    }
}

TEST(FastForwardLockstep, AllPresetsNonRngOnly)
{
    for (sim::SystemDesign d : sim::kAllDesigns) {
        sim::SimConfig cfg = sim::designConfig(d);
        cfg.instrBudget = 15000;
        expectBitIdentical(cfg, "gcc", 0.0, sim::designKey(d));
    }
}

TEST(FastForwardLockstep, QuacMechanismAndPartitions)
{
    for (sim::SystemDesign d :
         {sim::SystemDesign::RngOblivious, sim::SystemDesign::GreedyIdle,
          sim::SystemDesign::DrStrange}) {
        sim::SimConfig cfg = sim::designConfig(d);
        cfg.instrBudget = 15000;
        cfg.mechanism = trng::TrngMechanism::quacTrng();
        cfg.bufferPartitions = 2;
        expectBitIdentical(cfg, "libq", 2560.0, sim::designKey(d));
    }
}

TEST(FastForwardLockstep, PrioritiesAndPowerDown)
{
    sim::SimConfig cfg = sim::designConfig(sim::SystemDesign::DrStrange);
    cfg.instrBudget = 15000;
    cfg.priorities = {5, 0};
    expectBitIdentical(cfg, "gcc", 1280.0, "non-RNG prioritized");

    cfg.priorities = {0, 5};
    expectBitIdentical(cfg, "gcc", 1280.0, "RNG prioritized");

    cfg.priorities.clear();
    cfg.powerDownThreshold = 200;
    expectBitIdentical(cfg, "gcc", 320.0, "power-down");
    expectBitIdentical(cfg, "sjeng", 0.0, "power-down non-RNG");
}

TEST(FastForwardLockstep, RandomizedConfigs)
{
    // Deterministically-seeded random sampling of the configuration
    // space: all presets, both mechanisms, varying buffers, budgets,
    // intensities, and seeds.
    Xoshiro256ss gen(0x5eedf00d);
    const char *apps[] = {"mcf", "gcc", "libq", "h264ref", "gamess"};
    const double mbps_choices[] = {0.0, 320.0, 1280.0, 5120.0, 10240.0};
    const unsigned buffers[] = {1, 4, 16, 64};
    for (unsigned trial = 0; trial < 10; ++trial) {
        const sim::SystemDesign d =
            sim::kAllDesigns[gen.next() % sim::kAllDesigns.size()];
        sim::SimConfig cfg = sim::designConfig(d);
        cfg.instrBudget = 8000 + gen.next() % 8000;
        cfg.seed = 1 + gen.next() % 1000;
        cfg.bufferEntries =
            buffers[gen.next() % std::size(buffers)];
        if (gen.next() % 2)
            cfg.mechanism = trng::TrngMechanism::quacTrng();
        if (gen.next() % 4 == 0)
            cfg.powerDownThreshold = 100 + gen.next() % 400;
        const std::string app = apps[gen.next() % std::size(apps)];
        const double mbps =
            mbps_choices[gen.next() % std::size(mbps_choices)];
        expectBitIdentical(
            cfg, app, mbps,
            std::string(sim::designKey(d)) + "/" + app + "/trial" +
                std::to_string(trial));
    }
}

TEST(FastForwardLockstep, SteppedInFineIncrementsMatchesRun)
{
    // step() with arbitrary increments (forcing span clamping at each
    // boundary) must land on the same state as run().
    sim::SimConfig cfg = sim::designConfig(sim::SystemDesign::DrStrange);
    cfg.instrBudget = 5000;

    sim::System whole(cfg, makeTraces(cfg, "gcc", 640.0));
    whole.run();

    sim::System pieces(cfg, makeTraces(cfg, "gcc", 640.0));
    while (!pieces.allFinished() &&
           pieces.busCycles() < whole.busCycles())
        pieces.step(7);
    // Align exactly (run() stops at the first all-finished check).
    if (pieces.busCycles() < whole.busCycles())
        pieces.step(whole.busCycles() - pieces.busCycles());
    EXPECT_EQ(sim::systemFingerprint(pieces),
              sim::systemFingerprint(whole));
}

TEST(FastForwardLockstep, RunnerMetricsIdentical)
{
    // End to end through the Runner: the derived paper metrics (not
    // just raw counters) must be bit-identical.
    auto metricsWith = [](bool ff) {
        sim::SimConfig base;
        base.instrBudget = 10000;
        sim::Runner runner(base);
        workloads::WorkloadSpec spec;
        spec.name = "mix";
        spec.apps = {"mcf"};
        spec.rngThroughputMbps = 5120.0;
        // Runner honors DS_FAST_FORWARD via System's constructor
        // default; override through the explicit setter path instead by
        // running the systems ourselves is covered above — here we set
        // the environment.
#ifdef _WIN32
        _putenv_s("DS_FAST_FORWARD", ff ? "1" : "0");
#else
        setenv("DS_FAST_FORWARD", ff ? "1" : "0", 1);
#endif
        const auto res = runner.run(sim::SystemDesign::DrStrange, spec);
#ifndef _WIN32
        unsetenv("DS_FAST_FORWARD");
#else
        _putenv_s("DS_FAST_FORWARD", "");
#endif
        return std::vector<double>{
            res.cores[0].slowdown,     res.cores[1].slowdown,
            res.cores[0].memSlowdown,  res.cores[1].memSlowdown,
            res.unfairnessIndex,       res.weightedSpeedupNonRng,
            res.bufferServeRate,       res.predictorAccuracy,
            static_cast<double>(res.busCycles), res.energyNj};
    };
    EXPECT_EQ(metricsWith(true), metricsWith(false));
}

// ---------------------------------------------------------------------
// Component event-horizon units.
// ---------------------------------------------------------------------

TEST(FastForwardHorizon, RngEngineSchedule)
{
    const trng::TrngMechanism mech = trng::TrngMechanism::dRange();
    dram::DramTimings timings{};
    dram::DramGeometry geom{};
    dram::DramChannel chan(timings, geom);
    trng::RngEngine eng(mech, chan);

    // Idle: no self-scheduled event.
    EXPECT_EQ(eng.nextEventCycle(0), kNoEvent);

    // Switching in: the phase completes on the tick at phaseEnd - 1.
    eng.start(0);
    EXPECT_TRUE(eng.switchingIn());
    EXPECT_EQ(eng.nextEventCycle(0), mech.switchInLatency - 1);

    // Batched cycle counting matches per-cycle ticks.
    trng::RngEngine stepped(mech, chan);
    stepped.start(0);
    for (Cycle c = 0; c + 1 < mech.switchInLatency; ++c)
        EXPECT_EQ(stepped.tick(c), 0.0);
    eng.fastForward(0, mech.switchInLatency - 1);
    EXPECT_EQ(eng.totalOccupiedCycles(), stepped.totalOccupiedCycles());
    EXPECT_EQ(eng.switchingIn(), stepped.switchingIn());

    // The switch-in completion tick moves both into the first round.
    stepped.tick(mech.switchInLatency - 1);
    eng.fastForwardPhases(1);
    eng.fastForward(mech.switchInLatency - 1, mech.switchInLatency);
    EXPECT_TRUE(eng.inRound());
    EXPECT_TRUE(stepped.inRound());
    EXPECT_EQ(eng.phaseEndCycle(), stepped.phaseEndCycle());
    EXPECT_EQ(eng.nextEventCycle(mech.switchInLatency),
              mech.switchInLatency + mech.roundLatency - 1);
}

TEST(FastForwardHorizon, RngEngineParkedAndStopping)
{
    const trng::TrngMechanism mech = trng::TrngMechanism::dRange();
    dram::DramTimings timings{};
    dram::DramGeometry geom{};
    dram::DramChannel chan(timings, geom);
    trng::RngEngine eng(mech, chan);

    eng.start(0);
    Cycle now = 0;
    while (!eng.inRound())
        eng.tick(now++);
    eng.requestPark();
    while (eng.inRound())
        eng.tick(now++);
    ASSERT_TRUE(eng.parked());
    // Parked without a stop: quiescent until told otherwise.
    EXPECT_EQ(eng.nextEventCycle(now), kNoEvent);
    eng.requestStop();
    // Parked with a stop pending: acts on the very next tick.
    EXPECT_EQ(eng.nextEventCycle(now), now);
}

TEST(FastForwardHorizon, DramChannelRefreshAndResidency)
{
    dram::DramTimings timings{};
    dram::DramGeometry geom{};
    dram::DramChannel chan(timings, geom);

    // Fresh channel: the next self-scheduled event is the refresh edge.
    EXPECT_EQ(chan.nextEventCycle(0, false), timings.tREFI);

    // Batched residency equals per-cycle sampling.
    dram::DramChannel stepped(timings, geom);
    for (Cycle c = 0; c < 100; ++c)
        stepped.sampleState(c);
    chan.fastForwardState(0, 100);
    EXPECT_EQ(chan.energyCounters().cyclesPrecharged,
              stepped.energyCounters().cyclesPrecharged);
    EXPECT_EQ(chan.energyCounters().cyclesActive,
              stepped.energyCounters().cyclesActive);

    // With all banks closed the refresh edge issues REF immediately;
    // the next event is then the end of the tRFC window.
    dram::DramChannel refr(timings, geom);
    refr.tickRefresh(timings.tREFI);
    ASSERT_TRUE(refr.refreshBusy(timings.tREFI));
    EXPECT_EQ(refr.nextEventCycle(timings.tREFI, false),
              timings.tREFI + timings.tRFC);

    // With an open bank the refresh stages per-cycle precharges: the
    // channel reports per-cycle work (unless an active engine fences
    // it, in which case staging parks until the engine's own events).
    dram::DramChannel open(timings, geom);
    ASSERT_TRUE(open.canIssue(dram::DramCmd::Act, 0, 10));
    open.issue(dram::DramCmd::Act, 0, 10, /*row=*/7);
    open.tickRefresh(timings.tREFI);
    ASSERT_TRUE(open.refreshBusy(timings.tREFI));
    EXPECT_EQ(open.nextEventCycle(timings.tREFI, false), timings.tREFI);
    EXPECT_NE(open.nextEventCycle(timings.tREFI, true), timings.tREFI);
}

TEST(FastForwardHorizon, DramChannelEarliestIssueMatchesCanIssue)
{
    dram::DramTimings timings{};
    dram::DramGeometry geom{};
    dram::DramChannel chan(timings, geom);

    ASSERT_TRUE(chan.canIssue(dram::DramCmd::Act, 0, 10));
    chan.issue(dram::DramCmd::Act, 0, 10, /*row=*/42);

    // The read becomes legal exactly at earliestIssueCycle, not before.
    const Cycle rd_at = chan.earliestIssueCycle(dram::DramCmd::Rd, 0);
    for (Cycle c = 11; c < rd_at; ++c)
        EXPECT_FALSE(chan.canIssue(dram::DramCmd::Rd, 0, c)) << c;
    EXPECT_TRUE(chan.canIssue(dram::DramCmd::Rd, 0, rd_at));

    // Same for a second activate on another bank (tRRD fence).
    const Cycle act_at = chan.earliestIssueCycle(dram::DramCmd::Act, 1);
    for (Cycle c = 11; c < act_at; ++c)
        EXPECT_FALSE(chan.canIssue(dram::DramCmd::Act, 1, c)) << c;
    EXPECT_TRUE(chan.canIssue(dram::DramCmd::Act, 1, act_at));
}

TEST(FastForwardHorizon, SchedulerDefaultsAndBliss)
{
    // FR-FCFS never blocks skipping; BLISS's event is the clearing
    // interval; the base-class default is maximally conservative.
    mem::FrFcfsScheduler fr(1, 8, 16);
    EXPECT_EQ(fr.nextEventCycle(123), kNoEvent);

    mem::BlissScheduler bliss(1, 2, 4, 10000);
    EXPECT_EQ(bliss.nextEventCycle(123), 10000u);
    bliss.tick(10000);
    EXPECT_EQ(bliss.nextEventCycle(10001), 20000u);

    struct DefaultSched : mem::Scheduler
    {
        int pick(const mem::SchedContext &) override { return -1; }
        void onColumnIssued(const mem::Request &, unsigned) override {}
    } plain;
    EXPECT_EQ(plain.nextEventCycle(55), 55u);
}

TEST(FastForwardHorizon, RngAwarePolicyPeekAndFastForward)
{
    mem::RngAwarePolicy::Config pc;
    pc.stallLimit = 10;
    mem::RngAwarePolicy policy(1, 2, pc);
    mem::RequestQueue reads(8);
    mem::Request req;
    req.type = mem::ReqType::Read;
    req.core = 0;
    req.seq = 1;
    reads.push(req);
    std::deque<mem::RngJob> jobs;
    jobs.push_back(mem::RngJob{1, 0, 2, 0, 0.0});

    // Equal priorities charge the regular counter while choosing Rng.
    mem::RngAwarePolicy stepped(1, 2, pc);
    for (Cycle c = 0; c < 6; ++c) {
        EXPECT_EQ(stepped.peek(0, reads, jobs), mem::QueueChoice::Rng);
        EXPECT_EQ(stepped.choose(0, reads, jobs), mem::QueueChoice::Rng);
    }
    policy.fastForward(0, reads, jobs, 6);
    EXPECT_EQ(policy.maxStallObserved(), stepped.maxStallObserved());
    // Both predict the flip at the same cycle.
    EXPECT_EQ(policy.nextEventCycle(0, reads, jobs, 100),
              stepped.nextEventCycle(0, reads, jobs, 100));
    // And the flip actually happens there: 4 more charges, then Regular.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(stepped.choose(0, reads, jobs), mem::QueueChoice::Rng);
    EXPECT_EQ(stepped.peek(0, reads, jobs), mem::QueueChoice::Regular);
    EXPECT_EQ(stepped.choose(0, reads, jobs), mem::QueueChoice::Regular);
}

TEST(FastForwardHorizon, SystemSkipsAndClampsToStep)
{
    sim::SimConfig cfg = sim::designConfig(sim::SystemDesign::DrStrange);
    cfg.instrBudget = 5000;
    sim::System sys(cfg, makeTraces(cfg, "", 320.0));
    ASSERT_TRUE(sys.fastForwardEnabled());

    // Advancing one cycle at a time never fast-forwards (the span is
    // clamped to the step boundary), yet stays bit-identical.
    sim::System fine(cfg, makeTraces(cfg, "", 320.0));
    for (unsigned i = 0; i < 500; ++i)
        fine.step(1);
    EXPECT_EQ(fine.ffStats().skips, 0u);
    EXPECT_EQ(fine.busCycles(), 500u);

    sys.run();
    EXPECT_GT(sys.ffStats().skips, 0u);
    EXPECT_GT(sys.ffStats().skippedCycles,
              sys.ffStats().steppedCycles);
}

TEST(FastForwardHorizon, DisabledMatchesLegacyStepping)
{
    sim::SimConfig cfg = sim::designConfig(sim::SystemDesign::DrStrange);
    cfg.instrBudget = 4000;
    sim::System sys(cfg, makeTraces(cfg, "gcc", 640.0));
    sys.setFastForward(false);
    sys.run();
    EXPECT_EQ(sys.ffStats().skips, 0u);
    EXPECT_EQ(sys.ffStats().skippedCycles, 0u);
    EXPECT_EQ(sys.ffStats().steppedCycles, sys.busCycles());
}

} // namespace
