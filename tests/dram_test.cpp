/**
 * @file
 * Unit and property tests for the DRAM substrate: timing parameters,
 * address mapping, per-bank state machines, and the channel model's
 * rank/bus/refresh constraints.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/address_mapper.h"
#include "dram/bank.h"
#include "dram/dram_channel.h"
#include "dram/dram_timings.h"

using namespace dstrange;
using namespace dstrange::dram;

namespace {

DramTimings
timings()
{
    return DramTimings{};
}

DramGeometry
geometry()
{
    return DramGeometry{};
}

} // namespace

TEST(DramTimings, DefaultsAreConsistent)
{
    EXPECT_TRUE(timingsAreConsistent(timings()));
}

TEST(DramTimings, InconsistentSetsAreRejected)
{
    DramTimings t;
    t.tRC = t.tRAS; // tRC < tRAS + tRP
    EXPECT_FALSE(timingsAreConsistent(t));

    DramTimings t2;
    t2.tREFI = t2.tRFC;
    EXPECT_FALSE(timingsAreConsistent(t2));
}

TEST(DramTimings, TurnaroundsArePositive)
{
    const DramTimings t;
    EXPECT_GT(t.readToWrite(), 0u);
    EXPECT_GT(t.writeToRead(), 0u);
}

TEST(AddressMapper, DecodeEncodeRoundTrip)
{
    const AddressMapper mapper(geometry());
    Xoshiro256ss gen(3);
    for (int i = 0; i < 10000; ++i) {
        const Addr addr =
            gen.nextBelow(geometry().capacityBytes() / kLineBytes) *
            kLineBytes;
        const DramCoord coord = mapper.decode(addr);
        EXPECT_EQ(mapper.encode(coord), addr);
    }
}

TEST(AddressMapper, ConsecutiveLinesInterleaveChannels)
{
    const AddressMapper mapper(geometry());
    for (unsigned i = 0; i < 16; ++i) {
        const DramCoord coord = mapper.decode(i * kLineBytes);
        EXPECT_EQ(coord.channel, i % geometry().channels);
    }
}

TEST(AddressMapper, SameChannelStrideKeepsRow)
{
    // Lines 4 apart map to the same channel; within a row's span they
    // share the row (this is what makes streaming row-friendly).
    const AddressMapper mapper(geometry());
    const DramCoord a = mapper.decode(0);
    const DramCoord b = mapper.decode(4 * kLineBytes);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(b.col, a.col + 1);
}

TEST(AddressMapper, CoordFieldsWithinBounds)
{
    const AddressMapper mapper(geometry());
    Xoshiro256ss gen(5);
    for (int i = 0; i < 10000; ++i) {
        const Addr addr = gen.next() % geometry().capacityBytes();
        const DramCoord c = mapper.decode(addr);
        EXPECT_LT(c.channel, geometry().channels);
        EXPECT_LT(c.bank, geometry().banksPerRank);
        EXPECT_LT(c.row, geometry().rowsPerBank);
        EXPECT_LT(c.col, geometry().colsPerRow());
    }
}

TEST(Bank, ActivateThenReadRespectsTrcd)
{
    const DramTimings t;
    Bank bank(t);
    EXPECT_FALSE(bank.isOpen());
    EXPECT_TRUE(bank.canIssue(DramCmd::Act, 0));
    bank.issue(DramCmd::Act, 0, 7);
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), 7);
    EXPECT_FALSE(bank.canIssue(DramCmd::Rd, t.tRCD - 1));
    EXPECT_TRUE(bank.canIssue(DramCmd::Rd, t.tRCD));
}

TEST(Bank, PrechargeRespectsTras)
{
    const DramTimings t;
    Bank bank(t);
    bank.issue(DramCmd::Act, 0, 1);
    EXPECT_FALSE(bank.canIssue(DramCmd::Pre, t.tRAS - 1));
    EXPECT_TRUE(bank.canIssue(DramCmd::Pre, t.tRAS));
    bank.issue(DramCmd::Pre, t.tRAS);
    EXPECT_FALSE(bank.isOpen());
    // Next ACT respects both tRP (after PRE) and tRC (after ACT).
    EXPECT_FALSE(bank.canIssue(DramCmd::Act, t.tRAS + t.tRP - 1));
    EXPECT_TRUE(bank.canIssue(DramCmd::Act, t.tRC));
}

TEST(Bank, WriteRecoveryDelaysPrecharge)
{
    const DramTimings t;
    Bank bank(t);
    bank.issue(DramCmd::Act, 0, 1);
    const Cycle wr_at = t.tRCD;
    bank.issue(DramCmd::Wr, wr_at);
    const Cycle pre_ready = wr_at + t.tCWL + t.tBL + t.tWR;
    EXPECT_FALSE(bank.canIssue(DramCmd::Pre, pre_ready - 1));
    EXPECT_TRUE(bank.canIssue(DramCmd::Pre, pre_ready));
}

TEST(Bank, ReadToPrechargeRespectsTrtp)
{
    const DramTimings t;
    Bank bank(t);
    bank.issue(DramCmd::Act, 0, 1);
    const Cycle rd_at = t.tRAS; // late read so tRAS is already satisfied
    bank.issue(DramCmd::Rd, rd_at);
    EXPECT_FALSE(bank.canIssue(DramCmd::Pre, rd_at + t.tRTP - 1));
    EXPECT_TRUE(bank.canIssue(DramCmd::Pre, rd_at + t.tRTP));
}

TEST(Bank, ConsecutiveColumnCommandsRespectTccd)
{
    const DramTimings t;
    Bank bank(t);
    bank.issue(DramCmd::Act, 0, 1);
    bank.issue(DramCmd::Rd, t.tRCD);
    EXPECT_FALSE(bank.canIssue(DramCmd::Rd, t.tRCD + t.tCCD - 1));
    EXPECT_TRUE(bank.canIssue(DramCmd::Rd, t.tRCD + t.tCCD));
}

class DramChannelTest : public ::testing::Test
{
  protected:
    DramChannelTest() : chan(t, g) {}

    DramTimings t;
    DramGeometry g;
    DramChannel chan{t, g};
};

TEST_F(DramChannelTest, CommandBusSerializesCommands)
{
    ASSERT_TRUE(chan.canIssue(DramCmd::Act, 0, 10));
    chan.issue(DramCmd::Act, 0, 10, 1);
    // A second command in the same cycle is blocked by the command bus,
    // even to a different bank.
    EXPECT_FALSE(chan.canIssue(DramCmd::Act, 1, 10));
    EXPECT_TRUE(chan.canIssue(DramCmd::Act, 1, 10 + t.tRRD));
}

TEST_F(DramChannelTest, TrrdSeparatesActivates)
{
    chan.issue(DramCmd::Act, 0, 0, 1);
    EXPECT_FALSE(chan.canIssue(DramCmd::Act, 1, t.tRRD - 1));
    EXPECT_TRUE(chan.canIssue(DramCmd::Act, 1, t.tRRD));
}

TEST_F(DramChannelTest, TfawLimitsActivateBurst)
{
    // Issue four ACTs as fast as tRRD allows; the fifth must wait for
    // the four-activate window.
    Cycle now = 0;
    for (unsigned b = 0; b < 4; ++b) {
        EXPECT_TRUE(chan.canIssue(DramCmd::Act, b, now));
        chan.issue(DramCmd::Act, b, now, 1);
        now += t.tRRD;
    }
    // First ACT was at cycle 0, so bank 4's ACT must wait until tFAW.
    EXPECT_FALSE(chan.canIssue(DramCmd::Act, 4, now));
    EXPECT_TRUE(chan.canIssue(DramCmd::Act, 4, t.tFAW));
}

TEST_F(DramChannelTest, ReadReturnsDataBurstCompletion)
{
    chan.issue(DramCmd::Act, 0, 0, 1);
    const Cycle rd_at = t.tRCD;
    ASSERT_TRUE(chan.canIssue(DramCmd::Rd, 0, rd_at));
    const Cycle done = chan.issue(DramCmd::Rd, 0, rd_at);
    EXPECT_EQ(done, rd_at + t.tCL + t.tBL);
}

TEST_F(DramChannelTest, ReadWriteTurnaroundEnforced)
{
    chan.issue(DramCmd::Act, 0, 0, 1);
    const Cycle rd_at = t.tRCD;
    chan.issue(DramCmd::Rd, 0, rd_at);
    // A write cannot follow immediately: bus turnaround.
    const Cycle wr_min = rd_at + t.readToWrite();
    EXPECT_FALSE(chan.canIssue(DramCmd::Wr, 0, wr_min - 1));
    EXPECT_TRUE(chan.canIssue(DramCmd::Wr, 0, wr_min));
}

TEST_F(DramChannelTest, RefreshBecomesDueAndBlocksTraffic)
{
    // Before tREFI nothing special happens.
    for (Cycle c = 0; c < t.tREFI; ++c) {
        chan.tickRefresh(c);
        ASSERT_FALSE(chan.refreshBusy(c));
    }
    // The rank refreshes (all banks closed already); REF occupies tRFC.
    chan.tickRefresh(t.tREFI);
    EXPECT_TRUE(chan.refreshBusy(t.tREFI + 1));
    EXPECT_FALSE(chan.canIssue(DramCmd::Act, 0, t.tREFI + 1));
    EXPECT_TRUE(chan.refreshBusy(t.tREFI + t.tRFC - 1));
    chan.tickRefresh(t.tREFI + t.tRFC);
    EXPECT_FALSE(chan.refreshBusy(t.tREFI + t.tRFC));
    EXPECT_TRUE(chan.canIssue(DramCmd::Act, 0, t.tREFI + t.tRFC));
    EXPECT_EQ(chan.energyCounters().nRef, 1u);
}

TEST_F(DramChannelTest, RefreshPrechargesOpenBanksFirst)
{
    // Open a bank shortly before the refresh interval elapses.
    const Cycle act_at = t.tREFI - t.tRAS - 2;
    chan.issue(DramCmd::Act, 0, act_at, 5);
    EXPECT_EQ(chan.openBankCount(), 1u);
    Cycle c = t.tREFI;
    // Let the refresh engine precharge and refresh.
    for (; c < t.tREFI + 4 * t.tRP + t.tRFC + 8; ++c)
        chan.tickRefresh(c);
    EXPECT_EQ(chan.openBankCount(), 0u);
    EXPECT_EQ(chan.energyCounters().nRef, 1u);
    EXPECT_GE(chan.energyCounters().nPre, 1u);
}

TEST_F(DramChannelTest, RngOccupancyBlocksIssueButKeepsRows)
{
    chan.issue(DramCmd::Act, 0, 0, 9);
    chan.occupyForRng(50);
    EXPECT_TRUE(chan.rngBusy(49));
    EXPECT_FALSE(chan.rngBusy(50));
    EXPECT_FALSE(chan.canIssue(DramCmd::Rd, 0, 20));
    // Application row-buffer contents survive RNG mode.
    EXPECT_EQ(chan.bank(0).openRow(), 9);
    EXPECT_TRUE(chan.canIssue(DramCmd::Rd, 0, 50));
}

TEST_F(DramChannelTest, SampleStateSplitsResidency)
{
    // All banks closed: precharged standby.
    chan.sampleState(0);
    EXPECT_EQ(chan.energyCounters().cyclesPrecharged, 1u);
    chan.issue(DramCmd::Act, 0, 1, 2);
    chan.sampleState(2);
    EXPECT_EQ(chan.energyCounters().cyclesActive, 1u);
    // RNG occupancy counts as active.
    chan.occupyForRng(100);
    chan.sampleState(50);
    EXPECT_EQ(chan.energyCounters().cyclesActive, 2u);
}

TEST_F(DramChannelTest, EnergyCountersTrackCommands)
{
    chan.issue(DramCmd::Act, 0, 0, 1);
    chan.issue(DramCmd::Rd, 0, t.tRCD);
    chan.issue(DramCmd::Pre, 0, t.tRAS);
    const auto &c = chan.energyCounters();
    EXPECT_EQ(c.nAct, 1u);
    EXPECT_EQ(c.nRd, 1u);
    EXPECT_EQ(c.nPre, 1u);
    EXPECT_EQ(c.nWr, 0u);
}

/**
 * Property: a random but legality-checked command driver never corrupts
 * channel state — open-bank count matches per-bank state, and commands
 * the model accepts never violate tFAW (tracked independently).
 */
TEST(DramChannelProperty, RandomLegalTrafficKeepsInvariants)
{
    const DramTimings t;
    const DramGeometry g;
    DramChannel chan(t, g);
    Xoshiro256ss gen(99);
    std::vector<Cycle> act_times;

    for (Cycle now = 0; now < 20000; ++now) {
        chan.tickRefresh(now);
        chan.sampleState(now);
        const unsigned bank = static_cast<unsigned>(gen.nextBelow(8));
        const DramCmd cmd = static_cast<DramCmd>(gen.nextBelow(4));
        if (chan.canIssue(cmd, bank, now)) {
            if (cmd == DramCmd::Act) {
                chan.issue(cmd, bank, now,
                           static_cast<std::int64_t>(gen.nextBelow(64)));
                act_times.push_back(now);
            } else {
                chan.issue(cmd, bank, now);
            }
        }
        unsigned open = 0;
        for (unsigned b = 0; b < chan.numBanks(); ++b)
            open += chan.bank(b).isOpen();
        ASSERT_EQ(open, chan.openBankCount());
    }

    // Independently check the four-activate window over the whole trace.
    for (std::size_t i = 4; i < act_times.size(); ++i)
        ASSERT_GE(act_times[i], act_times[i - 4] + t.tFAW);

    // The channel made progress.
    EXPECT_GT(act_times.size(), 10u);
    EXPECT_GT(chan.energyCounters().nRd + chan.energyCounters().nWr, 10u);
}
