/**
 * @file
 * Tests for the application interface: the getrandom()-style
 * RandomDevice over the simulated DRAM-TRNG system.
 */

#include <gtest/gtest.h>

#include "api/random_device.h"
#include "trng/bit_quality.h"

using namespace dstrange;
using namespace dstrange::api;

TEST(RandomDevice, ReturnsRequestedBytes)
{
    RandomDevice dev;
    const auto res = dev.getRandom(32);
    EXPECT_EQ(res.bytes.size(), 32u);
    EXPECT_GT(res.latencyNs, 0.0);
}

TEST(RandomDevice, ColdStartGeneratesOnDemand)
{
    RandomDevice::Config cfg;
    sim::applyDesign(cfg.sim, sim::SystemDesign::RngOblivious);
    RandomDevice dev(cfg);
    const auto res = dev.getRandom(8);
    EXPECT_FALSE(res.servedFromBuffer);
    // On-demand 64-bit generation across 4 channels: ~15 bus cycles.
    EXPECT_GT(res.latencyNs, 10.0);
}

TEST(RandomDevice, IdleTimeFillsBufferAndSpeedsUpServes)
{
    RandomDevice dev; // DR-STRaNGe with a 16-entry buffer
    // First request: cold, on demand.
    const auto cold = dev.getRandom(8);
    // Give the device idle time to fill the buffer.
    dev.idle(10000.0);
    EXPECT_GT(dev.bufferLevelBits(), 64.0);
    const auto warm = dev.getRandom(8);
    EXPECT_TRUE(warm.servedFromBuffer);
    EXPECT_LT(warm.latencyNs, cold.latencyNs);
}

TEST(RandomDevice, ObliviousDesignNeverBuffers)
{
    RandomDevice::Config cfg;
    sim::applyDesign(cfg.sim, sim::SystemDesign::RngOblivious);
    RandomDevice dev(cfg);
    dev.idle(10000.0);
    EXPECT_DOUBLE_EQ(dev.bufferLevelBits(), 0.0);
}

TEST(RandomDevice, LargeRequestSpansMultipleWords)
{
    RandomDevice dev;
    const auto res = dev.getRandom(1024);
    EXPECT_EQ(res.bytes.size(), 1024u);
    EXPECT_GT(dev.elapsedNs(), 0.0);
}

TEST(RandomDevice, OutputPassesBasicQualityChecks)
{
    RandomDevice dev;
    dev.idle(1e6);
    std::vector<std::uint8_t> bytes;
    while (bytes.size() < (1u << 15)) {
        const auto res = dev.getRandom(512);
        bytes.insert(bytes.end(), res.bytes.begin(), res.bytes.end());
        dev.idle(5000.0);
    }
    EXPECT_TRUE(trng::monobitTest(bytes).pass);
    EXPECT_TRUE(trng::chiSquareByteTest(bytes).pass);
    EXPECT_GT(trng::shannonEntropyPerByte(bytes), 7.9);
}

TEST(RandomDevice, DeterministicForSameSeed)
{
    RandomDevice::Config cfg;
    cfg.sim.seed = 123;
    RandomDevice a(cfg), b(cfg);
    const auto ra = a.getRandom(64);
    const auto rb = b.getRandom(64);
    EXPECT_EQ(ra.bytes, rb.bytes);
    EXPECT_DOUBLE_EQ(ra.latencyNs, rb.latencyNs);
}

TEST(RandomDevice, SuccessiveValuesAreUnique)
{
    RandomDevice dev;
    const auto a = dev.getRandom(16);
    const auto b = dev.getRandom(16);
    EXPECT_NE(a.bytes, b.bytes); // served bits are discarded (Section 6)
}
