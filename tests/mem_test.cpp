/**
 * @file
 * Tests for the memory controller subsystem: request queues, the three
 * intra-queue schedulers, the RNG-aware inter-queue policy, and the
 * memory controller's end-to-end request handling.
 */

#include <gtest/gtest.h>

#include <deque>

#include "dram/dram_channel.h"
#include "mem/bliss.h"
#include "mem/fr_fcfs.h"
#include "mem/memory_controller.h"
#include "mem/request_queue.h"
#include "mem/rng_aware.h"
#include "trng/trng_mechanism.h"

using namespace dstrange;
using namespace dstrange::mem;

namespace {

Request
makeReq(ReqType type, unsigned channel, unsigned bank, unsigned row,
        unsigned col, CoreId core, std::uint64_t seq)
{
    Request r;
    r.type = type;
    r.coord = dram::DramCoord{channel, bank, row, col};
    r.core = core;
    r.seq = seq;
    r.token = seq;
    return r;
}

} // namespace

TEST(RequestQueue, CapacityEnforced)
{
    RequestQueue q(2);
    EXPECT_TRUE(q.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 0)));
    EXPECT_TRUE(q.push(makeReq(ReqType::Read, 0, 0, 0, 1, 0, 1)));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(makeReq(ReqType::Read, 0, 0, 0, 2, 0, 2)));
    q.erase(0);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.at(0).seq, 1u);
}

TEST(RequestQueue, NextCommandClassification)
{
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan(t, g);
    const Request closed = makeReq(ReqType::Read, 0, 0, 5, 0, 0, 0);
    EXPECT_EQ(nextCommandFor(closed, chan), dram::DramCmd::Act);

    chan.issue(dram::DramCmd::Act, 0, 0, 5);
    EXPECT_EQ(nextCommandFor(closed, chan), dram::DramCmd::Rd);
    EXPECT_TRUE(isRowHit(closed, chan));

    const Request wr = makeReq(ReqType::Write, 0, 0, 5, 1, 0, 1);
    EXPECT_EQ(nextCommandFor(wr, chan), dram::DramCmd::Wr);

    const Request conflict = makeReq(ReqType::Read, 0, 0, 9, 0, 0, 2);
    EXPECT_EQ(nextCommandFor(conflict, chan), dram::DramCmd::Pre);
    EXPECT_FALSE(isRowHit(conflict, chan));
}

class FrFcfsTest : public ::testing::Test
{
  protected:
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan{t, g};
    RequestQueue q{32};
};

TEST_F(FrFcfsTest, PrefersRowHitOverOlderMiss)
{
    FrFcfsScheduler sched(1, 8, 0);
    chan.issue(dram::DramCmd::Act, 0, 0, 5);
    // Older request conflicts; younger one hits the open row.
    q.push(makeReq(ReqType::Read, 0, 0, 9, 0, 0, 1));
    q.push(makeReq(ReqType::Read, 0, 0, 5, 3, 0, 2));
    const SchedContext ctx{q, chan, 0, t.tRCD};
    EXPECT_EQ(sched.pick(ctx), 1);
}

TEST_F(FrFcfsTest, FallsBackToOldestWhenNoHits)
{
    FrFcfsScheduler sched(1, 8, 0);
    q.push(makeReq(ReqType::Read, 0, 1, 9, 0, 0, 7));
    q.push(makeReq(ReqType::Read, 0, 2, 5, 0, 0, 8));
    const SchedContext ctx{q, chan, 0, 100};
    EXPECT_EQ(sched.pick(ctx), 0);
}

TEST_F(FrFcfsTest, ReturnsNoPickWhenNothingIssuable)
{
    FrFcfsScheduler sched(1, 8, 0);
    chan.issue(dram::DramCmd::Act, 0, 0, 5);
    q.push(makeReq(ReqType::Read, 0, 0, 5, 0, 0, 1));
    // Column command cannot issue before tRCD.
    const SchedContext ctx{q, chan, 0, 1};
    EXPECT_EQ(sched.pick(ctx), kNoPick);
}

TEST_F(FrFcfsTest, ColumnCapYieldsToConflictingRequest)
{
    FrFcfsScheduler sched(1, 8, /*cap=*/4);
    chan.issue(dram::DramCmd::Act, 0, 0, 5);
    // Saturate the streak accounting.
    for (int i = 0; i < 4; ++i)
        sched.onColumnIssued(makeReq(ReqType::Read, 0, 0, 5, i, 0, i), 0);
    // A hit to row 5 and a conflicting request to row 9 on the same bank.
    q.push(makeReq(ReqType::Read, 0, 0, 9, 0, 1, 10)); // older conflict
    q.push(makeReq(ReqType::Read, 0, 0, 5, 7, 0, 11)); // newer hit
    const SchedContext ctx{q, chan, 0, 100};
    // The cap forces the conflicting request (its PRE) to be chosen.
    EXPECT_EQ(sched.pick(ctx), 0);
}

TEST_F(FrFcfsTest, CapIgnoredWithoutWaitingConflict)
{
    FrFcfsScheduler sched(1, 8, /*cap=*/4);
    chan.issue(dram::DramCmd::Act, 0, 0, 5);
    for (int i = 0; i < 10; ++i)
        sched.onColumnIssued(makeReq(ReqType::Read, 0, 0, 5, i, 0, i), 0);
    q.push(makeReq(ReqType::Read, 0, 0, 5, 7, 0, 11)); // hit, no conflict
    const SchedContext ctx{q, chan, 0, 100};
    EXPECT_EQ(sched.pick(ctx), 0);
}

TEST(BlissTest, BlacklistsAfterConsecutiveServes)
{
    BlissScheduler sched(1, 2, /*threshold=*/4, /*clearing=*/10000);
    for (int i = 0; i < 3; ++i) {
        sched.onColumnIssued(makeReq(ReqType::Read, 0, 0, 1, i, 0, i), 0);
        EXPECT_FALSE(sched.isBlacklisted(0));
    }
    sched.onColumnIssued(makeReq(ReqType::Read, 0, 0, 1, 3, 0, 3), 0);
    EXPECT_TRUE(sched.isBlacklisted(0));
    EXPECT_FALSE(sched.isBlacklisted(1));
}

TEST(BlissTest, InterleavedServiceResetsStreak)
{
    BlissScheduler sched(1, 2, 4, 10000);
    for (int i = 0; i < 10; ++i) {
        sched.onColumnIssued(
            makeReq(ReqType::Read, 0, 0, 1, i, i % 2, i), 0);
    }
    EXPECT_FALSE(sched.isBlacklisted(0));
    EXPECT_FALSE(sched.isBlacklisted(1));
}

TEST(BlissTest, ClearingIntervalResetsBlacklist)
{
    BlissScheduler sched(1, 2, 4, 1000);
    for (int i = 0; i < 4; ++i)
        sched.onColumnIssued(makeReq(ReqType::Read, 0, 0, 1, i, 0, i), 0);
    EXPECT_TRUE(sched.isBlacklisted(0));
    sched.tick(1000);
    EXPECT_FALSE(sched.isBlacklisted(0));
}

TEST(BlissTest, PrefersNonBlacklistedOverRowHit)
{
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan(t, g);
    BlissScheduler sched(1, 2, 4, 10000);
    for (int i = 0; i < 4; ++i)
        sched.onColumnIssued(makeReq(ReqType::Read, 0, 0, 1, i, 0, i), 0);
    ASSERT_TRUE(sched.isBlacklisted(0));

    chan.issue(dram::DramCmd::Act, 0, 0, 5);
    RequestQueue q(32);
    q.push(makeReq(ReqType::Read, 0, 0, 5, 0, 0, 1)); // blacklisted hit
    q.push(makeReq(ReqType::Read, 0, 1, 9, 0, 1, 2)); // clean miss
    const SchedContext ctx{q, chan, 0, 100};
    EXPECT_EQ(sched.pick(ctx), 1);
}

class RngAwarePolicyTest : public ::testing::Test
{
  protected:
    RngAwarePolicyTest() : policy(1, 2, {.stallLimit = 100})
    {
        policy.markRngApp(1);
    }

    std::deque<RngJob>
    jobs(std::uint64_t seq)
    {
        return {RngJob{1, 0, seq, 0, 0.0}};
    }

    RngAwarePolicy policy;
    RequestQueue readQ{32};
};

TEST_F(RngAwarePolicyTest, EmptyQueuesChooseNone)
{
    const std::deque<RngJob> none;
    EXPECT_EQ(policy.choose(0, readQ, none), QueueChoice::None);
}

TEST_F(RngAwarePolicyTest, OnlyRngPendingChoosesRng)
{
    EXPECT_EQ(policy.choose(0, readQ, jobs(5)), QueueChoice::Rng);
}

TEST_F(RngAwarePolicyTest, EqualPriorityPrioritizesRng)
{
    // Section 5.2.1: with equal priorities, RNG requests are prioritized
    // to minimize RNG interference, regardless of relative age.
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 3)); // older read
    EXPECT_EQ(policy.choose(0, readQ, jobs(5)), QueueChoice::Rng);
}

TEST_F(RngAwarePolicyTest, EqualPriorityStallLimitProtectsReads)
{
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 3));
    const auto j = jobs(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Rng);
    // Starvation prevention: regular reads break through eventually.
    EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Regular);
}

TEST_F(RngAwarePolicyTest, RngPrioritizedDrainsRngQueue)
{
    policy.setPriority(1, 5); // RNG app outranks core 0
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 1)); // much older
    EXPECT_EQ(policy.choose(0, readQ, jobs(50)), QueueChoice::Rng);
}

TEST_F(RngAwarePolicyTest, RngPrioritizedStallLimitBreaksThrough)
{
    policy.setPriority(1, 5);
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 1));
    const auto j = jobs(50);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Rng);
    // Stall limit reached: the deprioritized regular queue gets a turn.
    EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Regular);
}

TEST_F(RngAwarePolicyTest, NonRngPrioritizedServesReads)
{
    policy.setPriority(0, 5);
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 9));
    EXPECT_EQ(policy.choose(0, readQ, jobs(5)), QueueChoice::Regular);
}

TEST_F(RngAwarePolicyTest, NonRngPrioritizedDrainsOlderRngForRngAppRead)
{
    policy.setPriority(0, 5);
    // The oldest regular read belongs to the RNG app (core 1) and is
    // younger than the oldest RNG request: drain the RNG queue first.
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 1, 9));
    EXPECT_EQ(policy.choose(0, readQ, jobs(5)), QueueChoice::Rng);
}

TEST_F(RngAwarePolicyTest, NonRngPrioritizedStallLimitServesRng)
{
    policy.setPriority(0, 5);
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 1));
    const auto j = jobs(50);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Regular);
    EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Rng);
}

TEST_F(RngAwarePolicyTest, NoteServedResetsStallCounters)
{
    policy.setPriority(1, 5);
    readQ.push(makeReq(ReqType::Read, 0, 0, 0, 0, 0, 1));
    const auto j = jobs(50);
    for (int i = 0; i < 60; ++i)
        policy.choose(0, readQ, j);
    policy.noteServed(0, QueueChoice::Regular);
    // Counter reset: another full stall-limit run before breakthrough.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Rng);
    EXPECT_EQ(policy.choose(0, readQ, j), QueueChoice::Regular);
}

// ---------------------------------------------------------------------
// MemoryController end-to-end behaviour.
// ---------------------------------------------------------------------

class MemoryControllerTest : public ::testing::Test
{
  protected:
    void
    build(McConfig cfg)
    {
        mc = std::make_unique<MemoryController>(
            cfg, timings, geom, trng::TrngMechanism::dRange(), 2);
        mc->setCompletionCallback(
            [this](CoreId core, std::uint64_t token, ReqType type,
                   ServePath) { completions.push_back({core, token, type}); });
    }

    void
    tickN(Cycle n)
    {
        for (Cycle i = 0; i < n; ++i)
            mc->tick(now++);
    }

    struct Completion
    {
        CoreId core;
        std::uint64_t token;
        ReqType type;
    };

    dram::DramTimings timings;
    dram::DramGeometry geom;
    std::unique_ptr<MemoryController> mc;
    std::vector<Completion> completions;
    Cycle now = 0;
};

TEST_F(MemoryControllerTest, ReadCompletesWithPlausibleLatency)
{
    build(McConfig{});
    Request req;
    req.type = ReqType::Read;
    req.addr = 0x4000;
    req.core = 0;
    req.token = 42;
    ASSERT_TRUE(mc->enqueue(req, now));
    tickN(60);
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_EQ(completions[0].token, 42u);
    EXPECT_EQ(completions[0].type, ReqType::Read);
    // ACT + tRCD + tCL + tBL plus scheduling overhead.
    EXPECT_GE(mc->stats().sumReadLatency,
              timings.tRCD + timings.tCL + timings.tBL);
    EXPECT_LE(mc->stats().sumReadLatency, 60u);
}

TEST_F(MemoryControllerTest, WritesArePostedAndDrained)
{
    build(McConfig{});
    for (unsigned i = 0; i < 4; ++i) {
        Request req;
        req.type = ReqType::Write;
        req.addr = 0x10000 + i * 64 * 4; // same channel, streaming
        req.core = 0;
        req.token = i;
        ASSERT_TRUE(mc->enqueue(req, now));
    }
    EXPECT_EQ(mc->stats().writeRequests, 4u);
    tickN(300);
    EXPECT_FALSE(mc->busy());
    // Writes never produce completion callbacks.
    EXPECT_TRUE(completions.empty());
}

TEST_F(MemoryControllerTest, RngObliviousGeneratesOnDemand)
{
    build(McConfig{}); // no buffer, oblivious
    Request req;
    req.type = ReqType::Rng;
    req.core = 1;
    req.token = 7;
    ASSERT_TRUE(mc->enqueue(req, now));
    EXPECT_EQ(mc->pendingRngJobs(), 1u);
    tickN(100);
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_EQ(completions[0].type, ReqType::Rng);
    EXPECT_EQ(mc->stats().rngJobsCompleted, 1u);
    EXPECT_GT(mc->rngOccupiedCycles(), 0u);
}

TEST_F(MemoryControllerTest, RngObliviousStallsRegularReadsDuringRng)
{
    build(McConfig{});
    Request rng;
    rng.type = ReqType::Rng;
    rng.core = 1;
    rng.token = 1;
    ASSERT_TRUE(mc->enqueue(rng, now));
    Request rd;
    rd.type = ReqType::Read;
    rd.addr = 0;
    rd.core = 0;
    rd.token = 2;
    ASSERT_TRUE(mc->enqueue(rd, now));
    tickN(200);
    ASSERT_EQ(completions.size(), 2u);
    // The RNG completion precedes the read: regular traffic stalled.
    EXPECT_EQ(completions[0].type, ReqType::Rng);
    EXPECT_EQ(completions[1].type, ReqType::Read);
}

TEST_F(MemoryControllerTest, BufferServesWhenFilled)
{
    McConfig cfg;
    cfg.rngAwareQueueing = true;
    cfg.bufferEntries = 16;
    cfg.fill = FillMode::Engine;
    cfg.predictor = "none"; // fill on every idle cycle
    build(cfg);

    // Let the idle system fill its buffer.
    tickN(2000);
    ASSERT_NE(mc->buffer(), nullptr);
    EXPECT_TRUE(mc->buffer()->canServe64(1));

    Request req;
    req.type = ReqType::Rng;
    req.core = 1;
    req.token = 9;
    ASSERT_TRUE(mc->enqueue(req, now));
    tickN(cfg.bufferServeLatency + 1);
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_EQ(mc->stats().rngServedFromBuffer, 1u);
    EXPECT_DOUBLE_EQ(mc->stats().bufferServeRate(), 1.0);
}

TEST_F(MemoryControllerTest, BufferFillStopsWhenFull)
{
    McConfig cfg;
    cfg.rngAwareQueueing = true;
    cfg.bufferEntries = 4;
    cfg.fill = FillMode::Engine;
    cfg.predictor = "none";
    build(cfg);
    tickN(5000);
    EXPECT_GE(mc->buffer()->levelBits(), 4 * 64.0 - 8.0);
    const Cycle occupied = mc->rngOccupiedCycles();
    tickN(1000);
    // Engines must not keep burning cycles once the buffer is full.
    EXPECT_LE(mc->rngOccupiedCycles() - occupied, 100u);
}

TEST_F(MemoryControllerTest, GreedyOracleFillsWithoutEngineCost)
{
    McConfig cfg;
    cfg.rngAwareQueueing = true;
    cfg.bufferEntries = 16;
    cfg.fill = FillMode::GreedyOracle;
    build(cfg);
    tickN(3000);
    EXPECT_GT(mc->buffer()->levelBits(), 0.0);
    EXPECT_EQ(mc->rngOccupiedCycles(), 0u);
}

TEST_F(MemoryControllerTest, StagingServesQuacLeftovers)
{
    McConfig cfg; // oblivious, no buffer
    mc = std::make_unique<MemoryController>(
        cfg, timings, geom, trng::TrngMechanism::quacTrng(), 2);
    std::vector<Completion> done;
    mc->setCompletionCallback(
        [&](CoreId core, std::uint64_t token, ReqType type, ServePath) {
            done.push_back({core, token, type});
        });

    Request req;
    req.type = ReqType::Rng;
    req.core = 1;
    req.token = 0;
    ASSERT_TRUE(mc->enqueue(req, now));
    for (Cycle i = 0; i < 400; ++i)
        mc->tick(now++);
    ASSERT_EQ(done.size(), 1u);
    // One 512-bit QUAC round leaves 448 bits staged.
    EXPECT_GE(mc->stagingLevel(), 448.0 - 1.0);

    // The next request is served from staging, quickly.
    req.token = 1;
    ASSERT_TRUE(mc->enqueue(req, now));
    for (Cycle i = 0; i < cfg.bufferServeLatency + 2; ++i)
        mc->tick(now++);
    EXPECT_EQ(done.size(), 2u);
    EXPECT_EQ(mc->stats().rngServedFromStaging, 1u);
}

TEST_F(MemoryControllerTest, RngQueueCapacityBackpressure)
{
    McConfig cfg;
    cfg.rngQueueCap = 2;
    build(cfg);
    Request req;
    req.type = ReqType::Rng;
    req.core = 1;
    // Do not tick: jobs accumulate.
    req.token = 0;
    EXPECT_TRUE(mc->enqueue(req, now));
    req.token = 1;
    EXPECT_TRUE(mc->enqueue(req, now));
    req.token = 2;
    EXPECT_FALSE(mc->enqueue(req, now));
}

TEST_F(MemoryControllerTest, ReadQueueFullRejectsRequests)
{
    McConfig cfg;
    cfg.readQueueCap = 2;
    build(cfg);
    Request req;
    req.type = ReqType::Read;
    req.core = 0;
    // All to channel 0 (line addresses multiple of 4).
    req.addr = 0;
    EXPECT_TRUE(mc->enqueue(req, now));
    req.addr = 4 * 64;
    EXPECT_TRUE(mc->enqueue(req, now));
    req.addr = 8 * 64;
    EXPECT_FALSE(mc->enqueue(req, now));
}

TEST_F(MemoryControllerTest, IdlePeriodsAreRecorded)
{
    build(McConfig{});
    tickN(100);
    Request req;
    req.type = ReqType::Read;
    req.addr = 0;
    req.core = 0;
    req.token = 0;
    ASSERT_TRUE(mc->enqueue(req, now));
    ASSERT_FALSE(mc->idlePeriods(0).empty());
    EXPECT_GE(mc->idlePeriods(0).back(), 100u);
}

TEST_F(MemoryControllerTest, PredictorStatsExposedOnlyWithPredictor)
{
    build(McConfig{});
    EXPECT_FALSE(mc->predictorStats().has_value());

    McConfig cfg;
    cfg.rngAwareQueueing = true;
    cfg.bufferEntries = 16;
    cfg.fill = FillMode::Engine;
    cfg.predictor = "simple";
    build(cfg);
    EXPECT_TRUE(mc->predictorStats().has_value());
}

TEST_F(MemoryControllerTest, WriteDrainRespectsWatermarks)
{
    McConfig cfg;
    cfg.writeDrainHigh = 6;
    cfg.writeDrainLow = 2;
    build(cfg);

    // Interleave reads and writes to one channel; reads must keep
    // flowing while writes sit below the high watermark.
    for (unsigned i = 0; i < 5; ++i) {
        Request wr;
        wr.type = ReqType::Write;
        wr.addr = (4 * i) * 64 * 4; // channel 0, streaming
        wr.core = 0;
        wr.token = 100 + i;
        ASSERT_TRUE(mc->enqueue(wr, now));
    }
    Request rd;
    rd.type = ReqType::Read;
    rd.addr = 64 * 4 * 1000;
    rd.core = 0;
    rd.token = 1;
    ASSERT_TRUE(mc->enqueue(rd, now));

    tickN(40);
    // The read completed even though writes were queued first.
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_EQ(completions[0].type, ReqType::Read);

    // Push past the high watermark: drain kicks in and empties.
    for (unsigned i = 5; i < 8; ++i) {
        Request wr;
        wr.type = ReqType::Write;
        wr.addr = (4 * i) * 64 * 4;
        wr.core = 0;
        wr.token = 100 + i;
        ASSERT_TRUE(mc->enqueue(wr, now));
    }
    tickN(600);
    EXPECT_EQ(mc->writeQueueSize(0), 0u);
}

TEST_F(MemoryControllerTest, RequestsRouteToDecodedChannel)
{
    build(McConfig{});
    // Line-interleaved mapping: line i -> channel i % 4.
    for (unsigned i = 0; i < 8; ++i) {
        Request rd;
        rd.type = ReqType::Read;
        rd.addr = static_cast<Addr>(i) * 64;
        rd.core = 0;
        rd.token = i;
        ASSERT_TRUE(mc->enqueue(rd, now));
    }
    for (unsigned ch = 0; ch < 4; ++ch)
        EXPECT_EQ(mc->readQueueSize(ch), 2u);
}

TEST_F(MemoryControllerTest, MultipleRngJobsCompleteInOrder)
{
    build(McConfig{});
    for (unsigned i = 0; i < 4; ++i) {
        Request req;
        req.type = ReqType::Rng;
        req.core = 1;
        req.token = i;
        ASSERT_TRUE(mc->enqueue(req, now));
    }
    tickN(600);
    ASSERT_EQ(completions.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(completions[i].token, i);
}

TEST_F(MemoryControllerTest, RowHitsCompleteFasterThanConflicts)
{
    build(McConfig{});
    // Two reads to the same row (hit after activation) vs two reads to
    // conflicting rows in one bank.
    auto run_pair = [&](Addr a, Addr b) {
        completions.clear();
        Request r1;
        r1.type = ReqType::Read;
        r1.addr = a;
        r1.core = 0;
        r1.token = 1;
        Request r2 = r1;
        r2.addr = b;
        r2.token = 2;
        const Cycle start = now;
        EXPECT_TRUE(mc->enqueue(r1, now));
        EXPECT_TRUE(mc->enqueue(r2, now));
        while (completions.size() < 2)
            mc->tick(now++);
        return now - start;
    };
    // Same row: consecutive columns on channel 0 (stride 4 lines).
    const Cycle hit_time = run_pair(0, 4 * 64);
    // Row conflict: same bank, different row. Row stride on channel 0:
    // rows advance every colsPerRow*banks*channels lines.
    const Addr row_stride = Addr(128) * 8 * 4 * 64;
    const Cycle conflict_time = run_pair(0, row_stride);
    EXPECT_LT(hit_time, conflict_time);
}
