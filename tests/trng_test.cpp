/**
 * @file
 * Tests for the TRNG substrate: mechanism parameter math, the simulated
 * entropy source, statistical bitstream quality, and the per-channel
 * RNG-mode engine state machine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/dram_channel.h"
#include "trng/bit_quality.h"
#include "trng/entropy_source.h"
#include "trng/rng_engine.h"
#include "trng/trng_mechanism.h"

using namespace dstrange;
using namespace dstrange::trng;

TEST(TrngMechanism, DRangeThroughputMatchesCalibration)
{
    const TrngMechanism m = TrngMechanism::dRange();
    EXPECT_NEAR(m.perChannelThroughputMbps(), 1280.0, 1.0);
    EXPECT_NEAR(m.systemThroughputMbps(4), 5120.0, 4.0);
}

TEST(TrngMechanism, QuacHasHigherThroughputAndLatency)
{
    const TrngMechanism d = TrngMechanism::dRange();
    const TrngMechanism q = TrngMechanism::quacTrng();
    EXPECT_GT(q.perChannelThroughputMbps(), d.perChannelThroughputMbps());
    EXPECT_GT(q.demandLatency(64, 4), d.demandLatency(64, 4));
    EXPECT_NEAR(q.perChannelThroughputMbps(), 3442.0, 5.0);
}

TEST(TrngMechanism, DemandLatencyScalesWithBitsAndChannels)
{
    const TrngMechanism m = TrngMechanism::dRange();
    // 64 bits over 4 channels: 2 rounds each.
    EXPECT_EQ(m.demandLatency(64, 4),
              m.switchInLatency + 2 * m.roundLatency + m.switchOutLatency);
    // One channel: 8 rounds.
    EXPECT_EQ(m.demandLatency(64, 1),
              m.switchInLatency + 8 * m.roundLatency + m.switchOutLatency);
    // More channels never increase latency.
    EXPECT_LE(m.demandLatency(64, 8), m.demandLatency(64, 4));
}

TEST(TrngMechanism, SweepMechanismHitsTargetSystemThroughput)
{
    for (double mbps : {200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0}) {
        const TrngMechanism m =
            TrngMechanism::withSystemThroughput(mbps, 4);
        EXPECT_NEAR(m.systemThroughputMbps(4), mbps, mbps * 0.01)
            << "target " << mbps;
        // Round latency is held at D-RaNGe's to isolate throughput.
        EXPECT_EQ(m.roundLatency, TrngMechanism::dRange().roundLatency);
    }
}

TEST(EntropySource, DeterministicAndCounted)
{
    EntropySource a(5), b(5);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next64(), b.next64());
    EXPECT_EQ(a.totalBitsHarvested(), 6400u);
}

TEST(EntropySource, NextBytesSizesAndCounts)
{
    EntropySource src(7);
    const auto bytes = src.nextBytes(100);
    EXPECT_EQ(bytes.size(), 100u);
    // 100 bytes need 13 words internally.
    EXPECT_EQ(src.totalBitsHarvested(), 13u * 64u);
}

class BitQualityTest : public ::testing::Test
{
  protected:
    std::vector<std::uint8_t>
    randomBytes(std::size_t n, std::uint64_t seed)
    {
        EntropySource src(seed);
        return src.nextBytes(n);
    }
};

TEST_F(BitQualityTest, GoodSourcePassesAllTests)
{
    const auto bytes = randomBytes(1 << 16, 11);
    EXPECT_TRUE(monobitTest(bytes).pass);
    EXPECT_TRUE(runsTest(bytes).pass);
    EXPECT_TRUE(chiSquareByteTest(bytes).pass);
    EXPECT_TRUE(serialCorrelationTest(bytes).pass);
    EXPECT_GT(shannonEntropyPerByte(bytes), 7.99);
}

TEST_F(BitQualityTest, ConstantStreamFailsMonobit)
{
    const std::vector<std::uint8_t> zeros(1 << 14, 0x00);
    EXPECT_FALSE(monobitTest(zeros).pass);
    EXPECT_DOUBLE_EQ(shannonEntropyPerByte(zeros), 0.0);
}

TEST_F(BitQualityTest, AlternatingPatternFailsRunsTest)
{
    // 0x55 = 01010101: maximal run count, far above expectation.
    const std::vector<std::uint8_t> alt(1 << 14, 0x55);
    EXPECT_FALSE(runsTest(alt).pass);
}

TEST_F(BitQualityTest, BiasedStreamFailsChiSquare)
{
    auto bytes = randomBytes(1 << 16, 13);
    // Skew: force a quarter of the bytes to a single value.
    for (std::size_t i = 0; i < bytes.size(); i += 4)
        bytes[i] = 0xab;
    EXPECT_FALSE(chiSquareByteTest(bytes).pass);
}

TEST_F(BitQualityTest, SequentialBytesFailSerialCorrelation)
{
    std::vector<std::uint8_t> ramp(1 << 14);
    for (std::size_t i = 0; i < ramp.size(); ++i)
        ramp[i] = static_cast<std::uint8_t>(i);
    EXPECT_FALSE(serialCorrelationTest(ramp).pass);
}

class RngEngineTest : public ::testing::Test
{
  protected:
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan{t, g};
    TrngMechanism mech = TrngMechanism::dRange();
};

TEST_F(RngEngineTest, ProducesBitsPerRoundAfterSwitchIn)
{
    RngEngine eng(mech, chan);
    EXPECT_TRUE(eng.idle());
    eng.start(0);
    EXPECT_TRUE(eng.active());

    double produced = 0.0;
    Cycle first_bits_at = 0;
    for (Cycle c = 0; c < 200 && produced == 0.0; ++c) {
        produced = eng.tick(c);
        first_bits_at = c;
    }
    EXPECT_DOUBLE_EQ(produced, mech.bitsPerRound);
    // Bits appear at the end of switch-in plus one round.
    EXPECT_EQ(first_bits_at + 1, mech.switchInLatency + mech.roundLatency);
}

TEST_F(RngEngineTest, StopFinishesCurrentRoundThenExits)
{
    RngEngine eng(mech, chan);
    eng.start(0);
    // Run into the first round, then ask to stop.
    for (Cycle c = 0; c < mech.switchInLatency + 1; ++c)
        eng.tick(c);
    eng.requestStop();
    double bits = 0.0;
    Cycle c = mech.switchInLatency + 1;
    while (eng.active() && c < 1000) {
        bits += eng.tick(c);
        ++c;
    }
    EXPECT_TRUE(eng.idle());
    // Exactly one round completed before switching out.
    EXPECT_DOUBLE_EQ(bits, mech.bitsPerRound);
    EXPECT_DOUBLE_EQ(eng.totalBits(), mech.bitsPerRound);
}

TEST_F(RngEngineTest, CancelStopContinuesRounds)
{
    RngEngine eng(mech, chan);
    eng.start(0);
    eng.requestStop();
    eng.cancelStop();
    double bits = 0.0;
    for (Cycle c = 0; c < mech.switchInLatency + 3 * mech.roundLatency + 2;
         ++c) {
        bits += eng.tick(c);
    }
    EXPECT_GE(bits, 3 * mech.bitsPerRound);
    EXPECT_TRUE(eng.active());
}

TEST_F(RngEngineTest, OccupiesChannelWhileActive)
{
    RngEngine eng(mech, chan);
    eng.start(0);
    EXPECT_TRUE(chan.rngBusy(1));
    EXPECT_FALSE(chan.canIssue(dram::DramCmd::Act, 0, 1));
    // Sustained occupancy accounting.
    for (Cycle c = 0; c < 100; ++c)
        eng.tick(c);
    EXPECT_GT(eng.totalOccupiedCycles(), 90u);
}

TEST_F(RngEngineTest, SustainedThroughputMatchesMechanism)
{
    RngEngine eng(mech, chan);
    eng.start(0);
    const Cycle horizon = 100000;
    double bits = 0.0;
    for (Cycle c = 0; c < horizon; ++c)
        bits += eng.tick(c);
    const double mbps = bits / (horizon / kBusFreqHz) / 1e6;
    EXPECT_NEAR(mbps, mech.perChannelThroughputMbps(),
                mech.perChannelThroughputMbps() * 0.02);
}

TEST_F(RngEngineTest, RoundsCountedForEnergy)
{
    RngEngine eng(mech, chan);
    eng.start(0);
    for (Cycle c = 0; c < mech.switchInLatency + 5 * mech.roundLatency + 1;
         ++c) {
        eng.tick(c);
    }
    EXPECT_GE(chan.energyCounters().rngRounds, 5u);
}
