/**
 * @file
 * Integration tests across the full stack: the paper's headline claims
 * at reduced scale — DR-STRaNGe improves non-RNG performance, RNG
 * performance, fairness, and energy over the RNG-oblivious baseline —
 * plus cross-design and cross-mechanism sanity.
 */

#include <gtest/gtest.h>

#include "common/stats_util.h"
#include "sim/runner.h"

using namespace dstrange;
using namespace dstrange::sim;

namespace {

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.instrBudget = 60000;
    return cfg;
}

workloads::WorkloadSpec
mix(const std::string &app, double mbps = 5120.0)
{
    workloads::WorkloadSpec spec;
    spec.name = app + "+rng";
    spec.apps = {app};
    spec.rngThroughputMbps = mbps;
    return spec;
}

/** A small but diverse slice of the paper's 43-app pool. */
const std::vector<std::string> kSampleApps = {
    "ycsb2", "sphinx3", "jp2d", "cactus", "soplex", "leslie3d", "mcf",
};

} // namespace

class HeadlineClaims : public ::testing::Test
{
  protected:
    HeadlineClaims() : runner(smallConfig()) {}

    struct Averages
    {
        double nonRng = 0.0;
        double rng = 0.0;
        double unfair = 0.0;
        double energy = 0.0;
        double cycles = 0.0;
    };

    Averages
    averagesFor(SystemDesign design)
    {
        std::vector<double> non_rng, rng, unfair, energy, cycles;
        for (const auto &app : kSampleApps) {
            const auto res = runner.run(design, mix(app));
            non_rng.push_back(res.avgNonRngSlowdown());
            rng.push_back(res.rngSlowdown());
            unfair.push_back(res.unfairnessIndex);
            energy.push_back(res.energyNj);
            cycles.push_back(static_cast<double>(res.busCycles));
        }
        return {mean(non_rng), mean(rng), mean(unfair), mean(energy),
                mean(cycles)};
    }

    Runner runner;
};

TEST_F(HeadlineClaims, DrStrangeImprovesAllHeadlineMetrics)
{
    const Averages base = averagesFor(SystemDesign::RngOblivious);
    const Averages dr = averagesFor(SystemDesign::DrStrange);

    // Paper Section 8: non-RNG -17.9%, RNG -25.1%, fairness +32.1%,
    // energy -21%, memory cycles -15.8% (shape, not absolute numbers).
    EXPECT_LT(dr.nonRng, base.nonRng * 0.95);
    EXPECT_LT(dr.rng, base.rng * 0.95);
    EXPECT_LT(dr.unfair, base.unfair * 0.9);
    EXPECT_LT(dr.energy, base.energy * 0.95);
    EXPECT_LT(dr.cycles, base.cycles * 0.95);
}

TEST_F(HeadlineClaims, GreedyIdleSitsBetweenBaselineAndDrStrange)
{
    const Averages base = averagesFor(SystemDesign::RngOblivious);
    const Averages greedy = averagesFor(SystemDesign::GreedyIdle);
    const Averages dr = averagesFor(SystemDesign::DrStrange);

    EXPECT_LT(greedy.nonRng, base.nonRng);
    EXPECT_LT(greedy.rng, base.rng);
    // DR-STRaNGe matches or beats the greedy oracle on the RNG side via
    // its low-utilization prediction (paper Section 8.1).
    EXPECT_LE(dr.rng, greedy.rng * 1.02);
}

TEST_F(HeadlineClaims, BufferSizeZeroDisablesBufferBenefits)
{
    Runner r(smallConfig());
    r.base().bufferEntries = 0;
    const auto no_buf = r.run(SystemDesign::DrStrange, mix("ycsb2"));
    EXPECT_DOUBLE_EQ(no_buf.bufferServeRate, 0.0);

    const auto with_buf =
        runner.run(SystemDesign::DrStrange, mix("ycsb2"));
    EXPECT_GT(with_buf.bufferServeRate, 0.3);
    EXPECT_LT(with_buf.rngSlowdown(), no_buf.rngSlowdown());
}

TEST_F(HeadlineClaims, HigherRngIntensityHurtsBaselineMore)
{
    Runner r(smallConfig());
    const auto low =
        r.run(SystemDesign::RngOblivious, mix("soplex", 640.0));
    const auto high =
        r.run(SystemDesign::RngOblivious, mix("soplex", 5120.0));
    EXPECT_GT(high.avgNonRngSlowdown(), low.avgNonRngSlowdown());
    EXPECT_GE(high.unfairnessIndex, low.unfairnessIndex * 0.95);
}

TEST(Integration, QuacMechanismAlsoBenefits)
{
    SimConfig cfg = smallConfig();
    cfg.mechanism = trng::TrngMechanism::quacTrng();
    Runner runner(cfg);
    std::vector<double> base_sd, dr_sd;
    for (const auto &app : {"ycsb2", "cactus", "mcf"}) {
        base_sd.push_back(runner.run(SystemDesign::RngOblivious, mix(app))
                              .avgNonRngSlowdown());
        dr_sd.push_back(runner.run(SystemDesign::DrStrange, mix(app))
                            .avgNonRngSlowdown());
    }
    EXPECT_LT(mean(dr_sd), mean(base_sd));
}

TEST(Integration, RngAwareSchedulerAloneHelpsRngAtBoundedCost)
{
    // Without the buffer, the RNG-aware scheduler's batching (parking in
    // RNG mode between request bursts) speeds up the RNG application;
    // fairness and non-RNG performance stay within a small band of the
    // baseline. The large fairness gains of the full design come from
    // the random number buffer (see HeadlineClaims).
    Runner runner(smallConfig());
    std::vector<double> base_unf, aware_unf, base_rng, aware_rng;
    for (const auto &app : kSampleApps) {
        const auto base = runner.run(SystemDesign::RngOblivious, mix(app));
        const auto aware =
            runner.run(SystemDesign::RngAwareNoBuffer, mix(app));
        base_unf.push_back(base.unfairnessIndex);
        aware_unf.push_back(aware.unfairnessIndex);
        base_rng.push_back(base.rngSlowdown());
        aware_rng.push_back(aware.rngSlowdown());
    }
    EXPECT_LT(mean(aware_rng), mean(base_rng));
    EXPECT_LT(mean(aware_unf), mean(base_unf) * 1.15);
}

TEST(Integration, PrioritizedApplicationGainsPerformance)
{
    SimConfig cfg = smallConfig();
    Runner equal(cfg);
    const auto base = equal.run(SystemDesign::DrStrange, mix("soplex"));

    SimConfig pr = cfg;
    pr.priorities = {5, 0}; // non-RNG app (core 0) prioritized
    Runner pri(pr);
    const auto non_rng_first =
        pri.run(SystemDesign::DrStrange, mix("soplex"));
    EXPECT_LE(non_rng_first.avgNonRngSlowdown(),
              base.avgNonRngSlowdown() * 1.02);

    SimConfig pr2 = cfg;
    pr2.priorities = {0, 5}; // RNG app (core 1) prioritized
    Runner pri2(pr2);
    const auto rng_first = pri2.run(SystemDesign::DrStrange, mix("soplex"));
    EXPECT_LE(rng_first.rngSlowdown(), base.rngSlowdown() * 1.02);
}

TEST(Integration, FourCoreWorkloadsRunAcrossDesigns)
{
    SimConfig cfg = smallConfig();
    cfg.instrBudget = 30000;
    Runner runner(cfg);
    const auto groups = workloads::fourCoreGroups(3);
    const auto &spec = groups[15]; // one LLHS workload
    for (SystemDesign d : {SystemDesign::RngOblivious,
                           SystemDesign::GreedyIdle,
                           SystemDesign::DrStrange}) {
        const auto res = runner.run(d, spec);
        EXPECT_EQ(res.cores.size(), 4u);
        EXPECT_GE(res.unfairnessIndex, 1.0);
    }
}

TEST(Integration, PredictorAccuracyIsReported)
{
    Runner runner(smallConfig());
    const auto res = runner.run(SystemDesign::DrStrange, mix("cactus"));
    EXPECT_GE(res.predictorAccuracy, 0.0);
    EXPECT_LE(res.predictorAccuracy, 1.0);
    const auto no_pred =
        runner.run(SystemDesign::DrStrangeNoPred, mix("cactus"));
    EXPECT_DOUBLE_EQ(no_pred.predictorAccuracy, -1.0);
}

TEST(Integration, RlPredictorDesignRunsAndFills)
{
    Runner runner(smallConfig());
    const auto res = runner.run(SystemDesign::DrStrangeRl, mix("ycsb2"));
    EXPECT_GT(res.bufferServeRate, 0.1);
    EXPECT_GE(res.predictorAccuracy, 0.0);
}

TEST(Integration, RequestAccountingBalances)
{
    Runner runner(smallConfig());
    const auto res = runner.run(SystemDesign::DrStrange, mix("jp2d"));
    const auto &s = res.mcStats;
    // Every RNG request is served by exactly one of the three paths;
    // only the handful in flight when the simulation stops may remain.
    const std::uint64_t served = s.rngServedFromBuffer +
                                 s.rngServedFromStaging +
                                 s.rngJobsCompleted;
    EXPECT_GE(s.rngRequests, served);
    EXPECT_LE(s.rngRequests - served, 33u); // <= RNG queue capacity + 1
}
