/**
 * @file
 * Tests for the open-loop RNG-as-a-service layer: the log-linear
 * latency histogram (exact low buckets, nearest-rank percentiles,
 * count-addition merge), the stats_util exact-percentile/merge helpers,
 * seeded golden-value arrival streams per ArrivalRegistry key,
 * closed-loop feedback, service.* config text and builder wiring,
 * end-to-end service cells through the Runner (bit-identical reruns,
 * fast-forward lockstep, saturation verdicts, SloReport JSON round
 * trips), per-cell cost records in the ResultStore, and balanced shard
 * assignment.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "drstrange.h"
#include "sim/lockstep.h"

using namespace dstrange;

namespace fs = std::filesystem;

namespace {

/** Self-cleaning unique temporary directory (gtest's TempDir root). */
class TempDir
{
  public:
    TempDir()
    {
        // gtest_discover_tests runs every case as its own process of
        // this binary, so a per-process counter alone collides across
        // parallel ctest jobs — qualify the name with the PID.
        static int counter = 0;
#ifdef _WIN32
        const int pid = _getpid();
#else
        const int pid = ::getpid();
#endif
        path = fs::path(::testing::TempDir()) /
               ("drstrange-service-" + std::to_string(pid) + "-" +
                std::to_string(++counter));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }

  private:
    fs::path path;
};

/** A service-only configuration (no traced cores). */
sim::SimConfig
serviceConfig(double mbps, Cycle duration = 20000)
{
    sim::SimConfig cfg;
    cfg.service.enabled = true;
    cfg.service.offeredMbps = mbps;
    cfg.service.durationCycles = duration;
    cfg.service.sloTargetCycles = 500;
    return cfg;
}

workloads::WorkloadSpec
serviceSpec()
{
    workloads::WorkloadSpec spec;
    spec.name = "svc";
    spec.rngThroughputMbps = 0.0;
    return spec;
}

service::ArrivalParams
goldenParams()
{
    service::ArrivalParams p;
    p.meanGapCycles = 10.0;
    p.clients = 4;
    p.burstFactor = 4.0;
    p.periodCycles = 20000;
    p.seed = 42;
    return p;
}

std::vector<Cycle>
firstArrivals(const std::string &key, const service::ArrivalParams &p,
              std::size_t n)
{
    auto proc = service::ArrivalRegistry::instance().make(key, p);
    std::vector<Cycle> out;
    for (std::size_t i = 0; i < n && proc->peek() != kNoEvent; ++i) {
        out.push_back(proc->peek());
        proc->pop();
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// LatencyHistogram.
// ---------------------------------------------------------------------

TEST(LatencyHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(LatencyHistogram, SingleSampleEveryPercentile)
{
    LatencyHistogram h;
    h.record(42);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 42u);
    EXPECT_EQ(h.max(), 42u);
    EXPECT_EQ(h.mean(), 42.0);
    EXPECT_EQ(h.percentile(0.001), 42u);
    EXPECT_EQ(h.percentile(0.5), 42u);
    EXPECT_EQ(h.percentile(1.0), 42u);
}

TEST(LatencyHistogram, ExactBelowLinearLimit)
{
    // Values below 2^7 land in exact single-value buckets, so the
    // nearest-rank percentile over 1..100 is the rank itself.
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    EXPECT_EQ(h.percentile(0.50), 50u);
    EXPECT_EQ(h.percentile(0.99), 99u);
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.valueSum(), 5050u);
}

TEST(LatencyHistogram, BucketRoundTripAndQuantizationBound)
{
    for (std::uint64_t v :
         {0ull, 1ull, 127ull, 128ull, 129ull, 1000ull, 65535ull,
          1000000ull, (1ull << 40) + 12345ull}) {
        const std::size_t idx = LatencyHistogram::bucketOf(v);
        ASSERT_LT(idx, LatencyHistogram::kBuckets);
        const std::uint64_t ub = LatencyHistogram::bucketUpperBound(idx);
        EXPECT_GE(ub, v);
        // The reported bound overshoots by at most one sub-bucket
        // (2^-6 relative).
        EXPECT_LE(static_cast<double>(ub - v),
                  static_cast<double>(v) / 64.0 + 1.0);
        EXPECT_EQ(LatencyHistogram::bucketOf(ub), idx);
    }
}

TEST(LatencyHistogram, PercentilesAreMonotone)
{
    LatencyHistogram h;
    Xoshiro256ss rng(7);
    for (int i = 0; i < 5000; ++i)
        h.record(rng.next() % 100000);
    const std::uint64_t p50 = h.percentile(0.50);
    const std::uint64_t p99 = h.percentile(0.99);
    const std::uint64_t p999 = h.percentile(0.999);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    EXPECT_GE(p999, h.max() / 2); // sanity: in the right region
}

TEST(LatencyHistogram, MergeEqualsPooled)
{
    LatencyHistogram a, b, pooled;
    for (std::uint64_t v : {3ull, 900ull, 12ull, 4096ull}) {
        a.record(v);
        pooled.record(v);
    }
    for (std::uint64_t v : {1ull, 77ull, 500000ull}) {
        b.record(v);
        pooled.record(v);
    }
    LatencyHistogram merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), pooled.count());
    EXPECT_EQ(merged.valueSum(), pooled.valueSum());
    EXPECT_EQ(merged.min(), pooled.min());
    EXPECT_EQ(merged.max(), pooled.max());
    EXPECT_EQ(merged.percentile(0.5), pooled.percentile(0.5));
    EXPECT_EQ(merged.fingerprint(), pooled.fingerprint());

    // Merging an empty histogram is a no-op, either way around.
    LatencyHistogram empty;
    LatencyHistogram c = pooled;
    c.merge(empty);
    EXPECT_EQ(c.fingerprint(), pooled.fingerprint());
    LatencyHistogram d;
    d.merge(pooled);
    EXPECT_EQ(d.fingerprint(), pooled.fingerprint());
}

// ---------------------------------------------------------------------
// stats_util helpers.
// ---------------------------------------------------------------------

TEST(StatsUtil, ExactPercentileEdgeCases)
{
    EXPECT_EQ(exactPercentile({}, 0.5), 0.0);
    EXPECT_EQ(exactPercentile({5.0}, 0.0), 5.0);
    EXPECT_EQ(exactPercentile({5.0}, 0.5), 5.0);
    EXPECT_EQ(exactPercentile({5.0}, 1.0), 5.0);
}

TEST(StatsUtil, ExactPercentileIsNearestRank)
{
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    EXPECT_EQ(exactPercentile(v, 0.25), 1.0);
    EXPECT_EQ(exactPercentile(v, 0.50), 2.0);
    EXPECT_EQ(exactPercentile(v, 0.75), 3.0);
    EXPECT_EQ(exactPercentile(v, 1.00), 4.0);
    // Always an actual sample, unlike the interpolating percentile().
    EXPECT_EQ(exactPercentile(v, 0.6), 3.0);
    // Out-of-range p clamps.
    EXPECT_EQ(exactPercentile(v, -1.0), 1.0);
    EXPECT_EQ(exactPercentile(v, 2.0), 4.0);
}

TEST(StatsUtil, MergeHistogramsHelper)
{
    LatencyHistogram a, b;
    a.record(10);
    a.record(20);
    b.record(30);
    const LatencyHistogram merged = mergeHistograms({a, b});
    EXPECT_EQ(merged.count(), 3u);
    EXPECT_EQ(merged.min(), 10u);
    EXPECT_EQ(merged.max(), 30u);
    EXPECT_EQ(mergeHistograms({}).count(), 0u);
}

// ---------------------------------------------------------------------
// Arrival processes: golden streams and registry behavior.
// ---------------------------------------------------------------------

TEST(ArrivalProcess, GoldenPoissonStream)
{
    const std::vector<Cycle> expect = {11, 27, 32, 33, 34, 43, 52, 59};
    EXPECT_EQ(firstArrivals("poisson", goldenParams(), 8), expect);
}

TEST(ArrivalProcess, GoldenBurstyStream)
{
    const std::vector<Cycle> expect = {2, 2, 9, 10, 12, 13, 13, 19};
    EXPECT_EQ(firstArrivals("bursty", goldenParams(), 8), expect);
}

TEST(ArrivalProcess, GoldenDiurnalStream)
{
    const std::vector<Cycle> expect = {30, 54, 86, 94, 97, 108, 112, 117};
    EXPECT_EQ(firstArrivals("diurnal", goldenParams(), 8), expect);
}

TEST(ArrivalProcess, StreamsAreSeedDeterministic)
{
    for (const std::string &key :
         service::ArrivalRegistry::instance().keys()) {
        EXPECT_EQ(firstArrivals(key, goldenParams(), 16),
                  firstArrivals(key, goldenParams(), 16))
            << key;
        // A different seed must change the open-loop streams.
        if (key == "closed-loop")
            continue;
        service::ArrivalParams other = goldenParams();
        other.seed = 43;
        EXPECT_NE(firstArrivals(key, goldenParams(), 16),
                  firstArrivals(key, other, 16))
            << key;
    }
}

TEST(ArrivalProcess, ArrivalsAreNondecreasing)
{
    for (const std::string &key :
         service::ArrivalRegistry::instance().keys()) {
        const auto stream = firstArrivals(key, goldenParams(), 64);
        for (std::size_t i = 1; i < stream.size(); ++i)
            EXPECT_LE(stream[i - 1], stream[i]) << key << " @" << i;
    }
}

TEST(ArrivalProcess, ClosedLoopWindowAndFeedback)
{
    service::ArrivalParams p = goldenParams();
    p.clients = 4;
    auto proc = service::ArrivalRegistry::instance().make("closed-loop", p);
    // Exactly `clients` immediate arrivals, then the window is closed.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(proc->peek(), 0u);
        proc->pop();
    }
    EXPECT_EQ(proc->peek(), kNoEvent);
    // A completion releases one follow-up arrival just after `now`.
    proc->onCompletion(100);
    EXPECT_EQ(proc->peek(), 101u);
    proc->pop();
    EXPECT_EQ(proc->peek(), kNoEvent);
}

TEST(ArrivalRegistry, DefaultKeysAndErrors)
{
    auto &reg = service::ArrivalRegistry::instance();
    for (const char *key : {"poisson", "bursty", "diurnal", "closed-loop"})
        EXPECT_TRUE(reg.contains(key)) << key;
    EXPECT_FALSE(reg.contains("nope"));
    EXPECT_THROW(reg.make("nope", goldenParams()), std::out_of_range);
    EXPECT_THROW(reg.add("poisson", nullptr), std::invalid_argument);
    EXPECT_THROW(
        reg.add("has space", [](const service::ArrivalParams &) {
            return std::unique_ptr<service::ArrivalProcess>();
        }),
        std::invalid_argument);
}

TEST(ArrivalRegistry, UserRegisteredProcess)
{
    /** Fixed-gap arrivals: deterministic without any RNG. */
    class FixedGap : public service::ArrivalProcess
    {
      public:
        explicit FixedGap(Cycle gap) : gap(gap) {}
        Cycle peek() const override { return next; }
        void pop() override { next += gap; }

      private:
        Cycle gap;
        Cycle next = 0;
    };
    auto &reg = service::ArrivalRegistry::instance();
    if (!reg.contains("fixed-gap-test"))
        reg.add("fixed-gap-test", [](const service::ArrivalParams &p) {
            return std::make_unique<FixedGap>(
                static_cast<Cycle>(p.meanGapCycles));
        });
    const std::vector<Cycle> expect = {0, 10, 20, 30};
    EXPECT_EQ(firstArrivals("fixed-gap-test", goldenParams(), 4), expect);
}

// ---------------------------------------------------------------------
// Configuration wiring: config text and the builder.
// ---------------------------------------------------------------------

TEST(ServiceConfigText, DefaultsSerializeAndRoundTrip)
{
    const sim::SimConfig cfg;
    const std::string text = sim::serializeConfig(cfg);
    EXPECT_NE(text.find("service.enabled=0"), std::string::npos);
    EXPECT_NE(text.find("service.arrival=poisson"), std::string::npos);
    const sim::SimConfig back = sim::parseConfig(text);
    EXPECT_EQ(sim::serializeConfig(back), text);
}

TEST(ServiceConfigText, AppliesEveryServiceKey)
{
    sim::SimConfig cfg;
    sim::applyConfigText(
        cfg, "service.enabled=1 service.arrival=bursty "
             "service.offered-mbps=1234.5 service.clients=7 "
             "service.burst=2.5 service.period=999 service.slo=100 "
             "service.duration=5000");
    EXPECT_TRUE(cfg.service.enabled);
    EXPECT_EQ(cfg.service.arrival, "bursty");
    EXPECT_EQ(cfg.service.offeredMbps, 1234.5);
    EXPECT_EQ(cfg.service.clients, 7u);
    EXPECT_EQ(cfg.service.burstFactor, 2.5);
    EXPECT_EQ(cfg.service.periodCycles, 999u);
    EXPECT_EQ(cfg.service.sloTargetCycles, 100u);
    EXPECT_EQ(cfg.service.durationCycles, 5000u);
    const std::string text = sim::serializeConfig(cfg);
    EXPECT_EQ(sim::serializeConfig(sim::parseConfig(text)), text);
}

TEST(ServiceConfigText, RejectsUnknownArrivalAndKeys)
{
    sim::SimConfig cfg;
    EXPECT_THROW(sim::applyConfigText(cfg, "service.arrival=nope"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applyConfigText(cfg, "service.bogus=1"),
                 std::invalid_argument);
}

TEST(ServiceBuilder, SettersAndValidation)
{
    const sim::SimulationBuilder b = sim::SimulationBuilder()
                                         .serviceEnabled(true)
                                         .serviceArrival("diurnal")
                                         .serviceOfferedMbps(2560.0)
                                         .serviceClients(32)
                                         .serviceSloTarget(250)
                                         .serviceDuration(10000);
    EXPECT_TRUE(b.config().service.enabled);
    EXPECT_EQ(b.config().service.arrival, "diurnal");
    EXPECT_EQ(b.config().service.offeredMbps, 2560.0);
    EXPECT_EQ(b.config().service.clients, 32u);
    EXPECT_EQ(b.config().service.sloTargetCycles, 250u);
    EXPECT_EQ(b.config().service.durationCycles, 10000u);
    EXPECT_THROW(sim::SimulationBuilder().serviceArrival("nope"),
                 std::out_of_range);
    // Builder text round trip carries the service keys.
    const std::string text = b.toText();
    EXPECT_EQ(sim::SimulationBuilder::fromText(text).toText(), text);
}

TEST(ServiceConfigDefaults, OfferedLoadConversion)
{
    // 5120 Mb/s over a 64-bit request at the 800 MHz bus = 10 cycles.
    EXPECT_DOUBLE_EQ(service::OpenLoopService::meanGapCycles(5120.0),
                     10.0);
    // A zero offered rate must not divide by zero.
    EXPECT_GT(service::OpenLoopService::meanGapCycles(0.0), 1e12);
}

// ---------------------------------------------------------------------
// End-to-end service cells through the Runner.
// ---------------------------------------------------------------------

TEST(ServiceRun, CompletesAndReports)
{
    sim::Runner runner(serviceConfig(2560.0));
    const auto res = runner.run(serviceConfig(2560.0), serviceSpec());
    ASSERT_TRUE(res.service.has_value());
    const service::SloReport &s = *res.service;
    EXPECT_GT(s.offered, 0u);
    EXPECT_EQ(s.completed, s.offered); // below saturation: all served
    EXPECT_LE(s.p50, s.p99);
    EXPECT_LE(s.p99, s.p999);
    EXPECT_LE(s.p999, s.maxLatency);
    EXPECT_GT(s.goodputRps, 0.0);
    EXPECT_FALSE(s.saturated);
    EXPECT_EQ(s.arrival, "poisson");
    // The serve-path split covers every completion.
    EXPECT_EQ(s.servedBuffer + s.servedStaging + s.servedEngine,
              s.completed);
}

TEST(ServiceRun, RerunsBitIdentically)
{
    sim::Runner runner(serviceConfig(5120.0));
    const auto a = runner.run(serviceConfig(5120.0), serviceSpec());
    const auto b = runner.run(serviceConfig(5120.0), serviceSpec());
    EXPECT_EQ(sim::serializeWorkloadResult(a),
              sim::serializeWorkloadResult(b));
}

TEST(ServiceRun, SaturatesUnderOverloadOnly)
{
    sim::Runner runner(serviceConfig(1280.0));
    const auto low = runner.run(serviceConfig(1280.0), serviceSpec());
    ASSERT_TRUE(low.service.has_value());
    EXPECT_FALSE(low.service->saturated);

    const auto high = runner.run(serviceConfig(20480.0), serviceSpec());
    ASSERT_TRUE(high.service.has_value());
    EXPECT_TRUE(high.service->saturated);
    EXPECT_GT(high.service->p99, low.service->p99);
    EXPECT_GT(high.service->maxBacklog, low.service->maxBacklog);
}

TEST(ServiceRun, FastForwardIsBitIdentical)
{
    // The DS_LOCKSTEP invariant, driven directly: a fast-forwarded
    // service cell must match a step-1 run statistic for statistic.
    auto fingerprintWith = [](bool ff) {
        sim::System sys(serviceConfig(2560.0, 10000), {});
        sys.setFastForward(ff);
        sys.run();
        return sim::systemFingerprint(sys);
    };
    const std::string fast = fingerprintWith(true);
    EXPECT_EQ(fast, fingerprintWith(false));
    // The fingerprint actually covers the service layer.
    EXPECT_NE(fast.find("svc.completed="), std::string::npos);
    EXPECT_NE(fast.find("svc.latency_fp="), std::string::npos);
}

TEST(ServiceRun, LockstepSmoke)
{
#ifdef _WIN32
    _putenv_s("DS_LOCKSTEP", "1");
#else
    setenv("DS_LOCKSTEP", "1", 1);
#endif
    sim::Runner runner(serviceConfig(2560.0, 10000));
    // verifyLockstep throws on any fast-forward divergence.
    EXPECT_NO_THROW(
        runner.run(serviceConfig(2560.0, 10000), serviceSpec()));
#ifdef _WIN32
    _putenv_s("DS_LOCKSTEP", "");
#else
    unsetenv("DS_LOCKSTEP");
#endif
}

TEST(ServiceRun, ClosedLoopShimRuns)
{
    sim::SimConfig cfg = serviceConfig(5120.0, 5000);
    cfg.service.arrival = "closed-loop";
    cfg.service.clients = 8;
    sim::Runner runner(cfg);
    const auto res = runner.run(cfg, serviceSpec());
    ASSERT_TRUE(res.service.has_value());
    EXPECT_GT(res.service->completed, 8u);
    // The closed window keeps the backlog bounded by the client count.
    EXPECT_LE(res.service->maxBacklog, 8u);
}

TEST(ServiceRun, CoexistsWithTracedCores)
{
    sim::SimConfig cfg = serviceConfig(1280.0, 10000);
    cfg.instrBudget = 3000;
    workloads::WorkloadSpec spec;
    spec.name = "mcf+svc";
    spec.apps = {"mcf"};
    sim::Runner runner(cfg);
    const auto res = runner.run(cfg, spec);
    ASSERT_TRUE(res.service.has_value());
    EXPECT_GT(res.service->completed, 0u);
    ASSERT_GE(res.cores.size(), 1u);
    EXPECT_GT(res.cores[0].ipcShared, 0.0);
}

TEST(SloReport, JsonRoundTripIsBitExact)
{
    sim::Runner runner(serviceConfig(5120.0));
    const auto res = runner.run(serviceConfig(5120.0), serviceSpec());
    ASSERT_TRUE(res.service.has_value());

    JsonWriter w;
    res.service->writeJson(w);
    const service::SloReport back =
        service::SloReport::fromJson(JsonValue::parse(w.str()));
    JsonWriter w2;
    back.writeJson(w2);
    EXPECT_EQ(w.str(), w2.str());
    EXPECT_EQ(back.p99, res.service->p99);
    EXPECT_EQ(back.goodputRps, res.service->goodputRps);
    EXPECT_EQ(back.saturated, res.service->saturated);
}

TEST(SloReport, WorkloadResultJsonCarriesService)
{
    sim::Runner runner(serviceConfig(2560.0));
    const auto res = runner.run(serviceConfig(2560.0), serviceSpec());
    const std::string text = sim::serializeWorkloadResult(res);
    const auto back = sim::parseWorkloadResult(text);
    ASSERT_TRUE(back.service.has_value());
    EXPECT_EQ(sim::serializeWorkloadResult(back), text);

    // A service-less result omits the field entirely.
    sim::SimConfig plain;
    plain.instrBudget = 3000;
    sim::Runner plain_runner(plain);
    workloads::WorkloadSpec spec;
    spec.name = "mcf";
    spec.apps = {"mcf"};
    const auto no_svc = plain_runner.run(plain, spec);
    EXPECT_FALSE(no_svc.service.has_value());
    EXPECT_EQ(sim::serializeWorkloadResult(no_svc).find("\"service\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Cost records and balanced shard assignment.
// ---------------------------------------------------------------------

TEST(CellCosts, StoreAndLoadRoundTrip)
{
    TempDir dir;
    sim::ResultStore store(dir.str());
    EXPECT_FALSE(store.loadCellCost("cell-a").has_value());
    EXPECT_TRUE(store.storeCellCost("cell-a", 123.25));
    const auto cost = store.loadCellCost("cell-a");
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 123.25);
    // Costs survive a fingerprint change (they are estimates, not
    // correctness data) but never collide across keys.
    sim::ResultStore rebuilt(dir.str(), "other-fingerprint");
    EXPECT_TRUE(rebuilt.loadCellCost("cell-a").has_value());
    EXPECT_FALSE(rebuilt.loadCellCost("cell-b").has_value());
}

TEST(CellCosts, RecordedDuringSweeps)
{
    TempDir dir;
    auto store = std::make_shared<sim::ResultStore>(dir.str());
    sim::SimConfig base;
    base.instrBudget = 2000;
    sim::SweepRunner sweep(base, 1, store);
    workloads::WorkloadSpec spec;
    spec.name = "mcf";
    spec.apps = {"mcf"};
    const auto cells =
        sim::SweepRunner::grid({"oblivious", "drstrange"}, {spec});
    sweep.run(cells);
    for (const auto &cell : cells) {
        const auto cost =
            store->loadCellCost(sim::SweepRunner::cellKey(cell));
        ASSERT_TRUE(cost.has_value());
        EXPECT_GT(*cost, 0.0);
    }
}

TEST(BalancedShard, ParseSpec)
{
    const auto spec = sim::SweepRunner::ShardSpec::parse("1/4:balanced");
    EXPECT_EQ(spec.index, 1u);
    EXPECT_EQ(spec.count, 4u);
    EXPECT_TRUE(spec.balanced);
    EXPECT_FALSE(sim::SweepRunner::ShardSpec::parse("1/4").balanced);
    EXPECT_THROW(sim::SweepRunner::ShardSpec::parse("1/4:bogus"),
                 std::invalid_argument);
    EXPECT_THROW(sim::SweepRunner::ShardSpec::parse(":balanced"),
                 std::invalid_argument);
}

TEST(BalancedShard, LptAssignmentFromRecordedCosts)
{
    TempDir dir;
    auto store = std::make_shared<sim::ResultStore>(dir.str());
    sim::SimConfig base;
    base.instrBudget = 2000;

    workloads::WorkloadSpec spec;
    spec.name = "mcf";
    spec.apps = {"mcf"};
    std::vector<sim::SweepRunner::Cell> cells;
    for (const char *design :
         {"oblivious", "greedy", "drstrange", "drstrange-nopred"}) {
        sim::SweepRunner::Cell cell;
        cell.design = design;
        cell.spec = spec;
        cells.push_back(std::move(cell));
    }
    // One dominant cell: LPT must put it alone on one shard and the
    // three cheap cells together on the other.
    const std::vector<double> costs = {8.0, 1.0, 1.0, 1.0};
    for (std::size_t i = 0; i < cells.size(); ++i)
        ASSERT_TRUE(store->storeCellCost(
            sim::SweepRunner::cellKey(cells[i]), costs[i]));

    sim::SweepRunner sweep(base, 1, store);
    sim::SweepRunner::ShardSpec shard;
    shard.index = 0;
    shard.count = 2;
    shard.balanced = true;
    sweep.setShard(shard);
    const auto owners = sweep.shardOwners(cells);
    ASSERT_EQ(owners.size(), cells.size());
    EXPECT_EQ(owners[0], 0u); // costliest first, to the empty shard 0
    EXPECT_EQ(owners[1], 1u);
    EXPECT_EQ(owners[2], 1u);
    EXPECT_EQ(owners[3], 1u);

    // Every shard of the family computes the same assignment (disjoint
    // exact cover), and without a store the spec degrades to hashing.
    sim::SweepRunner other(base, 1, store);
    shard.index = 1;
    other.setShard(shard);
    EXPECT_EQ(other.shardOwners(cells), owners);

    sim::SweepRunner cacheless(base, 1, nullptr);
    cacheless.setShard(shard);
    const auto hashed = cacheless.shardOwners(cells);
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(hashed[i],
                  sim::SweepRunner::cellHash(cells[i]) % 2u);
}

TEST(BalancedShard, BalancedSweepCoversGridExactly)
{
    TempDir dir;
    auto store = std::make_shared<sim::ResultStore>(dir.str());
    sim::SimConfig base;
    base.instrBudget = 2000;
    workloads::WorkloadSpec spec;
    spec.name = "mcf";
    spec.apps = {"mcf"};
    const auto cells = sim::SweepRunner::grid(
        {"oblivious", "greedy", "drstrange"}, {spec});

    // Seed cost records with a plain run, then run both balanced shards.
    {
        sim::SweepRunner seed_run(base, 1, store);
        seed_run.run(cells);
    }
    std::vector<int> ran(cells.size(), 0);
    for (unsigned index = 0; index < 2; ++index) {
        sim::SweepRunner shard_run(base, 1, store);
        sim::SweepRunner::ShardSpec shard;
        shard.index = index;
        shard.count = 2;
        shard.balanced = true;
        shard_run.setShard(shard);
        const auto results = shard_run.run(cells);
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i].skipped)
                continue;
            EXPECT_TRUE(results[i].ok) << results[i].error;
            ran[i]++;
        }
    }
    for (std::size_t i = 0; i < ran.size(); ++i)
        EXPECT_EQ(ran[i], 1) << "cell " << i;
}
