/**
 * @file
 * Tests for the composable policy API: design presets vs. the legacy
 * enum expansion (frozen here as reference data), the scheduler /
 * predictor / design registries, the SimulationBuilder facade, the
 * key=value config text format, and the Runner's configuration-keyed
 * alone-run cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "drstrange.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

using namespace dstrange;
using namespace dstrange::sim;

namespace {

/**
 * The pre-refactor SystemDesign switch, frozen verbatim (modulo the
 * enum-to-registry-key renames) as the reference expansion. Every
 * preset built on the policy knobs must keep reproducing it exactly.
 */
mem::McConfig
legacyMcConfigFor(SystemDesign design, const SimConfig &cfg)
{
    mem::McConfig mc;
    mc.scheduler = "fr-fcfs-cap";
    mc.rngAwareQueueing = false;
    mc.bufferEntries = 0;
    mc.fill = mem::FillMode::None;
    mc.lowUtilThreshold = 0;

    const trng::TrngMechanism &fill_mech =
        cfg.fillMechanism.value_or(cfg.mechanism);
    mc.fillMechanism = cfg.fillMechanism;
    mc.periodThreshold = std::max<Cycle>(
        40, fill_mech.switchInLatency + fill_mech.roundLatency +
                fill_mech.switchOutLatency);
    mc.powerDownThreshold = cfg.powerDownThreshold;

    switch (design) {
      case SystemDesign::RngOblivious:
        break;
      case SystemDesign::FrFcfsBaseline:
        mc.scheduler = "fr-fcfs";
        break;
      case SystemDesign::BlissBaseline:
        mc.scheduler = "bliss";
        break;
      case SystemDesign::RngAwareNoBuffer:
        mc.rngAwareQueueing = true;
        break;
      case SystemDesign::GreedyIdle:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::GreedyOracle;
        break;
      case SystemDesign::DrStrangeNoPred:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictor = "none";
        mc.lowUtilThreshold = 0;
        break;
      case SystemDesign::DrStrange:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictor = "simple";
        mc.lowUtilThreshold = cfg.lowUtilThreshold;
        break;
      case SystemDesign::DrStrangeNoLowUtil:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictor = "simple";
        mc.lowUtilThreshold = 0;
        break;
      case SystemDesign::DrStrangeRl:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictor = "rl";
        mc.lowUtilThreshold = cfg.lowUtilThreshold;
        mc.rlConfig.seed = cfg.seed * 7919 + 17;
        break;
    }
    return mc;
}

void
expectSameMcConfig(const mem::McConfig &a, const mem::McConfig &b)
{
    EXPECT_EQ(a.scheduler, b.scheduler);
    EXPECT_EQ(a.columnCap, b.columnCap);
    EXPECT_EQ(a.blissThreshold, b.blissThreshold);
    EXPECT_EQ(a.blissClearingInterval, b.blissClearingInterval);
    EXPECT_EQ(a.readQueueCap, b.readQueueCap);
    EXPECT_EQ(a.writeQueueCap, b.writeQueueCap);
    EXPECT_EQ(a.rngQueueCap, b.rngQueueCap);
    EXPECT_EQ(a.writeDrainHigh, b.writeDrainHigh);
    EXPECT_EQ(a.writeDrainLow, b.writeDrainLow);
    EXPECT_EQ(a.rngAwareQueueing, b.rngAwareQueueing);
    EXPECT_EQ(a.stallLimit, b.stallLimit);
    EXPECT_EQ(a.bufferEntries, b.bufferEntries);
    EXPECT_EQ(a.bufferPartitions, b.bufferPartitions);
    EXPECT_EQ(a.bufferServeLatency, b.bufferServeLatency);
    EXPECT_EQ(a.fill, b.fill);
    EXPECT_EQ(a.fillMechanism.has_value(), b.fillMechanism.has_value());
    if (a.fillMechanism && b.fillMechanism) {
        EXPECT_EQ(a.fillMechanism->name, b.fillMechanism->name);
        EXPECT_EQ(a.fillMechanism->bitsPerRound,
                  b.fillMechanism->bitsPerRound);
        EXPECT_EQ(a.fillMechanism->roundLatency,
                  b.fillMechanism->roundLatency);
    }
    EXPECT_EQ(a.predictor, b.predictor);
    EXPECT_EQ(a.predictorEntries, b.predictorEntries);
    EXPECT_EQ(a.periodThreshold, b.periodThreshold);
    EXPECT_EQ(a.lowUtilThreshold, b.lowUtilThreshold);
    EXPECT_EQ(a.powerDownThreshold, b.powerDownThreshold);
    EXPECT_EQ(a.enableParking, b.enableParking);
    EXPECT_EQ(a.enableFillAbort, b.enableFillAbort);
    EXPECT_EQ(a.fillChannelLimit, b.fillChannelLimit);
    EXPECT_EQ(a.rlConfig.seed, b.rlConfig.seed);
    EXPECT_EQ(a.rlConfig.stateBits, b.rlConfig.stateBits);
}

workloads::WorkloadSpec
dualMix(const std::string &app, double mbps = 5120.0)
{
    workloads::WorkloadSpec spec;
    spec.name = app;
    spec.apps = {app};
    spec.rngThroughputMbps = mbps;
    return spec;
}

void
expectSameResult(const Runner::WorkloadResult &a,
                 const Runner::WorkloadResult &b)
{
    EXPECT_EQ(a.busCycles, b.busCycles);
    EXPECT_EQ(a.mcStats.readRequests, b.mcStats.readRequests);
    EXPECT_EQ(a.mcStats.rngRequests, b.mcStats.rngRequests);
    EXPECT_EQ(a.mcStats.rngServedFromBuffer,
              b.mcStats.rngServedFromBuffer);
    EXPECT_EQ(a.mcStats.sumReadLatency, b.mcStats.sumReadLatency);
    EXPECT_EQ(a.mcStats.sumRngLatency, b.mcStats.sumRngLatency);
    EXPECT_EQ(a.unfairnessIndex, b.unfairnessIndex); // bit-identical
    EXPECT_EQ(a.bufferServeRate, b.bufferServeRate);
    EXPECT_EQ(a.energyNj, b.energyNj);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].slowdown, b.cores[i].slowdown);
        EXPECT_EQ(a.cores[i].memSlowdown, b.cores[i].memSlowdown);
        EXPECT_EQ(a.cores[i].ipcShared, b.cores[i].ipcShared);
    }
}

} // namespace

// ---------------------------------------------------------------------
// Preset equivalence: builder presets == legacy enum expansion.
// ---------------------------------------------------------------------

TEST(PresetEquivalence, McConfigMatchesLegacyExpansionForAllDesigns)
{
    for (SystemDesign d : kAllDesigns) {
        SimConfig base;
        base.bufferEntries = 8;
        base.bufferPartitions = 2;
        base.lowUtilThreshold = 6;
        base.powerDownThreshold = 50;
        base.seed = 3;
        SCOPED_TRACE(designName(d));

        SimConfig preset = base;
        applyDesign(preset, d);
        expectSameMcConfig(mcConfigFor(preset),
                           legacyMcConfigFor(d, base));
    }
}

TEST(PresetEquivalence, McConfigMatchesLegacyExpansionWithHybridFill)
{
    for (SystemDesign d :
         {SystemDesign::DrStrange, SystemDesign::DrStrangeRl}) {
        SimConfig base;
        base.mechanism = trng::TrngMechanism::dRange();
        base.fillMechanism = trng::TrngMechanism::quacTrng();
        SCOPED_TRACE(designName(d));

        SimConfig preset = base;
        applyDesign(preset, d);
        expectSameMcConfig(mcConfigFor(preset),
                           legacyMcConfigFor(d, base));
    }
}

TEST(PresetEquivalence, RunnerMetricsIdenticalAcrossEnumKeyAndBuilder)
{
    SimConfig base;
    base.instrBudget = 20000;
    const auto spec = dualMix("soplex");

    for (SystemDesign d : kAllDesigns) {
        SCOPED_TRACE(designName(d));
        Runner by_enum(base);
        const auto a = by_enum.run(d, spec);

        Runner by_key(base);
        const auto b = by_key.run(designKey(d), spec);

        Runner by_builder(base);
        const auto c = by_builder.run(
            SimulationBuilder(base).design(d).config(), spec);

        expectSameResult(a, b);
        expectSameResult(a, c);
    }
}

/**
 * End-to-end: a System built from a preset must behave cycle-for-cycle
 * like a hand-driven MemoryController configured with the frozen legacy
 * expansion (the strongest "same seed, same metrics" guarantee).
 */
TEST(PresetEquivalence, SystemMatchesHandDrivenLegacyController)
{
    for (SystemDesign d :
         {SystemDesign::DrStrange, SystemDesign::GreedyIdle,
          SystemDesign::BlissBaseline, SystemDesign::DrStrangeRl}) {
        SCOPED_TRACE(designName(d));
        SimConfig base;
        base.instrBudget = 15000;

        auto make_traces = [&] {
            std::vector<std::unique_ptr<cpu::TraceSource>> traces;
            traces.push_back(std::make_unique<workloads::SyntheticTrace>(
                workloads::appByName("soplex"), base.geometry, 0,
                base.seed));
            traces.push_back(std::make_unique<workloads::RngBenchmark>(
                5120.0, base.geometry, base.seed + 1));
            return traces;
        };

        // New API path.
        SimConfig preset = base;
        applyDesign(preset, d);
        auto sys_traces = make_traces();
        System sys(preset, std::move(sys_traces));
        sys.run();

        // Hand-driven legacy path (the pre-refactor expansion).
        auto traces = make_traces();
        mem::MemoryController mc(legacyMcConfigFor(d, base),
                                 base.timings, base.geometry,
                                 base.mechanism, 2);
        std::vector<std::unique_ptr<cpu::Core>> cores;
        cpu::Core::Config core_cfg;
        core_cfg.instrBudget = base.instrBudget;
        for (unsigned i = 0; i < 2; ++i) {
            cores.push_back(std::make_unique<cpu::Core>(
                static_cast<CoreId>(i), core_cfg, *traces[i], mc));
        }
        mc.setCompletionCallback(
            [&](CoreId core, std::uint64_t token, mem::ReqType,
                mem::ServePath) { cores[core]->onCompletion(token); });
        Cycle now = 0;
        auto all_done = [&] {
            return std::all_of(cores.begin(), cores.end(),
                               [](const auto &c) { return c->finished(); });
        };
        while (!all_done() && now < base.maxBusCycles) {
            mc.tick(now);
            for (auto &c : cores)
                c->tickBusCycle(now);
            ++now;
        }

        EXPECT_EQ(sys.busCycles(), now);
        for (unsigned i = 0; i < 2; ++i) {
            EXPECT_EQ(sys.coreStats(i).finishCycle,
                      cores[i]->stats().finishCycle);
            EXPECT_EQ(sys.coreStats(i).instrRetired,
                      cores[i]->stats().instrRetired);
        }
        EXPECT_EQ(sys.mc().stats().rngRequests, mc.stats().rngRequests);
        EXPECT_EQ(sys.mc().stats().rngServedFromBuffer,
                  mc.stats().rngServedFromBuffer);
        EXPECT_EQ(sys.mc().stats().sumReadLatency,
                  mc.stats().sumReadLatency);
    }
}

// ---------------------------------------------------------------------
// Registry behaviour: duplicate/unknown keys, custom registration.
// ---------------------------------------------------------------------

TEST(Registries, UnknownKeysThrowWithKnownKeysListed)
{
    SimConfig cfg;
    try {
        mem::SchedulerRegistry::instance().make(
            "no-such-sched",
            mem::SchedulerContext{4, 8, 2, mcConfigFor(cfg)});
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &e) {
        EXPECT_NE(std::string(e.what()).find("fr-fcfs-cap"),
                  std::string::npos);
    }
    EXPECT_THROW(strange::PredictorRegistry::instance().make(
                     "no-such-pred", strange::PredictorContext{}),
                 std::out_of_range);
    EXPECT_THROW(DesignRegistry::instance().apply("no-such-design", cfg),
                 std::out_of_range);
}

TEST(Registries, DuplicateRegistrationThrows)
{
    EXPECT_THROW(mem::SchedulerRegistry::instance().add(
                     "fr-fcfs",
                     [](const mem::SchedulerContext &)
                         -> std::unique_ptr<mem::Scheduler> {
                         return nullptr;
                     }),
                 std::invalid_argument);
    EXPECT_THROW(strange::PredictorRegistry::instance().add(
                     "simple",
                     [](const strange::PredictorContext &)
                         -> std::unique_ptr<strange::IdlenessPredictor> {
                         return nullptr;
                     }),
                 std::invalid_argument);
    EXPECT_THROW(DesignRegistry::instance().add("drstrange", "dup",
                                                [](SimConfig &) {}),
                 std::invalid_argument);
    EXPECT_THROW(DesignRegistry::instance().add("", "empty",
                                                [](SimConfig &) {}),
                 std::invalid_argument);
    // Keys must survive the whitespace-tokenized config text format.
    EXPECT_THROW(DesignRegistry::instance().add("has space", "bad",
                                                [](SimConfig &) {}),
                 std::invalid_argument);
    EXPECT_THROW(mem::SchedulerRegistry::instance().add(
                     "has=equals",
                     [](const mem::SchedulerContext &)
                         -> std::unique_ptr<mem::Scheduler> {
                         return nullptr;
                     }),
                 std::invalid_argument);
}

TEST(Registries, BuiltinsArePresent)
{
    const auto sched = mem::SchedulerRegistry::instance().keys();
    for (const char *k : {"fr-fcfs", "fr-fcfs-cap", "bliss"})
        EXPECT_NE(std::find(sched.begin(), sched.end(), k), sched.end());

    const auto pred = strange::PredictorRegistry::instance().keys();
    for (const char *k : {"none", "simple", "rl"})
        EXPECT_NE(std::find(pred.begin(), pred.end(), k), pred.end());

    for (SystemDesign d : kAllDesigns) {
        EXPECT_TRUE(DesignRegistry::instance().contains(designKey(d)));
        EXPECT_EQ(DesignRegistry::instance().displayName(designKey(d)),
                  designName(d));
    }
}

TEST(Registries, NonePredictorFactoryReturnsNull)
{
    EXPECT_EQ(strange::PredictorRegistry::instance().make(
                  "none", strange::PredictorContext{}),
              nullptr);
}

TEST(Registries, UnknownSchedulerSurfacesAtSystemConstruction)
{
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    SimConfig cfg;
    traces.push_back(std::make_unique<workloads::RngBenchmark>(
        640.0, cfg.geometry, cfg.seed));
    cfg.scheduler = "definitely-not-registered";
    EXPECT_THROW(System(cfg, std::move(traces)), std::out_of_range);
}

namespace {

/** Trivial custom scheduler: oldest issuable request, no row-hit pass. */
class OldestFirstScheduler : public mem::Scheduler
{
  public:
    explicit OldestFirstScheduler(std::uint64_t *pick_counter)
        : picks(pick_counter)
    {
    }

    int
    pick(const mem::SchedContext &ctx) override
    {
        const auto &entries = ctx.queue.all();
        int best = mem::kNoPick;
        std::uint64_t best_seq = 0;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const mem::Request &req = entries[i];
            const dram::DramCmd cmd =
                mem::nextCommandFor(req, ctx.channel);
            if (!ctx.channel.canIssue(cmd, req.coord.bank, ctx.now))
                continue;
            if (best == mem::kNoPick || req.seq < best_seq) {
                best = static_cast<int>(i);
                best_seq = req.seq;
            }
        }
        if (best != mem::kNoPick && picks)
            ++(*picks);
        return best;
    }

    void
    onColumnIssued(const mem::Request &, unsigned) override
    {
    }

  private:
    std::uint64_t *picks;
};

std::uint64_t g_oldest_first_picks = 0;

/** One-time registration shared by the round-trip tests below. */
void
registerOldestFirst()
{
    static bool once = [] {
        mem::SchedulerRegistry::instance().add(
            "test-oldest-first", [](const mem::SchedulerContext &) {
                return std::make_unique<OldestFirstScheduler>(
                    &g_oldest_first_picks);
            });
        DesignRegistry::instance().add(
            "test-oldest-baseline", "OldestFirst", [](SimConfig &cfg) {
                applyDesign(cfg, SystemDesign::RngOblivious);
                cfg.scheduler = "test-oldest-first";
            });
        return true;
    }();
    (void)once;
}

} // namespace

/**
 * Acceptance check: a scheduler registered from test code (no src/mem
 * edits) runs end-to-end through the same design-name path the CLI's
 * --design flag uses (SimulationBuilder::design(name)).
 */
TEST(Registries, CustomSchedulerRunsThroughDesignNamePath)
{
    registerOldestFirst();

    SimulationBuilder builder;
    builder.design("test-oldest-baseline").instrBudget(8000);
    EXPECT_EQ(builder.config().scheduler, "test-oldest-first");

    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName("soplex"), builder.config().geometry, 0, 1));
    traces.push_back(std::make_unique<workloads::RngBenchmark>(
        5120.0, builder.config().geometry, 2));

    const std::uint64_t picks_before = g_oldest_first_picks;
    System sys = builder.buildSystem(std::move(traces));
    sys.run();

    EXPECT_TRUE(sys.allFinished());
    EXPECT_GT(g_oldest_first_picks, picks_before); // it actually ran
    EXPECT_GT(sys.mc().stats().readsCompleted, 0u);
}

TEST(Registries, CustomDesignRunsThroughRunnerAndConfigText)
{
    registerOldestFirst();

    SimConfig base;
    base.instrBudget = 8000;
    Runner runner(base);
    const auto res = runner.run("test-oldest-baseline", dualMix("mcf"));
    EXPECT_GT(res.busCycles, 0u);

    // The config-text design= key resolves through the same registry.
    SimConfig cfg = parseConfig("design=test-oldest-baseline");
    EXPECT_EQ(cfg.scheduler, "test-oldest-first");
    EXPECT_FALSE(cfg.buffering);
}

// ---------------------------------------------------------------------
// Config text: round-trip and error reporting.
// ---------------------------------------------------------------------

TEST(ConfigText, SerializeParseRoundTripsDefaults)
{
    const SimConfig def;
    const std::string text = serializeConfig(def);
    const SimConfig back = parseConfig(text);
    EXPECT_EQ(serializeConfig(back), text);
}

TEST(ConfigText, SerializeParseRoundTripsCustomConfig)
{
    SimulationBuilder b;
    b.design(SystemDesign::GreedyIdle)
        .mechanism("quac")
        .fillMechanism(trng::TrngMechanism::withSystemThroughput(640.0, 4))
        .bufferEntries(32)
        .bufferPartitions(4)
        .lowUtilThreshold(7)
        .powerDownThreshold(50)
        .instrBudget(12345)
        .seed(99)
        .priorities({2, 1, 1});
    SimConfig cfg = b.config();
    cfg.timings.tRCD = 13;
    cfg.geometry.channels = 2;

    const std::string text = serializeConfig(cfg);
    const SimConfig back = parseConfig(text);
    EXPECT_EQ(serializeConfig(back), text);
    EXPECT_EQ(back.fillPolicy, "greedy-oracle");
    EXPECT_EQ(back.mechanism.name, "QUAC-TRNG");
    ASSERT_TRUE(back.fillMechanism.has_value());
    EXPECT_EQ(back.fillMechanism->bitsPerRound,
              cfg.fillMechanism->bitsPerRound);
    EXPECT_EQ(back.timings.tRCD, 13u);
    EXPECT_EQ(back.geometry.channels, 2u);
    EXPECT_EQ(back.priorities, (std::vector<int>{2, 1, 1}));
    EXPECT_EQ(back.instrBudget, 12345u);
}

TEST(ConfigText, EquivalentToBuilderPresets)
{
    for (SystemDesign d : kAllDesigns) {
        SCOPED_TRACE(designName(d));
        const SimConfig via_text =
            parseConfig(std::string("design=") + designKey(d));
        const SimConfig via_enum = designConfig(d);
        EXPECT_EQ(serializeConfig(via_text), serializeConfig(via_enum));
    }
}

TEST(ConfigText, RejectsMalformedInput)
{
    SimConfig cfg;
    EXPECT_THROW(applyConfigText(cfg, "no-equals-sign"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "unknown-key=1"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "buffer-entries=abc"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "buffer-entries=12x"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "scheduler=not-registered"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "predictor=not-registered"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "fill=sideways"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "mechanism=quacc"), // typo of quac
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "fill-mechanism=dranje"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "design=not-registered"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "rng-aware=maybe"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "timings.bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "seed=-1"), // stoull would wrap
                 std::invalid_argument);
    EXPECT_THROW(applyConfigText(cfg, "priorities=1x,2"),
                 std::invalid_argument);
}

TEST(ConfigText, WhitespaceMechanismNameStaysParseable)
{
    SimConfig cfg;
    cfg.mechanism.name = "my custom mech";
    const SimConfig back = parseConfig(serializeConfig(cfg));
    EXPECT_EQ(back.mechanism.name, "my-custom-mech");
}

TEST(ConfigText, BuilderFromTextMatchesFluentCalls)
{
    const SimulationBuilder fluent =
        SimulationBuilder().design(SystemDesign::DrStrangeRl).seed(7);
    const SimulationBuilder parsed =
        SimulationBuilder::fromText("design=drstrange-rl seed=7");
    EXPECT_EQ(fluent.toText(), parsed.toText());
}

// ---------------------------------------------------------------------
// Runner alone-run cache: keyed on the full effective configuration.
// ---------------------------------------------------------------------

TEST(RunnerCache, RunWithExplicitConfigHonoursItsSeed)
{
    SimConfig base;
    base.instrBudget = 10000;
    Runner runner(base);
    const auto spec = dualMix("soplex");

    SimConfig reseeded = base;
    applyDesign(reseeded, SystemDesign::DrStrange);
    reseeded.seed = 1234; // must reseed the generated traces too
    const auto a = runner.run(reseeded, spec);
    const auto b = runner.run(SystemDesign::DrStrange, spec);
    EXPECT_NE(a.busCycles, b.busCycles);
}

TEST(RunnerCache, AloneRunRecomputedWhenTimingsChange)
{
    SimConfig base;
    base.instrBudget = 10000;
    Runner runner(base);

    const double before = runner.alone("soplex").execCpuCycles;
    runner.base().timings.tRCD = 22; // was 11; memory gets slower
    runner.base().timings.tRC = 50;
    const double after = runner.alone("soplex").execCpuCycles;
    EXPECT_GT(after, before); // a stale cache would return `before`
}

TEST(RunnerCache, AloneRngRecomputedWhenBufferConfigChanges)
{
    SimConfig base;
    base.instrBudget = 10000;
    Runner runner(base);

    const double with_buffer =
        runner.aloneRng(5120.0, SystemDesign::DrStrange).execCpuCycles;
    runner.base().bufferEntries = 1;
    const double tiny_buffer =
        runner.aloneRng(5120.0, SystemDesign::DrStrange).execCpuCycles;
    EXPECT_NE(with_buffer, tiny_buffer);
}

TEST(RunnerCache, AloneRunRecomputedWhenFillMechanismChanges)
{
    SimConfig base;
    base.instrBudget = 10000;
    Runner runner(base);

    const double drange =
        runner.aloneRng(5120.0, SystemDesign::DrStrange).execCpuCycles;
    runner.base().fillMechanism = trng::TrngMechanism::quacTrng();
    const double hybrid =
        runner.aloneRng(5120.0, SystemDesign::DrStrange).execCpuCycles;
    EXPECT_NE(drange, hybrid);
}
