/**
 * @file
 * Unit tests for the common utilities: deterministic RNGs, the ring
 * buffer, statistics helpers, and the table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/json_writer.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "common/stats_util.h"
#include "common/table_printer.h"

using namespace dstrange;

TEST(SplitMix64, DeterministicForSameSeed)
{
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Mix64, IsAPermutationOnSamples)
{
    std::set<std::uint64_t> outputs;
    for (std::uint64_t x = 0; x < 1000; ++x)
        outputs.insert(mix64(x));
    EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Xoshiro, DeterministicForSameSeed)
{
    Xoshiro256ss a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, NextDoubleInUnitInterval)
{
    Xoshiro256ss gen(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = gen.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Xoshiro, NextBelowStaysInRange)
{
    Xoshiro256ss gen(9);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(gen.nextBelow(bound), bound);
    }
}

TEST(Xoshiro, GeometricMeanMatchesTarget)
{
    Xoshiro256ss gen(11);
    for (double target : {2.0, 10.0, 100.0, 800.0}) {
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(gen.nextGeometric(target));
        const double mean_obs = sum / n;
        EXPECT_NEAR(mean_obs, target, target * 0.1)
            << "target mean " << target;
    }
}

TEST(Xoshiro, GeometricOfZeroMeanIsZero)
{
    Xoshiro256ss gen(13);
    EXPECT_EQ(gen.nextGeometric(0.0), 0u);
    EXPECT_EQ(gen.nextGeometric(-1.0), 0u);
}

TEST(Xoshiro, BoolProbabilityRoughlyRespected)
{
    Xoshiro256ss gen(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += gen.nextBool(0.25);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.02);
}

TEST(RingBuffer, PushPopFifoOrder)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.empty());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(rb.push(i));
    EXPECT_TRUE(rb.full());
    EXPECT_FALSE(rb.push(99));
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop();
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundCorrectly)
{
    RingBuffer<int> rb(3);
    rb.push(1);
    rb.push(2);
    rb.pop();
    rb.push(3);
    rb.push(4);
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.at(0), 2);
    EXPECT_EQ(rb.at(1), 3);
    EXPECT_EQ(rb.at(2), 4);
}

TEST(RingBuffer, WrapAroundAtFullCapacity)
{
    // Rotate a full buffer through every head position: pop one, push
    // one, so the write index crosses the wrap boundary repeatedly
    // while the buffer stays at capacity.
    RingBuffer<int> rb(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(rb.push(i));
    for (int next = 4; next < 20; ++next) {
        ASSERT_TRUE(rb.full());
        ASSERT_FALSE(rb.push(999)); // Full buffer rejects the push...
        ASSERT_EQ(rb.front(), next - 4);
        rb.pop();
        ASSERT_TRUE(rb.push(next)); // ...but accepts after one pop.
        for (int k = 0; k < 4; ++k)
            ASSERT_EQ(rb.at(static_cast<std::size_t>(k)), next - 3 + k);
    }
    EXPECT_EQ(rb.size(), 4u);
}

TEST(RingBuffer, ClearEmptiesBuffer)
{
    RingBuffer<int> rb(2);
    rb.push(5);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_TRUE(rb.push(6));
    EXPECT_EQ(rb.front(), 6);
}

TEST(StatsUtil, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsUtil, PercentileInterpolates)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
    EXPECT_DOUBLE_EQ(percentile({10.0}, 0.7), 10.0);
}

TEST(StatsUtil, BoxSummaryQuartilesAndOutliers)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    v.push_back(1000.0); // far outlier
    const BoxSummary box = boxSummary(v);
    EXPECT_DOUBLE_EQ(box.min, 1.0);
    EXPECT_DOUBLE_EQ(box.max, 1000.0);
    EXPECT_GT(box.q3, box.median);
    EXPECT_GT(box.median, box.q1);
    EXPECT_GE(box.highOutliers, 1u);
}

TEST(StatsUtil, BoxSummaryEmptyIsZeroed)
{
    const BoxSummary box = boxSummary({});
    EXPECT_DOUBLE_EQ(box.min, 0.0);
    EXPECT_DOUBLE_EQ(box.max, 0.0);
    EXPECT_EQ(box.highOutliers, 0u);
}

TEST(TablePrinter, AlignsColumnsAndPadsRaggedRows)
{
    TablePrinter t;
    t.setHeader({"a", "bbbb"});
    t.addRow({"x"});
    t.addRow({"longcell", "y", "z"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("longcell"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, NumFormatsFixedPrecision)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(2.0, 3), "2.000");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndCommonControls)
{
    JsonWriter w;
    w.beginObject();
    w.key("s").value(std::string("a\"b\\c\nd\te\rf\bg\fh"));
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"s\":\"a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\"}");
}

TEST(JsonWriter, EscapesRemainingControlCharactersAsUnicode)
{
    // RFC 8259 requires every char < 0x20 escaped; those without a
    // short form must come out as \u00XX.
    JsonWriter w;
    std::string raw;
    raw.push_back('\x01');
    raw.push_back('\x1f');
    raw.push_back('A');
    w.beginObject();
    w.key("s").value(raw);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"\\u0001\\u001fA\"}");
}

TEST(JsonWriter, ControlCharactersInKeysAreEscapedToo)
{
    JsonWriter w;
    w.beginObject();
    w.key("a\rb").value(1);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\\rb\":1}");
}
