/**
 * @file
 * Tests for the extension features beyond the paper's core design:
 * SHA-256 and von Neumann post-processing, the partitioned buffer set
 * (Section 6 countermeasure), hybrid TRNG engines (Section 8.7), DRAM
 * power-down, trace file I/O, and the JSON writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/json_writer.h"
#include "dram/dram_channel.h"
#include "sim/runner.h"
#include "strange/buffer_set.h"
#include "trng/entropy_source.h"
#include "trng/bit_quality.h"
#include "trng/postprocess.h"
#include "trng/rng_engine.h"
#include "trng/sha256.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"
#include "workloads/trace_file.h"
#include "cpu/core.h"

using namespace dstrange;

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4 test vectors).
// ---------------------------------------------------------------------

namespace {

std::string
hex(const std::array<std::uint8_t, 32> &digest)
{
    std::string out;
    for (std::uint8_t b : digest) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", b);
        out += buf;
    }
    return out;
}

std::vector<std::uint8_t>
bytes(const std::string &text)
{
    return {text.begin(), text.end()};
}

} // namespace

TEST(Sha256, EmptyStringVector)
{
    EXPECT_EQ(hex(trng::Sha256::hash({})),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector)
{
    EXPECT_EQ(hex(trng::Sha256::hash(bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector)
{
    EXPECT_EQ(hex(trng::Sha256::hash(bytes(
                  "abcdbcdecdefdefgefghfghighijhijk"
                  "ijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const auto data = bytes("the quick brown fox jumps over the lazy dog "
                            "again and again and again");
    trng::Sha256 h;
    for (std::size_t i = 0; i < data.size(); i += 7)
        h.update(data.data() + i, std::min<std::size_t>(7, data.size() - i));
    EXPECT_EQ(hex(h.digest()), hex(trng::Sha256::hash(data)));
}

// ---------------------------------------------------------------------
// Post-processing.
// ---------------------------------------------------------------------

TEST(VonNeumann, RemovesBiasFromSkewedSource)
{
    // A source with 80% ones.
    trng::EntropySource src(3);
    std::vector<std::uint8_t> biased;
    Xoshiro256ss gen(4);
    for (int i = 0; i < (1 << 16); ++i) {
        std::uint8_t b = 0;
        for (int k = 0; k < 8; ++k)
            b |= static_cast<std::uint8_t>(gen.nextBool(0.8)) << k;
        biased.push_back(b);
    }
    EXPECT_FALSE(trng::monobitTest(biased).pass);

    trng::VonNeumannCorrector vn;
    const auto corrected = vn.process(biased);
    ASSERT_GT(corrected.size(), 1000u);
    EXPECT_TRUE(trng::monobitTest(corrected).pass);
    // Efficiency for p=0.8: 2*p*(1-p) pairs emit 1 bit each = 0.16.
    EXPECT_NEAR(vn.efficiency(), 0.16, 0.02);
}

TEST(VonNeumann, UnbiasedSourceYieldsQuarterRate)
{
    trng::EntropySource src(5);
    trng::VonNeumannCorrector vn;
    vn.process(src.nextBytes(1 << 15));
    EXPECT_NEAR(vn.efficiency(), 0.25, 0.01);
}

TEST(Sha256Conditioner, CompressesTwoToOne)
{
    trng::EntropySource src(6);
    trng::Sha256Conditioner cond;
    std::vector<std::uint8_t> out;
    cond.feed(src.nextBytes(640), out);
    EXPECT_EQ(out.size(), 320u);
    EXPECT_EQ(cond.pendingBytes(), 0u);

    cond.feed(src.nextBytes(70), out);
    EXPECT_EQ(out.size(), 352u);
    EXPECT_EQ(cond.pendingBytes(), 6u);
}

TEST(Sha256Conditioner, OutputPassesQualityChecks)
{
    trng::EntropySource src(7);
    trng::Sha256Conditioner cond;
    std::vector<std::uint8_t> out;
    cond.feed(src.nextBytes(1 << 16), out);
    EXPECT_TRUE(trng::monobitTest(out).pass);
    EXPECT_TRUE(trng::chiSquareByteTest(out).pass);
    EXPECT_GT(trng::shannonEntropyPerByte(out), 7.98);
}

// ---------------------------------------------------------------------
// BufferSet (Section 6 partitioning).
// ---------------------------------------------------------------------

TEST(BufferSet, SharedModeServesAnyCore)
{
    strange::BufferSet set(4, 0);
    EXPECT_FALSE(set.partitioned());
    set.deposit(64.0);
    EXPECT_TRUE(set.canServe64(0));
    EXPECT_TRUE(set.canServe64(7));
    set.serve64(7);
    EXPECT_FALSE(set.canServe64(0));
}

TEST(BufferSet, PartitionsIsolateCores)
{
    strange::BufferSet set(4, 2); // 2 partitions x 2 entries
    EXPECT_TRUE(set.partitioned());
    // Fill only the emptiest partition with exactly one number.
    set.deposit(64.0);
    const bool core0 = set.canServe64(0);
    const bool core1 = set.canServe64(1);
    EXPECT_NE(core0, core1); // exactly one partition has the bits
    // Filling more balances the partitions.
    set.deposit(64.0);
    EXPECT_TRUE(set.canServe64(0));
    EXPECT_TRUE(set.canServe64(1));
    // Core 0 draining its partition does not affect core 1.
    set.serve64(0);
    EXPECT_FALSE(set.canServe64(0));
    EXPECT_TRUE(set.canServe64(1));
}

TEST(BufferSet, DepositSpillsAcrossPartitions)
{
    strange::BufferSet set(4, 2);
    EXPECT_DOUBLE_EQ(set.deposit(4 * 64.0), 4 * 64.0);
    EXPECT_TRUE(set.full());
    EXPECT_DOUBLE_EQ(set.deposit(8.0), 0.0);
    EXPECT_DOUBLE_EQ(set.levelBits(), set.capacityBits());
}

TEST(BufferSet, CapacityDistributionHandlesRemainders)
{
    strange::BufferSet set(5, 2);
    EXPECT_DOUBLE_EQ(set.capacityBits(), 5 * 64.0);
    EXPECT_DOUBLE_EQ(set.partition(0).capacityBits(), 3 * 64.0);
    EXPECT_DOUBLE_EQ(set.partition(1).capacityBits(), 2 * 64.0);
}

TEST(BufferSet, ServedCountAggregates)
{
    strange::BufferSet set(4, 2);
    set.deposit(4 * 64.0);
    set.serve64(0);
    set.serve64(1);
    EXPECT_EQ(set.servedCount(), 2u);
}

// ---------------------------------------------------------------------
// Hybrid RNG engine (Section 8.7).
// ---------------------------------------------------------------------

class HybridEngineTest : public ::testing::Test
{
  protected:
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan{t, g};
    trng::RngEngine eng{trng::TrngMechanism::dRange(),
                        trng::TrngMechanism::quacTrng(), chan};
};

TEST_F(HybridEngineTest, SessionKindSelectsMechanism)
{
    EXPECT_TRUE(eng.isHybrid());
    eng.start(0, trng::RngEngine::SessionKind::Fill);
    EXPECT_EQ(eng.mechanism().name, "QUAC-TRNG");
    // Run one fill round to completion.
    double bits = 0.0;
    for (Cycle c = 0; c < 400 && bits == 0.0; ++c)
        bits = eng.tick(c);
    EXPECT_DOUBLE_EQ(bits, trng::TrngMechanism::quacTrng().bitsPerRound);
}

TEST_F(HybridEngineTest, DemandSessionUsesDemandMechanism)
{
    eng.start(0, trng::RngEngine::SessionKind::Demand);
    EXPECT_EQ(eng.mechanism().name, "D-RaNGe");
    EXPECT_FALSE(
        eng.canResumeAs(trng::RngEngine::SessionKind::Fill));
    EXPECT_TRUE(eng.canResumeAs(trng::RngEngine::SessionKind::Demand));
}

TEST(HybridSystem, HybridConfigurationRunsEndToEnd)
{
    sim::SimConfig cfg;
    cfg.instrBudget = 30000;
    cfg.mechanism = trng::TrngMechanism::dRange();
    cfg.fillMechanism = trng::TrngMechanism::quacTrng();
    sim::Runner runner(cfg);
    workloads::WorkloadSpec spec;
    spec.name = "hybrid";
    spec.apps = {"ycsb2"};
    spec.rngThroughputMbps = 5120.0;
    const auto res = runner.run(sim::SystemDesign::DrStrange, spec);
    EXPECT_GT(res.bufferServeRate, 0.0);
    for (const auto &core : res.cores)
        EXPECT_LT(core.slowdown, 50.0);
}

// ---------------------------------------------------------------------
// DRAM power-down.
// ---------------------------------------------------------------------

TEST(PowerDown, EntersAfterThresholdAndWakesWithTxp)
{
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan(t, g);
    chan.setPowerDownPolicy(100);

    for (Cycle c = 0; c <= 100; ++c)
        chan.sampleState(c);
    EXPECT_TRUE(chan.poweredDown());
    EXPECT_FALSE(chan.canIssue(dram::DramCmd::Act, 0, 101));
    EXPECT_GT(chan.energyCounters().cyclesPoweredDown, 0u);

    chan.requestWake(101);
    EXPECT_FALSE(chan.poweredDown());
    EXPECT_FALSE(chan.canIssue(dram::DramCmd::Act, 0, 101 + t.tXP - 1));
    EXPECT_TRUE(chan.canIssue(dram::DramCmd::Act, 0, 101 + t.tXP));
}

TEST(PowerDown, DisabledByDefault)
{
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan(t, g);
    for (Cycle c = 0; c < 1000; ++c)
        chan.sampleState(c);
    EXPECT_FALSE(chan.poweredDown());
    EXPECT_EQ(chan.energyCounters().cyclesPoweredDown, 0u);
}

TEST(PowerDown, ReducesEnergyForIdleWorkload)
{
    auto energy_with_pd = [](Cycle threshold) {
        sim::SimConfig cfg;
        cfg.instrBudget = 30000;
        sim::applyDesign(cfg, sim::SystemDesign::RngOblivious);
        cfg.powerDownThreshold = threshold;
        sim::Runner runner(cfg);
        workloads::WorkloadSpec spec;
        spec.name = "idle";
        spec.apps = {"povray"}; // very light
        spec.rngThroughputMbps = 0.0;
        return runner.run(sim::SystemDesign::RngOblivious, spec).energyNj;
    };
    EXPECT_LT(energy_with_pd(50), energy_with_pd(0) * 0.9);
}

TEST(PowerDown, SystemStillRunsCorrectlyWithPolicy)
{
    sim::SimConfig cfg;
    cfg.instrBudget = 30000;
    cfg.powerDownThreshold = 30;
    sim::Runner runner(cfg);
    workloads::WorkloadSpec spec;
    spec.name = "pd";
    spec.apps = {"gcc"};
    spec.rngThroughputMbps = 5120.0;
    const auto res = runner.run(sim::SystemDesign::DrStrange, spec);
    for (const auto &core : res.cores)
        EXPECT_LT(core.slowdown, 50.0);
}

// ---------------------------------------------------------------------
// Trace file I/O.
// ---------------------------------------------------------------------

class TraceFileTest : public ::testing::Test
{
  protected:
    std::string
    tempPath() const
    {
        return ::testing::TempDir() + "dstrange_trace_test.txt";
    }

    void TearDown() override { std::remove(tempPath().c_str()); }
};

TEST_F(TraceFileTest, RoundTripPreservesOperations)
{
    dram::DramGeometry geom;
    workloads::SyntheticTrace gen(workloads::appByName("mcf"), geom, 0, 9);
    workloads::writeTraceFile(tempPath(), gen, 500);

    workloads::SyntheticTrace ref(workloads::appByName("mcf"), geom, 0, 9);
    workloads::TraceFileSource file(tempPath());
    ASSERT_EQ(file.size(), 500u);
    for (int i = 0; i < 500; ++i) {
        const cpu::TraceOp a = ref.next();
        const cpu::TraceOp b = file.next();
        ASSERT_EQ(a.computeInstrs, b.computeInstrs) << i;
        ASSERT_EQ(a.type, b.type) << i;
        ASSERT_EQ(a.addr, b.addr) << i;
    }
}

TEST_F(TraceFileTest, LoopsWhenExhausted)
{
    dram::DramGeometry geom;
    workloads::RngBenchmark gen(5120.0, geom, 2);
    workloads::writeTraceFile(tempPath(), gen, 10);
    workloads::TraceFileSource file(tempPath());
    for (int i = 0; i < 25; ++i)
        file.next();
    EXPECT_EQ(file.loops(), 2u);
}

TEST_F(TraceFileTest, RejectsMissingAndMalformedFiles)
{
    EXPECT_THROW(workloads::TraceFileSource{"/nonexistent/path"},
                 std::runtime_error);
    {
        std::ofstream out(tempPath());
        out << "12 X deadbeef\n";
    }
    const std::string path = tempPath();
    EXPECT_THROW(workloads::TraceFileSource{path}, std::runtime_error);
}

TEST_F(TraceFileTest, SkipsCommentsAndSupportsRngOps)
{
    {
        std::ofstream out(tempPath());
        out << "# comment\n10 G\n20 R ff40\n5 W 1000\n";
    }
    workloads::TraceFileSource file(tempPath());
    EXPECT_EQ(file.size(), 3u);
    const cpu::TraceOp g = file.next();
    EXPECT_EQ(g.type, mem::ReqType::Rng);
    EXPECT_EQ(g.computeInstrs, 10u);
    const cpu::TraceOp r = file.next();
    EXPECT_EQ(r.type, mem::ReqType::Read);
    EXPECT_EQ(r.addr, 0xff40u);
}

// ---------------------------------------------------------------------
// JSON writer.
// ---------------------------------------------------------------------

TEST(JsonWriter, ProducesWellFormedDocument)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("dr-strange");
    w.key("count").value(std::uint64_t(42));
    w.key("ratio").value(0.5);
    w.key("ok").value(true);
    w.key("items").beginArray();
    w.value(1);
    w.value(2);
    w.beginObject().key("x").value("y").endObject();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"dr-strange\",\"count\":42,"
                       "\"ratio\":0.5,\"ok\":true,"
                       "\"items\":[1,2,{\"x\":\"y\"}]}");
}

TEST(JsonWriter, EscapesSpecialCharacters)
{
    JsonWriter w;
    w.beginObject();
    w.key("s").value("a\"b\\c\nd");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

// ---------------------------------------------------------------------
// Buffer partitioning end-to-end (performance cost is modest).
// ---------------------------------------------------------------------

TEST(PartitionedBuffer, EndToEndCostIsBounded)
{
    workloads::WorkloadSpec spec;
    spec.name = "p";
    spec.apps = {"ycsb2"};
    spec.rngThroughputMbps = 5120.0;

    sim::SimConfig shared_cfg;
    shared_cfg.instrBudget = 30000;
    sim::Runner shared(shared_cfg);
    const auto s = shared.run(sim::SystemDesign::DrStrange, spec);

    sim::SimConfig part_cfg = shared_cfg;
    part_cfg.bufferPartitions = 2;
    sim::Runner part(part_cfg);
    const auto p = part.run(sim::SystemDesign::DrStrange, spec);

    // Partitioning halves the RNG app's private buffer; some slowdown
    // is expected but the system must stay functional and close.
    EXPECT_GT(p.bufferServeRate, 0.2);
    EXPECT_LT(p.rngSlowdown(), s.rngSlowdown() * 1.5);
}

// ---------------------------------------------------------------------
// Modelling-refinement ablation knobs (see bench/ablation_design.cpp).
// ---------------------------------------------------------------------

namespace {

/** Run one dual-core mix with explicit controller knobs. */
double
serveRateWith(unsigned fill_channel_limit, bool parking, bool abort_in)
{
    sim::SimConfig cfg;
    cfg.instrBudget = 30000;
    sim::applyDesign(cfg, sim::SystemDesign::DrStrange);

    mem::McConfig mc_cfg = sim::mcConfigFor(cfg);
    mc_cfg.fillChannelLimit = fill_channel_limit;
    mc_cfg.enableParking = parking;
    mc_cfg.enableFillAbort = abort_in;

    workloads::SyntheticTrace app(workloads::appByName("ycsb2"),
                                  cfg.geometry, 0, cfg.seed);
    workloads::RngBenchmark rng(5120.0, cfg.geometry, cfg.seed + 1);

    mem::MemoryController mc(mc_cfg, cfg.timings, cfg.geometry,
                             cfg.mechanism, 2);
    cpu::Core::Config core_cfg;
    core_cfg.instrBudget = cfg.instrBudget;
    cpu::Core c0(0, core_cfg, app, mc), c1(1, core_cfg, rng, mc);
    mc.setCompletionCallback(
        [&](CoreId core, std::uint64_t token, mem::ReqType,
            mem::ServePath) { (core == 0 ? c0 : c1).onCompletion(token); });
    Cycle now = 0;
    while ((!c0.finished() || !c1.finished()) && now < 10'000'000) {
        mc.tick(now);
        c0.tickBusCycle(now);
        c1.tickBusCycle(now);
        ++now;
    }
    EXPECT_TRUE(c0.finished() && c1.finished());
    return mc.stats().bufferServeRate();
}

} // namespace

TEST(AblationKnobs, UnlimitedFillChannelsRaisesServeRate)
{
    const double single = serveRateWith(1, true, true);
    const double unlimited = serveRateWith(0, true, true);
    EXPECT_GE(unlimited, single - 0.02);
}

TEST(AblationKnobs, SystemCorrectWithRefinementsDisabled)
{
    // Disabling parking and aborts must not break anything; both runs
    // complete (asserted inside) and produce sane serve rates.
    const double rate = serveRateWith(1, false, false);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
}
