/**
 * @file
 * Tests for the workload layer: the 43-application profile table, the
 * synthetic trace generator's statistical fidelity, the RNG benchmarks,
 * and workload-mix construction.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/app_profile.h"
#include "workloads/mixes.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

using namespace dstrange;
using namespace dstrange::workloads;

TEST(AppProfile, TableHas43UniqueApplications)
{
    const auto &table = appTable();
    EXPECT_EQ(table.size(), 43u);
    std::set<std::string> names;
    for (const AppProfile &p : table)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 43u);
}

TEST(AppProfile, CategoriesArePopulated)
{
    EXPECT_EQ(appsByCategory('L').size(), 20u);
    EXPECT_EQ(appsByCategory('M').size(), 12u);
    EXPECT_EQ(appsByCategory('H').size(), 11u);
}

TEST(AppProfile, CategoryBoundariesMatchPaper)
{
    for (const AppProfile &p : appTable()) {
        if (p.mpki < 1.0)
            EXPECT_EQ(p.category(), 'L') << p.name;
        else if (p.mpki < 10.0)
            EXPECT_EQ(p.category(), 'M') << p.name;
        else
            EXPECT_EQ(p.category(), 'H') << p.name;
    }
}

TEST(AppProfile, PlottedAppsExistAndRiseInIntensity)
{
    const auto &plotted = paperPlottedApps();
    EXPECT_EQ(plotted.size(), 23u);
    double last_mpki = 0.0;
    for (const std::string &name : plotted) {
        const AppProfile &p = appByName(name);
        EXPECT_GT(p.mpki, last_mpki) << name;
        last_mpki = p.mpki;
        EXPECT_NE(p.category(), 'L') << name;
    }
}

TEST(AppProfile, UnknownNameThrows)
{
    EXPECT_THROW(appByName("not-an-app"), std::out_of_range);
}

class SyntheticTraceTest : public ::testing::Test
{
  protected:
    dram::DramGeometry geom;

    /** Empirical stats over n ops of an app's trace. */
    struct Empirical
    {
        double mpki;
        double readFraction;
        double seqFraction;
    };

    Empirical
    sample(const std::string &app, unsigned n = 50000)
    {
        SyntheticTrace trace(appByName(app), geom, 0, 1);
        std::uint64_t instrs = 0, reads = 0, seq = 0;
        Addr prev = 0;
        for (unsigned i = 0; i < n; ++i) {
            const cpu::TraceOp op = trace.next();
            instrs += op.computeInstrs + 1;
            reads += op.type == mem::ReqType::Read;
            if (i > 0 && op.addr == prev + kLineBytes)
                ++seq;
            prev = op.addr;
        }
        Empirical e;
        e.mpki = static_cast<double>(n) /
                 (static_cast<double>(instrs) / 1000.0);
        e.readFraction = static_cast<double>(reads) / n;
        e.seqFraction = static_cast<double>(seq) / (n - 1);
        return e;
    }
};

TEST_F(SyntheticTraceTest, MpkiMatchesProfile)
{
    for (const std::string app : {"ycsb3", "soplex", "mcf", "gcc"}) {
        const Empirical e = sample(app);
        const double target = appByName(app).mpki;
        EXPECT_NEAR(e.mpki, target, target * 0.15) << app;
    }
}

TEST_F(SyntheticTraceTest, ReadFractionMatchesProfile)
{
    for (const std::string app : {"lbm", "libq", "tpcc64"}) {
        const Empirical e = sample(app);
        EXPECT_NEAR(e.readFraction, appByName(app).readFraction, 0.03)
            << app;
    }
}

TEST_F(SyntheticTraceTest, RowLocalityMatchesProfile)
{
    for (const std::string app : {"libq", "mcf", "jp2d"}) {
        const Empirical e = sample(app);
        EXPECT_NEAR(e.seqFraction, appByName(app).rowLocality, 0.05)
            << app;
    }
}

TEST_F(SyntheticTraceTest, DeterministicPerSeedAndDivergentAcrossSeeds)
{
    SyntheticTrace a(appByName("mcf"), geom, 0, 7);
    SyntheticTrace b(appByName("mcf"), geom, 0, 7);
    SyntheticTrace c(appByName("mcf"), geom, 0, 8);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        const cpu::TraceOp oa = a.next(), ob = b.next(), oc = c.next();
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.computeInstrs, ob.computeInstrs);
        diverged |= oa.addr != oc.addr;
    }
    EXPECT_TRUE(diverged);
}

TEST_F(SyntheticTraceTest, CoresGetDisjointRegions)
{
    SyntheticTrace a(appByName("mcf"), geom, 0, 7);
    SyntheticTrace b(appByName("mcf"), geom, 1, 7);
    std::set<Addr> rows_a, rows_b;
    dram::AddressMapper mapper(geom);
    for (int i = 0; i < 2000; ++i) {
        rows_a.insert(mapper.decode(a.next().addr).row);
        rows_b.insert(mapper.decode(b.next().addr).row);
    }
    // Some overlap is possible at region boundaries, but the bulk of
    // the row sets must be disjoint.
    std::vector<Addr> common;
    std::set_intersection(rows_a.begin(), rows_a.end(), rows_b.begin(),
                          rows_b.end(), std::back_inserter(common));
    EXPECT_LT(common.size(), rows_a.size() / 4);
}

TEST_F(SyntheticTraceTest, AddressesWithinCapacity)
{
    SyntheticTrace t(appByName("tpch2"), geom, 3, 5);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(t.next().addr, geom.capacityBytes());
}

TEST(RngBenchmark, GapMatchesThroughputMath)
{
    // 5120 Mb/s = 80M requests/s; 12e9 instr/s / 80M = 150 instructions.
    EXPECT_EQ(RngBenchmark::gapForThroughput(5120.0), 150u);
    EXPECT_EQ(RngBenchmark::gapForThroughput(640.0), 1200u);
    EXPECT_EQ(RngBenchmark::gapForThroughput(10240.0), 75u);
}

TEST(RngBenchmark, MostlyRngRequestsWithLightReads)
{
    dram::DramGeometry geom;
    RngBenchmark bench(5120.0, geom, 3);
    unsigned rng = 0, reads = 0;
    for (int i = 0; i < 10000; ++i) {
        const cpu::TraceOp op = bench.next();
        EXPECT_EQ(op.computeInstrs, bench.instrGap());
        if (op.type == mem::ReqType::Rng)
            ++rng;
        else
            ++reads;
    }
    EXPECT_GT(rng, 9000u);
    EXPECT_GT(reads, 0u);
}

TEST(Mixes, DualCoreMixesCoverAllApps)
{
    const auto mixes = dualCoreMixes(5120.0);
    EXPECT_EQ(mixes.size(), 43u);
    for (const auto &m : mixes) {
        EXPECT_EQ(m.apps.size(), 1u);
        EXPECT_DOUBLE_EQ(m.rngThroughputMbps, 5120.0);
    }
}

TEST(Mixes, PlottedMixesFollowPaperOrder)
{
    const auto mixes = dualCorePlottedMixes(640.0);
    ASSERT_EQ(mixes.size(), 23u);
    EXPECT_EQ(mixes.front().apps[0], "ycsb3");
    EXPECT_EQ(mixes.back().apps[0], "h264d");
}

TEST(Mixes, FourCoreGroupsRespectCategories)
{
    const auto mixes = fourCoreGroups(1);
    EXPECT_EQ(mixes.size(), 40u);
    for (const auto &m : mixes) {
        ASSERT_EQ(m.apps.size(), 3u);
        unsigned highs = 0;
        for (const auto &app : m.apps) {
            const char cat = appByName(app).category();
            EXPECT_TRUE(cat == 'L' || cat == 'H');
            highs += cat == 'H';
        }
        const unsigned expected_high =
            m.group == "LLLS" ? 0 : m.group == "LLHS" ? 1
                                : m.group == "LHHS"   ? 2
                                                      : 3;
        EXPECT_EQ(highs, expected_high) << m.name;
    }
}

TEST(Mixes, MultiCoreGroupsHaveRequestedShape)
{
    for (unsigned cores : {8u, 16u}) {
        for (char cat : {'L', 'M', 'H'}) {
            const auto mixes = multiCoreCategoryGroup(cores, cat, 2);
            EXPECT_EQ(mixes.size(), 10u);
            for (const auto &m : mixes) {
                EXPECT_EQ(m.apps.size(), cores - 1);
                for (const auto &app : m.apps)
                    EXPECT_EQ(appByName(app).category(), cat) << m.name;
            }
        }
    }
}

TEST(Mixes, MixConstructionIsDeterministic)
{
    const auto a = fourCoreGroups(5);
    const auto b = fourCoreGroups(5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].apps, b[i].apps);
}
