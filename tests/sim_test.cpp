/**
 * @file
 * Tests for the simulation driver: design presets, metrics math, the
 * energy and area models, System execution, and the Runner's alone-run
 * caching.
 */

#include <gtest/gtest.h>

#include "sim/area_model.h"
#include "sim/energy_model.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

using namespace dstrange;
using namespace dstrange::sim;

TEST(SimConfigPresets, DesignsMapToExpectedMcConfigs)
{
    SimConfig cfg;

    applyDesign(cfg, SystemDesign::RngOblivious);
    auto mc = mcConfigFor(cfg);
    EXPECT_FALSE(mc.rngAwareQueueing);
    EXPECT_EQ(mc.bufferEntries, 0u);
    EXPECT_EQ(mc.scheduler, "fr-fcfs-cap");

    applyDesign(cfg, SystemDesign::DrStrange);
    mc = mcConfigFor(cfg);
    EXPECT_TRUE(mc.rngAwareQueueing);
    EXPECT_EQ(mc.bufferEntries, 16u);
    EXPECT_EQ(mc.fill, mem::FillMode::Engine);
    EXPECT_EQ(mc.predictor, "simple");
    EXPECT_EQ(mc.lowUtilThreshold, 4u);

    applyDesign(cfg, SystemDesign::DrStrangeNoLowUtil);
    EXPECT_EQ(mcConfigFor(cfg).lowUtilThreshold, 0u);

    applyDesign(cfg, SystemDesign::DrStrangeNoPred);
    EXPECT_EQ(mcConfigFor(cfg).predictor, "none");

    applyDesign(cfg, SystemDesign::DrStrangeRl);
    EXPECT_EQ(mcConfigFor(cfg).predictor, "rl");

    applyDesign(cfg, SystemDesign::GreedyIdle);
    EXPECT_EQ(mcConfigFor(cfg).fill, mem::FillMode::GreedyOracle);

    applyDesign(cfg, SystemDesign::RngAwareNoBuffer);
    mc = mcConfigFor(cfg);
    EXPECT_TRUE(mc.rngAwareQueueing);
    EXPECT_EQ(mc.bufferEntries, 0u);

    applyDesign(cfg, SystemDesign::BlissBaseline);
    EXPECT_EQ(mcConfigFor(cfg).scheduler, "bliss");

    applyDesign(cfg, SystemDesign::FrFcfsBaseline);
    EXPECT_EQ(mcConfigFor(cfg).scheduler, "fr-fcfs");
}

TEST(SimConfigPresets, DefaultConfigIsTheDrStrangeDesign)
{
    const SimConfig def;
    const SimConfig dr = designConfig(SystemDesign::DrStrange);
    EXPECT_EQ(def.scheduler, dr.scheduler);
    EXPECT_EQ(def.rngAwareQueueing, dr.rngAwareQueueing);
    EXPECT_EQ(def.buffering, dr.buffering);
    EXPECT_EQ(def.fillPolicy, dr.fillPolicy);
    EXPECT_EQ(def.predictor, dr.predictor);
    EXPECT_EQ(def.lowUtilFill, dr.lowUtilFill);
}

TEST(SimConfigPresets, DesignNameKeyRoundTrip)
{
    for (SystemDesign d : kAllDesigns) {
        EXPECT_EQ(designFromString(designKey(d)), d);
        EXPECT_EQ(designFromString(designName(d)), d);
    }
    EXPECT_FALSE(designFromString("no-such-design").has_value());
}

TEST(Metrics, SlowdownAndMemSlowdown)
{
    cpu::CoreStats shared;
    shared.finishCycle = 2000;
    shared.instrRetired = 1000;
    shared.memStallCycles = 500;

    AloneResult alone;
    alone.execCpuCycles = 1000;
    alone.mcpi = 0.25;

    EXPECT_DOUBLE_EQ(slowdown(shared, alone), 2.0);
    EXPECT_DOUBLE_EQ(memSlowdown(shared, alone), 0.5 / 0.25);
}

TEST(Metrics, MemSlowdownFallsBackForComputeBoundApps)
{
    cpu::CoreStats shared;
    shared.finishCycle = 1500;
    shared.instrRetired = 1000;
    shared.memStallCycles = 1;

    AloneResult alone;
    alone.execCpuCycles = 1000;
    alone.mcpi = 0.0; // no memory stall alone
    EXPECT_DOUBLE_EQ(memSlowdown(shared, alone), 1.5);
}

TEST(Metrics, UnfairnessIsMaxOverMin)
{
    EXPECT_DOUBLE_EQ(unfairness({1.0, 2.0, 4.0}), 4.0);
    EXPECT_DOUBLE_EQ(unfairness({3.0, 3.0}), 1.0);
}

TEST(Metrics, UnfairnessFloorsSpeedupsAtOne)
{
    // An application running faster than alone (slowdown < 1) does not
    // inflate the index: 1.5 / max(1, 0.5) = 1.5.
    EXPECT_DOUBLE_EQ(unfairness({0.5, 1.5}), 1.5);
    EXPECT_DOUBLE_EQ(unfairness({0.2, 0.9}), 1.0);
}

TEST(Metrics, WeightedSpeedupSumsIpcRatios)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 2.0}, {2.0, 2.0}), 1.5);
}

TEST(EnergyModel, CountersProduceProportionalEnergy)
{
    const dram::DramTimings t;
    dram::ChannelEnergyCounters c;
    c.nAct = 100;
    c.nRd = 300;
    c.nWr = 100;
    c.nRef = 2;
    c.cyclesActive = 10000;
    c.cyclesPrecharged = 5000;
    c.rngRounds = 50;

    const EnergyBreakdown e = channelEnergy(t, c);
    EXPECT_GT(e.actPre, 0.0);
    EXPECT_GT(e.read, 0.0);
    EXPECT_GT(e.write, 0.0);
    EXPECT_GT(e.refresh, 0.0);
    EXPECT_GT(e.background, 0.0);
    EXPECT_GT(e.rng, 0.0);
    EXPECT_NEAR(e.total(), e.actPre + e.read + e.write + e.refresh +
                               e.background + e.rng,
                1e-9);

    // Doubling activity doubles the corresponding component.
    dram::ChannelEnergyCounters c2 = c;
    c2.nRd *= 2;
    EXPECT_NEAR(channelEnergy(t, c2).read, 2.0 * e.read, 1e-9);
}

TEST(EnergyModel, IdleSystemBurnsOnlyBackground)
{
    const dram::DramTimings t;
    dram::ChannelEnergyCounters c;
    c.cyclesPrecharged = 1000;
    const EnergyBreakdown e = channelEnergy(t, c);
    EXPECT_DOUBLE_EQ(e.actPre + e.read + e.write + e.refresh + e.rng, 0.0);
    EXPECT_GT(e.background, 0.0);
}

TEST(AreaModel, MatchesPaperCalibrationPoints)
{
    SimConfig cfg;
    applyDesign(cfg, SystemDesign::DrStrange);
    const AreaEstimate base = drStrangeArea(mcConfigFor(cfg), 4);
    // Paper: 0.0022 mm^2 at 22 nm for the base configuration.
    EXPECT_NEAR(base.mm2, 0.0022, 0.0022 * 0.25);
    EXPECT_NEAR(base.fractionOfCascadeLakeCore(), 0.0000048, 2e-6);

    applyDesign(cfg, SystemDesign::DrStrangeRl);
    const AreaEstimate rl = drStrangeArea(mcConfigFor(cfg), 4);
    // Paper: 0.012 mm^2 with the 8 KB Q-table.
    EXPECT_NEAR(rl.mm2, 0.012, 0.012 * 0.25);
    EXPECT_GT(rl.storageBits, 64.0 * 1024.0); // 8 KB+
}

TEST(AreaModel, AreaGrowsWithBufferSize)
{
    SimConfig cfg;
    applyDesign(cfg, SystemDesign::DrStrange);
    cfg.bufferEntries = 16;
    const double small = drStrangeArea(mcConfigFor(cfg), 4).mm2;
    cfg.bufferEntries = 64;
    const double large = drStrangeArea(mcConfigFor(cfg), 4).mm2;
    EXPECT_GT(large, small);
}

namespace {

std::vector<std::unique_ptr<cpu::TraceSource>>
singleAppTraces(const SimConfig &cfg, const std::string &app)
{
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName(app), cfg.geometry, 0, cfg.seed));
    return traces;
}

} // namespace

TEST(System, SingleCoreRunCompletes)
{
    SimConfig cfg;
    applyDesign(cfg, SystemDesign::RngOblivious);
    cfg.instrBudget = 20000;
    System sys(cfg, singleAppTraces(cfg, "gcc"));
    sys.run();
    EXPECT_TRUE(sys.allFinished());
    EXPECT_EQ(sys.coreStats(0).instrRetired, 20000u);
    EXPECT_GT(sys.busCycles(), 0u);
}

TEST(System, RunsAreDeterministic)
{
    SimConfig cfg;
    applyDesign(cfg, SystemDesign::DrStrange);
    cfg.instrBudget = 20000;
    cfg.seed = 17;

    auto run_once = [&]() {
        System sys(cfg, singleAppTraces(cfg, "milc"));
        sys.run();
        return sys.busCycles();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(System, MaxBusCyclesBoundsRuntime)
{
    SimConfig cfg;
    applyDesign(cfg, SystemDesign::RngOblivious);
    cfg.instrBudget = 1u << 30; // unreachable
    cfg.maxBusCycles = 5000;
    System sys(cfg, singleAppTraces(cfg, "mcf"));
    sys.run();
    EXPECT_FALSE(sys.allFinished());
    EXPECT_EQ(sys.busCycles(), 5000u);
}

TEST(Runner, AloneResultsAreCachedAndConsistent)
{
    SimConfig cfg;
    cfg.instrBudget = 20000;
    Runner runner(cfg);
    const AloneResult &a = runner.alone("gcc");
    const AloneResult &b = runner.alone("gcc");
    EXPECT_EQ(&a, &b); // same cached object
    EXPECT_GT(a.ipc, 0.0);
    EXPECT_GT(a.execCpuCycles, 0.0);
}

TEST(Runner, WorkloadResultHasPerCoreEntries)
{
    SimConfig cfg;
    cfg.instrBudget = 20000;
    Runner runner(cfg);
    workloads::WorkloadSpec spec;
    spec.name = "t";
    spec.apps = {"gcc", "milc"};
    spec.rngThroughputMbps = 5120.0;
    const auto res = runner.run(SystemDesign::DrStrange, spec);
    ASSERT_EQ(res.cores.size(), 3u);
    EXPECT_FALSE(res.cores[0].isRng);
    EXPECT_FALSE(res.cores[1].isRng);
    EXPECT_TRUE(res.cores[2].isRng);
    EXPECT_GE(res.unfairnessIndex, 1.0);
    EXPECT_GT(res.energyNj, 0.0);
    EXPECT_GT(res.weightedSpeedupNonRng, 0.0);
    EXPECT_LE(res.weightedSpeedupNonRng, 2.05);
}

TEST(Runner, NoRngWorkloadRunsCleanly)
{
    SimConfig cfg;
    cfg.instrBudget = 20000;
    Runner runner(cfg);
    workloads::WorkloadSpec spec;
    spec.name = "pair";
    spec.apps = {"gcc", "bzip2"};
    spec.rngThroughputMbps = 0.0;
    const auto res = runner.run(SystemDesign::RngOblivious, spec);
    EXPECT_EQ(res.cores.size(), 2u);
    EXPECT_EQ(res.mcStats.rngRequests, 0u);
    EXPECT_DOUBLE_EQ(res.rngSlowdown(), 1.0);
}
