/**
 * @file
 * Tests for cross-process sweep sharding and the persistent alone-run
 * cache: ShardSpec parsing, the stable cell hash partition (disjoint
 * exact cover for several grid shapes and shard counts), 2-shard
 * results merging bit-identically to an unsharded run, ResultStore
 * round trips, fingerprint/corruption fallback to recomputation, and
 * WorkloadResult JSON (de)serialization.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "drstrange.h"

using namespace dstrange;

namespace fs = std::filesystem;

namespace {

/** Small budget so each simulated cell finishes in milliseconds. */
sim::SimConfig
tinyConfig()
{
    sim::SimConfig cfg;
    cfg.instrBudget = 3000;
    return cfg;
}

workloads::WorkloadSpec
dualSpec(const std::string &app, double mbps = 5120.0)
{
    workloads::WorkloadSpec spec;
    spec.name = app + "+rng";
    spec.apps = {app};
    spec.rngThroughputMbps = mbps;
    return spec;
}

/** The full metric tuple of a run, for exact (==) comparisons. */
std::vector<double>
metricTuple(const sim::Runner::WorkloadResult &res)
{
    std::vector<double> out = {
        res.unfairnessIndex,    res.weightedSpeedupNonRng,
        res.bufferServeRate,    res.predictorAccuracy,
        res.energyNj,           static_cast<double>(res.busCycles),
    };
    for (const auto &core : res.cores) {
        out.push_back(core.slowdown);
        out.push_back(core.memSlowdown);
        out.push_back(core.ipcShared);
        out.push_back(core.ipcAlone);
        out.push_back(core.rngStallFraction);
    }
    return out;
}

/** Fresh empty directory under the test temp root, removed on scope
 *  exit. */
class TempDir
{
  public:
    TempDir()
    {
        // gtest_discover_tests runs every case as its own process of
        // this binary, so a per-process counter alone collides across
        // parallel ctest jobs — qualify the name with the PID.
        static int counter = 0;
#ifdef _WIN32
        const int pid = _getpid();
#else
        const int pid = ::getpid();
#endif
        path = fs::path(::testing::TempDir()) /
               ("drstrange-shard-" + std::to_string(pid) + "-" +
                std::to_string(++counter));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }

  private:
    fs::path path;
};

/** Cache data files in @p dir (everything but the .lock sentinel). */
std::vector<fs::path>
cacheFiles(const std::string &dir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename() != ".lock")
            files.push_back(entry.path());
    return files;
}

} // namespace

// --- ShardSpec ------------------------------------------------------

TEST(ShardSpec, ParsesValidSpecs)
{
    const auto s = sim::SweepRunner::ShardSpec::parse("0/2");
    EXPECT_EQ(s.index, 0u);
    EXPECT_EQ(s.count, 2u);
    EXPECT_FALSE(s.full());
    const auto t = sim::SweepRunner::ShardSpec::parse("7/8");
    EXPECT_EQ(t.index, 7u);
    EXPECT_EQ(t.count, 8u);
    const auto u = sim::SweepRunner::ShardSpec::parse("0/1");
    EXPECT_TRUE(u.full());
}

TEST(ShardSpec, RejectsMalformedSpecs)
{
    for (const char *bad : {"", "1", "/2", "2/", "a/b", "0x1/2", "1/2x",
                            "-1/2", "2/2", "3/2", "0/0", "1 /2"})
        EXPECT_THROW(sim::SweepRunner::ShardSpec::parse(bad),
                     std::invalid_argument)
            << "'" << bad << "' should not parse";
}

TEST(ShardSpec, FromEnvHonorsDsShard)
{
#ifndef _WIN32
    setenv("DS_SHARD", "1/3", /*overwrite=*/1);
    const auto s = sim::SweepRunner::ShardSpec::fromEnv();
    EXPECT_EQ(s.index, 1u);
    EXPECT_EQ(s.count, 3u);
    setenv("DS_SHARD", "nonsense", 1);
    EXPECT_THROW(sim::SweepRunner::ShardSpec::fromEnv(),
                 std::invalid_argument);
    unsetenv("DS_SHARD");
#endif
    const auto trivial = sim::SweepRunner::ShardSpec::fromEnv();
    EXPECT_TRUE(trivial.full());
}

// --- Stable cell hash and the partition -----------------------------

TEST(ShardPartition, CellKeyDistinguishesCells)
{
    const auto cells = sim::SweepRunner::grid(
        {"oblivious", "drstrange"},
        {dualSpec("mcf"), dualSpec("soplex"), dualSpec("mcf", 640.0)});
    std::set<std::string> keys;
    for (const auto &cell : cells)
        keys.insert(sim::SweepRunner::cellKey(cell));
    EXPECT_EQ(keys.size(), cells.size());

    // An explicit-config cell keys on the full config text, so two
    // configs differing in any knob hash apart.
    sim::SimulationBuilder a{tinyConfig()}, b{tinyConfig()};
    b.bufferEntries(4);
    const auto ca = a.buildSweepCell(dualSpec("mcf"));
    const auto cb = b.buildSweepCell(dualSpec("mcf"));
    EXPECT_NE(sim::SweepRunner::cellKey(ca),
              sim::SweepRunner::cellKey(cb));
    EXPECT_EQ(sim::SweepRunner::cellHash(ca),
              sim::SweepRunner::cellHash(ca));
}

TEST(ShardPartition, DisjointExactCoverForManyShapes)
{
    // Several grid shapes: dual-core products, a single row, a single
    // column, and a batch of explicit-config cells.
    std::vector<std::vector<sim::SweepRunner::Cell>> grids;
    grids.push_back(sim::SweepRunner::grid(
        {"oblivious", "greedy", "drstrange"},
        {dualSpec("mcf"), dualSpec("soplex"), dualSpec("lbm"),
         dualSpec("milc"), dualSpec("gcc")}));
    grids.push_back(sim::SweepRunner::grid({"drstrange"},
                                           {dualSpec("mcf")}));
    grids.push_back(sim::SweepRunner::grid(
        {"oblivious", "greedy", "drstrange", "bliss", "frfcfs"},
        {dualSpec("namd")}));
    {
        std::vector<sim::SweepRunner::Cell> configs;
        for (unsigned entries : {4u, 8u, 16u, 32u}) {
            sim::SimulationBuilder b{tinyConfig()};
            b.bufferEntries(entries);
            configs.push_back(b.buildSweepCell(dualSpec("mcf")));
        }
        grids.push_back(std::move(configs));
    }

    for (std::size_t g = 0; g < grids.size(); ++g) {
        const auto &cells = grids[g];
        for (unsigned n : {1u, 2u, 3u, 5u, 8u}) {
            for (const auto &cell : cells) {
                unsigned owners = 0;
                for (unsigned i = 0; i < n; ++i) {
                    sim::SweepRunner::ShardSpec spec;
                    spec.index = i;
                    spec.count = n;
                    owners += spec.owns(cell) ? 1 : 0;
                }
                EXPECT_EQ(owners, 1u)
                    << "grid " << g << ", " << n << " shards: cell '"
                    << sim::SweepRunner::cellKey(cell)
                    << "' owned by " << owners << " shards";
            }
        }
    }
}

TEST(ShardPartition, TwoShardRunMergesBitIdenticalToUnsharded)
{
    const auto cells = sim::SweepRunner::grid(
        {"oblivious", "drstrange"},
        {dualSpec("mcf"), dualSpec("soplex"), dualSpec("lbm")});

    sim::SweepRunner whole(tinyConfig(), 2);
    const auto ref = whole.run(cells);

    sim::SweepRunner half0(tinyConfig(), 2), half1(tinyConfig(), 2);
    half0.setShard(sim::SweepRunner::ShardSpec::parse("0/2"));
    half1.setShard(sim::SweepRunner::ShardSpec::parse("1/2"));
    const auto r0 = half0.run(cells);
    const auto r1 = half1.run(cells);

    ASSERT_EQ(r0.size(), cells.size());
    ASSERT_EQ(r1.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // Exactly one shard ran the cell; the other skipped it.
        ASSERT_NE(r0[i].skipped, r1[i].skipped) << "cell " << i;
        const auto &merged = r0[i].skipped ? r1[i] : r0[i];
        const auto &skipped = r0[i].skipped ? r0[i] : r1[i];
        EXPECT_FALSE(skipped.ok);
        EXPECT_NE(skipped.error.find("shard"), std::string::npos);
        ASSERT_TRUE(merged.ok) << merged.error;
        ASSERT_TRUE(ref[i].ok) << ref[i].error;
        EXPECT_EQ(metricTuple(merged.result), metricTuple(ref[i].result))
            << "cell " << i << " (" << cells[i].design << "/"
            << cells[i].spec.name << ")";
    }
}

// --- Persistent alone-run cache -------------------------------------

TEST(ResultStore, AloneRoundTripIsExact)
{
    TempDir dir;
    sim::ResultStore store(dir.str());
    sim::AloneResult res;
    res.execCpuCycles = 123456.0;
    res.ipc = 1.0 / 3.0; // not representable in 6 digits
    res.mcpi = 0.1234567890123456789;
    const std::string key = "app|mcf|some-canonical-config";
    EXPECT_TRUE(store.storeAlone(key, res));
    EXPECT_EQ(store.stores(), 1u);

    const auto loaded = store.loadAlone(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->execCpuCycles, res.execCpuCycles);
    EXPECT_EQ(loaded->ipc, res.ipc); // bit-exact, not approximate
    EXPECT_EQ(loaded->mcpi, res.mcpi);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 0u);

    EXPECT_FALSE(store.loadAlone("some-other-key").has_value());
    EXPECT_EQ(store.misses(), 1u);
}

TEST(ResultStore, SizeBoundEvictsLeastRecentlyUsed)
{
    TempDir dir;
    sim::ResultStore store(dir.str());
    EXPECT_EQ(store.maxBytesBound(), 0u); // Unlimited by default.

    sim::AloneResult res;
    res.execCpuCycles = 1000.0;
    res.ipc = 1.5;
    res.mcpi = 0.25;
    ASSERT_TRUE(store.storeAlone("key-a", res));
    const auto files = cacheFiles(dir.str());
    ASSERT_EQ(files.size(), 1u);
    const std::uint64_t one = fs::file_size(files[0]);

    // Budget for two files: storing a third evicts the stalest one.
    store.setMaxBytes(2 * one + one / 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(store.storeAlone("key-b", res));
    EXPECT_EQ(cacheFiles(dir.str()).size(), 2u);

    // Touch key-a via a hit so key-b becomes the LRU victim.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(store.loadAlone("key-a").has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(store.storeAlone("key-c", res));

    EXPECT_EQ(cacheFiles(dir.str()).size(), 2u);
    EXPECT_TRUE(store.loadAlone("key-a").has_value());
    EXPECT_FALSE(store.loadAlone("key-b").has_value()); // Evicted.
    EXPECT_TRUE(store.loadAlone("key-c").has_value());
}

TEST(ResultStore, MaxBytesSeedsFromEnvironment)
{
    TempDir dir;
    ::setenv("DS_CACHE_MAX_MB", "3", 1);
    sim::ResultStore bounded(dir.str());
    ::unsetenv("DS_CACHE_MAX_MB");
    EXPECT_EQ(bounded.maxBytesBound(), 3ull * 1024 * 1024);
    sim::ResultStore unbounded(dir.str());
    EXPECT_EQ(unbounded.maxBytesBound(), 0u);
}

TEST(ResultStore, EvictionNeverCorruptsConcurrentReaders)
{
    TempDir dir;
    // Writer and readers use separate store handles on one directory,
    // modelling separate processes. The budget is tiny, so nearly every
    // store evicts; readers must only ever observe a clean hit with the
    // exact stored values or a clean miss — never a torn read or throw.
    sim::ResultStore writer(dir.str());
    sim::ResultStore reader(dir.str());

    auto resultFor = [](unsigned i) {
        sim::AloneResult r;
        r.execCpuCycles = 1000.0 + i;
        r.ipc = 1.0 / (i + 1);
        r.mcpi = 0.125 * i;
        return r;
    };
    auto keyFor = [](unsigned i) {
        return "evict-key-" + std::to_string(i);
    };

    constexpr unsigned kKeys = 64;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> verified{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                for (unsigned i = 0; i < kKeys; ++i) {
                    const auto got = reader.loadAlone(keyFor(i));
                    if (!got)
                        continue;
                    const sim::AloneResult want = resultFor(i);
                    ASSERT_EQ(got->execCpuCycles, want.execCpuCycles);
                    ASSERT_EQ(got->ipc, want.ipc);
                    ASSERT_EQ(got->mcpi, want.mcpi);
                    verified.fetch_add(1);
                }
            }
        });
    }

    ASSERT_TRUE(writer.storeAlone(keyFor(0), resultFor(0)));
    const auto first = cacheFiles(dir.str());
    ASSERT_EQ(first.size(), 1u);
    writer.setMaxBytes(4 * fs::file_size(first[0]));
    for (int round = 0; round < 3; ++round)
        for (unsigned i = 0; i < kKeys; ++i)
            ASSERT_TRUE(writer.storeAlone(keyFor(i), resultFor(i)));

    stop.store(true);
    for (std::thread &t : readers)
        t.join();
    EXPECT_GT(verified.load(), 0u);
    // The directory respects the budget after the churn.
    std::uint64_t total = 0;
    for (const fs::path &p : cacheFiles(dir.str()))
        total += fs::file_size(p);
    EXPECT_LE(total, writer.maxBytesBound());
}

TEST(ResultStore, RunnerPersistsAndRestoresBaselines)
{
    TempDir dir;
    // Cold: computes and writes back.
    auto store1 = std::make_shared<sim::ResultStore>(dir.str());
    sim::Runner cold(tinyConfig(), store1);
    const sim::AloneResult ref = cold.alone("mcf");
    EXPECT_EQ(store1->misses(), 1u);
    EXPECT_EQ(store1->stores(), 1u);
    // Second lookup in the same Runner hits the in-memory cache only.
    cold.alone("mcf");
    EXPECT_EQ(store1->hits(), 0u);

    // Warm: a fresh process (modelled by a fresh Runner + fresh store
    // handle on the same directory) restores the identical baseline
    // without recomputing.
    auto store2 = std::make_shared<sim::ResultStore>(dir.str());
    sim::Runner warm(tinyConfig(), store2);
    const sim::AloneResult &again = warm.alone("mcf");
    EXPECT_EQ(store2->hits(), 1u);
    EXPECT_EQ(store2->misses(), 0u);
    EXPECT_EQ(store2->stores(), 0u);
    EXPECT_EQ(again.execCpuCycles, ref.execCpuCycles);
    EXPECT_EQ(again.ipc, ref.ipc);
    EXPECT_EQ(again.mcpi, ref.mcpi);

    // And a store-less Runner agrees, so the cache changed nothing.
    sim::Runner plain(tinyConfig(), nullptr);
    const sim::AloneResult &independent = plain.alone("mcf");
    EXPECT_EQ(independent.ipc, ref.ipc);
}

TEST(ResultStore, SweepResultsIdenticalWithWarmCache)
{
    TempDir dir;
    const auto cells = sim::SweepRunner::grid(
        {"oblivious", "drstrange"}, {dualSpec("mcf"), dualSpec("lbm")});

    sim::SweepRunner noCache(tinyConfig(), 2, nullptr);
    const auto ref = noCache.run(cells);

    sim::SweepRunner coldSweep(tinyConfig(), 2,
                               std::make_shared<sim::ResultStore>(
                                   dir.str()));
    const auto cold = coldSweep.run(cells);
    EXPECT_GT(coldSweep.runner().resultStore()->stores(), 0u);

    auto warmStore = std::make_shared<sim::ResultStore>(dir.str());
    sim::SweepRunner warmSweep(tinyConfig(), 2, warmStore);
    const auto warm = warmSweep.run(cells);
    EXPECT_GT(warmStore->hits(), 0u);
    EXPECT_EQ(warmStore->misses(), 0u); // nothing cached is recomputed

    for (std::size_t i = 0; i < cells.size(); ++i) {
        ASSERT_TRUE(ref[i].ok && cold[i].ok && warm[i].ok);
        EXPECT_EQ(metricTuple(cold[i].result), metricTuple(ref[i].result));
        EXPECT_EQ(metricTuple(warm[i].result), metricTuple(ref[i].result));
    }
}

TEST(ResultStore, FingerprintMismatchFallsBackToRecompute)
{
    TempDir dir;
    const std::string key = "app|mcf|cfg";
    sim::AloneResult res;
    res.execCpuCycles = 42.0;
    res.ipc = 2.0;
    res.mcpi = 0.5;

    sim::ResultStore old(dir.str(), "stale-fingerprint-v0");
    EXPECT_TRUE(old.storeAlone(key, res));

    // A store with the current fingerprint must treat the stale file
    // as a miss, not serve (or crash on) it.
    sim::ResultStore fresh(dir.str());
    EXPECT_FALSE(fresh.loadAlone(key).has_value());
    EXPECT_EQ(fresh.misses(), 1u);

    // The stale-stamped store still reads its own file.
    EXPECT_TRUE(old.loadAlone(key).has_value());
}

TEST(ResultStore, CorruptOrTruncatedFilesFallBackToRecompute)
{
    TempDir dir;
    sim::ResultStore store(dir.str());
    const std::string key = "app|mcf|cfg";
    sim::AloneResult res;
    res.execCpuCycles = 1.0;
    ASSERT_TRUE(store.storeAlone(key, res));
    const auto files = cacheFiles(dir.str());
    ASSERT_EQ(files.size(), 1u);

    for (const char *garbage :
         {"", "{\"schema\": \"drstrange-al", "not json at all",
          "{\"schema\": \"drstrange-alone-cache-v1\"}"}) {
        std::ofstream(files[0], std::ios::trunc) << garbage;
        EXPECT_FALSE(store.loadAlone(key).has_value())
            << "garbage: '" << garbage << "'";
    }

    // Recompute-and-store heals the slot.
    ASSERT_TRUE(store.storeAlone(key, res));
    EXPECT_TRUE(store.loadAlone(key).has_value());
}

TEST(ResultStore, FingerprintSeparatesEngineModes)
{
#ifndef _WIN32
    // Baselines computed under fast-forward must not be served to a
    // DS_FAST_FORWARD=0 validation run (and vice versa), even though
    // the two engines are lockstep-verified bit-identical.
    unsetenv("DS_FAST_FORWARD");
    const std::string ff = sim::ResultStore::buildFingerprint();
    setenv("DS_FAST_FORWARD", "0", /*overwrite=*/1);
    const std::string step1 = sim::ResultStore::buildFingerprint();
    unsetenv("DS_FAST_FORWARD");
    EXPECT_NE(ff, step1);
#else
    GTEST_SKIP() << "environment manipulation is POSIX-only here";
#endif
}

TEST(ResultStore, OpenFromEnvDefaultsOff)
{
#ifndef _WIN32
    unsetenv("DS_CACHE_DIR");
    EXPECT_EQ(sim::ResultStore::openFromEnv(), nullptr);
    TempDir dir;
    setenv("DS_CACHE_DIR", dir.str().c_str(), /*overwrite=*/1);
    const auto store = sim::ResultStore::openFromEnv();
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->dir(), dir.str());
    // An unusable directory degrades to no persistence (nullptr plus
    // a warning) instead of throwing out of Runner's constructor —
    // but explicit construction keeps the hard error.
    setenv("DS_CACHE_DIR", "/dev/null/not-a-directory", 1);
    EXPECT_EQ(sim::ResultStore::openFromEnv(), nullptr);
    EXPECT_NO_THROW(sim::Runner{tinyConfig()});
    EXPECT_THROW(sim::ResultStore("/dev/null/not-a-directory"),
                 std::runtime_error);
    unsetenv("DS_CACHE_DIR");
#else
    GTEST_SKIP() << "environment manipulation is POSIX-only here";
#endif
}

// --- WorkloadResult JSON --------------------------------------------

TEST(ResultStore, WorkloadResultJsonRoundTrip)
{
    sim::Runner runner(tinyConfig(), nullptr);
    runner.setCollectIdlePeriods(true);
    const auto ref = runner.run("drstrange", dualSpec("mcf"));

    const std::string text = sim::serializeWorkloadResult(ref);
    const auto back = sim::parseWorkloadResult(text);

    EXPECT_EQ(back.name, ref.name);
    EXPECT_EQ(back.group, ref.group);
    EXPECT_EQ(metricTuple(back), metricTuple(ref));
    EXPECT_EQ(back.busCycles, ref.busCycles);
    EXPECT_EQ(back.idlePeriods, ref.idlePeriods);
    const auto &mc = back.mcStats;
    const auto &mr = ref.mcStats;
    EXPECT_EQ(mc.readRequests, mr.readRequests);
    EXPECT_EQ(mc.writeRequests, mr.writeRequests);
    EXPECT_EQ(mc.rngRequests, mr.rngRequests);
    EXPECT_EQ(mc.rngServedFromBuffer, mr.rngServedFromBuffer);
    EXPECT_EQ(mc.rngServedFromStaging, mr.rngServedFromStaging);
    EXPECT_EQ(mc.rngJobsCompleted, mr.rngJobsCompleted);
    EXPECT_EQ(mc.readsCompleted, mr.readsCompleted);
    EXPECT_EQ(mc.sumReadLatency, mr.sumReadLatency);
    EXPECT_EQ(mc.sumRngLatency, mr.sumRngLatency);
    ASSERT_EQ(back.cores.size(), ref.cores.size());
    for (std::size_t i = 0; i < ref.cores.size(); ++i) {
        EXPECT_EQ(back.cores[i].app, ref.cores[i].app);
        EXPECT_EQ(back.cores[i].isRng, ref.cores[i].isRng);
    }
}

TEST(ResultStore, WorkloadResultParseRejectsMalformedInput)
{
    EXPECT_THROW(sim::parseWorkloadResult("{"), std::invalid_argument);
    EXPECT_THROW(sim::parseWorkloadResult("{}"), std::runtime_error);
    EXPECT_THROW(sim::parseWorkloadResult("[1, 2]"), std::runtime_error);
}
