/**
 * @file
 * Regression locks for the calibrated reproduction: these tests pin the
 * headline behaviours (with generous tolerance bands) so future changes
 * to the substrate or policies cannot silently destroy the paper's
 * reproduced shapes. Bands are derived from the measured results in
 * EXPERIMENTS.md at the default seed.
 */

#include <gtest/gtest.h>

#include "common/stats_util.h"
#include "sim/runner.h"
#include "trng/trng_mechanism.h"

using namespace dstrange;
using namespace dstrange::sim;

namespace {

SimConfig
regressionConfig()
{
    SimConfig cfg;
    cfg.instrBudget = 100000;
    return cfg;
}

workloads::WorkloadSpec
mix(const std::string &app, double mbps = 5120.0)
{
    workloads::WorkloadSpec spec;
    spec.name = app + "+rng";
    spec.apps = {app};
    spec.rngThroughputMbps = mbps;
    return spec;
}

/** A representative slice spanning the intensity spectrum. */
const std::vector<std::string> kApps = {"ycsb2", "jp2d", "soplex",
                                        "zeusmp", "mcf"};

struct Band
{
    double nonRng = 0.0;
    double rng = 0.0;
    double unfair = 0.0;
    double serve = 0.0;
};

Band
measure(Runner &runner, SystemDesign design)
{
    std::vector<double> non_rng, rng, unf, serve;
    for (const auto &app : kApps) {
        const auto res = runner.run(design, mix(app));
        non_rng.push_back(res.avgNonRngSlowdown());
        rng.push_back(res.rngSlowdown());
        unf.push_back(res.unfairnessIndex);
        serve.push_back(res.bufferServeRate);
    }
    return {mean(non_rng), mean(rng), mean(unf), mean(serve)};
}

} // namespace

class ReproductionBands : public ::testing::Test
{
  protected:
    ReproductionBands() : runner(regressionConfig()) {}
    Runner runner;
};

TEST_F(ReproductionBands, BaselineInterferenceBand)
{
    // The RNG-oblivious baseline at 5 Gb/s must interfere substantially
    // (paper Fig. 1/6 band) but not catastrophically.
    const Band base = measure(runner, SystemDesign::RngOblivious);
    EXPECT_GT(base.nonRng, 1.3);
    EXPECT_LT(base.nonRng, 3.5);
    EXPECT_GT(base.unfair, 1.5);
    EXPECT_LT(base.unfair, 5.0);
    EXPECT_DOUBLE_EQ(base.serve, 0.0);
}

TEST_F(ReproductionBands, DrStrangeHeadlineImprovements)
{
    const Band base = measure(runner, SystemDesign::RngOblivious);
    const Band dr = measure(runner, SystemDesign::DrStrange);

    // Paper: -17.9% non-RNG, -25.1% RNG, -32.1% unfairness. Lock a
    // >=10% improvement on each, and sane upper bounds.
    EXPECT_LT(dr.nonRng, base.nonRng * 0.90);
    EXPECT_LT(dr.rng, base.rng * 0.90);
    EXPECT_LT(dr.unfair, base.unfair * 0.95);

    // Buffer serve rate in the paper's Fig. 10 band.
    EXPECT_GT(dr.serve, 0.40);
    EXPECT_LT(dr.serve, 0.95);
}

TEST_F(ReproductionBands, GreedySitsBetweenBaselineAndDrStrangeOnRng)
{
    const Band base = measure(runner, SystemDesign::RngOblivious);
    const Band greedy = measure(runner, SystemDesign::GreedyIdle);
    const Band dr = measure(runner, SystemDesign::DrStrange);
    EXPECT_LT(greedy.rng, base.rng);
    EXPECT_LE(dr.rng, greedy.rng * 1.05);
}

TEST_F(ReproductionBands, QuacAlsoImprovesEndToEnd)
{
    SimConfig cfg = regressionConfig();
    cfg.mechanism = trng::TrngMechanism::quacTrng();
    Runner quac_runner(cfg);
    const Band base = measure(quac_runner, SystemDesign::RngOblivious);
    const Band dr = measure(quac_runner, SystemDesign::DrStrange);
    EXPECT_LT(dr.nonRng, base.nonRng * 0.90);
    EXPECT_LT(dr.rng, base.rng * 0.95);
}

TEST_F(ReproductionBands, RngAppAchievesSubUnitySlowdownOnLightMixes)
{
    // The paper's Fig. 6 bottom: buffered serves make the RNG app run
    // faster than its alone-run on light co-runners.
    const auto res = runner.run(SystemDesign::DrStrange, mix("ycsb2"));
    EXPECT_LT(res.rngSlowdown(), 1.0);
}

TEST_F(ReproductionBands, PredictorAccuracyBand)
{
    std::vector<double> acc;
    for (const auto &app : kApps) {
        acc.push_back(runner.run(SystemDesign::DrStrange, mix(app))
                          .predictorAccuracy);
    }
    // Fig. 14 band at our scale: well above chance, below perfection.
    EXPECT_GT(mean(acc), 0.45);
    EXPECT_LT(mean(acc), 0.98);
}

TEST_F(ReproductionBands, EnergyReductionBand)
{
    std::vector<double> base_e, dr_e;
    for (const auto &app : kApps) {
        base_e.push_back(
            runner.run(SystemDesign::RngOblivious, mix(app)).energyNj);
        dr_e.push_back(
            runner.run(SystemDesign::DrStrange, mix(app)).energyNj);
    }
    // Paper: -21%. Lock 10%..50%.
    const double reduction = 1.0 - mean(dr_e) / mean(base_e);
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.50);
}

TEST_F(ReproductionBands, IntensitySweepEndpoints)
{
    // Fig. 1 endpoints: 640 Mb/s must be mild, 5120 Mb/s substantial.
    const auto low =
        runner.run(SystemDesign::RngOblivious, mix("soplex", 640.0));
    const auto high =
        runner.run(SystemDesign::RngOblivious, mix("soplex", 5120.0));
    EXPECT_LT(low.avgNonRngSlowdown(), 1.35);
    EXPECT_GT(high.avgNonRngSlowdown(), low.avgNonRngSlowdown() * 1.15);
}

TEST_F(ReproductionBands, DemandLatencyCalibration)
{
    // The calibrated D-RaNGe on-demand 64-bit latency over 4 channels.
    EXPECT_EQ(trng::TrngMechanism::dRange().demandLatency(64, 4), 18u);
    // QUAC's is several times higher (one full round).
    EXPECT_GT(trng::TrngMechanism::quacTrng().demandLatency(64, 4), 100u);
}
