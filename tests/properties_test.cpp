/**
 * @file
 * Property-based tests: invariants that must hold across the whole
 * design/workload/configuration space, exercised with parameterized
 * gtest sweeps.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/stats_util.h"
#include "sim/runner.h"

using namespace dstrange;
using namespace dstrange::sim;

namespace {

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.instrBudget = 30000;
    return cfg;
}

workloads::WorkloadSpec
mix(const std::string &app, double mbps = 5120.0)
{
    workloads::WorkloadSpec spec;
    spec.name = app + "+rng";
    spec.apps = {app};
    spec.rngThroughputMbps = mbps;
    return spec;
}

std::string
designLabel(SystemDesign d)
{
    std::string s = designName(d);
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

} // namespace

// ---------------------------------------------------------------------
// Property: every design completes every workload type, deterministically,
// with sane metric ranges.
// ---------------------------------------------------------------------

class DesignProperty
    : public ::testing::TestWithParam<std::tuple<SystemDesign, const char *>>
{
};

TEST_P(DesignProperty, RunsCompleteDeterministicallyWithSaneMetrics)
{
    const auto [design, app] = GetParam();
    Runner r1(tinyConfig()), r2(tinyConfig());

    const auto a = r1.run(design, mix(app));
    const auto b = r2.run(design, mix(app));

    // Determinism.
    EXPECT_EQ(a.busCycles, b.busCycles);
    EXPECT_DOUBLE_EQ(a.unfairnessIndex, b.unfairnessIndex);

    // Sanity ranges.
    EXPECT_GE(a.unfairnessIndex, 1.0);
    EXPECT_GE(a.bufferServeRate, 0.0);
    EXPECT_LE(a.bufferServeRate, 1.0);
    EXPECT_GT(a.busCycles, 0u);
    for (const auto &core : a.cores) {
        EXPECT_GT(core.slowdown, 0.1) << core.app;
        EXPECT_LT(core.slowdown, 100.0) << core.app;
        EXPECT_GT(core.ipcShared, 0.0) << core.app;
        EXPECT_LE(core.ipcShared, 3.0) << core.app;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesignsAndApps, DesignProperty,
    ::testing::Combine(
        ::testing::Values(SystemDesign::RngOblivious,
                          SystemDesign::GreedyIdle,
                          SystemDesign::DrStrange,
                          SystemDesign::DrStrangeNoPred,
                          SystemDesign::DrStrangeRl,
                          SystemDesign::DrStrangeNoLowUtil,
                          SystemDesign::RngAwareNoBuffer,
                          SystemDesign::FrFcfsBaseline,
                          SystemDesign::BlissBaseline),
        ::testing::Values("ycsb1", "soplex", "lbm", "gcc")),
    [](const auto &info) {
        return designLabel(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param);
    });

// ---------------------------------------------------------------------
// Property: buffer serve rate grows (weakly) with buffer size, and every
// size is functional (Fig. 10's underlying invariant).
// ---------------------------------------------------------------------

class BufferSizeProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BufferSizeProperty, ServeRateWeaklyIncreasesWithBufferSize)
{
    const std::string app = GetParam();
    double last_rate = -0.05;
    for (unsigned entries : {1u, 4u, 16u, 64u}) {
        SimConfig cfg = tinyConfig();
        cfg.bufferEntries = entries;
        Runner runner(cfg);
        const auto res = runner.run(SystemDesign::DrStrangeNoPred, mix(app));
        EXPECT_GE(res.bufferServeRate, last_rate - 0.05)
            << app << " entries=" << entries;
        last_rate = res.bufferServeRate;
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, BufferSizeProperty,
                         ::testing::Values("ycsb2", "cactus", "zeusmp"));

// ---------------------------------------------------------------------
// Property: RNG intensity monotonically pressures the baseline system
// (Fig. 1's underlying invariant).
// ---------------------------------------------------------------------

class IntensityProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(IntensityProperty, BaselineSlowdownGrowsWithRngThroughput)
{
    const std::string app = GetParam();
    Runner runner(tinyConfig());
    double last = 0.0;
    for (double mbps : {640.0, 1280.0, 2560.0, 5120.0}) {
        const auto res =
            runner.run(SystemDesign::RngOblivious, mix(app, mbps));
        // Weakly monotone: interference saturates at high intensity,
        // so allow small regressions within noise.
        const double sd = res.avgNonRngSlowdown();
        EXPECT_GE(sd, last * 0.95) << app << " " << mbps;
        last = sd;
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, IntensityProperty,
                         ::testing::Values("sphinx3", "soplex", "mcf"));

// ---------------------------------------------------------------------
// Property: TRNG mechanism throughput sweep behaves like Fig. 2 — more
// TRNG throughput never makes the baseline dramatically worse, and the
// low end is clearly worse than the high end.
// ---------------------------------------------------------------------

TEST(ThroughputSweepProperty, LowCapacityHurtsMost)
{
    std::vector<double> slowdowns;
    for (double mbps : {200.0, 800.0, 3200.0, 6400.0}) {
        SimConfig cfg = tinyConfig();
        cfg.mechanism = trng::TrngMechanism::withSystemThroughput(mbps, 4);
        Runner runner(cfg);
        const auto res =
            runner.run(SystemDesign::RngOblivious, mix("soplex"));
        slowdowns.push_back(res.avgNonRngSlowdown());
    }
    EXPECT_GT(slowdowns.front(), slowdowns.back());
}

// ---------------------------------------------------------------------
// Property: the starvation-prevention stall limit is respected for any
// priority assignment.
// ---------------------------------------------------------------------

class PriorityProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(PriorityProperty, AllCoresFinishUnderAnyPriorityAssignment)
{
    const auto [p0, p1] = GetParam();
    SimConfig cfg = tinyConfig();
    cfg.priorities = {p0, p1};
    Runner runner(cfg);
    const auto res = runner.run(SystemDesign::DrStrange, mix("tpch2"));
    // Both applications made it to their budget: nobody starved.
    for (const auto &core : res.cores)
        EXPECT_LT(core.slowdown, 50.0);
}

INSTANTIATE_TEST_SUITE_P(Assignments, PriorityProperty,
                         ::testing::Values(std::make_pair(0, 0),
                                           std::make_pair(5, 0),
                                           std::make_pair(0, 5),
                                           std::make_pair(3, 3)));

// ---------------------------------------------------------------------
// Property: bit conservation — served random bits never exceed harvested
// bits plus buffered/staged credit (no random numbers out of thin air).
// ---------------------------------------------------------------------

class ConservationProperty : public ::testing::TestWithParam<SystemDesign>
{
};

TEST_P(ConservationProperty, ServedBitsAreBackedByGeneratedBits)
{
    Runner runner(tinyConfig());
    const auto res = runner.run(GetParam(), mix("ycsb0"));
    const auto &s = res.mcStats;
    const double served_bits =
        64.0 * (s.rngServedFromBuffer + s.rngServedFromStaging +
                s.rngJobsCompleted);
    // Engine-produced bits + oracle deposits must cover all serves. The
    // greedy design's deposits are free, so only check non-greedy ones.
    if (GetParam() != SystemDesign::GreedyIdle) {
        EXPECT_GT(served_bits, 0.0);
        EXPECT_GE(static_cast<double>(res.mcStats.rngRequests) * 64.0,
                  served_bits);
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Designs, ConservationProperty,
                         ::testing::Values(SystemDesign::RngOblivious,
                                           SystemDesign::DrStrange,
                                           SystemDesign::DrStrangeRl),
                         [](const auto &info) {
                             return designLabel(info.param);
                         });

// ---------------------------------------------------------------------
// Property: multi-core scaling — unfairness and slowdown metrics stay
// well-formed from 2 to 8 cores for each design.
// ---------------------------------------------------------------------

class ScalingProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ScalingProperty, MetricsWellFormedAtScale)
{
    const unsigned cores = GetParam();
    SimConfig cfg = tinyConfig();
    cfg.instrBudget = 20000;
    Runner runner(cfg);
    const auto groups = workloads::multiCoreCategoryGroup(cores, 'M', 7);
    const auto res = runner.run(SystemDesign::DrStrange, groups[0]);
    EXPECT_EQ(res.cores.size(), cores);
    EXPECT_GE(res.unfairnessIndex, 1.0);
    EXPECT_GT(res.weightedSpeedupNonRng, 0.0);
    EXPECT_LE(res.weightedSpeedupNonRng,
              static_cast<double>(cores - 1) + 0.1);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, ScalingProperty,
                         ::testing::Values(2u, 4u, 8u));

// ---------------------------------------------------------------------
// Property: an independent shadow validator finds no JEDEC timing
// violations in the command streams of full end-to-end runs, for every
// system design.
// ---------------------------------------------------------------------

#include "timing_checker.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

class TimingComplianceProperty
    : public ::testing::TestWithParam<SystemDesign>
{
};

TEST_P(TimingComplianceProperty, NoViolationsInEndToEndRun)
{
    SimConfig cfg = tinyConfig();
    applyDesign(cfg, GetParam());

    std::vector<std::unique_ptr<dstrange::cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName("soplex"), cfg.geometry, 0, cfg.seed));
    traces.push_back(std::make_unique<workloads::RngBenchmark>(
        5120.0, cfg.geometry, cfg.seed + 1));
    System sys(cfg, std::move(traces));

    std::vector<std::unique_ptr<testutil::TimingChecker>> checkers;
    for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
        checkers.push_back(std::make_unique<testutil::TimingChecker>(
            cfg.timings, cfg.geometry.banksPerChannel(),
            cfg.geometry.banksPerRank));
        checkers.back()->attach(sys.mc().channelMutable(ch));
    }

    sys.run();

    std::uint64_t total = 0;
    for (const auto &checker : checkers) {
        for (const std::string &violation : checker->violations())
            ADD_FAILURE() << violation;
        total += checker->commandsChecked();
    }
    EXPECT_GT(total, 1000u); // the run exercised real traffic
}

INSTANTIATE_TEST_SUITE_P(Designs, TimingComplianceProperty,
                         ::testing::Values(SystemDesign::RngOblivious,
                                           SystemDesign::GreedyIdle,
                                           SystemDesign::DrStrange,
                                           SystemDesign::BlissBaseline,
                                           SystemDesign::FrFcfsBaseline),
                         [](const auto &info) {
                             return designLabel(info.param);
                         });

// ---------------------------------------------------------------------
// Property: refresh happens on schedule in long runs (the interval
// between REF commands never exceeds ~2x tREFI even under RNG load).
// ---------------------------------------------------------------------

TEST(RefreshProperty, RefreshKeepsPaceUnderRngLoad)
{
    SimConfig cfg = tinyConfig();
    applyDesign(cfg, SystemDesign::RngOblivious);
    cfg.instrBudget = 100000;

    std::vector<std::unique_ptr<dstrange::cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::RngBenchmark>(
        5120.0, cfg.geometry, cfg.seed));
    System sys(cfg, std::move(traces));

    std::vector<Cycle> ref_times;
    sys.mc().channelMutable(0).setCommandObserver(
        [&](dstrange::dram::DramCmd cmd, unsigned, Cycle now,
            std::int64_t) {
            if (cmd == dstrange::dram::DramCmd::Ref)
                ref_times.push_back(now);
        });
    sys.run();

    ASSERT_GE(ref_times.size(), 2u);
    for (std::size_t i = 1; i < ref_times.size(); ++i) {
        EXPECT_LT(ref_times[i] - ref_times[i - 1],
                  2 * cfg.timings.tREFI)
            << "refresh " << i << " late";
    }
}

// ---------------------------------------------------------------------
// Property: multi-rank channels obey the same JEDEC constraints —
// including the rank-scoped tRRD/tFAW, per-rank refresh, and the
// cross-rank tRTRS bus turnaround — for every registered mapping.
// ---------------------------------------------------------------------

#include "dram/mapping_registry.h"

TEST(MultiRankTimingProperty, NoViolationsAcrossRanksAndMappings)
{
    for (unsigned ranks : {2u, 4u}) {
        for (const std::string &mapping :
             dstrange::dram::MappingRegistry::instance().keys()) {
            SimConfig cfg = tinyConfig();
            applyDesign(cfg, SystemDesign::DrStrange);
            cfg.geometry.ranksPerChannel = ranks;
            cfg.addressMapping = mapping;

            std::vector<std::unique_ptr<dstrange::cpu::TraceSource>>
                traces;
            traces.push_back(std::make_unique<workloads::SyntheticTrace>(
                workloads::appByName("soplex"), cfg.geometry, 0,
                cfg.seed));
            traces.push_back(std::make_unique<workloads::RngBenchmark>(
                5120.0, cfg.geometry, cfg.seed + 1));
            System sys(cfg, std::move(traces));

            std::vector<std::unique_ptr<testutil::TimingChecker>>
                checkers;
            for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
                checkers.push_back(
                    std::make_unique<testutil::TimingChecker>(
                        cfg.timings, cfg.geometry.banksPerChannel(),
                        cfg.geometry.banksPerRank));
                checkers.back()->attach(sys.mc().channelMutable(ch));
            }
            sys.run();

            std::uint64_t total = 0;
            for (const auto &checker : checkers) {
                for (const std::string &violation :
                     checker->violations())
                    ADD_FAILURE()
                        << violation << " (ranks=" << ranks
                        << " mapping=" << mapping << ")";
                total += checker->commandsChecked();
            }
            EXPECT_GT(total, 1000u) << "ranks=" << ranks
                                    << " mapping=" << mapping;
        }
    }
}

// ---------------------------------------------------------------------
// Property: every registered address mapping is an exact bijection
// between line-aligned addresses and DRAM coordinates, over randomized
// geometries (encode inverts decode, fields stay in bounds, and the
// whole address space maps without collisions).
// ---------------------------------------------------------------------

#include <random>
#include <set>

TEST(MappingProperty, EncodeInvertsDecodeOnRandomGeometries)
{
    std::mt19937_64 prng(0xD5u);
    auto &registry = dstrange::dram::MappingRegistry::instance();
    for (int iter = 0; iter < 40; ++iter) {
        dstrange::dram::DramGeometry g;
        g.channels = 1 + prng() % 4;
        g.ranksPerChannel = 1 + prng() % 4;
        g.banksPerRank = 1u << (prng() % 4); // pow2: all mappings apply
        g.rowsPerBank = 2 + prng() % 64;
        g.rowBytes = kLineBytes * (1 + prng() % 8);
        const std::uint64_t lines = g.capacityBytes() / kLineBytes;

        for (const std::string &key : registry.keys()) {
            const auto mapping = registry.make(key, g);
            for (int i = 0; i < 200; ++i) {
                const Addr addr = (prng() % lines) * kLineBytes;
                const dstrange::dram::DramCoord c =
                    mapping->decode(addr);
                ASSERT_LT(c.channel, g.channels) << key;
                ASSERT_LT(c.rank, g.ranksPerChannel) << key;
                ASSERT_LT(c.bank, g.banksPerChannel()) << key;
                ASSERT_EQ(c.rank, c.bank / g.banksPerRank) << key;
                ASSERT_LT(c.row, g.rowsPerBank) << key;
                ASSERT_LT(c.col, g.colsPerRow()) << key;
                ASSERT_EQ(mapping->encode(c), addr) << key;

                // Callers that fill only the flat bank slot (rank left
                // zero) must encode to the same address.
                dstrange::dram::DramCoord legacy = c;
                legacy.rank = 0;
                ASSERT_EQ(mapping->encode(legacy), addr) << key;
            }
        }
    }
}

TEST(MappingProperty, FullAddressSpaceIsBijective)
{
    dstrange::dram::DramGeometry g;
    g.channels = 3;
    g.ranksPerChannel = 2;
    g.banksPerRank = 4;
    g.rowsPerBank = 5;
    g.rowBytes = kLineBytes * 2;
    const std::uint64_t lines = g.capacityBytes() / kLineBytes;

    auto &registry = dstrange::dram::MappingRegistry::instance();
    for (const std::string &key : registry.keys()) {
        const auto mapping = registry.make(key, g);
        std::set<std::tuple<unsigned, unsigned, unsigned, unsigned>>
            seen;
        for (std::uint64_t line = 0; line < lines; ++line) {
            const Addr addr = line * kLineBytes;
            const dstrange::dram::DramCoord c = mapping->decode(addr);
            seen.emplace(c.channel, c.bank, c.row, c.col);
            ASSERT_EQ(mapping->encode(c), addr) << key;
        }
        EXPECT_EQ(seen.size(), lines) << key << ": decode collides";
    }
}

TEST(MappingProperty, PermuteBankRejectsNonPowerOfTwoBanks)
{
    dstrange::dram::DramGeometry g;
    g.banksPerRank = 3;
    EXPECT_THROW(dstrange::dram::MappingRegistry::instance().make(
                     "permute-bank", g),
                 std::invalid_argument);
}

TEST(MappingProperty, RankInterleavedMappingSpreadsLinesAcrossRanks)
{
    dstrange::dram::DramGeometry g;
    g.ranksPerChannel = 2;
    const auto mapping = dstrange::dram::MappingRegistry::instance()
                             .make("row-bank-col-rank-ch", g);
    // The rank digit sits directly above the channel digit, so lines
    // one channel-stride apart land on alternating ranks.
    const Addr stride = static_cast<Addr>(g.channels) * kLineBytes;
    EXPECT_EQ(mapping->decode(0).rank, 0u);
    EXPECT_EQ(mapping->decode(stride).rank, 1u);
    EXPECT_EQ(mapping->decode(2 * stride).rank, 0u);
    // The default mapping keeps them on one rank instead.
    const auto deflt = dstrange::dram::MappingRegistry::instance().make(
        dstrange::dram::MappingRegistry::kDefault, g);
    EXPECT_EQ(deflt->decode(0).rank, 0u);
    EXPECT_EQ(deflt->decode(stride).rank, 0u);
}
