/**
 * @file
 * Tests for the trace-driven core model: retire width, window capacity,
 * memory/RNG stall behaviour, and statistics freezing at the budget.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.h"
#include "mem/memory_controller.h"
#include "trng/trng_mechanism.h"

using namespace dstrange;
using namespace dstrange::cpu;

namespace {

/** Scripted trace for direct control over the op stream. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<TraceOp> ops, TraceOp filler)
        : script(std::move(ops)), filler(filler)
    {
    }

    TraceOp
    next() override
    {
        if (pos < script.size())
            return script[pos++];
        return filler;
    }

    const std::string &name() const override { return traceName; }

  private:
    std::vector<TraceOp> script;
    TraceOp filler;
    std::size_t pos = 0;
    std::string traceName = "scripted";
};

TraceOp
op(std::uint64_t gap, mem::ReqType type, Addr addr)
{
    return TraceOp{gap, type, addr};
}

class CoreTest : public ::testing::Test
{
  protected:
    void
    build(std::vector<TraceOp> ops, TraceOp filler,
          std::uint64_t budget = 10000)
    {
        mc = std::make_unique<mem::MemoryController>(
            mem::McConfig{}, timings, geom,
            trng::TrngMechanism::dRange(), 1);
        trace = std::make_unique<ScriptedTrace>(std::move(ops), filler);
        Core::Config cfg;
        cfg.instrBudget = budget;
        core = std::make_unique<Core>(0, cfg, *trace, *mc);
        mc->setCompletionCallback(
            [this](CoreId, std::uint64_t token, mem::ReqType,
                   mem::ServePath) { core->onCompletion(token); });
    }

    void
    run(Cycle bus_cycles)
    {
        for (Cycle c = 0; c < bus_cycles && !core->finished(); ++c) {
            mc->tick(now);
            core->tickBusCycle(now);
            ++now;
        }
    }

    dram::DramTimings timings;
    dram::DramGeometry geom;
    std::unique_ptr<mem::MemoryController> mc;
    std::unique_ptr<ScriptedTrace> trace;
    std::unique_ptr<Core> core;
    Cycle now = 0;
};

} // namespace

TEST_F(CoreTest, ComputeOnlyRetiresAtIssueWidth)
{
    // Pure compute: budget/width CPU cycles, with no memory stall.
    build({}, op(1'000'000, mem::ReqType::Read, 0), /*budget=*/9000);
    run(5000);
    ASSERT_TRUE(core->finished());
    const CoreStats &s = core->stats();
    // 9000 instructions at 3-wide: ~3000 CPU cycles (+pipeline slack).
    EXPECT_NEAR(static_cast<double>(s.finishCycle), 3000.0, 10.0);
    EXPECT_EQ(s.memStallCycles, 0u);
    EXPECT_NEAR(s.ipc(), 3.0, 0.05);
}

TEST_F(CoreTest, SingleReadBlocksRetirementUntilCompletion)
{
    // One read followed by compute; the read stalls the window head.
    build({op(0, mem::ReqType::Read, 0x1000)},
          op(1'000'000, mem::ReqType::Read, 0), 3000);
    run(5000);
    ASSERT_TRUE(core->finished());
    EXPECT_GT(core->stats().memStallCycles, 0u);
    EXPECT_EQ(core->stats().reads, 1u);
    EXPECT_EQ(core->stats().rngStallCycles, 0u);
}

TEST_F(CoreTest, RngRequestBlocksIssueAndCountsRngStall)
{
    build({op(0, mem::ReqType::Rng, 0)},
          op(1'000'000, mem::ReqType::Read, 0), 3000);
    run(5000);
    ASSERT_TRUE(core->finished());
    EXPECT_EQ(core->stats().rngRequests, 1u);
    EXPECT_GT(core->stats().rngStallCycles, 0u);
    EXPECT_GE(core->stats().memStallCycles,
              core->stats().rngStallCycles);
}

TEST_F(CoreTest, WritesDoNotBlockRetirement)
{
    std::vector<TraceOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back(op(10, mem::ReqType::Write, 0x2000 + i * 64));
    build(std::move(ops), op(1'000'000, mem::ReqType::Read, 0), 2000);
    run(5000);
    ASSERT_TRUE(core->finished());
    EXPECT_EQ(core->stats().writes, 8u);
    EXPECT_EQ(core->stats().memStallCycles, 0u);
}

TEST_F(CoreTest, WindowLimitsOutstandingWork)
{
    // A long dependent chain of reads to distinct rows: the window (128)
    // plus queue capacity bounds the outstanding reads at any time.
    std::vector<TraceOp> ops;
    for (int i = 0; i < 600; ++i)
        ops.push_back(op(0, mem::ReqType::Read,
                         static_cast<Addr>(i) * 64 * 4 * 128));
    build(std::move(ops), op(1'000'000, mem::ReqType::Read, 0), 700);
    run(40000);
    ASSERT_TRUE(core->finished());
    EXPECT_EQ(core->stats().reads, 600u);
    EXPECT_GT(core->stats().memStallCycles, 100u);
}

TEST_F(CoreTest, StatisticsFreezeAtBudget)
{
    build({}, op(100, mem::ReqType::Read, 0), 3000);
    run(20000); // run() stops at finished(), so step manually beyond
    ASSERT_TRUE(core->finished());
    const std::uint64_t instr_at_finish = core->stats().instrRetired;
    const CpuCycle finish = core->stats().finishCycle;
    for (Cycle c = 0; c < 1000; ++c) {
        mc->tick(now);
        core->tickBusCycle(now);
        ++now;
    }
    EXPECT_EQ(core->stats().instrRetired, instr_at_finish);
    EXPECT_EQ(core->stats().finishCycle, finish);
}

TEST_F(CoreTest, McpiIsStallPerInstruction)
{
    build({op(0, mem::ReqType::Read, 0x1000)},
          op(1'000'000, mem::ReqType::Read, 0), 3000);
    run(5000);
    const CoreStats &s = core->stats();
    EXPECT_DOUBLE_EQ(s.mcpi(),
                     static_cast<double>(s.memStallCycles) /
                         static_cast<double>(s.instrRetired));
}
