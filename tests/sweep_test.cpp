/**
 * @file
 * Tests for the parallel sweep engine: the thread-safe alone-run cache
 * (concurrent same-key and distinct-key access), SweepRunner's
 * deterministic grid ordering and error capture, serial-vs-parallel
 * bit-identity of every metric, DS_JOBS handling, and the builder's
 * buildSweepCell() convenience. Runs under the ASan/UBSan CI job like
 * every other suite.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "drstrange.h"

using namespace dstrange;

namespace {

/** Small budget so each simulated cell finishes in milliseconds. */
sim::SimConfig
tinyConfig()
{
    sim::SimConfig cfg;
    cfg.instrBudget = 3000;
    return cfg;
}

workloads::WorkloadSpec
dualSpec(const std::string &app, double mbps = 5120.0)
{
    workloads::WorkloadSpec spec;
    spec.name = app + "+rng";
    spec.apps = {app};
    spec.rngThroughputMbps = mbps;
    return spec;
}

/** The full metric tuple of a run, for exact (==) comparisons. */
std::vector<double>
metricTuple(const sim::Runner::WorkloadResult &res)
{
    std::vector<double> out = {
        res.unfairnessIndex,    res.weightedSpeedupNonRng,
        res.bufferServeRate,    res.predictorAccuracy,
        res.energyNj,           static_cast<double>(res.busCycles),
    };
    for (const auto &core : res.cores) {
        out.push_back(core.slowdown);
        out.push_back(core.memSlowdown);
        out.push_back(core.ipcShared);
        out.push_back(core.ipcAlone);
        out.push_back(core.rngStallFraction);
    }
    return out;
}

} // namespace

TEST(AloneCache, ConcurrentSameKeyComputesOnce)
{
    sim::Runner runner(tinyConfig());
    constexpr int kThreads = 8;
    std::vector<const sim::AloneResult *> seen(kThreads, nullptr);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back(
            [&runner, &seen, t] { seen[t] = &runner.alone("mcf"); });
    }
    for (auto &t : pool)
        t.join();
    // One entry: every thread got the same stable address, and the
    // value matches an independent serial computation.
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[0], seen[t]);
    sim::Runner serial(tinyConfig());
    const sim::AloneResult &ref = serial.alone("mcf");
    EXPECT_EQ(seen[0]->execCpuCycles, ref.execCpuCycles);
    EXPECT_EQ(seen[0]->ipc, ref.ipc);
    EXPECT_EQ(seen[0]->mcpi, ref.mcpi);
}

TEST(AloneCache, ConcurrentDistinctKeys)
{
    const std::vector<std::string> apps = {"mcf",    "soplex",
                                           "lbm",    "milc",
                                           "gcc",    "namd"};
    sim::Runner runner(tinyConfig());
    std::vector<sim::AloneResult> parallel(apps.size());
    std::vector<sim::AloneResult> rng_parallel(2);
    std::vector<std::thread> pool;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        pool.emplace_back([&runner, &apps, &parallel, i] {
            parallel[i] = runner.alone(apps[i]);
        });
    }
    // aloneRng on the same and different throughputs, concurrently.
    pool.emplace_back([&runner, &rng_parallel] {
        rng_parallel[0] = runner.aloneRng(5120.0);
    });
    pool.emplace_back([&runner, &rng_parallel] {
        rng_parallel[1] = runner.aloneRng(10240.0);
    });
    for (auto &t : pool)
        t.join();

    sim::Runner serial(tinyConfig());
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const sim::AloneResult &ref = serial.alone(apps[i]);
        EXPECT_EQ(parallel[i].execCpuCycles, ref.execCpuCycles) << apps[i];
        EXPECT_EQ(parallel[i].ipc, ref.ipc) << apps[i];
        EXPECT_EQ(parallel[i].mcpi, ref.mcpi) << apps[i];
    }
    EXPECT_EQ(rng_parallel[0].execCpuCycles,
              serial.aloneRng(5120.0).execCpuCycles);
    EXPECT_EQ(rng_parallel[1].execCpuCycles,
              serial.aloneRng(10240.0).execCpuCycles);
}

TEST(SweepRunner, GridIsSpecMajorInDeterministicOrder)
{
    const std::vector<std::string> designs = {"oblivious", "drstrange"};
    const std::vector<workloads::WorkloadSpec> specs = {
        dualSpec("mcf"), dualSpec("soplex"), dualSpec("lbm")};
    const auto cells = sim::SweepRunner::grid(designs, specs);
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0].design, "oblivious");
    EXPECT_EQ(cells[0].spec.name, "mcf+rng");
    EXPECT_EQ(cells[1].design, "drstrange");
    EXPECT_EQ(cells[1].spec.name, "mcf+rng");
    EXPECT_EQ(cells[4].design, "oblivious");
    EXPECT_EQ(cells[4].spec.name, "lbm+rng");
    EXPECT_FALSE(cells[0].config.has_value());
}

TEST(SweepRunner, ParallelResultsBitIdenticalToSerialRunner)
{
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};
    const std::vector<workloads::WorkloadSpec> specs = {
        dualSpec("mcf"), dualSpec("soplex"), dualSpec("lbm"),
        dualSpec("milc")};
    const auto cells = sim::SweepRunner::grid(designs, specs);

    sim::SweepRunner sweep(tinyConfig(), /*jobs=*/4);
    ASSERT_EQ(sweep.jobs(), 4u);
    const auto results = sweep.run(cells);
    ASSERT_EQ(results.size(), cells.size());

    sim::Runner serial(tinyConfig());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        const auto ref = serial.run(cells[i].design, cells[i].spec);
        EXPECT_EQ(metricTuple(results[i].result), metricTuple(ref))
            << "cell " << i << " (" << cells[i].design << "/"
            << cells[i].spec.name << ")";
        EXPECT_GE(results[i].wallMs, 0.0);
    }
}

TEST(SweepRunner, RepeatedParallelRunsAreDeterministic)
{
    const auto cells = sim::SweepRunner::grid(
        {"drstrange"}, {dualSpec("mcf"), dualSpec("soplex")});
    sim::SweepRunner a(tinyConfig(), 2), b(tinyConfig(), 2);
    const auto ra = a.run(cells);
    const auto rb = b.run(cells);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(metricTuple(ra[i].result), metricTuple(rb[i].result));
}

TEST(SweepRunner, FailedCellCarriesErrorAndOthersStillRun)
{
    std::vector<sim::SweepRunner::Cell> cells =
        sim::SweepRunner::grid({"drstrange", "no-such-design"},
                               {dualSpec("mcf")});
    sim::SweepRunner sweep(tinyConfig(), 2);
    const auto results = sweep.run(cells);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].outcome, "ok");
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("unknown design"), std::string::npos)
        << results[1].error;
    // A deterministic throw fails its one bounded retry too.
    EXPECT_EQ(results[1].outcome, "error");
}

TEST(SweepRunner, ExplicitConfigCellOverridesBase)
{
    sim::SimulationBuilder b{tinyConfig()};
    b.bufferEntries(4).seed(7);
    sim::SweepRunner::Cell cell = b.buildSweepCell(dualSpec("mcf"));
    ASSERT_TRUE(cell.config.has_value());
    EXPECT_EQ(cell.config->bufferEntries, 4u);
    EXPECT_EQ(cell.config->seed, 7u);

    // The sweep's own base config (different seed) must not leak into
    // the explicit-config cell.
    sim::SweepRunner sweep(tinyConfig(), 1);
    const auto results = sweep.run({cell});
    ASSERT_TRUE(results[0].ok) << results[0].error;
    sim::Runner serial(b.config());
    const auto ref = serial.run(b.config(), cell.spec);
    EXPECT_EQ(metricTuple(results[0].result), metricTuple(ref));
}

TEST(SweepRunner, DefaultJobsHonorsDsJobsEnv)
{
#ifndef _WIN32
    setenv("DS_JOBS", "3", /*overwrite=*/1);
    EXPECT_EQ(sim::SweepRunner::defaultJobs(), 3u);
    // Unparseable and zero overrides fall back to >= 1 workers.
    setenv("DS_JOBS", "banana", 1);
    EXPECT_GE(sim::SweepRunner::defaultJobs(), 1u);
    setenv("DS_JOBS", "0", 1);
    EXPECT_GE(sim::SweepRunner::defaultJobs(), 1u);
    unsetenv("DS_JOBS");
#endif
    EXPECT_GE(sim::SweepRunner::defaultJobs(), 1u);
}

TEST(SweepRunner, MoreJobsThanCellsIsFine)
{
    sim::SweepRunner sweep(tinyConfig(), 16);
    const auto results =
        sweep.run(sim::SweepRunner::grid({"drstrange"}, {dualSpec("mcf")}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
}
