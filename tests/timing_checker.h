/**
 * @file
 * Independent JEDEC timing verifier for tests: subscribes to a
 * DramChannel's command stream and re-checks every constraint with its
 * own bookkeeping (no shared state with the channel model). Any
 * violation is recorded with a human-readable description.
 */

#ifndef DSTRANGE_TESTS_TIMING_CHECKER_H
#define DSTRANGE_TESTS_TIMING_CHECKER_H

#include <deque>
#include <string>
#include <vector>

#include "dram/dram_channel.h"
#include "dram/dram_timings.h"

namespace dstrange::testutil {

/** Shadow JEDEC-constraint validator. Banks are the flat rank-major
 *  slots of one channel; @p banks_per_rank scopes tRRD/tFAW/REF to the
 *  owning rank (defaulting to all banks, i.e. a single rank). */
class TimingChecker
{
  public:
    TimingChecker(const dram::DramTimings &timings, unsigned banks,
                  unsigned banks_per_rank = 0)
        : t(timings), bankState(banks),
          banksEach(banks_per_rank == 0 ? banks : banks_per_rank),
          rankActTimes((banks + banksEach - 1) / banksEach)
    {
    }

    /** Attach to a channel (replaces any existing observer). */
    void
    attach(mem::MemoryBackend &channel)
    {
        channel.setCommandObserver(
            [this](dram::DramCmd cmd, unsigned bank, Cycle now,
                   std::int64_t row) { onCommand(cmd, bank, now, row); });
    }

    const std::vector<std::string> &violations() const { return errors; }
    std::uint64_t commandsChecked() const { return nCommands; }

  private:
    struct BankShadow
    {
        bool open = false;
        std::int64_t row = -1;
        Cycle lastAct = 0;
        Cycle lastPre = 0;
        Cycle lastRd = 0;
        Cycle lastWr = 0;
        bool hasAct = false, hasPre = false, hasRd = false, hasWr = false;
        Cycle blockedUntil = 0; ///< After REF.
    };

    void
    fail(const std::string &what, Cycle now)
    {
        errors.push_back(what + " @cycle " + std::to_string(now));
    }

    void
    onCommand(dram::DramCmd cmd, unsigned bank, Cycle now,
              std::int64_t row)
    {
        nCommands++;

        // Command bus: one command per cycle.
        if (haveLastCmd && now == lastCmdAt)
            fail("two commands in one cycle", now);
        if (haveLastCmd && now < lastCmdAt)
            fail("time went backwards", now);
        lastCmdAt = now;
        haveLastCmd = true;

        BankShadow &b = bankState[bank];
        const unsigned rank = bank / banksEach;
        switch (cmd) {
          case dram::DramCmd::Act: {
            if (b.open)
                fail("ACT to open bank", now);
            if (b.hasAct && now < b.lastAct + t.tRC)
                fail("tRC violation", now);
            if (b.hasPre && now < b.lastPre + t.tRP)
                fail("tRP violation", now);
            if (now < b.blockedUntil)
                fail("ACT during tRFC", now);
            // Rank level: tRRD and tFAW.
            std::deque<Cycle> &actTimes = rankActTimes[rank];
            if (!actTimes.empty() && now < actTimes.back() + t.tRRD)
                fail("tRRD violation", now);
            if (actTimes.size() >= 4 &&
                now < actTimes[actTimes.size() - 4] + t.tFAW) {
                fail("tFAW violation", now);
            }
            actTimes.push_back(now);
            if (actTimes.size() > 8)
                actTimes.pop_front();
            b.open = true;
            b.row = row;
            b.lastAct = now;
            b.hasAct = true;
            break;
          }
          case dram::DramCmd::Rd:
          case dram::DramCmd::Wr: {
            if (!b.open)
                fail("column command to closed bank", now);
            if (b.hasAct && now < b.lastAct + t.tRCD)
                fail("tRCD violation", now);
            if (haveLastCol && now < lastColAt + t.tCCD &&
                lastColBank == bank) {
                fail("tCCD violation", now);
            }
            if (cmd == dram::DramCmd::Rd) {
                if (haveLastWr && now < lastWrAnyAt + t.writeToRead())
                    fail("write-to-read turnaround violation", now);
                b.lastRd = now;
                b.hasRd = true;
            } else {
                if (haveLastRd && now < lastRdAnyAt + t.readToWrite())
                    fail("read-to-write turnaround violation", now);
                b.lastWr = now;
                b.hasWr = true;
            }
            // Data bus: a burst switching ranks needs tRTRS of gap
            // after the previous burst drains.
            const Cycle burstStart =
                now + (cmd == dram::DramCmd::Rd ? t.tCL : t.tCWL);
            if (haveBurst && rank != lastBurstRank &&
                burstStart < lastBurstEnd + t.tRTRS) {
                fail("tRTRS violation", now);
            }
            lastBurstEnd = burstStart + t.tBL;
            lastBurstRank = rank;
            haveBurst = true;
            if (cmd == dram::DramCmd::Rd) {
                lastRdAnyAt = now;
                haveLastRd = true;
            } else {
                lastWrAnyAt = now;
                haveLastWr = true;
            }
            lastColAt = now;
            lastColBank = bank;
            haveLastCol = true;
            break;
          }
          case dram::DramCmd::Pre: {
            if (!b.open)
                fail("PRE to closed bank", now);
            if (b.hasAct && now < b.lastAct + t.tRAS)
                fail("tRAS violation", now);
            if (b.hasRd && now < b.lastRd + t.tRTP)
                fail("tRTP violation", now);
            if (b.hasWr && now < b.lastWr + t.tCWL + t.tBL + t.tWR)
                fail("tWR violation", now);
            b.open = false;
            b.lastPre = now;
            b.hasPre = true;
            break;
          }
          case dram::DramCmd::Ref: {
            // Per-rank refresh: only the reported rank's banks must be
            // closed and blocked for tRFC.
            for (unsigned i = rank * banksEach;
                 i < (rank + 1) * banksEach && i < bankState.size();
                 ++i) {
                BankShadow &bs = bankState[i];
                if (bs.open)
                    fail("REF with open bank", now);
                bs.blockedUntil = now + t.tRFC;
            }
            break;
          }
        }
    }

    const dram::DramTimings &t;
    std::vector<BankShadow> bankState;
    unsigned banksEach;
    std::vector<std::deque<Cycle>> rankActTimes;
    Cycle lastCmdAt = 0;
    Cycle lastBurstEnd = 0;
    unsigned lastBurstRank = 0;
    bool haveBurst = false;
    bool haveLastCmd = false;
    Cycle lastColAt = 0;
    unsigned lastColBank = 0;
    bool haveLastCol = false;
    Cycle lastRdAnyAt = 0, lastWrAnyAt = 0;
    bool haveLastRd = false, haveLastWr = false;

    std::vector<std::string> errors;
    std::uint64_t nCommands = 0;
};

} // namespace dstrange::testutil

#endif // DSTRANGE_TESTS_TIMING_CHECKER_H
