/**
 * @file
 * Tests for the binary request-trace subsystem: record→load round
 * trips (including randomized record streams and every port/priority
 * shape), hard-error handling for truncated, torn, and corrupted
 * files, crash-safety of the tmp+rename write path, and full-system
 * replay bit-identity against live runs across design presets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "sim/lockstep.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "trace/trace_reader.h"
#include "trace/trace_writer.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

using namespace dstrange;

namespace fs = std::filesystem;

namespace {

/** Self-cleaning unique temporary directory (gtest's TempDir root). */
class TempDir
{
  public:
    TempDir()
    {
        // gtest_discover_tests runs every case as its own process of
        // this binary, so a per-process counter alone collides across
        // parallel ctest jobs — qualify the name with the PID.
        static int counter = 0;
#ifdef _WIN32
        const int pid = _getpid();
#else
        const int pid = ::getpid();
#endif
        path = fs::path(::testing::TempDir()) /
               ("drstrange-trace-" + std::to_string(pid) + "-" +
                std::to_string(++counter));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
    std::string file(const std::string &leaf) const
    {
        return (path / leaf).string();
    }

  private:
    fs::path path;
};

trace::TraceHeader
dualPortHeader()
{
    trace::TraceHeader header;
    header.ports.resize(2);
    header.ports[0].priority = 3;
    header.ports[0].hasPriority = true;
    header.servicePort = -1;
    return header;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
}

} // namespace

// ---------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------

TEST(TraceFormat, EmptyTraceRoundTrips)
{
    TempDir dir;
    const std::string path = dir.file("empty.bin");
    trace::TraceWriter w(path, dualPortHeader());
    w.finalize(1234);

    const trace::TraceTape tape = trace::loadTrace(path);
    EXPECT_EQ(tape.numPorts(), 2u);
    EXPECT_TRUE(tape.records.empty());
    EXPECT_EQ(tape.endCycle, 1234u);
    EXPECT_EQ(tape.header.servicePort, -1);
    EXPECT_EQ(tape.header.ports[0].priority, 3);
    EXPECT_TRUE(tape.header.ports[0].hasPriority);
    EXPECT_FALSE(tape.header.ports[1].hasPriority);
}

TEST(TraceFormat, RandomStreamsRoundTripExactly)
{
    TempDir dir;
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 20; ++iter) {
        const unsigned n_ports = 1 + static_cast<unsigned>(rng() % 5);
        trace::TraceHeader header;
        header.ports.resize(n_ports);
        for (auto &p : header.ports) {
            p.hasPriority = rng() % 2 == 0;
            p.priority = p.hasPriority
                             ? static_cast<std::int32_t>(rng() % 17) - 8
                             : 0;
        }
        header.servicePort =
            rng() % 2 == 0 ? static_cast<std::int32_t>(n_ports) - 1 : -1;

        std::vector<trace::TraceRecord> recs(rng() % 200);
        Cycle cycle = 0;
        for (auto &rec : recs) {
            cycle += rng() % 5; // Monotonic, duplicates allowed.
            rec.cycle = cycle;
            rec.addr = rng();
            rec.type = static_cast<std::uint8_t>(rng() % 3);
            rec.port = static_cast<std::uint8_t>(rng() % n_ports);
            rec.priority = static_cast<std::int32_t>(rng() % 9) - 4;
        }

        const std::string path =
            dir.file("rt" + std::to_string(iter) + ".bin");
        trace::TraceWriter w(path, header);
        for (const auto &rec : recs)
            w.append(rec);
        w.finalize(cycle + 1);
        EXPECT_EQ(w.recordCount(), recs.size());

        const trace::TraceTape tape = trace::loadTrace(path);
        ASSERT_EQ(tape.records.size(), recs.size());
        EXPECT_EQ(tape.endCycle, cycle + 1);
        ASSERT_EQ(tape.numPorts(), n_ports);
        EXPECT_EQ(tape.header.servicePort, header.servicePort);
        for (unsigned p = 0; p < n_ports; ++p) {
            EXPECT_EQ(tape.header.ports[p].priority,
                      header.ports[p].priority);
            EXPECT_EQ(tape.header.ports[p].hasPriority,
                      header.ports[p].hasPriority);
        }
        for (std::size_t i = 0; i < recs.size(); ++i) {
            EXPECT_EQ(tape.records[i].cycle, recs[i].cycle);
            EXPECT_EQ(tape.records[i].addr, recs[i].addr);
            EXPECT_EQ(tape.records[i].type, recs[i].type);
            EXPECT_EQ(tape.records[i].port, recs[i].port);
            EXPECT_EQ(tape.records[i].priority, recs[i].priority);
        }
    }
}

// ---------------------------------------------------------------------
// Hard errors — a damaged tape must never load partially.
// ---------------------------------------------------------------------

namespace {

/** A small valid finalized trace to damage. */
std::string
makeValidTrace(const TempDir &dir, const std::string &leaf)
{
    const std::string path = dir.file(leaf);
    trace::TraceWriter w(path, dualPortHeader());
    for (Cycle c = 0; c < 10; ++c) {
        trace::TraceRecord rec;
        rec.cycle = c * 3;
        rec.addr = 0x1000 + c;
        rec.type = static_cast<std::uint8_t>(c % 3);
        rec.port = static_cast<std::uint8_t>(c % 2);
        rec.priority = 0;
        w.append(rec);
    }
    w.finalize(100);
    return path;
}

} // namespace

TEST(TraceFormat, MissingFileIsHardError)
{
    EXPECT_THROW(trace::loadTrace("/no/such/trace.bin"),
                 std::runtime_error);
}

TEST(TraceFormat, WrongMagicIsHardError)
{
    TempDir dir;
    const std::string path = makeValidTrace(dir, "t.bin");
    std::string data = readFile(path);
    data[0] = 'X';
    writeFile(path, data);
    EXPECT_THROW(trace::loadTrace(path), std::runtime_error);
}

TEST(TraceFormat, UnsupportedVersionIsHardError)
{
    TempDir dir;
    const std::string path = makeValidTrace(dir, "t.bin");
    std::string data = readFile(path);
    data[4] = 99;
    writeFile(path, data);
    try {
        trace::loadTrace(path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(TraceFormat, TruncationIsHardError)
{
    TempDir dir;
    const std::string path = makeValidTrace(dir, "t.bin");
    const std::string data = readFile(path);
    // Every possible truncation point must fail loudly, whether it
    // tears the header, a record, or the footer.
    for (std::size_t len : {std::size_t{3}, std::size_t{10},
                            data.size() / 2, data.size() - 1}) {
        writeFile(path, data.substr(0, len));
        EXPECT_THROW(trace::loadTrace(path), std::runtime_error)
            << "truncated to " << len << " bytes";
    }
}

TEST(TraceFormat, MissingFooterIsHardError)
{
    TempDir dir;
    const std::string path = dir.file("unfinalized.bin");
    {
        trace::TraceWriter w(path, dualPortHeader());
        trace::TraceRecord rec;
        rec.cycle = 1;
        rec.addr = 2;
        rec.type = 0;
        rec.port = 0;
        rec.priority = 0;
        w.append(rec);
        // No finalize(): the destructor removes the tmp file, so the
        // target path never appears — crash-safety by construction.
    }
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(TraceFormat, CorruptRecordByteFailsTheFingerprint)
{
    TempDir dir;
    const std::string path = makeValidTrace(dir, "t.bin");
    std::string data = readFile(path);
    // Flip one bit inside the record region (past the 2-port header).
    const std::size_t header_size =
        trace::kHeaderFixedBytes + 2 * trace::kPortEntryBytes;
    data[header_size + 5] ^= 0x40;
    writeFile(path, data);
    try {
        trace::loadTrace(path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("fingerprint"),
                  std::string::npos);
    }
}

TEST(TraceFormat, RecordCountMismatchIsHardError)
{
    TempDir dir;
    const std::string path = makeValidTrace(dir, "t.bin");
    std::string data = readFile(path);
    // Remove exactly one record, keeping the footer: the byte layout
    // stays record-aligned, so the count check must catch it.
    const std::size_t foot = data.size() - trace::kFooterBytes;
    const std::string damaged =
        data.substr(0, foot - trace::kRecordBytes) + data.substr(foot);
    writeFile(path, damaged);
    try {
        trace::loadTrace(path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("count"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Full-system record → replay bit-identity.
// ---------------------------------------------------------------------

namespace {

std::vector<std::unique_ptr<cpu::TraceSource>>
dualCoreTraces(const sim::SimConfig &cfg)
{
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName("soplex"), cfg.geometry, 0, cfg.seed));
    traces.push_back(std::make_unique<workloads::RngBenchmark>(
        2560.0, cfg.geometry, cfg.seed + 1));
    return traces;
}

/** The controller-side slice of the lockstep fingerprint: everything
 *  from the "mc." line on, minus "svc." lines (neither cores nor the
 *  service front-end exist in a replay run — only their request
 *  streams do). */
std::string
mcFingerprint(const sim::System &sys)
{
    const std::string full = sim::systemFingerprint(sys);
    const std::size_t pos = full.find("mc.");
    std::istringstream in(pos == std::string::npos ? full
                                                   : full.substr(pos));
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line))
        if (line.rfind("svc.", 0) != 0)
            out << line << '\n';
    return out.str();
}

} // namespace

TEST(TraceReplay, ReplayIsBitIdenticalAcrossPresets)
{
    TempDir dir;
    for (const sim::SystemDesign design :
         {sim::SystemDesign::RngOblivious, sim::SystemDesign::DrStrange}) {
        sim::SimConfig cfg;
        sim::applyDesign(cfg, design);
        cfg.instrBudget = 5000;
        const std::string path =
            dir.file(std::string(sim::designKey(design)) + ".bin");

        cfg.traceRecord = path;
        sim::System live(cfg, dualCoreTraces(cfg));
        live.run();
        ASSERT_TRUE(fs::exists(path));

        cfg.traceRecord.clear();
        cfg.traceReplay = path;
        sim::System replay(cfg, {});
        replay.run();

        EXPECT_EQ(replay.busCycles(), live.busCycles())
            << sim::designKey(design);
        EXPECT_EQ(mcFingerprint(replay), mcFingerprint(live))
            << sim::designKey(design);
        ASSERT_NE(replay.replaySource(), nullptr);
        EXPECT_TRUE(replay.replaySource()->finished());
    }
}

TEST(TraceReplay, ServicePortRecordsReplayBitIdentically)
{
    TempDir dir;
    sim::SimConfig cfg;
    sim::applyDesign(cfg, sim::SystemDesign::DrStrange);
    cfg.instrBudget = 5000;
    cfg.service.enabled = true;
    cfg.service.offeredMbps = 1280.0;
    cfg.service.durationCycles = 20000;
    const std::string path = dir.file("svc.bin");

    cfg.traceRecord = path;
    sim::System live(cfg, dualCoreTraces(cfg));
    live.run();

    const trace::TraceTape tape = trace::loadTrace(path);
    EXPECT_EQ(tape.numPorts(), 3u);
    EXPECT_EQ(tape.header.servicePort, 2);

    cfg.traceRecord.clear();
    cfg.traceReplay = path;
    sim::System replay(cfg, {});
    replay.run();
    EXPECT_EQ(replay.busCycles(), live.busCycles());
    EXPECT_EQ(mcFingerprint(replay), mcFingerprint(live));
}

TEST(TraceReplay, ReplayPreservesRecordedPriorities)
{
    TempDir dir;
    sim::SimConfig cfg;
    sim::applyDesign(cfg, sim::SystemDesign::DrStrange);
    cfg.instrBudget = 5000;
    cfg.priorities = {4, 1};
    const std::string path = dir.file("prio.bin");

    cfg.traceRecord = path;
    sim::System live(cfg, dualCoreTraces(cfg));
    live.run();

    const trace::TraceTape tape = trace::loadTrace(path);
    ASSERT_EQ(tape.numPorts(), 2u);
    EXPECT_TRUE(tape.header.ports[0].hasPriority);
    EXPECT_EQ(tape.header.ports[0].priority, 4);
    EXPECT_EQ(tape.header.ports[1].priority, 1);

    cfg.traceRecord.clear();
    cfg.traceReplay = path;
    cfg.priorities.clear(); // Replay takes priorities from the tape.
    sim::System replay(cfg, {});
    replay.run();
    EXPECT_EQ(mcFingerprint(replay), mcFingerprint(live));
}

TEST(TraceReplay, RerecordingAReplayReproducesTheTapeByteForByte)
{
    TempDir dir;
    sim::SimConfig cfg;
    sim::applyDesign(cfg, sim::SystemDesign::DrStrange);
    cfg.instrBudget = 5000;
    const std::string first = dir.file("first.bin");
    const std::string second = dir.file("second.bin");

    cfg.traceRecord = first;
    sim::System live(cfg, dualCoreTraces(cfg));
    live.run();

    cfg.traceRecord = second;
    cfg.traceReplay = first;
    sim::System replay(cfg, {});
    replay.run();
    EXPECT_EQ(readFile(first), readFile(second));
}

TEST(TraceReplay, RunnerReplayPathSkipsBaselines)
{
    TempDir dir;
    sim::SimConfig cfg;
    sim::applyDesign(cfg, sim::SystemDesign::DrStrange);
    cfg.instrBudget = 5000;
    const std::string path = dir.file("runner.bin");

    workloads::WorkloadSpec spec;
    spec.name = "soplex+rng";
    spec.apps = {"soplex"};
    spec.rngThroughputMbps = 2560.0;

    cfg.traceRecord = path;
    sim::Runner live_runner(cfg, nullptr);
    const auto live = live_runner.run(cfg, spec);

    cfg.traceRecord.clear();
    cfg.traceReplay = path;
    sim::Runner replay_runner(cfg, nullptr);
    const auto replayed = replay_runner.run(cfg, spec);

    EXPECT_TRUE(replayed.cores.empty());
    EXPECT_EQ(replayed.busCycles, live.busCycles);
    EXPECT_EQ(replayed.energyNj, live.energyNj);
    EXPECT_EQ(replayed.bufferServeRate, live.bufferServeRate);
}
