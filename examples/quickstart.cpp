/**
 * @file
 * Quickstart: simulate one RNG application (5 Gb/s requirement) running
 * next to one memory-intensive application under the three system
 * designs, and print the paper's headline metrics for the mix.
 */

#include <iostream>

#include "common/env_util.h"
#include "drstrange.h"

using namespace dstrange;

int
main()
{
    sim::SimConfig base;
    base.instrBudget = envU64("DS_INSTR_BUDGET", 200000);
    sim::Runner runner(base);

    workloads::WorkloadSpec spec;
    spec.name = "mcf+rng5120";
    spec.apps = {"mcf"};
    spec.rngThroughputMbps = 5120.0;

    TablePrinter table;
    table.setHeader({"design", "non-RNG slowdown", "RNG slowdown",
                     "unfairness", "buffer serve rate", "bus cycles"});

    for (sim::SystemDesign design : {sim::SystemDesign::RngOblivious,
                                     sim::SystemDesign::GreedyIdle,
                                     sim::SystemDesign::DrStrange}) {
        const auto res = runner.run(design, spec);
        table.addRow({sim::designName(design),
                      TablePrinter::num(res.avgNonRngSlowdown()),
                      TablePrinter::num(res.rngSlowdown()),
                      TablePrinter::num(res.unfairnessIndex),
                      TablePrinter::num(res.bufferServeRate),
                      std::to_string(res.busCycles)});
    }

    std::cout << "Workload: " << spec.name << " (one memory-intensive app"
              << " + one 5 Gb/s RNG app, dual-core)\n\n";
    table.print(std::cout);

    std::cout << "\nExpected shape (paper, Fig. 6/9): DR-STRaNGe improves"
                 " both applications\nand fairness over the RNG-oblivious"
                 " baseline; the greedy oracle sits in between.\n";
    return 0;
}
