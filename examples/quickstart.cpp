/**
 * @file
 * Quickstart: simulate one RNG application (5 Gb/s requirement) running
 * next to one memory-intensive application under the three headline
 * system designs, and print the paper's headline metrics for the mix.
 *
 * This is the canonical SimulationBuilder snippet: configure once with
 * the fluent API, then sweep design presets through the Runner.
 */

#include <iostream>

#include "common/env_util.h"
#include "drstrange.h"

using namespace dstrange;

int
main()
{
    // One builder configures the whole experiment; buildRunner() hands
    // back a Runner whose alone-run baselines are cached across sweeps.
    sim::Runner runner = sim::SimulationBuilder()
                             .instrBudget(envU64("DS_INSTR_BUDGET", 200000))
                             .seed(1)
                             .buildRunner();

    workloads::WorkloadSpec spec;
    spec.name = "mcf+rng5120";
    spec.apps = {"mcf"};
    spec.rngThroughputMbps = 5120.0;

    TablePrinter table;
    table.setHeader({"design", "non-RNG slowdown", "RNG slowdown",
                     "unfairness", "buffer serve rate", "bus cycles"});

    // Design presets are registry keys; user-registered designs sweep
    // the same way (see examples/scheduler_explorer.cpp).
    for (const std::string design : {"oblivious", "greedy", "drstrange"}) {
        const auto res = runner.run(design, spec);
        table.addRow({sim::DesignRegistry::instance().displayName(design),
                      TablePrinter::num(res.avgNonRngSlowdown()),
                      TablePrinter::num(res.rngSlowdown()),
                      TablePrinter::num(res.unfairnessIndex),
                      TablePrinter::num(res.bufferServeRate),
                      std::to_string(res.busCycles)});
    }

    std::cout << "Workload: " << spec.name << " (one memory-intensive app"
              << " + one 5 Gb/s RNG app, dual-core)\n\n";
    table.print(std::cout);

    std::cout << "\nExpected shape (paper, Fig. 6/9): DR-STRaNGe improves"
                 " both applications\nand fairness over the RNG-oblivious"
                 " baseline; the greedy oracle sits in between.\n";
    return 0;
}
