/**
 * @file
 * Full command-line simulator front-end: configure a workload mix,
 * system design, TRNG mechanism and controller parameters through the
 * sim::SimulationBuilder API, run the simulation, and print
 * human-readable or JSON results.
 *
 * Usage:
 *   drstrange_sim [options]
 *     --design NAME       any sim::DesignRegistry key (oblivious|greedy|
 *                         drstrange|drstrange-rl|drstrange-nopred|
 *                         drstrange-nolowutil|rng-aware|frfcfs|bliss|
 *                         ...user-registered)
 *     --apps a,b,c        non-RNG applications (default soplex)
 *     --trace FILE        add a core driven by a trace file (repeatable)
 *     --rng-mbps N        RNG app required throughput (default 5120; 0=off)
 *     --mechanism NAME    drange|quac (default drange)
 *     --hybrid-fill NAME  distinct fill mechanism (hybrid design)
 *     --buffer N          buffer entries (default 16)
 *     --partitions N      buffer partitions (default 0 = shared)
 *     --powerdown N       power-down idle threshold cycles (default 0)
 *     --budget N          instructions per core (default 200000)
 *     --priorities a,b,.. per-core OS priorities
 *     --seed N            master seed (default 1)
 *     --set key=value     set any config-text knob (repeatable; see
 *                         sim/config_text.h for the grammar), e.g.
 *                         geometry.ranks=2, mapping=row-bank-col-rank-ch,
 *                         fill-placement=round-robin, timings.trtrs=2,
 *                         service.enabled=1, service.arrival=bursty,
 *                         service.offered-mbps=2560, service.slo=500
 *     --print-config      print the canonical config text and exit
 *     --json              machine-readable output
 *
 * Flags are applied in order, so `--design drstrange --set predictor=rl`
 * overrides the preset's predictor while `--set predictor=rl --design
 * drstrange` does not.
 */

#include <iostream>
#include <sstream>

#include "common/json_writer.h"
#include "dram/mapping_registry.h"
#include "drstrange.h"
#include "mem/backend_registry.h"
#include "mem/scheduler_registry.h"
#include "fault/fault_plane.h"
#include "fault/fault_registry.h"
#include "service/arrival_process.h"
#include "service/shed_policy.h"
#include "strange/predictor_registry.h"
#include "workloads/trace_file.h"

using namespace dstrange;

namespace {

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream iss(csv);
    std::string item;
    while (std::getline(iss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/**
 * Display name of the registered design whose policy knobs match
 * @p cfg ("custom" when overrides left no preset matching), so the
 * reported label stays correct however the knobs were reached
 * (--design, --set design=..., --set scheduler=...).
 */
std::string
designLabelFor(const sim::SimConfig &cfg)
{
    const auto &registry = sim::DesignRegistry::instance();
    for (const std::string &key : registry.keys()) {
        sim::SimConfig probe = cfg;
        registry.apply(key, probe);
        if (probe.scheduler == cfg.scheduler &&
            probe.rngAwareQueueing == cfg.rngAwareQueueing &&
            probe.buffering == cfg.buffering &&
            probe.fillPolicy == cfg.fillPolicy &&
            probe.predictor == cfg.predictor &&
            probe.lowUtilFill == cfg.lowUtilFill) {
            return registry.displayName(key);
        }
    }
    return "custom";
}

void
printKeys(const char *label, const std::vector<std::string> &keys)
{
    std::cout << label << ":";
    for (const std::string &k : keys)
        std::cout << " " << k;
    std::cout << "\n";
}

/** Enumerate every string-keyed extension point (--list). */
void
listRegistries()
{
    printKeys("designs", sim::DesignRegistry::instance().keys());
    printKeys("schedulers", mem::SchedulerRegistry::instance().keys());
    printKeys("predictors",
              strange::PredictorRegistry::instance().keys());
    printKeys("mappings", dram::MappingRegistry::instance().keys());
    printKeys("arrivals", service::ArrivalRegistry::instance().keys());
    printKeys("backends", mem::BackendRegistry::instance().keys());
    printKeys("fault-models", fault::FaultRegistry::instance().keys());
    printKeys("shed-policies", service::ShedRegistry::instance().keys());
}

} // namespace

int
main(int argc, char **argv)
{
    sim::SimulationBuilder builder;
    builder.design(sim::SystemDesign::DrStrange).instrBudget(200000);
    std::vector<std::string> apps;
    std::vector<std::string> trace_files;
    double rng_mbps = 5120.0;
    bool rng_given = false;
    bool json = false;
    bool print_config = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_arg = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires an argument\n";
                std::exit(1);
            }
            return argv[++i];
        };
        try {
            if (arg == "--design") {
                builder.design(next_arg("--design"));
            } else if (arg == "--apps") {
                apps = splitCsv(next_arg("--apps"));
            } else if (arg == "--trace") {
                trace_files.push_back(next_arg("--trace"));
            } else if (arg == "--rng-mbps") {
                rng_mbps = std::stod(next_arg("--rng-mbps"));
                rng_given = true;
            } else if (arg == "--mechanism") {
                builder.mechanism(next_arg("--mechanism"));
            } else if (arg == "--hybrid-fill") {
                builder.fillMechanism(next_arg("--hybrid-fill"));
            } else if (arg == "--buffer") {
                builder.bufferEntries(static_cast<unsigned>(
                    std::stoul(next_arg("--buffer"))));
            } else if (arg == "--partitions") {
                builder.bufferPartitions(static_cast<unsigned>(
                    std::stoul(next_arg("--partitions"))));
            } else if (arg == "--powerdown") {
                builder.powerDownThreshold(
                    std::stoull(next_arg("--powerdown")));
            } else if (arg == "--budget") {
                builder.instrBudget(std::stoull(next_arg("--budget")));
            } else if (arg == "--priorities") {
                std::vector<int> prios;
                for (const auto &p : splitCsv(next_arg("--priorities")))
                    prios.push_back(std::stoi(p));
                builder.priorities(std::move(prios));
            } else if (arg == "--seed") {
                builder.seed(std::stoull(next_arg("--seed")));
            } else if (arg == "--set") {
                builder.applyText(next_arg("--set"));
            } else if (arg == "--record-trace") {
                builder.recordTrace(next_arg("--record-trace"));
            } else if (arg == "--replay-trace") {
                builder.replayTrace(next_arg("--replay-trace"));
            } else if (arg == "--list") {
                listRegistries();
                return 0;
            } else if (arg == "--print-config") {
                print_config = true;
            } else if (arg == "--json") {
                json = true;
            } else if (arg == "--help" || arg == "-h") {
                std::cout
                    << "usage: drstrange_sim [options]\n"
                       "  --design NAME       any sim::DesignRegistry"
                       " key (oblivious|greedy|\n"
                       "                      drstrange|drstrange-rl|"
                       "drstrange-nopred|\n"
                       "                      drstrange-nolowutil|"
                       "rng-aware|frfcfs|bliss|...)\n"
                       "  --apps a,b,c        non-RNG applications"
                       " (default soplex)\n"
                       "  --trace FILE        add a core driven by a"
                       " trace file (repeatable)\n"
                       "  --rng-mbps N        RNG app required"
                       " throughput (default 5120; 0=off)\n"
                       "  --mechanism NAME    drange|quac (default"
                       " drange)\n"
                       "  --hybrid-fill NAME  distinct fill mechanism"
                       " (hybrid design)\n"
                       "  --buffer N          buffer entries (default"
                       " 16)\n"
                       "  --partitions N      buffer partitions"
                       " (default 0 = shared)\n"
                       "  --powerdown N       power-down idle threshold"
                       " cycles (default 0)\n"
                       "  --budget N          instructions per core"
                       " (default 200000)\n"
                       "  --priorities a,b    per-core OS priorities\n"
                       "  --seed N            master seed (default 1)\n"
                       "  --set key=value     set any config-text knob"
                       " (repeatable; see\n"
                       "                      docs/configuration.md for"
                       " the grammar), e.g.\n"
                       "                      geometry.ranks=2"
                       " mapping=row-bank-col-rank-ch\n"
                       "                      fill-placement=round-robin"
                       " timings.trtrs=2\n"
                       "                      service.enabled=1"
                       " service.arrival=bursty\n"
                       "                      service.offered-mbps=2560"
                       " service.clients=1024\n"
                       "                      service.burst=4"
                       " service.period=20000\n"
                       "                      service.slo=500"
                       " service.duration=100000\n"
                       "                      service.shed=shed-tail"
                       " fault.models=bitflip,weak-cell\n"
                       "                      fault.bitflip-rate=0.05"
                       " fault.monitor=1\n"
                       "  --record-trace FILE record every accepted"
                       " controller request to a\n"
                       "                      binary trace (replayable"
                       " with --replay-trace)\n"
                       "  --replay-trace FILE replay a recorded trace"
                       " instead of simulating\n"
                       "                      cores (controller metrics"
                       " reproduce exactly)\n"
                       "  --list              list every registry key"
                       " (designs, schedulers,\n"
                       "                      predictors, mappings,"
                       " arrivals, backends,\n"
                       "                      fault-models,"
                       " shed-policies)\n"
                       "  --print-config      print the canonical"
                       " config text and exit\n"
                       "  --json              machine-readable output\n";
                return 0;
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                return 1;
            }
        } catch (const std::exception &e) {
            std::cerr << arg << ": " << e.what() << "\n";
            return 1;
        }
    }
    if (print_config) {
        std::cout << builder.toText() << "\n";
        return 0;
    }
    // In replay mode the tape stands in for every request source: no
    // cores, no RNG benchmark, no service driver get built.
    const bool replay_mode = !builder.config().traceReplay.empty();
    if (replay_mode) {
        apps.clear();
        trace_files.clear();
        rng_mbps = 0.0;
    }
    // With the open-loop service enabled and no workload asked for
    // explicitly, run service-only: the service layer is the workload.
    const bool service_only = builder.config().service.enabled &&
                              apps.empty() && trace_files.empty() &&
                              !rng_given;
    if (service_only)
        rng_mbps = 0.0;
    else if (!replay_mode && apps.empty() && trace_files.empty())
        apps = {"soplex"};

    // Build the system directly so trace-file cores can join.
    const sim::SimConfig &cfg = builder.config();
    const std::string design_label = designLabelFor(cfg);
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    CoreId core = 0;
    for (const std::string &app : apps) {
        try {
            traces.push_back(std::make_unique<workloads::SyntheticTrace>(
                workloads::appByName(app), cfg.geometry, core++,
                cfg.seed));
        } catch (const std::out_of_range &) {
            std::cerr << "unknown application: " << app << "\n";
            return 1;
        }
    }
    for (const std::string &path : trace_files) {
        try {
            traces.push_back(
                std::make_unique<workloads::TraceFileSource>(path));
        } catch (const std::exception &e) {
            std::cerr << "trace load failed: " << e.what() << "\n";
            return 1;
        }
    }
    core = static_cast<CoreId>(traces.size());
    const bool has_rng = rng_mbps > 0.0;
    if (has_rng) {
        traces.push_back(std::make_unique<workloads::RngBenchmark>(
            rng_mbps, cfg.geometry, cfg.seed + core));
    }

    sim::System sys = builder.buildSystem(std::move(traces));
    sys.run();

    double energy_nj = 0.0;
    for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
        energy_nj += sim::channelEnergy(
                         cfg.timings, sys.mc().channel(ch).energyCounters())
                         .total();
    }
    const auto &mcs = sys.mc().stats();

    if (json) {
        JsonWriter w;
        w.beginObject();
        w.key("design").value(design_label);
        w.key("mechanism").value(cfg.mechanism.name);
        w.key("config").value(builder.toText());
        w.key("busCycles").value(sys.busCycles());
        w.key("energy_nJ").value(energy_nj);
        w.key("bufferServeRate").value(mcs.bufferServeRate());
        if (auto ps = sys.mc().predictorStats())
            w.key("predictorAccuracy").value(ps->accuracy());
        if (const trace::TraceReplaySource *rs = sys.replaySource())
            w.key("replayedRecords").value(rs->replayedCount());
        if (const service::OpenLoopService *svc = sys.service()) {
            w.key("service");
            service::SloReport::from(svc->config(), svc->stats())
                .writeJson(w);
        }
        if (const fault::FaultPlane *fp = sys.mc().faultInjection()) {
            w.key("fault");
            fp->report().writeJson(w);
        }
        w.key("cores").beginArray();
        for (unsigned i = 0; i < sys.numCores(); ++i) {
            const auto &s = sys.coreStats(i);
            w.beginObject();
            w.key("app").value(sys.traceName(i));
            w.key("instructions").value(s.instrRetired);
            w.key("cpuCycles").value(s.finishCycle);
            w.key("ipc").value(s.ipc());
            w.key("mcpi").value(s.mcpi());
            w.key("rngRequests").value(s.rngRequests);
            w.key("finished").value(s.finished);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::cout << w.str() << "\n";
        return 0;
    }

    std::cout << "design: " << design_label
              << "  mechanism: " << cfg.mechanism.name;
    if (cfg.fillMechanism)
        std::cout << " (fill: " << cfg.fillMechanism->name << ")";
    std::cout << "\nbus cycles: " << sys.busCycles()
              << "  energy: " << energy_nj / 1000.0 << " uJ"
              << "  buffer serve rate: " << mcs.bufferServeRate() << "\n";
    if (const trace::TraceReplaySource *rs = sys.replaySource())
        std::cout << "replayed records: " << rs->replayedCount() << "/"
                  << rs->tape().records.size() << "\n";
    std::cout << "\n";

    TablePrinter t;
    t.setHeader({"core", "app", "instr", "cpu cycles", "IPC", "MCPI",
                 "rng reqs"});
    for (unsigned i = 0; i < sys.numCores(); ++i) {
        const auto &s = sys.coreStats(i);
        t.addRow({std::to_string(i), sys.traceName(i),
                  std::to_string(s.instrRetired),
                  std::to_string(s.finishCycle),
                  TablePrinter::num(s.ipc()), TablePrinter::num(s.mcpi()),
                  std::to_string(s.rngRequests)});
    }
    t.print(std::cout);

    if (const fault::FaultPlane *fp = sys.mc().faultInjection()) {
        const fault::FaultReport rep = fp->report();
        std::cout << "\nfault injection (" << rep.models << ", monitor "
                  << (rep.monitor ? "on" : "off") << "):\n"
                  << "  rounds  passed: " << rep.roundsAudited
                  << "  discarded: " << rep.roundsDiscarded << " (stuck "
                  << rep.discardsStuck << ", weak " << rep.discardsWeak
                  << ", other " << rep.discardsOther << ")\n"
                  << "  silent corrupted bits: " << rep.corruptedBits
                  << "\n  cells  blacklisted: " << rep.blacklisted
                  << "  remapped: " << rep.remapped
                  << "  forced: " << rep.forcedBlacklists
                  << "  spares exhausted: " << rep.blacklistExhausted
                  << "\n";
    }

    if (const service::OpenLoopService *svc = sys.service()) {
        const service::SloReport rep =
            service::SloReport::from(svc->config(), svc->stats());
        std::cout << "\nservice (" << rep.arrival << ", "
                  << rep.offeredMbps << " Mb/s offered, "
                  << rep.shedPolicy << "):\n"
                  << "  completed: " << rep.completed << "/"
                  << rep.offered << "  shed: " << rep.shed << " ("
                  << TablePrinter::num(rep.pctShed) << "%)  goodput: "
                  << TablePrinter::num(rep.goodputRps) << " req/s\n"
                  << "  latency cycles  p50: " << rep.p50
                  << "  p99: " << rep.p99 << "  p999: " << rep.p999
                  << "  max: " << rep.maxLatency << "\n"
                  << "  over SLO (>" << rep.sloTargetCycles
                  << "): " << TablePrinter::num(rep.pctOverSlo)
                  << "%  saturated: " << (rep.saturated ? "yes" : "no")
                  << "\n";
    }
    return 0;
}
