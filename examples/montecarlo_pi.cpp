/**
 * @file
 * Monte Carlo example: estimate pi with true random numbers drawn from
 * the simulated DRAM TRNG through the getrandom()-style RandomDevice,
 * and compare the random-number acquisition cost on the RNG-oblivious
 * baseline vs DR-STRaNGe. Monte Carlo methods are one of the paper's
 * motivating application classes (Section 1).
 */

#include <cstdint>
#include <iostream>

#include "common/env_util.h"
#include "drstrange.h"

using namespace dstrange;

namespace {

/** Draw points in the unit square; count hits inside the quarter disc. */
double
estimatePi(api::RandomDevice &dev, unsigned samples, double &rng_time_ns)
{
    std::uint64_t inside = 0;
    rng_time_ns = 0.0;
    for (unsigned i = 0; i < samples; ++i) {
        const auto res = dev.getRandom(16); // two doubles worth of bits
        rng_time_ns += res.latencyNs;

        std::uint64_t xw = 0, yw = 0;
        for (int b = 0; b < 8; ++b) {
            xw |= static_cast<std::uint64_t>(res.bytes[b]) << (8 * b);
            yw |= static_cast<std::uint64_t>(res.bytes[8 + b]) << (8 * b);
        }
        const double x = static_cast<double>(xw >> 11) * 0x1.0p-53;
        const double y = static_cast<double>(yw >> 11) * 0x1.0p-53;
        if (x * x + y * y <= 1.0)
            ++inside;

        // The application computes between draws; the device is idle and
        // DR-STRaNGe refills its buffer.
        dev.idle(50.0);
    }
    return 4.0 * static_cast<double>(inside) / samples;
}

} // namespace

int
main()
{
    // Default matches the paper-scale demo; DS_MC_SAMPLES lets CI smoke
    // tests run a reduced draw count.
    const unsigned kSamples =
        static_cast<unsigned>(envU64("DS_MC_SAMPLES", 20000));

    TablePrinter t;
    t.setHeader({"design", "pi estimate", "total RNG wait (us)",
                 "avg ns/draw"});

    for (sim::SystemDesign design : {sim::SystemDesign::RngOblivious,
                                     sim::SystemDesign::DrStrange}) {
        api::RandomDevice::Config cfg;
        sim::applyDesign(cfg.sim, design);
        api::RandomDevice dev(cfg);
        double rng_ns = 0.0;
        const double pi = estimatePi(dev, kSamples, rng_ns);
        t.addRow({sim::designName(design), TablePrinter::num(pi, 4),
                  TablePrinter::num(rng_ns / 1000.0, 1),
                  TablePrinter::num(rng_ns / kSamples, 1)});
    }

    std::cout << "Monte Carlo pi with " << kSamples
              << " draws of 128 random bits each:\n\n";
    t.print(std::cout);
    std::cout << "\nDR-STRaNGe's random number buffer hides the TRNG "
                 "latency: draws are served\nfrom the buffer refilled "
                 "during the application's compute phases.\n";
    return 0;
}
