/**
 * @file
 * Scheduler explorer: run one workload mix of your choice across every
 * system design and print the full metric set — a small research
 * playground on top of the public API.
 *
 * Usage: scheduler_explorer [app ...] [rng_mbps]
 *   e.g. scheduler_explorer mcf ycsb2 5120
 * Defaults to "soplex 5120".
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "drstrange.h"

using namespace dstrange;

int
main(int argc, char **argv)
{
    workloads::WorkloadSpec spec;
    spec.rngThroughputMbps = 5120.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        char *end = nullptr;
        const double mbps = std::strtod(arg.c_str(), &end);
        if (end && *end == '\0') {
            spec.rngThroughputMbps = mbps;
        } else {
            try {
                workloads::appByName(arg);
            } catch (const std::out_of_range &) {
                std::cerr << "unknown application: " << arg << "\n"
                          << "known applications:";
                for (const auto &p : workloads::appTable())
                    std::cerr << " " << p.name;
                std::cerr << "\n";
                return 1;
            }
            spec.apps.push_back(arg);
        }
    }
    if (spec.apps.empty())
        spec.apps = {"soplex"};
    spec.name = "custom";

    sim::SimConfig cfg;
    cfg.instrBudget = 150000;
    sim::Runner runner(cfg);

    std::cout << "Workload:";
    for (const auto &a : spec.apps)
        std::cout << " " << a;
    if (spec.rngThroughputMbps > 0)
        std::cout << " + RNG app @" << spec.rngThroughputMbps << " Mb/s";
    std::cout << "\n\n";

    TablePrinter t;
    t.setHeader({"design", "non-RNG sd", "RNG sd", "unfairness",
                 "serve rate", "pred acc", "energy(uJ)", "bus cycles"});

    for (sim::SystemDesign d : {sim::SystemDesign::FrFcfsBaseline,
                                sim::SystemDesign::RngOblivious,
                                sim::SystemDesign::BlissBaseline,
                                sim::SystemDesign::RngAwareNoBuffer,
                                sim::SystemDesign::GreedyIdle,
                                sim::SystemDesign::DrStrangeNoPred,
                                sim::SystemDesign::DrStrangeNoLowUtil,
                                sim::SystemDesign::DrStrange,
                                sim::SystemDesign::DrStrangeRl}) {
        const auto res = runner.run(d, spec);
        t.addRow({sim::designName(d),
                  TablePrinter::num(res.avgNonRngSlowdown()),
                  TablePrinter::num(res.rngSlowdown()),
                  TablePrinter::num(res.unfairnessIndex),
                  TablePrinter::num(res.bufferServeRate),
                  res.predictorAccuracy < 0
                      ? "-"
                      : TablePrinter::num(res.predictorAccuracy),
                  TablePrinter::num(res.energyNj / 1000.0, 1),
                  std::to_string(res.busCycles)});
    }
    t.print(std::cout);
    return 0;
}
