/**
 * @file
 * Scheduler explorer: demonstrates the policy-registry extension point.
 * It defines a strict first-come-first-serve scheduler *in this file*,
 * registers it in mem::SchedulerRegistry under "fcfs", registers a
 * "fcfs-baseline" design preset that selects it, and then sweeps one
 * workload mix across every design in sim::DesignRegistry — the nine
 * paper designs plus the one registered here — printing the full metric
 * set. No src/ code knows about the new policy.
 *
 * Usage: scheduler_explorer [app ...] [rng_mbps]
 *   e.g. scheduler_explorer mcf ycsb2 5120
 * Defaults to "soplex 5120".
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "drstrange.h"

using namespace dstrange;

namespace {

/**
 * Strict FCFS: always serve the oldest request whose next DRAM command
 * can legally issue, with no row-hit preference. Simpler and fairer than
 * FR-FCFS on paper, but it throws away row-buffer locality — the sweep
 * shows what that costs.
 */
class FcfsScheduler : public mem::Scheduler
{
  public:
    int
    pick(const mem::SchedContext &ctx) override
    {
        const auto &entries = ctx.queue.all();
        int best = mem::kNoPick;
        std::uint64_t best_seq = 0;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const mem::Request &req = entries[i];
            const dram::DramCmd cmd =
                mem::nextCommandFor(req, ctx.channel);
            if (!ctx.channel.canIssue(cmd, req.coord.bank, ctx.now))
                continue;
            if (best == mem::kNoPick || req.seq < best_seq) {
                best = static_cast<int>(i);
                best_seq = req.seq;
            }
        }
        return best;
    }

    void
    onColumnIssued(const mem::Request &, unsigned) override
    {
    }
};

/** Register the scheduler and a design preset that selects it. */
void
registerFcfsDesign()
{
    mem::SchedulerRegistry::instance().add(
        "fcfs", [](const mem::SchedulerContext &) {
            return std::make_unique<FcfsScheduler>();
        });
    sim::DesignRegistry::instance().add(
        "fcfs-baseline", "FCFS", [](sim::SimConfig &cfg) {
            sim::applyDesign(cfg, sim::SystemDesign::RngOblivious);
            cfg.scheduler = "fcfs";
        });
}

} // namespace

int
main(int argc, char **argv)
{
    registerFcfsDesign();

    workloads::WorkloadSpec spec;
    spec.rngThroughputMbps = 5120.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        char *end = nullptr;
        const double mbps = std::strtod(arg.c_str(), &end);
        if (end && *end == '\0') {
            spec.rngThroughputMbps = mbps;
        } else {
            try {
                workloads::appByName(arg);
            } catch (const std::out_of_range &) {
                std::cerr << "unknown application: " << arg << "\n"
                          << "known applications:";
                for (const auto &p : workloads::appTable())
                    std::cerr << " " << p.name;
                std::cerr << "\n";
                return 1;
            }
            spec.apps.push_back(arg);
        }
    }
    if (spec.apps.empty())
        spec.apps = {"soplex"};
    spec.name = "custom";

    // Every design runs as one cell of a parallel sweep (DS_JOBS
    // controls the worker count); the custom "fcfs-baseline" design
    // registered above rides along because cells resolve design keys
    // through the same registry.
    sim::SweepRunner sweep =
        sim::SimulationBuilder().instrBudget(150000).buildSweepRunner();

    std::cout << "Workload:";
    for (const auto &a : spec.apps)
        std::cout << " " << a;
    if (spec.rngThroughputMbps > 0)
        std::cout << " + RNG app @" << spec.rngThroughputMbps << " Mb/s";
    std::cout << "\n\n";

    TablePrinter t;
    t.setHeader({"design", "non-RNG sd", "RNG sd", "unfairness",
                 "serve rate", "pred acc", "energy(uJ)", "bus cycles"});

    const auto &designs = sim::DesignRegistry::instance();
    const std::vector<std::string> keys = designs.keys();
    const auto results =
        sweep.run(sim::SweepRunner::grid(keys, {spec}));
    for (std::size_t d = 0; d < keys.size(); ++d) {
        if (!results[d].ok) {
            std::cerr << "design '" << keys[d]
                      << "' failed: " << results[d].error << "\n";
            return 1;
        }
        const auto &res = results[d].result;
        t.addRow({designs.displayName(keys[d]),
                  TablePrinter::num(res.avgNonRngSlowdown()),
                  TablePrinter::num(res.rngSlowdown()),
                  TablePrinter::num(res.unfairnessIndex),
                  TablePrinter::num(res.bufferServeRate),
                  res.predictorAccuracy < 0
                      ? "-"
                      : TablePrinter::num(res.predictorAccuracy),
                  TablePrinter::num(res.energyNj / 1000.0, 1),
                  std::to_string(res.busCycles)});
    }
    t.print(std::cout);

    std::cout << "\nThe FCFS row comes from a scheduler registered by "
                 "this example --\nsee registerFcfsDesign() for the "
                 "extension-point recipe.\n";
    return 0;
}
