/**
 * @file
 * Security example: generate a batch of 256-bit keys — the paper's
 * canonical security-critical workload (Section 3) — while validating
 * the bitstream with NIST-style quality checks, and show the tail
 * latency difference between a cold buffer and a warm one.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "drstrange.h"

using namespace dstrange;

int
main()
{
    constexpr unsigned kKeys = 512;

    api::RandomDevice dev; // DR-STRaNGe over D-RaNGe
    std::vector<double> latencies;
    std::vector<std::uint8_t> pool;

    for (unsigned i = 0; i < kKeys; ++i) {
        const auto res = dev.getRandom(32); // 256-bit key
        latencies.push_back(res.latencyNs);
        pool.insert(pool.end(), res.bytes.begin(), res.bytes.end());
        // Key consumers do work between requests (signing, storing...).
        dev.idle(2000.0);
    }

    std::sort(latencies.begin(), latencies.end());
    const double p50 = latencies[latencies.size() / 2];
    const double p99 = latencies[latencies.size() * 99 / 100];

    std::cout << "Generated " << kKeys << " 256-bit keys ("
              << pool.size() << " bytes of entropy)\n\n";

    TablePrinter t;
    t.setHeader({"metric", "value"});
    t.addRow({"median key latency (ns)", TablePrinter::num(p50, 1)});
    t.addRow({"p99 key latency (ns)", TablePrinter::num(p99, 1)});
    t.addRow({"max key latency (ns)",
              TablePrinter::num(latencies.back(), 1)});
    t.print(std::cout);

    std::cout << "\nBitstream quality (NIST-style checks):\n";
    TablePrinter q;
    q.setHeader({"test", "statistic", "verdict"});
    const auto mono = trng::monobitTest(pool);
    q.addRow({"monobit |z|", TablePrinter::num(mono.statistic, 3),
              mono.pass ? "pass" : "FAIL"});
    const auto runs = trng::runsTest(pool);
    q.addRow({"runs |z|", TablePrinter::num(runs.statistic, 3),
              runs.pass ? "pass" : "FAIL"});
    const auto chi = trng::chiSquareByteTest(pool);
    q.addRow({"chi^2 (255 dof)", TablePrinter::num(chi.statistic, 1),
              chi.pass ? "pass" : "FAIL"});
    const auto ser = trng::serialCorrelationTest(pool);
    q.addRow({"serial corr r", TablePrinter::num(ser.statistic, 4),
              ser.pass ? "pass" : "FAIL"});
    q.addRow({"entropy (bits/byte)",
              TablePrinter::num(trng::shannonEntropyPerByte(pool), 4),
              ""});
    q.print(std::cout);

    const bool all_pass = mono.pass && runs.pass && chi.pass && ser.pass;
    std::cout << (all_pass ? "\nAll quality checks passed.\n"
                           : "\nWARNING: quality check failure!\n");
    return all_pass ? 0 : 1;
}
