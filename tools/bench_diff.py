#!/usr/bin/env python3
"""Diff two BENCH_run_all.json files and print a markdown report.

Used by the CI bench-diff job: the current run's sweep record is
compared against the one downloaded from the previous successful run's
`bench-results` artifact, and the per-tier fast-forward speedup deltas
land in the job summary. Exit code is always 0 — perf deltas on shared
CI runners are informational, never a gate.

Usage:
    bench_diff.py CURRENT.json [PREVIOUS.json]

With no previous file (the first run of a repository, or an expired
artifact) the report simply tabulates the current run.
"""

import json
import sys


def load_sweep(path):
    with open(path) as f:
        return json.load(f)["sweep"]


def tier_map(sweep, section="fastforward"):
    if sweep is None:
        return {}
    return {t["name"]: t for t in sweep.get(section, {}).get("tiers", [])}


def fmt_delta(cur, prev):
    # An absent field (old-schema artifact) or a zero baseline carries
    # no information — "n/a", never a delta computed against 0.0.
    if cur is None or prev is None or prev == 0:
        return "n/a"
    pct = 100.0 * (cur - prev) / prev
    return f"{pct:+.1f}%"


def fmt_speedup(value):
    return f"{value:.2f}x" if value is not None else "n/a"


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    cur = load_sweep(argv[1])
    prev = None
    if len(argv) == 3:
        try:
            prev = load_sweep(argv[2])
        except (OSError, KeyError, json.JSONDecodeError) as e:
            print(f"<!-- previous run unreadable: {e} -->")

    cur_tiers = tier_map(cur)
    prev_tiers = tier_map(prev)

    print("## Bench diff vs previous run")
    print()
    if prev is None:
        print("_No previous `bench-results` artifact found — baseline run._")
        print()
    print("| tier | ff speedup | previous | delta | step-1 wall (ms) | ff wall (ms) |")
    print("|------|------------|----------|-------|------------------|--------------|")
    rows = list(cur_tiers.values())
    ff = cur.get("fastforward")
    if ff:
        rows.append({**ff, "name": "**overall**"})
    for t in rows:
        p = prev_tiers.get(t["name"])
        if t["name"] == "**overall**" and prev:
            p = prev.get("fastforward")
        prev_speedup = p.get("speedup") if p else None
        # A tier with no counterpart in the previous run is new, not a
        # regression; mark it rather than leaving the columns blank.
        if prev_speedup is not None:
            prev_txt = fmt_speedup(prev_speedup)
        elif prev is not None and p is None and t["name"] != "**overall**":
            prev_txt = "(new)"
        else:
            prev_txt = "—"
        cur_speedup = t.get("speedup")
        print(
            "| {name} | {speedup} | {prev} | {delta} "
            "| {step1_wall_ms:.1f} | {ff_wall_ms:.1f} |".format(
                name=t["name"],
                speedup=fmt_speedup(cur_speedup),
                prev=prev_txt,
                delta=fmt_delta(cur_speedup, prev_speedup),
                step1_wall_ms=t.get("step1_wall_ms", 0.0),
                ff_wall_ms=t.get("ff_wall_ms", 0.0),
            )
        )
    # Tiers only in the previous run would otherwise vanish silently.
    for name in sorted(set(prev_tiers) - set(cur_tiers)):
        p = prev_tiers[name]
        print(
            "| {name} | (removed) | {speedup} | n/a | — | — |".format(
                name=name, speedup=fmt_speedup(p.get("speedup"))
            )
        )
    print()

    # Batched command retirement: same table over sweep.batch. Older
    # artifacts (schemas before the batch record) simply skip it.
    cur_batch = tier_map(cur, "batch")
    if cur_batch:
        prev_batch = tier_map(prev, "batch")
        print("### Batch mode (DS_BATCH off vs on, fast-forward on)")
        print()
        print("| tier | batch speedup | previous | delta |")
        print("|------|---------------|----------|-------|")
        for t in cur_batch.values():
            p = prev_batch.get(t["name"])
            prev_speedup = p.get("speedup") if p else None
            cur_speedup = t.get("speedup")
            print(
                "| {name} | {speedup} | {prev} | {delta} |".format(
                    name=t["name"],
                    speedup=fmt_speedup(cur_speedup),
                    prev=fmt_speedup(prev_speedup)
                    if prev_speedup is not None
                    else "—",
                    delta=fmt_delta(cur_speedup, prev_speedup),
                )
            )
        print()

    prev_wall = prev.get("wall_ms") if prev else None
    print(
        f"Parallel sweep: {len(cur['cells'])} cells in "
        f"{cur['wall_ms']:.1f} ms on {cur['jobs']} job(s) "
        f"({fmt_delta(cur['wall_ms'], prev_wall)} wall vs previous); "
        f"bit-identical: **{cur['bit_identical']}**"
    )
    if prev:
        cur_names = {c["name"] for c in cur["cells"]}
        prev_names = {c["name"] for c in prev["cells"]}
        added = sorted(cur_names - prev_names)
        removed = sorted(prev_names - cur_names)
        if added:
            print()
            print(f"New cells ({len(added)}): " + ", ".join(added[:10]))
        if removed:
            print()
            print(f"Removed cells ({len(removed)}): " + ", ".join(removed[:10]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
