#!/usr/bin/env python3
"""Unit tests for bench_diff.py — the first Python test in CTest.

Run directly (``python3 tools/test_bench_diff.py``) or through ctest
(suite name ``bench_diff_py``). The regression under test: a tier whose
``speedup`` field is absent in the previous artifact (an old-schema
``bench-results`` download) must be reported as "n/a", not crash the
report or compute a delta against a 0.0 baseline.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def make_doc(tiers, batch_tiers=None, wall_ms=100.0):
    """A minimal BENCH_run_all.json document for the differ."""
    sweep = {
        "wall_ms": wall_ms,
        "jobs": 1,
        "bit_identical": True,
        "cells": [{"name": "cell-a"}, {"name": "cell-b"}],
        "fastforward": {
            "step1_wall_ms": 200.0,
            "ff_wall_ms": 100.0,
            "speedup": 2.0,
            "tiers": tiers,
        },
    }
    if batch_tiers is not None:
        sweep["batch"] = {
            "off_wall_ms": 150.0,
            "on_wall_ms": 100.0,
            "speedup": 1.5,
            "tiers": batch_tiers,
        }
    return {"sweep": sweep}


def tier(name, speedup=None, step1=10.0, ff=5.0):
    t = {"name": name, "step1_wall_ms": step1, "ff_wall_ms": ff}
    if speedup is not None:
        t["speedup"] = speedup
    return t


def run_diff(cur_doc, prev_doc=None):
    """Run bench_diff.main on temp files; return (exit code, report)."""
    with tempfile.TemporaryDirectory() as d:
        argv = ["bench_diff.py", os.path.join(d, "cur.json")]
        with open(argv[1], "w") as f:
            json.dump(cur_doc, f)
        if prev_doc is not None:
            argv.append(os.path.join(d, "prev.json"))
            with open(argv[2], "w") as f:
                json.dump(prev_doc, f)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = bench_diff.main(argv)
        return rc, out.getvalue()


class FmtTests(unittest.TestCase):
    def test_absent_or_zero_baseline_is_na(self):
        self.assertEqual(bench_diff.fmt_delta(2.0, None), "n/a")
        self.assertEqual(bench_diff.fmt_delta(2.0, 0), "n/a")
        self.assertEqual(bench_diff.fmt_delta(None, 2.0), "n/a")

    def test_real_delta(self):
        self.assertEqual(bench_diff.fmt_delta(3.0, 2.0), "+50.0%")
        self.assertEqual(bench_diff.fmt_delta(1.0, 2.0), "-50.0%")

    def test_fmt_speedup(self):
        self.assertEqual(bench_diff.fmt_speedup(1.5), "1.50x")
        self.assertEqual(bench_diff.fmt_speedup(None), "n/a")


class ReportTests(unittest.TestCase):
    def test_baseline_run_without_previous(self):
        rc, out = run_diff(make_doc([tier("dual-5gbps", 2.5)]))
        self.assertEqual(rc, 0)
        self.assertIn("baseline run", out)
        self.assertIn("| dual-5gbps | 2.50x | — | n/a |", out)

    def test_absent_previous_speedup_reports_na(self):
        # The previous artifact has the tier but no speedup field: the
        # delta must be "n/a", never a percentage against 0.0.
        cur = make_doc([tier("dual-5gbps", 2.5)])
        prev = make_doc([tier("dual-5gbps", speedup=None)])
        rc, out = run_diff(cur, prev)
        self.assertEqual(rc, 0)
        row = next(l for l in out.splitlines() if "dual-5gbps" in l)
        self.assertIn("n/a", row)
        self.assertNotIn("%", row)

    def test_removed_tier_without_speedup_does_not_crash(self):
        cur = make_doc([tier("dual-5gbps", 2.5)])
        prev = make_doc(
            [tier("dual-5gbps", 2.0), tier("legacy", speedup=None)]
        )
        rc, out = run_diff(cur, prev)
        self.assertEqual(rc, 0)
        self.assertIn("| legacy | (removed) | n/a | n/a |", out)

    def test_new_tier_marked_new(self):
        cur = make_doc([tier("dual-5gbps", 2.5), tier("fresh", 1.2)])
        prev = make_doc([tier("dual-5gbps", 2.0)])
        rc, out = run_diff(cur, prev)
        self.assertEqual(rc, 0)
        row = next(l for l in out.splitlines() if "fresh" in l)
        self.assertIn("(new)", row)

    def test_zero_previous_speedup_is_na_not_division(self):
        cur = make_doc([tier("dual-5gbps", 2.5)])
        prev = make_doc([tier("dual-5gbps", 0.0)])
        rc, out = run_diff(cur, prev)
        self.assertEqual(rc, 0)
        row = next(l for l in out.splitlines() if "dual-5gbps" in l)
        self.assertIn("n/a", row)

    def test_batch_section_present_when_recorded(self):
        cur = make_doc(
            [tier("dual-5gbps", 2.5)],
            batch_tiers=[
                {"name": "dual-5gbps", "off_ms": 20.0, "on_ms": 10.0,
                 "speedup": 2.0}
            ],
        )
        rc, out = run_diff(cur)
        self.assertEqual(rc, 0)
        self.assertIn("Batch mode", out)
        self.assertIn("| dual-5gbps | 2.00x | — | n/a |", out)

    def test_batch_section_skipped_for_old_schema(self):
        rc, out = run_diff(make_doc([tier("dual-5gbps", 2.5)]))
        self.assertEqual(rc, 0)
        self.assertNotIn("Batch mode", out)

    def test_unreadable_previous_is_annotated(self):
        with tempfile.TemporaryDirectory() as d:
            cur_path = os.path.join(d, "cur.json")
            with open(cur_path, "w") as f:
                json.dump(make_doc([tier("dual-5gbps", 2.5)]), f)
            bad = os.path.join(d, "prev.json")
            with open(bad, "w") as f:
                f.write("{not json")
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                rc = bench_diff.main(["bench_diff.py", cur_path, bad])
        self.assertEqual(rc, 0)
        self.assertIn("previous run unreadable", out.getvalue())

    def test_usage_error(self):
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = bench_diff.main(["bench_diff.py"])
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
