#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Fails (exit 1) on any intra-repo markdown link whose target file does
not exist, or whose `#anchor` does not match a heading in the target
document. External links (http/https/mailto) are not fetched.

Usage: python3 tools/docs_lint.py [repo-root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)      # inline formatting
    slug = re.sub(r"[^\w\- ]", "", slug)   # punctuation
    slug = slug.replace(" ", "-")
    return slug


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as fh:
        text = CODE_FENCE_RE.sub("", fh.read())
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def check_file(path: str, root: str) -> list:
    errors = []
    with open(path, encoding="utf-8") as fh:
        text = CODE_FENCE_RE.sub("", fh.read())
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        if base:
            dest = os.path.normpath(
                os.path.join(os.path.dirname(path), base))
            if not os.path.exists(dest):
                errors.append(f"{os.path.relpath(path, root)}: broken "
                              f"link '{target}' (no such file)")
                continue
        else:
            dest = path  # same-document anchor
        if anchor and dest.endswith(".md"):
            if anchor not in anchors_of(dest):
                errors.append(f"{os.path.relpath(path, root)}: broken "
                              f"anchor '{target}'")
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = [os.path.join(root, "README.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += [os.path.join(docs, f) for f in sorted(os.listdir(docs))
                  if f.endswith(".md")]
    errors = []
    for path in files:
        if os.path.exists(path):
            errors += check_file(path, root)
    for err in errors:
        print(err, file=sys.stderr)
    print(f"docs-lint: {len(files)} file(s), {len(errors)} broken "
          f"link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
