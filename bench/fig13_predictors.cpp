/**
 * @file
 * Figure 13: impact of the DRAM idleness predictor — RNG-oblivious
 * baseline, DR-STRaNGe without a predictor (simple buffering),
 * DR-STRaNGe with the simple predictor, and DR-STRaNGe with the
 * RL-based predictor.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 13: DRAM idleness predictor ablation",
                  "non-RNG and RNG slowdowns for four designs");

    sim::SweepRunner sweep = bench::baseSweepRunner();
    const std::vector<std::string> designs = {
        "oblivious",
        "drstrange-nopred",
        "drstrange",
        "drstrange-rl",
    };
    const char *labels[] = {"RNG-Oblivious", "DR-STRANGE(NoPred)",
                            "DR-STRANGE", "DR-STRANGE+RL"};
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    std::vector<double> non_rng[4], rng[4];
    TablePrinter t;
    t.setHeader({"workload", "nonRNG:obliv", "nonRNG:nopred",
                 "nonRNG:simple", "nonRNG:rl", "RNG:obliv", "RNG:nopred",
                 "RNG:simple", "RNG:rl"});

    for (std::size_t mi = 0; mi < mixes.size(); ++mi) {
        std::vector<std::string> row{mixes[mi].apps[0]};
        double cells[2][4];
        for (unsigned d = 0; d < 4; ++d) {
            const auto &res = results[mi * designs.size() + d].result;
            cells[0][d] = res.avgNonRngSlowdown();
            cells[1][d] = res.rngSlowdown();
            non_rng[d].push_back(cells[0][d]);
            rng[d].push_back(cells[1][d]);
        }
        for (unsigned m = 0; m < 2; ++m)
            for (unsigned d = 0; d < 4; ++d)
                row.push_back(bench::num(cells[m][d]));
        t.addRow(row);
    }

    std::vector<std::string> avg{"AVG"};
    for (unsigned m = 0; m < 2; ++m)
        for (unsigned d = 0; d < 4; ++d)
            avg.push_back(bench::num(mean(m == 0 ? non_rng[d] : rng[d])));
    t.addRow(avg);
    t.print(std::cout);

    for (unsigned d = 1; d < 4; ++d) {
        std::cout << labels[d] << " vs " << labels[0] << ": non-RNG "
                  << bench::num((mean(non_rng[0]) - mean(non_rng[d])) /
                                    mean(non_rng[0]) * 100.0,
                                1)
                  << "% lower, RNG "
                  << bench::num((mean(rng[0]) - mean(rng[d])) /
                                    mean(rng[0]) * 100.0,
                                1)
                  << "% lower\n";
    }
    std::cout << "\nPaper shape: the simple predictor adds 12.4%/13.8% "
                 "(non-RNG/RNG) over simple\nbuffering; the RL predictor "
                 "performs similarly to the simple one.\n";
    return 0;
}
