/**
 * @file
 * Figure 5: distribution of DRAM idle period lengths (in bus cycles) of
 * the medium/high-intensity applications running alone, against the time
 * needed to generate a 64-bit random number.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 5: DRAM idle period length distribution",
                  "box plot per application; line = 64-bit generation "
                  "latency");

    const sim::SimConfig base = bench::baseConfig();
    const Cycle gen64 =
        base.mechanism.demandLatency(64, base.geometry.channels);

    TablePrinter t;
    t.setHeader({"app", "min", "q1", "median", "q3", "max", "samples",
                 "% >= gen64"});

    for (const std::string &app : workloads::paperPlottedApps()) {
        sim::SimConfig cfg = base;
        std::vector<std::unique_ptr<cpu::TraceSource>> traces;
        traces.push_back(std::make_unique<workloads::SyntheticTrace>(
            workloads::appByName(app), cfg.geometry, 0, cfg.seed));
        sim::applyDesign(cfg, sim::SystemDesign::RngOblivious);
        sim::System sys(cfg, std::move(traces));
        sys.run();

        std::vector<double> lengths;
        std::uint64_t over = 0;
        for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
            for (std::uint32_t len : sys.mc().idlePeriods(ch)) {
                lengths.push_back(len);
                over += len >= gen64;
            }
        }
        const BoxSummary box = boxSummary(lengths);
        t.addRow({app, bench::num(box.min, 0), bench::num(box.q1, 0),
                  bench::num(box.median, 0), bench::num(box.q3, 0),
                  bench::num(box.max, 0), std::to_string(lengths.size()),
                  bench::num(lengths.empty()
                                 ? 0.0
                                 : 100.0 * over / lengths.size(),
                             1)});
    }
    t.print(std::cout);
    std::cout << "\n64-bit on-demand generation latency (4 channels): "
              << gen64 << " bus cycles.\n"
              << "Paper shape: for most applications the bulk of idle "
                 "periods is shorter than\nthe 64-bit generation time, "
                 "motivating 8-bit fill batches.\n";
    return 0;
}
