/**
 * @file
 * Request-trace capture/replay study: record the controller-boundary
 * request stream of a dual-core + RNG workload under each scheduler,
 * replay each tape into an identically-configured controller, and
 * verify that every controller-side metric reproduces bit-identically
 * at a materially lower wall-clock (replay executes no core or service
 * model). Exits non-zero on any metric mismatch, so the study doubles
 * as a regression gate for the trace subsystem.
 *
 * Writes BENCH_trace_replay.json (and the .bin tapes) into
 * DS_BENCH_OUT.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Request-trace capture/replay",
                  "MemoryBackend seam study (replay bit-identity)");

    const std::vector<std::string> schedulers = {"fr-fcfs",
                                                 "fr-fcfs-cap", "bliss"};
    workloads::WorkloadSpec spec;
    spec.apps = {"soplex", "mcf"};
    spec.rngThroughputMbps = 5120.0;

    const std::string out_dir = bench::benchOutputDir();
    TablePrinter t;
    t.setHeader({"scheduler", "records", "live ms", "replay ms",
                 "speedup", "bit-identical"});

    std::vector<bench::BenchRecord> records;
    bool all_identical = true;
    double live_total = 0.0, replay_total = 0.0;
    for (const std::string &sched : schedulers) {
        sim::SimConfig cfg = bench::baseConfig();
        sim::DesignRegistry::instance().apply("drstrange", cfg);
        cfg.scheduler = sched;
        const std::string path =
            out_dir + "/trace_replay_" + sched + ".bin";

        bench::TraceCellRecord cell;
        try {
            cell = bench::runTraceReplayCell(cfg, spec, path);
        } catch (const std::exception &e) {
            std::cerr << "cell '" << sched << "' failed: " << e.what()
                      << "\n";
            return 1;
        }
        all_identical = all_identical && cell.bitIdentical;
        live_total += cell.liveMs;
        replay_total += cell.replayMs;
        t.addRow({sched, std::to_string(cell.records),
                  bench::num(cell.liveMs, 1),
                  bench::num(cell.replayMs, 1),
                  bench::num(cell.speedup(), 2),
                  cell.bitIdentical ? "yes" : "NO"});

        bench::BenchRecord rec;
        rec.name = "trace_replay/" + sched;
        rec.wallMs = cell.liveMs + cell.replayMs;
        rec.exitCode = cell.bitIdentical ? 0 : 1;
        rec.metrics = {
            {"live_wall_ms", cell.liveMs},
            {"replay_wall_ms", cell.replayMs},
            {"speedup", cell.speedup()},
            {"records", static_cast<double>(cell.records)},
            {"bit_identical", cell.bitIdentical ? 1.0 : 0.0},
        };
        records.push_back(std::move(rec));
    }
    t.print(std::cout);
    std::cout << "\ntotal: " << bench::num(live_total, 1)
              << " ms live -> " << bench::num(replay_total, 1)
              << " ms replay ("
              << bench::num(replay_total > 0.0
                                ? live_total / replay_total
                                : 0.0,
                            2)
              << "x), "
              << (all_identical ? "bit-identical" : "METRIC MISMATCH")
              << "\n";

    const std::string path =
        bench::writeBenchJson("trace_replay", records);
    if (!path.empty())
        std::cout << "wrote " << path << "\n";
    return all_identical ? 0 : 1;
}
