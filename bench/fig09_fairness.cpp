/**
 * @file
 * Figure 9: system fairness (unfairness index, lower is better) of
 * dual-core workloads under the RNG-oblivious baseline, the Greedy Idle
 * design, and DR-STRaNGe.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 9: dual-core system fairness",
                  "unfairness index per workload, three designs");

    sim::SweepRunner sweep = bench::baseSweepRunner();
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    TablePrinter t;
    t.setHeader({"workload", "RNG-Oblivious", "Greedy", "DR-STRANGE"});
    std::vector<double> obliv, greedy, dr;

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const double o = results[m * 3 + 0].result.unfairnessIndex;
        const double g = results[m * 3 + 1].result.unfairnessIndex;
        const double d = results[m * 3 + 2].result.unfairnessIndex;
        obliv.push_back(o);
        greedy.push_back(g);
        dr.push_back(d);
        t.addRow({mixes[m].apps[0], bench::num(o), bench::num(g),
                  bench::num(d)});
    }
    t.addRow({"AVG", bench::num(mean(obliv)), bench::num(mean(greedy)),
              bench::num(mean(dr))});
    t.print(std::cout);

    std::cout << "\nDR-STRaNGe vs RNG-Oblivious: unfairness "
              << bench::num(
                     (mean(obliv) - mean(dr)) / mean(obliv) * 100.0, 1)
              << "% lower (paper: 32.1%); vs Greedy: "
              << bench::num(
                     (mean(greedy) - mean(dr)) / mean(greedy) * 100.0, 1)
              << "% lower (paper: 15.2%).\n";
    return 0;
}
