/**
 * @file
 * Figure 9: system fairness (unfairness index, lower is better) of
 * dual-core workloads under the RNG-oblivious baseline, the Greedy Idle
 * design, and DR-STRaNGe.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 9: dual-core system fairness",
                  "unfairness index per workload, three designs");

    sim::Runner runner = bench::baseBuilder().buildRunner();

    TablePrinter t;
    t.setHeader({"workload", "RNG-Oblivious", "Greedy", "DR-STRANGE"});
    std::vector<double> obliv, greedy, dr;

    for (const auto &mix : workloads::dualCorePlottedMixes(5120.0)) {
        const double o = runner.run("oblivious", mix).unfairnessIndex;
        const double g = runner.run("greedy", mix).unfairnessIndex;
        const double d = runner.run("drstrange", mix).unfairnessIndex;
        obliv.push_back(o);
        greedy.push_back(g);
        dr.push_back(d);
        t.addRow({mix.apps[0], bench::num(o), bench::num(g),
                  bench::num(d)});
    }
    t.addRow({"AVG", bench::num(mean(obliv)), bench::num(mean(greedy)),
              bench::num(mean(dr))});
    t.print(std::cout);

    std::cout << "\nDR-STRaNGe vs RNG-Oblivious: unfairness "
              << bench::num(
                     (mean(obliv) - mean(dr)) / mean(obliv) * 100.0, 1)
              << "% lower (paper: 32.1%); vs Greedy: "
              << bench::num(
                     (mean(greedy) - mean(dr)) / mean(greedy) * 100.0, 1)
              << "% lower (paper: 15.2%).\n";
    return 0;
}
