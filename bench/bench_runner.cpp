/**
 * @file
 * run_all: harness that executes a selection of the figure/section
 * reproduction benchmarks as subprocesses, times each one, runs an
 * in-process design x workload sweep through sim::SweepRunner (per-cell
 * and aggregate wall-clock plus the measured parallel speedup), and
 * writes a machine-readable BENCH_run_all.json perf record. This seeds
 * the perf-trajectory tracking: diffing wall_ms across commits shows
 * which PRs made the simulator faster or slower, and the sweep record's
 * "speedup" is the serial-vs-parallel datapoint.
 *
 * The sweep's metric values are bit-identical for any DS_JOBS value:
 * each cell is a pure function of its configuration and workload spec,
 * so only the wall-clock fields change between serial and parallel runs.
 *
 * Usage:
 *   run_all                 # run the quick default selection
 *   run_all --all           # run every bench executable
 *   run_all --only fig1     # run benches whose name contains "fig1"
 *   run_all --list          # print the known bench names and exit
 *   run_all --out DIR       # write BENCH_run_all.json into DIR
 *   run_all --config TEXT   # key=value config text forwarded to every
 *                           # bench via DS_CONFIG (see sim/config_text.h)
 *   run_all --jobs N        # sweep worker threads (overrides DS_JOBS)
 *   run_all --sweep-mixes N # dual-core mixes in the sweep (0 disables;
 *                           # default 8)
 *
 * Environment:
 *   DS_INSTR_BUDGET  per-core instruction budget forwarded to benches
 *   DS_CONFIG        base-config key=value overrides forwarded to benches
 *   DS_BENCH_OUT     default output directory for BENCH_*.json
 *   DS_JOBS          sweep worker threads (default hardware_concurrency)
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

namespace fs = std::filesystem;

#ifndef DRSTRANGE_BENCH_LIST
#error "DRSTRANGE_BENCH_LIST must be defined by bench/CMakeLists.txt"
#endif

/**
 * Every bench executable built by bench/CMakeLists.txt, injected at
 * configure time so the inventory has a single source of truth (the
 * optional micro_components is present only when it was built).
 */
std::vector<std::string>
allBenches()
{
    std::vector<std::string> names;
    const std::string list = DRSTRANGE_BENCH_LIST;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size()
                                                           : comma;
        if (end > pos)
            names.push_back(list.substr(pos, end - pos));
        pos = end + 1;
    }
    return names;
}

/**
 * Quick default selection: one bench per major subsystem (TRNG
 * throughput, dual-core system comparison, component microbenchmarks)
 * so a default run finishes in well under a minute. Restricted to
 * benches that were actually built.
 */
std::vector<std::string>
quickBenches(const std::vector<std::string> &all)
{
    const std::vector<std::string> wanted = {
        "fig02_trng_throughput",
        "fig06_dualcore_perf",
        "micro_components",
    };
    std::vector<std::string> names;
    for (const std::string &name : wanted)
        for (const std::string &built : all)
            if (built == name) {
                names.push_back(name);
                break;
            }
    return names;
}

void
usage(const char *prog)
{
    std::cout << "usage: " << prog
              << " [--all] [--only SUBSTR] [--list] [--out DIR]"
                 " [--config TEXT] [--jobs N] [--sweep-mixes N]\n";
}

/** The headline metric values of one sweep cell, in record order. */
std::vector<std::pair<std::string, double>>
cellMetrics(const dstrange::sim::Runner::WorkloadResult &res)
{
    return {
        {"non_rng_slowdown", res.avgNonRngSlowdown()},
        {"rng_slowdown", res.rngSlowdown()},
        {"unfairness", res.unfairnessIndex},
        {"weighted_speedup", res.weightedSpeedupNonRng},
        {"energy_nj", res.energyNj},
        {"bus_cycles", static_cast<double>(res.busCycles)},
    };
}

/**
 * In-process sweep: designs x dual-core mixes through sim::SweepRunner,
 * timing every cell. When more than one worker is in play, a serial
 * reference run (fresh SweepRunner, fresh alone-run cache) measures the
 * true serial-vs-parallel speedup and cross-checks that both runs'
 * metric values are bit-identical. Returns the number of failures
 * (failed cells, each recorded with its error, plus a bit-identity
 * mismatch).
 */
int
runSweep(unsigned jobs, unsigned n_mixes, bench::SweepRecord &sweep)
{
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};
    auto mixes = dstrange::workloads::dualCorePlottedMixes(5120.0);
    if (mixes.size() > n_mixes)
        mixes.resize(n_mixes);

    dstrange::sim::SweepRunner runner =
        bench::baseBuilder().buildSweepRunner(jobs);
    sweep.jobs = runner.jobs();
    const auto cells = dstrange::sim::SweepRunner::grid(designs, mixes);

    std::cout << "[run_all] sweep: " << designs.size() << " designs x "
              << mixes.size() << " mixes on " << runner.jobs()
              << " thread(s) ... " << std::flush;
    bench::WallTimer timer;
    const auto results = runner.run(cells);
    sweep.wallMs = timer.elapsedMs();

    int failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        bench::SweepCellRecord rec;
        rec.name = cells[i].design + "/" + cells[i].spec.name;
        rec.wallMs = results[i].wallMs;
        rec.ok = results[i].ok;
        sweep.cellsTotalMs += results[i].wallMs;
        if (results[i].ok) {
            rec.metrics = cellMetrics(results[i].result);
        } else {
            rec.error = results[i].error;
            ++failures;
        }
        sweep.cells.push_back(std::move(rec));
    }

    if (sweep.jobs > 1) {
        dstrange::sim::SweepRunner serial =
            bench::baseBuilder().buildSweepRunner(1);
        timer.reset();
        const auto serial_results = serial.run(cells);
        sweep.serialWallMs = timer.elapsedMs();
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i].ok != serial_results[i].ok ||
                (results[i].ok &&
                 cellMetrics(results[i].result) !=
                     cellMetrics(serial_results[i].result)))
                sweep.bitIdentical = false;
        }
        if (!sweep.bitIdentical)
            ++failures;
    } else {
        sweep.serialWallMs = sweep.wallMs;
    }

    std::cout << (failures == 0 ? "ok" : "FAIL") << " ("
              << bench::num(sweep.wallMs, 1) << " ms parallel, "
              << bench::num(sweep.serialWallMs, 1) << " ms serial, "
              << bench::num(sweep.speedup(), 2) << "x speedup, "
              << (sweep.bitIdentical ? "bit-identical" : "MISMATCH")
              << ")\n";
    for (std::size_t i = 0; i < results.size(); ++i)
        if (!results[i].ok)
            std::cerr << "[run_all] sweep cell '" << sweep.cells[i].name
                      << "' failed: " << results[i].error << "\n";
    if (!sweep.bitIdentical)
        std::cerr << "[run_all] sweep: serial and parallel metric "
                     "values differ — determinism bug\n";
    return failures;
}

/** Decode a std::system() status into the child's exit code. */
int
exitCodeOf(int status)
{
    if (status == -1)
        return -1;
#ifdef WIFEXITED
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -1;
#else
    return status;
#endif
}

} // namespace

int
main(int argc, char **argv)
{
    // An inherited malformed DS_CONFIG would otherwise fail every child
    // bench and then kill the final writeBenchJson (which parses it
    // too, via bench::baseConfig()) — reject it up front.
    if (const char *inherited = std::getenv("DS_CONFIG")) {
        try {
            dstrange::sim::SimulationBuilder::fromText(inherited);
        } catch (const std::exception &e) {
            std::cerr << "DS_CONFIG: " << e.what() << "\n";
            return 2;
        }
    }

    const std::vector<std::string> all_benches = allBenches();
    std::vector<std::string> selected = quickBenches(all_benches);
    std::string out_dir = bench::benchOutputDir();
    unsigned jobs = 0;          // 0 = DS_JOBS / hardware_concurrency.
    unsigned sweep_mixes = 8;   // 0 disables the in-process sweep.

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all") {
            selected = all_benches;
        } else if (arg == "--only") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            const std::string pat = argv[++i];
            selected.clear();
            for (const std::string &name : all_benches)
                if (name.find(pat) != std::string::npos)
                    selected.push_back(name);
            if (selected.empty()) {
                std::cerr << "no bench matches '" << pat << "'\n";
                return 2;
            }
        } else if (arg == "--list") {
            for (const std::string &name : all_benches)
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--out") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            out_dir = argv[++i];
        } else if (arg == "--config") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            const std::string text = argv[++i];
            try {
                // Validate before fanning out to every child bench.
                dstrange::sim::SimulationBuilder::fromText(text);
            } catch (const std::exception &e) {
                std::cerr << "--config: " << e.what() << "\n";
                return 2;
            }
#ifdef _WIN32
            _putenv_s("DS_CONFIG", text.c_str());
#else
            setenv("DS_CONFIG", text.c_str(), /*overwrite=*/1);
#endif
        } else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            char *end = nullptr;
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            if (end == nullptr || *end != '\0') {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--sweep-mixes") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            char *end = nullptr;
            sweep_mixes = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            if (end == nullptr || *end != '\0') {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    // Bench executables are siblings of this harness in the build tree.
    const fs::path self(argv[0]);
    const fs::path bin_dir =
        self.has_parent_path() ? self.parent_path() : fs::path(".");

    std::vector<bench::BenchRecord> records;
    int failures = 0;
    for (const std::string &name : selected) {
        const fs::path exe = bin_dir / name;
        std::error_code ec;
        if (!fs::exists(exe, ec)) {
            std::cerr << "missing bench executable: " << exe.string()
                      << " (build the bench targets first)\n";
            ++failures;
            bench::BenchRecord rec;
            rec.name = name;
            rec.exitCode = -1;
            records.push_back(rec);
            continue;
        }

        std::cout << "[run_all] " << name << " ... " << std::flush;
        // Built piecewise: chained operator+ here trips a GCC 12
        // -Wrestrict false positive (GCC PR105651) under -O2 -Werror.
        std::string cmd = "\"";
        cmd += exe.string();
#ifdef _WIN32
        cmd += "\" > NUL 2>&1";
#else
        cmd += "\" > /dev/null 2>&1";
#endif
        bench::WallTimer timer;
        const int status = std::system(cmd.c_str());
        bench::BenchRecord rec;
        rec.name = name;
        rec.wallMs = timer.elapsedMs();
        rec.exitCode = exitCodeOf(status);
        std::cout << (rec.exitCode == 0 ? "ok" : "FAIL") << " ("
                  << bench::num(rec.wallMs, 1) << " ms)\n";
        if (rec.exitCode != 0)
            ++failures;
        records.push_back(rec);
    }

    // In-process parallel sweep. A throwing cell is recorded in the
    // JSON (ok=false plus its error) and fails the whole run — run_all
    // must never exit 0 over a partial record.
    bench::SweepRecord sweep;
    const bool ran_sweep = sweep_mixes > 0;
    if (ran_sweep)
        failures += runSweep(jobs, sweep_mixes, sweep);

    const std::string path = bench::writeBenchJson(
        "run_all", records, ran_sweep ? &sweep : nullptr, out_dir);
    if (path.empty()) {
        std::cerr << "failed to write BENCH_run_all.json into '" << out_dir
                  << "'\n";
        return 1;
    }
    std::cout << "\nwrote " << path << " (" << records.size()
              << " results, " << failures << " failures)\n";
    return failures == 0 ? 0 : 1;
}
