/**
 * @file
 * run_all: harness that executes a selection of the figure/section
 * reproduction benchmarks as subprocesses, times each one, runs an
 * in-process design x workload sweep through sim::SweepRunner (per-cell
 * and aggregate wall-clock plus the measured parallel speedup), and
 * writes a machine-readable BENCH_run_all.json perf record. This seeds
 * the perf-trajectory tracking: diffing wall_ms across commits shows
 * which PRs made the simulator faster or slower, and the sweep record's
 * "speedup" is the serial-vs-parallel datapoint.
 *
 * The sweep's metric values are bit-identical for any DS_JOBS value:
 * each cell is a pure function of its configuration and workload spec,
 * so only the wall-clock fields change between serial and parallel runs.
 *
 * Usage:
 *   run_all                 # run the quick default selection
 *   run_all --all           # run every bench executable
 *   run_all --only fig1     # run benches whose name contains "fig1"
 *   run_all --list          # print the known bench names and exit
 *   run_all --out DIR       # write BENCH_run_all.json into DIR
 *   run_all --config TEXT   # key=value config text forwarded to every
 *                           # bench via DS_CONFIG (see sim/config_text.h)
 *   run_all --jobs N        # sweep worker threads (overrides DS_JOBS)
 *   run_all --sweep-mixes N # dual-core mixes in the sweep (0 disables;
 *                           # default 8)
 *   run_all --shard I/N     # run only sweep cells owned by shard I of
 *                           # N (cross-process sharding; writes a
 *                           # BENCH_run_all.shard-I.json fragment);
 *                           # I/N:balanced splits by recorded per-cell
 *                           # wall-clock costs instead of by hash
 *                           # (needs --cache-dir)
 *   run_all --merge-shards DIR  # join the shard fragments in DIR into
 *                           # the canonical BENCH_run_all.json
 *   run_all --cache-dir DIR # persistent alone-run cache (sets
 *                           # DS_CACHE_DIR for this process and every
 *                           # child bench)
 *
 * Environment:
 *   DS_INSTR_BUDGET  per-core instruction budget forwarded to benches
 *   DS_CONFIG        base-config key=value overrides forwarded to benches
 *   DS_BENCH_OUT     default output directory for BENCH_*.json
 *   DS_JOBS          sweep worker threads (default hardware_concurrency)
 *   DS_SHARD         default for --shard ("I/N")
 *   DS_CACHE_DIR     default for --cache-dir (unset = no persistence)
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

namespace fs = std::filesystem;

#ifndef DRSTRANGE_BENCH_LIST
#error "DRSTRANGE_BENCH_LIST must be defined by bench/CMakeLists.txt"
#endif

/**
 * Every bench executable built by bench/CMakeLists.txt, injected at
 * configure time so the inventory has a single source of truth (the
 * optional micro_components is present only when it was built).
 */
std::vector<std::string>
allBenches()
{
    std::vector<std::string> names;
    const std::string list = DRSTRANGE_BENCH_LIST;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size()
                                                           : comma;
        if (end > pos)
            names.push_back(list.substr(pos, end - pos));
        pos = end + 1;
    }
    return names;
}

/**
 * Quick default selection: one bench per major subsystem (TRNG
 * throughput, dual-core system comparison, component microbenchmarks)
 * so a default run finishes in well under a minute. Restricted to
 * benches that were actually built.
 */
std::vector<std::string>
quickBenches(const std::vector<std::string> &all)
{
    const std::vector<std::string> wanted = {
        "fig02_trng_throughput",
        "fig06_dualcore_perf",
        "micro_components",
    };
    std::vector<std::string> names;
    for (const std::string &name : wanted)
        for (const std::string &built : all)
            if (built == name) {
                names.push_back(name);
                break;
            }
    return names;
}

void
usage(const char *prog)
{
    std::cout
        << "usage: " << prog
        << " [--all] [--only SUBSTR] [--list] [--out DIR]\n"
           "               [--config TEXT] [--jobs N] [--sweep-mixes N]\n"
           "               [--shard I/N] [--merge-shards DIR]"
           " [--cache-dir DIR]\n"
           "\n"
           "  --all            run every bench executable\n"
           "  --only SUBSTR    run benches whose name contains SUBSTR\n"
           "  --list           print the known bench names and exit\n"
           "  --out DIR        write BENCH_run_all.json into DIR\n"
           "  --config TEXT    key=value config text forwarded to every\n"
           "                   bench via DS_CONFIG\n"
           "  --jobs N         sweep worker threads (overrides DS_JOBS)\n"
           "  --sweep-mixes N  dual-core mixes in the sweep (0 disables)\n"
           "  --shard I/N      run only the sweep cells owned by shard I\n"
           "                   of N (default: DS_SHARD); writes a\n"
           "                   BENCH_run_all.shard-I.json fragment;\n"
           "                   I/N:balanced balances shards by recorded\n"
           "                   per-cell costs (needs --cache-dir)\n"
           "  --merge-shards DIR  join shard fragments in DIR into the\n"
           "                   canonical BENCH_run_all.json and exit\n"
           "  --cache-dir DIR  persistent alone-run cache directory\n"
           "                   (default: DS_CACHE_DIR; unset = off)\n";
}

/** The headline metric values of one sweep cell, in record order. */
std::vector<std::pair<std::string, double>>
cellMetrics(const dstrange::sim::Runner::WorkloadResult &res)
{
    std::vector<std::pair<std::string, double>> metrics = {
        {"non_rng_slowdown", res.avgNonRngSlowdown()},
        {"rng_slowdown", res.rngSlowdown()},
        {"unfairness", res.unfairnessIndex},
        {"weighted_speedup", res.weightedSpeedupNonRng},
        {"energy_nj", res.energyNj},
        {"bus_cycles", static_cast<double>(res.busCycles)},
    };
    // Service cells add their tail-latency metrics; all integer-valued
    // (cycle counts, request counts, a flag), so they take part in the
    // bit-identity comparison like everything else.
    if (res.service) {
        const dstrange::service::SloReport &s = *res.service;
        metrics.emplace_back("svc_completed",
                             static_cast<double>(s.completed));
        metrics.emplace_back("svc_shed", static_cast<double>(s.shed));
        metrics.emplace_back("svc_p50", static_cast<double>(s.p50));
        metrics.emplace_back("svc_p99", static_cast<double>(s.p99));
        metrics.emplace_back("svc_p999", static_cast<double>(s.p999));
        metrics.emplace_back("svc_goodput_rps", s.goodputRps);
        metrics.emplace_back("svc_saturated", s.saturated ? 1.0 : 0.0);
    }
    // Fault cells add their injection/mitigation counters — exact
    // integers, so they join the bit-identity comparison too.
    if (res.fault) {
        const dstrange::fault::FaultReport &f = *res.fault;
        metrics.emplace_back("fault_audited",
                             static_cast<double>(f.roundsAudited));
        metrics.emplace_back("fault_discarded",
                             static_cast<double>(f.roundsDiscarded));
        metrics.emplace_back("fault_corrupted_bits",
                             static_cast<double>(f.corruptedBits));
        metrics.emplace_back("fault_blacklisted",
                             static_cast<double>(f.blacklisted));
        metrics.emplace_back("fault_remapped",
                             static_cast<double>(f.remapped));
    }
    return metrics;
}

/** Set (or clear the override of) DS_FAST_FORWARD for child systems. */
void
setFastForwardEnv(const char *value)
{
#ifdef _WIN32
    _putenv_s("DS_FAST_FORWARD", value);
#else
    setenv("DS_FAST_FORWARD", value, /*overwrite=*/1);
#endif
}

/** Same for DS_BATCH (batched command retirement). */
void
setBatchEnv(const char *value)
{
#ifdef _WIN32
    _putenv_s("DS_BATCH", value);
#else
    setenv("DS_BATCH", value, /*overwrite=*/1);
#endif
}

/**
 * The sweep grid, stratified into workload tiers mirroring the bench
 * suite: the Figure-6 heavy dual-core mixes at 5 Gb/s, the Section-8.8
 * low-intensity duals at 640 Mb/s, and a Figure-2-style TRNG
 * throughput tier (rng-alone cells over both mechanisms), an open-loop
 * service tier sweeping offered RNG load over the designs (tail-latency
 * metrics), plus a multi-rank topology tier sweeping the address
 * interleaving on a two-rank channel. Each cell carries its tier label
 * for the fast-forward accounting.
 */
struct TieredGrid
{
    std::vector<dstrange::sim::SweepRunner::Cell> cells;
    std::vector<std::string> tiers; ///< Tier label per cell.
    std::vector<std::string> names; ///< Display name per cell.
};

TieredGrid
buildSweepGrid(unsigned n_mixes)
{
    using dstrange::sim::SweepRunner;
    TieredGrid grid;
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};

    auto addDualTier = [&](const std::string &tier, double mbps) {
        auto mixes = dstrange::workloads::dualCorePlottedMixes(mbps);
        if (mixes.size() > n_mixes)
            mixes.resize(n_mixes);
        for (const auto &mix : mixes) {
            for (const std::string &d : designs) {
                SweepRunner::Cell cell;
                cell.design = d;
                cell.spec = mix;
                grid.cells.push_back(std::move(cell));
                grid.tiers.push_back(tier);
                grid.names.push_back(tier + "/" + d + "/" + mix.name);
            }
        }
    };
    addDualTier("dual-5gbps", 5120.0);
    addDualTier("dual-lowint", 640.0);

    // TRNG-throughput tier: rng-alone cells across both mechanisms and
    // the Figure-2 intensity ladder (explicit configs, since the
    // mechanism is not a design-registry knob).
    for (const char *mech : {"drange", "quac"}) {
        for (double mbps :
             {80.0, 160.0, 320.0, 640.0, 1280.0, 2560.0, 5120.0}) {
            for (const char *d : {"oblivious", "greedy", "drstrange"}) {
                SweepRunner::Cell cell;
                dstrange::sim::SimConfig cfg = bench::baseConfig();
                cfg.mechanism =
                    *dstrange::trng::TrngMechanism::byName(mech);
                dstrange::sim::DesignRegistry::instance().apply(d, cfg);
                cell.config = std::move(cfg);
                cell.spec.name = std::string(mech) + "-rng" +
                                 std::to_string(static_cast<int>(mbps));
                cell.spec.rngThroughputMbps = mbps;
                grid.names.push_back("trng-sweep/" + std::string(d) +
                                     "/" + cell.spec.name);
                grid.cells.push_back(std::move(cell));
                grid.tiers.push_back("trng-sweep");
            }
        }
    }
    // Service tier: open-loop RNG-as-a-service cells (no traced cores)
    // sweeping offered load over the paper's designs, so run_all tracks
    // where each design's tail latency collapses. Explicit configs,
    // since service.* knobs are orthogonal to the design presets.
    for (double mbps : {2560.0, 5120.0, 10240.0}) {
        for (const char *d : {"oblivious", "greedy", "drstrange"}) {
            SweepRunner::Cell cell;
            dstrange::sim::SimConfig cfg = bench::baseConfig();
            dstrange::sim::DesignRegistry::instance().apply(d, cfg);
            cfg.service.enabled = true;
            cfg.service.offeredMbps = mbps;
            cfg.service.durationCycles = 20000;
            cfg.service.sloTargetCycles = 500;
            cell.config = std::move(cfg);
            cell.spec.name =
                "svc-poisson-" + std::to_string(static_cast<int>(mbps));
            grid.names.push_back("service/" + std::string(d) + "/" +
                                 cell.spec.name);
            grid.cells.push_back(std::move(cell));
            grid.tiers.push_back("service");
        }
    }
    // Fault tier: open-loop service cells under deterministic fault
    // injection (fault/<design>/<intensity>-<mit|nomit>), pairing each
    // fault intensity with the health monitor on and off. writeBenchJson
    // derives the goodput-retention comparison table from these names,
    // and bench/fault_resilience studies the same axis in depth.
    {
        struct Intensity {
            const char *label;
            unsigned weak;
            unsigned stuck;
        };
        for (const char *d : {"oblivious", "drstrange"}) {
            for (const Intensity &in :
                 {Intensity{"w8s2", 8, 2}, Intensity{"w16s4", 16, 4}}) {
                for (const bool mit : {true, false}) {
                    SweepRunner::Cell cell;
                    dstrange::sim::SimConfig cfg = bench::baseConfig();
                    dstrange::sim::DesignRegistry::instance().apply(d,
                                                                    cfg);
                    cfg.service.enabled = true;
                    cfg.service.offeredMbps = 5120.0;
                    cfg.service.durationCycles = 20000;
                    cfg.service.sloTargetCycles = 500;
                    cfg.fault.models = "bitflip,weak-cell,stuck-row";
                    cfg.fault.weakCells = in.weak;
                    cfg.fault.stuckRows = in.stuck;
                    cfg.fault.monitor = mit;
                    cell.config = std::move(cfg);
                    cell.spec.name = std::string(in.label) +
                                     (mit ? "-mit" : "-nomit");
                    grid.names.push_back("fault/" + std::string(d) +
                                         "/" + cell.spec.name);
                    grid.cells.push_back(std::move(cell));
                    grid.tiers.push_back("fault");
                }
            }
        }
    }
    // Multi-rank tier: a two-rank channel under each registered-default
    // interleaving, so the sweep (and its ResultStore cache keys, which
    // embed the mapping through the canonical config text) covers the
    // rank topology knobs.
    for (const char *mapping : {"row-bank-col-ch", "row-bank-col-rank-ch"}) {
        SweepRunner::Cell cell;
        dstrange::sim::SimConfig cfg = bench::baseConfig();
        dstrange::sim::DesignRegistry::instance().apply("drstrange", cfg);
        cfg.geometry.ranksPerChannel = 2;
        cfg.addressMapping = mapping;
        cell.config = std::move(cfg);
        cell.spec.name = std::string("2rank-") + mapping;
        cell.spec.apps = {"soplex"};
        cell.spec.rngThroughputMbps = 5120.0;
        grid.names.push_back("multirank/drstrange/" + cell.spec.name);
        grid.cells.push_back(std::move(cell));
        grid.tiers.push_back("multirank");
    }
    return grid;
}

/** Record the measured (parallel) phase's persistent-cache counters.
 *  The serial/step-1 reference phases bypass the cache entirely, so
 *  these counters describe exactly one SweepRunner. */
void
addCacheStats(dstrange::sim::SweepRunner &runner,
              bench::SweepRecord &sweep)
{
    const auto &store = runner.runner().resultStore();
    if (!store)
        return;
    sweep.cacheEnabled = true;
    sweep.cacheDir = store->dir();
    sweep.cacheHits = store->hits();
    sweep.cacheMisses = store->misses();
    sweep.cacheStores = store->stores();
}

/**
 * In-process sweep through sim::SweepRunner, timing every cell. The
 * parallel run (with per-cell stderr progress) measures throughput; a
 * serial reference run (fresh SweepRunner, fresh alone-run cache)
 * measures the true serial-vs-parallel speedup; a second serial run
 * with DS_FAST_FORWARD=0 measures the cycle-skipping engine's
 * wall-clock win, overall and per tier. All three runs' metric values
 * must be bit-identical. Returns the number of failures (failed cells,
 * each recorded with its error, plus a bit-identity mismatch).
 *
 * With a non-trivial @p shard, all three runs cover only the cells the
 * shard owns; the rest are recorded as skipped, so N such processes
 * with distinct indices produce fragments --merge-shards can join into
 * the full grid. When DS_CACHE_DIR is set, only the measured parallel
 * run uses the persistent alone-run cache (its hit/miss/store counts
 * land in the record); the serial and step-1 references bypass it so
 * their wall-clocks and the bit-identity check stay meaningful.
 */
int
runSweep(unsigned jobs, unsigned n_mixes,
         const dstrange::sim::SweepRunner::ShardSpec &shard,
         bench::SweepRecord &sweep)
{
    const TieredGrid grid = buildSweepGrid(n_mixes);
    const auto &cells = grid.cells;
    sweep.shardIndex = shard.index;
    sweep.shardCount = shard.count;

    // The comparison phases control DS_FAST_FORWARD/DS_BATCH
    // themselves; remember any inherited overrides and restore them
    // afterwards.
    const char *ff_env = std::getenv("DS_FAST_FORWARD");
    const std::string ff_orig = ff_env ? ff_env : "";
    const char *batch_env = std::getenv("DS_BATCH");
    const std::string batch_orig = batch_env ? batch_env : "";
    setFastForwardEnv("1");
    setBatchEnv("1");

    dstrange::sim::SweepRunner runner =
        bench::baseBuilder().buildSweepRunner(jobs);
    runner.setShard(shard);
    sweep.jobs = runner.jobs();
    // One owner assignment for all three phases. Computed here, with
    // the persistent store attached, so a balanced spec resolves
    // against the cost records exactly once; the reference runs below
    // (which bypass the cache) are pinned to the same assignment.
    const std::vector<unsigned> owners = runner.shardOwners(cells);
    std::size_t n_owned = 0;
    for (const unsigned owner : owners)
        if (shard.full() || owner == shard.index)
            ++n_owned;
    runner.setProgress([](std::size_t done, std::size_t total,
                          std::size_t cell, double cell_ms) {
        std::cerr << "[run_all] sweep " << done << "/" << total
                  << " (cell " << cell << ": "
                  << bench::num(cell_ms, 1) << " ms)\n";
    });

    std::vector<std::string> tier_names;
    for (const std::string &t : grid.tiers)
        if (std::find(tier_names.begin(), tier_names.end(), t) ==
            tier_names.end())
            tier_names.push_back(t);
    std::cout << "[run_all] sweep: ";
    if (!shard.full())
        std::cout << n_owned << " of " << cells.size() << " cells "
                  << "(shard " << shard.index << "/" << shard.count
                  << (shard.balanced ? ", balanced" : "") << ") in ";
    else
        std::cout << cells.size() << " cells in ";
    std::cout << tier_names.size() << " tiers on " << runner.jobs()
              << " thread(s) ... " << std::flush;
    bench::WallTimer timer;
    const auto results = runner.run(cells);
    sweep.wallMs = timer.elapsedMs();
    addCacheStats(runner, sweep);

    int failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        bench::SweepCellRecord rec;
        rec.name = grid.names[i];
        rec.wallMs = results[i].wallMs;
        rec.ok = results[i].ok;
        rec.skipped = results[i].skipped;
        rec.outcome = results[i].outcome;
        sweep.cellsTotalMs += results[i].wallMs;
        if (results[i].ok) {
            rec.metrics = cellMetrics(results[i].result);
        } else if (!results[i].skipped) {
            rec.error = results[i].error;
            ++failures;
        }
        sweep.cells.push_back(std::move(rec));
    }

    // Serial reference (fast-forward on): the parallel-speedup
    // denominator and the fast-forward-speedup numerator's partner.
    // With one worker the run above already is that reference. The
    // reference runs deliberately bypass the persistent cache
    // (cacheDir("")): loading the measured run's baselines would both
    // skew their wall-clock and let the step-1 phase skip the very
    // step-1 baseline computations the bit-identity check exists to
    // compare.
    std::vector<dstrange::sim::SweepRunner::CellResult> serial_owned;
    if (sweep.jobs > 1) {
        dstrange::sim::SweepRunner serial =
            bench::baseBuilder().cacheDir("").buildSweepRunner(1);
        serial.setShard(shard);
        serial.setShardOwners(owners);
        timer.reset();
        serial_owned = serial.run(cells);
        sweep.serialWallMs = timer.elapsedMs();
    } else {
        sweep.serialWallMs = sweep.wallMs;
    }
    const auto &serial_results = sweep.jobs > 1 ? serial_owned : results;

    // Step-1 reference: the same serial sweep ticking every bus cycle.
    setFastForwardEnv("0");
    dstrange::sim::SweepRunner step1 =
        bench::baseBuilder().cacheDir("").buildSweepRunner(1);
    step1.setShard(shard);
    step1.setShardOwners(owners);
    timer.reset();
    const auto step1_results = step1.run(cells);
    sweep.step1WallMs = timer.elapsedMs();

    // Batch-off reference: fast-forward on, batched command retirement
    // off — isolates what batching itself buys on top of span skipping.
    setFastForwardEnv("1");
    setBatchEnv("0");
    dstrange::sim::SweepRunner batchoff =
        bench::baseBuilder().cacheDir("").buildSweepRunner(1);
    batchoff.setShard(shard);
    batchoff.setShardOwners(owners);
    timer.reset();
    const auto batchoff_results = batchoff.run(cells);
    sweep.batchOffWallMs = timer.elapsedMs();
    if (ff_env)
        setFastForwardEnv(ff_orig.c_str());
    else
        setFastForwardEnv("1");
    if (batch_env)
        setBatchEnv(batch_orig.c_str());
    else
        setBatchEnv("1");

    // Per-tier fast-forward and batch accounting from the serial runs
    // (owned cells only; a merge re-sums tiers across shards).
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (results[i].skipped)
            continue;
        bench::FfTierRecord *tier = nullptr;
        for (auto &t : sweep.ffTiers)
            if (t.name == grid.tiers[i])
                tier = &t;
        if (!tier) {
            sweep.ffTiers.push_back({grid.tiers[i], 0.0, 0.0});
            tier = &sweep.ffTiers.back();
        }
        tier->step1Ms += step1_results[i].wallMs;
        tier->ffMs += serial_results[i].wallMs;
        bench::BatchTierRecord *btier = nullptr;
        for (auto &t : sweep.batchTiers)
            if (t.name == grid.tiers[i])
                btier = &t;
        if (!btier) {
            sweep.batchTiers.push_back({grid.tiers[i], 0.0, 0.0});
            btier = &sweep.batchTiers.back();
        }
        btier->offMs += batchoff_results[i].wallMs;
        btier->onMs += serial_results[i].wallMs;
    }

    // Bit-identity across the (up to) three runs.
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto check = [&](const auto &other) {
            if (results[i].ok != other[i].ok ||
                results[i].skipped != other[i].skipped ||
                (results[i].ok &&
                 cellMetrics(results[i].result) !=
                     cellMetrics(other[i].result)))
                sweep.bitIdentical = false;
        };
        if (sweep.jobs > 1)
            check(serial_results);
        check(step1_results);
        check(batchoff_results);
    }
    if (!sweep.bitIdentical)
        ++failures;

    std::cout << (failures == 0 ? "ok" : "FAIL") << " ("
              << bench::num(sweep.wallMs, 1) << " ms parallel, "
              << bench::num(sweep.serialWallMs, 1) << " ms serial, "
              << bench::num(sweep.speedup(), 2) << "x parallel speedup, "
              << bench::num(sweep.step1WallMs, 1) << " ms step-1, "
              << bench::num(sweep.ffSpeedup(), 2) << "x ff speedup, "
              << (sweep.bitIdentical ? "bit-identical" : "MISMATCH")
              << ")\n";
    if (sweep.cacheEnabled)
        std::cout << "[run_all] alone-run cache (" << sweep.cacheDir
                  << "): " << sweep.cacheHits << " hits, "
                  << sweep.cacheMisses << " misses, "
                  << sweep.cacheStores << " stores\n";
    for (const bench::FfTierRecord &t : sweep.ffTiers) {
        std::cout << "[run_all]   tier " << t.name << ": "
                  << bench::num(t.step1Ms, 1) << " ms step-1 -> "
                  << bench::num(t.ffMs, 1) << " ms ff ("
                  << bench::num(t.speedup(), 2) << "x)\n";
    }
    for (const bench::BatchTierRecord &t : sweep.batchTiers) {
        std::cout << "[run_all]   tier " << t.name << " batch: "
                  << bench::num(t.offMs, 1) << " ms off -> "
                  << bench::num(t.onMs, 1) << " ms on ("
                  << bench::num(t.speedup(), 2) << "x)\n";
    }
    for (std::size_t i = 0; i < results.size(); ++i)
        if (!results[i].ok && !results[i].skipped)
            std::cerr << "[run_all] sweep cell '" << sweep.cells[i].name
                      << "' failed: " << results[i].error << "\n";
    if (!sweep.bitIdentical)
        std::cerr << "[run_all] sweep: serial/parallel/step-1 metric "
                     "values differ — determinism bug\n";
    return failures;
}

/**
 * The record→replay trace tier: for each scheduler, record a dual-core
 * live run's controller-boundary request stream, replay it into an
 * identically-configured controller, and require the controller-side
 * metrics to match bit-for-bit. The tape files land next to the JSON
 * record (DS_BENCH_OUT) for reuse. Returns the number of failures.
 * Skipped in sharded runs — the tier is a whole-grid artefact like the
 * subprocess benches.
 */
int
runTraceTier(bench::TraceTierRecord &tier, const std::string &out_dir)
{
    const std::vector<std::string> schedulers = {"fr-fcfs",
                                                 "fr-fcfs-cap", "bliss"};
    dstrange::workloads::WorkloadSpec spec;
    spec.apps = {"soplex", "mcf"};
    spec.rngThroughputMbps = 5120.0;

    std::cout << "[run_all] trace tier: " << schedulers.size()
              << " record/replay cells ... " << std::flush;
    int failures = 0;
    for (const std::string &sched : schedulers) {
        dstrange::sim::SimConfig cfg = bench::baseConfig();
        dstrange::sim::DesignRegistry::instance().apply("drstrange",
                                                        cfg);
        cfg.scheduler = sched;
        const std::string path =
            out_dir + "/trace_replay_" + sched + ".bin";
        bench::TraceCellRecord cell;
        try {
            cell = bench::runTraceReplayCell(cfg, spec, path);
        } catch (const std::exception &e) {
            std::cerr << "[run_all] trace cell '" << sched
                      << "' failed: " << e.what() << "\n";
            ++failures;
        }
        cell.name = sched;
        tier.liveMs += cell.liveMs;
        tier.replayMs += cell.replayMs;
        tier.bitIdentical = tier.bitIdentical && cell.bitIdentical;
        tier.cells.push_back(std::move(cell));
    }
    if (!tier.bitIdentical)
        ++failures;
    std::cout << (failures == 0 ? "ok" : "FAIL") << " ("
              << bench::num(tier.liveMs, 1) << " ms live -> "
              << bench::num(tier.replayMs, 1) << " ms replay, "
              << bench::num(tier.speedup(), 2) << "x, "
              << (tier.bitIdentical ? "bit-identical" : "MISMATCH")
              << ")\n";
    for (const bench::TraceCellRecord &cell : tier.cells) {
        std::cout << "[run_all]   trace " << cell.name << ": "
                  << bench::num(cell.liveMs, 1) << " ms live -> "
                  << bench::num(cell.replayMs, 1) << " ms replay ("
                  << bench::num(cell.speedup(), 2) << "x, "
                  << cell.records << " records, "
                  << (cell.bitIdentical ? "bit-identical" : "MISMATCH")
                  << ")\n";
    }
    return failures;
}

/** One parsed BENCH_run_all.shard-I.json fragment. */
struct Fragment
{
    std::string path;
    unsigned index = 0;
    unsigned count = 1;
    std::uint64_t instrBudget = 0;
    std::string config;
    std::string fingerprint; ///< Build fingerprint ("" in old files).
    std::vector<bench::BenchRecord> records;
    bench::SweepRecord sweep;
};

/** Parse one shard fragment, throwing std::runtime_error /
 *  std::invalid_argument with the offending field on malformed input. */
Fragment
parseFragment(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const dstrange::JsonValue doc = dstrange::JsonValue::parse(buf.str());

    Fragment frag;
    frag.path = path;
    if (doc.at("schema").asString() != "drstrange-bench-v1")
        throw std::runtime_error("'" + path + "': unknown schema '" +
                                 doc.at("schema").asString() + "'");
    frag.instrBudget = doc.at("instr_budget").asU64();
    frag.config = doc.at("config").asString();
    // Fragments written before the fingerprint field existed parse as
    // "" and fail the merge-time equality check below with a clear
    // message rather than merging silently.
    if (const dstrange::JsonValue *fp = doc.find("fingerprint"))
        frag.fingerprint = fp->asString();

    for (const auto &rv : doc.at("results").array()) {
        bench::BenchRecord rec;
        rec.name = rv.at("name").asString();
        rec.wallMs = rv.at("wall_ms").asDouble();
        rec.exitCode = static_cast<int>(rv.at("exit_code").asDouble());
        for (const auto &[metric, value] : rv.at("metrics").members())
            rec.metrics.emplace_back(metric, value.asDouble());
        frag.records.push_back(std::move(rec));
    }

    const dstrange::JsonValue &sv = doc.at("sweep");
    const dstrange::JsonValue *shard = sv.find("shard");
    if (!shard)
        throw std::runtime_error(
            "'" + path + "': no \"shard\" record — not a fragment "
            "(was it written by run_all --shard?)");
    frag.index = static_cast<unsigned>(shard->at("index").asU64());
    frag.count = static_cast<unsigned>(shard->at("count").asU64());
    bench::SweepRecord &sweep = frag.sweep;
    sweep.jobs = static_cast<unsigned>(sv.at("jobs").asU64());
    sweep.wallMs = sv.at("wall_ms").asDouble();
    sweep.serialWallMs = sv.at("serial_wall_ms").asDouble();
    sweep.cellsTotalMs = sv.at("cells_total_ms").asDouble();
    sweep.bitIdentical = sv.at("bit_identical").asBool();
    const dstrange::JsonValue &ff = sv.at("fastforward");
    sweep.step1WallMs = ff.at("step1_wall_ms").asDouble();
    for (const auto &tv : ff.at("tiers").array()) {
        bench::FfTierRecord tier;
        tier.name = tv.at("name").asString();
        tier.step1Ms = tv.at("step1_wall_ms").asDouble();
        tier.ffMs = tv.at("ff_wall_ms").asDouble();
        sweep.ffTiers.push_back(std::move(tier));
    }
    // Fragments written before the batch record existed merge with
    // zeroed batch wall-clocks rather than failing.
    if (const dstrange::JsonValue *batch = sv.find("batch")) {
        sweep.batchOffWallMs = batch->at("off_wall_ms").asDouble();
        for (const auto &tv : batch->at("tiers").array()) {
            bench::BatchTierRecord tier;
            tier.name = tv.at("name").asString();
            tier.offMs = tv.at("off_wall_ms").asDouble();
            tier.onMs = tv.at("on_wall_ms").asDouble();
            sweep.batchTiers.push_back(std::move(tier));
        }
    }
    if (const dstrange::JsonValue *cache = sv.find("cache")) {
        sweep.cacheEnabled = true;
        sweep.cacheDir = cache->at("dir").asString();
        sweep.cacheHits = cache->at("hits").asU64();
        sweep.cacheMisses = cache->at("misses").asU64();
        sweep.cacheStores = cache->at("stores").asU64();
    }
    for (const auto &cv : sv.at("cells").array()) {
        bench::SweepCellRecord cell;
        cell.name = cv.at("name").asString();
        cell.wallMs = cv.at("wall_ms").asDouble();
        cell.ok = cv.at("ok").asBool();
        if (const dstrange::JsonValue *sk = cv.find("skipped"))
            cell.skipped = sk->asBool();
        if (const dstrange::JsonValue *err = cv.find("error"))
            cell.error = err->asString();
        // Fragments written before the outcome field existed keep the
        // "ok" default.
        if (const dstrange::JsonValue *oc = cv.find("outcome"))
            cell.outcome = oc->asString();
        for (const auto &[metric, value] : cv.at("metrics").members())
            cell.metrics.emplace_back(metric, value.asDouble());
        sweep.cells.push_back(std::move(cell));
    }
    return frag;
}

/**
 * Join the BENCH_run_all.shard-I.json fragments found in @p dir into
 * the canonical BENCH_run_all.json in @p out_dir. Validates that the
 * fragments form one complete shard family (indices 0..N-1 of the
 * same N, identical config/budget/grid) and that the non-skipped
 * cells are a disjoint exact cover of the grid, so the merged cell
 * metrics are bit-identical to what one unsharded process would have
 * recorded. The merged record carries per-shard wall-clock and cache
 * summaries, and extends the per-shard 3-way bit-identity verdict:
 * merged bit_identical = every fragment's verdict AND the cover check.
 * Returns the process exit code.
 */
int
mergeShards(const std::string &dir, const std::string &out_dir)
{
    std::vector<Fragment> frags;
    try {
        std::vector<std::string> paths;
        std::error_code ec;
        for (const auto &entry : fs::directory_iterator(dir, ec)) {
            const std::string leaf = entry.path().filename().string();
            if (leaf.rfind("BENCH_run_all.shard-", 0) == 0 &&
                leaf.size() > 5 &&
                leaf.compare(leaf.size() - 5, 5, ".json") == 0)
                paths.push_back(entry.path().string());
        }
        if (ec) {
            std::cerr << "--merge-shards: cannot list '" << dir
                      << "': " << ec.message() << "\n";
            return 2;
        }
        std::sort(paths.begin(), paths.end());
        for (const std::string &p : paths)
            frags.push_back(parseFragment(p));
    } catch (const std::exception &e) {
        std::cerr << "--merge-shards: " << e.what() << "\n";
        return 2;
    }
    // Shard-index order (path sort misorders shard-10 before shard-2),
    // so the merged per-shard summary reads in index order.
    std::sort(frags.begin(), frags.end(),
              [](const Fragment &a, const Fragment &b) {
                  return a.index < b.index;
              });
    if (frags.empty()) {
        std::cerr << "--merge-shards: no BENCH_run_all.shard-*.json in '"
                  << dir << "'\n";
        return 2;
    }

    // One complete family: N fragments, indices 0..N-1, one grid.
    const unsigned count = frags[0].count;
    if (frags.size() != count) {
        std::cerr << "--merge-shards: found " << frags.size()
                  << " fragment(s) for a " << count << "-shard run\n";
        return 2;
    }
    std::vector<bool> seen(count, false);
    for (const Fragment &f : frags) {
        if (f.count != count || f.index >= count || seen[f.index]) {
            std::cerr << "--merge-shards: '" << f.path
                      << "' has shard " << f.index << "/" << f.count
                      << ", inconsistent with the other fragments\n";
            return 2;
        }
        seen[f.index] = true;
    }
    for (const Fragment &f : frags) {
        if (f.config != frags[0].config ||
            f.instrBudget != frags[0].instrBudget) {
            std::cerr << "--merge-shards: '" << f.path << "' ran a "
                      << "different configuration than '"
                      << frags[0].path << "'\n";
            return 2;
        }
        // Fragments from different builds (or schema generations) are
        // not comparable cell-for-cell even when their configs match.
        if (f.fingerprint != frags[0].fingerprint) {
            std::cerr << "--merge-shards: '" << f.path
                      << "' has build fingerprint '" << f.fingerprint
                      << "' but '" << frags[0].path << "' has '"
                      << frags[0].fingerprint
                      << "'; fragments must come from one build of one "
                         "simulator — re-run the shards\n";
            return 2;
        }
        if (f.sweep.cells.size() != frags[0].sweep.cells.size()) {
            std::cerr << "--merge-shards: '" << f.path << "' swept "
                      << f.sweep.cells.size() << " cells, expected "
                      << frags[0].sweep.cells.size() << "\n";
            return 2;
        }
        for (std::size_t i = 0; i < f.sweep.cells.size(); ++i)
            if (f.sweep.cells[i].name != frags[0].sweep.cells[i].name) {
                std::cerr << "--merge-shards: cell " << i << " is '"
                          << f.sweep.cells[i].name << "' in '" << f.path
                          << "' but '" << frags[0].sweep.cells[i].name
                          << "' in '" << frags[0].path << "'\n";
                return 2;
            }
    }
    // The merged header re-derives instr_budget/config from this
    // process's environment; it must describe what the shards ran.
    const dstrange::sim::SimConfig local = bench::baseConfig();
    if (dstrange::sim::serializeConfig(local) != frags[0].config ||
        local.instrBudget != frags[0].instrBudget) {
        std::cerr << "--merge-shards: the shards ran with a different "
                     "DS_INSTR_BUDGET/DS_CONFIG than this process; "
                     "re-run the merge under the same environment\n";
        return 2;
    }

    // Disjoint exact cover, then assemble the merged record.
    bench::SweepRecord merged;
    merged.merged = true;
    merged.shardCount = count;
    merged.jobs = frags[0].sweep.jobs;
    int failures = 0;
    bool cover_ok = true;
    for (std::size_t i = 0; i < frags[0].sweep.cells.size(); ++i) {
        const Fragment *owner = nullptr;
        bool duplicated = false;
        for (const Fragment &f : frags) {
            if (f.sweep.cells[i].skipped)
                continue;
            if (owner)
                duplicated = true;
            else
                owner = &f;
        }
        if (!owner || duplicated) {
            std::cerr << "--merge-shards: cell '"
                      << frags[0].sweep.cells[i].name
                      << (owner ? "' was run by more than one shard\n"
                                : "' was run by no shard\n");
            cover_ok = false;
            continue;
        }
        bench::SweepCellRecord cell = owner->sweep.cells[i];
        if (!cell.ok)
            ++failures;
        merged.cells.push_back(std::move(cell));
    }
    if (!cover_ok) {
        std::cerr << "--merge-shards: fragments do not partition the "
                     "grid (mixed shard specs or stale files?)\n";
        return 2;
    }

    merged.bitIdentical = true;
    for (const Fragment &f : frags) {
        const bench::SweepRecord &s = f.sweep;
        merged.bitIdentical = merged.bitIdentical && s.bitIdentical;
        // Shards run concurrently: the merged parallel wall is the
        // slowest shard, while the serial references add up.
        merged.wallMs = std::max(merged.wallMs, s.wallMs);
        merged.serialWallMs += s.serialWallMs;
        merged.step1WallMs += s.step1WallMs;
        merged.cellsTotalMs += s.cellsTotalMs;
        merged.cacheEnabled = merged.cacheEnabled || s.cacheEnabled;
        if (merged.cacheDir.empty())
            merged.cacheDir = s.cacheDir;
        merged.cacheHits += s.cacheHits;
        merged.cacheMisses += s.cacheMisses;
        merged.cacheStores += s.cacheStores;
        for (const bench::FfTierRecord &tier : s.ffTiers) {
            bench::FfTierRecord *dst = nullptr;
            for (auto &t : merged.ffTiers)
                if (t.name == tier.name)
                    dst = &t;
            if (!dst) {
                merged.ffTiers.push_back({tier.name, 0.0, 0.0});
                dst = &merged.ffTiers.back();
            }
            dst->step1Ms += tier.step1Ms;
            dst->ffMs += tier.ffMs;
        }
        merged.batchOffWallMs += s.batchOffWallMs;
        for (const bench::BatchTierRecord &tier : s.batchTiers) {
            bench::BatchTierRecord *dst = nullptr;
            for (auto &t : merged.batchTiers)
                if (t.name == tier.name)
                    dst = &t;
            if (!dst) {
                merged.batchTiers.push_back({tier.name, 0.0, 0.0});
                dst = &merged.batchTiers.back();
            }
            dst->offMs += tier.offMs;
            dst->onMs += tier.onMs;
        }
        bench::ShardSummaryRecord summary;
        summary.index = f.index;
        summary.jobs = s.jobs;
        summary.wallMs = s.wallMs;
        summary.serialWallMs = s.serialWallMs;
        summary.step1WallMs = s.step1WallMs;
        summary.bitIdentical = s.bitIdentical;
        summary.cacheHits = s.cacheHits;
        summary.cacheMisses = s.cacheMisses;
        summary.cacheStores = s.cacheStores;
        merged.shards.push_back(summary);
    }
    if (!merged.bitIdentical)
        ++failures;

    std::vector<bench::BenchRecord> records;
    for (const Fragment &f : frags)
        for (const bench::BenchRecord &rec : f.records) {
            if (rec.exitCode != 0)
                ++failures;
            records.push_back(rec);
        }

    const std::string path =
        bench::writeBenchJson("run_all", records, &merged, out_dir);
    if (path.empty()) {
        std::cerr << "failed to write BENCH_run_all.json into '"
                  << out_dir << "'\n";
        return 1;
    }
    std::cout << "[run_all] merged " << count << " shard fragment(s): "
              << merged.cells.size() << " cells, "
              << (merged.bitIdentical ? "bit-identical"
                                      : "bit-identity MISMATCH")
              << ", " << failures << " failure(s)\n";
    if (merged.cacheEnabled)
        std::cout << "[run_all] alone-run cache (" << merged.cacheDir
                  << "): " << merged.cacheHits << " hits, "
                  << merged.cacheMisses << " misses, "
                  << merged.cacheStores << " stores\n";
    std::cout << "wrote " << path << "\n";
    return failures == 0 ? 0 : 1;
}

/** Decode a std::system() status into the child's exit code. */
int
exitCodeOf(int status)
{
    if (status == -1)
        return -1;
#ifdef WIFEXITED
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -1;
#else
    return status;
#endif
}

} // namespace

int
main(int argc, char **argv)
{
    // An inherited malformed DS_CONFIG would otherwise fail every child
    // bench and then kill the final writeBenchJson (which parses it
    // too, via bench::baseConfig()) — reject it up front.
    if (const char *inherited = std::getenv("DS_CONFIG")) {
        try {
            dstrange::sim::SimulationBuilder::fromText(inherited);
        } catch (const std::exception &e) {
            std::cerr << "DS_CONFIG: " << e.what() << "\n";
            return 2;
        }
    }

    const std::vector<std::string> all_benches = allBenches();
    std::vector<std::string> selected = quickBenches(all_benches);
    std::string out_dir = bench::benchOutputDir();
    std::string merge_dir;      // non-empty = --merge-shards mode.
    unsigned jobs = 0;          // 0 = DS_JOBS / hardware_concurrency.
    unsigned sweep_mixes = 8;   // 0 disables the in-process sweep.

    // DS_SHARD is only validated once we know the invocation actually
    // shards — a malformed leftover value must not break --help,
    // --list, or --merge-shards.
    dstrange::sim::SweepRunner::ShardSpec shard;
    bool shard_from_flag = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all") {
            selected = all_benches;
        } else if (arg == "--only") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            const std::string pat = argv[++i];
            selected.clear();
            for (const std::string &name : all_benches)
                if (name.find(pat) != std::string::npos)
                    selected.push_back(name);
            if (selected.empty()) {
                std::cerr << "no bench matches '" << pat << "'\n";
                return 2;
            }
        } else if (arg == "--list") {
            for (const std::string &name : all_benches)
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--out") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            out_dir = argv[++i];
        } else if (arg == "--config") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            const std::string text = argv[++i];
            try {
                // Validate before fanning out to every child bench.
                dstrange::sim::SimulationBuilder::fromText(text);
            } catch (const std::exception &e) {
                std::cerr << "--config: " << e.what() << "\n";
                return 2;
            }
#ifdef _WIN32
            _putenv_s("DS_CONFIG", text.c_str());
#else
            setenv("DS_CONFIG", text.c_str(), /*overwrite=*/1);
#endif
        } else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            char *end = nullptr;
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            if (end == nullptr || *end != '\0') {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--sweep-mixes") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            char *end = nullptr;
            sweep_mixes = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            if (end == nullptr || *end != '\0') {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--shard") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            try {
                shard = dstrange::sim::SweepRunner::ShardSpec::parse(
                    argv[++i]);
                shard_from_flag = true;
            } catch (const std::exception &e) {
                std::cerr << "--shard: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--merge-shards") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            merge_dir = argv[++i];
        } else if (arg == "--cache-dir") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            const char *cache_dir = argv[++i];
            try {
                // Validate eagerly: openFromEnv degrades silently-ish,
                // but an explicit flag deserves a hard diagnostic.
                dstrange::sim::ResultStore probe(cache_dir);
            } catch (const std::exception &e) {
                std::cerr << "--cache-dir: " << e.what() << "\n";
                return 2;
            }
            // Via the environment so in-process SweepRunners and every
            // child bench share the same persistent cache.
#ifdef _WIN32
            _putenv_s("DS_CACHE_DIR", cache_dir);
#else
            setenv("DS_CACHE_DIR", cache_dir, /*overwrite=*/1);
#endif
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (!merge_dir.empty())
        return mergeShards(merge_dir, out_dir);

    if (!shard_from_flag) {
        try {
            shard = dstrange::sim::SweepRunner::ShardSpec::fromEnv();
        } catch (const std::exception &e) {
            std::cerr << "DS_SHARD: " << e.what() << "\n";
            return 2;
        }
    }

    // Cross-process sharding: every shard sweeps its slice of the
    // grid, but the subprocess benches are whole-program artefacts —
    // shard 0 runs them once for the family, the others skip them.
    if (!shard.full() && shard.index != 0) {
        std::cout << "[run_all] shard " << shard.index << "/"
                  << shard.count
                  << ": skipping bench subprocesses (shard 0 runs "
                     "them)\n";
        selected.clear();
    }

    // Bench executables are siblings of this harness in the build tree.
    const fs::path self(argv[0]);
    const fs::path bin_dir =
        self.has_parent_path() ? self.parent_path() : fs::path(".");

    std::vector<bench::BenchRecord> records;
    int failures = 0;
    for (const std::string &name : selected) {
        const fs::path exe = bin_dir / name;
        std::error_code ec;
        if (!fs::exists(exe, ec)) {
            std::cerr << "missing bench executable: " << exe.string()
                      << " (build the bench targets first)\n";
            ++failures;
            bench::BenchRecord rec;
            rec.name = name;
            rec.exitCode = -1;
            records.push_back(rec);
            continue;
        }

        std::cout << "[run_all] " << name << " ... " << std::flush;
        // Built piecewise: chained operator+ here trips a GCC 12
        // -Wrestrict false positive (GCC PR105651) under -O2 -Werror.
        std::string cmd = "\"";
        cmd += exe.string();
#ifdef _WIN32
        cmd += "\" > NUL 2>&1";
#else
        cmd += "\" > /dev/null 2>&1";
#endif
        bench::WallTimer timer;
        const int status = std::system(cmd.c_str());
        bench::BenchRecord rec;
        rec.name = name;
        rec.wallMs = timer.elapsedMs();
        rec.exitCode = exitCodeOf(status);
        std::cout << (rec.exitCode == 0 ? "ok" : "FAIL") << " ("
                  << bench::num(rec.wallMs, 1) << " ms)\n";
        if (rec.exitCode != 0)
            ++failures;
        records.push_back(rec);
    }

    // In-process parallel sweep. A throwing cell is recorded in the
    // JSON (ok=false plus its error) and fails the whole run — run_all
    // must never exit 0 over a partial record.
    bench::SweepRecord sweep;
    const bool ran_sweep = sweep_mixes > 0;
    if (ran_sweep)
        failures += runSweep(jobs, sweep_mixes, shard, sweep);

    // Record→replay trace tier (whole-grid artefact: only unsharded
    // runs execute it, like the subprocess benches).
    if (ran_sweep && shard.full()) {
        sweep.hasTrace = true;
        failures += runTraceTier(sweep.trace, out_dir);
    }

    // A shard writes a fragment; --merge-shards joins the family back
    // into the canonical BENCH_run_all.json.
    const std::string leaf =
        shard.full() ? ""
                     : "BENCH_run_all.shard-" +
                           std::to_string(shard.index) + ".json";
    const std::string path = bench::writeBenchJson(
        "run_all", records, ran_sweep ? &sweep : nullptr, out_dir, leaf);
    if (path.empty()) {
        std::cerr << "failed to write " <<
            (leaf.empty() ? "BENCH_run_all.json" : leaf)
                  << " into '" << out_dir << "'\n";
        return 1;
    }
    std::cout << "\nwrote " << path << " (" << records.size()
              << " results, " << failures << " failures)\n";
    return failures == 0 ? 0 : 1;
}
