/**
 * @file
 * run_all: harness that executes a selection of the figure/section
 * reproduction benchmarks as subprocesses, times each one, runs an
 * in-process design x workload sweep through sim::SweepRunner (per-cell
 * and aggregate wall-clock plus the measured parallel speedup), and
 * writes a machine-readable BENCH_run_all.json perf record. This seeds
 * the perf-trajectory tracking: diffing wall_ms across commits shows
 * which PRs made the simulator faster or slower, and the sweep record's
 * "speedup" is the serial-vs-parallel datapoint.
 *
 * The sweep's metric values are bit-identical for any DS_JOBS value:
 * each cell is a pure function of its configuration and workload spec,
 * so only the wall-clock fields change between serial and parallel runs.
 *
 * Usage:
 *   run_all                 # run the quick default selection
 *   run_all --all           # run every bench executable
 *   run_all --only fig1     # run benches whose name contains "fig1"
 *   run_all --list          # print the known bench names and exit
 *   run_all --out DIR       # write BENCH_run_all.json into DIR
 *   run_all --config TEXT   # key=value config text forwarded to every
 *                           # bench via DS_CONFIG (see sim/config_text.h)
 *   run_all --jobs N        # sweep worker threads (overrides DS_JOBS)
 *   run_all --sweep-mixes N # dual-core mixes in the sweep (0 disables;
 *                           # default 8)
 *
 * Environment:
 *   DS_INSTR_BUDGET  per-core instruction budget forwarded to benches
 *   DS_CONFIG        base-config key=value overrides forwarded to benches
 *   DS_BENCH_OUT     default output directory for BENCH_*.json
 *   DS_JOBS          sweep worker threads (default hardware_concurrency)
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

namespace fs = std::filesystem;

#ifndef DRSTRANGE_BENCH_LIST
#error "DRSTRANGE_BENCH_LIST must be defined by bench/CMakeLists.txt"
#endif

/**
 * Every bench executable built by bench/CMakeLists.txt, injected at
 * configure time so the inventory has a single source of truth (the
 * optional micro_components is present only when it was built).
 */
std::vector<std::string>
allBenches()
{
    std::vector<std::string> names;
    const std::string list = DRSTRANGE_BENCH_LIST;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size()
                                                           : comma;
        if (end > pos)
            names.push_back(list.substr(pos, end - pos));
        pos = end + 1;
    }
    return names;
}

/**
 * Quick default selection: one bench per major subsystem (TRNG
 * throughput, dual-core system comparison, component microbenchmarks)
 * so a default run finishes in well under a minute. Restricted to
 * benches that were actually built.
 */
std::vector<std::string>
quickBenches(const std::vector<std::string> &all)
{
    const std::vector<std::string> wanted = {
        "fig02_trng_throughput",
        "fig06_dualcore_perf",
        "micro_components",
    };
    std::vector<std::string> names;
    for (const std::string &name : wanted)
        for (const std::string &built : all)
            if (built == name) {
                names.push_back(name);
                break;
            }
    return names;
}

void
usage(const char *prog)
{
    std::cout << "usage: " << prog
              << " [--all] [--only SUBSTR] [--list] [--out DIR]"
                 " [--config TEXT] [--jobs N] [--sweep-mixes N]\n";
}

/** The headline metric values of one sweep cell, in record order. */
std::vector<std::pair<std::string, double>>
cellMetrics(const dstrange::sim::Runner::WorkloadResult &res)
{
    return {
        {"non_rng_slowdown", res.avgNonRngSlowdown()},
        {"rng_slowdown", res.rngSlowdown()},
        {"unfairness", res.unfairnessIndex},
        {"weighted_speedup", res.weightedSpeedupNonRng},
        {"energy_nj", res.energyNj},
        {"bus_cycles", static_cast<double>(res.busCycles)},
    };
}

/** Set (or clear the override of) DS_FAST_FORWARD for child systems. */
void
setFastForwardEnv(const char *value)
{
#ifdef _WIN32
    _putenv_s("DS_FAST_FORWARD", value);
#else
    setenv("DS_FAST_FORWARD", value, /*overwrite=*/1);
#endif
}

/**
 * The sweep grid, stratified into workload tiers mirroring the bench
 * suite: the Figure-6 heavy dual-core mixes at 5 Gb/s, the Section-8.8
 * low-intensity duals at 640 Mb/s, and a Figure-2-style TRNG
 * throughput tier (rng-alone cells over both mechanisms). Each cell
 * carries its tier label for the fast-forward accounting.
 */
struct TieredGrid
{
    std::vector<dstrange::sim::SweepRunner::Cell> cells;
    std::vector<std::string> tiers; ///< Tier label per cell.
    std::vector<std::string> names; ///< Display name per cell.
};

TieredGrid
buildSweepGrid(unsigned n_mixes)
{
    using dstrange::sim::SweepRunner;
    TieredGrid grid;
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};

    auto addDualTier = [&](const std::string &tier, double mbps) {
        auto mixes = dstrange::workloads::dualCorePlottedMixes(mbps);
        if (mixes.size() > n_mixes)
            mixes.resize(n_mixes);
        for (const auto &mix : mixes) {
            for (const std::string &d : designs) {
                SweepRunner::Cell cell;
                cell.design = d;
                cell.spec = mix;
                grid.cells.push_back(std::move(cell));
                grid.tiers.push_back(tier);
                grid.names.push_back(tier + "/" + d + "/" + mix.name);
            }
        }
    };
    addDualTier("dual-5gbps", 5120.0);
    addDualTier("dual-lowint", 640.0);

    // TRNG-throughput tier: rng-alone cells across both mechanisms and
    // the Figure-2 intensity ladder (explicit configs, since the
    // mechanism is not a design-registry knob).
    for (const char *mech : {"drange", "quac"}) {
        for (double mbps :
             {80.0, 160.0, 320.0, 640.0, 1280.0, 2560.0, 5120.0}) {
            for (const char *d : {"oblivious", "greedy", "drstrange"}) {
                SweepRunner::Cell cell;
                dstrange::sim::SimConfig cfg = bench::baseConfig();
                cfg.mechanism =
                    *dstrange::trng::TrngMechanism::byName(mech);
                dstrange::sim::DesignRegistry::instance().apply(d, cfg);
                cell.config = std::move(cfg);
                cell.spec.name = std::string(mech) + "-rng" +
                                 std::to_string(static_cast<int>(mbps));
                cell.spec.rngThroughputMbps = mbps;
                grid.names.push_back("trng-sweep/" + std::string(d) +
                                     "/" + cell.spec.name);
                grid.cells.push_back(std::move(cell));
                grid.tiers.push_back("trng-sweep");
            }
        }
    }
    return grid;
}

/**
 * In-process sweep through sim::SweepRunner, timing every cell. The
 * parallel run (with per-cell stderr progress) measures throughput; a
 * serial reference run (fresh SweepRunner, fresh alone-run cache)
 * measures the true serial-vs-parallel speedup; a second serial run
 * with DS_FAST_FORWARD=0 measures the cycle-skipping engine's
 * wall-clock win, overall and per tier. All three runs' metric values
 * must be bit-identical. Returns the number of failures (failed cells,
 * each recorded with its error, plus a bit-identity mismatch).
 */
int
runSweep(unsigned jobs, unsigned n_mixes, bench::SweepRecord &sweep)
{
    const TieredGrid grid = buildSweepGrid(n_mixes);
    const auto &cells = grid.cells;

    // The comparison phases control DS_FAST_FORWARD themselves;
    // remember any inherited override and restore it afterwards.
    const char *ff_env = std::getenv("DS_FAST_FORWARD");
    const std::string ff_orig = ff_env ? ff_env : "";
    setFastForwardEnv("1");

    dstrange::sim::SweepRunner runner =
        bench::baseBuilder().buildSweepRunner(jobs);
    sweep.jobs = runner.jobs();
    runner.setProgress([](std::size_t done, std::size_t total,
                          std::size_t cell, double cell_ms) {
        std::cerr << "[run_all] sweep " << done << "/" << total
                  << " (cell " << cell << ": "
                  << bench::num(cell_ms, 1) << " ms)\n";
    });

    std::cout << "[run_all] sweep: " << cells.size() << " cells in 3 "
              << "tiers on " << runner.jobs() << " thread(s) ... "
              << std::flush;
    bench::WallTimer timer;
    const auto results = runner.run(cells);
    sweep.wallMs = timer.elapsedMs();

    int failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        bench::SweepCellRecord rec;
        rec.name = grid.names[i];
        rec.wallMs = results[i].wallMs;
        rec.ok = results[i].ok;
        sweep.cellsTotalMs += results[i].wallMs;
        if (results[i].ok) {
            rec.metrics = cellMetrics(results[i].result);
        } else {
            rec.error = results[i].error;
            ++failures;
        }
        sweep.cells.push_back(std::move(rec));
    }

    // Serial reference (fast-forward on): the parallel-speedup
    // denominator and the fast-forward-speedup numerator's partner.
    // With one worker the run above already is that reference.
    std::vector<dstrange::sim::SweepRunner::CellResult> serial_owned;
    if (sweep.jobs > 1) {
        dstrange::sim::SweepRunner serial =
            bench::baseBuilder().buildSweepRunner(1);
        timer.reset();
        serial_owned = serial.run(cells);
        sweep.serialWallMs = timer.elapsedMs();
    } else {
        sweep.serialWallMs = sweep.wallMs;
    }
    const auto &serial_results = sweep.jobs > 1 ? serial_owned : results;

    // Step-1 reference: the same serial sweep ticking every bus cycle.
    setFastForwardEnv("0");
    dstrange::sim::SweepRunner step1 =
        bench::baseBuilder().buildSweepRunner(1);
    timer.reset();
    const auto step1_results = step1.run(cells);
    sweep.step1WallMs = timer.elapsedMs();
    if (ff_env)
        setFastForwardEnv(ff_orig.c_str());
    else
        setFastForwardEnv("1");

    // Per-tier fast-forward accounting from the two serial runs.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        bench::FfTierRecord *tier = nullptr;
        for (auto &t : sweep.ffTiers)
            if (t.name == grid.tiers[i])
                tier = &t;
        if (!tier) {
            sweep.ffTiers.push_back({grid.tiers[i], 0.0, 0.0});
            tier = &sweep.ffTiers.back();
        }
        tier->step1Ms += step1_results[i].wallMs;
        tier->ffMs += serial_results[i].wallMs;
    }

    // Bit-identity across the (up to) three runs.
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto check = [&](const auto &other) {
            if (results[i].ok != other[i].ok ||
                (results[i].ok &&
                 cellMetrics(results[i].result) !=
                     cellMetrics(other[i].result)))
                sweep.bitIdentical = false;
        };
        if (sweep.jobs > 1)
            check(serial_results);
        check(step1_results);
    }
    if (!sweep.bitIdentical)
        ++failures;

    std::cout << (failures == 0 ? "ok" : "FAIL") << " ("
              << bench::num(sweep.wallMs, 1) << " ms parallel, "
              << bench::num(sweep.serialWallMs, 1) << " ms serial, "
              << bench::num(sweep.speedup(), 2) << "x parallel speedup, "
              << bench::num(sweep.step1WallMs, 1) << " ms step-1, "
              << bench::num(sweep.ffSpeedup(), 2) << "x ff speedup, "
              << (sweep.bitIdentical ? "bit-identical" : "MISMATCH")
              << ")\n";
    for (const bench::FfTierRecord &t : sweep.ffTiers) {
        std::cout << "[run_all]   tier " << t.name << ": "
                  << bench::num(t.step1Ms, 1) << " ms step-1 -> "
                  << bench::num(t.ffMs, 1) << " ms ff ("
                  << bench::num(t.speedup(), 2) << "x)\n";
    }
    for (std::size_t i = 0; i < results.size(); ++i)
        if (!results[i].ok)
            std::cerr << "[run_all] sweep cell '" << sweep.cells[i].name
                      << "' failed: " << results[i].error << "\n";
    if (!sweep.bitIdentical)
        std::cerr << "[run_all] sweep: serial/parallel/step-1 metric "
                     "values differ — determinism bug\n";
    return failures;
}

/** Decode a std::system() status into the child's exit code. */
int
exitCodeOf(int status)
{
    if (status == -1)
        return -1;
#ifdef WIFEXITED
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -1;
#else
    return status;
#endif
}

} // namespace

int
main(int argc, char **argv)
{
    // An inherited malformed DS_CONFIG would otherwise fail every child
    // bench and then kill the final writeBenchJson (which parses it
    // too, via bench::baseConfig()) — reject it up front.
    if (const char *inherited = std::getenv("DS_CONFIG")) {
        try {
            dstrange::sim::SimulationBuilder::fromText(inherited);
        } catch (const std::exception &e) {
            std::cerr << "DS_CONFIG: " << e.what() << "\n";
            return 2;
        }
    }

    const std::vector<std::string> all_benches = allBenches();
    std::vector<std::string> selected = quickBenches(all_benches);
    std::string out_dir = bench::benchOutputDir();
    unsigned jobs = 0;          // 0 = DS_JOBS / hardware_concurrency.
    unsigned sweep_mixes = 8;   // 0 disables the in-process sweep.

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all") {
            selected = all_benches;
        } else if (arg == "--only") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            const std::string pat = argv[++i];
            selected.clear();
            for (const std::string &name : all_benches)
                if (name.find(pat) != std::string::npos)
                    selected.push_back(name);
            if (selected.empty()) {
                std::cerr << "no bench matches '" << pat << "'\n";
                return 2;
            }
        } else if (arg == "--list") {
            for (const std::string &name : all_benches)
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--out") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            out_dir = argv[++i];
        } else if (arg == "--config") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            const std::string text = argv[++i];
            try {
                // Validate before fanning out to every child bench.
                dstrange::sim::SimulationBuilder::fromText(text);
            } catch (const std::exception &e) {
                std::cerr << "--config: " << e.what() << "\n";
                return 2;
            }
#ifdef _WIN32
            _putenv_s("DS_CONFIG", text.c_str());
#else
            setenv("DS_CONFIG", text.c_str(), /*overwrite=*/1);
#endif
        } else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            char *end = nullptr;
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            if (end == nullptr || *end != '\0') {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--sweep-mixes") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            char *end = nullptr;
            sweep_mixes = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            if (end == nullptr || *end != '\0') {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    // Bench executables are siblings of this harness in the build tree.
    const fs::path self(argv[0]);
    const fs::path bin_dir =
        self.has_parent_path() ? self.parent_path() : fs::path(".");

    std::vector<bench::BenchRecord> records;
    int failures = 0;
    for (const std::string &name : selected) {
        const fs::path exe = bin_dir / name;
        std::error_code ec;
        if (!fs::exists(exe, ec)) {
            std::cerr << "missing bench executable: " << exe.string()
                      << " (build the bench targets first)\n";
            ++failures;
            bench::BenchRecord rec;
            rec.name = name;
            rec.exitCode = -1;
            records.push_back(rec);
            continue;
        }

        std::cout << "[run_all] " << name << " ... " << std::flush;
        // Built piecewise: chained operator+ here trips a GCC 12
        // -Wrestrict false positive (GCC PR105651) under -O2 -Werror.
        std::string cmd = "\"";
        cmd += exe.string();
#ifdef _WIN32
        cmd += "\" > NUL 2>&1";
#else
        cmd += "\" > /dev/null 2>&1";
#endif
        bench::WallTimer timer;
        const int status = std::system(cmd.c_str());
        bench::BenchRecord rec;
        rec.name = name;
        rec.wallMs = timer.elapsedMs();
        rec.exitCode = exitCodeOf(status);
        std::cout << (rec.exitCode == 0 ? "ok" : "FAIL") << " ("
                  << bench::num(rec.wallMs, 1) << " ms)\n";
        if (rec.exitCode != 0)
            ++failures;
        records.push_back(rec);
    }

    // In-process parallel sweep. A throwing cell is recorded in the
    // JSON (ok=false plus its error) and fails the whole run — run_all
    // must never exit 0 over a partial record.
    bench::SweepRecord sweep;
    const bool ran_sweep = sweep_mixes > 0;
    if (ran_sweep)
        failures += runSweep(jobs, sweep_mixes, sweep);

    const std::string path = bench::writeBenchJson(
        "run_all", records, ran_sweep ? &sweep : nullptr, out_dir);
    if (path.empty()) {
        std::cerr << "failed to write BENCH_run_all.json into '" << out_dir
                  << "'\n";
        return 1;
    }
    std::cout << "\nwrote " << path << " (" << records.size()
              << " results, " << failures << " failures)\n";
    return failures == 0 ? 0 : 1;
}
