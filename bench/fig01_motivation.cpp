/**
 * @file
 * Figure 1: motivation — slowdown of non-RNG (top) and RNG (middle)
 * applications and the system unfairness index (bottom) on the
 * RNG-oblivious baseline, for RNG throughput requirements of 640, 1280,
 * 2560 and 5120 Mb/s. 172 two-core workloads (43 apps x 4 intensities).
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 1: RNG-oblivious baseline motivation",
                  "non-RNG/RNG slowdown and unfairness vs. required RNG "
                  "throughput, 172 workloads");

    sim::Runner runner(bench::baseConfig());
    const double intensities[] = {640.0, 1280.0, 2560.0, 5120.0};

    TablePrinter per_app;
    per_app.setHeader({"workload(5120)", "non-RNG slowdown",
                       "RNG slowdown", "unfairness"});

    TablePrinter summary;
    summary.setHeader({"RNG throughput", "avg non-RNG slowdown",
                       "avg RNG slowdown", "avg unfairness"});

    for (double mbps : intensities) {
        std::vector<double> non_rng, rng, unf;
        for (const auto &mix : workloads::dualCoreMixes(mbps)) {
            const auto res =
                runner.run(sim::SystemDesign::RngOblivious, mix);
            non_rng.push_back(res.avgNonRngSlowdown());
            rng.push_back(res.rngSlowdown());
            unf.push_back(res.unfairnessIndex);
            if (mbps == 5120.0) {
                per_app.addRow({mix.apps[0], bench::num(non_rng.back()),
                                bench::num(rng.back()),
                                bench::num(unf.back())});
            }
        }
        summary.addRow({bench::num(mbps, 0) + " Mb/s",
                        bench::num(mean(non_rng)), bench::num(mean(rng)),
                        bench::num(mean(unf))});
    }

    std::cout << "Per-application rows at 5120 Mb/s "
                 "(paper plots the M/H subset):\n";
    per_app.print(std::cout);
    std::cout << "\nAverages across all 43 workloads per intensity:\n";
    summary.print(std::cout);
    std::cout << "\nPaper shape: non-RNG slowdown and unfairness grow "
                 "with required RNG throughput\n(93.1% avg non-RNG "
                 "slowdown and 2.61 avg unfairness at 5 Gb/s).\n";
    return 0;
}
