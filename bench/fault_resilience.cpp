/**
 * @file
 * Fault-resilience study: the open-loop service layer offers a fixed
 * Poisson load while the fault plane (src/fault/) injects silent bit
 * flips, weak RNG cells, and stuck rows at increasing intensity. Each
 * intensity runs twice per design — health monitor enabled (blacklist,
 * remap onto screened spares, bounded retry) versus disabled (every
 * faulty round is discarded and regenerated inline) — and the table
 * contrasts the resulting discard counts, tail latency, and goodput.
 * The summary prints goodput retention (mitigated / unmitigated) per
 * pair; the bench FAILS unless mitigation delivers strictly higher
 * goodput at every intensity, which is the subsystem's whole point.
 *
 * The grid is run twice through sim::SweepRunner; any difference
 * between the two runs' serialized results (service histograms and
 * fault counters included) is a determinism bug and fails the bench.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

namespace {

const std::vector<std::string> kDesigns = {"oblivious", "drstrange"};

struct Intensity {
    const char *label; ///< row label, e.g. "w8s2"
    unsigned weakCells;
    unsigned stuckRows;
};

const std::vector<Intensity> kIntensities = {
    {"w4s1", 4, 1}, {"w8s2", 8, 2}, {"w16s4", 16, 4}};

/** Design-major grid: per design, per intensity, monitor on then off. */
std::vector<sim::SweepRunner::Cell>
buildGrid()
{
    std::vector<sim::SweepRunner::Cell> cells;
    for (const std::string &design : kDesigns) {
        for (const Intensity &in : kIntensities) {
            for (const bool monitor : {true, false}) {
                sim::SimConfig cfg = bench::baseConfig();
                sim::DesignRegistry::instance().apply(design, cfg);
                cfg.service.enabled = true;
                cfg.service.arrival = "poisson";
                cfg.service.offeredMbps = 5120.0;
                cfg.service.durationCycles = 20000;
                cfg.service.sloTargetCycles = 500;
                cfg.fault.models = "bitflip,weak-cell,stuck-row";
                cfg.fault.weakCells = in.weakCells;
                cfg.fault.stuckRows = in.stuckRows;
                cfg.fault.monitor = monitor;
                sim::SweepRunner::Cell cell;
                cell.config = std::move(cfg);
                cell.spec.name = design + "-" + in.label +
                                 (monitor ? "-mit" : "-nomit");
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

const sim::SweepRunner::CellResult &
cellAt(const std::vector<sim::SweepRunner::CellResult> &results,
       std::size_t design_idx, std::size_t intensity_idx, bool monitor)
{
    const std::size_t per_design = kIntensities.size() * 2;
    return results[design_idx * per_design + intensity_idx * 2 +
                   (monitor ? 0 : 1)];
}

} // namespace

int
main()
{
    bench::banner("Fault injection: goodput under mitigation vs none",
                  "Weak-cell/stuck-row/bitflip faults against the "
                  "TRNG health monitor (blacklist + spare remap)");

    const std::vector<sim::SweepRunner::Cell> cells = buildGrid();
    sim::SweepRunner sweep = bench::baseSweepRunner();
    const auto results = bench::runCellsOrExit(sweep, cells);

    TablePrinter t;
    t.setHeader({"design", "faults", "monitor", "discarded",
                 "blacklisted", "remapped", "silent bits", "p99",
                 "goodput req/s", "saturated"});
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        for (std::size_t i = 0; i < kIntensities.size(); ++i) {
            for (const bool monitor : {true, false}) {
                const auto &res = cellAt(results, d, i, monitor).result;
                const fault::FaultReport &f = *res.fault;
                const service::SloReport &s = *res.service;
                t.addRow({kDesigns[d], kIntensities[i].label,
                          monitor ? "on" : "off",
                          std::to_string(f.roundsDiscarded),
                          std::to_string(f.blacklisted),
                          std::to_string(f.remapped),
                          std::to_string(f.corruptedBits),
                          std::to_string(s.p99),
                          bench::num(s.goodputRps, 0),
                          s.saturated ? "yes" : "no"});
            }
        }
    }
    t.print(std::cout);

    // Goodput retention: the acceptance bar is mitigation strictly
    // ahead of no-mitigation at the same fault rate, for every pair.
    std::cout << "\nGoodput retention (monitor on / monitor off):\n";
    bool all_win = true;
    bench::BenchRecord rec;
    rec.name = "fault_resilience";
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        for (std::size_t i = 0; i < kIntensities.size(); ++i) {
            const service::SloReport &mit =
                *cellAt(results, d, i, true).result.service;
            const service::SloReport &nomit =
                *cellAt(results, d, i, false).result.service;
            const double retention =
                nomit.goodputRps > 0.0
                    ? mit.goodputRps / nomit.goodputRps
                    : 0.0;
            const bool wins = mit.goodputRps > nomit.goodputRps;
            all_win = all_win && wins;
            std::cout << "  " << kDesigns[d] << " @ "
                      << kIntensities[i].label << ": "
                      << bench::num(retention, 2) << "x ("
                      << bench::num(mit.goodputRps, 0) << " vs "
                      << bench::num(nomit.goodputRps, 0) << ")"
                      << (wins ? "" : "  <-- MITIGATION LOST") << "\n";
            rec.metrics.emplace_back(kDesigns[d] + "_" +
                                         kIntensities[i].label +
                                         "_retention",
                                     retention);
        }
    }
    if (!all_win) {
        std::cerr << "\nmitigation did not improve goodput at every "
                     "fault intensity — health-monitor regression\n";
        return 1;
    }

    // Determinism: the same grid must reproduce bit-identically,
    // including the fault counters serialized with each result.
    const auto again = bench::runCellsOrExit(sweep, cells);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (sim::serializeWorkloadResult(results[i].result) !=
            sim::serializeWorkloadResult(again[i].result)) {
            std::cerr << "fault cell '" << cells[i].spec.name
                      << "' is not bit-identical across reruns — "
                         "determinism bug\n";
            return 1;
        }
    }
    std::cout << "\nRerun check: all " << results.size()
              << " cells bit-identical.\n";

    bench::writeBenchJson("fault_resilience", {rec});
    return 0;
}
