/**
 * @file
 * Open-loop tail-latency sweep: the service layer (src/service/) offers
 * a Poisson stream of RNG requests at increasing load to each of the
 * paper's designs and records the full latency distribution. The table
 * is the classic throughput-latency curve — p50/p99/p999 versus offered
 * load — and the last column marks the saturation point, the load at
 * which a design can no longer complete the offered work before its
 * backlog diverges (DR-STRaNGe's buffering pushes it to a visibly
 * higher load than the RNG-oblivious baseline).
 *
 * The whole grid is run twice through sim::SweepRunner; any difference
 * between the two runs' serialized results is a determinism bug and
 * fails the bench.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

namespace {

const std::vector<std::string> kDesigns = {"oblivious", "greedy",
                                           "drstrange"};
const std::vector<double> kLoadsMbps = {1280.0, 2560.0, 5120.0, 10240.0,
                                        20480.0};

/** Load-major grid: all designs at kLoadsMbps[0], then [1], ... */
std::vector<sim::SweepRunner::Cell>
buildGrid()
{
    std::vector<sim::SweepRunner::Cell> cells;
    for (const double mbps : kLoadsMbps) {
        for (const std::string &design : kDesigns) {
            sim::SimConfig cfg = bench::baseConfig();
            sim::DesignRegistry::instance().apply(design, cfg);
            cfg.service.enabled = true;
            cfg.service.arrival = "poisson";
            cfg.service.offeredMbps = mbps;
            cfg.service.durationCycles = 20000;
            cfg.service.sloTargetCycles = 500;
            sim::SweepRunner::Cell cell;
            cell.config = std::move(cfg);
            cell.spec.name = design + "-svc-" +
                             std::to_string(static_cast<int>(mbps));
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

const sim::SweepRunner::CellResult &
cellAt(const std::vector<sim::SweepRunner::CellResult> &results,
       std::size_t load_idx, std::size_t design_idx)
{
    return results[load_idx * kDesigns.size() + design_idx];
}

} // namespace

int
main()
{
    bench::banner("Open-loop service tail latency vs offered load",
                  "RNG-as-a-service SLO analysis over the paper's "
                  "designs (Sections 5 and 7)");

    const std::vector<sim::SweepRunner::Cell> cells = buildGrid();
    sim::SweepRunner sweep = bench::baseSweepRunner();
    const auto results = bench::runCellsOrExit(sweep, cells);

    TablePrinter t;
    t.setHeader({"design", "offered Mb/s", "completed", "p50", "p99",
                 "p999", "% over SLO", "goodput req/s", "saturated"});
    std::vector<double> saturation_mbps(kDesigns.size(), 0.0);
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        for (std::size_t l = 0; l < kLoadsMbps.size(); ++l) {
            const auto &res = cellAt(results, l, d).result;
            const service::SloReport &s = *res.service;
            if (s.saturated && saturation_mbps[d] == 0.0)
                saturation_mbps[d] = kLoadsMbps[l];
            t.addRow({kDesigns[d], bench::num(kLoadsMbps[l], 0),
                      std::to_string(s.completed),
                      std::to_string(s.p50), std::to_string(s.p99),
                      std::to_string(s.p999), bench::num(s.pctOverSlo, 2),
                      bench::num(s.goodputRps, 0),
                      s.saturated ? "yes" : "no"});
        }
    }
    t.print(std::cout);

    std::cout << "\nSaturation points (first offered load the design "
                 "could not absorb):\n";
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        std::cout << "  " << kDesigns[d] << ": ";
        if (saturation_mbps[d] > 0.0)
            std::cout << bench::num(saturation_mbps[d], 0) << " Mb/s\n";
        else
            std::cout << "not reached (> "
                      << bench::num(kLoadsMbps.back(), 0) << " Mb/s)\n";
    }

    // Determinism: the same grid must reproduce bit-identically —
    // including every histogram bucket, via the serialized SloReport.
    const auto again = bench::runCellsOrExit(sweep, cells);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (sim::serializeWorkloadResult(results[i].result) !=
            sim::serializeWorkloadResult(again[i].result)) {
            std::cerr << "service cell '" << cells[i].spec.name
                      << "' is not bit-identical across reruns — "
                         "determinism bug\n";
            return 1;
        }
    }
    std::cout << "\nRerun check: all " << results.size()
              << " cells bit-identical.\n";

    // Perf/trajectory record: each design's saturation load plus its
    // p99 at the middle of the load ladder.
    bench::BenchRecord rec;
    rec.name = "service_tail_latency";
    const std::size_t mid = kLoadsMbps.size() / 2;
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        rec.metrics.emplace_back(kDesigns[d] + "_saturation_mbps",
                                 saturation_mbps[d]);
        rec.metrics.emplace_back(
            kDesigns[d] + "_p99_at_mid_load",
            static_cast<double>(
                cellAt(results, mid, d).result.service->p99));
    }
    bench::writeBenchJson("service_tail_latency", {rec});
    return 0;
}
