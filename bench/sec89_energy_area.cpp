/**
 * @file
 * Section 8.9: energy consumption (DRAMPower-style model) and area
 * overhead (CACTI-calibrated model at 22 nm) of DR-STRaNGe vs the
 * RNG-oblivious baseline.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Section 8.9: energy and area",
                  "energy/memory-cycle reduction and controller area");

    sim::SweepRunner sweep = bench::baseSweepRunner();
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);
    const std::vector<std::string> designs = {"oblivious", "drstrange"};
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    std::vector<double> base_energy, dr_energy, base_cycles, dr_cycles;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &base = results[m * 2 + 0].result;
        const auto &dr = results[m * 2 + 1].result;
        base_energy.push_back(base.energyNj);
        dr_energy.push_back(dr.energyNj);
        base_cycles.push_back(static_cast<double>(base.busCycles));
        dr_cycles.push_back(static_cast<double>(dr.busCycles));
    }

    TablePrinter t;
    t.setHeader({"metric", "RNG-Oblivious", "DR-STRANGE", "reduction"});
    t.addRow({"avg DRAM energy (uJ)",
              bench::num(mean(base_energy) / 1000.0, 1),
              bench::num(mean(dr_energy) / 1000.0, 1),
              bench::num((mean(base_energy) - mean(dr_energy)) /
                             mean(base_energy) * 100.0,
                         1) +
                  "%"});
    t.addRow({"avg memory cycles", bench::num(mean(base_cycles), 0),
              bench::num(mean(dr_cycles), 0),
              bench::num((mean(base_cycles) - mean(dr_cycles)) /
                             mean(base_cycles) * 100.0,
                         1) +
                  "%"});
    t.print(std::cout);
    std::cout << "\nPaper: 21% energy reduction, 15.8% fewer memory "
                 "cycles.\n\n";

    // Extension ablation: precharge power-down (predictor-friendly
    // energy knob; cf. the power-down predictor line of related work the
    // paper cites). Idle channels power down after 50 cycles.
    {
        std::cout << "Power-down ablation (DR-STRaNGe, 23 mixes):\n";
        TablePrinter pd;
        pd.setHeader({"power-down", "avg energy (uJ)", "avg non-RNG sd",
                      "avg RNG sd"});
        // Explicit-config cells: both thresholds' mixes in one grid.
        const std::vector<Cycle> thresholds = {Cycle(0), Cycle(50)};
        std::vector<sim::SweepRunner::Cell> cells;
        for (Cycle threshold : thresholds) {
            sim::SimulationBuilder b = bench::baseBuilder();
            b.design("drstrange");
            b.powerDownThreshold(threshold);
            for (const auto &mix : mixes)
                cells.push_back(b.buildSweepCell(mix));
        }
        const auto pd_results = bench::runCellsOrExit(sweep, cells);
        for (std::size_t t_i = 0; t_i < thresholds.size(); ++t_i) {
            std::vector<double> energy, non_rng, rng;
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                const auto &res =
                    pd_results[t_i * mixes.size() + m].result;
                energy.push_back(res.energyNj);
                non_rng.push_back(res.avgNonRngSlowdown());
                rng.push_back(res.rngSlowdown());
            }
            pd.addRow({thresholds[t_i] == 0 ? "off"
                                            : "50-cycle threshold",
                       bench::num(mean(energy) / 1000.0, 1),
                       bench::num(mean(non_rng)), bench::num(mean(rng))});
        }
        pd.print(std::cout);
        std::cout << "\n";
    }

    // Area model (CACTI-calibrated, 22 nm).
    TablePrinter a;
    a.setHeader({"configuration", "storage (KB)", "area (mm^2)",
                 "% of Cascade Lake core"});
    sim::SimConfig cfg = bench::baseConfig();
    for (sim::SystemDesign d : {sim::SystemDesign::DrStrange,
                                sim::SystemDesign::DrStrangeRl}) {
        sim::applyDesign(cfg, d);
        const auto est =
            sim::drStrangeArea(sim::mcConfigFor(cfg),
                               cfg.geometry.channels);
        a.addRow({sim::designName(d),
                  bench::num(est.storageBits / 8.0 / 1024.0, 3),
                  bench::num(est.mm2, 4),
                  bench::num(est.fractionOfCascadeLakeCore() * 100.0, 5)});
    }
    a.print(std::cout);
    std::cout << "\nPaper: 0.0022 mm^2 (0.00048% of a Cascade Lake core) "
                 "for the base design,\n0.012 mm^2 with the RL "
                 "predictor's 8 KB Q-table.\n";
    return 0;
}
