/**
 * @file
 * Figure 10: impact of the random number buffer size (no buffer, 1, 4,
 * 16, 64 entries, simple buffering mechanism) on non-RNG and RNG
 * application slowdown and on the buffer serve rate.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 10: random number buffer size sweep",
                  "slowdowns and buffer serve rate vs. buffer entries, "
                  "simple buffering");

    const unsigned sizes[] = {0, 1, 4, 16, 64};
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);

    // One grid over all buffer sizes: every (size, mix) pair is an
    // explicit-config cell, fanned out through the shared SweepRunner.
    sim::SweepRunner sweep = bench::baseSweepRunner();
    std::vector<sim::SweepRunner::Cell> cells;
    for (unsigned entries : sizes) {
        sim::SimConfig cfg = bench::baseConfig();
        cfg.bufferEntries = entries;
        // "No buffer" means the RNG-aware design without buffering.
        sim::applyDesign(cfg, entries == 0
                                  ? sim::SystemDesign::RngAwareNoBuffer
                                  : sim::SystemDesign::DrStrangeNoPred);
        for (const auto &mix : mixes) {
            sim::SweepRunner::Cell cell;
            cell.config = cfg;
            cell.spec = mix;
            cells.push_back(std::move(cell));
        }
    }
    const auto results = bench::runCellsOrExit(sweep, cells);

    TablePrinter t;
    t.setHeader({"entries", "avg non-RNG slowdown", "avg RNG slowdown",
                 "avg buffer serve rate"});

    TablePrinter per_app;
    per_app.setHeader(
        {"workload(16)", "non-RNG", "RNG", "serve rate"});

    for (std::size_t s = 0; s < std::size(sizes); ++s) {
        const unsigned entries = sizes[s];
        std::vector<double> non_rng, rng, serve;
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            const auto &res = results[s * mixes.size() + m].result;
            non_rng.push_back(res.avgNonRngSlowdown());
            rng.push_back(res.rngSlowdown());
            serve.push_back(res.bufferServeRate);
            if (entries == 16) {
                per_app.addRow({mixes[m].apps[0],
                                bench::num(non_rng.back()),
                                bench::num(rng.back()),
                                bench::num(serve.back())});
            }
        }
        t.addRow({entries == 0 ? "No Buffer" : std::to_string(entries),
                  bench::num(mean(non_rng)), bench::num(mean(rng)),
                  bench::num(mean(serve))});
    }

    t.print(std::cout);
    std::cout << "\nPer-workload detail at 16 entries:\n";
    per_app.print(std::cout);
    std::cout << "\nPaper shape: gains grow up to a 16-entry buffer "
                 "(avg serve rate 0.55);\nlarger buffers help only a few "
                 "workloads.\n";
    return 0;
}
