/**
 * @file
 * Figure 6: slowdown over single-core execution of non-RNG (top) and RNG
 * (bottom) applications in dual-core workloads, for the RNG-Oblivious
 * baseline, the Greedy Idle design, and DR-STRaNGe.
 */

#include <iostream>
#include <vector>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 6: dual-core performance",
                  "non-RNG (top) and RNG (bottom) slowdowns vs. running "
                  "alone; 5 Gb/s RNG app");

    sim::SweepRunner sweep = bench::baseSweepRunner();
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    TablePrinter table;
    table.setHeader({"workload", "obliv nonRNG", "greedy nonRNG",
                     "drstr nonRNG", "obliv RNG", "greedy RNG",
                     "drstr RNG"});

    std::vector<double> non_rng[3], rng[3];
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        std::vector<std::string> row{mixes[m].apps[0]};
        double cells[2][3];
        for (unsigned d = 0; d < 3; ++d) {
            const auto &res = results[m * designs.size() + d].result;
            cells[0][d] = res.avgNonRngSlowdown();
            cells[1][d] = res.rngSlowdown();
            non_rng[d].push_back(cells[0][d]);
            rng[d].push_back(cells[1][d]);
        }
        for (unsigned d = 0; d < 3; ++d)
            row.push_back(bench::num(cells[0][d]));
        for (unsigned d = 0; d < 3; ++d)
            row.push_back(bench::num(cells[1][d]));
        table.addRow(row);
    }

    std::vector<std::string> avg{"AVG"};
    for (unsigned d = 0; d < 3; ++d)
        avg.push_back(bench::num(mean(non_rng[d])));
    for (unsigned d = 0; d < 3; ++d)
        avg.push_back(bench::num(mean(rng[d])));
    table.addRow(avg);
    table.print(std::cout);

    const double non_rng_gain =
        (mean(non_rng[0]) - mean(non_rng[2])) / mean(non_rng[0]) * 100.0;
    const double rng_gain =
        (mean(rng[0]) - mean(rng[2])) / mean(rng[0]) * 100.0;
    std::cout << "\nDR-STRaNGe vs RNG-Oblivious: non-RNG exec time "
              << bench::num(non_rng_gain, 1) << "% lower (paper: 17.9%), "
              << "RNG exec time " << bench::num(rng_gain, 1)
              << "% lower (paper: 25.1%)\n";
    return 0;
}
