/**
 * @file
 * Component microbenchmarks (google-benchmark): per-operation costs of
 * the simulator's hot paths — address decode, scheduler pick, predictor
 * ops, RNG engine ticks, buffer ops, trace generation, and a whole
 * simulated bus cycle.
 */

#include <benchmark/benchmark.h>

#include "drstrange.h"
#include "mem/bliss.h"
#include "mem/fr_fcfs.h"

using namespace dstrange;

static void
BM_AddressDecode(benchmark::State &state)
{
    const dram::AddressMapper mapper{dram::DramGeometry{}};
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.decode(addr));
        addr += 64 * 37;
    }
}
BENCHMARK(BM_AddressDecode);

static void
BM_FrFcfsPick(benchmark::State &state)
{
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan(t, g);
    mem::RequestQueue q(32);
    Xoshiro256ss gen(1);
    for (unsigned i = 0; i < 32; ++i) {
        mem::Request r;
        r.type = mem::ReqType::Read;
        r.coord = dram::DramCoord{0, static_cast<unsigned>(gen.nextBelow(8)),
                                  static_cast<unsigned>(gen.nextBelow(64)),
                                  0};
        r.seq = i;
        q.push(r);
    }
    mem::FrFcfsScheduler sched(1, 8, 16);
    Cycle now = 1000;
    for (auto _ : state) {
        const mem::SchedContext ctx{q, chan, 0, now++};
        benchmark::DoNotOptimize(sched.pick(ctx));
    }
}
BENCHMARK(BM_FrFcfsPick);

static void
BM_BlissPick(benchmark::State &state)
{
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan(t, g);
    mem::RequestQueue q(32);
    Xoshiro256ss gen(2);
    for (unsigned i = 0; i < 32; ++i) {
        mem::Request r;
        r.type = mem::ReqType::Read;
        r.coord = dram::DramCoord{0, static_cast<unsigned>(gen.nextBelow(8)),
                                  static_cast<unsigned>(gen.nextBelow(64)),
                                  0};
        r.core = static_cast<CoreId>(i % 4);
        r.seq = i;
        q.push(r);
    }
    mem::BlissScheduler sched(1, 4, 4, 10000);
    Cycle now = 1000;
    for (auto _ : state) {
        const mem::SchedContext ctx{q, chan, 0, now++};
        benchmark::DoNotOptimize(sched.pick(ctx));
    }
}
BENCHMARK(BM_BlissPick);

static void
BM_SimplePredictorCycle(benchmark::State &state)
{
    strange::SimpleIdlenessPredictor pred(
        strange::SimpleIdlenessPredictor::Config{});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pred.predictLong(addr));
        pred.periodEnded(addr, addr % 80);
        addr += 64;
    }
}
BENCHMARK(BM_SimplePredictorCycle);

static void
BM_RlPredictorCycle(benchmark::State &state)
{
    strange::RlIdlenessPredictor pred(
        strange::RlIdlenessPredictor::Config{});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pred.predictLong(addr));
        pred.periodEnded(addr, addr % 80);
        addr += 64;
    }
}
BENCHMARK(BM_RlPredictorCycle);

static void
BM_RngEngineTick(benchmark::State &state)
{
    dram::DramTimings t;
    dram::DramGeometry g;
    dram::DramChannel chan(t, g);
    trng::RngEngine eng(trng::TrngMechanism::dRange(), chan);
    Cycle now = 0;
    eng.start(now);
    for (auto _ : state) {
        benchmark::DoNotOptimize(eng.tick(now++));
    }
}
BENCHMARK(BM_RngEngineTick);

static void
BM_BufferDepositServe(benchmark::State &state)
{
    strange::RandomNumberBuffer buf(16);
    for (auto _ : state) {
        buf.deposit(8.0);
        if (buf.canServe64())
            buf.serve64();
    }
}
BENCHMARK(BM_BufferDepositServe);

static void
BM_SyntheticTraceNext(benchmark::State &state)
{
    workloads::SyntheticTrace trace(workloads::appByName("mcf"),
                                    dram::DramGeometry{}, 0, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next());
}
BENCHMARK(BM_SyntheticTraceNext);

static void
BM_EntropyWord(benchmark::State &state)
{
    trng::EntropySource src(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(src.next64());
}
BENCHMARK(BM_EntropyWord);

static void
BM_SystemBusCycle(benchmark::State &state)
{
    sim::SimConfig cfg;
    sim::applyDesign(cfg, sim::SystemDesign::DrStrange);
    cfg.instrBudget = 1u << 30;
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName("soplex"), cfg.geometry, 0, 1));
    traces.push_back(std::make_unique<workloads::RngBenchmark>(
        5120.0, cfg.geometry, 2));
    sim::System sys(cfg, std::move(traces));
    for (auto _ : state)
        sys.step(1);
}
BENCHMARK(BM_SystemBusCycle);

BENCHMARK_MAIN();
