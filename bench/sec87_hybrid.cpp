/**
 * @file
 * Section 8.7 (future work, implemented here as an extension): hybrid
 * DRAM TRNGs that use one mechanism to fill the random number buffer
 * and another to serve on-demand requests. Evaluates all four
 * combinations of D-RaNGe (low 64-bit latency) and QUAC-TRNG (high
 * sustained throughput, high 64-bit latency) under DR-STRaNGe.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Section 8.7 extension: hybrid TRNG mechanisms",
                  "demand/fill mechanism combinations under DR-STRaNGe");

    struct Combo
    {
        const char *label;
        trng::TrngMechanism demand;
        std::optional<trng::TrngMechanism> fill;
    };
    const Combo combos[] = {
        {"D-RaNGe only", trng::TrngMechanism::dRange(), std::nullopt},
        {"QUAC only", trng::TrngMechanism::quacTrng(), std::nullopt},
        {"demand=D-RaNGe fill=QUAC", trng::TrngMechanism::dRange(),
         trng::TrngMechanism::quacTrng()},
        {"demand=QUAC fill=D-RaNGe", trng::TrngMechanism::quacTrng(),
         trng::TrngMechanism::dRange()},
    };

    TablePrinter t;
    t.setHeader({"configuration", "non-RNG slowdown", "RNG slowdown",
                 "unfairness", "serve rate"});

    for (const Combo &combo : combos) {
        sim::SimulationBuilder b = bench::baseBuilder();
        b.mechanism(combo.demand);
        if (combo.fill)
            b.fillMechanism(*combo.fill);
        sim::Runner runner = b.buildRunner();

        std::vector<double> non_rng, rng, unf, serve;
        for (const auto &mix : workloads::dualCorePlottedMixes(5120.0)) {
            const auto res = runner.run("drstrange", mix);
            non_rng.push_back(res.avgNonRngSlowdown());
            rng.push_back(res.rngSlowdown());
            unf.push_back(res.unfairnessIndex);
            serve.push_back(res.bufferServeRate);
        }
        t.addRow({combo.label, bench::num(mean(non_rng)),
                  bench::num(mean(rng)), bench::num(mean(unf)),
                  bench::num(mean(serve))});
    }
    t.print(std::cout);

    std::cout << "\nThe paper leaves hybrid evaluation to future work; "
                 "the expectation is that a\nlow-latency demand mechanism "
                 "paired with a high-throughput fill mechanism\ncombines "
                 "the strengths of both.\n";
    return 0;
}
