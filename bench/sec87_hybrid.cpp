/**
 * @file
 * Section 8.7 (future work, implemented here as an extension): hybrid
 * DRAM TRNGs that use one mechanism to fill the random number buffer
 * and another to serve on-demand requests. Evaluates all four
 * combinations of D-RaNGe (low 64-bit latency) and QUAC-TRNG (high
 * sustained throughput, high 64-bit latency) under DR-STRaNGe.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Section 8.7 extension: hybrid TRNG mechanisms",
                  "demand/fill mechanism combinations under DR-STRaNGe");

    struct Combo
    {
        const char *label;
        trng::TrngMechanism demand;
        std::optional<trng::TrngMechanism> fill;
    };
    const Combo combos[] = {
        {"D-RaNGe only", trng::TrngMechanism::dRange(), std::nullopt},
        {"QUAC only", trng::TrngMechanism::quacTrng(), std::nullopt},
        {"demand=D-RaNGe fill=QUAC", trng::TrngMechanism::dRange(),
         trng::TrngMechanism::quacTrng()},
        {"demand=QUAC fill=D-RaNGe", trng::TrngMechanism::quacTrng(),
         trng::TrngMechanism::dRange()},
    };

    TablePrinter t;
    t.setHeader({"configuration", "non-RNG slowdown", "RNG slowdown",
                 "unfairness", "serve rate"});

    // Explicit-config cells (buildSweepCell): each combo pins its own
    // demand/fill mechanisms under the DR-STRaNGe preset, and all four
    // combos' mixes run through one shared parallel grid.
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);
    std::vector<sim::SweepRunner::Cell> cells;
    for (const Combo &combo : combos) {
        sim::SimulationBuilder b = bench::baseBuilder();
        b.design("drstrange");
        b.mechanism(combo.demand);
        if (combo.fill)
            b.fillMechanism(*combo.fill);
        for (const auto &mix : mixes)
            cells.push_back(b.buildSweepCell(mix));
    }
    sim::SweepRunner sweep = bench::baseSweepRunner();
    const auto results = bench::runCellsOrExit(sweep, cells);

    for (std::size_t c = 0; c < std::size(combos); ++c) {
        std::vector<double> non_rng, rng, unf, serve;
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            const auto &res = results[c * mixes.size() + m].result;
            non_rng.push_back(res.avgNonRngSlowdown());
            rng.push_back(res.rngSlowdown());
            unf.push_back(res.unfairnessIndex);
            serve.push_back(res.bufferServeRate);
        }
        t.addRow({combos[c].label, bench::num(mean(non_rng)),
                  bench::num(mean(rng)), bench::num(mean(unf)),
                  bench::num(mean(serve))});
    }
    t.print(std::cout);

    std::cout << "\nThe paper leaves hybrid evaluation to future work; "
                 "the expectation is that a\nlow-latency demand mechanism "
                 "paired with a high-throughput fill mechanism\ncombines "
                 "the strengths of both.\n";
    return 0;
}
