/**
 * @file
 * Ablation of the three modelling refinements DESIGN.md documents for
 * the DR-STRaNGe reproduction:
 *
 *  1. RNG-mode parking between demand bursts (the RNG-aware batching
 *     the paper motivates in Section 2),
 *  2. switch-in aborts for mispredicted fill sessions,
 *  3. single-channel buffer fill (Section 5.1.1 "selects a channel").
 *
 * Each row disables one refinement on the full DR-STRaNGe design over
 * the 23 plotted dual-core mixes.
 */

#include <iostream>

#include "bench_util.h"
#include "mem/memory_controller.h"
#include "sim/system.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

using namespace dstrange;

namespace {

struct Variant
{
    const char *label;
    bool parking;
    bool abortSwitchIn;
    unsigned fillChannels; // 0 = unlimited
};

/** Run one mix under DR-STRaNGe with the given refinement settings. */
struct Outcome
{
    double nonRngCycles = 0.0;
    double rngCycles = 0.0;
    double serveRate = 0.0;
};

Outcome
run(const Variant &v, const workloads::WorkloadSpec &spec)
{
    sim::SimConfig cfg = bench::baseConfig();
    sim::applyDesign(cfg, sim::SystemDesign::DrStrange);

    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName(spec.apps[0]), cfg.geometry, 0, cfg.seed));
    traces.push_back(std::make_unique<workloads::RngBenchmark>(
        spec.rngThroughputMbps, cfg.geometry, cfg.seed + 1));

    // Build the system, then rebuild the controller config by hand to
    // apply the ablation knobs (they are not part of SimConfig).
    mem::McConfig mc_cfg = sim::mcConfigFor(cfg);
    mc_cfg.enableParking = v.parking;
    mc_cfg.enableFillAbort = v.abortSwitchIn;
    mc_cfg.fillChannelLimit = v.fillChannels;

    // Drive the pieces directly (same loop as sim::System).
    mem::MemoryController mc(mc_cfg, cfg.timings, cfg.geometry,
                             cfg.mechanism, 2);
    std::vector<std::unique_ptr<cpu::Core>> cores;
    cpu::Core::Config core_cfg;
    core_cfg.instrBudget = cfg.instrBudget;
    for (unsigned i = 0; i < 2; ++i) {
        cores.push_back(std::make_unique<cpu::Core>(
            static_cast<CoreId>(i), core_cfg, *traces[i], mc));
    }
    mc.setCompletionCallback(
        [&](CoreId core, std::uint64_t token, mem::ReqType,
            mem::ServePath) { cores[core]->onCompletion(token); });

    Cycle now = 0;
    auto all_done = [&] {
        for (const auto &c : cores)
            if (!c->finished())
                return false;
        return true;
    };
    while (!all_done() && now < cfg.maxBusCycles) {
        mc.tick(now);
        for (auto &c : cores)
            c->tickBusCycle(now);
        ++now;
    }

    Outcome out;
    out.nonRngCycles = static_cast<double>(cores[0]->stats().finishCycle);
    out.rngCycles = static_cast<double>(cores[1]->stats().finishCycle);
    out.serveRate = mc.stats().bufferServeRate();
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation: reproduction modelling refinements",
                  "DR-STRaNGe with each refinement disabled; execution "
                  "cycles normalized to the full design");

    const Variant variants[] = {
        {"full design", true, true, 1},
        {"no RNG-mode parking", false, true, 1},
        {"no switch-in abort", true, false, 1},
        {"fill on all channels", true, true, 0},
    };

    const auto mixes = workloads::dualCorePlottedMixes(5120.0);

    // Baseline: the full design.
    std::vector<Outcome> base;
    for (const auto &mix : mixes)
        base.push_back(run(variants[0], mix));

    TablePrinter t;
    t.setHeader({"variant", "non-RNG cycles (norm)", "RNG cycles (norm)",
                 "avg serve rate"});
    for (const Variant &v : variants) {
        std::vector<double> non_rng, rng, serve;
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            const Outcome out =
                v.label == variants[0].label ? base[i] : run(v, mixes[i]);
            non_rng.push_back(out.nonRngCycles / base[i].nonRngCycles);
            rng.push_back(out.rngCycles / base[i].rngCycles);
            serve.push_back(out.serveRate);
        }
        t.addRow({v.label, bench::num(geomean(non_rng)),
                  bench::num(geomean(rng)), bench::num(mean(serve))});
    }
    t.print(std::cout);

    std::cout << "\nInterpretation: parking amortizes timing-parameter "
                 "swaps across request bursts;\naborts bound the cost of "
                 "mispredicted fills; single-channel fill keeps the\n"
                 "buffer supply at the paper's scale (Fig. 10's serve "
                 "rates).\n";
    return 0;
}
