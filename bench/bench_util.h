/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: standard
 * base configuration, environment overrides, and row formatting.
 */

#ifndef DSTRANGE_BENCH_BENCH_UTIL_H
#define DSTRANGE_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <iostream>
#include <string>

#include "drstrange.h"

namespace bench {

/**
 * Base configuration for all figure benches. The per-core instruction
 * budget is scaled down from the paper's 200M-instruction SimPoints so
 * the whole harness runs in minutes; override with DS_INSTR_BUDGET.
 */
inline dstrange::sim::SimConfig
baseConfig()
{
    dstrange::sim::SimConfig cfg;
    cfg.instrBudget = 200000;
    if (const char *env = std::getenv("DS_INSTR_BUDGET"))
        cfg.instrBudget = std::strtoull(env, nullptr, 10);
    return cfg;
}

/** Format a ratio with 3 decimals. */
inline std::string
num(double v, int precision = 3)
{
    return dstrange::TablePrinter::num(v, precision);
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n\n";
}

} // namespace bench

#endif // DSTRANGE_BENCH_BENCH_UTIL_H
