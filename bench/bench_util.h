/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: standard
 * base configuration, environment overrides, and row formatting.
 */

#ifndef DSTRANGE_BENCH_BENCH_UTIL_H
#define DSTRANGE_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/env_util.h"
#include "common/json_writer.h"
#include "drstrange.h"

namespace bench {

/**
 * Base configuration builder for all figure benches, the single entry
 * point shared with the CLI and run_all. The per-core instruction
 * budget is scaled down from the paper's 200M-instruction SimPoints so
 * the whole harness runs in minutes; override with DS_INSTR_BUDGET.
 * DS_CONFIG may hold extra key=value config text (see
 * sim/config_text.h) applied on top — e.g.
 * DS_CONFIG="mechanism=quac buffer-entries=32".
 */
inline dstrange::sim::SimulationBuilder
baseBuilder()
{
    dstrange::sim::SimulationBuilder b;
    b.instrBudget(dstrange::envU64("DS_INSTR_BUDGET", 200000));
    if (const char *text = std::getenv("DS_CONFIG")) {
        try {
            b.applyText(text);
        } catch (const std::exception &e) {
            std::cerr << "DS_CONFIG: " << e.what() << "\n";
            std::exit(2);
        }
    }
    return b;
}

/** Base configuration for all figure benches (baseBuilder()'s config). */
inline dstrange::sim::SimConfig
baseConfig()
{
    return baseBuilder().config();
}

/**
 * Parallel sweep executor over the standard bench base configuration.
 * Worker count comes from DS_JOBS (default: hardware_concurrency), so
 * `DS_JOBS=1 ./figNN` reproduces the historical serial execution —
 * with bit-identical metric values, since every cell is a pure
 * function of its configuration and workload spec.
 */
inline dstrange::sim::SweepRunner
baseSweepRunner()
{
    return baseBuilder().buildSweepRunner();
}

/**
 * The multi-core sweep workload set shared by fig07/fig08: the four
 * 4-core groups followed by every L/M/H category group at 4, 8, and 16
 * cores. When @p group_labels is non-null it receives the label of each
 * multi-core category group in sweep order (e.g. "L(8)"), so callers
 * need not re-draw the groups just to name their table rows.
 */
inline std::vector<dstrange::workloads::WorkloadSpec>
multiCoreSweepMixes(std::uint64_t seed,
                    std::vector<std::string> *group_labels = nullptr)
{
    auto mixes = dstrange::workloads::fourCoreGroups(seed);
    for (unsigned cores : {4u, 8u, 16u}) {
        for (char cat : {'L', 'M', 'H'}) {
            const auto group = dstrange::workloads::multiCoreCategoryGroup(
                cores, cat, seed);
            if (group_labels)
                group_labels->push_back(group.front().group);
            mixes.insert(mixes.end(), group.begin(), group.end());
        }
    }
    return mixes;
}

/**
 * Run a grid of cells and exit(1) on the first failed cell (after
 * reporting every failure), so a figure bench can never print a
 * partial table and still exit 0.
 */
inline std::vector<dstrange::sim::SweepRunner::CellResult>
runCellsOrExit(dstrange::sim::SweepRunner &sweep,
               const std::vector<dstrange::sim::SweepRunner::Cell> &cells)
{
    auto results = sweep.run(cells);
    bool failed = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok) {
            std::cerr << "cell '" << cells[i].spec.name << "' ("
                      << (cells[i].design.empty() ? "explicit config"
                                                  : cells[i].design)
                      << ") failed: " << results[i].error << "\n";
            failed = true;
        }
    }
    if (failed)
        std::exit(1);
    return results;
}

/** Format a ratio with 3 decimals. */
inline std::string
num(double v, int precision = 3)
{
    return dstrange::TablePrinter::num(v, precision);
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n\n";
}

/** Wall-clock stopwatch for perf records. */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    /** Milliseconds elapsed since construction (or the last reset). */
    double elapsedMs() const
    {
        const auto d = std::chrono::steady_clock::now() - start;
        return std::chrono::duration<double, std::milli>(d).count();
    }

    void reset() { start = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * One benchmark execution in a machine-readable result file: the bench
 * name, how long it ran, whether it succeeded, and any named metrics
 * the bench chose to report.
 */
struct BenchRecord {
    std::string name;
    double wallMs = 0.0;
    int exitCode = 0;
    std::vector<std::pair<std::string, double>> metrics;
};

/** One sweep cell in the perf record: design x workload, its worker
 *  wall-clock, and the metric values the bit-identity check diffs. */
struct SweepCellRecord {
    std::string name; ///< "<design>/<workload>".
    double wallMs = 0.0;
    bool ok = false;
    /** Owned by a different shard; not executed by this process. */
    bool skipped = false;
    std::string error; ///< Exception message when !ok.
    /** Execution-hygiene tag from SweepRunner::CellResult::outcome:
     *  ok / retried / timeout / error / skipped. */
    std::string outcome = "ok";
    std::vector<std::pair<std::string, double>> metrics;
};

/** One record→replay comparison cell of the trace tier. */
struct TraceCellRecord {
    std::string name;        ///< Scheduler (or other knob) label.
    double liveMs = 0.0;     ///< Recorded live run wall-clock.
    double replayMs = 0.0;   ///< Replay run wall-clock.
    bool bitIdentical = false; ///< MC-side metrics matched exactly.
    std::uint64_t records = 0; ///< Requests replayed from the tape.

    double speedup() const
    {
        return replayMs > 0.0 ? liveMs / replayMs : 0.0;
    }
};

/** Aggregate of the run_all trace tier: each cell records a live run,
 *  replays the tape into an identically-configured controller, and
 *  diffs the controller-side metrics — replay must be bit-identical
 *  and materially faster (no core or service model executes). */
struct TraceTierRecord {
    double liveMs = 0.0;
    double replayMs = 0.0;
    bool bitIdentical = true;
    std::vector<TraceCellRecord> cells;

    double speedup() const
    {
        return replayMs > 0.0 ? liveMs / replayMs : 0.0;
    }
};

/** Fast-forward speedup of one workload tier of the sweep grid. */
struct FfTierRecord {
    std::string name;       ///< Tier label (e.g. "trng-sweep").
    double step1Ms = 0.0;   ///< Serial wall, cycle-by-cycle stepping.
    double ffMs = 0.0;      ///< Serial wall, event-driven fast-forward.

    double speedup() const { return ffMs > 0.0 ? step1Ms / ffMs : 0.0; }
};

/** Batched-command-retirement speedup of one workload tier: the same
 *  serial fast-forward sweep with DS_BATCH off vs on. */
struct BatchTierRecord {
    std::string name;    ///< Tier label (e.g. "dual-5gbps").
    double offMs = 0.0;  ///< Serial ff wall-clock, DS_BATCH=0.
    double onMs = 0.0;   ///< Serial ff wall-clock, DS_BATCH=1.

    double speedup() const { return onMs > 0.0 ? offMs / onMs : 0.0; }
};

/** One shard's contribution inside a merged sweep record. */
struct ShardSummaryRecord {
    unsigned index = 0;
    unsigned jobs = 1;
    double wallMs = 0.0;
    double serialWallMs = 0.0;
    double step1WallMs = 0.0;
    bool bitIdentical = true;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheStores = 0;
};

/**
 * Aggregate record of run_all's in-process parallel sweep: the worker
 * count, the parallel sweep's end-to-end wall-clock, a serial
 * reference run's wall-clock (measured with a fresh alone-run cache,
 * so the comparison is fair), whether the two runs' metric values were
 * bit-identical, and the resulting measured serial-vs-parallel
 * speedup — the perf-trajectory datapoint the roadmap asks for.
 *
 * The fast-forward comparison re-runs the sweep serially with
 * DS_FAST_FORWARD=0 (cycle-by-cycle stepping): step1WallMs vs
 * serialWallMs is the cycle-skipping engine's wall-clock win, overall
 * and per workload tier, and its metric values must also be
 * bit-identical (they feed the same bitIdentical verdict).
 *
 * Cross-process sharding: a `run_all --shard I/N` invocation runs only
 * the cells its shard owns (the rest are `skipped`) and emits a
 * fragment named BENCH_run_all.shard-I.json; `run_all --merge-shards`
 * joins N fragments back into the canonical BENCH_run_all.json
 * (merged == true, per-shard summaries in `shards`), whose per-cell
 * metrics are bit-identical to a single-process run.
 */
struct SweepRecord {
    unsigned jobs = 1;
    double wallMs = 0.0;       ///< Parallel sweep wall-clock.
    double serialWallMs = 0.0; ///< One-thread reference wall-clock.
    double step1WallMs = 0.0;  ///< One-thread wall with DS_FAST_FORWARD=0.
    double cellsTotalMs = 0.0; ///< Sum of per-cell wall times.
    bool bitIdentical = true;  ///< Serial == parallel == step-1 metrics.
    unsigned shardIndex = 0;   ///< This process's shard (fragment only).
    unsigned shardCount = 1;   ///< >1 marks a shard fragment.
    bool merged = false;       ///< Assembled by --merge-shards.
    bool cacheEnabled = false; ///< Persistent alone-run cache in use.
    std::string cacheDir;
    std::uint64_t cacheHits = 0;   ///< Baselines served from disk.
    std::uint64_t cacheMisses = 0; ///< Baselines recomputed.
    std::uint64_t cacheStores = 0; ///< Baselines written to disk.
    std::vector<ShardSummaryRecord> shards; ///< Merged records only.
    std::vector<FfTierRecord> ffTiers; ///< Per-tier ff speedups.
    /** Serial ff wall-clock with batched command retirement disabled
     *  (DS_BATCH=0); serialWallMs is the batch-on partner. */
    double batchOffWallMs = 0.0;
    std::vector<BatchTierRecord> batchTiers; ///< Per-tier batch speedups.
    bool hasTrace = false;      ///< Trace tier ran (unsharded only).
    TraceTierRecord trace;      ///< Record→replay comparison tier.
    std::vector<SweepCellRecord> cells;

    double speedup() const
    {
        return wallMs > 0.0 ? serialWallMs / wallMs : 0.0;
    }

    /** Fast-forward wall-clock speedup on the (serial) sweep phase. */
    double ffSpeedup() const
    {
        return serialWallMs > 0.0 ? step1WallMs / serialWallMs : 0.0;
    }

    /** Batch-mode wall-clock speedup on the (serial) sweep phase. */
    double batchSpeedup() const
    {
        return serialWallMs > 0.0 ? batchOffWallMs / serialWallMs : 0.0;
    }
};

/**
 * The controller-side metric values a replay run must reproduce
 * bit-identically from the recorded live run. Core-side statistics are
 * deliberately absent: replay has no cores.
 */
inline std::vector<std::pair<std::string, double>>
mcMetrics(const dstrange::sim::System &sys,
          const dstrange::sim::SimConfig &cfg)
{
    const dstrange::mem::McStats &m = sys.mc().stats();
    std::vector<std::pair<std::string, double>> out = {
        {"bus_cycles", static_cast<double>(sys.busCycles())},
        {"read_requests", static_cast<double>(m.readRequests)},
        {"write_requests", static_cast<double>(m.writeRequests)},
        {"rng_requests", static_cast<double>(m.rngRequests)},
        {"rng_from_buffer", static_cast<double>(m.rngServedFromBuffer)},
        {"rng_jobs_completed", static_cast<double>(m.rngJobsCompleted)},
        {"reads_completed", static_cast<double>(m.readsCompleted)},
        {"sum_read_latency", static_cast<double>(m.sumReadLatency)},
        {"sum_rng_latency", static_cast<double>(m.sumRngLatency)},
        {"buffer_serve_rate", m.bufferServeRate()},
    };
    double energy_nj = 0.0;
    for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
        energy_nj += dstrange::sim::channelEnergy(
                         cfg.timings,
                         sys.mc().channel(ch).energyCounters())
                         .total();
    }
    out.emplace_back("energy_nj", energy_nj);
    return out;
}

/**
 * One record→replay comparison: run @p spec live under @p cfg while
 * recording the controller-boundary request stream to @p trace_path,
 * then replay the tape into a freshly-built controller with the same
 * configuration, timing both runs and diffing their controller-side
 * metrics. The trace file is left on disk for inspection or reuse.
 */
inline TraceCellRecord
runTraceReplayCell(dstrange::sim::SimConfig cfg,
                   const dstrange::workloads::WorkloadSpec &spec,
                   const std::string &trace_path)
{
    namespace ds = dstrange;
    TraceCellRecord cell;

    cfg.traceRecord = trace_path;
    cfg.traceReplay.clear();
    std::vector<std::unique_ptr<ds::cpu::TraceSource>> traces;
    for (unsigned i = 0; i < spec.apps.size(); ++i) {
        traces.push_back(std::make_unique<ds::workloads::SyntheticTrace>(
            ds::workloads::appByName(spec.apps[i]), cfg.geometry,
            static_cast<ds::CoreId>(i), cfg.seed));
    }
    if (spec.rngThroughputMbps > 0.0) {
        traces.push_back(std::make_unique<ds::workloads::RngBenchmark>(
            spec.rngThroughputMbps, cfg.geometry,
            cfg.seed + traces.size()));
    }
    WallTimer timer;
    ds::sim::System live(cfg, std::move(traces));
    live.run();
    cell.liveMs = timer.elapsedMs();
    const auto live_metrics = mcMetrics(live, cfg);

    cfg.traceRecord.clear();
    cfg.traceReplay = trace_path;
    timer.reset();
    ds::sim::System replay(cfg, {});
    replay.run();
    cell.replayMs = timer.elapsedMs();
    cell.records = replay.replaySource()->replayedCount();
    cell.bitIdentical = mcMetrics(replay, cfg) == live_metrics;
    return cell;
}

/**
 * Directory for BENCH_*.json output. Defaults to the current working
 * directory; override with DS_BENCH_OUT.
 */
inline std::string
benchOutputDir()
{
    if (const char *env = std::getenv("DS_BENCH_OUT"))
        return env;
    return ".";
}

/**
 * Write a BENCH_<harness>.json perf record for a set of benchmark
 * executions, plus an optional in-process sweep record (per-cell and
 * aggregate wall-clock and the measured parallel speedup). Returns the
 * path written, or an empty string on I/O failure. The schema is
 * intentionally flat so the perf-trajectory tooling can diff runs
 * across commits. @p file_name overrides the default
 * "BENCH_<harness>.json" leaf name (shard fragments use
 * "BENCH_<harness>.shard-I.json").
 */
inline std::string
writeBenchJson(const std::string &harness,
               const std::vector<BenchRecord> &records,
               const SweepRecord *sweep = nullptr,
               const std::string &out_dir = benchOutputDir(),
               const std::string &file_name = "")
{
    dstrange::JsonWriter w;
    w.beginObject();
    w.key("schema").value("drstrange-bench-v1");
    w.key("harness").value(harness);
    // Build fingerprint (cache schema + compiler + source-tree hash +
    // fast-forward mode): --merge-shards refuses to join fragments
    // whose fingerprints differ, since their cells came from different
    // simulators.
    w.key("fingerprint").value(
        dstrange::sim::ResultStore::buildFingerprint());
    const dstrange::sim::SimConfig base = baseConfig();
    w.key("instr_budget").value(
        static_cast<std::uint64_t>(base.instrBudget));
    w.key("config").value(dstrange::sim::serializeConfig(base));
    w.key("results").beginArray();
    for (const BenchRecord &rec : records) {
        w.beginObject();
        w.key("name").value(rec.name);
        w.key("wall_ms").value(rec.wallMs);
        w.key("exit_code").value(rec.exitCode);
        w.key("ok").value(rec.exitCode == 0);
        w.key("metrics").beginObject();
        for (const auto &[metric, value] : rec.metrics)
            w.key(metric).value(value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    if (sweep) {
        w.key("sweep").beginObject();
        w.key("jobs").value(
            static_cast<std::uint64_t>(sweep->jobs));
        w.key("wall_ms").value(sweep->wallMs);
        w.key("serial_wall_ms").value(sweep->serialWallMs);
        w.key("cells_total_ms").value(sweep->cellsTotalMs);
        w.key("speedup").value(sweep->speedup());
        w.key("bit_identical").value(sweep->bitIdentical);
        if (sweep->shardCount > 1 && !sweep->merged) {
            w.key("shard").beginObject();
            w.key("index").value(
                static_cast<std::uint64_t>(sweep->shardIndex));
            w.key("count").value(
                static_cast<std::uint64_t>(sweep->shardCount));
            w.endObject();
        }
        if (sweep->merged) {
            w.key("merged").value(true);
            w.key("shard_count").value(
                static_cast<std::uint64_t>(sweep->shardCount));
            w.key("shards").beginArray();
            for (const ShardSummaryRecord &s : sweep->shards) {
                w.beginObject();
                w.key("index").value(
                    static_cast<std::uint64_t>(s.index));
                w.key("jobs").value(static_cast<std::uint64_t>(s.jobs));
                w.key("wall_ms").value(s.wallMs);
                w.key("serial_wall_ms").value(s.serialWallMs);
                w.key("step1_wall_ms").value(s.step1WallMs);
                w.key("bit_identical").value(s.bitIdentical);
                w.key("cache_hits").value(s.cacheHits);
                w.key("cache_misses").value(s.cacheMisses);
                w.key("cache_stores").value(s.cacheStores);
                w.endObject();
            }
            w.endArray();
        }
        if (sweep->cacheEnabled) {
            w.key("cache").beginObject();
            w.key("dir").value(sweep->cacheDir);
            w.key("hits").value(sweep->cacheHits);
            w.key("misses").value(sweep->cacheMisses);
            w.key("stores").value(sweep->cacheStores);
            w.endObject();
        }
        w.key("fastforward").beginObject();
        w.key("step1_wall_ms").value(sweep->step1WallMs);
        w.key("ff_wall_ms").value(sweep->serialWallMs);
        w.key("speedup").value(sweep->ffSpeedup());
        w.key("tiers").beginArray();
        for (const FfTierRecord &tier : sweep->ffTiers) {
            w.beginObject();
            w.key("name").value(tier.name);
            w.key("step1_wall_ms").value(tier.step1Ms);
            w.key("ff_wall_ms").value(tier.ffMs);
            w.key("speedup").value(tier.speedup());
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.key("batch").beginObject();
        w.key("off_wall_ms").value(sweep->batchOffWallMs);
        w.key("on_wall_ms").value(sweep->serialWallMs);
        w.key("speedup").value(sweep->batchSpeedup());
        w.key("tiers").beginArray();
        for (const BatchTierRecord &tier : sweep->batchTiers) {
            w.beginObject();
            w.key("name").value(tier.name);
            w.key("off_wall_ms").value(tier.offMs);
            w.key("on_wall_ms").value(tier.onMs);
            w.key("speedup").value(tier.speedup());
            w.endObject();
        }
        w.endArray();
        w.endObject();
        if (sweep->hasTrace) {
            w.key("trace").beginObject();
            w.key("live_wall_ms").value(sweep->trace.liveMs);
            w.key("replay_wall_ms").value(sweep->trace.replayMs);
            w.key("speedup").value(sweep->trace.speedup());
            w.key("bit_identical").value(sweep->trace.bitIdentical);
            w.key("cells").beginArray();
            for (const TraceCellRecord &cell : sweep->trace.cells) {
                w.beginObject();
                w.key("name").value(cell.name);
                w.key("live_wall_ms").value(cell.liveMs);
                w.key("replay_wall_ms").value(cell.replayMs);
                w.key("speedup").value(cell.speedup());
                w.key("bit_identical").value(cell.bitIdentical);
                w.key("records").value(cell.records);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.key("cells").beginArray();
        for (const SweepCellRecord &cell : sweep->cells) {
            w.beginObject();
            w.key("name").value(cell.name);
            w.key("wall_ms").value(cell.wallMs);
            w.key("ok").value(cell.ok);
            if (cell.skipped)
                w.key("skipped").value(true);
            if (!cell.ok && !cell.skipped)
                w.key("error").value(cell.error);
            w.key("outcome").value(cell.outcome);
            w.key("metrics").beginObject();
            for (const auto &[metric, value] : cell.metrics)
                w.key(metric).value(value);
            w.endObject();
            w.endObject();
        }
        w.endArray();
        // Derived mitigation-vs-none comparison over the fault tier's
        // "fault/<design>/<rate>-<mit|nomit>" cells. Computed here by
        // scanning cell names rather than carried through the sweep, so
        // a --merge-shards reassembly (which only concatenates cells)
        // reproduces it for free.
        {
            struct FaultSide {
                double goodput = -1.0;
                double p99 = 0.0;
            };
            struct FaultPair {
                FaultSide mit, nomit;
            };
            std::vector<std::pair<std::string, FaultPair>> pairs;
            auto side_of = [&](const std::string &base,
                               bool mit) -> FaultSide & {
                for (auto &[name, pair] : pairs) {
                    if (name == base)
                        return mit ? pair.mit : pair.nomit;
                }
                pairs.emplace_back(base, FaultPair{});
                return mit ? pairs.back().second.mit
                           : pairs.back().second.nomit;
            };
            for (const SweepCellRecord &cell : sweep->cells) {
                if (cell.name.rfind("fault/", 0) != 0 || !cell.ok)
                    continue;
                bool mit;
                std::string base;
                if (cell.name.size() > 4 &&
                    cell.name.rfind("-mit") == cell.name.size() - 4) {
                    mit = true;
                    base = cell.name.substr(0, cell.name.size() - 4);
                } else if (cell.name.size() > 6 &&
                           cell.name.rfind("-nomit") ==
                               cell.name.size() - 6) {
                    mit = false;
                    base = cell.name.substr(0, cell.name.size() - 6);
                } else {
                    continue;
                }
                // Round through the JSON number format (6 significant
                // digits) before deriving ratios: a --merge-shards
                // reassembly reads these metrics back from fragment
                // text, and the derived table must come out
                // bit-identical either way.
                auto rounded = [](double v) {
                    char buf[32];
                    std::snprintf(buf, sizeof(buf), "%.6g", v);
                    return std::strtod(buf, nullptr);
                };
                FaultSide &side = side_of(base, mit);
                for (const auto &[metric, value] : cell.metrics) {
                    if (metric == "svc_goodput_rps")
                        side.goodput = rounded(value);
                    else if (metric == "svc_p99")
                        side.p99 = rounded(value);
                }
            }
            bool any = false;
            for (const auto &[base, pair] : pairs)
                any = any || (pair.mit.goodput >= 0.0 &&
                              pair.nomit.goodput >= 0.0);
            if (any) {
                w.key("fault_comparison").beginArray();
                for (const auto &[base, pair] : pairs) {
                    if (pair.mit.goodput < 0.0 ||
                        pair.nomit.goodput < 0.0)
                        continue;
                    w.beginObject();
                    w.key("name").value(base);
                    w.key("goodput_mit").value(pair.mit.goodput);
                    w.key("goodput_nomit").value(pair.nomit.goodput);
                    w.key("retention").value(
                        pair.nomit.goodput > 0.0
                            ? pair.mit.goodput / pair.nomit.goodput
                            : 0.0);
                    w.key("p99_mit").value(pair.mit.p99);
                    w.key("p99_nomit").value(pair.nomit.p99);
                    w.key("mitigation_wins").value(
                        pair.mit.goodput > pair.nomit.goodput);
                    w.endObject();
                }
                w.endArray();
            }
        }
        w.endObject();
    }
    w.endObject();

    const std::string leaf =
        file_name.empty() ? "BENCH_" + harness + ".json" : file_name;
    const std::string path = out_dir + "/" + leaf;
    std::ofstream out(path);
    if (!out)
        return "";
    out << w.str() << "\n";
    out.flush(); // surface disk-full/IO errors before the success check
    return out ? path : "";
}

} // namespace bench

#endif // DSTRANGE_BENCH_BENCH_UTIL_H
