/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: standard
 * base configuration, environment overrides, and row formatting.
 */

#ifndef DSTRANGE_BENCH_BENCH_UTIL_H
#define DSTRANGE_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/env_util.h"
#include "common/json_writer.h"
#include "drstrange.h"

namespace bench {

/**
 * Base configuration builder for all figure benches, the single entry
 * point shared with the CLI and run_all. The per-core instruction
 * budget is scaled down from the paper's 200M-instruction SimPoints so
 * the whole harness runs in minutes; override with DS_INSTR_BUDGET.
 * DS_CONFIG may hold extra key=value config text (see
 * sim/config_text.h) applied on top — e.g.
 * DS_CONFIG="mechanism=quac buffer-entries=32".
 */
inline dstrange::sim::SimulationBuilder
baseBuilder()
{
    dstrange::sim::SimulationBuilder b;
    b.instrBudget(dstrange::envU64("DS_INSTR_BUDGET", 200000));
    if (const char *text = std::getenv("DS_CONFIG")) {
        try {
            b.applyText(text);
        } catch (const std::exception &e) {
            std::cerr << "DS_CONFIG: " << e.what() << "\n";
            std::exit(2);
        }
    }
    return b;
}

/** Base configuration for all figure benches (baseBuilder()'s config). */
inline dstrange::sim::SimConfig
baseConfig()
{
    return baseBuilder().config();
}

/** Format a ratio with 3 decimals. */
inline std::string
num(double v, int precision = 3)
{
    return dstrange::TablePrinter::num(v, precision);
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n\n";
}

/** Wall-clock stopwatch for perf records. */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    /** Milliseconds elapsed since construction (or the last reset). */
    double elapsedMs() const
    {
        const auto d = std::chrono::steady_clock::now() - start;
        return std::chrono::duration<double, std::milli>(d).count();
    }

    void reset() { start = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * One benchmark execution in a machine-readable result file: the bench
 * name, how long it ran, whether it succeeded, and any named metrics
 * the bench chose to report.
 */
struct BenchRecord {
    std::string name;
    double wallMs = 0.0;
    int exitCode = 0;
    std::vector<std::pair<std::string, double>> metrics;
};

/**
 * Directory for BENCH_*.json output. Defaults to the current working
 * directory; override with DS_BENCH_OUT.
 */
inline std::string
benchOutputDir()
{
    if (const char *env = std::getenv("DS_BENCH_OUT"))
        return env;
    return ".";
}

/**
 * Write a BENCH_<harness>.json perf record for a set of benchmark
 * executions. Returns the path written, or an empty string on I/O
 * failure. The schema is intentionally flat so the perf-trajectory
 * tooling can diff runs across commits.
 */
inline std::string
writeBenchJson(const std::string &harness,
               const std::vector<BenchRecord> &records,
               const std::string &out_dir = benchOutputDir())
{
    dstrange::JsonWriter w;
    w.beginObject();
    w.key("schema").value("drstrange-bench-v1");
    w.key("harness").value(harness);
    const dstrange::sim::SimConfig base = baseConfig();
    w.key("instr_budget").value(
        static_cast<std::uint64_t>(base.instrBudget));
    w.key("config").value(dstrange::sim::serializeConfig(base));
    w.key("results").beginArray();
    for (const BenchRecord &rec : records) {
        w.beginObject();
        w.key("name").value(rec.name);
        w.key("wall_ms").value(rec.wallMs);
        w.key("exit_code").value(rec.exitCode);
        w.key("ok").value(rec.exitCode == 0);
        w.key("metrics").beginObject();
        for (const auto &[metric, value] : rec.metrics)
            w.key(metric).value(value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();

    const std::string path = out_dir + "/BENCH_" + harness + ".json";
    std::ofstream out(path);
    if (!out)
        return "";
    out << w.str() << "\n";
    out.flush(); // surface disk-full/IO errors before the success check
    return out ? path : "";
}

} // namespace bench

#endif // DSTRANGE_BENCH_BENCH_UTIL_H
