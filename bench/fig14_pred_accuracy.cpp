/**
 * @file
 * Figure 14: DRAM idleness predictor accuracy — per two-core workload
 * (left) and across 2-, 4-, 8-, 16-core workload groups (right), for
 * the simple table-based predictor and the RL agent.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 14: idleness predictor accuracy",
                  "percentage of correctly predicted idle periods");

    sim::SimConfig cfg = bench::baseConfig();
    sim::SweepRunner sweep = bench::baseSweepRunner();
    const std::vector<std::string> designs = {
        sim::designKey(sim::SystemDesign::DrStrange),
        sim::designKey(sim::SystemDesign::DrStrangeRl)};

    TablePrinter t;
    t.setHeader({"workload", "DR-STRANGE", "DR-STRANGE+RL"});
    std::vector<double> simple_acc, rl_acc;

    const auto dual_mixes = workloads::dualCorePlottedMixes(5120.0);
    const auto dual_results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, dual_mixes));
    for (std::size_t i = 0; i < dual_mixes.size(); ++i) {
        const double s = dual_results[i * 2 + 0].result.predictorAccuracy;
        const double r = dual_results[i * 2 + 1].result.predictorAccuracy;
        simple_acc.push_back(s);
        rl_acc.push_back(r);
        t.addRow({dual_mixes[i].apps[0], bench::num(s * 100.0, 1),
                  bench::num(r * 100.0, 1)});
    }
    t.addRow({"AVG", bench::num(mean(simple_acc) * 100.0, 1),
              bench::num(mean(rl_acc) * 100.0, 1)});
    t.print(std::cout);

    // Right panel: multicore geometric means. The reduced-budget cells
    // carry their configuration explicitly.
    std::cout << "\nMulticore workload groups:\n";
    TablePrinter m;
    m.setHeader({"cores", "DR-STRANGE", "DR-STRANGE+RL"});
    m.addRow({"2-core", bench::num(mean(simple_acc) * 100.0, 1),
              bench::num(mean(rl_acc) * 100.0, 1)});

    sim::SimConfig mcfg = cfg;
    mcfg.instrBudget = std::min<std::uint64_t>(cfg.instrBudget, 50000);
    for (unsigned cores : {4u, 8u, 16u}) {
        std::vector<sim::SweepRunner::Cell> cells;
        for (char cat : {'L', 'M', 'H'}) {
            const auto mixes =
                workloads::multiCoreCategoryGroup(cores, cat, cfg.seed);
            for (unsigned i = 0; i < 3; ++i) { // 3 mixes per category
                for (const std::string &d : designs) {
                    sim::SweepRunner::Cell cell;
                    sim::SimConfig c = mcfg;
                    sim::DesignRegistry::instance().apply(d, c);
                    cell.config = std::move(c);
                    cell.spec = mixes[i];
                    cells.push_back(std::move(cell));
                }
            }
        }
        const auto results = bench::runCellsOrExit(sweep, cells);
        std::vector<double> s_acc, r_acc;
        for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
            s_acc.push_back(results[i].result.predictorAccuracy);
            r_acc.push_back(results[i + 1].result.predictorAccuracy);
        }
        m.addRow({std::to_string(cores) + "-core",
                  bench::num(mean(s_acc) * 100.0, 1),
                  bench::num(mean(r_acc) * 100.0, 1)});
    }
    m.print(std::cout);

    std::cout << "\nPaper shape: ~80% accuracy for both predictors on "
                 "two-core workloads, lower\nwith more cores (less "
                 "idleness, more complex interference).\n";
    return 0;
}
