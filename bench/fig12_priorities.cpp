/**
 * @file
 * Figure 12: impact of priority-based RNG-aware scheduling — normalized
 * weighted speedup of non-RNG applications (left) and slowdown of the
 * RNG application (right) when the OS prioritizes non-RNG vs RNG
 * applications, on 4-, 8-, 16-core workloads.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 12: priority-based RNG-aware scheduling",
                  "DR-STRaNGe with non-RNG vs RNG applications "
                  "prioritized, normalized to the baseline");

    sim::SimConfig cfg = bench::baseConfig();
    cfg.instrBudget = std::min<std::uint64_t>(cfg.instrBudget, 50000);

    TablePrinter t;
    t.setHeader({"cores", "WS drstr(nonRNG-prio)", "WS drstr(RNG-prio)",
                 "RNGsd oblivious", "RNGsd drstr(nonRNG-prio)",
                 "RNGsd drstr(RNG-prio)"});

    // Three explicit-config cells per mix (baseline, non-RNG
    // prioritized, RNG prioritized), fanned out per core-count group
    // through the shared SweepRunner.
    sim::SweepRunner sweep = bench::baseSweepRunner();
    std::vector<double> gm_ws_non, gm_ws_rng;
    for (unsigned cores : {4u, 8u, 16u}) {
        std::vector<double> ws_non, ws_rng, sd_base, sd_non, sd_rng;
        const auto mixes =
            workloads::multiCoreCategoryGroup(cores, 'M', cfg.seed);

        std::vector<sim::SweepRunner::Cell> cells;
        for (const auto &mix : mixes) {
            sim::SimConfig base_cfg = cfg;
            sim::applyDesign(base_cfg, sim::SystemDesign::RngOblivious);

            // Non-RNG applications prioritized (priority 5 vs 0).
            sim::SimConfig non_cfg = cfg;
            sim::applyDesign(non_cfg, sim::SystemDesign::DrStrange);
            non_cfg.priorities.assign(cores, 5);
            non_cfg.priorities.back() = 0; // the RNG core

            // RNG application prioritized.
            sim::SimConfig rng_cfg = cfg;
            sim::applyDesign(rng_cfg, sim::SystemDesign::DrStrange);
            rng_cfg.priorities.assign(cores, 0);
            rng_cfg.priorities.back() = 5;

            for (const sim::SimConfig &c : {base_cfg, non_cfg, rng_cfg}) {
                sim::SweepRunner::Cell cell;
                cell.config = c;
                cell.spec = mix;
                cells.push_back(std::move(cell));
            }
        }
        const auto results = bench::runCellsOrExit(sweep, cells);

        for (std::size_t m = 0; m < mixes.size(); ++m) {
            const auto &base = results[m * 3 + 0].result;
            const auto &non_prio = results[m * 3 + 1].result;
            const auto &rng_prio = results[m * 3 + 2].result;
            ws_non.push_back(non_prio.weightedSpeedupNonRng /
                             base.weightedSpeedupNonRng);
            ws_rng.push_back(rng_prio.weightedSpeedupNonRng /
                             base.weightedSpeedupNonRng);
            sd_base.push_back(base.rngSlowdown());
            sd_non.push_back(non_prio.rngSlowdown());
            sd_rng.push_back(rng_prio.rngSlowdown());
        }
        t.addRow({std::to_string(cores) + "-CORE",
                  bench::num(geomean(ws_non)), bench::num(geomean(ws_rng)),
                  bench::num(mean(sd_base)), bench::num(mean(sd_non)),
                  bench::num(mean(sd_rng))});
        gm_ws_non.push_back(geomean(ws_non));
        gm_ws_rng.push_back(geomean(ws_rng));
    }
    t.addRow({"GMEAN", bench::num(geomean(gm_ws_non)),
              bench::num(geomean(gm_ws_rng)), "", "", ""});
    t.print(std::cout);

    std::cout << "\nPaper shape: prioritizing non-RNG applications "
                 "raises their weighted speedup\n(+8.9% avg); "
                 "prioritizing the RNG application improves its "
                 "performance (+9.9% avg);\nboth beat the RNG-oblivious "
                 "baseline.\n";
    return 0;
}
