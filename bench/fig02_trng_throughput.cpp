/**
 * @file
 * Figure 2: effect of the DRAM TRNG mechanism's throughput (200 Mb/s to
 * 6.4 Gb/s, D-RaNGe-style latency) on non-RNG application slowdown
 * (left) and system unfairness (right), as box plots over 43 two-core
 * workloads with the 5 Gb/s RNG benchmark.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

namespace {

void
printBox(TablePrinter &t, const std::string &label, const BoxSummary &box)
{
    t.addRow({label, bench::num(box.min), bench::num(box.q1),
              bench::num(box.median), bench::num(box.q3),
              bench::num(box.max), std::to_string(box.highOutliers)});
}

} // namespace

int
main()
{
    bench::banner("Figure 2: TRNG throughput sweep",
                  "slowdown (left) and unfairness (right) box plots vs. "
                  "TRNG system throughput");

    TablePrinter slowdown_t, unfairness_t;
    const std::vector<std::string> header = {
        "throughput", "min", "q1", "median", "q3", "max", "outliers"};
    slowdown_t.setHeader(header);
    unfairness_t.setHeader(header);

    for (double mbps : {200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0}) {
        sim::SimConfig cfg = bench::baseConfig();
        cfg.mechanism = trng::TrngMechanism::withSystemThroughput(mbps, 4);
        sim::Runner runner(cfg);

        std::vector<double> slowdowns, unfairnesses;
        for (const auto &mix : workloads::dualCoreMixes(5120.0)) {
            const auto res =
                runner.run(sim::SystemDesign::RngOblivious, mix);
            slowdowns.push_back(res.avgNonRngSlowdown());
            unfairnesses.push_back(res.unfairnessIndex);
        }
        const std::string label = bench::num(mbps / 100.0, 0) + "x100Mb/s";
        printBox(slowdown_t, label, boxSummary(slowdowns));
        printBox(unfairness_t, label, boxSummary(unfairnesses));
    }

    std::cout << "Non-RNG slowdown distribution:\n";
    slowdown_t.print(std::cout);
    std::cout << "\nUnfairness distribution:\n";
    unfairness_t.print(std::cout);
    std::cout << "\nPaper shape: both max slowdown (7.3 at 200 Mb/s) and "
                 "max unfairness (8.5)\nfall as TRNG throughput grows and "
                 "saturate around 3.2 Gb/s.\n";
    return 0;
}
