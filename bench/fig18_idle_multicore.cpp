/**
 * @file
 * Figure 18 (appendix): distribution of DRAM idle period lengths of
 * multicore (4/8/16-core) workloads consisting of non-RNG applications,
 * grouped by memory intensity.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 18: multicore DRAM idle period lengths",
                  "box plot per workload group; line = 64-bit generation "
                  "latency");

    sim::SimConfig cfg = bench::baseConfig();
    cfg.instrBudget = std::min<std::uint64_t>(cfg.instrBudget, 50000);
    const Cycle gen64 =
        cfg.mechanism.demandLatency(64, cfg.geometry.channels);

    TablePrinter t;
    t.setHeader({"group", "min", "q1", "median", "q3", "max",
                 "% < gen64"});

    // Grid cells over all groups; the shared runner collects each
    // run's idle-period distribution into the cell result.
    sim::SweepRunner sweep = bench::baseSweepRunner();
    sweep.runner().setCollectIdlePeriods(true);
    sim::SimConfig run_cfg = cfg;
    sim::applyDesign(run_cfg, sim::SystemDesign::RngOblivious);

    struct Group
    {
        unsigned cores;
        char cat;
    };
    std::vector<Group> groups;
    std::vector<sim::SweepRunner::Cell> cells;
    for (unsigned cores : {4u, 8u, 16u}) {
        for (char cat : {'L', 'M', 'H'}) {
            groups.push_back({cores, cat});
            auto mixes =
                workloads::multiCoreCategoryGroup(cores, cat, cfg.seed);
            for (unsigned m = 0; m < 4; ++m) { // 4 mixes per group
                sim::SweepRunner::Cell cell;
                cell.config = run_cfg;
                cell.spec = mixes[m];
                cell.spec.rngThroughputMbps = 0.0; // non-RNG only
                cells.push_back(std::move(cell));
            }
        }
    }
    const auto results = bench::runCellsOrExit(sweep, cells);

    for (std::size_t g = 0; g < groups.size(); ++g) {
        std::vector<double> lengths;
        std::uint64_t below = 0;
        for (unsigned m = 0; m < 4; ++m) {
            const auto &res = results[g * 4 + m].result;
            for (std::uint32_t len : res.idlePeriods) {
                lengths.push_back(len);
                below += len < gen64;
            }
        }
        const BoxSummary box = boxSummary(lengths);
        t.addRow({std::string(1, groups[g].cat) + "(" +
                      std::to_string(groups[g].cores) + ")",
                  bench::num(box.min, 0), bench::num(box.q1, 0),
                  bench::num(box.median, 0), bench::num(box.q3, 0),
                  bench::num(box.max, 0),
                  bench::num(lengths.empty() ? 0.0
                                             : 100.0 * below /
                                                   lengths.size(),
                             1)});
    }
    t.print(std::cout);
    std::cout << "\n64-bit generation latency: " << gen64
              << " bus cycles.\nPaper shape: 84.3% of idle periods are "
                 "below the generation threshold; idle\nperiods shrink "
                 "with more cores and higher memory intensity.\n";
    return 0;
}
