/**
 * @file
 * Figure 17 (appendix): dual-core workloads with an RNG application
 * requiring 10 Gb/s RNG throughput, for the three designs.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 17: 10 Gb/s RNG applications",
                  "slowdowns and unfairness at a 10 Gb/s requirement");

    sim::SweepRunner sweep = bench::baseSweepRunner();
    const std::vector<std::string> designs = {
        sim::designKey(sim::SystemDesign::RngOblivious),
        sim::designKey(sim::SystemDesign::GreedyIdle),
        sim::designKey(sim::SystemDesign::DrStrange),
    };
    const auto mixes = workloads::dualCorePlottedMixes(10240.0);
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    std::vector<double> non_rng[3], rng[3], unf[3];
    TablePrinter t;
    t.setHeader({"workload", "nonRNG:obliv", "nonRNG:greedy",
                 "nonRNG:drstr", "RNG:obliv", "RNG:greedy", "RNG:drstr",
                 "unf:obliv", "unf:greedy", "unf:drstr"});

    for (std::size_t i = 0; i < mixes.size(); ++i) {
        std::vector<std::string> row{mixes[i].apps[0]};
        double cells[3][3];
        for (unsigned d = 0; d < 3; ++d) {
            const auto &res = results[i * designs.size() + d].result;
            cells[0][d] = res.avgNonRngSlowdown();
            cells[1][d] = res.rngSlowdown();
            cells[2][d] = res.unfairnessIndex;
            non_rng[d].push_back(cells[0][d]);
            rng[d].push_back(cells[1][d]);
            unf[d].push_back(cells[2][d]);
        }
        for (unsigned m = 0; m < 3; ++m)
            for (unsigned d = 0; d < 3; ++d)
                row.push_back(bench::num(cells[m][d]));
        t.addRow(row);
    }
    std::vector<std::string> avg{"AVG"};
    for (unsigned m = 0; m < 3; ++m) {
        for (unsigned d = 0; d < 3; ++d) {
            avg.push_back(bench::num(
                mean(m == 0 ? non_rng[d] : m == 1 ? rng[d] : unf[d])));
        }
    }
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\nDR-STRaNGe vs RNG-Oblivious at 10 Gb/s: non-RNG "
              << bench::num((mean(non_rng[0]) - mean(non_rng[2])) /
                                mean(non_rng[0]) * 100.0,
                            1)
              << "% lower, RNG "
              << bench::num((mean(rng[0]) - mean(rng[2])) / mean(rng[0]) *
                                100.0,
                            1)
              << "% lower, unfairness "
              << bench::num(
                     (mean(unf[0]) - mean(unf[2])) / mean(unf[0]) * 100.0,
                     1)
              << "% lower (paper: 34.9%, 24.5%, 56.9%).\n";
    return 0;
}
