/**
 * @file
 * Figure 8: slowdown of the RNG application in (a) 4-core workload
 * groups and (b) 4-, 8-, 16-core L/M/H groups, for the RNG-oblivious
 * baseline, the Greedy Idle design, and DR-STRaNGe.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

namespace {

/** Per-group mean RNG slowdown of the three designs, from cells laid
 *  out in sim::SweepRunner::grid() order (three designs per mix). */
void
addGroupRow(TablePrinter &t,
            const std::vector<sim::SweepRunner::CellResult> &results,
            const std::vector<workloads::WorkloadSpec> &mixes,
            const std::string &group)
{
    std::vector<double> obliv, greedy, dr;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        if (mixes[m].group != group)
            continue;
        obliv.push_back(results[m * 3 + 0].result.rngSlowdown());
        greedy.push_back(results[m * 3 + 1].result.rngSlowdown());
        dr.push_back(results[m * 3 + 2].result.rngSlowdown());
    }
    t.addRow({group, bench::num(mean(obliv)), bench::num(mean(greedy)),
              bench::num(mean(dr))});
}

} // namespace

int
main()
{
    bench::banner("Figure 8: multi-core RNG application slowdown",
                  "RNG app slowdown vs. single-core baseline execution");

    sim::SimulationBuilder b = bench::baseBuilder();
    b.instrBudget(
        std::min<std::uint64_t>(b.config().instrBudget, 60000));
    const std::uint64_t seed = b.config().seed;

    std::vector<std::string> group_labels;
    const std::vector<workloads::WorkloadSpec> mixes =
        bench::multiCoreSweepMixes(seed, &group_labels);
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};
    sim::SweepRunner sweep = b.buildSweepRunner();
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    TablePrinter t;
    t.setHeader({"group", "RNG-Oblivious", "Greedy", "DR-STRANGE"});

    for (const std::string group : {"LLLS", "LLHS", "LHHS", "HHHS"})
        addGroupRow(t, results, mixes, group);

    for (const std::string &label : group_labels)
        addGroupRow(t, results, mixes, label);

    t.print(std::cout);
    std::cout << "\nPaper shape: DR-STRaNGe improves RNG-app performance "
                 "in every group (17.8% avg\nfor 4-core groups) and at "
                 "least matches the Greedy Idle design.\n";
    return 0;
}
