/**
 * @file
 * Figure 8: slowdown of the RNG application in (a) 4-core workload
 * groups and (b) 4-, 8-, 16-core L/M/H groups, for the RNG-oblivious
 * baseline, the Greedy Idle design, and DR-STRaNGe.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

namespace {

void
addGroupRow(TablePrinter &t, sim::Runner &runner,
            const std::vector<workloads::WorkloadSpec> &mixes,
            const std::string &group)
{
    std::vector<double> obliv, greedy, dr;
    for (const auto &mix : mixes) {
        if (mix.group != group)
            continue;
        obliv.push_back(runner.run("oblivious", mix).rngSlowdown());
        greedy.push_back(runner.run("greedy", mix).rngSlowdown());
        dr.push_back(runner.run("drstrange", mix).rngSlowdown());
    }
    t.addRow({group, bench::num(mean(obliv)), bench::num(mean(greedy)),
              bench::num(mean(dr))});
}

} // namespace

int
main()
{
    bench::banner("Figure 8: multi-core RNG application slowdown",
                  "RNG app slowdown vs. single-core baseline execution");

    sim::SimConfig cfg = bench::baseConfig();
    cfg.instrBudget = std::min<std::uint64_t>(cfg.instrBudget, 60000);
    sim::Runner runner{cfg};

    TablePrinter t;
    t.setHeader({"group", "RNG-Oblivious", "Greedy", "DR-STRANGE"});

    const auto four_core = workloads::fourCoreGroups(cfg.seed);
    for (const std::string group : {"LLLS", "LLHS", "LHHS", "HHHS"})
        addGroupRow(t, runner, four_core, group);

    for (unsigned cores : {4u, 8u, 16u}) {
        for (char cat : {'L', 'M', 'H'}) {
            const auto mixes =
                workloads::multiCoreCategoryGroup(cores, cat, cfg.seed);
            addGroupRow(t, runner, mixes, mixes.front().group);
        }
    }

    t.print(std::cout);
    std::cout << "\nPaper shape: DR-STRaNGe improves RNG-app performance "
                 "in every group (17.8% avg\nfor 4-core groups) and at "
                 "least matches the Greedy Idle design.\n";
    return 0;
}
