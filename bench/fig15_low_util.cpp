/**
 * @file
 * Figure 15: impact of low-utilization prediction — DR-STRaNGe with the
 * low-utilization threshold disabled (0) vs the default (4), against
 * the RNG-oblivious baseline.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 15: low-utilization prediction",
                  "threshold 0 (idle-only fill) vs threshold 4");

    sim::SweepRunner sweep = bench::baseSweepRunner();
    const std::vector<std::string> designs = {
        sim::designKey(sim::SystemDesign::RngOblivious),
        sim::designKey(sim::SystemDesign::DrStrangeNoLowUtil),
        sim::designKey(sim::SystemDesign::DrStrange),
    };
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    std::vector<double> non_rng[3], rng[3];
    TablePrinter t;
    t.setHeader({"workload", "nonRNG:obliv", "nonRNG:thr0",
                 "nonRNG:thr4", "RNG:obliv", "RNG:thr0", "RNG:thr4"});

    for (std::size_t i = 0; i < mixes.size(); ++i) {
        std::vector<std::string> row{mixes[i].apps[0]};
        double cells[2][3];
        for (unsigned d = 0; d < 3; ++d) {
            const auto &res = results[i * designs.size() + d].result;
            cells[0][d] = res.avgNonRngSlowdown();
            cells[1][d] = res.rngSlowdown();
            non_rng[d].push_back(cells[0][d]);
            rng[d].push_back(cells[1][d]);
        }
        for (unsigned m = 0; m < 2; ++m)
            for (unsigned d = 0; d < 3; ++d)
                row.push_back(bench::num(cells[m][d]));
        t.addRow(row);
    }
    std::vector<std::string> avg{"AVG"};
    for (unsigned m = 0; m < 2; ++m)
        for (unsigned d = 0; d < 3; ++d)
            avg.push_back(bench::num(mean(m == 0 ? non_rng[d] : rng[d])));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\nThreshold 4 vs threshold 0: non-RNG "
              << bench::num((mean(non_rng[1]) - mean(non_rng[2])) /
                                mean(non_rng[1]) * 100.0,
                            1)
              << "% lower, RNG "
              << bench::num((mean(rng[1]) - mean(rng[2])) / mean(rng[1]) *
                                100.0,
                            1)
              << "% lower (paper: 5.5% and 11.7%).\n";
    return 0;
}
