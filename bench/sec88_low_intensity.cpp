/**
 * @file
 * Section 8.8: DR-STRaNGe with low-intensity RNG applications
 * (640 Mb/s). Gains shrink because the baseline's RNG interference is
 * small at this intensity.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Section 8.8: low-intensity RNG applications",
                  "640 Mb/s RNG requirement, three designs");

    sim::Runner runner(bench::baseConfig());
    std::vector<double> base_non, base_rng, base_unf;
    std::vector<double> dr_non, dr_rng, dr_unf;

    for (const auto &mix : workloads::dualCorePlottedMixes(640.0)) {
        const auto base =
            runner.run(sim::SystemDesign::RngOblivious, mix);
        const auto dr = runner.run(sim::SystemDesign::DrStrange, mix);
        base_non.push_back(base.avgNonRngSlowdown());
        base_rng.push_back(base.rngSlowdown());
        base_unf.push_back(base.unfairnessIndex);
        dr_non.push_back(dr.avgNonRngSlowdown());
        dr_rng.push_back(dr.rngSlowdown());
        dr_unf.push_back(dr.unfairnessIndex);
    }

    TablePrinter t;
    t.setHeader({"metric", "RNG-Oblivious", "DR-STRANGE", "change"});
    auto row = [&](const char *name, double base, double dr) {
        t.addRow({name, bench::num(base), bench::num(dr),
                  bench::num((base - dr) / base * 100.0, 1) + "%"});
    };
    row("avg non-RNG slowdown", mean(base_non), mean(dr_non));
    row("avg RNG slowdown", mean(base_rng), mean(dr_rng));
    row("avg unfairness", mean(base_unf), mean(dr_unf));
    t.print(std::cout);

    std::cout << "\nPaper shape: modest improvements (4.6% non-RNG, 3.2% "
                 "RNG) and little fairness\nchange — RNG interference is "
                 "already low at 640 Mb/s.\n";
    return 0;
}
