/**
 * @file
 * Figure 7: normalized weighted speedup of non-RNG applications in (a)
 * the four 4-core workload groups and (b) 4-, 8-, 16-core L/M/H groups,
 * for the Greedy Idle design and DR-STRaNGe, normalized to the
 * RNG-oblivious baseline.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

namespace {

/** Geomean of Greedy and DR-STRaNGe WS normalized to Oblivious. */
std::pair<double, double>
normalizedWs(sim::Runner &runner,
             const std::vector<workloads::WorkloadSpec> &mixes,
             const std::string &group)
{
    std::vector<double> greedy, dr;
    for (const auto &mix : mixes) {
        if (mix.group != group)
            continue;
        const double base =
            runner.run(sim::SystemDesign::RngOblivious, mix)
                .weightedSpeedupNonRng;
        greedy.push_back(
            runner.run(sim::SystemDesign::GreedyIdle, mix)
                .weightedSpeedupNonRng /
            base);
        dr.push_back(runner.run(sim::SystemDesign::DrStrange, mix)
                         .weightedSpeedupNonRng /
                     base);
    }
    return {geomean(greedy), geomean(dr)};
}

} // namespace

int
main()
{
    bench::banner("Figure 7: multi-core normalized weighted speedup",
                  "non-RNG weighted speedup vs. RNG-oblivious baseline");

    sim::SimConfig cfg = bench::baseConfig();
    cfg.instrBudget = std::min<std::uint64_t>(cfg.instrBudget, 60000);
    sim::Runner runner(cfg);

    TablePrinter t;
    t.setHeader({"group", "Greedy", "DR-STRANGE"});

    // (a) Four-core groups.
    const auto four_core = workloads::fourCoreGroups(cfg.seed);
    std::vector<double> all_greedy, all_dr;
    for (const std::string group : {"LLLS", "LLHS", "LHHS", "HHHS"}) {
        const auto [g, d] = normalizedWs(runner, four_core, group);
        t.addRow({group, bench::num(g), bench::num(d)});
        all_greedy.push_back(g);
        all_dr.push_back(d);
    }
    t.addRow({"GMEAN(4-core)", bench::num(geomean(all_greedy)),
              bench::num(geomean(all_dr))});

    // (b) L/M/H groups at 4, 8, 16 cores.
    for (unsigned cores : {4u, 8u, 16u}) {
        for (char cat : {'L', 'M', 'H'}) {
            const auto mixes =
                workloads::multiCoreCategoryGroup(cores, cat, cfg.seed);
            const auto [g, d] =
                normalizedWs(runner, mixes, mixes.front().group);
            t.addRow({mixes.front().group, bench::num(g), bench::num(d)});
        }
    }

    t.print(std::cout);
    std::cout << "\nPaper shape: DR-STRaNGe improves 4-core weighted "
                 "speedup by 7.6% on average,\nmore for memory-intensive "
                 "groups; 12.1/8.2/6.1% for H/M/L groups.\n";
    return 0;
}
