/**
 * @file
 * Figure 7: normalized weighted speedup of non-RNG applications in (a)
 * the four 4-core workload groups and (b) 4-, 8-, 16-core L/M/H groups,
 * for the Greedy Idle design and DR-STRaNGe, normalized to the
 * RNG-oblivious baseline.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

namespace {

/**
 * Geomean of Greedy and DR-STRaNGe WS normalized to Oblivious, over
 * the cells of @p results whose mix belongs to @p group. Cell layout is
 * sim::SweepRunner::grid() order: three designs (oblivious, greedy,
 * drstrange) per mix.
 */
std::pair<double, double>
normalizedWs(const std::vector<sim::SweepRunner::CellResult> &results,
             const std::vector<workloads::WorkloadSpec> &mixes,
             const std::string &group)
{
    std::vector<double> greedy, dr;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        if (mixes[m].group != group)
            continue;
        const double base =
            results[m * 3 + 0].result.weightedSpeedupNonRng;
        greedy.push_back(
            results[m * 3 + 1].result.weightedSpeedupNonRng / base);
        dr.push_back(
            results[m * 3 + 2].result.weightedSpeedupNonRng / base);
    }
    return {geomean(greedy), geomean(dr)};
}

} // namespace

int
main()
{
    bench::banner("Figure 7: multi-core normalized weighted speedup",
                  "non-RNG weighted speedup vs. RNG-oblivious baseline");

    sim::SimulationBuilder b = bench::baseBuilder();
    b.instrBudget(
        std::min<std::uint64_t>(b.config().instrBudget, 60000));
    const std::uint64_t seed = b.config().seed;

    // One flat grid over every group's mixes; cells fan out across the
    // worker pool and come back in deterministic grid order.
    std::vector<std::string> group_labels;
    const std::vector<workloads::WorkloadSpec> mixes =
        bench::multiCoreSweepMixes(seed, &group_labels);
    const std::vector<std::string> designs = {"oblivious", "greedy",
                                              "drstrange"};
    sim::SweepRunner sweep = b.buildSweepRunner();
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    TablePrinter t;
    t.setHeader({"group", "Greedy", "DR-STRANGE"});

    // (a) Four-core groups.
    std::vector<double> all_greedy, all_dr;
    for (const std::string group : {"LLLS", "LLHS", "LHHS", "HHHS"}) {
        const auto [g, d] = normalizedWs(results, mixes, group);
        t.addRow({group, bench::num(g), bench::num(d)});
        all_greedy.push_back(g);
        all_dr.push_back(d);
    }
    t.addRow({"GMEAN(4-core)", bench::num(geomean(all_greedy)),
              bench::num(geomean(all_dr))});

    // (b) L/M/H groups at 4, 8, 16 cores.
    for (const std::string &label : group_labels) {
        const auto [g, d] = normalizedWs(results, mixes, label);
        t.addRow({label, bench::num(g), bench::num(d)});
    }

    t.print(std::cout);
    std::cout << "\nPaper shape: DR-STRaNGe improves 4-core weighted "
                 "speedup by 7.6% on average,\nmore for memory-intensive "
                 "groups; 12.1/8.2/6.1% for H/M/L groups.\n";
    return 0;
}
