/**
 * @file
 * Section 6 security analysis, made quantitative:
 *
 * 1. Timing side channel: an attacker that measures its own random
 *    number latency can tell whether the shared buffer was empty, and
 *    thereby whether a victim is consuming random numbers. We measure
 *    the attacker's detection accuracy with a shared buffer vs with
 *    per-application buffer partitions (the paper's countermeasure).
 *
 * 2. Covert channel: a sender signals bits by draining (1) or not
 *    draining (0) the buffer; the receiver decodes via its own latency.
 *    We report raw channel accuracy with and without partitioning.
 */

#include <iostream>

#include "bench_util.h"
#include "mem/memory_controller.h"

using namespace dstrange;

namespace {

/** Harness: a victim/sender (core 0) and an attacker/receiver (core 1)
 *  sharing one DR-STRaNGe memory controller, driven cycle by cycle. */
class Channel
{
  public:
    explicit Channel(unsigned partitions)
    {
        sim::SimConfig sc;
        sim::applyDesign(sc, sim::SystemDesign::DrStrange);
        sc.bufferPartitions = partitions;
        mem::McConfig mc_cfg = sim::mcConfigFor(sc);
        mc = std::make_unique<mem::MemoryController>(
            mc_cfg, timings, geom, sc.mechanism, 2);
        mc->setCompletionCallback(
            [this](CoreId core, std::uint64_t, mem::ReqType,
                   mem::ServePath) { done[core]++; });
    }

    /** Let the buffer fill. */
    void
    fill(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            mc->tick(now++);
    }

    /** Issue @p n RNG requests for @p core and wait for completion;
     *  returns total latency in cycles. */
    Cycle
    drain(CoreId core, unsigned n)
    {
        const Cycle start = now;
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t target = done[core] + 1;
            mem::Request req;
            req.type = mem::ReqType::Rng;
            req.core = core;
            req.token = token++;
            while (!mc->enqueue(req, now))
                mc->tick(now++);
            while (done[core] < target)
                mc->tick(now++);
        }
        return now - start;
    }

  private:
    dram::DramTimings timings;
    dram::DramGeometry geom;
    std::unique_ptr<mem::MemoryController> mc;
    Cycle now = 0;
    std::uint64_t token = 0;
    std::uint64_t done[2] = {0, 0};
};

/**
 * Transmit @p bits covert bits; the receiver decodes by comparing its
 * own drain latency against a threshold calibrated on the fly.
 * @return fraction of bits decoded correctly.
 */
double
covertChannelAccuracy(unsigned partitions, const std::vector<bool> &bits)
{
    Channel chan(partitions);
    chan.fill(4000); // warm the buffer

    // Calibrate: latency with a full buffer vs after a sender drain.
    const Cycle fast = chan.drain(1, 1);
    chan.drain(0, 20); // deplete
    const Cycle slow = chan.drain(1, 1);
    const double threshold = (static_cast<double>(fast) + slow) / 2.0;
    chan.fill(4000);

    unsigned correct = 0;
    for (bool bit : bits) {
        if (bit)
            chan.drain(0, 20); // sender drains the buffer -> slow probe
        const Cycle probe = chan.drain(1, 1);
        const bool decoded = static_cast<double>(probe) > threshold;
        correct += decoded == bit;
        chan.fill(4000); // frame gap: buffer refills
    }
    return static_cast<double>(correct) / bits.size();
}

} // namespace

int
main()
{
    bench::banner("Section 6: buffer side/covert channel analysis",
                  "detection accuracy with shared vs partitioned buffer");

    // A pseudo-random message.
    Xoshiro256ss gen(1234);
    std::vector<bool> message;
    for (int i = 0; i < 64; ++i)
        message.push_back(gen.nextBool(0.5));

    TablePrinter t;
    t.setHeader({"buffer configuration", "covert-channel accuracy",
                 "verdict"});
    for (unsigned partitions : {0u, 2u}) {
        const double acc = covertChannelAccuracy(partitions, message);
        const bool leaky = acc > 0.75;
        t.addRow({partitions == 0 ? "shared (16 entries)"
                                  : "partitioned (2 x 8 entries)",
                  bench::num(acc),
                  leaky ? "channel works (leaky)" : "channel defeated"});
    }
    t.print(std::cout);

    std::cout << "\nPaper Section 6: the shared random number buffer can "
                 "be used as a covert/side\nchannel; partitioning the "
                 "buffer across applications closes it at a small\n"
                 "performance cost (each application sees a smaller "
                 "private buffer).\n";
    return 0;
}
