/**
 * @file
 * Figure 11: impact of the memory request scheduler — FR-FCFS+Cap16,
 * BLISS, and the RNG-aware scheduler (no random number buffer) — on
 * non-RNG and RNG application performance and system fairness.
 */

#include <iostream>

#include "bench_util.h"

using namespace dstrange;

int
main()
{
    bench::banner("Figure 11: memory request scheduler comparison",
                  "FR-FCFS+Cap vs BLISS vs RNG-aware (no buffer)");

    sim::SweepRunner sweep = bench::baseSweepRunner();
    const std::vector<std::string> designs = {
        "oblivious", // FR-FCFS+Cap baseline
        "bliss",
        "rng-aware",
    };
    const char *names[] = {"FR-FCFS+Cap", "BLISS", "RNG-Aware"};
    const auto mixes = workloads::dualCorePlottedMixes(5120.0);
    const auto results = bench::runCellsOrExit(
        sweep, sim::SweepRunner::grid(designs, mixes));

    TablePrinter t;
    t.setHeader({"workload", "nonRNG:frfcfs", "nonRNG:bliss",
                 "nonRNG:aware", "RNG:frfcfs", "RNG:bliss", "RNG:aware",
                 "unf:frfcfs", "unf:bliss", "unf:aware"});

    std::vector<double> non_rng[3], rng[3], unf[3];
    for (std::size_t mi = 0; mi < mixes.size(); ++mi) {
        std::vector<std::string> row{mixes[mi].apps[0]};
        double cells[3][3];
        for (unsigned d = 0; d < 3; ++d) {
            const auto &res = results[mi * designs.size() + d].result;
            cells[0][d] = res.avgNonRngSlowdown();
            cells[1][d] = res.rngSlowdown();
            cells[2][d] = res.unfairnessIndex;
            non_rng[d].push_back(cells[0][d]);
            rng[d].push_back(cells[1][d]);
            unf[d].push_back(cells[2][d]);
        }
        for (unsigned m = 0; m < 3; ++m)
            for (unsigned d = 0; d < 3; ++d)
                row.push_back(bench::num(cells[m][d]));
        t.addRow(row);
    }
    std::vector<std::string> avg{"AVG"};
    for (unsigned d = 0; d < 3; ++d)
        avg.push_back(bench::num(mean(non_rng[d])));
    for (unsigned d = 0; d < 3; ++d)
        avg.push_back(bench::num(mean(rng[d])));
    for (unsigned d = 0; d < 3; ++d)
        avg.push_back(bench::num(mean(unf[d])));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\nScheduler order: " << names[0] << ", " << names[1]
              << ", " << names[2] << ".\n";
    std::cout << "\nPaper shape: the RNG-aware scheduler improves "
                 "fairness by 16.1% and non-RNG/RNG\nperformance by "
                 "5.6%/1.6% over FR-FCFS+Cap; BLISS degrades fairness "
                 "by 6.6% because it\nblacklists memory-intensive "
                 "non-RNG applications.\n";
    return 0;
}
