/**
 * @file
 * Physical address to DRAM coordinate translation.
 */

#ifndef DSTRANGE_DRAM_ADDRESS_MAPPER_H
#define DSTRANGE_DRAM_ADDRESS_MAPPER_H

#include <cstdint>

#include "common/types.h"

namespace dstrange::dram {

/** Geometry of the simulated main memory (Table 1 defaults). */
struct DramGeometry
{
    unsigned channels = 4;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;
    unsigned rowsPerBank = 65536;
    unsigned rowBytes = 8192;

    /** Cache lines per row. */
    unsigned colsPerRow() const { return rowBytes / kLineBytes; }

    /** Bank state-machine slots per channel (across all ranks). */
    unsigned banksPerChannel() const { return ranksPerChannel * banksPerRank; }

    /** Total capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(channels) * ranksPerChannel *
               banksPerRank * rowsPerBank * rowBytes;
    }
};

/**
 * DRAM coordinates of one cache-line request. `bank` is the flat
 * rank-major bank slot within the channel (range banksPerChannel()), so
 * queue and scheduler code indexes banks without rank arithmetic; `rank`
 * is redundantly `bank / banksPerRank` for rank-aware consumers.
 */
struct DramCoord
{
    unsigned channel = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned col = 0;
    unsigned rank = 0;

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && bank == o.bank && row == o.row &&
               col == o.col && rank == o.rank;
    }
};

/**
 * Address-interleaving policy interface: an exact bijection between byte
 * addresses (at cache-line granularity, over the geometry's capacity)
 * and DRAM coordinates. Concrete policies live in the string-keyed
 * MappingRegistry (mapping_registry.h).
 */
class AddressMapping
{
  public:
    explicit AddressMapping(const DramGeometry &geometry) : geom(geometry) {}
    virtual ~AddressMapping() = default;

    /** Translate a byte address into DRAM coordinates. */
    virtual DramCoord decode(Addr addr) const = 0;

    /** Inverse of decode(); returns the base address of the line. */
    virtual Addr encode(const DramCoord &coord) const = 0;

    const DramGeometry &geometry() const { return geom; }

  protected:
    DramGeometry geom;
};

/**
 * Row:Rank:Bank:Column:Channel mapping (channel interleaved at
 * cache-line granularity) — the high-bandwidth mapping typical of
 * Ramulator setups, which lets streaming applications use all channels.
 * Registered in MappingRegistry as "row-bank-col-ch": the rank digit
 * sits just below the row, so with one rank per channel it vanishes and
 * the mapping is bit-identical to the historical single-rank scheme.
 */
class AddressMapper final : public AddressMapping
{
  public:
    explicit AddressMapper(const DramGeometry &geometry);

    DramCoord decode(Addr addr) const override;
    Addr encode(const DramCoord &coord) const override;
};

} // namespace dstrange::dram

#endif // DSTRANGE_DRAM_ADDRESS_MAPPER_H
