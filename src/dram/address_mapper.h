/**
 * @file
 * Physical address to DRAM coordinate translation.
 */

#ifndef DSTRANGE_DRAM_ADDRESS_MAPPER_H
#define DSTRANGE_DRAM_ADDRESS_MAPPER_H

#include <cstdint>

#include "common/types.h"

namespace dstrange::dram {

/** Geometry of the simulated main memory (Table 1 defaults). */
struct DramGeometry
{
    unsigned channels = 4;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;
    unsigned rowsPerBank = 65536;
    unsigned rowBytes = 8192;

    /** Cache lines per row. */
    unsigned colsPerRow() const { return rowBytes / kLineBytes; }

    /** Total capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(channels) * ranksPerChannel *
               banksPerRank * rowsPerBank * rowBytes;
    }
};

/** DRAM coordinates of one cache-line request. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned col = 0;

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && bank == o.bank && row == o.row &&
               col == o.col;
    }
};

/**
 * Row:Bank:Column:Channel mapping (channel interleaved at cache-line
 * granularity) — the high-bandwidth mapping typical of Ramulator setups,
 * which lets streaming applications use all channels.
 */
class AddressMapper
{
  public:
    explicit AddressMapper(const DramGeometry &geometry);

    /** Translate a byte address into DRAM coordinates. */
    DramCoord decode(Addr addr) const;

    /** Inverse of decode(); returns the base address of the line. */
    Addr encode(const DramCoord &coord) const;

    const DramGeometry &geometry() const { return geom; }

  private:
    DramGeometry geom;
};

} // namespace dstrange::dram

#endif // DSTRANGE_DRAM_ADDRESS_MAPPER_H
