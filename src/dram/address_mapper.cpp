#include "dram/address_mapper.h"

#include <cassert>

namespace dstrange::dram {

AddressMapper::AddressMapper(const DramGeometry &geometry) : geom(geometry)
{
    assert(geom.channels > 0 && geom.banksPerRank > 0 &&
           geom.rowsPerBank > 0 && geom.rowBytes >= kLineBytes);
}

DramCoord
AddressMapper::decode(Addr addr) const
{
    std::uint64_t line = addr / kLineBytes;
    DramCoord coord;
    coord.channel = static_cast<unsigned>(line % geom.channels);
    line /= geom.channels;
    coord.col = static_cast<unsigned>(line % geom.colsPerRow());
    line /= geom.colsPerRow();
    coord.bank = static_cast<unsigned>(line % geom.banksPerRank);
    line /= geom.banksPerRank;
    coord.row = static_cast<unsigned>(line % geom.rowsPerBank);
    return coord;
}

Addr
AddressMapper::encode(const DramCoord &coord) const
{
    std::uint64_t line = coord.row;
    line = line * geom.banksPerRank + coord.bank;
    line = line * geom.colsPerRow() + coord.col;
    line = line * geom.channels + coord.channel;
    return line * kLineBytes;
}

} // namespace dstrange::dram
