#include "dram/address_mapper.h"

#include <cassert>

namespace dstrange::dram {

AddressMapper::AddressMapper(const DramGeometry &geometry)
    : AddressMapping(geometry)
{
    assert(geom.channels > 0 && geom.ranksPerChannel > 0 &&
           geom.banksPerRank > 0 && geom.rowsPerBank > 0 &&
           geom.rowBytes >= kLineBytes);
}

DramCoord
AddressMapper::decode(Addr addr) const
{
    std::uint64_t line = addr / kLineBytes;
    DramCoord coord;
    coord.channel = static_cast<unsigned>(line % geom.channels);
    line /= geom.channels;
    coord.col = static_cast<unsigned>(line % geom.colsPerRow());
    line /= geom.colsPerRow();
    const unsigned bank_in_rank =
        static_cast<unsigned>(line % geom.banksPerRank);
    line /= geom.banksPerRank;
    coord.rank = static_cast<unsigned>(line % geom.ranksPerChannel);
    line /= geom.ranksPerChannel;
    coord.bank = coord.rank * geom.banksPerRank + bank_in_rank;
    coord.row = static_cast<unsigned>(line % geom.rowsPerBank);
    return coord;
}

Addr
AddressMapper::encode(const DramCoord &coord) const
{
    // Accept coords whose rank field was left at 0 with an in-rank bank
    // index (legacy callers) as well as decode()'s flat-bank form.
    const unsigned bank_in_rank = coord.bank % geom.banksPerRank;
    const unsigned rank =
        coord.rank != 0 ? coord.rank : coord.bank / geom.banksPerRank;
    std::uint64_t line = coord.row;
    line = line * geom.ranksPerChannel + rank;
    line = line * geom.banksPerRank + bank_in_rank;
    line = line * geom.colsPerRow() + coord.col;
    line = line * geom.channels + coord.channel;
    return line * kLineBytes;
}

} // namespace dstrange::dram
