#include "dram/bank.h"

#include <algorithm>
#include <cassert>

namespace dstrange::dram {

Bank::Bank(const DramTimings &timings) : t(timings)
{
}

Cycle
Bank::earliestIssue(DramCmd cmd) const
{
    switch (cmd) {
      case DramCmd::Act:
        return actReadyAt;
      case DramCmd::Rd:
      case DramCmd::Wr:
        return colReadyAt;
      case DramCmd::Pre:
        return preReadyAt;
      case DramCmd::Ref:
        return actReadyAt; // Rank-scope; bank only needs to be closed.
    }
    return 0;
}

void
Bank::issue(DramCmd cmd, Cycle now, std::int64_t row)
{
    assert(canIssue(cmd, now));
    switch (cmd) {
      case DramCmd::Act:
        assert(!isOpen() && row != kNoOpenRow);
        openRowId = row;
        actReadyAt = now + t.tRC;
        colReadyAt = now + t.tRCD;
        preReadyAt = now + t.tRAS;
        break;
      case DramCmd::Rd:
        assert(isOpen());
        colReadyAt = std::max(colReadyAt, now + t.tCCD);
        preReadyAt = std::max(preReadyAt, now + t.tRTP);
        break;
      case DramCmd::Wr:
        assert(isOpen());
        colReadyAt = std::max(colReadyAt, now + t.tCCD);
        // Write recovery starts at the end of the data burst.
        preReadyAt = std::max(preReadyAt, now + t.tCWL + t.tBL + t.tWR);
        break;
      case DramCmd::Pre:
        assert(isOpen());
        openRowId = kNoOpenRow;
        actReadyAt = std::max(actReadyAt, now + t.tRP);
        break;
      case DramCmd::Ref:
        assert(!isOpen());
        blockUntil(now + t.tRFC);
        break;
    }
}

void
Bank::blockUntil(Cycle readyAt)
{
    openRowId = kNoOpenRow;
    actReadyAt = std::max(actReadyAt, readyAt);
}

} // namespace dstrange::dram
