#include "dram/dram_channel.h"

#include <algorithm>
#include <cassert>

namespace dstrange::dram {

DramChannel::DramChannel(const DramTimings &timings,
                         const DramGeometry &geometry)
    : t(timings), nextRefreshAt(timings.tREFI)
{
    banks.reserve(geometry.banksPerRank);
    for (unsigned i = 0; i < geometry.banksPerRank; ++i)
        banks.emplace_back(t);
}

bool
DramChannel::rankCanAct(Cycle now) const
{
    if (anyActIssued && now < lastActAt + t.tRRD)
        return false;
    if (actWindowCount == actWindow.size()) {
        // The oldest of the last four ACTs fences tFAW.
        const Cycle oldest = actWindow[actWindowPos];
        if (now < oldest + t.tFAW)
            return false;
    }
    return true;
}

bool
DramChannel::canIssue(DramCmd cmd, unsigned bankIdx, Cycle now) const
{
    assert(bankIdx < banks.size());
    if (now < cmdBusFreeAt)
        return false;
    if (refreshBusy(now) || rngBusy(now) || pd)
        return false;

    const Bank &b = banks[bankIdx];
    switch (cmd) {
      case DramCmd::Act:
        return !b.isOpen() && b.canIssue(cmd, now) && rankCanAct(now);
      case DramCmd::Pre:
        return b.isOpen() && b.canIssue(cmd, now);
      case DramCmd::Rd:
        if (!b.isOpen() || !b.canIssue(cmd, now) || now < nextRdAt)
            return false;
        return now + t.tCL >= dataBusFreeAt;
      case DramCmd::Wr:
        if (!b.isOpen() || !b.canIssue(cmd, now) || now < nextWrAt)
            return false;
        return now + t.tCWL >= dataBusFreeAt;
      case DramCmd::Ref:
        return false; // Refresh is issued internally by tickRefresh().
    }
    return false;
}

Cycle
DramChannel::earliestIssueCycle(DramCmd cmd, unsigned bankIdx) const
{
    assert(bankIdx < banks.size());
    const Bank &b = banks[bankIdx];
    Cycle earliest = std::max(cmdBusFreeAt, b.earliestIssue(cmd));
    switch (cmd) {
      case DramCmd::Act:
        if (anyActIssued)
            earliest = std::max(earliest, lastActAt + t.tRRD);
        if (actWindowCount == actWindow.size())
            earliest = std::max(earliest, actWindow[actWindowPos] + t.tFAW);
        break;
      case DramCmd::Rd:
        earliest = std::max(earliest, nextRdAt);
        // canIssue: now + tCL >= dataBusFreeAt.
        if (dataBusFreeAt > t.tCL)
            earliest = std::max(earliest, dataBusFreeAt - t.tCL);
        break;
      case DramCmd::Wr:
        earliest = std::max(earliest, nextWrAt);
        if (dataBusFreeAt > t.tCWL)
            earliest = std::max(earliest, dataBusFreeAt - t.tCWL);
        break;
      case DramCmd::Pre:
      case DramCmd::Ref:
        break;
    }
    return earliest;
}

Cycle
DramChannel::issue(DramCmd cmd, unsigned bankIdx, Cycle now, std::int64_t row)
{
    assert(canIssue(cmd, bankIdx, now));
    Bank &b = banks[bankIdx];
    cmdBusFreeAt = now + 1;
    lastActivityAt = now;
    if (onCommand)
        onCommand(cmd, bankIdx, now, row);

    switch (cmd) {
      case DramCmd::Act:
        b.issue(cmd, now, row);
        counters.nAct++;
        nOpenBanks++;
        lastActAt = now;
        anyActIssued = true;
        actWindow[actWindowPos] = now;
        actWindowPos = (actWindowPos + 1) % actWindow.size();
        actWindowCount = std::min<unsigned>(actWindowCount + 1,
                                            actWindow.size());
        return 0;
      case DramCmd::Pre:
        b.issue(cmd, now);
        counters.nPre++;
        assert(nOpenBanks > 0);
        nOpenBanks--;
        return 0;
      case DramCmd::Rd: {
        b.issue(cmd, now);
        counters.nRd++;
        nextRdAt = std::max(nextRdAt, now + t.tCCD);
        nextWrAt = std::max(nextWrAt, now + t.readToWrite());
        const Cycle done = now + t.tCL + t.tBL;
        dataBusFreeAt = done;
        return done;
      }
      case DramCmd::Wr: {
        b.issue(cmd, now);
        counters.nWr++;
        nextWrAt = std::max(nextWrAt, now + t.tCCD);
        nextRdAt = std::max(nextRdAt, now + t.writeToRead());
        const Cycle done = now + t.tCWL + t.tBL;
        dataBusFreeAt = done;
        return done;
      }
      case DramCmd::Ref:
        assert(false && "REF is issued internally by tickRefresh()");
        return 0;
    }
    return 0;
}

void
DramChannel::tickRefresh(Cycle now)
{
    if (now < refreshDoneAt)
        return;

    if (!stagingRefresh) {
        if (now >= nextRefreshAt)
            stagingRefresh = true;
        else
            return;
    }

    // A refresh wakes a powered-down rank.
    if (pd)
        requestWake(now);
    if (now < cmdBusFreeAt)
        return;

    // Do not interleave refresh staging with RNG-mode occupancy; resume
    // once the TRNG engine releases the channel.
    if (rngBusy(now))
        return;

    // Close open banks, one precharge per cycle (command bus).
    if (nOpenBanks > 0) {
        if (now < cmdBusFreeAt)
            return;
        for (unsigned i = 0; i < banks.size(); ++i) {
            Bank &b = banks[i];
            if (b.isOpen() && b.canIssue(DramCmd::Pre, now)) {
                b.issue(DramCmd::Pre, now);
                counters.nPre++;
                nOpenBanks--;
                cmdBusFreeAt = now + 1;
                if (onCommand)
                    onCommand(DramCmd::Pre, i, now, kNoOpenRow);
                break;
            }
        }
        return;
    }

    // All banks closed: wait for tRP fences, then refresh the rank.
    if (now < cmdBusFreeAt)
        return;
    for (const Bank &b : banks)
        if (!b.canIssue(DramCmd::Ref, now))
            return;

    for (Bank &b : banks)
        b.blockUntil(now + t.tRFC);
    counters.nRef++;
    if (onCommand)
        onCommand(DramCmd::Ref, 0, now, kNoOpenRow);
    cmdBusFreeAt = now + 1;
    refreshDoneAt = now + t.tRFC;
    nextRefreshAt += t.tREFI;
    stagingRefresh = false;
}

bool
DramChannel::refreshBusy(Cycle now) const
{
    return stagingRefresh || now < refreshDoneAt;
}

void
DramChannel::requestWake(Cycle now)
{
    if (!pd)
        return;
    pd = false;
    lastActivityAt = now;
    cmdBusFreeAt = std::max(cmdBusFreeAt, now + t.tXP);
}

void
DramChannel::occupyForRng(Cycle until)
{
    // RNG-mode accesses target reserved rows (D-RaNGe) or reserved
    // subarrays (QUAC), so application row-buffer contents survive; the
    // channel's command and data buses are simply unavailable while
    // non-standard timing parameters are active.
    if (pd)
        requestWake(until > 0 ? until - 1 : 0);
    rngBusyUntil = std::max(rngBusyUntil, until);
    cmdBusFreeAt = std::max(cmdBusFreeAt, until);
    dataBusFreeAt = std::max(dataBusFreeAt, until);
    lastActivityAt = std::max(lastActivityAt, until);
}

Cycle
DramChannel::nextEventCycle(Cycle now, bool engine_active) const
{
    Cycle ev = kNoEvent;

    // Refresh machinery. While the rank is inside tRFC nothing happens
    // until refreshDoneAt; while a refresh is being staged the channel
    // does per-cycle work (unless the TRNG engine holds the channel, in
    // which case tickRefresh() early-returns on the engine-maintained
    // command-bus fence and staging resumes at the engine's next event);
    // otherwise the next edge is nextRefreshAt (the staging flag flips
    // there, changing refreshBusy()).
    if (now < refreshDoneAt) {
        ev = std::min(ev, refreshDoneAt);
    } else if (stagingRefresh) {
        if (!engine_active)
            return now;
    } else {
        ev = std::min(ev, nextRefreshAt);
    }

    if (!engine_active) {
        // An expiring RNG-mode fence changes sampleState()'s residency
        // branch and unblocks refresh staging and regular issue.
        if (rngBusyUntil > now)
            ev = std::min(ev, rngBusyUntil);

        // Precharge power-down entry happens inside sampleState() at a
        // computable cycle. The candidate may be invalidated by
        // intervening events (refresh, commands); that only re-derives
        // a later candidate, never skips the entry.
        if (pdThreshold > 0 && !pd && nOpenBanks == 0 &&
            !refreshBusy(now)) {
            const Cycle entry = std::max(
                {cmdBusFreeAt, rngBusyUntil, lastActivityAt + pdThreshold});
            ev = std::min(ev, std::max(entry, now));
        }
    }
    return ev;
}

void
DramChannel::fastForwardState(Cycle from, Cycle to)
{
    assert(to > from);
    const Cycle span = to - from;
    // The branch sampleState() takes is constant over the span: the
    // caller stops at every refresh edge, RNG-fence expiry, power-down
    // entry, and command issue. An active TRNG engine keeps
    // rngBusyUntil at least one cycle ahead throughout, so evaluating
    // the branch at `from` is exact.
    if (from < rngBusyUntil || from < refreshDoneAt || nOpenBanks > 0)
        counters.cyclesActive += span;
    else if (pd)
        counters.cyclesPoweredDown += span;
    else
        counters.cyclesPrecharged += span;
}

void
DramChannel::sampleState(Cycle now)
{
    // Power-down entry check: all banks closed, nothing in flight, and
    // the idle threshold elapsed.
    if (!pd && pdThreshold > 0 && nOpenBanks == 0 && !rngBusy(now) &&
        !refreshBusy(now) && now >= cmdBusFreeAt &&
        now >= lastActivityAt + pdThreshold) {
        pd = true;
    }

    // RNG-mode occupancy and refresh are counted as active cycles: the
    // device is burning row-cycle power in both.
    if (rngBusy(now) || now < refreshDoneAt || nOpenBanks > 0)
        counters.cyclesActive++;
    else if (pd)
        counters.cyclesPoweredDown++;
    else
        counters.cyclesPrecharged++;
}

} // namespace dstrange::dram
