#include "dram/dram_channel.h"

#include <algorithm>
#include <cassert>

namespace dstrange::dram {

DramChannel::DramChannel(const DramTimings &timings,
                         const DramGeometry &geometry)
    : t(timings), banksEach(geometry.banksPerRank)
{
    assert(geometry.ranksPerChannel > 0 && geometry.banksPerRank > 0);
    ranks.resize(geometry.ranksPerChannel);
    for (RankState &r : ranks)
        r.nextRefreshAt = timings.tREFI;
    banks.reserve(static_cast<std::size_t>(banksEach) * ranks.size());
    for (std::size_t i = 0; i < ranks.size() * banksEach; ++i)
        banks.emplace_back(t);
}

bool
DramChannel::rankCanAct(const RankState &r, Cycle now) const
{
    if (r.anyActIssued && now < r.lastActAt + t.tRRD)
        return false;
    if (r.actWindowCount == r.actWindow.size()) {
        // The oldest of the last four ACTs fences tFAW.
        const Cycle oldest = r.actWindow[r.actWindowPos];
        if (now < oldest + t.tFAW)
            return false;
    }
    return true;
}

Cycle
DramChannel::rankTurnaround(unsigned rankIdx) const
{
    // Bursts from different ranks need tRTRS of bus settling between
    // them; with one rank (or before any burst) this never applies.
    return (lastBurstRank >= 0 &&
            static_cast<unsigned>(lastBurstRank) != rankIdx)
               ? t.tRTRS
               : 0;
}

bool
DramChannel::canIssue(DramCmd cmd, unsigned bankIdx, Cycle now) const
{
    assert(bankIdx < banks.size());
    if (now < cmdBusFreeAt)
        return false;
    const unsigned rankIdx = rankOf(bankIdx);
    const RankState &r = ranks[rankIdx];
    if (refreshBusy(now) || rngBusy(now) || r.pd)
        return false;

    const Bank &b = banks[bankIdx];
    switch (cmd) {
      case DramCmd::Act:
        return !b.isOpen() && b.canIssue(cmd, now) && rankCanAct(r, now);
      case DramCmd::Pre:
        return b.isOpen() && b.canIssue(cmd, now);
      case DramCmd::Rd:
        if (!b.isOpen() || !b.canIssue(cmd, now) || now < nextRdAt)
            return false;
        return now + t.tCL >= dataBusFreeAt + rankTurnaround(rankIdx);
      case DramCmd::Wr:
        if (!b.isOpen() || !b.canIssue(cmd, now) || now < nextWrAt)
            return false;
        return now + t.tCWL >= dataBusFreeAt + rankTurnaround(rankIdx);
      case DramCmd::Ref:
        return false; // Refresh is issued internally by tickRefresh().
    }
    return false;
}

Cycle
DramChannel::earliestIssueCycle(DramCmd cmd, unsigned bankIdx) const
{
    assert(bankIdx < banks.size());
    const unsigned rankIdx = rankOf(bankIdx);
    const RankState &r = ranks[rankIdx];
    const Bank &b = banks[bankIdx];
    Cycle earliest = std::max(cmdBusFreeAt, b.earliestIssue(cmd));
    switch (cmd) {
      case DramCmd::Act:
        if (r.anyActIssued)
            earliest = std::max(earliest, r.lastActAt + t.tRRD);
        if (r.actWindowCount == r.actWindow.size())
            earliest =
                std::max(earliest, r.actWindow[r.actWindowPos] + t.tFAW);
        break;
      case DramCmd::Rd: {
        earliest = std::max(earliest, nextRdAt);
        // canIssue: now + tCL >= dataBusFreeAt + rank turnaround.
        const Cycle busFree = dataBusFreeAt + rankTurnaround(rankIdx);
        if (busFree > t.tCL)
            earliest = std::max(earliest, busFree - t.tCL);
        break;
      }
      case DramCmd::Wr: {
        earliest = std::max(earliest, nextWrAt);
        const Cycle busFree = dataBusFreeAt + rankTurnaround(rankIdx);
        if (busFree > t.tCWL)
            earliest = std::max(earliest, busFree - t.tCWL);
        break;
      }
      case DramCmd::Pre:
      case DramCmd::Ref:
        break;
    }
    return earliest;
}

Cycle
DramChannel::issue(DramCmd cmd, unsigned bankIdx, Cycle now, std::int64_t row)
{
    assert(canIssue(cmd, bankIdx, now));
    const unsigned rankIdx = rankOf(bankIdx);
    RankState &r = ranks[rankIdx];
    Bank &b = banks[bankIdx];
    ++timingV;
    cmdBusFreeAt = now + 1;
    r.lastActivityAt = now;
    if (onCommand)
        onCommand(cmd, bankIdx, now, row);

    switch (cmd) {
      case DramCmd::Act:
        b.issue(cmd, now, row);
        counters.nAct++;
        r.nOpenBanks++;
        r.lastActAt = now;
        r.anyActIssued = true;
        r.actWindow[r.actWindowPos] = now;
        r.actWindowPos = (r.actWindowPos + 1) % r.actWindow.size();
        r.actWindowCount = std::min<unsigned>(
            r.actWindowCount + 1,
            static_cast<unsigned>(r.actWindow.size()));
        return 0;
      case DramCmd::Pre:
        b.issue(cmd, now);
        counters.nPre++;
        assert(r.nOpenBanks > 0);
        r.nOpenBanks--;
        return 0;
      case DramCmd::Rd: {
        b.issue(cmd, now);
        counters.nRd++;
        nextRdAt = std::max(nextRdAt, now + t.tCCD);
        nextWrAt = std::max(nextWrAt, now + t.readToWrite());
        const Cycle done = now + t.tCL + t.tBL;
        dataBusFreeAt = done;
        lastBurstRank = static_cast<int>(rankIdx);
        return done;
      }
      case DramCmd::Wr: {
        b.issue(cmd, now);
        counters.nWr++;
        nextWrAt = std::max(nextWrAt, now + t.tCCD);
        nextRdAt = std::max(nextRdAt, now + t.writeToRead());
        const Cycle done = now + t.tCWL + t.tBL;
        dataBusFreeAt = done;
        lastBurstRank = static_cast<int>(rankIdx);
        return done;
      }
      case DramCmd::Ref:
        assert(false && "REF is issued internally by tickRefresh()");
        return 0;
    }
    return 0;
}

void
DramChannel::tickRefresh(Cycle now)
{
    for (unsigned ri = 0; ri < ranks.size(); ++ri) {
        RankState &r = ranks[ri];
        if (now < r.refreshDoneAt)
            continue; // This rank is inside tRFC; others may proceed.

        if (!r.stagingRefresh) {
            if (now >= r.nextRefreshAt)
                r.stagingRefresh = true;
            else
                continue;
        }

        // A refresh wakes a powered-down rank.
        if (r.pd)
            wakeRank(r, now);
        if (now < cmdBusFreeAt)
            return; // Shared command bus: nothing issues this cycle.

        // Do not interleave refresh staging with RNG-mode occupancy;
        // resume once the TRNG engine releases the channel.
        if (rngBusy(now))
            return;

        // Close the rank's open banks, one precharge per cycle
        // (command bus).
        if (r.nOpenBanks > 0) {
            if (now < cmdBusFreeAt)
                return;
            for (unsigned i = 0; i < banksEach; ++i) {
                const unsigned bi = ri * banksEach + i;
                Bank &b = banks[bi];
                if (b.isOpen() && b.canIssue(DramCmd::Pre, now)) {
                    ++timingV;
                    b.issue(DramCmd::Pre, now);
                    counters.nPre++;
                    r.nOpenBanks--;
                    cmdBusFreeAt = now + 1;
                    if (onCommand)
                        onCommand(DramCmd::Pre, bi, now, kNoOpenRow);
                    return;
                }
            }
            continue; // tRAS/tRTP/tWR fences pending; try other ranks.
        }

        // All the rank's banks closed: wait for tRP fences, then
        // refresh the rank.
        if (now < cmdBusFreeAt)
            return;
        bool ready = true;
        for (unsigned i = 0; i < banksEach && ready; ++i)
            ready = banks[ri * banksEach + i].canIssue(DramCmd::Ref, now);
        if (!ready)
            continue;

        ++timingV;
        for (unsigned i = 0; i < banksEach; ++i)
            banks[ri * banksEach + i].blockUntil(now + t.tRFC);
        counters.nRef++;
        if (onCommand)
            onCommand(DramCmd::Ref, ri * banksEach, now, kNoOpenRow);
        cmdBusFreeAt = now + 1;
        r.refreshDoneAt = now + t.tRFC;
        r.nextRefreshAt += t.tREFI;
        r.stagingRefresh = false;
        return;
    }
}

bool
DramChannel::refreshBusy(Cycle now) const
{
    for (const RankState &r : ranks)
        if (r.stagingRefresh || now < r.refreshDoneAt)
            return true;
    return false;
}

bool
DramChannel::poweredDown() const
{
    for (const RankState &r : ranks)
        if (!r.pd)
            return false;
    return true;
}

bool
DramChannel::anyRankPoweredDown() const
{
    for (const RankState &r : ranks)
        if (r.pd)
            return true;
    return false;
}

unsigned
DramChannel::openBankCount() const
{
    unsigned open = 0;
    for (const RankState &r : ranks)
        open += r.nOpenBanks;
    return open;
}

void
DramChannel::wakeRank(RankState &r, Cycle now)
{
    if (!r.pd)
        return;
    ++timingV;
    r.pd = false;
    r.lastActivityAt = now;
    cmdBusFreeAt = std::max(cmdBusFreeAt, now + t.tXP);
}

void
DramChannel::requestWake(Cycle now)
{
    for (RankState &r : ranks)
        wakeRank(r, now);
}

void
DramChannel::occupyForRng(Cycle until)
{
    // RNG-mode accesses target reserved rows (D-RaNGe) or reserved
    // subarrays (QUAC), so application row-buffer contents survive; the
    // channel's command and data buses are simply unavailable while
    // non-standard timing parameters are active.
    if (anyRankPoweredDown())
        requestWake(until > 0 ? until - 1 : 0);
    ++timingV;
    rngBusyUntil = std::max(rngBusyUntil, until);
    cmdBusFreeAt = std::max(cmdBusFreeAt, until);
    dataBusFreeAt = std::max(dataBusFreeAt, until);
    for (RankState &r : ranks)
        r.lastActivityAt = std::max(r.lastActivityAt, until);
}

Cycle
DramChannel::nextEventCycle(Cycle now, bool engine_active) const
{
    Cycle ev = kNoEvent;

    // Refresh machinery, per rank. While a rank is inside tRFC nothing
    // happens until its refreshDoneAt; while a refresh is being staged
    // the channel does per-cycle work (unless the TRNG engine holds the
    // channel, in which case tickRefresh() early-returns on the
    // engine-maintained command-bus fence and staging resumes at the
    // engine's next event); otherwise the rank's next edge is
    // nextRefreshAt (the staging flag flips there, changing
    // refreshBusy()).
    for (const RankState &r : ranks) {
        if (now < r.refreshDoneAt) {
            ev = std::min(ev, r.refreshDoneAt);
        } else if (r.stagingRefresh) {
            if (!engine_active)
                return now;
        } else {
            ev = std::min(ev, r.nextRefreshAt);
        }
    }

    if (!engine_active) {
        // An expiring RNG-mode fence changes sampleState()'s residency
        // branch and unblocks refresh staging and regular issue.
        if (rngBusyUntil > now)
            ev = std::min(ev, rngBusyUntil);

        // Precharge power-down entry happens inside sampleState() at a
        // computable cycle, independently per rank. The candidate may
        // be invalidated by intervening events (refresh, commands);
        // that only re-derives a later candidate, never skips the
        // entry.
        if (pdThreshold > 0 && !refreshBusy(now)) {
            for (const RankState &r : ranks) {
                if (r.pd || r.nOpenBanks != 0)
                    continue;
                const Cycle entry =
                    std::max({cmdBusFreeAt, rngBusyUntil,
                              r.lastActivityAt + pdThreshold});
                ev = std::min(ev, std::max(entry, now));
            }
        }
    }
    return ev;
}

void
DramChannel::fastForwardState(Cycle from, Cycle to)
{
    assert(to > from);
    const Cycle span = to - from;
    // The branch sampleState() takes is constant over the span: the
    // caller stops at every refresh edge, RNG-fence expiry, power-down
    // entry, and command issue. An active TRNG engine keeps
    // rngBusyUntil at least one cycle ahead throughout, so evaluating
    // the branch at `from` is exact.
    bool refreshing = false;
    for (const RankState &r : ranks)
        refreshing = refreshing || from < r.refreshDoneAt;
    if (from < rngBusyUntil || refreshing || openBankCount() > 0)
        counters.cyclesActive += span;
    else if (poweredDown())
        counters.cyclesPoweredDown += span;
    else
        counters.cyclesPrecharged += span;
}

void
DramChannel::sampleState(Cycle now)
{
    // Power-down entry check, per rank: all of the rank's banks closed,
    // nothing in flight, and the idle threshold elapsed.
    if (pdThreshold > 0 && !rngBusy(now) && !refreshBusy(now) &&
        now >= cmdBusFreeAt) {
        for (RankState &r : ranks) {
            if (!r.pd && r.nOpenBanks == 0 &&
                now >= r.lastActivityAt + pdThreshold)
                r.pd = true;
        }
    }

    // RNG-mode occupancy and refresh are counted as active cycles: the
    // device is burning row-cycle power in both.
    bool refreshing = false;
    for (const RankState &r : ranks)
        refreshing = refreshing || now < r.refreshDoneAt;
    if (rngBusy(now) || refreshing || openBankCount() > 0)
        counters.cyclesActive++;
    else if (poweredDown())
        counters.cyclesPoweredDown++;
    else
        counters.cyclesPrecharged++;
}

} // namespace dstrange::dram
