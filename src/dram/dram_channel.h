/**
 * @file
 * One DRAM channel: per-rank bank arrays plus rank- and bus-level timing
 * constraints, autonomous refresh, and energy accounting. The memory
 * controller issues commands through this model; the TRNG engine
 * occupies it during RNG mode.
 */

#ifndef DSTRANGE_DRAM_DRAM_CHANNEL_H
#define DSTRANGE_DRAM_DRAM_CHANNEL_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "dram/address_mapper.h"
#include "dram/bank.h"
#include "dram/dram_timings.h"
#include "dram/energy_counters.h"
#include "mem/memory_backend.h"

namespace dstrange::dram {

/**
 * Cycle-level model of one DDR3 channel with one or more ranks.
 * Constraints enforced: per-bank tRCD/tRAS/tRC/tRP/tRTP/tWR/tCCD,
 * rank-scoped tRRD and tFAW, command-bus serialization (one command per
 * cycle), data-bus occupancy with cross-rank tRTRS turnaround,
 * read/write turnaround, and per-rank tREFI/tRFC refresh.
 *
 * Banks are indexed by the flat rank-major slot `rank * banksPerRank +
 * bankInRank` (DramCoord::bank), so single-rank callers are unchanged.
 * With ranksPerChannel == 1 every rank-scoped constraint degenerates to
 * the historical single-rank behaviour bit-identically.
 *
 * This is the default "ddr4" mem::MemoryBackend implementation (see
 * mem::BackendRegistry); the controller drives it exclusively through
 * the interface.
 */
class DramChannel final : public mem::MemoryBackend
{
  public:
    DramChannel(const DramTimings &timings, const DramGeometry &geometry);

    /** Bank slots across all ranks of the channel. */
    unsigned numBanks() const override
    {
        return static_cast<unsigned>(banks.size());
    }

    unsigned numRanks() const override
    {
        return static_cast<unsigned>(ranks.size());
    }

    /** Rank that owns flat bank slot @p bankIdx. */
    unsigned rankOf(unsigned bankIdx) const override
    {
        return bankIdx / banksEach;
    }

    const Bank &bank(unsigned i) const { return banks[i]; }

    /** Open row of bank slot @p i; kNoOpenRow when closed. */
    std::int64_t openRow(unsigned i) const override
    {
        return banks[i].openRow();
    }

    /**
     * true if @p cmd may issue to @p bankIdx at @p now, considering bank,
     * rank, command-bus and data-bus constraints plus refresh state.
     */
    bool canIssue(DramCmd cmd, unsigned bankIdx, Cycle now) const override;

    /**
     * Earliest cycle at which @p cmd could legally issue to @p bankIdx
     * considering the bank, rank, command-bus and data-bus timing
     * fences (including the cross-rank tRTRS turnaround) — but NOT
     * refresh, RNG-mode, or power-down state (the fast-forward horizon
     * tracks those as separate events). With no intervening command,
     * canIssue(cmd, bankIdx, t) is false for every t below the returned
     * cycle. Requires the bank open/closed state to match the command
     * (e.g. ACT on a closed bank).
     */
    Cycle earliestIssueCycle(DramCmd cmd, unsigned bankIdx) const override;

    /**
     * Issue a command.
     * @pre canIssue(cmd, bankIdx, now)
     * @return for RD/WR the cycle the data burst completes on the bus;
     *         0 for other commands.
     */
    Cycle issue(DramCmd cmd, unsigned bankIdx, Cycle now,
                std::int64_t row = kNoOpenRow) override;

    /**
     * Advance refresh housekeeping by one cycle. While a refresh is being
     * staged the channel precharges open banks itself and regular issue is
     * blocked; call once per bus cycle before scheduling.
     */
    void tickRefresh(Cycle now) override;

    /** true while any rank is staging a refresh or inside tRFC. */
    bool refreshBusy(Cycle now) const override;

    /**
     * Occupy the whole channel for RNG-mode operation until @p until.
     * All banks are closed and fenced; regular traffic cannot issue.
     */
    void occupyForRng(Cycle until) override;

    /** true while the channel is held by the TRNG engine. */
    bool rngBusy(Cycle now) const override { return now < rngBusyUntil; }

    /** Record one executed TRNG round for energy accounting. */
    void noteRngRound() override { counters.rngRounds++; }

    /** Accumulate state residency for this cycle; call once per cycle. */
    void sampleState(Cycle now) override;

    /**
     * Earliest cycle >= @p now at which per-cycle housekeeping
     * (tickRefresh/sampleState) does anything beyond incrementing the
     * state-residency counter selected by the current state: a refresh
     * edge or tRFC end on any rank, the expiry of an RNG-mode fence, or
     * a power-down entry. Returns @p now while a refresh is actively
     * being staged (unless @p engine_active fences the channel, in which
     * case staging is parked until the engine releases it) — staging
     * issues precharges on a per-cycle cadence that cannot be skipped.
     *
     * The caller must not skip past the returned cycle; skipping less is
     * always safe.
     */
    Cycle nextEventCycle(Cycle now, bool engine_active) const override;

    /**
     * Batch-apply sampleState() for bus cycles [@p from, @p to). The
     * state-residency branch must be constant over the span, which the
     * caller guarantees by bounding the span with nextEventCycle().
     * RNG-mode occupancy extensions are applied separately by
     * trng::RngEngine::fastForward().
     */
    void fastForwardState(Cycle from, Cycle to) override;

    const ChannelEnergyCounters &energyCounters() const override
    {
        return counters;
    }

    /** Number of banks with an open row (across all ranks). */
    unsigned openBankCount() const override;

    /**
     * Enable precharge power-down: after @p idle_threshold cycles with
     * all of a rank's banks closed and no activity, that rank powers
     * down; waking costs tXP before the next command (0 disables the
     * policy).
     */
    void setPowerDownPolicy(Cycle idle_threshold) override
    {
        pdThreshold = idle_threshold;
    }

    /** true while every rank is in precharge power-down. */
    bool poweredDown() const override;

    /** true while at least one rank is in precharge power-down. */
    bool anyRankPoweredDown() const override;

    /** Begin waking all powered-down ranks; commands resume after tXP. */
    void requestWake(Cycle now) override;

    /**
     * Observe every issued command (including internally issued
     * refresh-path precharges and REF). Used by verification harnesses
     * that independently re-check the JEDEC constraints. REF is
     * reported against the first bank slot of the refreshing rank.
     */
    using CommandObserver = mem::MemoryBackend::CommandObserver;
    void setCommandObserver(CommandObserver observer) override
    {
        onCommand = std::move(observer);
    }

    /**
     * Bumped at every point that moves a fence earliestIssueCycle()
     * reads: command issue (external or refresh-path), RNG-mode
     * occupancy, and power-down wake. Power-down *entry* and refresh
     * staging flags are excluded by the earliestIssueCycle() contract,
     * so sampleState() never bumps.
     */
    std::uint64_t timingVersion() const override { return timingV; }

  private:
    /** Rank-scoped timing/refresh/power state (banks live in the flat
     *  channel array so existing bank-slot indexing is untouched). */
    struct RankState
    {
        // ACT throttling (tRRD / tFAW are per rank).
        Cycle lastActAt = 0;
        bool anyActIssued = false;
        std::array<Cycle, 4> actWindow{}; ///< Circular tFAW history.
        unsigned actWindowPos = 0;
        unsigned actWindowCount = 0;

        // Refresh.
        Cycle nextRefreshAt = 0;
        bool stagingRefresh = false;
        Cycle refreshDoneAt = 0;

        // Precharge power-down.
        bool pd = false;
        Cycle lastActivityAt = 0;

        unsigned nOpenBanks = 0;
    };

    bool rankCanAct(const RankState &r, Cycle now) const;
    void wakeRank(RankState &r, Cycle now);
    /** Extra data-bus gap when the burst switches ranks. */
    Cycle rankTurnaround(unsigned rankIdx) const;

    const DramTimings &t;
    unsigned banksEach; ///< Banks per rank.
    std::vector<Bank> banks; ///< Flat rank-major bank slots.
    std::vector<RankState> ranks;

    // Shared buses (channel-wide).
    Cycle cmdBusFreeAt = 0;
    Cycle dataBusFreeAt = 0;
    Cycle nextRdAt = 0;
    Cycle nextWrAt = 0;
    int lastBurstRank = -1; ///< Rank of the last data burst (-1: none).

    // RNG-mode occupancy.
    Cycle rngBusyUntil = 0;

    // Precharge power-down policy.
    Cycle pdThreshold = 0;

    std::uint64_t timingV = 0; ///< See timingVersion().

    ChannelEnergyCounters counters;
    CommandObserver onCommand;
};

} // namespace dstrange::dram

#endif // DSTRANGE_DRAM_DRAM_CHANNEL_H
