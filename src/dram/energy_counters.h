/**
 * @file
 * Command and state-residency counters feeding the energy model. Shared
 * by every mem::MemoryBackend implementation (the cycle-level
 * DramChannel and the analytical backends alike), so the energy model
 * and telemetry read one structure regardless of timing model.
 */

#ifndef DSTRANGE_DRAM_ENERGY_COUNTERS_H
#define DSTRANGE_DRAM_ENERGY_COUNTERS_H

#include <cstdint>

namespace dstrange::dram {

/** Command and state-residency counters feeding the energy model. */
struct ChannelEnergyCounters
{
    std::uint64_t nAct = 0;
    std::uint64_t nPre = 0;
    std::uint64_t nRd = 0;
    std::uint64_t nWr = 0;
    std::uint64_t nRef = 0;
    /** TRNG rounds executed on this channel (see trng/rng_engine.h). */
    std::uint64_t rngRounds = 0;
    /** Cycles with at least one bank open (active standby). */
    std::uint64_t cyclesActive = 0;
    /** Cycles with all banks closed (precharge standby). */
    std::uint64_t cyclesPrecharged = 0;
    /** Cycles in precharge power-down (reduced background power). */
    std::uint64_t cyclesPoweredDown = 0;
};

} // namespace dstrange::dram

#endif // DSTRANGE_DRAM_ENERGY_COUNTERS_H
