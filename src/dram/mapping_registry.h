/**
 * @file
 * String-keyed registry of address-interleaving policies. A mapping key
 * travels through SimConfig / config text ("mapping=KEY"), so every
 * interleaving choice is sweepable and cache-keyed like any other knob.
 *
 * Built-in policies (all exact bijections over the geometry's capacity):
 *
 *  - "row-bank-col-ch"      Row:Rank:Bank:Column:Channel — the default.
 *                           Channel interleaved at line granularity; the
 *                           rank digit sits just below the row, so with
 *                           ranksPerChannel == 1 it reproduces the
 *                           historical mapping bit-identically.
 *  - "row-bank-col-rank-ch" Rank-interleaved: consecutive lines on one
 *                           channel alternate ranks, overlapping bank
 *                           timing across ranks at the cost of tRTRS
 *                           data-bus turnarounds.
 *  - "permute-bank"         "row-bank-col-ch" with the in-rank bank
 *                           index XOR-permuted by the low row bits
 *                           (Zhang/Zhang/Torrellas-style conflict
 *                           scrambling). Requires power-of-two
 *                           banksPerRank.
 */

#ifndef DSTRANGE_DRAM_MAPPING_REGISTRY_H
#define DSTRANGE_DRAM_MAPPING_REGISTRY_H

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "dram/address_mapper.h"

namespace dstrange::dram {

/**
 * Generic mixed-radix interleaving: the address (in lines) is decomposed
 * into the five coordinate digits in a configurable order from the least
 * significant digit up. For power-of-two geometries this is exactly an
 * offset/width bit-field mapping; for non-power-of-two dimensions the
 * div/mod chain stays an exact bijection where bit slicing would not.
 */
class InterleavedMapping : public AddressMapping
{
  public:
    enum class Dim : std::uint8_t
    {
        Channel,
        Rank,
        Bank, ///< In-rank bank index (width banksPerRank).
        Col,
        Row,
    };

    /** @p lsb_order must be a permutation of all five dimensions. */
    InterleavedMapping(const DramGeometry &geometry,
                       const std::array<Dim, 5> &lsb_order);

    DramCoord decode(Addr addr) const override;
    Addr encode(const DramCoord &coord) const override;

  private:
    std::uint64_t radixOf(Dim dim) const;

    std::array<Dim, 5> order;
};

/**
 * "row-bank-col-ch" order with the in-rank bank index XOR-permuted by
 * the low row bits; the XOR is self-inverse, so encode/decode stay exact
 * inverses. @throws std::invalid_argument unless banksPerRank is a
 * power of two.
 */
class PermutedBankMapping final : public InterleavedMapping
{
  public:
    explicit PermutedBankMapping(const DramGeometry &geometry);

    DramCoord decode(Addr addr) const override;
    Addr encode(const DramCoord &coord) const override;

  private:
    unsigned permute(unsigned bank_in_rank, unsigned row) const;
};

/**
 * Process-global mapping-policy registry, keyed like the scheduler /
 * predictor / design registries. Thread-safe: lookups take a shared
 * lock, add() an exclusive one.
 */
class MappingRegistry
{
  public:
    using MappingFactory =
        std::function<std::unique_ptr<const AddressMapping>(
            const DramGeometry &)>;

    /** Key of the default policy (the historical hardwired mapping). */
    static constexpr const char *kDefault = "row-bank-col-ch";

    static MappingRegistry &instance();

    /** @throws std::invalid_argument on empty/duplicate/unserializable
     *  keys or an empty factory. */
    void add(const std::string &key, MappingFactory factory);

    /**
     * Instantiate the policy registered under @p key for @p geometry.
     * @throws std::out_of_range on an unknown key (the message lists
     *         the registered keys).
     */
    std::unique_ptr<const AddressMapping>
    make(const std::string &key, const DramGeometry &geometry) const;

    bool contains(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    MappingRegistry();

    mutable std::shared_mutex mu;
    std::map<std::string, MappingFactory> factories;
};

} // namespace dstrange::dram

#endif // DSTRANGE_DRAM_MAPPING_REGISTRY_H
