#include "dram/mapping_registry.h"

#include <cassert>
#include <mutex>
#include <stdexcept>

#include "common/registry_key.h"

namespace dstrange::dram {

namespace {

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** LSB-up digit order realizing the "row-bank-col-ch" key. */
constexpr std::array<InterleavedMapping::Dim, 5> kRowBankColCh = {
    InterleavedMapping::Dim::Channel, InterleavedMapping::Dim::Col,
    InterleavedMapping::Dim::Bank, InterleavedMapping::Dim::Rank,
    InterleavedMapping::Dim::Row};

/** LSB-up digit order realizing the "row-bank-col-rank-ch" key. */
constexpr std::array<InterleavedMapping::Dim, 5> kRowBankColRankCh = {
    InterleavedMapping::Dim::Channel, InterleavedMapping::Dim::Rank,
    InterleavedMapping::Dim::Col, InterleavedMapping::Dim::Bank,
    InterleavedMapping::Dim::Row};

} // namespace

InterleavedMapping::InterleavedMapping(const DramGeometry &geometry,
                                       const std::array<Dim, 5> &lsb_order)
    : AddressMapping(geometry), order(lsb_order)
{
    assert(geom.channels > 0 && geom.ranksPerChannel > 0 &&
           geom.banksPerRank > 0 && geom.rowsPerBank > 0 &&
           geom.rowBytes >= kLineBytes);
    unsigned seen = 0;
    for (Dim d : order)
        seen |= 1u << static_cast<unsigned>(d);
    if (seen != 0x1f)
        throw std::invalid_argument(
            "interleaving order must be a permutation of all five "
            "DRAM dimensions");
}

std::uint64_t
InterleavedMapping::radixOf(Dim dim) const
{
    switch (dim) {
      case Dim::Channel:
        return geom.channels;
      case Dim::Rank:
        return geom.ranksPerChannel;
      case Dim::Bank:
        return geom.banksPerRank;
      case Dim::Col:
        return geom.colsPerRow();
      case Dim::Row:
        return geom.rowsPerBank;
    }
    return 1;
}

DramCoord
InterleavedMapping::decode(Addr addr) const
{
    std::uint64_t line = addr / kLineBytes;
    DramCoord coord;
    unsigned bank_in_rank = 0;
    for (Dim dim : order) {
        const std::uint64_t radix = radixOf(dim);
        const unsigned digit = static_cast<unsigned>(line % radix);
        line /= radix;
        switch (dim) {
          case Dim::Channel:
            coord.channel = digit;
            break;
          case Dim::Rank:
            coord.rank = digit;
            break;
          case Dim::Bank:
            bank_in_rank = digit;
            break;
          case Dim::Col:
            coord.col = digit;
            break;
          case Dim::Row:
            coord.row = digit;
            break;
        }
    }
    coord.bank = coord.rank * geom.banksPerRank + bank_in_rank;
    return coord;
}

Addr
InterleavedMapping::encode(const DramCoord &coord) const
{
    const unsigned bank_in_rank = coord.bank % geom.banksPerRank;
    const unsigned rank =
        coord.rank != 0 ? coord.rank : coord.bank / geom.banksPerRank;
    std::uint64_t line = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const Dim dim = *it;
        unsigned digit = 0;
        switch (dim) {
          case Dim::Channel:
            digit = coord.channel;
            break;
          case Dim::Rank:
            digit = rank;
            break;
          case Dim::Bank:
            digit = bank_in_rank;
            break;
          case Dim::Col:
            digit = coord.col;
            break;
          case Dim::Row:
            digit = coord.row;
            break;
        }
        line = line * radixOf(dim) + digit;
    }
    return line * kLineBytes;
}

PermutedBankMapping::PermutedBankMapping(const DramGeometry &geometry)
    : InterleavedMapping(geometry, kRowBankColCh)
{
    if (!isPowerOfTwo(geometry.banksPerRank))
        throw std::invalid_argument(
            "permute-bank mapping requires a power-of-two banksPerRank "
            "(got " +
            std::to_string(geometry.banksPerRank) + ")");
}

unsigned
PermutedBankMapping::permute(unsigned bank_in_rank, unsigned row) const
{
    return bank_in_rank ^ (row & (geom.banksPerRank - 1));
}

DramCoord
PermutedBankMapping::decode(Addr addr) const
{
    DramCoord coord = InterleavedMapping::decode(addr);
    const unsigned bank_in_rank =
        permute(coord.bank % geom.banksPerRank, coord.row);
    coord.bank = coord.rank * geom.banksPerRank + bank_in_rank;
    return coord;
}

Addr
PermutedBankMapping::encode(const DramCoord &coord) const
{
    DramCoord unpermuted = coord;
    const unsigned rank =
        coord.rank != 0 ? coord.rank : coord.bank / geom.banksPerRank;
    unpermuted.rank = rank;
    unpermuted.bank = rank * geom.banksPerRank +
                      permute(coord.bank % geom.banksPerRank, coord.row);
    return InterleavedMapping::encode(unpermuted);
}

MappingRegistry::MappingRegistry()
{
    add(kDefault, [](const DramGeometry &g) {
        return std::make_unique<AddressMapper>(g);
    });
    add("row-bank-col-rank-ch", [](const DramGeometry &g) {
        return std::make_unique<InterleavedMapping>(g, kRowBankColRankCh);
    });
    add("permute-bank", [](const DramGeometry &g) {
        return std::make_unique<PermutedBankMapping>(g);
    });
}

MappingRegistry &
MappingRegistry::instance()
{
    static MappingRegistry registry;
    return registry;
}

void
MappingRegistry::add(const std::string &key, MappingFactory factory)
{
    validateRegistryKey("mapping", key);
    if (!factory)
        throw std::invalid_argument("mapping factory for '" + key +
                                    "' must not be empty");
    std::unique_lock<std::shared_mutex> lock(mu);
    if (!factories.emplace(key, std::move(factory)).second)
        throw std::invalid_argument("mapping '" + key +
                                    "' is already registered");
}

std::unique_ptr<const AddressMapping>
MappingRegistry::make(const std::string &key,
                      const DramGeometry &geometry) const
{
    MappingFactory factory;
    {
        std::shared_lock<std::shared_mutex> lock(mu);
        const auto it = factories.find(key);
        if (it == factories.end()) {
            std::string known;
            for (const auto &[k, f] : factories)
                known += (known.empty() ? "" : ", ") + k;
            throw std::out_of_range("unknown mapping '" + key +
                                    "' (registered: " + known + ")");
        }
        factory = it->second;
    }
    return factory(geometry);
}

bool
MappingRegistry::contains(const std::string &key) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return factories.count(key) != 0;
}

std::vector<std::string>
MappingRegistry::keys() const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[key, factory] : factories)
        out.push_back(key);
    return out;
}

} // namespace dstrange::dram
