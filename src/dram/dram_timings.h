/**
 * @file
 * DDR3-1600 timing and current parameters. All timing values are in DRAM
 * bus cycles (tCK = 1.25 ns at the 800 MHz bus clock of Table 1).
 */

#ifndef DSTRANGE_DRAM_DRAM_TIMINGS_H
#define DSTRANGE_DRAM_DRAM_TIMINGS_H

#include "common/types.h"

namespace dstrange::dram {

/**
 * JEDEC timing constraint set for one DRAM device generation. The default
 * values model DDR3-1600K (11-11-11) with 2 Gb x8 devices, the
 * configuration the paper simulates.
 */
struct DramTimings
{
    /** Bus clock period in nanoseconds. */
    double tCKns = 1.25;

    Cycle tRCD = 11;  ///< ACT to internal read/write delay.
    Cycle tCL = 11;   ///< Read column command to first data.
    Cycle tCWL = 8;   ///< Write column command to first data.
    Cycle tRP = 11;   ///< Precharge to ACT delay.
    Cycle tRAS = 28;  ///< ACT to PRE minimum.
    Cycle tRC = 39;   ///< ACT to ACT (same bank) minimum.
    Cycle tBL = 4;    ///< Burst length on the bus (BL8, DDR).
    Cycle tCCD = 4;   ///< Column command to column command.
    Cycle tRTP = 6;   ///< Read to precharge.
    Cycle tWR = 12;   ///< Write recovery (end of write data to PRE).
    Cycle tWTR = 6;   ///< End of write data to read command.
    Cycle tRRD = 5;   ///< ACT to ACT (different banks, same rank).
    Cycle tFAW = 24;  ///< Four-activate window.
    Cycle tRFC = 128; ///< Refresh cycle time (160 ns for 2 Gb parts).
    Cycle tREFI = 6240; ///< Average refresh interval (7.8 us).
    Cycle tXP = 5;    ///< Power-down exit to first valid command.
    /** Rank-to-rank data-bus turnaround: extra gap between bursts from
     *  different ranks sharing the channel (never applies with one
     *  rank, so single-rank timing is unaffected by its value). */
    Cycle tRTRS = 2;

    /** Read command to write command turnaround on the shared bus. */
    Cycle readToWrite() const { return tCL + tBL + 2 - tCWL; }

    /** Write command to read command turnaround on the shared bus. */
    Cycle writeToRead() const { return tCWL + tBL + tWTR; }

    /**
     * IDD currents (mA) and supply voltage for the DRAMPower-style energy
     * model; typical Micron 2 Gb DDR3-1600 datasheet values.
     */
    double vdd = 1.5;
    double idd0 = 70.0;   ///< One-bank ACT-PRE current.
    double idd2n = 42.0;  ///< Precharge standby.
    double idd3n = 45.0;  ///< Active standby.
    double idd4r = 180.0; ///< Burst read.
    double idd4w = 185.0; ///< Burst write.
    double idd2p = 12.0;  ///< Precharge power-down.
    double idd5 = 215.0;  ///< Refresh.
};

/** Sanity-check the constraint set (e.g. tRC >= tRAS + tRP). */
bool timingsAreConsistent(const DramTimings &t);

} // namespace dstrange::dram

#endif // DSTRANGE_DRAM_DRAM_TIMINGS_H
