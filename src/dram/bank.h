/**
 * @file
 * Per-bank DRAM state machine, tracked as earliest-issue timestamps.
 */

#ifndef DSTRANGE_DRAM_BANK_H
#define DSTRANGE_DRAM_BANK_H

#include <cstdint>

#include "common/types.h"
#include "dram/dram_timings.h"

namespace dstrange::dram {

/** DRAM commands issued over the channel command bus. */
enum class DramCmd : std::uint8_t
{
    Act, ///< Activate a row into the row buffer.
    Pre, ///< Precharge (close) the open row.
    Rd,  ///< Column read burst.
    Wr,  ///< Column write burst.
    Ref, ///< Rank-level refresh (handled at channel scope).
};

/** Sentinel row id meaning "no row open". */
inline constexpr std::int64_t kNoOpenRow = -1;

/**
 * One DRAM bank. The bank keeps its open row and the earliest cycle each
 * command class may legally be issued; the channel layers rank/bus level
 * constraints on top.
 */
class Bank
{
  public:
    explicit Bank(const DramTimings &timings);

    /** Row currently latched in the row buffer, or kNoOpenRow. */
    std::int64_t openRow() const { return openRowId; }

    /** true if a row is open. */
    bool isOpen() const { return openRowId != kNoOpenRow; }

    /** Earliest cycle the given command may issue at this bank. */
    Cycle earliestIssue(DramCmd cmd) const;

    /** true if the command is legal at @p now from this bank's view. */
    bool
    canIssue(DramCmd cmd, Cycle now) const
    {
        return now >= earliestIssue(cmd);
    }

    /**
     * Apply a command's state change and update timing fences.
     * @pre canIssue(cmd, now); ACT additionally needs !isOpen(), RD/WR
     *      need isOpen(), PRE needs isOpen().
     * @param row the row argument (ACT only).
     */
    void issue(DramCmd cmd, Cycle now, std::int64_t row = kNoOpenRow);

    /**
     * Force-close the bank for a refresh: models PREA + REF at channel
     * scope by fencing the next ACT until @p readyAt.
     */
    void blockUntil(Cycle readyAt);

  private:
    const DramTimings &t;

    std::int64_t openRowId = kNoOpenRow;
    Cycle actReadyAt = 0; ///< Earliest next ACT.
    Cycle colReadyAt = 0; ///< Earliest next RD/WR (row must be open).
    Cycle preReadyAt = 0; ///< Earliest next PRE.
};

} // namespace dstrange::dram

#endif // DSTRANGE_DRAM_BANK_H
