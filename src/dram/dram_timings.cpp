#include "dram/dram_timings.h"

namespace dstrange::dram {

bool
timingsAreConsistent(const DramTimings &t)
{
    if (t.tRC < t.tRAS + t.tRP)
        return false;
    if (t.tRAS < t.tRCD)
        return false;
    if (t.tFAW < t.tRRD)
        return false;
    if (t.tREFI <= t.tRFC)
        return false;
    if (t.tCKns <= 0.0)
        return false;
    return true;
}

} // namespace dstrange::dram
