/**
 * @file
 * DRAMPower-style energy model over the DRAM channel command and
 * state-residency counters, following the Micron DDR3 power model. Used
 * for the Section 8.9 energy comparison.
 */

#ifndef DSTRANGE_SIM_ENERGY_MODEL_H
#define DSTRANGE_SIM_ENERGY_MODEL_H

#include "dram/dram_channel.h"
#include "dram/dram_timings.h"

namespace dstrange::sim {

/** Energy in nanojoules, broken down by source. */
struct EnergyBreakdown
{
    double actPre = 0.0;     ///< Row activate/precharge pairs.
    double read = 0.0;       ///< Read bursts.
    double write = 0.0;      ///< Write bursts.
    double refresh = 0.0;    ///< REF commands.
    double background = 0.0; ///< Standby (active + precharged).
    double rng = 0.0;        ///< RNG-mode rounds.

    double
    total() const
    {
        return actPre + read + write + refresh + background + rng;
    }
};

/**
 * Energy model configuration: number of devices sharing each command
 * (x8 devices, 64-bit channel => 8 chips per rank).
 */
struct EnergyModelConfig
{
    unsigned devicesPerRank = 8;
    /**
     * RNG rounds run with violated timing parameters and touch every
     * bank; one round is charged as banksPerRound activate/precharge
     * pairs at a reduced row-cycle energy plus one read burst per bank.
     */
    unsigned banksPerRound = 8;
    double rngActScale = 0.6; ///< Reduced tRCD/tRAS row cycle fraction.
};

/** Compute the energy of one channel's activity. */
EnergyBreakdown channelEnergy(const dram::DramTimings &t,
                              const dram::ChannelEnergyCounters &c,
                              const EnergyModelConfig &cfg = {});

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_ENERGY_MODEL_H
