/**
 * @file
 * Parallel sweep executor for the paper's design x workload x knob
 * grids (Figs. 6-18). A SweepRunner owns one shared Runner — so every
 * worker thread hits the same thread-safe alone-run cache — and fans a
 * vector of cells out over a small work-stealing thread pool. Results
 * come back in the cells' original (deterministic) order regardless of
 * completion order, and each cell is a pure function of its
 * configuration and workload spec, so a parallel sweep is bit-identical
 * to a serial one.
 */

#ifndef DSTRANGE_SIM_SWEEP_RUNNER_H
#define DSTRANGE_SIM_SWEEP_RUNNER_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/sim_config.h"
#include "workloads/mixes.h"

namespace dstrange::sim {

/**
 * Work-stealing thread-pool executor over a grid of simulation cells.
 *
 * Concurrency: `DS_JOBS` overrides the worker count; otherwise it
 * defaults to std::thread::hardware_concurrency(). With one job (or one
 * cell) everything runs inline on the calling thread — no pool is
 * spawned — which keeps single-threaded debugging trivial.
 */
class SweepRunner
{
  public:
    /**
     * One grid cell: a workload spec plus either a DesignRegistry key
     * (built-in preset or user-registered) applied over the sweep's
     * base configuration, or an explicit SimConfig (which takes
     * precedence when present).
     */
    struct Cell
    {
        std::string design;              ///< DesignRegistry key ("" = config).
        std::optional<SimConfig> config; ///< Explicit full configuration.
        workloads::WorkloadSpec spec;
    };

    /** Outcome of one cell, in the cell's grid position. */
    struct CellResult
    {
        Runner::WorkloadResult result{};
        double wallMs = 0.0; ///< Wall-clock of this cell on its worker.
        bool ok = false;
        /** Cell owned by another shard (setShard()); not executed.
         *  skipped cells report ok == false with an explanatory
         *  error, never a result. */
        bool skipped = false;
        std::string error; ///< Exception message when !ok.
        /**
         * Execution-hygiene tag: "ok" (first attempt succeeded),
         * "retried" (first attempt threw, the bounded retry succeeded),
         * "error" (both attempts threw), "timeout" (the cell ran past
         * the DS_CELL_TIMEOUT budget — advisory: simulation threads are
         * never killed, so the result above is still valid and ok is
         * unaffected), or "skipped" (owned by another shard).
         */
        std::string outcome = "ok";
    };

    /**
     * Deterministic cross-process partition of a cell grid: shard
     * `index` of `count` owns exactly the cells whose stable hash
     * (cellHash()) is congruent to `index` mod `count`. Because the
     * hash depends only on the cell's own configuration and workload
     * spec — never on process state — N processes given the same grid
     * and distinct indices cover it exactly once with no coordination.
     */
    struct ShardSpec
    {
        unsigned index = 0;
        unsigned count = 1; ///< 1 = unsharded (owns every cell).
        /**
         * Balance shards by measured per-cell wall-clock instead of by
         * hash, using the cost records a ResultStore keeps (see
         * ResultStore::storeCellCost). Cells with a recorded cost are
         * distributed longest-processing-time-first over the shards;
         * cells without one fall back to the hash partition, and with
         * no store attached the whole spec degrades to plain hashing.
         * The assignment is a pure function of the grid, the shard
         * count, and the recorded costs, so N shards sharing one cache
         * directory (whose cost records a previous, e.g. unbalanced,
         * run populated) still cover the grid exactly once.
         */
        bool balanced = false;

        /** True when this spec is the trivial single-shard partition. */
        bool full() const { return count <= 1; }

        /** Does this shard own (and therefore run) @p cell under the
         *  hash partition? (Balanced assignment is grid-wide; see
         *  SweepRunner::shardOwners().) */
        bool owns(const Cell &cell) const
        {
            return count <= 1 || cellHash(cell) % count == index;
        }

        /**
         * Parse "I/N" or "I/N:balanced" (e.g. "0/4", "2/8:balanced"):
         * N >= 1 shards, index I < N.
         * @throws std::invalid_argument on malformed text or I >= N.
         */
        static ShardSpec parse(const std::string &text);

        /** DS_SHARD parsed as by parse(), or the trivial partition
         *  when unset. @throws std::invalid_argument like parse(). */
        static ShardSpec fromEnv();
    };

    /**
     * Canonical serialization of a cell's identity: its design key or
     * full config text plus every workload-spec field. Equal strings
     * mean the cell simulates identically; the string (and so the
     * partition) is stable across processes and machines.
     */
    static std::string cellKey(const Cell &cell);

    /** FNV-1a hash of cellKey() — the shard partition function. */
    static std::uint64_t cellHash(const Cell &cell);

    /**
     * @param base Base configuration design-key cells are applied over
     *             (also the shared Runner's base()).
     * @param jobs Worker count; 0 selects defaultJobs().
     *
     * The shared Runner picks up DS_CACHE_DIR for its persistent
     * alone-run cache, as every Runner does.
     */
    explicit SweepRunner(SimConfig base, unsigned jobs = 0);

    /** Like SweepRunner(base, jobs), but with an explicit persistent
     *  alone-run cache for the shared Runner (nullptr = none),
     *  ignoring DS_CACHE_DIR. */
    SweepRunner(SimConfig base, unsigned jobs,
                std::shared_ptr<ResultStore> store);

    /**
     * Worker count used when the constructor is passed jobs == 0: the
     * DS_JOBS environment override when set and parseable, otherwise
     * std::thread::hardware_concurrency(); always at least 1.
     */
    static unsigned defaultJobs();

    /** Effective worker count of this sweep. */
    unsigned jobs() const { return nJobs; }

    /**
     * The shared runner (and its alone-run cache) behind every cell.
     * Its base() is also the base configuration design-key cells are
     * applied over, so mutating it between sweeps affects both
     * direct runner() calls and subsequent run() grids consistently.
     */
    Runner &runner() { return shared; }

    /**
     * Per-cell completion callback: cells finished so far, total cell
     * count, the finished cell's grid index, and its wall-clock. Invoked
     * under an internal mutex (never concurrently) from whichever worker
     * finished the cell, in completion — not grid — order. Keep it
     * cheap; every worker serializes through it.
     */
    using ProgressFn = std::function<void(
        std::size_t done, std::size_t total, std::size_t cell_index,
        double cell_wall_ms)>;

    /** Install a progress callback for subsequent run() calls (empty =
     *  none). Set before run(); not thread-safe against a running sweep. */
    void setProgress(ProgressFn fn) { progress = std::move(fn); }

    /**
     * Restrict subsequent run() calls to the cells owned by @p spec.
     * Non-owned cells come back immediately with skipped == true (and
     * ok == false) in their grid positions, so the result vector keeps
     * the full grid shape and a later merge step can reassemble the
     * grid from N shards' outputs. The default is the trivial
     * partition (run everything). Set before run(), like setProgress().
     */
    void setShard(ShardSpec spec) { shard = spec; }

    /** The active cross-process partition (trivial by default). */
    const ShardSpec &shardSpec() const { return shard; }

    /**
     * Owning shard index for every cell of @p cells under the active
     * ShardSpec. Hash-partitioned by default; with a balanced spec,
     * cells whose wall-clock cost the attached ResultStore has recorded
     * are assigned longest-first to the least-loaded shard (ties: the
     * lowest shard index), and the rest keep their hash assignment.
     * Deterministic for a given grid, spec, and cost-record set —
     * every shard of an "I/N:balanced" ensemble computes the same
     * owner vector, so the shards remain a disjoint exact cover.
     */
    std::vector<unsigned>
    shardOwners(const std::vector<Cell> &cells) const;

    /**
     * Pin the per-cell owner assignment for subsequent run() calls
     * instead of computing it via shardOwners(). run_all uses this to
     * hand the balanced assignment (computed once, against the cost
     * records) to its reference sweeps, which deliberately run without
     * the cache attached and would otherwise fall back to hashing —
     * skipping a different cell set than the measured run. Ignored
     * when the vector's size does not match the grid passed to run();
     * an empty vector (the default) restores the computed assignment.
     */
    void setShardOwners(std::vector<unsigned> owners)
    {
        ownerOverride = std::move(owners);
    }

    /**
     * Execute every cell and return results in cell order. A cell that
     * throws (unknown design key, bad configuration, ...) yields
     * ok == false with the exception message in error; the other cells
     * still run.
     */
    std::vector<CellResult> run(const std::vector<Cell> &cells);

    /**
     * Convenience: the designs x specs product in spec-major order
     * (all designs of specs[0], then specs[1], ...), matching the
     * figure benches' per-workload table rows. Cell i*designs.size()+d
     * holds (specs[i], designs[d]).
     */
    static std::vector<Cell>
    grid(const std::vector<std::string> &designs,
         const std::vector<workloads::WorkloadSpec> &specs);

  private:
    CellResult runCell(const Cell &cell);

    unsigned nJobs;
    Runner shared;
    ProgressFn progress;
    ShardSpec shard;
    std::vector<unsigned> ownerOverride; ///< See setShardOwners().
};

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_SWEEP_RUNNER_H
