/**
 * @file
 * Experiment runner: builds systems from workload specs, runs them, and
 * derives the paper's metrics. Alone-run baselines are cached so sweeps
 * over designs and workload sets stay fast; the cache is thread-safe so
 * one Runner can serve every worker of a sim::SweepRunner fan-out.
 */

#ifndef DSTRANGE_SIM_RUNNER_H
#define DSTRANGE_SIM_RUNNER_H

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plane.h"
#include "service/slo_report.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workloads/mixes.h"

namespace dstrange::sim {

class ResultStore;

/**
 * Orchestrates workload execution and metric computation.
 *
 * run() and the alone() accessors may be called concurrently from
 * multiple threads; every run is a pure function of its configuration
 * and workload spec, so results are bit-identical whether cells execute
 * serially or in parallel. Only base() and setResultStore() mutation is
 * single-threaded.
 */
class Runner
{
  public:
    /** Per-core outcome of one workload run. */
    struct CoreResult
    {
        std::string app;
        bool isRng = false;
        double slowdown = 1.0;    ///< Execution time vs. alone.
        double memSlowdown = 1.0; ///< MCPI vs. alone.
        double ipcShared = 0.0;
        double ipcAlone = 0.0;
        double rngStallFraction = 0.0; ///< RNG stall share of runtime.
    };

    /** Aggregate outcome of one workload run. */
    struct WorkloadResult
    {
        std::string name;
        std::string group;
        std::vector<CoreResult> cores;
        double unfairnessIndex = 1.0;
        /** Raw weighted speedup over the non-RNG applications. */
        double weightedSpeedupNonRng = 0.0;
        double bufferServeRate = 0.0;
        double predictorAccuracy = -1.0; ///< -1 when no predictor.
        Cycle busCycles = 0;
        double energyNj = 0.0;
        mem::McStats mcStats{};
        /** Strict-idle period lengths across all channels (Fig. 5/18);
         *  populated only when setCollectIdlePeriods(true). */
        std::vector<std::uint32_t> idlePeriods;
        /** Tail-latency/SLO report of the open-loop service layer;
         *  present only when the run's config enables it. */
        std::optional<service::SloReport> service;
        /** Fault-injection/mitigation counters; present only when the
         *  run's config lists cell-level fault models. */
        std::optional<fault::FaultReport> fault;

        /** Mean slowdown of the non-RNG applications. */
        double avgNonRngSlowdown() const;

        /** Slowdown of the RNG application (1.0 if none). */
        double rngSlowdown() const;
    };

    /** Runs with the persistent cache from DS_CACHE_DIR when that is
     *  set (see ResultStore); in-memory caching always applies. */
    explicit Runner(SimConfig base);

    /** Like Runner(base), but with an explicit persistent alone-run
     *  cache (nullptr = none), ignoring DS_CACHE_DIR. */
    Runner(SimConfig base, std::shared_ptr<ResultStore> store);

    /** Run one workload under the given design preset. */
    WorkloadResult run(SystemDesign design,
                       const workloads::WorkloadSpec &spec);

    /**
     * Run one workload under a design registered in sim::DesignRegistry
     * (built-in preset keys like "drstrange" or user-registered ones).
     * @throws std::out_of_range on an unknown design name.
     */
    WorkloadResult run(const std::string &design,
                       const workloads::WorkloadSpec &spec);

    /**
     * Run one workload under an explicit configuration (arbitrary
     * policy-knob combinations). Execution-time slowdowns are
     * normalized to RNG-oblivious alone runs derived from @p cfg
     * itself (same seed, timings, geometry), so custom configurations
     * get consistent metrics; the alone-run cache is shared across all
     * run() overloads.
     */
    WorkloadResult run(const SimConfig &cfg,
                       const workloads::WorkloadSpec &spec);

    /**
     * Alone-run baseline of a non-RNG application (cached).
     *
     * Execution-time slowdowns (the paper's Fig. 1/6/8 y-axes) are
     * normalized to the RNG-oblivious baseline alone run; the MCPI-based
     * memory slowdown feeding the unfairness index is normalized to the
     * alone run *on the same design* (Section 7's "when the application
     * runs alone"), so pass the design under evaluation for the latter.
     */
    const AloneResult &alone(const std::string &app_name,
                             SystemDesign design =
                                 SystemDesign::RngOblivious);

    /** Alone-run baseline of the RNG benchmark (cached). */
    const AloneResult &aloneRng(double mbps,
                                SystemDesign design =
                                    SystemDesign::RngOblivious);

    /**
     * Mutable base configuration (mechanism, budget, seed, ...). Not
     * thread-safe: mutate only between sweeps, never while another
     * thread is inside run()/alone().
     */
    SimConfig &base() { return baseCfg; }

    /**
     * Collect each run's idle-period distribution into
     * WorkloadResult::idlePeriods (off by default; the vectors can be
     * large). Set before a sweep, like base() mutation.
     */
    void setCollectIdlePeriods(bool collect)
    {
        collectIdlePeriods = collect;
    }

    /**
     * Attach (or with nullptr, detach) a persistent alone-run cache.
     * Baselines already computed are consulted from disk before being
     * simulated, and newly computed ones are written back; the
     * in-memory cache sits in front, so each key touches the store at
     * most once per Runner. Like base(), set only between runs.
     */
    void setResultStore(std::shared_ptr<ResultStore> store)
    {
        persistent = std::move(store);
    }

    /** The attached persistent cache, or nullptr. */
    const std::shared_ptr<ResultStore> &resultStore() const
    {
        return persistent;
    }

  private:
    std::unique_ptr<cpu::TraceSource>
    makeAppTrace(const std::string &name, CoreId core,
                 const SimConfig &cfg) const;
    std::unique_ptr<cpu::TraceSource>
    makeRngTrace(double mbps, CoreId core, const SimConfig &cfg) const;
    /** RNG-oblivious alone-run config over @p from (priorities cleared,
     *  @p design policies applied). */
    static SimConfig aloneConfig(const SimConfig &from,
                                 SystemDesign design);
    const AloneResult &aloneApp(const std::string &app_name,
                                const SimConfig &alone_cfg);
    const AloneResult &aloneRngImpl(double mbps,
                                    const SimConfig &alone_cfg);
    const AloneResult &
    cachedAlone(const std::string &key,
                const std::function<AloneResult()> &compute);
    /**
     * Run one trace alone. @p make_trace is invoked once normally and
     * twice under DS_LOCKSTEP (the cross-check needs an identical fresh
     * trace for the step-1 reference system).
     */
    AloneResult
    runAlone(const std::function<std::unique_ptr<cpu::TraceSource>()>
                 &make_trace,
             const SimConfig &cfg) const;

    SimConfig baseCfg;
    bool collectIdlePeriods = false;
    std::shared_ptr<ResultStore> persistent; ///< Optional disk cache.

    /**
     * Alone-run baselines keyed on the trace identity plus the *full*
     * canonical serialization of the effective configuration, so
     * mutating base() between runs (buffer size, thresholds, timings,
     * fill mechanism, ...) can never serve a stale baseline.
     *
     * The cache is safe under concurrent run()/alone() calls (the
     * SweepRunner fan-out): entries live behind stable pointers in a
     * sharded mutex-guarded map, and each entry carries a once-flag so
     * two threads needing the same baseline compute it exactly once —
     * the loser blocks on the winner instead of duplicating a full
     * alone simulation or racing on the slot.
     */
    struct AloneEntry
    {
        std::once_flag once;
        AloneResult result;
    };
    struct AloneShard
    {
        std::mutex mu;
        std::map<std::string, std::unique_ptr<AloneEntry>> entries;
    };
    static constexpr std::size_t kAloneShards = 16;
    std::array<AloneShard, kAloneShards> aloneCache;
};

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_RUNNER_H
