#include "sim/area_model.h"

namespace dstrange::sim {

namespace {

// Fitted to the paper's CACTI 6.0 outputs at 22 nm (see header).
constexpr double kMm2PerBit = 1.45e-7; // ~6T cell + array overhead.
constexpr double kPeripheryMm2 = 0.0015;

/** Bits in one RNG request queue entry: core id, token, age, progress. */
constexpr double kRngQueueEntryBits = 64.0;

} // namespace

AreaEstimate
sramMacroArea(double bits)
{
    AreaEstimate a;
    a.storageBits = bits;
    a.mm2 = kPeripheryMm2 + kMm2PerBit * bits;
    return a;
}

AreaEstimate
drStrangeArea(const mem::McConfig &cfg, unsigned channels)
{
    double bits = 0.0;

    // Random number buffer: 64-bit entries.
    bits += static_cast<double>(cfg.bufferEntries) * 64.0;

    // RNG request queue.
    if (cfg.rngAwareQueueing)
        bits += static_cast<double>(cfg.rngQueueCap) * kRngQueueEntryBits;

    // Idleness predictor.
    if (cfg.fill == mem::FillMode::Engine) {
        switch (cfg.predictorKind) {
          case mem::PredictorKind::None:
            break;
          case mem::PredictorKind::Simple:
            // 2-bit counters per entry, one table per channel, plus the
            // last-address register and idle-length counter per channel.
            bits += static_cast<double>(cfg.predictorEntries) * 2.0 *
                        channels +
                    channels * (48.0 + 16.0);
            break;
          case mem::PredictorKind::Rl:
            // Q table: 2 actions x 2^stateBits states x 4-byte Q values,
            // plus the 10-bit history register per channel.
            bits += 2.0 * static_cast<double>(
                              1u << cfg.rlConfig.stateBits) *
                        32.0 +
                    channels * 10.0;
            break;
        }
    }
    return sramMacroArea(bits);
}

} // namespace dstrange::sim
