#include "sim/area_model.h"

#include "strange/predictor_registry.h"

namespace dstrange::sim {

namespace {

// Fitted to the paper's CACTI 6.0 outputs at 22 nm (see header).
constexpr double kMm2PerBit = 1.45e-7; // ~6T cell + array overhead.
constexpr double kPeripheryMm2 = 0.0015;

/** Bits in one RNG request queue entry: core id, token, age, progress. */
constexpr double kRngQueueEntryBits = 64.0;

} // namespace

AreaEstimate
sramMacroArea(double bits)
{
    AreaEstimate a;
    a.storageBits = bits;
    a.mm2 = kPeripheryMm2 + kMm2PerBit * bits;
    return a;
}

AreaEstimate
drStrangeArea(const mem::McConfig &cfg, unsigned channels)
{
    double bits = 0.0;

    // Random number buffer: 64-bit entries.
    bits += static_cast<double>(cfg.bufferEntries) * 64.0;

    // RNG request queue.
    if (cfg.rngAwareQueueing)
        bits += static_cast<double>(cfg.rngQueueCap) * kRngQueueEntryBits;

    // Idleness predictor: each registry entry prices its own storage
    // (custom predictors without a storage model count as 0 bits).
    if (cfg.fill == mem::FillMode::Engine) {
        strange::PredictorAreaContext actx;
        actx.channels = channels;
        actx.tableEntries = cfg.predictorEntries;
        actx.rlConfig = cfg.rlConfig;
        bits += strange::PredictorRegistry::instance().storageBits(
            cfg.predictor, actx);
    }
    return sramMacroArea(bits);
}

} // namespace dstrange::sim
