/**
 * @file
 * System-level configuration as a set of *orthogonal policy knobs* —
 * intra-queue scheduler, RNG-queue policy, buffering, buffer-fill
 * policy, idleness predictor, low-utilization fill — plus the numeric
 * parameters they consume. The paper's nine named system designs are
 * presets over this policy space (applyDesign/designConfig); nothing in
 * the construction path switches on a design enum, so new policies
 * registered in mem::SchedulerRegistry / strange::PredictorRegistry or
 * sim::DesignRegistry compose with every existing sweep.
 */

#ifndef DSTRANGE_SIM_SIM_CONFIG_H
#define DSTRANGE_SIM_SIM_CONFIG_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dram/address_mapper.h"
#include "dram/dram_timings.h"
#include "fault/fault_config.h"
#include "mem/memory_controller.h"
#include "service/service_config.h"
#include "trng/trng_mechanism.h"

namespace dstrange::sim {

/** The named system designs evaluated in the paper (presets). */
enum class SystemDesign : std::uint8_t
{
    RngOblivious,     ///< Baseline: FR-FCFS+Cap16, on-demand all-channel RNG.
    GreedyIdle,       ///< Oracle zero-overhead buffer fill + RNG-aware queue.
    DrStrange,        ///< Full design: simple predictor, low-util threshold 4.
    DrStrangeNoPred,  ///< Simple buffering (every quiet period assumed long).
    DrStrangeRl,      ///< Q-learning idleness predictor.
    DrStrangeNoLowUtil, ///< Simple predictor, low-utilization disabled.
    RngAwareNoBuffer, ///< RNG-aware scheduler only (Fig. 11 ablation).
    FrFcfsBaseline,   ///< RNG-oblivious with classic (uncapped) FR-FCFS.
    BlissBaseline,    ///< RNG-oblivious with the BLISS scheduler.
};

/** All paper designs, in sweep order. */
inline constexpr std::array<SystemDesign, 9> kAllDesigns = {
    SystemDesign::RngOblivious,      SystemDesign::GreedyIdle,
    SystemDesign::DrStrange,         SystemDesign::DrStrangeNoPred,
    SystemDesign::DrStrangeRl,       SystemDesign::DrStrangeNoLowUtil,
    SystemDesign::RngAwareNoBuffer,  SystemDesign::FrFcfsBaseline,
    SystemDesign::BlissBaseline,
};

/** Short display name of a design (e.g. "DR-STRANGE"). */
const char *designName(SystemDesign design);

/** Stable machine-readable key of a design (e.g. "drstrange"), as used
 *  by the CLI's --design flag, config text, and sim::DesignRegistry. */
const char *designKey(SystemDesign design);

/** Parse a design from its key or display name; nullopt when unknown. */
std::optional<SystemDesign> designFromString(std::string_view name);

/**
 * Full simulation configuration. The first block is the composable
 * policy space; a default-constructed SimConfig selects the full
 * DR-STRaNGe design (the same default the legacy design enum had).
 */
struct SimConfig
{
    // --- Policy knobs ------------------------------------------------
    /** Intra-queue scheduler (mem::SchedulerRegistry key). */
    std::string scheduler = "fr-fcfs-cap";
    /** Separate RNG queue + RNG-aware arbitration (vs. oblivious
     *  all-channel preemption on RNG arrival). */
    bool rngAwareQueueing = true;
    /** Random number buffer on/off (bufferEntries sizes it when on). */
    bool buffering = true;
    /** Buffer-fill policy when buffering: "none", "greedy-oracle", or
     *  "engine" (see mem::FillMode). */
    std::string fillPolicy = "engine";
    /** Idleness predictor gating engine fill
     *  (strange::PredictorRegistry key; "none" = simple buffering). */
    std::string predictor = "simple";
    /** Also fill during low-utilization (not just idle) periods. */
    bool lowUtilFill = true;
    /** Physical-address interleaving policy
     *  (dram::MappingRegistry key). */
    std::string addressMapping = "row-bank-col-ch";
    /** Cross-channel placement of engine buffer-fill sessions:
     *  "first-idle" (historical) or "round-robin". */
    std::string fillPlacement = "first-idle";
    /** Per-channel memory-timing model (mem::BackendRegistry key). */
    std::string backend = "ddr4";

    // --- Mechanisms and hardware parameters --------------------------
    trng::TrngMechanism mechanism = trng::TrngMechanism::dRange();
    /** Optional distinct buffer-fill mechanism (hybrid TRNG design,
     *  Section 8.7); empty = same mechanism for demand and fill. */
    std::optional<trng::TrngMechanism> fillMechanism;
    dram::DramTimings timings{};
    dram::DramGeometry geometry{};

    unsigned bufferEntries = 16;   ///< Buffered 64-bit numbers.
    /** Per-application buffer partitions (Section 6 countermeasure);
     *  0/1 = one shared buffer. */
    unsigned bufferPartitions = 0;
    unsigned lowUtilThreshold = 4; ///< Queue occupancy bound (lowUtilFill).
    /** Precharge power-down after this many idle cycles (0 = off). */
    Cycle powerDownThreshold = 0;

    /** "fixed-latency" backend parameters (ignored by "ddr4"). */
    Cycle backendReadLatency = 20;
    Cycle backendWriteLatency = 20;
    Cycle backendGap = 4;

    std::uint64_t instrBudget = 300000; ///< Per-core retired instructions.
    Cycle maxBusCycles = 40'000'000;    ///< Safety bound.

    /** Per-core OS priorities (empty = all equal). */
    std::vector<int> priorities;

    std::uint64_t seed = 1; ///< Master seed for traces and entropy.

    /** Open-loop RNG-as-a-service layer (off by default; orthogonal to
     *  the design presets, which never touch it). */
    service::ServiceConfig service;

    /** Deterministic fault injection (off by default — no models
     *  listed; orthogonal to the design presets). */
    fault::FaultConfig fault;

    /** Record the controller-boundary request stream to this file
     *  (empty = off; see trace/trace_writer.h). */
    std::string traceRecord;
    /** Replay a recorded request stream instead of simulating cores
     *  (empty = off; see trace/trace_replay_source.h). */
    std::string traceReplay;
};

/**
 * Reset the policy knobs of @p cfg to the named paper design. Numeric
 * parameters (buffer size, thresholds, mechanism, budget, seed, ...)
 * are left untouched.
 */
void applyDesign(SimConfig &cfg, SystemDesign design);

/** A default SimConfig with the named design's policy knobs applied. */
SimConfig designConfig(SystemDesign design);

/** Map the policy knobs onto the memory controller configuration. */
mem::McConfig mcConfigFor(const SimConfig &cfg);

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_SIM_CONFIG_H
