/**
 * @file
 * System-level configuration: the paper's named system designs as
 * presets over the memory controller configuration space.
 */

#ifndef DSTRANGE_SIM_SIM_CONFIG_H
#define DSTRANGE_SIM_SIM_CONFIG_H

#include <cstdint>
#include <optional>
#include <vector>

#include "dram/address_mapper.h"
#include "dram/dram_timings.h"
#include "mem/memory_controller.h"
#include "trng/trng_mechanism.h"

namespace dstrange::sim {

/** The named system designs evaluated in the paper. */
enum class SystemDesign : std::uint8_t
{
    RngOblivious,     ///< Baseline: FR-FCFS+Cap16, on-demand all-channel RNG.
    GreedyIdle,       ///< Oracle zero-overhead buffer fill + RNG-aware queue.
    DrStrange,        ///< Full design: simple predictor, low-util threshold 4.
    DrStrangeNoPred,  ///< Simple buffering (every quiet period assumed long).
    DrStrangeRl,      ///< Q-learning idleness predictor.
    DrStrangeNoLowUtil, ///< Simple predictor, low-utilization disabled.
    RngAwareNoBuffer, ///< RNG-aware scheduler only (Fig. 11 ablation).
    FrFcfsBaseline,   ///< RNG-oblivious with classic (uncapped) FR-FCFS.
    BlissBaseline,    ///< RNG-oblivious with the BLISS scheduler.
};

/** Short display name of a design. */
const char *designName(SystemDesign design);

/** Full simulation configuration. */
struct SimConfig
{
    SystemDesign design = SystemDesign::DrStrange;
    trng::TrngMechanism mechanism = trng::TrngMechanism::dRange();
    /** Optional distinct buffer-fill mechanism (hybrid TRNG design,
     *  Section 8.7); empty = same mechanism for demand and fill. */
    std::optional<trng::TrngMechanism> fillMechanism;
    dram::DramTimings timings{};
    dram::DramGeometry geometry{};

    unsigned bufferEntries = 16;   ///< Buffered 64-bit numbers.
    /** Per-application buffer partitions (Section 6 countermeasure);
     *  0/1 = one shared buffer. */
    unsigned bufferPartitions = 0;
    unsigned lowUtilThreshold = 4; ///< DR-STRaNGe designs only.
    /** Precharge power-down after this many idle cycles (0 = off). */
    Cycle powerDownThreshold = 0;

    std::uint64_t instrBudget = 300000; ///< Per-core retired instructions.
    Cycle maxBusCycles = 40'000'000;    ///< Safety bound.

    /** Per-core OS priorities (empty = all equal). */
    std::vector<int> priorities;

    std::uint64_t seed = 1; ///< Master seed for traces and entropy.
};

/** Expand a design preset into the memory controller configuration. */
mem::McConfig mcConfigFor(const SimConfig &cfg);

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_SIM_CONFIG_H
