#include "sim/runner.h"

#include <cassert>

#include "sim/config_text.h"
#include "sim/design_registry.h"
#include "sim/energy_model.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

namespace dstrange::sim {

double
Runner::WorkloadResult::avgNonRngSlowdown() const
{
    double sum = 0.0;
    unsigned n = 0;
    for (const CoreResult &c : cores) {
        if (!c.isRng) {
            sum += c.slowdown;
            ++n;
        }
    }
    return n == 0 ? 1.0 : sum / n;
}

double
Runner::WorkloadResult::rngSlowdown() const
{
    for (const CoreResult &c : cores)
        if (c.isRng)
            return c.slowdown;
    return 1.0;
}

Runner::Runner(SimConfig base) : baseCfg(std::move(base))
{
}

std::unique_ptr<cpu::TraceSource>
Runner::makeAppTrace(const std::string &name, CoreId core,
                     const SimConfig &cfg) const
{
    return std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName(name), cfg.geometry, core, cfg.seed);
}

std::unique_ptr<cpu::TraceSource>
Runner::makeRngTrace(double mbps, CoreId core,
                     const SimConfig &cfg) const
{
    return std::make_unique<workloads::RngBenchmark>(
        mbps, cfg.geometry, cfg.seed + core);
}

SimConfig
Runner::aloneConfig(const SimConfig &from, SystemDesign design)
{
    SimConfig cfg = from;
    applyDesign(cfg, design);
    cfg.priorities.clear();
    return cfg;
}

AloneResult
Runner::runAlone(std::unique_ptr<cpu::TraceSource> trace,
                 const SimConfig &cfg) const
{
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    traces.push_back(std::move(trace));
    System sys(cfg, std::move(traces));
    sys.run();

    const cpu::CoreStats &s = sys.coreStats(0);
    AloneResult res;
    res.execCpuCycles = static_cast<double>(s.finishCycle);
    res.ipc = s.ipc();
    res.mcpi = s.mcpi();
    return res;
}

const AloneResult &
Runner::cachedAlone(const std::string &key,
                    const std::function<AloneResult()> &compute)
{
    AloneShard &shard =
        aloneCache[std::hash<std::string>{}(key) % kAloneShards];
    AloneEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        std::unique_ptr<AloneEntry> &slot = shard.entries[key];
        if (!slot)
            slot = std::make_unique<AloneEntry>();
        entry = slot.get();
    }
    // Compute outside the shard lock so unrelated keys proceed in
    // parallel; call_once serializes same-key computations and, on an
    // exception, leaves the flag unset so a later caller retries.
    std::call_once(entry->once, [&] { entry->result = compute(); });
    return entry->result;
}

const AloneResult &
Runner::aloneApp(const std::string &app_name,
                 const SimConfig &alone_cfg)
{
    const std::string key =
        "app|" + app_name + "|" + serializeConfig(alone_cfg);
    return cachedAlone(key, [&] {
        return runAlone(makeAppTrace(app_name, 0, alone_cfg), alone_cfg);
    });
}

const AloneResult &
Runner::aloneRngImpl(double mbps, const SimConfig &alone_cfg)
{
    const std::string key = "rng|" + std::to_string(mbps) + "|" +
                            serializeConfig(alone_cfg);
    return cachedAlone(key, [&] {
        return runAlone(makeRngTrace(mbps, 0, alone_cfg), alone_cfg);
    });
}

const AloneResult &
Runner::alone(const std::string &app_name, SystemDesign design)
{
    return aloneApp(app_name, aloneConfig(baseCfg, design));
}

const AloneResult &
Runner::aloneRng(double mbps, SystemDesign design)
{
    return aloneRngImpl(mbps, aloneConfig(baseCfg, design));
}

Runner::WorkloadResult
Runner::run(SystemDesign design, const workloads::WorkloadSpec &spec)
{
    SimConfig cfg = baseCfg;
    applyDesign(cfg, design);
    return run(cfg, spec);
}

Runner::WorkloadResult
Runner::run(const std::string &design,
            const workloads::WorkloadSpec &spec)
{
    SimConfig cfg = baseCfg;
    DesignRegistry::instance().apply(design, cfg);
    return run(cfg, spec);
}

Runner::WorkloadResult
Runner::run(const SimConfig &cfg, const workloads::WorkloadSpec &spec)
{
    const bool has_rng = spec.rngThroughputMbps > 0.0;
    const unsigned n_cores =
        static_cast<unsigned>(spec.apps.size()) + (has_rng ? 1 : 0);
    assert(n_cores >= 1);

    // The RNG benchmark occupies the last core. Traces derive from the
    // run's own configuration (seed/geometry), not from base().
    std::vector<std::unique_ptr<cpu::TraceSource>> traces;
    for (unsigned i = 0; i < spec.apps.size(); ++i)
        traces.push_back(makeAppTrace(spec.apps[i], i, cfg));
    if (has_rng)
        traces.push_back(
            makeRngTrace(spec.rngThroughputMbps, n_cores - 1, cfg));

    System sys(cfg, std::move(traces));
    sys.run();

    WorkloadResult result;
    result.name = spec.name;
    result.group = spec.group;
    result.busCycles = sys.busCycles();
    result.mcStats = sys.mc().stats();
    result.bufferServeRate = result.mcStats.bufferServeRate();
    if (auto ps = sys.mc().predictorStats())
        result.predictorAccuracy = ps->accuracy();

    for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
        result.energyNj +=
            channelEnergy(cfg.timings, sys.mc().channel(ch).energyCounters())
                .total();
    }

    // Both execution-time slowdown and the MCPI-based memory slowdown
    // are normalized to the RNG-oblivious single-core baseline alone
    // run (Section 7), derived from this run's own configuration.
    const SimConfig alone_cfg =
        aloneConfig(cfg, SystemDesign::RngOblivious);

    std::vector<double> mem_slowdowns;
    std::vector<double> ipc_shared, ipc_alone;
    for (unsigned i = 0; i < n_cores; ++i) {
        const bool is_rng = has_rng && i == n_cores - 1;
        const cpu::CoreStats &s = sys.coreStats(i);
        const AloneResult &al =
            is_rng ? aloneRngImpl(spec.rngThroughputMbps, alone_cfg)
                   : aloneApp(spec.apps[i], alone_cfg);
        CoreResult cr;
        cr.app = sys.traceName(i);
        cr.isRng = is_rng;
        cr.slowdown = slowdown(s, al);
        cr.memSlowdown = memSlowdown(s, al);
        cr.ipcShared = s.ipc();
        cr.ipcAlone = al.ipc;
        cr.rngStallFraction =
            s.finishCycle == 0 ? 0.0
                               : static_cast<double>(s.rngStallCycles) /
                                     static_cast<double>(s.finishCycle);
        mem_slowdowns.push_back(cr.memSlowdown);
        if (!is_rng) {
            ipc_shared.push_back(cr.ipcShared);
            ipc_alone.push_back(cr.ipcAlone);
        }
        result.cores.push_back(std::move(cr));
    }

    result.unfairnessIndex = unfairness(mem_slowdowns);
    result.weightedSpeedupNonRng = weightedSpeedup(ipc_shared, ipc_alone);
    return result;
}

} // namespace dstrange::sim
