#include "sim/runner.h"

#include <cassert>

#include "sim/config_text.h"
#include "sim/design_registry.h"
#include "sim/energy_model.h"
#include "sim/lockstep.h"
#include "sim/result_store.h"
#include "workloads/rng_benchmark.h"
#include "workloads/synthetic_trace.h"

namespace dstrange::sim {

double
Runner::WorkloadResult::avgNonRngSlowdown() const
{
    double sum = 0.0;
    unsigned n = 0;
    for (const CoreResult &c : cores) {
        if (!c.isRng) {
            sum += c.slowdown;
            ++n;
        }
    }
    return n == 0 ? 1.0 : sum / n;
}

double
Runner::WorkloadResult::rngSlowdown() const
{
    for (const CoreResult &c : cores)
        if (c.isRng)
            return c.slowdown;
    return 1.0;
}

Runner::Runner(SimConfig base)
    : Runner(std::move(base), ResultStore::openFromEnv())
{
}

Runner::Runner(SimConfig base, std::shared_ptr<ResultStore> store)
    : baseCfg(std::move(base)), persistent(std::move(store))
{
}

std::unique_ptr<cpu::TraceSource>
Runner::makeAppTrace(const std::string &name, CoreId core,
                     const SimConfig &cfg) const
{
    return std::make_unique<workloads::SyntheticTrace>(
        workloads::appByName(name), cfg.geometry, core, cfg.seed);
}

std::unique_ptr<cpu::TraceSource>
Runner::makeRngTrace(double mbps, CoreId core,
                     const SimConfig &cfg) const
{
    return std::make_unique<workloads::RngBenchmark>(
        mbps, cfg.geometry, cfg.seed + core);
}

SimConfig
Runner::aloneConfig(const SimConfig &from, SystemDesign design)
{
    SimConfig cfg = from;
    applyDesign(cfg, design);
    cfg.priorities.clear();
    // Alone baselines never record (they would clobber the workload's
    // tape) and never replay (the tape stands in for the shared run).
    cfg.traceRecord.clear();
    cfg.traceReplay.clear();
    return cfg;
}

namespace {

/**
 * Build-and-run helper shared by the alone and workload paths. Under
 * DS_LOCKSTEP the system is forced onto the fast-forward path and a
 * second, freshly-traced system replays the run ticking every bus
 * cycle; every statistic of the two must be bit-identical. (Returned
 * by pointer: System is immovable — its completion callback captures
 * `this`.)
 */
std::unique_ptr<System>
runSystem(const SimConfig &cfg,
          const std::function<
              std::vector<std::unique_ptr<cpu::TraceSource>>()>
              &make_traces)
{
    auto sys = std::make_unique<System>(cfg, make_traces());
    const bool lockstep = lockstepEnabled();
    if (lockstep)
        sys->setFastForward(true);
    sys->run();
    if (lockstep) {
        System ref(cfg, make_traces());
        ref.setFastForward(false);
        ref.run();
        verifyLockstep(*sys, ref);
    }
    return sys;
}

} // namespace

AloneResult
Runner::runAlone(
    const std::function<std::unique_ptr<cpu::TraceSource>()> &make_trace,
    const SimConfig &cfg) const
{
    const auto sys_ptr = runSystem(cfg, [&] {
        std::vector<std::unique_ptr<cpu::TraceSource>> traces;
        traces.push_back(make_trace());
        return traces;
    });
    const System &sys = *sys_ptr;

    const cpu::CoreStats &s = sys.coreStats(0);
    AloneResult res;
    res.execCpuCycles = static_cast<double>(s.finishCycle);
    res.ipc = s.ipc();
    res.mcpi = s.mcpi();
    return res;
}

const AloneResult &
Runner::cachedAlone(const std::string &key,
                    const std::function<AloneResult()> &compute)
{
    AloneShard &shard =
        aloneCache[std::hash<std::string>{}(key) % kAloneShards];
    AloneEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        std::unique_ptr<AloneEntry> &slot = shard.entries[key];
        if (!slot)
            slot = std::make_unique<AloneEntry>();
        entry = slot.get();
    }
    // Compute outside the shard lock so unrelated keys proceed in
    // parallel; call_once serializes same-key computations and, on an
    // exception, leaves the flag unset so a later caller retries. The
    // persistent store sits behind the once-flag, so each key touches
    // the disk at most once per Runner: a disk hit skips the
    // simulation entirely (the cached baseline is bit-identical to a
    // recomputed one), a miss computes and writes back.
    std::call_once(entry->once, [&] {
        if (persistent) {
            if (auto cached = persistent->loadAlone(key)) {
                entry->result = *cached;
                return;
            }
        }
        entry->result = compute();
        if (persistent)
            persistent->storeAlone(key, entry->result);
    });
    return entry->result;
}

const AloneResult &
Runner::aloneApp(const std::string &app_name,
                 const SimConfig &alone_cfg)
{
    const std::string key =
        "app|" + app_name + "|" + serializeConfig(alone_cfg);
    return cachedAlone(key, [&] {
        return runAlone(
            [&] { return makeAppTrace(app_name, 0, alone_cfg); },
            alone_cfg);
    });
}

const AloneResult &
Runner::aloneRngImpl(double mbps, const SimConfig &alone_cfg)
{
    const std::string key = "rng|" + std::to_string(mbps) + "|" +
                            serializeConfig(alone_cfg);
    return cachedAlone(key, [&] {
        return runAlone([&] { return makeRngTrace(mbps, 0, alone_cfg); },
                        alone_cfg);
    });
}

const AloneResult &
Runner::alone(const std::string &app_name, SystemDesign design)
{
    return aloneApp(app_name, aloneConfig(baseCfg, design));
}

const AloneResult &
Runner::aloneRng(double mbps, SystemDesign design)
{
    return aloneRngImpl(mbps, aloneConfig(baseCfg, design));
}

Runner::WorkloadResult
Runner::run(SystemDesign design, const workloads::WorkloadSpec &spec)
{
    SimConfig cfg = baseCfg;
    applyDesign(cfg, design);
    return run(cfg, spec);
}

Runner::WorkloadResult
Runner::run(const std::string &design,
            const workloads::WorkloadSpec &spec)
{
    SimConfig cfg = baseCfg;
    DesignRegistry::instance().apply(design, cfg);
    return run(cfg, spec);
}

Runner::WorkloadResult
Runner::run(const SimConfig &cfg, const workloads::WorkloadSpec &spec)
{
    // Replay cells substitute the recorded tape for the traced cores
    // and the service driver: no core model executes and no alone
    // baselines exist, so only controller-side metrics are meaningful
    // (the per-core slowdown list stays empty).
    if (!cfg.traceReplay.empty()) {
        const auto sys_ptr = runSystem(cfg, [] {
            return std::vector<std::unique_ptr<cpu::TraceSource>>();
        });
        const System &sys = *sys_ptr;
        WorkloadResult result;
        result.name = spec.name;
        result.group = spec.group;
        result.busCycles = sys.busCycles();
        result.mcStats = sys.mc().stats();
        result.bufferServeRate = result.mcStats.bufferServeRate();
        if (auto ps = sys.mc().predictorStats())
            result.predictorAccuracy = ps->accuracy();
        if (collectIdlePeriods) {
            for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
                const auto &periods = sys.mc().idlePeriods(ch);
                result.idlePeriods.insert(result.idlePeriods.end(),
                                          periods.begin(),
                                          periods.end());
            }
        }
        for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
            result.energyNj += channelEnergy(
                                   cfg.timings,
                                   sys.mc().channel(ch).energyCounters())
                                   .total();
        }
        return result;
    }

    const bool has_rng = spec.rngThroughputMbps > 0.0;
    const unsigned n_cores =
        static_cast<unsigned>(spec.apps.size()) + (has_rng ? 1 : 0);
    // Pure service cells run without any traced core; everything else
    // needs at least one.
    assert(n_cores >= 1 || cfg.service.enabled);

    // The RNG benchmark occupies the last core. Traces derive from the
    // run's own configuration (seed/geometry), not from base().
    const auto sys_ptr = runSystem(cfg, [&] {
        std::vector<std::unique_ptr<cpu::TraceSource>> traces;
        for (unsigned i = 0; i < spec.apps.size(); ++i)
            traces.push_back(makeAppTrace(spec.apps[i], i, cfg));
        if (has_rng)
            traces.push_back(
                makeRngTrace(spec.rngThroughputMbps, n_cores - 1, cfg));
        return traces;
    });
    const System &sys = *sys_ptr;

    WorkloadResult result;
    result.name = spec.name;
    result.group = spec.group;
    result.busCycles = sys.busCycles();
    result.mcStats = sys.mc().stats();
    if (const service::OpenLoopService *svc = sys.service())
        result.service =
            service::SloReport::from(svc->config(), svc->stats());
    if (const fault::FaultPlane *fp = sys.mc().faultInjection())
        result.fault = fp->report();
    result.bufferServeRate = result.mcStats.bufferServeRate();
    if (auto ps = sys.mc().predictorStats())
        result.predictorAccuracy = ps->accuracy();
    if (collectIdlePeriods) {
        for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
            const auto &periods = sys.mc().idlePeriods(ch);
            result.idlePeriods.insert(result.idlePeriods.end(),
                                      periods.begin(), periods.end());
        }
    }

    for (unsigned ch = 0; ch < sys.mc().numChannels(); ++ch) {
        result.energyNj +=
            channelEnergy(cfg.timings, sys.mc().channel(ch).energyCounters())
                .total();
    }

    // Both execution-time slowdown and the MCPI-based memory slowdown
    // are normalized to the RNG-oblivious single-core baseline alone
    // run (Section 7), derived from this run's own configuration.
    const SimConfig alone_cfg =
        aloneConfig(cfg, SystemDesign::RngOblivious);

    std::vector<double> mem_slowdowns;
    std::vector<double> ipc_shared, ipc_alone;
    for (unsigned i = 0; i < n_cores; ++i) {
        const bool is_rng = has_rng && i == n_cores - 1;
        const cpu::CoreStats &s = sys.coreStats(i);
        const AloneResult &al =
            is_rng ? aloneRngImpl(spec.rngThroughputMbps, alone_cfg)
                   : aloneApp(spec.apps[i], alone_cfg);
        CoreResult cr;
        cr.app = sys.traceName(i);
        cr.isRng = is_rng;
        cr.slowdown = slowdown(s, al);
        cr.memSlowdown = memSlowdown(s, al);
        cr.ipcShared = s.ipc();
        cr.ipcAlone = al.ipc;
        cr.rngStallFraction =
            s.finishCycle == 0 ? 0.0
                               : static_cast<double>(s.rngStallCycles) /
                                     static_cast<double>(s.finishCycle);
        mem_slowdowns.push_back(cr.memSlowdown);
        if (!is_rng) {
            ipc_shared.push_back(cr.ipcShared);
            ipc_alone.push_back(cr.ipcAlone);
        }
        result.cores.push_back(std::move(cr));
    }

    if (!mem_slowdowns.empty())
        result.unfairnessIndex = unfairness(mem_slowdowns);
    result.weightedSpeedupNonRng = weightedSpeedup(ipc_shared, ipc_alone);
    return result;
}

} // namespace dstrange::sim
