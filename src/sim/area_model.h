/**
 * @file
 * CACTI-calibrated SRAM macro area estimator at 22 nm, used for the
 * Section 8.9 area numbers. The linear bit-area coefficient and the
 * fixed periphery term are fitted to the paper's CACTI 6.0 results
 * (0.0022 mm^2 for the base DR-STRaNGe storage, 0.012 mm^2 with the
 * 8 KB RL Q-table).
 */

#ifndef DSTRANGE_SIM_AREA_MODEL_H
#define DSTRANGE_SIM_AREA_MODEL_H

#include <cstdint>

#include "mem/memory_controller.h"

namespace dstrange::sim {

/** Area estimate for a set of SRAM structures. */
struct AreaEstimate
{
    double storageBits = 0.0;
    double mm2 = 0.0;

    /** Fraction of an Intel Cascade Lake CPU core (paper reference). */
    double
    fractionOfCascadeLakeCore() const
    {
        // Back-computed from the paper: 0.0022 mm^2 == 0.00048 %.
        constexpr double kCoreMm2 = 458.3;
        return mm2 / kCoreMm2;
    }
};

/** Area of a single SRAM macro holding @p bits at 22 nm. */
AreaEstimate sramMacroArea(double bits);

/**
 * Storage bits and area of the DR-STRaNGe controller additions for a
 * given configuration: random number buffer, RNG request queue, and the
 * per-channel idleness predictor (tables or Q-table).
 */
AreaEstimate drStrangeArea(const mem::McConfig &cfg, unsigned channels);

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_AREA_MODEL_H
