/**
 * @file
 * The paper's evaluation metrics (Section 7): per-application slowdown,
 * MCPI-based memory slowdown, the max/min unfairness index, and weighted
 * speedup for multi-core throughput.
 */

#ifndef DSTRANGE_SIM_METRICS_H
#define DSTRANGE_SIM_METRICS_H

#include <vector>

#include "cpu/core.h"

namespace dstrange::sim {

/** Cached result of an application running alone on the baseline. */
struct AloneResult
{
    double execCpuCycles = 0.0; ///< CPU cycles to retire the budget.
    double ipc = 0.0;
    double mcpi = 0.0; ///< Memory stall cycles per instruction.
};

/** Execution-time slowdown vs. the alone run. */
double slowdown(const cpu::CoreStats &shared, const AloneResult &alone);

/**
 * Memory-related slowdown: MCPI_shared / MCPI_alone. When the alone run
 * has (near-)zero memory stall, falls back to the execution-time
 * slowdown so compute-bound applications do not produce infinities.
 */
double memSlowdown(const cpu::CoreStats &shared, const AloneResult &alone);

/** Unfairness index: max memory slowdown / min memory slowdown. */
double unfairness(const std::vector<double> &mem_slowdowns);

/** Weighted speedup: sum of IPC_shared / IPC_alone. */
double weightedSpeedup(const std::vector<double> &ipc_shared,
                       const std::vector<double> &ipc_alone);

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_METRICS_H
