#include "sim/lockstep.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/env_util.h"
#include "fault/fault_plane.h"

namespace dstrange::sim {

bool
lockstepEnabled()
{
    return envFlag("DS_LOCKSTEP", false);
}

namespace {

void
putF(std::ostringstream &out, const char *key, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    out << key << '=' << buf << '\n';
}

} // namespace

std::string
systemFingerprint(const System &sys)
{
    std::ostringstream out;
    out << "bus_cycles=" << sys.busCycles() << '\n'
        << "backend=" << sys.config().backend << '\n';
    if (const trace::TraceReplaySource *rs = sys.replaySource())
        out << "replay.records=" << rs->replayedCount() << '\n'
            << "replay.finished=" << rs->finished() << '\n';

    for (unsigned i = 0; i < sys.numCores(); ++i) {
        const cpu::CoreStats &s = sys.coreStats(i);
        out << "core" << i << ".instr_retired=" << s.instrRetired << '\n'
            << "core" << i << ".finish_cycle=" << s.finishCycle << '\n'
            << "core" << i << ".mem_stall=" << s.memStallCycles << '\n'
            << "core" << i << ".rng_stall=" << s.rngStallCycles << '\n'
            << "core" << i << ".reads=" << s.reads << '\n'
            << "core" << i << ".writes=" << s.writes << '\n'
            << "core" << i << ".rng_requests=" << s.rngRequests << '\n'
            << "core" << i << ".finished=" << s.finished << '\n';
    }

    const mem::MemoryController &mc = sys.mc();
    const mem::McStats &m = mc.stats();
    out << "mc.read_requests=" << m.readRequests << '\n'
        << "mc.write_requests=" << m.writeRequests << '\n'
        << "mc.rng_requests=" << m.rngRequests << '\n'
        << "mc.rng_from_buffer=" << m.rngServedFromBuffer << '\n'
        << "mc.rng_from_staging=" << m.rngServedFromStaging << '\n'
        << "mc.rng_jobs_completed=" << m.rngJobsCompleted << '\n'
        << "mc.reads_completed=" << m.readsCompleted << '\n'
        << "mc.sum_read_latency=" << m.sumReadLatency << '\n'
        << "mc.sum_rng_latency=" << m.sumRngLatency << '\n'
        << "mc.pending_rng_jobs=" << mc.pendingRngJobs() << '\n'
        << "mc.rng_occupied=" << mc.rngOccupiedCycles() << '\n';
    putF(out, "mc.staging_bits", mc.stagingLevel());
    if (const strange::BufferSet *buf = mc.buffer()) {
        putF(out, "mc.buffer_level", buf->levelBits());
        out << "mc.buffer_served=" << buf->servedCount() << '\n';
    }
    if (const mem::RngAwarePolicy *pol = mc.policy())
        out << "mc.max_stall=" << pol->maxStallObserved() << '\n';
    if (auto ps = mc.predictorStats()) {
        out << "pred.predictions=" << ps->predictions << '\n'
            << "pred.correct=" << ps->correct << '\n'
            << "pred.false_pos=" << ps->falsePositives << '\n'
            << "pred.false_neg=" << ps->falseNegatives << '\n';
    }

    if (const fault::FaultPlane *fp = mc.faultInjection())
        out << fp->fingerprint();

    if (const service::OpenLoopService *svc = sys.service()) {
        const service::ServiceStats &ss = svc->stats();
        out << "svc.offered=" << ss.offered << '\n'
            << "svc.shed=" << ss.shed << '\n'
            << "svc.issued=" << ss.issued << '\n'
            << "svc.completed=" << ss.completed << '\n'
            << "svc.over_slo=" << ss.overSlo << '\n'
            << "svc.served_buffer=" << ss.servedBuffer << '\n'
            << "svc.served_staging=" << ss.servedStaging << '\n'
            << "svc.served_engine=" << ss.servedEngine << '\n'
            << "svc.max_backlog=" << ss.maxBacklog << '\n'
            << "svc.last_completion=" << ss.lastCompletion << '\n'
            << "svc.backlog=" << svc->backlogDepth() << '\n'
            << "svc.latency_fp=" << ss.latency.fingerprint() << '\n';
    }

    for (unsigned ch = 0; ch < mc.numChannels(); ++ch) {
        const dram::ChannelEnergyCounters &c =
            mc.channel(ch).energyCounters();
        out << "ch" << ch << ".act=" << c.nAct << '\n'
            << "ch" << ch << ".pre=" << c.nPre << '\n'
            << "ch" << ch << ".rd=" << c.nRd << '\n'
            << "ch" << ch << ".wr=" << c.nWr << '\n'
            << "ch" << ch << ".ref=" << c.nRef << '\n'
            << "ch" << ch << ".rng_rounds=" << c.rngRounds << '\n'
            << "ch" << ch << ".cyc_active=" << c.cyclesActive << '\n'
            << "ch" << ch << ".cyc_pre=" << c.cyclesPrecharged << '\n'
            << "ch" << ch << ".cyc_pd=" << c.cyclesPoweredDown << '\n'
            << "ch" << ch << ".read_q=" << mc.readQueueSize(ch) << '\n'
            << "ch" << ch << ".write_q=" << mc.writeQueueSize(ch) << '\n';
        const trng::RngEngine &eng = mc.engine(ch);
        putF(out, ("ch" + std::to_string(ch) + ".bits").c_str(),
             eng.totalBits());
        out << "ch" << ch << ".occupied=" << eng.totalOccupiedCycles()
            << '\n'
            << "ch" << ch << ".parked=" << eng.totalParkedCycles() << '\n'
            << "ch" << ch << ".aborts=" << eng.totalAborts() << '\n';
        // Idle-period distribution: count plus a positional hash, so a
        // shifted or altered period length cannot cancel out.
        const auto &periods = mc.idlePeriods(ch);
        std::uint64_t h = 1469598103934665603ull;
        for (std::uint32_t len : periods) {
            h ^= len;
            h *= 1099511628211ull;
        }
        out << "ch" << ch << ".idle_periods=" << periods.size() << '\n'
            << "ch" << ch << ".idle_hash=" << h << '\n';
    }
    return out.str();
}

void
verifyLockstep(const System &fast_forwarded, const System &stepped)
{
    const std::string a = systemFingerprint(fast_forwarded);
    const std::string b = systemFingerprint(stepped);
    if (a == b)
        return;

    // Name the first differing statistic for the failure message.
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    while (std::getline(sa, la) && std::getline(sb, lb)) {
        if (la != lb) {
            throw std::runtime_error(
                "DS_LOCKSTEP mismatch: fast-forward '" + la +
                "' vs step-1 '" + lb + "'");
        }
    }
    throw std::runtime_error(
        "DS_LOCKSTEP mismatch: fingerprints differ in length");
}

} // namespace dstrange::sim
