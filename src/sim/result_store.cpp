#include "sim/result_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "common/env_util.h"
#include "common/types.h"

#if __has_include("drstrange_source_fingerprint.h")
#include "drstrange_source_fingerprint.h"
#endif

namespace dstrange::sim {

namespace {

namespace fs = std::filesystem;

/** Bump on any change to the cache layout or to simulator numerics
 *  that existing cached baselines would misrepresent. */
constexpr const char *kSchemaVersion = "drstrange-alone-cache-v1";

/**
 * RAII advisory lock on `<dir>/.lock`. Shared for reads, exclusive for
 * writes. Advisory locking only coordinates cooperating ResultStore
 * processes — that is all the cache needs, since the files themselves
 * are only ever replaced atomically. A failure to acquire (exotic
 * filesystems without flock support) degrades to lock-free operation,
 * which is still crash-safe thanks to the rename protocol.
 */
class DirLock
{
  public:
    DirLock(const std::string &dir, bool exclusive)
    {
#ifndef _WIN32
        fd = ::open((dir + "/.lock").c_str(), O_CREAT | O_RDWR, 0666);
        if (fd >= 0 && ::flock(fd, exclusive ? LOCK_EX : LOCK_SH) != 0) {
            ::close(fd);
            fd = -1;
        }
#else
        (void)dir;
        (void)exclusive;
#endif
    }

    ~DirLock()
    {
#ifndef _WIN32
        if (fd >= 0) {
            ::flock(fd, LOCK_UN);
            ::close(fd);
        }
#endif
    }

    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;

  private:
#ifndef _WIN32
    int fd = -1;
#endif
};

std::string
hexHash(const std::string &key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return buf;
}

std::optional<std::string>
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return buf.str();
}

} // namespace

ResultStore::ResultStore(std::string dir, std::string fingerprint)
    : root(std::move(dir)),
      stamp(fingerprint.empty() ? buildFingerprint()
                                : std::move(fingerprint))
{
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec || !fs::is_directory(root))
        throw std::runtime_error("cannot create cache directory '" +
                                 root + "': " + ec.message());
    maxBytes = envU64("DS_CACHE_MAX_MB", 0) * 1024 * 1024;
}

std::shared_ptr<ResultStore>
ResultStore::openFromEnv()
{
    const char *dir = std::getenv("DS_CACHE_DIR");
    if (!dir || *dir == '\0')
        return nullptr;
    // An unusable directory degrades to no persistence (with a
    // warning) rather than aborting every binary that links the
    // library: the cache is an optimization, and this runs inside
    // Runner's constructor where callers cannot reasonably catch.
    // Explicit construction (SimulationBuilder::cacheDir) still
    // throws, so deliberate API use keeps the hard error.
    try {
        return std::make_shared<ResultStore>(dir);
    } catch (const std::exception &e) {
        std::cerr << "DS_CACHE_DIR: " << e.what()
                  << " — continuing without a persistent cache\n";
        return nullptr;
    }
}

std::string
ResultStore::buildFingerprint()
{
    std::string fp = kSchemaVersion;
    // Compiler identification: a different compiler (or major version)
    // may evaluate floating-point expressions differently, and cached
    // baselines must never cross that boundary.
#ifdef __VERSION__
    fp += "|cc:";
    fp += __VERSION__;
#endif
    // Source-tree hash, generated at build time (see
    // cmake/source_fingerprint.cmake): editing any simulator source
    // invalidates every cached baseline automatically, so stale
    // results cannot survive a behavioural change that a human forgot
    // to version-bump.
#ifdef DRSTRANGE_SOURCE_FINGERPRINT
    fp += "|src:";
    fp += DRSTRANGE_SOURCE_FINGERPRINT;
#endif
    // Engine mode: fast-forward results are lockstep-verified
    // bit-identical to step-1, but someone running DS_FAST_FORWARD=0
    // is usually *validating* that claim — serving them baselines
    // computed on the other path would defeat the exercise.
    fp += envFlag("DS_FAST_FORWARD", true) ? "|ff:1" : "|ff:0";
    return fp;
}

std::string
ResultStore::filePath(const std::string &key) const
{
    return root + "/alone-" + hexHash(key) + ".json";
}

std::optional<AloneResult>
ResultStore::loadAlone(const std::string &key) const
{
    const std::string path = filePath(key);
    std::optional<std::string> text;
    {
        DirLock lock(root, /*exclusive=*/false);
        text = readWholeFile(path);
    }
    if (text) {
        try {
            const JsonValue doc = JsonValue::parse(*text);
            if (doc.at("schema").asString() == kSchemaVersion &&
                doc.at("fingerprint").asString() == stamp &&
                doc.at("key").asString() == key) {
                AloneResult res = aloneResultFromJson(doc.at("result"));
                nHits.fetch_add(1);
                // Refresh recency so LRU eviction spares hot baselines.
                std::error_code ec;
                fs::last_write_time(
                    path, fs::file_time_type::clock::now(), ec);
                return res;
            }
        } catch (const std::exception &) {
            // Truncated, corrupt, or foreign file: fall through to a
            // miss and let the caller recompute (and overwrite it).
        }
    }
    nMisses.fetch_add(1);
    return std::nullopt;
}

bool
ResultStore::storeAlone(const std::string &key,
                        const AloneResult &result) const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value(kSchemaVersion);
    w.key("fingerprint").value(stamp);
    w.key("key").value(key);
    w.key("result");
    writeAloneResult(w, result);
    w.endObject();

    const std::string path = filePath(key);
    // Unique temp name per process so two concurrent writers never
    // interleave into one temp file; the rename publishes atomically.
    const std::string tmp =
        path + ".tmp." +
#ifndef _WIN32
        std::to_string(::getpid());
#else
        "w";
#endif

    DirLock lock(root, /*exclusive=*/true);
    sweepStaleTmp(); // First write only; under the exclusive lock.
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << w.str() << "\n";
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    nStores.fetch_add(1);
    if (maxBytes > 0)
        evictOverBudget(); // Still under the exclusive lock.
    return true;
}

void
ResultStore::sweepStaleTmp() const
{
    if (tmpSwept.exchange(true))
        return;
    // A crashed writer leaves `<name>.json.tmp.<pid>` behind — rename
    // never ran, so nothing references the file. Ten minutes is orders
    // of magnitude beyond any single write, which keeps live writers
    // from other processes safe even without examining their pids.
    constexpr auto kMinAge = std::chrono::minutes(10);
    const auto now = fs::file_time_type::clock::now();
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(root, ec)) {
        const std::string name = de.path().filename().string();
        if (name.find(".tmp.") == std::string::npos)
            continue;
        std::error_code fec;
        const fs::file_time_type mtime = de.last_write_time(fec);
        if (fec || now - mtime < kMinAge)
            continue;
        fs::remove(de.path(), fec);
    }
}

std::string
ResultStore::costPath(const std::string &cell_key) const
{
    return root + "/cost-" + hexHash(cell_key) + ".json";
}

bool
ResultStore::storeCellCost(const std::string &cell_key,
                           double wall_ms) const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value(kSchemaVersion);
    w.key("key").value(cell_key);
    w.key("wall_ms").valueExact(wall_ms);
    w.endObject();

    const std::string path = costPath(cell_key);
    const std::string tmp =
        path + ".tmp." +
#ifndef _WIN32
        std::to_string(::getpid());
#else
        "w";
#endif

    DirLock lock(root, /*exclusive=*/true);
    sweepStaleTmp(); // First write only; under the exclusive lock.
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << w.str() << "\n";
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<double>
ResultStore::loadCellCost(const std::string &cell_key) const
{
    std::optional<std::string> text;
    {
        DirLock lock(root, /*exclusive=*/false);
        text = readWholeFile(costPath(cell_key));
    }
    if (!text)
        return std::nullopt;
    try {
        const JsonValue doc = JsonValue::parse(*text);
        if (doc.at("schema").asString() == kSchemaVersion &&
            doc.at("key").asString() == cell_key)
            return doc.at("wall_ms").asDouble();
    } catch (const std::exception &) {
        // Corrupt or foreign file: treat as no record.
    }
    return std::nullopt;
}

void
ResultStore::evictOverBudget() const
{
    // Collect every cache file with its size and mtime; anything the
    // filesystem refuses to describe is simply skipped (the budget is
    // best-effort, never a correctness property).
    struct Entry
    {
        fs::path path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(root, ec)) {
        const std::string name = de.path().filename().string();
        if (name.rfind("alone-", 0) != 0 ||
            name.find(".json") == std::string::npos)
            continue;
        std::error_code fec;
        const std::uint64_t size = de.file_size(fec);
        if (fec)
            continue;
        const fs::file_time_type mtime = de.last_write_time(fec);
        if (fec)
            continue;
        entries.push_back({de.path(), size, mtime});
        total += size;
    }
    if (total <= maxBytes)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    // Oldest first; removal is an atomic unlink, so a reader either
    // still sees the whole file or a clean miss — never a torn read.
    for (const Entry &e : entries) {
        if (total <= maxBytes)
            break;
        std::error_code rec;
        if (fs::remove(e.path, rec) && !rec)
            total -= e.size;
    }
}

void
writeAloneResult(JsonWriter &w, const AloneResult &result)
{
    w.beginObject();
    w.key("exec_cpu_cycles").valueExact(result.execCpuCycles);
    w.key("ipc").valueExact(result.ipc);
    w.key("mcpi").valueExact(result.mcpi);
    w.endObject();
}

AloneResult
aloneResultFromJson(const JsonValue &v)
{
    AloneResult res;
    res.execCpuCycles = v.at("exec_cpu_cycles").asDouble();
    res.ipc = v.at("ipc").asDouble();
    res.mcpi = v.at("mcpi").asDouble();
    return res;
}

void
writeWorkloadResult(JsonWriter &w, const Runner::WorkloadResult &result)
{
    w.beginObject();
    w.key("name").value(result.name);
    w.key("group").value(result.group);
    w.key("unfairness_index").valueExact(result.unfairnessIndex);
    w.key("weighted_speedup_non_rng")
        .valueExact(result.weightedSpeedupNonRng);
    w.key("buffer_serve_rate").valueExact(result.bufferServeRate);
    w.key("predictor_accuracy").valueExact(result.predictorAccuracy);
    w.key("bus_cycles").value(static_cast<std::uint64_t>(result.busCycles));
    w.key("energy_nj").valueExact(result.energyNj);
    w.key("cores").beginArray();
    for (const Runner::CoreResult &c : result.cores) {
        w.beginObject();
        w.key("app").value(c.app);
        w.key("is_rng").value(c.isRng);
        w.key("slowdown").valueExact(c.slowdown);
        w.key("mem_slowdown").valueExact(c.memSlowdown);
        w.key("ipc_shared").valueExact(c.ipcShared);
        w.key("ipc_alone").valueExact(c.ipcAlone);
        w.key("rng_stall_fraction").valueExact(c.rngStallFraction);
        w.endObject();
    }
    w.endArray();
    const mem::McStats &mc = result.mcStats;
    w.key("mc_stats").beginObject();
    w.key("read_requests").value(mc.readRequests);
    w.key("write_requests").value(mc.writeRequests);
    w.key("rng_requests").value(mc.rngRequests);
    w.key("rng_served_from_buffer").value(mc.rngServedFromBuffer);
    w.key("rng_served_from_staging").value(mc.rngServedFromStaging);
    w.key("rng_jobs_completed").value(mc.rngJobsCompleted);
    w.key("reads_completed").value(mc.readsCompleted);
    w.key("sum_read_latency").value(mc.sumReadLatency);
    w.key("sum_rng_latency").value(mc.sumRngLatency);
    w.endObject();
    w.key("idle_periods").beginArray();
    for (const std::uint32_t p : result.idlePeriods)
        w.value(static_cast<std::uint64_t>(p));
    w.endArray();
    if (result.service) {
        w.key("service");
        result.service->writeJson(w);
    }
    if (result.fault) {
        w.key("fault");
        result.fault->writeJson(w);
    }
    w.endObject();
}

Runner::WorkloadResult
workloadResultFromJson(const JsonValue &v)
{
    Runner::WorkloadResult res;
    res.name = v.at("name").asString();
    res.group = v.at("group").asString();
    res.unfairnessIndex = v.at("unfairness_index").asDouble();
    res.weightedSpeedupNonRng =
        v.at("weighted_speedup_non_rng").asDouble();
    res.bufferServeRate = v.at("buffer_serve_rate").asDouble();
    res.predictorAccuracy = v.at("predictor_accuracy").asDouble();
    res.busCycles = v.at("bus_cycles").asU64();
    res.energyNj = v.at("energy_nj").asDouble();
    for (const JsonValue &cv : v.at("cores").array()) {
        Runner::CoreResult c;
        c.app = cv.at("app").asString();
        c.isRng = cv.at("is_rng").asBool();
        c.slowdown = cv.at("slowdown").asDouble();
        c.memSlowdown = cv.at("mem_slowdown").asDouble();
        c.ipcShared = cv.at("ipc_shared").asDouble();
        c.ipcAlone = cv.at("ipc_alone").asDouble();
        c.rngStallFraction = cv.at("rng_stall_fraction").asDouble();
        res.cores.push_back(std::move(c));
    }
    const JsonValue &mc = v.at("mc_stats");
    res.mcStats.readRequests = mc.at("read_requests").asU64();
    res.mcStats.writeRequests = mc.at("write_requests").asU64();
    res.mcStats.rngRequests = mc.at("rng_requests").asU64();
    res.mcStats.rngServedFromBuffer =
        mc.at("rng_served_from_buffer").asU64();
    res.mcStats.rngServedFromStaging =
        mc.at("rng_served_from_staging").asU64();
    res.mcStats.rngJobsCompleted = mc.at("rng_jobs_completed").asU64();
    res.mcStats.readsCompleted = mc.at("reads_completed").asU64();
    res.mcStats.sumReadLatency = mc.at("sum_read_latency").asU64();
    res.mcStats.sumRngLatency = mc.at("sum_rng_latency").asU64();
    for (const JsonValue &p : v.at("idle_periods").array())
        res.idlePeriods.push_back(static_cast<std::uint32_t>(p.asU64()));
    if (const JsonValue *svc = v.find("service"))
        res.service = service::SloReport::fromJson(*svc);
    if (const JsonValue *flt = v.find("fault"))
        res.fault = fault::FaultReport::fromJson(*flt);
    return res;
}

std::string
serializeWorkloadResult(const Runner::WorkloadResult &result)
{
    JsonWriter w;
    writeWorkloadResult(w, result);
    return w.str();
}

Runner::WorkloadResult
parseWorkloadResult(const std::string &text)
{
    return workloadResultFromJson(JsonValue::parse(text));
}

} // namespace dstrange::sim
