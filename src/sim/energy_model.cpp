#include "sim/energy_model.h"

namespace dstrange::sim {

EnergyBreakdown
channelEnergy(const dram::DramTimings &t,
              const dram::ChannelEnergyCounters &c,
              const EnergyModelConfig &cfg)
{
    EnergyBreakdown e;
    const double devs = cfg.devicesPerRank;
    const double tck = t.tCKns;
    // mA * V * ns = pJ; convert to nJ with 1e-3.
    constexpr double kPjToNj = 1e-3;

    // One ACT..PRE row cycle: IDD0 over tRC minus the standby current
    // that the background term already accounts for.
    const double act_pre_pj =
        t.vdd *
        (t.idd0 * static_cast<double>(t.tRC) -
         (t.idd3n * static_cast<double>(t.tRAS) +
          t.idd2n * static_cast<double>(t.tRC - t.tRAS))) *
        tck * devs;
    e.actPre = static_cast<double>(c.nAct) * act_pre_pj * kPjToNj;

    const double rd_pj = t.vdd * (t.idd4r - t.idd3n) *
                         static_cast<double>(t.tBL) * tck * devs;
    const double wr_pj = t.vdd * (t.idd4w - t.idd3n) *
                         static_cast<double>(t.tBL) * tck * devs;
    e.read = static_cast<double>(c.nRd) * rd_pj * kPjToNj;
    e.write = static_cast<double>(c.nWr) * wr_pj * kPjToNj;

    const double ref_pj = t.vdd * (t.idd5 - t.idd2n) *
                          static_cast<double>(t.tRFC) * tck * devs;
    e.refresh = static_cast<double>(c.nRef) * ref_pj * kPjToNj;

    const double bg_active_pj = t.vdd * t.idd3n * tck * devs;
    const double bg_pre_pj = t.vdd * t.idd2n * tck * devs;
    const double bg_pd_pj = t.vdd * t.idd2p * tck * devs;
    e.background =
        (static_cast<double>(c.cyclesActive) * bg_active_pj +
         static_cast<double>(c.cyclesPrecharged) * bg_pre_pj +
         static_cast<double>(c.cyclesPoweredDown) * bg_pd_pj) *
        kPjToNj;

    // RNG rounds: banksPerRound reduced row cycles + one burst per bank.
    const double rng_round_pj =
        cfg.banksPerRound * (act_pre_pj * cfg.rngActScale + rd_pj);
    e.rng = static_cast<double>(c.rngRounds) * rng_round_pj * kPjToNj;

    return e;
}

} // namespace dstrange::sim
