#include "sim/system.h"

#include <cassert>

namespace dstrange::sim {

System::System(const SimConfig &config,
               std::vector<std::unique_ptr<cpu::TraceSource>> traces)
    : cfg(config), traceOwners(std::move(traces)),
      entropySource(mix64(config.seed) ^ 0xdead)
{
    assert(!traceOwners.empty());

    controller = std::make_unique<mem::MemoryController>(
        mcConfigFor(cfg), cfg.timings, cfg.geometry, cfg.mechanism,
        static_cast<unsigned>(traceOwners.size()));

    cpu::Core::Config core_cfg;
    core_cfg.instrBudget = cfg.instrBudget;
    for (unsigned i = 0; i < traceOwners.size(); ++i) {
        cores.push_back(std::make_unique<cpu::Core>(
            static_cast<CoreId>(i), core_cfg, *traceOwners[i],
            *controller));
    }

    controller->setCompletionCallback(
        [this](CoreId core, std::uint64_t token, mem::ReqType) {
            cores[core]->onCompletion(token);
        });

    for (unsigned i = 0; i < cfg.priorities.size() && i < cores.size(); ++i)
        controller->setPriority(static_cast<CoreId>(i), cfg.priorities[i]);
}

bool
System::allFinished() const
{
    for (const auto &core : cores)
        if (!core->finished())
            return false;
    return true;
}

void
System::step(Cycle cycles)
{
    const Cycle end = now + cycles;
    for (; now < end; ++now) {
        controller->tick(now);
        for (auto &core : cores)
            core->tickBusCycle(now);
    }
}

void
System::run()
{
    while (!allFinished() && now < cfg.maxBusCycles)
        step(1);
}

} // namespace dstrange::sim
