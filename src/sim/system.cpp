#include "sim/system.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/env_util.h"
#include "trace/trace_reader.h"

namespace dstrange::sim {

System::System(const SimConfig &config,
               std::vector<std::unique_ptr<cpu::TraceSource>> traces)
    : cfg(config), traceOwners(std::move(traces)),
      entropySource(mix64(config.seed) ^ 0xdead),
      ffEnabled(envFlag("DS_FAST_FORWARD", true))
{
    // A system needs at least one request source: a traced core, the
    // open-loop service port, or a replay tape standing in for both.
    assert(!traceOwners.empty() || cfg.service.enabled ||
           !cfg.traceReplay.empty());

    // In replay mode the tape dictates the port topology; the cores and
    // the service driver of the recorded run are not instantiated — the
    // tape re-issues their accepted requests at the recorded cycles.
    unsigned n_ports = static_cast<unsigned>(traceOwners.size()) +
                       (cfg.service.enabled ? 1u : 0u);
    if (!cfg.traceReplay.empty()) {
        replay = std::make_unique<trace::TraceReplaySource>(
            trace::loadTrace(cfg.traceReplay));
        n_ports = replay->tape().numPorts();
    }

    // The service layer issues on one extra controller port past the
    // last core, so its requests arbitrate like any application's.
    controller = std::make_unique<mem::MemoryController>(
        mcConfigFor(cfg), cfg.timings, cfg.geometry, cfg.mechanism,
        n_ports);

    if (!replay) {
        cpu::Core::Config core_cfg;
        core_cfg.instrBudget = cfg.instrBudget;
        for (unsigned i = 0; i < traceOwners.size(); ++i) {
            cores.push_back(std::make_unique<cpu::Core>(
                static_cast<CoreId>(i), core_cfg, *traceOwners[i],
                *controller));
        }

        if (cfg.service.enabled) {
            svc = std::make_unique<service::OpenLoopService>(
                cfg.service, static_cast<CoreId>(cores.size()),
                *controller, cfg.seed);
        }
    }

    // In replay mode no issuer waits on completions, so the callback
    // finds neither a core nor the service driver and does nothing.
    controller->setCompletionCallback(
        [this](CoreId core, std::uint64_t token, mem::ReqType,
               mem::ServePath path) {
            if (core < cores.size())
                cores[core]->onCompletion(token);
            else if (svc)
                svc->onCompletion(token, now, path);
        });

    if (replay) {
        const auto &ports = replay->tape().header.ports;
        for (unsigned i = 0; i < ports.size(); ++i)
            if (ports[i].hasPriority)
                controller->setPriority(static_cast<CoreId>(i),
                                        ports[i].priority);
    } else {
        for (unsigned i = 0; i < cfg.priorities.size() && i < cores.size();
             ++i)
            controller->setPriority(static_cast<CoreId>(i),
                                    cfg.priorities[i]);
    }

    if (!cfg.traceRecord.empty()) {
        // The record port field is one byte; no simulated topology comes
        // close, but fail loudly rather than wrap silently.
        if (n_ports > 255)
            throw std::runtime_error(
                "trace recording supports at most 255 ports");
        trace::TraceHeader header;
        if (replay) {
            // Re-recording a replay reproduces the original header (and
            // with matching bounds, a byte-identical tape).
            header = replay->tape().header;
        } else {
            for (unsigned i = 0; i < n_ports; ++i) {
                trace::TracePortInfo p;
                p.hasPriority =
                    i < cfg.priorities.size() && i < cores.size();
                p.priority = p.hasPriority ? cfg.priorities[i] : 0;
                header.ports.push_back(p);
            }
            header.servicePort =
                svc ? static_cast<std::int32_t>(n_ports) - 1 : -1;
        }
        recorder =
            std::make_unique<trace::TraceWriter>(cfg.traceRecord, header);
        std::vector<std::int32_t> port_priority;
        for (const trace::TracePortInfo &p : header.ports)
            port_priority.push_back(p.priority);
        controller->setTraceSink(
            [this, port_priority](const mem::Request &req, Cycle at) {
                trace::TraceRecord rec;
                rec.cycle = at;
                rec.addr = req.addr;
                rec.type = trace::reqTypeToByte(req.type);
                rec.port = static_cast<std::uint8_t>(req.core);
                rec.priority = port_priority[req.core];
                recorder->append(rec);
            });
    }
}

bool
System::allFinished() const
{
    for (const auto &core : cores)
        if (!core->finished())
            return false;
    return true;
}

Cycle
System::nextEventCycle() const
{
    // Core horizons are cheap; check them before the controller's
    // deeper analysis so busy-core cycles bail out early.
    Cycle horizon = kNoEvent;
    for (const auto &core : cores) {
        horizon = std::min(horizon, core->nextEventCycle(now));
        if (horizon <= now)
            return now;
    }
    if (svc) {
        horizon = std::min(horizon, svc->nextEventCycle(now));
        if (horizon <= now)
            return now;
    }
    if (replay) {
        // The head record's arrival cycle is the tape's only event; a
        // skip must never jump past a pending enqueue.
        horizon = std::min(horizon, replay->nextEventCycle());
        if (horizon <= now)
            return now;
    }
    horizon = std::min(horizon, controller->nextEventCycle(now));
    return horizon <= now ? now : horizon;
}

void
System::advanceUntil(Cycle end, bool stop_when_finished)
{
    // Adaptive horizon backoff: during dense event phases the horizon
    // computation itself is the overhead, so after consecutive blocked
    // probes the loop ticks a few cycles without probing. This only
    // delays the start of the next skip by at most the backoff (the
    // step path is always correct) and keeps event-dense workloads
    // from paying the probe on every cycle.
    Cycle probe_at = 0;
    unsigned backoff = 0;
    while (now < end) {
        if (stop_when_finished && allFinished() &&
            (!svc || svc->drained()))
            return;
        if (ffEnabled && now >= probe_at) {
            const Cycle horizon = nextEventCycle();
            const Cycle to = std::min(horizon, end);
            if (to <= now + 1) {
                // Only back off inside genuinely dense phases: isolated
                // event ticks between skips keep probing every cycle.
                ++backoff;
                if (backoff > 4)
                    probe_at = now + 1 + std::min(backoff - 4, 8u);
            } else {
                backoff = 0;
            }
            if (to > now + 1) {
                // Every component is quiescent through [now, to):
                // batch-apply the span's bookkeeping and jump.
                controller->fastForward(now, to);
                for (auto &core : cores)
                    core->fastForward(now, to);
                if (svc)
                    svc->fastForward(now, to);
                ffCounters.skips++;
                ffCounters.skippedCycles += to - now;
                now = to;
                continue;
            }
        }
        // The service port issues before the controller tick, so an
        // arrival at cycle t can be buffer-served with its completion
        // scheduled from t — one fixed order keeps runs bit-identical.
        // Replay preserves both enqueue phases: recorded service-port
        // requests land pre-tick, recorded core requests post-tick.
        if (svc)
            svc->tick(now);
        if (replay)
            replay->tickService(now, *controller);
        controller->tick(now);
        for (auto &core : cores)
            core->tickBusCycle(now);
        if (replay)
            replay->tickCores(now, *controller);
        ffCounters.steppedCycles++;
        ++now;
    }
}

void
System::step(Cycle cycles)
{
    advanceUntil(now + cycles, /*stop_when_finished=*/false);
}

void
System::run()
{
    if (replay) {
        // The recorded run stopped at endCycle; advancing to exactly
        // that cycle reproduces every controller-side metric. The
        // all-finished early exit must stay off: with no cores, every
        // budget is vacuously retired at cycle 0.
        advanceUntil(std::min(cfg.maxBusCycles, replay->endCycle()),
                     /*stop_when_finished=*/false);
    } else {
        advanceUntil(cfg.maxBusCycles, /*stop_when_finished=*/true);
    }
    if (recorder)
        recorder->finalize(now);
}

} // namespace dstrange::sim
