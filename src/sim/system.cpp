#include "sim/system.h"

#include <algorithm>
#include <cassert>

#include "common/env_util.h"

namespace dstrange::sim {

System::System(const SimConfig &config,
               std::vector<std::unique_ptr<cpu::TraceSource>> traces)
    : cfg(config), traceOwners(std::move(traces)),
      entropySource(mix64(config.seed) ^ 0xdead),
      ffEnabled(envFlag("DS_FAST_FORWARD", true))
{
    // A system needs at least one request source: a traced core or the
    // open-loop service port.
    assert(!traceOwners.empty() || cfg.service.enabled);

    // The service layer issues on one extra controller port past the
    // last core, so its requests arbitrate like any application's.
    const unsigned n_ports = static_cast<unsigned>(traceOwners.size()) +
                             (cfg.service.enabled ? 1u : 0u);
    controller = std::make_unique<mem::MemoryController>(
        mcConfigFor(cfg), cfg.timings, cfg.geometry, cfg.mechanism,
        n_ports);

    cpu::Core::Config core_cfg;
    core_cfg.instrBudget = cfg.instrBudget;
    for (unsigned i = 0; i < traceOwners.size(); ++i) {
        cores.push_back(std::make_unique<cpu::Core>(
            static_cast<CoreId>(i), core_cfg, *traceOwners[i],
            *controller));
    }

    if (cfg.service.enabled) {
        svc = std::make_unique<service::OpenLoopService>(
            cfg.service, static_cast<CoreId>(cores.size()), *controller,
            cfg.seed);
    }

    controller->setCompletionCallback(
        [this](CoreId core, std::uint64_t token, mem::ReqType,
               mem::ServePath path) {
            if (core < cores.size())
                cores[core]->onCompletion(token);
            else if (svc)
                svc->onCompletion(token, now, path);
        });

    for (unsigned i = 0; i < cfg.priorities.size() && i < cores.size(); ++i)
        controller->setPriority(static_cast<CoreId>(i), cfg.priorities[i]);
}

bool
System::allFinished() const
{
    for (const auto &core : cores)
        if (!core->finished())
            return false;
    return true;
}

Cycle
System::nextEventCycle() const
{
    // Core horizons are cheap; check them before the controller's
    // deeper analysis so busy-core cycles bail out early.
    Cycle horizon = kNoEvent;
    for (const auto &core : cores) {
        horizon = std::min(horizon, core->nextEventCycle(now));
        if (horizon <= now)
            return now;
    }
    if (svc) {
        horizon = std::min(horizon, svc->nextEventCycle(now));
        if (horizon <= now)
            return now;
    }
    horizon = std::min(horizon, controller->nextEventCycle(now));
    return horizon <= now ? now : horizon;
}

void
System::advanceUntil(Cycle end, bool stop_when_finished)
{
    // Adaptive horizon backoff: during dense event phases the horizon
    // computation itself is the overhead, so after consecutive blocked
    // probes the loop ticks a few cycles without probing. This only
    // delays the start of the next skip by at most the backoff (the
    // step path is always correct) and keeps event-dense workloads
    // from paying the probe on every cycle.
    Cycle probe_at = 0;
    unsigned backoff = 0;
    while (now < end) {
        if (stop_when_finished && allFinished() &&
            (!svc || svc->drained()))
            return;
        if (ffEnabled && now >= probe_at) {
            const Cycle horizon = nextEventCycle();
            const Cycle to = std::min(horizon, end);
            if (to <= now + 1) {
                // Only back off inside genuinely dense phases: isolated
                // event ticks between skips keep probing every cycle.
                ++backoff;
                if (backoff > 4)
                    probe_at = now + 1 + std::min(backoff - 4, 8u);
            } else {
                backoff = 0;
            }
            if (to > now + 1) {
                // Every component is quiescent through [now, to):
                // batch-apply the span's bookkeeping and jump.
                controller->fastForward(now, to);
                for (auto &core : cores)
                    core->fastForward(now, to);
                if (svc)
                    svc->fastForward(now, to);
                ffCounters.skips++;
                ffCounters.skippedCycles += to - now;
                now = to;
                continue;
            }
        }
        // The service port issues before the controller tick, so an
        // arrival at cycle t can be buffer-served with its completion
        // scheduled from t — one fixed order keeps runs bit-identical.
        if (svc)
            svc->tick(now);
        controller->tick(now);
        for (auto &core : cores)
            core->tickBusCycle(now);
        ffCounters.steppedCycles++;
        ++now;
    }
}

void
System::step(Cycle cycles)
{
    advanceUntil(now + cycles, /*stop_when_finished=*/false);
}

void
System::run()
{
    advanceUntil(cfg.maxBusCycles, /*stop_when_finished=*/true);
}

} // namespace dstrange::sim
