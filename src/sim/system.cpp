#include "sim/system.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/env_util.h"
#include "trace/trace_reader.h"

namespace dstrange::sim {

System::System(const SimConfig &config,
               std::vector<std::unique_ptr<cpu::TraceSource>> traces)
    : cfg(config), traceOwners(std::move(traces)),
      entropySource(mix64(config.seed) ^ 0xdead),
      ffEnabled(envFlag("DS_FAST_FORWARD", true)),
      batchEnabled(envFlag("DS_BATCH", true))
{
    // A system needs at least one request source: a traced core, the
    // open-loop service port, or a replay tape standing in for both.
    assert(!traceOwners.empty() || cfg.service.enabled ||
           !cfg.traceReplay.empty());

    // In replay mode the tape dictates the port topology; the cores and
    // the service driver of the recorded run are not instantiated — the
    // tape re-issues their accepted requests at the recorded cycles.
    unsigned n_ports = static_cast<unsigned>(traceOwners.size()) +
                       (cfg.service.enabled ? 1u : 0u);
    if (!cfg.traceReplay.empty()) {
        replay = std::make_unique<trace::TraceReplaySource>(
            trace::loadTrace(cfg.traceReplay));
        n_ports = replay->tape().numPorts();
    }

    // The service layer issues on one extra controller port past the
    // last core, so its requests arbitrate like any application's.
    controller = std::make_unique<mem::MemoryController>(
        mcConfigFor(cfg), cfg.timings, cfg.geometry, cfg.mechanism,
        n_ports);
    applyBatchMode();

    if (!replay) {
        cpu::Core::Config core_cfg;
        core_cfg.instrBudget = cfg.instrBudget;
        for (unsigned i = 0; i < traceOwners.size(); ++i) {
            cores.push_back(std::make_unique<cpu::Core>(
                static_cast<CoreId>(i), core_cfg, *traceOwners[i],
                *controller));
        }

        if (cfg.service.enabled) {
            svc = std::make_unique<service::OpenLoopService>(
                cfg.service, static_cast<CoreId>(cores.size()),
                *controller, cfg.seed);
        }
    }

    // In replay mode no issuer waits on completions, so the callback
    // finds neither a core nor the service driver and does nothing.
    controller->setCompletionCallback(
        [this](CoreId core, std::uint64_t token, mem::ReqType,
               mem::ServePath path) {
            if (core < cores.size()) {
                cores[core]->onCompletion(token);
                coreCompletionPending = true;
            } else if (svc) {
                svc->onCompletion(token, now, path);
            }
        });

    if (replay) {
        const auto &ports = replay->tape().header.ports;
        for (unsigned i = 0; i < ports.size(); ++i)
            if (ports[i].hasPriority)
                controller->setPriority(static_cast<CoreId>(i),
                                        ports[i].priority);
    } else {
        for (unsigned i = 0; i < cfg.priorities.size() && i < cores.size();
             ++i)
            controller->setPriority(static_cast<CoreId>(i),
                                    cfg.priorities[i]);
    }

    if (!cfg.traceRecord.empty()) {
        // The record port field is one byte; no simulated topology comes
        // close, but fail loudly rather than wrap silently.
        if (n_ports > 255)
            throw std::runtime_error(
                "trace recording supports at most 255 ports");
        trace::TraceHeader header;
        if (replay) {
            // Re-recording a replay reproduces the original header (and
            // with matching bounds, a byte-identical tape).
            header = replay->tape().header;
        } else {
            for (unsigned i = 0; i < n_ports; ++i) {
                trace::TracePortInfo p;
                p.hasPriority =
                    i < cfg.priorities.size() && i < cores.size();
                p.priority = p.hasPriority ? cfg.priorities[i] : 0;
                header.ports.push_back(p);
            }
            header.servicePort =
                svc ? static_cast<std::int32_t>(n_ports) - 1 : -1;
        }
        recorder =
            std::make_unique<trace::TraceWriter>(cfg.traceRecord, header);
        std::vector<std::int32_t> port_priority;
        for (const trace::TracePortInfo &p : header.ports)
            port_priority.push_back(p.priority);
        controller->setTraceSink(
            [this, port_priority](const mem::Request &req, Cycle at) {
                trace::TraceRecord rec;
                rec.cycle = at;
                rec.addr = req.addr;
                rec.type = trace::reqTypeToByte(req.type);
                rec.port = static_cast<std::uint8_t>(req.core);
                rec.priority = port_priority[req.core];
                recorder->append(rec);
            });
    }
}

void
System::applyBatchMode()
{
    // Batch mode is an acceleration of the fast-forward path; the
    // step-1 lockstep reference must run the historical code exactly.
    controller->setBatchMode(ffEnabled && batchEnabled);
}

bool
System::allFinished() const
{
    for (const auto &core : cores)
        if (!core->finished())
            return false;
    return true;
}

Cycle
System::nextEventCycle() const
{
    // Core horizons are cheap; check them before the controller's
    // deeper analysis so busy-core cycles bail out early.
    Cycle horizon = kNoEvent;
    for (const auto &core : cores) {
        horizon = std::min(horizon, core->nextEventCycle(now));
        if (horizon <= now)
            return now;
    }
    if (svc) {
        horizon = std::min(horizon, svc->nextEventCycle(now));
        if (horizon <= now)
            return now;
    }
    if (replay) {
        // The head record's arrival cycle is the tape's only event; a
        // skip must never jump past a pending enqueue.
        horizon = std::min(horizon, replay->nextEventCycle());
        if (horizon <= now)
            return now;
    }
    horizon = std::min(horizon, controller->nextEventCycle(now));
    return horizon <= now ? now : horizon;
}

void
System::advanceUntil(Cycle end, bool stop_when_finished)
{
    // Adaptive horizon backoff: during dense event phases the horizon
    // computation itself is the overhead, so after consecutive blocked
    // probes the loop ticks a few cycles without probing. This only
    // delays the start of the next skip by at most the backoff (the
    // step path is always correct) and keeps event-dense workloads
    // from paying the probe on every cycle.
    Cycle probe_at = 0;
    unsigned backoff = 0;
    while (now < end) {
        if (stop_when_finished && allFinished() &&
            (!svc || svc->drained()))
            return;
        if (ffEnabled && now >= probe_at) {
            const Cycle horizon = nextEventCycle();
            const Cycle to = std::min(horizon, end);
            if (to <= now + 1) {
                // Only back off inside genuinely dense phases: isolated
                // event ticks between skips keep probing every cycle.
                ++backoff;
                if (backoff > 4)
                    probe_at = now + 1 + std::min(backoff - 4, 8u);
            } else {
                backoff = 0;
            }
            if (to > now + 1) {
                // Every component is quiescent through [now, to):
                // batch-apply the span's bookkeeping and jump.
                controller->fastForward(now, to);
                for (auto &core : cores)
                    core->fastForward(now, to);
                if (svc)
                    svc->fastForward(now, to);
                ffCounters.skips++;
                ffCounters.skippedCycles += to - now;
                now = to;
                continue;
            }
            // No system-wide span to skip: the controller is dense. If
            // it is the *only* dense component, drain it alone — the
            // command-bound phases of heavy workloads spend most of
            // their cycles here.
            if (batchEnabled && tryDrainController(end)) {
                backoff = 0;
                probe_at = now;
                continue;
            }
        }
        // The service port issues before the controller tick, so an
        // arrival at cycle t can be buffer-served with its completion
        // scheduled from t — one fixed order keeps runs bit-identical.
        // Replay preserves both enqueue phases: recorded service-port
        // requests land pre-tick, recorded core requests post-tick.
        if (svc)
            svc->tick(now);
        if (replay)
            replay->tickService(now, *controller);
        controller->tick(now);
        if (ffEnabled && batchEnabled) {
            // A core reporting kNoEvent *after* the controller tick (so
            // same-cycle completions are visible) only does stall
            // bookkeeping this cycle; the one-cycle fastForward applies
            // it bit-identically without the five per-CPU-cycle ticks.
            for (auto &core : cores) {
                if (core->nextEventCycle(now) == kNoEvent)
                    core->fastForward(now, now + 1);
                else
                    core->tickBusCycle(now);
            }
        } else {
            for (auto &core : cores)
                core->tickBusCycle(now);
        }
        if (replay)
            replay->tickCores(now, *controller);
        ffCounters.steppedCycles++;
        ++now;
    }
}

bool
System::tryDrainController(Cycle end)
{
    // Entry: every core must be quiescent past the current cycle. A
    // core's horizon is the first cycle its tick does anything beyond
    // the bookkeeping fastForward() batches — in particular it cannot
    // issue a request before then — so until the earliest core horizon
    // the controller is the only component doing per-cycle work.
    // kNoEvent cores wake only through a completion (watched via the
    // completion flag below); future-event cores bound the drain.
    Cycle core_ev = kNoEvent;
    for (const auto &core : cores) {
        core_ev = std::min(core_ev, core->nextEventCycle(now));
        if (core_ev <= now)
            return false;
    }

    // The service and replay layers do not tick inside the drain; bound
    // the drain by their next event so skipping their no-op ticks is
    // exact. Neither can have an event appear earlier mid-drain: their
    // state only changes through their own ticks and (for the service)
    // completions, which the in-flight check below excludes.
    Cycle bound = std::min(end, core_ev);
    if (svc)
        bound = std::min(bound, svc->nextEventCycle(now));
    if (replay)
        bound = std::min(bound, replay->nextEventCycle());
    if (bound <= now)
        return false;

    // RNG completions are delivered from *inside* the controller tick
    // (routeBits), not through a queue front the bound could cover; a
    // service-destined one would mutate service state mid-drain unseen.
    // Refuse while any service work is in flight — no new service work
    // can appear during the drain, since the service only issues in its
    // own tick and the cores are blocked.
    if (svc &&
        controller->hasWorkForPort(static_cast<CoreId>(cores.size())))
        return false;

    const Cycle svcFrom = now;
    Cycle coreFrom = now;
    // The caller only drains after a failed skip probe, so the current
    // cycle is known dense — start probing at the next one.
    Cycle probe_at = now + 1;
    unsigned backoff = 0;
    coreCompletionPending = false;
    while (now < bound) {
        if (now >= probe_at) {
            // Controller-only horizon: much cheaper than the full probe
            // and still able to skip intra-burst timing gaps.
            const Cycle to = std::min(controller->nextEventCycle(now),
                                      bound);
            if (to > now + 1) {
                controller->fastForward(now, to);
                ffCounters.skips++;
                ffCounters.skippedCycles += to - now;
                now = to;
                backoff = 0;
                continue;
            }
            ++backoff;
            if (backoff > 4)
                probe_at = now + 1 + std::min(backoff - 4, 8u);
        }

        // Bring the blocked cores' bookkeeping up to `now` before the
        // tick: a completion this cycle may wake one, and its wake tick
        // below must start from consistent state.
        if (now > coreFrom) {
            for (auto &core : cores)
                core->fastForward(coreFrom, now);
            coreFrom = now;
        }

        controller->tick(now);
        ffCounters.drainTicks++;

        if (coreCompletionPending) {
            coreCompletionPending = false;
            // A completion only moves a core's horizon earlier; the
            // drain continues under the tightened bound unless a core
            // became runnable this very cycle.
            Cycle ev = kNoEvent;
            for (const auto &core : cores)
                ev = std::min(ev, core->nextEventCycle(now));
            if (ev <= now) {
                // Finish the cycle exactly as the step path would: the
                // service/replay ticks it skipped are no-ops below the
                // bound, the controller already ticked, the cores tick
                // now (their bookkeeping was flushed to `now` above).
                for (auto &core : cores)
                    core->tickBusCycle(now);
                ffCounters.steppedCycles++;
                ffCounters.drainTicks--; // Counted as a full step.
                ++now;
                coreFrom = now;
                break;
            }
            bound = std::min(bound, ev);
        }
        ++now;
    }

    // Batch the remaining blocked span for the cores and the service.
    if (now > coreFrom)
        for (auto &core : cores)
            core->fastForward(coreFrom, now);
    if (svc && now > svcFrom)
        svc->fastForward(svcFrom, now);
    return true;
}

void
System::step(Cycle cycles)
{
    advanceUntil(now + cycles, /*stop_when_finished=*/false);
}

void
System::run()
{
    if (replay) {
        // The recorded run stopped at endCycle; advancing to exactly
        // that cycle reproduces every controller-side metric. The
        // all-finished early exit must stay off: with no cores, every
        // budget is vacuously retired at cycle 0.
        advanceUntil(std::min(cfg.maxBusCycles, replay->endCycle()),
                     /*stop_when_finished=*/false);
    } else {
        advanceUntil(cfg.maxBusCycles, /*stop_when_finished=*/true);
    }
    if (recorder)
        recorder->finalize(now);
}

} // namespace dstrange::sim
