#include "sim/system.h"

#include <algorithm>
#include <cassert>

namespace dstrange::sim {

const char *
designName(SystemDesign design)
{
    switch (design) {
      case SystemDesign::RngOblivious:
        return "RNG-Oblivious";
      case SystemDesign::GreedyIdle:
        return "Greedy";
      case SystemDesign::DrStrange:
        return "DR-STRANGE";
      case SystemDesign::DrStrangeNoPred:
        return "DR-STRANGE(NoPred)";
      case SystemDesign::DrStrangeRl:
        return "DR-STRANGE+RL";
      case SystemDesign::DrStrangeNoLowUtil:
        return "DR-STRANGE(Thr=0)";
      case SystemDesign::RngAwareNoBuffer:
        return "RNG-Aware";
      case SystemDesign::FrFcfsBaseline:
        return "FR-FCFS";
      case SystemDesign::BlissBaseline:
        return "BLISS";
    }
    return "?";
}

mem::McConfig
mcConfigFor(const SimConfig &cfg)
{
    mem::McConfig mc;
    mc.schedulerKind = mem::SchedulerKind::FrFcfsCap;
    mc.rngAwareQueueing = false;
    mc.bufferEntries = 0;
    mc.fill = mem::FillMode::None;
    mc.lowUtilThreshold = 0;

    // A fill session cannot abort once a round starts, so an idle period
    // only counts as "long" if it covers a whole session of the
    // mechanism used for filling. For D-RaNGe this resolves to the
    // paper's 40-cycle PeriodThreshold; QUAC-TRNG's long rounds need
    // more room.
    const trng::TrngMechanism &fill_mech =
        cfg.fillMechanism.value_or(cfg.mechanism);
    mc.fillMechanism = cfg.fillMechanism;
    mc.periodThreshold = std::max<Cycle>(
        40, fill_mech.switchInLatency + fill_mech.roundLatency +
                fill_mech.switchOutLatency);
    mc.powerDownThreshold = cfg.powerDownThreshold;

    switch (cfg.design) {
      case SystemDesign::RngOblivious:
        break;
      case SystemDesign::FrFcfsBaseline:
        mc.schedulerKind = mem::SchedulerKind::FrFcfs;
        break;
      case SystemDesign::BlissBaseline:
        mc.schedulerKind = mem::SchedulerKind::Bliss;
        break;
      case SystemDesign::RngAwareNoBuffer:
        mc.rngAwareQueueing = true;
        break;
      case SystemDesign::GreedyIdle:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::GreedyOracle;
        break;
      case SystemDesign::DrStrangeNoPred:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictorKind = mem::PredictorKind::None;
        mc.lowUtilThreshold = 0;
        break;
      case SystemDesign::DrStrange:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictorKind = mem::PredictorKind::Simple;
        mc.lowUtilThreshold = cfg.lowUtilThreshold;
        break;
      case SystemDesign::DrStrangeNoLowUtil:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictorKind = mem::PredictorKind::Simple;
        mc.lowUtilThreshold = 0;
        break;
      case SystemDesign::DrStrangeRl:
        mc.rngAwareQueueing = true;
        mc.bufferEntries = cfg.bufferEntries;
        mc.bufferPartitions = cfg.bufferPartitions;
        mc.fill = mem::FillMode::Engine;
        mc.predictorKind = mem::PredictorKind::Rl;
        mc.lowUtilThreshold = cfg.lowUtilThreshold;
        mc.rlConfig.seed = cfg.seed * 7919 + 17;
        break;
    }
    return mc;
}

System::System(const SimConfig &config,
               std::vector<std::unique_ptr<cpu::TraceSource>> traces)
    : cfg(config), traceOwners(std::move(traces)),
      entropySource(mix64(config.seed) ^ 0xdead)
{
    assert(!traceOwners.empty());

    controller = std::make_unique<mem::MemoryController>(
        mcConfigFor(cfg), cfg.timings, cfg.geometry, cfg.mechanism,
        static_cast<unsigned>(traceOwners.size()));

    cpu::Core::Config core_cfg;
    core_cfg.instrBudget = cfg.instrBudget;
    for (unsigned i = 0; i < traceOwners.size(); ++i) {
        cores.push_back(std::make_unique<cpu::Core>(
            static_cast<CoreId>(i), core_cfg, *traceOwners[i],
            *controller));
    }

    controller->setCompletionCallback(
        [this](CoreId core, std::uint64_t token, mem::ReqType) {
            cores[core]->onCompletion(token);
        });

    for (unsigned i = 0; i < cfg.priorities.size() && i < cores.size(); ++i)
        controller->setPriority(static_cast<CoreId>(i), cfg.priorities[i]);
}

bool
System::allFinished() const
{
    for (const auto &core : cores)
        if (!core->finished())
            return false;
    return true;
}

void
System::step(Cycle cycles)
{
    const Cycle end = now + cycles;
    for (; now < end; ++now) {
        controller->tick(now);
        for (auto &core : cores)
            core->tickBusCycle(now);
    }
}

void
System::run()
{
    while (!allFinished() && now < cfg.maxBusCycles)
        step(1);
}

} // namespace dstrange::sim
