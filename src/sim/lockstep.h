/**
 * @file
 * DS_LOCKSTEP cross-check support: a full-statistics fingerprint of a
 * simulated System and a comparison helper. With DS_LOCKSTEP enabled
 * the Runner executes every simulation twice — once with event-driven
 * fast-forward, once ticking every bus cycle — and requires every
 * statistic (core counters, controller stats, per-channel energy
 * counters, engine counters, buffer levels, predictor scores, idle
 * period distributions) to be bit-identical.
 */

#ifndef DSTRANGE_SIM_LOCKSTEP_H
#define DSTRANGE_SIM_LOCKSTEP_H

#include <string>

#include "sim/system.h"

namespace dstrange::sim {

/** true when DS_LOCKSTEP requests the step-1 cross-check (default off). */
bool lockstepEnabled();

/**
 * Serialize every statistic a run produces into a line-oriented
 * key=value fingerprint. Floating-point values are rendered in hexfloat
 * so the comparison is bit-exact.
 */
std::string systemFingerprint(const System &sys);

/**
 * Compare two completed systems' fingerprints.
 * @throws std::runtime_error naming the first differing statistic.
 */
void verifyLockstep(const System &fast_forwarded, const System &stepped);

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_LOCKSTEP_H
