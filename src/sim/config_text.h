/**
 * @file
 * Canonical key=value text form of a SimConfig. One grammar serves the
 * CLI (--set/--design), the bench harness (DS_CONFIG), saved experiment
 * configs, and the Runner's alone-run cache keys.
 *
 * Grammar: whitespace-separated `key=value` tokens. serializeConfig()
 * emits every knob in a fixed order, so equal strings mean equal
 * effective configurations (the property the alone-run cache relies on)
 * and round-tripping through applyConfigText() reproduces the config.
 *
 * Keys (in serialization order):
 *   scheduler, rng-aware, buffering, fill, predictor, low-util,
 *   mechanism.name, mechanism.bits, mechanism.round, mechanism.in,
 *   mechanism.out, fill-mechanism=- or fill-mechanism.name, .bits,
 *   .round, .in, .out, buffer-entries, buffer-partitions,
 *   low-util-threshold, powerdown, budget, max-cycles, seed,
 *   priorities, timings.<field> (tck, trcd, tcl, tcwl, trp, tras, trc,
 *   tbl, tccd, trtp, twr, twtr, trrd, tfaw, trfc, trefi, txp),
 *   geometry.<field> (channels, ranks, banks, rows, rowbytes)
 *
 * Parsing accepts two extra conveniences:
 *   design=KEY        apply a sim::DesignRegistry preset (policy knobs)
 *   mechanism=NAME    load a whole built-in mechanism by
 *                     trng::TrngMechanism::byName() name ("drange",
 *                     "quac"); unknown names are an error — custom
 *                     mechanisms are spelled out via the
 *                     [fill-]mechanism.* parameter keys
 */

#ifndef DSTRANGE_SIM_CONFIG_TEXT_H
#define DSTRANGE_SIM_CONFIG_TEXT_H

#include <string>

#include "sim/sim_config.h"

namespace dstrange::sim {

/** Serialize every knob of @p cfg to canonical key=value text. */
std::string serializeConfig(const SimConfig &cfg);

/**
 * Apply whitespace-separated key=value tokens onto @p cfg.
 * @throws std::invalid_argument on a malformed token, unknown key, or
 *         unparsable value (the message names the offending token).
 */
void applyConfigText(SimConfig &cfg, const std::string &text);

/** Parse a full configuration from text over default-constructed
 *  SimConfig (i.e. over the DR-STRaNGe preset). */
SimConfig parseConfig(const std::string &text);

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_CONFIG_TEXT_H
