/**
 * @file
 * Top-level simulated system: N cores + memory controller + DRAM +
 * integrated DRAM TRNG. Components advance in lock-step at bus-cycle
 * granularity, but quiescent stretches — every component reporting that
 * its next tick only does batchable bookkeeping — are fast-forwarded in
 * one jump to the earliest event horizon, with bit-identical results
 * (see README "How the simulator advances time" and DS_LOCKSTEP).
 */

#ifndef DSTRANGE_SIM_SYSTEM_H
#define DSTRANGE_SIM_SYSTEM_H

#include <memory>
#include <vector>

#include "cpu/core.h"
#include "cpu/trace_source.h"
#include "service/open_loop_service.h"
#include "sim/sim_config.h"
#include "trace/trace_replay_source.h"
#include "trace/trace_writer.h"
#include "trng/entropy_source.h"

namespace dstrange::sim {

/**
 * Owns and steps all components. Cores run until each retires its
 * instruction budget; finished cores keep generating traffic (standard
 * multi-programmed methodology) but their statistics freeze.
 */
class System
{
  public:
    System(const SimConfig &config,
           std::vector<std::unique_ptr<cpu::TraceSource>> traces);

    // The memory controller's completion callback captures `this`;
    // moving or copying a System would leave it dangling.
    System(const System &) = delete;
    System &operator=(const System &) = delete;
    System(System &&) = delete;
    System &operator=(System &&) = delete;

    /** Run to completion (all budgets retired) or the safety bound. */
    void run();

    /** Advance exactly @p cycles bus cycles (for tests). */
    void step(Cycle cycles);

    /**
     * Enable/disable event-driven cycle skipping (default: the
     * DS_FAST_FORWARD environment flag, which defaults to on). With it
     * disabled every bus cycle is ticked individually; results are
     * bit-identical either way.
     */
    void
    setFastForward(bool enabled)
    {
        ffEnabled = enabled;
        applyBatchMode();
    }
    bool fastForwardEnabled() const { return ffEnabled; }

    /**
     * Enable/disable batched command retirement (default: the DS_BATCH
     * environment flag, which defaults to on). Batch mode rides the
     * fast-forward path: when every core is head-blocked and the
     * service/replay layers are quiescent, the controller is ticked
     * alone — cores advance analytically to each read delivery — and
     * the controller's memoized issue horizons and scheduler forced
     * picks cut the per-tick arbitration cost. Results are bit-identical
     * either way; DS_LOCKSTEP and the difftest harness verify it.
     */
    void
    setBatchMode(bool enabled)
    {
        batchEnabled = enabled;
        applyBatchMode();
    }
    bool batchModeEnabled() const { return batchEnabled; }

    /**
     * The earliest cycle >= busCycles() at which any component does
     * non-batchable work (the fast-forward horizon). Exposed for tests;
     * equal to busCycles() when the current cycle must tick normally.
     */
    Cycle nextEventCycle() const;

    /** Fast-forward effectiveness counters (telemetry/bench records). */
    struct FfStats
    {
        std::uint64_t steppedCycles = 0; ///< Bus cycles ticked normally.
        std::uint64_t skips = 0;         ///< Fast-forward jumps taken.
        std::uint64_t skippedCycles = 0; ///< Bus cycles jumped over.
        /** Bus cycles where only the controller ticked (batch drain);
         *  the cores/service advanced analytically over them. */
        std::uint64_t drainTicks = 0;
    };
    const FfStats &ffStats() const { return ffCounters; }

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores.size());
    }
    const cpu::CoreStats &coreStats(unsigned i) const
    {
        return cores[i]->stats();
    }
    const std::string &traceName(unsigned i) const
    {
        return cores[i]->traceName();
    }
    mem::MemoryController &mc() { return *controller; }
    const mem::MemoryController &mc() const { return *controller; }
    /** The open-loop service driver, or nullptr when not configured. */
    const service::OpenLoopService *service() const { return svc.get(); }
    /** The replay source, or nullptr outside replay mode. */
    const trace::TraceReplaySource *replaySource() const
    {
        return replay.get();
    }
    trng::EntropySource &entropy() { return entropySource; }
    Cycle busCycles() const { return now; }
    bool allFinished() const;
    const SimConfig &config() const { return cfg; }

  private:
    /** Advance to @p end, optionally stopping once all budgets retire. */
    void advanceUntil(Cycle end, bool stop_when_finished);

    /**
     * Batch drain: while every core reports kNoEvent (only a completion
     * can wake it) and the service/replay layers have no event before
     * the bound, tick the controller alone cycle by cycle (with
     * controller-only span skips in between), watching for a completion
     * that wakes a core. Returns true when at least one cycle advanced;
     * false when the entry conditions fail (some component is active at
     * @p now, or service work is in flight).
     */
    bool tryDrainController(Cycle end);

    /** Forward the effective batch flag to the controller. */
    void applyBatchMode();

    SimConfig cfg;
    std::vector<std::unique_ptr<cpu::TraceSource>> traceOwners;
    std::unique_ptr<mem::MemoryController> controller;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    /** Open-loop service driver on the port past the last core. */
    std::unique_ptr<service::OpenLoopService> svc;
    /** Tape standing in for cores + service when cfg.traceReplay set. */
    std::unique_ptr<trace::TraceReplaySource> replay;
    /** Recorder hooked into the controller when cfg.traceRecord set. */
    std::unique_ptr<trace::TraceWriter> recorder;
    trng::EntropySource entropySource;
    Cycle now = 0;
    bool ffEnabled;
    bool batchEnabled;
    /** Set by the completion callback whenever a core receives a
     *  completion; the batch drain polls and clears it instead of
     *  re-deriving every core's horizon after every controller tick. */
    bool coreCompletionPending = false;
    FfStats ffCounters;
};

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_SYSTEM_H
