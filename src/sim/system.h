/**
 * @file
 * Top-level simulated system: N cores + memory controller + DRAM +
 * integrated DRAM TRNG, advanced in lock-step at bus-cycle granularity.
 */

#ifndef DSTRANGE_SIM_SYSTEM_H
#define DSTRANGE_SIM_SYSTEM_H

#include <memory>
#include <vector>

#include "cpu/core.h"
#include "cpu/trace_source.h"
#include "sim/sim_config.h"
#include "trng/entropy_source.h"

namespace dstrange::sim {

/**
 * Owns and steps all components. Cores run until each retires its
 * instruction budget; finished cores keep generating traffic (standard
 * multi-programmed methodology) but their statistics freeze.
 */
class System
{
  public:
    System(const SimConfig &config,
           std::vector<std::unique_ptr<cpu::TraceSource>> traces);

    /** Run to completion (all budgets retired) or the safety bound. */
    void run();

    /** Advance exactly @p cycles bus cycles (for tests). */
    void step(Cycle cycles);

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores.size());
    }
    const cpu::CoreStats &coreStats(unsigned i) const
    {
        return cores[i]->stats();
    }
    const std::string &traceName(unsigned i) const
    {
        return cores[i]->traceName();
    }
    mem::MemoryController &mc() { return *controller; }
    const mem::MemoryController &mc() const { return *controller; }
    trng::EntropySource &entropy() { return entropySource; }
    Cycle busCycles() const { return now; }
    bool allFinished() const;
    const SimConfig &config() const { return cfg; }

  private:
    SimConfig cfg;
    std::vector<std::unique_ptr<cpu::TraceSource>> traceOwners;
    std::unique_ptr<mem::MemoryController> controller;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    trng::EntropySource entropySource;
    Cycle now = 0;
};

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_SYSTEM_H
