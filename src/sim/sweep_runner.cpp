#include "sim/sweep_runner.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/env_util.h"
#include "common/types.h"
#include "sim/config_text.h"
#include "sim/design_registry.h"
#include "sim/result_store.h"

namespace dstrange::sim {

SweepRunner::ShardSpec
SweepRunner::ShardSpec::parse(const std::string &text)
{
    const auto fail = [&text] {
        throw std::invalid_argument(
            "bad shard spec '" + text +
            "' (expected I/N or I/N:balanced with 0 <= I < N, "
            "e.g. \"0/4\")");
    };
    ShardSpec spec;
    std::size_t end = text.size();
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        if (text.substr(colon) != ":balanced")
            fail();
        spec.balanced = true;
        end = colon;
    }
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 >= end)
        fail();
    const auto parseField = [&](std::size_t begin, std::size_t stop,
                                unsigned &out) {
        const auto res =
            std::from_chars(text.data() + begin, text.data() + stop, out);
        if (res.ec != std::errc{} || res.ptr != text.data() + stop)
            fail();
    };
    parseField(0, slash, spec.index);
    parseField(slash + 1, end, spec.count);
    if (spec.count == 0 || spec.index >= spec.count)
        fail();
    return spec;
}

SweepRunner::ShardSpec
SweepRunner::ShardSpec::fromEnv()
{
    const char *env = std::getenv("DS_SHARD");
    if (!env || *env == '\0')
        return ShardSpec{};
    return parse(env);
}

std::string
SweepRunner::cellKey(const Cell &cell)
{
    std::string key;
    if (cell.config) {
        key = "config=" + serializeConfig(*cell.config);
    } else {
        key = "design=" + cell.design;
    }
    key += "|name=" + cell.spec.name;
    key += "|group=" + cell.spec.group;
    key += "|apps=";
    for (const std::string &app : cell.spec.apps) {
        key += app;
        key += ',';
    }
    // Exact (shortest round-trip) float form so the key never depends
    // on locale or printf rounding.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf),
                                   cell.spec.rngThroughputMbps);
    key += "|mbps=";
    key.append(buf, res.ptr);
    return key;
}

std::uint64_t
SweepRunner::cellHash(const Cell &cell)
{
    return fnv1a64(cellKey(cell));
}

SweepRunner::SweepRunner(SimConfig base, unsigned jobs)
    : nJobs(jobs != 0 ? jobs : defaultJobs()), shared(std::move(base))
{
}

SweepRunner::SweepRunner(SimConfig base, unsigned jobs,
                         std::shared_ptr<ResultStore> store)
    : nJobs(jobs != 0 ? jobs : defaultJobs()),
      shared(std::move(base), std::move(store))
{
}

unsigned
SweepRunner::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    // envU64 falls back on unset/unparseable/zero, so DS_JOBS=0 also
    // lands on the hardware default rather than a zero-worker pool.
    return static_cast<unsigned>(
        envU64("DS_JOBS", std::max(1u, hw)));
}

std::vector<SweepRunner::Cell>
SweepRunner::grid(const std::vector<std::string> &designs,
                  const std::vector<workloads::WorkloadSpec> &specs)
{
    std::vector<Cell> cells;
    cells.reserve(designs.size() * specs.size());
    for (const workloads::WorkloadSpec &spec : specs) {
        for (const std::string &design : designs) {
            Cell cell;
            cell.design = design;
            cell.spec = spec;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

std::vector<unsigned>
SweepRunner::shardOwners(const std::vector<Cell> &cells) const
{
    std::vector<unsigned> owners(cells.size(), 0);
    if (shard.count <= 1)
        return owners;
    for (std::size_t i = 0; i < cells.size(); ++i)
        owners[i] = static_cast<unsigned>(cellHash(cells[i]) %
                                          shard.count);
    const std::shared_ptr<ResultStore> &store = shared.resultStore();
    if (!shard.balanced || !store)
        return owners;

    // Longest-processing-time-first over the cells with recorded
    // costs: sort by cost descending (grid index breaks ties), then
    // greedily hand each to the currently least-loaded shard. Cells
    // without a cost record keep their hash assignment above.
    struct Costed
    {
        std::size_t idx;
        double cost;
    };
    std::vector<Costed> costed;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (const auto cost = store->loadCellCost(cellKey(cells[i])))
            costed.push_back({i, *cost});
    }
    std::sort(costed.begin(), costed.end(),
              [](const Costed &a, const Costed &b) {
                  if (a.cost != b.cost)
                      return a.cost > b.cost;
                  return a.idx < b.idx;
              });
    std::vector<double> load(shard.count, 0.0);
    for (const Costed &c : costed) {
        unsigned best = 0;
        for (unsigned s = 1; s < shard.count; ++s) {
            if (load[s] < load[best])
                best = s;
        }
        owners[c.idx] = best;
        load[best] += c.cost;
    }
    return owners;
}

SweepRunner::CellResult
SweepRunner::runCell(const Cell &cell)
{
    CellResult out;
    const auto start = std::chrono::steady_clock::now();
    const auto attempt = [&] {
        try {
            if (cell.config) {
                out.result = shared.run(*cell.config, cell.spec);
            } else {
                // Copy the shared runner's base() so between-sweep
                // mutations of runner().base() apply to design-key
                // cells too (workers only read it during a sweep).
                SimConfig cfg = shared.base();
                DesignRegistry::instance().apply(cell.design, cfg);
                out.result = shared.run(cfg, cell.spec);
            }
            out.ok = true;
            out.error.clear();
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
        }
    };
    attempt();
    if (!out.ok) {
        // One bounded retry: cells are pure functions of their inputs,
        // but the run may share a cache directory or trace files with
        // other processes, so a transient I/O hiccup deserves a second
        // chance. A deterministic failure (bad design key, invalid
        // config) just fails again immediately.
        attempt();
        out.outcome = out.ok ? "retried" : "error";
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    out.wallMs =
        std::chrono::duration<double, std::milli>(elapsed).count();
    // Advisory wall-clock budget (seconds; 0 = off). Workers are never
    // killed mid-simulation — determinism would not survive — so an
    // overrunning cell keeps its valid result and is only *tagged*,
    // letting run_all output and CI flag runaway grid corners.
    const std::uint64_t budget_s = envU64("DS_CELL_TIMEOUT", 0);
    if (budget_s > 0 && out.wallMs > 1000.0 * static_cast<double>(budget_s))
        out.outcome = "timeout";
    // Record the measured cost so later balanced-shard runs can split
    // the grid by real wall-clock (best-effort; failures are ignored).
    // Sharded runs only *consume* costs: every shard of a family must
    // compute the LPT assignment from the same store snapshot, so a
    // shard finishing early cannot be allowed to rewrite the records a
    // later-launched sibling would read.
    if (out.ok && shard.count <= 1) {
        if (const std::shared_ptr<ResultStore> &store =
                shared.resultStore())
            store->storeCellCost(cellKey(cell), out.wallMs);
    }
    return out;
}

std::vector<SweepRunner::CellResult>
SweepRunner::run(const std::vector<Cell> &cells)
{
    std::vector<CellResult> results(cells.size());

    // Cross-process sharding: collect the cell indices this shard owns
    // and pre-mark everything else skipped, keeping the full grid shape
    // so results[i] still corresponds to cells[i].
    const std::vector<unsigned> owners =
        ownerOverride.size() == cells.size() ? ownerOverride
                                             : shardOwners(cells);
    std::vector<std::size_t> owned;
    owned.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (shard.count <= 1 || owners[i] == shard.index) {
            owned.push_back(i);
        } else {
            results[i].skipped = true;
            results[i].outcome = "skipped";
            results[i].error = "cell owned by another shard (" +
                               std::to_string(shard.index) + "/" +
                               std::to_string(shard.count) +
                               " did not match)";
        }
    }

    // Progress reporting shared by the serial and parallel paths. The
    // mutex both serializes callback invocations and guards the counter.
    std::mutex progress_mu;
    std::size_t done = 0;
    auto report = [&](std::size_t idx) {
        if (!progress)
            return;
        std::lock_guard<std::mutex> lock(progress_mu);
        ++done;
        progress(done, owned.size(), idx, results[idx].wallMs);
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(nJobs, owned.size()));
    if (workers <= 1) {
        for (const std::size_t i : owned) {
            results[i] = runCell(cells[i]);
            report(i);
        }
        return results;
    }

    // One deque per worker, seeded round-robin. A worker drains its own
    // deque from the front and, when empty, steals from the *back* of a
    // victim's deque, so long-running cells late in a victim's queue
    // migrate to idle workers. All work is enqueued up front, so a
    // worker may exit as soon as every deque is empty.
    struct WorkQueue
    {
        std::mutex mu;
        std::deque<std::size_t> q;
    };
    std::vector<std::unique_ptr<WorkQueue>> queues;
    queues.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        queues.push_back(std::make_unique<WorkQueue>());
    for (std::size_t i = 0; i < owned.size(); ++i)
        queues[i % workers]->q.push_back(owned[i]);

    auto worker = [&](unsigned w) {
        for (;;) {
            std::size_t idx = 0;
            bool found = false;
            {
                WorkQueue &own = *queues[w];
                std::lock_guard<std::mutex> lock(own.mu);
                if (!own.q.empty()) {
                    idx = own.q.front();
                    own.q.pop_front();
                    found = true;
                }
            }
            for (unsigned off = 1; !found && off < workers; ++off) {
                WorkQueue &victim = *queues[(w + off) % workers];
                std::lock_guard<std::mutex> lock(victim.mu);
                if (!victim.q.empty()) {
                    idx = victim.q.back();
                    victim.q.pop_back();
                    found = true;
                }
            }
            if (!found)
                return;
            // Distinct indices per cell: no synchronization needed on
            // the results slot beyond the final joins.
            results[idx] = runCell(cells[idx]);
            report(idx);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker, w);
    worker(0); // The calling thread is worker 0.
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace dstrange::sim
