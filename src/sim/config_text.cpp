#include "sim/config_text.h"

#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

#include "dram/mapping_registry.h"
#include "fault/fault_registry.h"
#include "mem/backend_registry.h"
#include "mem/scheduler_registry.h"
#include "service/arrival_process.h"
#include "service/shed_policy.h"
#include "sim/design_registry.h"
#include "strange/predictor_registry.h"

namespace dstrange::sim {

namespace {

/** Shortest round-trippable decimal form of a double. */
std::string
fmt(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::uint64_t
parseU64(const std::string &value)
{
    // std::stoull would wrap a leading minus instead of failing.
    if (value.empty() || value[0] == '-' || value[0] == '+')
        throw std::invalid_argument("expected an unsigned number");
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size())
        throw std::invalid_argument("trailing characters");
    return v;
}

int
parseInt(const std::string &value)
{
    std::size_t used = 0;
    const int v = std::stoi(value, &used);
    if (used != value.size())
        throw std::invalid_argument("trailing characters");
    return v;
}

unsigned
parseUnsigned(const std::string &value)
{
    const std::uint64_t v = parseU64(value);
    if (v > ~0u)
        throw std::invalid_argument("value out of range");
    return static_cast<unsigned>(v);
}

double
parseDouble(const std::string &value)
{
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size())
        throw std::invalid_argument("trailing characters");
    return v;
}

bool
parseBool(const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    throw std::invalid_argument("expected a boolean (0/1/true/false)");
}

void
serializeMechanism(std::ostringstream &out, const std::string &key,
                   const trng::TrngMechanism &m)
{
    // Tokens split on whitespace, so a name containing any would break
    // the parse round-trip; sanitize rather than emit unparseable text
    // (serialization must stay total — it feeds the alone-run cache).
    std::string name = m.name;
    for (char &c : name)
        if (std::isspace(static_cast<unsigned char>(c)))
            c = '-';
    out << ' ' << key << ".name=" << name;
    out << ' ' << key << ".bits=" << fmt(m.bitsPerRound);
    out << ' ' << key << ".round=" << m.roundLatency;
    out << ' ' << key << ".in=" << m.switchInLatency;
    out << ' ' << key << ".out=" << m.switchOutLatency;
}

/** Mechanism parameter keys shared by "mechanism.*"/"fill-mechanism.*". */
bool
applyMechanismField(trng::TrngMechanism &m, const std::string &field,
                    const std::string &value)
{
    if (field == "name")
        m.name = value;
    else if (field == "bits")
        m.bitsPerRound = parseDouble(value);
    else if (field == "round")
        m.roundLatency = parseU64(value);
    else if (field == "in")
        m.switchInLatency = parseU64(value);
    else if (field == "out")
        m.switchOutLatency = parseU64(value);
    else
        return false;
    return true;
}

bool
applyTimingsField(dram::DramTimings &t, const std::string &field,
                  const std::string &value)
{
    if (field == "tck") {
        t.tCKns = parseDouble(value);
        return true;
    }
    struct Entry
    {
        const char *name;
        Cycle dram::DramTimings::*member;
    };
    static constexpr Entry entries[] = {
        {"trcd", &dram::DramTimings::tRCD},
        {"tcl", &dram::DramTimings::tCL},
        {"tcwl", &dram::DramTimings::tCWL},
        {"trp", &dram::DramTimings::tRP},
        {"tras", &dram::DramTimings::tRAS},
        {"trc", &dram::DramTimings::tRC},
        {"tbl", &dram::DramTimings::tBL},
        {"tccd", &dram::DramTimings::tCCD},
        {"trtp", &dram::DramTimings::tRTP},
        {"twr", &dram::DramTimings::tWR},
        {"twtr", &dram::DramTimings::tWTR},
        {"trrd", &dram::DramTimings::tRRD},
        {"tfaw", &dram::DramTimings::tFAW},
        {"trfc", &dram::DramTimings::tRFC},
        {"trefi", &dram::DramTimings::tREFI},
        {"txp", &dram::DramTimings::tXP},
        {"trtrs", &dram::DramTimings::tRTRS},
    };
    for (const Entry &e : entries) {
        if (field == e.name) {
            t.*(e.member) = parseU64(value);
            return true;
        }
    }
    return false;
}

bool
applyGeometryField(dram::DramGeometry &g, const std::string &field,
                   const std::string &value)
{
    if (field == "channels")
        g.channels = parseUnsigned(value);
    else if (field == "ranks")
        g.ranksPerChannel = parseUnsigned(value);
    else if (field == "banks")
        g.banksPerRank = parseUnsigned(value);
    else if (field == "rows")
        g.rowsPerBank = parseUnsigned(value);
    else if (field == "rowbytes")
        g.rowBytes = parseUnsigned(value);
    else
        return false;
    return true;
}

bool
applyBackendField(SimConfig &cfg, const std::string &field,
                  const std::string &value)
{
    if (field == "kind") {
        if (!mem::BackendRegistry::instance().contains(value))
            throw std::invalid_argument("unknown backend '" + value + "'");
        cfg.backend = value;
    } else if (field == "read-latency")
        cfg.backendReadLatency = parseU64(value);
    else if (field == "write-latency")
        cfg.backendWriteLatency = parseU64(value);
    else if (field == "gap")
        cfg.backendGap = parseU64(value);
    else
        return false;
    return true;
}

bool
applyTraceField(SimConfig &cfg, const std::string &field,
                const std::string &value)
{
    // "-" is the canonical empty-path sentinel (matching priorities=-).
    if (field == "record")
        cfg.traceRecord = value == "-" ? "" : value;
    else if (field == "replay")
        cfg.traceReplay = value == "-" ? "" : value;
    else
        return false;
    return true;
}

/** Paths tokenize on whitespace like every other value; sanitize so
 *  serialization stays total (a sanitized path no longer points at the
 *  original file, but config text is a cache key, not a loader). */
std::string
pathToken(const std::string &path)
{
    if (path.empty())
        return "-";
    std::string out = path;
    for (char &c : out)
        if (std::isspace(static_cast<unsigned char>(c)))
            c = '-';
    return out;
}

/** Registered keys joined for eager-validation error messages. */
std::string
joinKeys(const std::vector<std::string> &keys)
{
    std::string out;
    for (const std::string &k : keys)
        out += (out.empty() ? "" : ", ") + k;
    return out;
}

bool
applyServiceField(service::ServiceConfig &s, const std::string &field,
                  const std::string &value)
{
    if (field == "enabled")
        s.enabled = parseBool(value);
    else if (field == "arrival") {
        if (!service::ArrivalRegistry::instance().contains(value))
            throw std::invalid_argument("unknown arrival process '" +
                                        value + "'");
        s.arrival = value;
    } else if (field == "offered-mbps")
        s.offeredMbps = parseDouble(value);
    else if (field == "clients")
        s.clients = parseUnsigned(value);
    else if (field == "burst")
        s.burstFactor = parseDouble(value);
    else if (field == "period")
        s.periodCycles = parseU64(value);
    else if (field == "slo")
        s.sloTargetCycles = parseU64(value);
    else if (field == "duration")
        s.durationCycles = parseU64(value);
    else if (field == "shed") {
        if (!service::ShedRegistry::instance().contains(value))
            throw std::invalid_argument(
                "unknown shed policy '" + value + "' (known: " +
                joinKeys(service::ShedRegistry::instance().keys()) +
                ")");
        s.shed = value;
    } else if (field == "shed-limit")
        s.shedLimit = parseU64(value);
    else
        return false;
    return true;
}

bool
applyFaultField(fault::FaultConfig &f, const std::string &field,
                const std::string &value)
{
    if (field == "models") {
        // "-" is the canonical empty sentinel (matching priorities=-).
        const std::string models = value == "-" ? "" : value;
        std::istringstream iss(models);
        std::string key;
        while (std::getline(iss, key, ',')) {
            if (!key.empty() &&
                !fault::FaultRegistry::instance().contains(key))
                throw std::invalid_argument(
                    "unknown fault model '" + key + "' (known: " +
                    joinKeys(fault::FaultRegistry::instance().keys()) +
                    ")");
        }
        f.models = models;
    } else if (field == "seed")
        f.seed = parseU64(value);
    else if (field == "bitflip-rate")
        f.bitflipRate = parseDouble(value);
    else if (field == "cells")
        f.cellsPerChannel = parseUnsigned(value);
    else if (field == "weak-cells")
        f.weakCells = parseUnsigned(value);
    else if (field == "weak-severity")
        f.weakSeverity = parseUnsigned(value);
    else if (field == "drift-interval")
        f.driftInterval = parseU64(value);
    else if (field == "stuck-rows")
        f.stuckRows = parseUnsigned(value);
    else if (field == "spares")
        f.spareCells = parseUnsigned(value);
    else if (field == "blacklist-threshold")
        f.blacklistThreshold = parseUnsigned(value);
    else if (field == "retry-limit")
        f.retryLimit = parseUnsigned(value);
    else if (field == "monitor")
        f.monitor = parseBool(value);
    else if (field == "outage-period")
        f.outagePeriod = parseU64(value);
    else if (field == "outage-duration")
        f.outageDuration = parseU64(value);
    else if (field == "outage-scope") {
        if (value != "channel" && value != "rank")
            throw std::invalid_argument("unknown outage scope '" +
                                        value +
                                        "' (known: channel, rank)");
        f.outageScope = value;
    } else
        return false;
    return true;
}

void
applyToken(SimConfig &cfg, const std::string &key,
           const std::string &value)
{
    if (key == "design") {
        DesignRegistry::instance().apply(value, cfg);
    } else if (key == "scheduler") {
        if (!mem::SchedulerRegistry::instance().contains(value))
            throw std::invalid_argument("unknown scheduler '" + value +
                                        "'");
        cfg.scheduler = value;
    } else if (key == "rng-aware") {
        cfg.rngAwareQueueing = parseBool(value);
    } else if (key == "buffering") {
        cfg.buffering = parseBool(value);
    } else if (key == "fill") {
        mem::fillModeFromName(value); // validate
        cfg.fillPolicy = value;
    } else if (key == "predictor") {
        if (!strange::PredictorRegistry::instance().contains(value))
            throw std::invalid_argument("unknown predictor '" + value +
                                        "'");
        cfg.predictor = value;
    } else if (key == "low-util") {
        cfg.lowUtilFill = parseBool(value);
    } else if (key == "mapping") {
        if (!dram::MappingRegistry::instance().contains(value))
            throw std::invalid_argument("unknown mapping '" + value +
                                        "'");
        cfg.addressMapping = value;
    } else if (key == "fill-placement") {
        mem::fillPlacementFromName(value); // validate
        cfg.fillPlacement = value;
    } else if (key == "mechanism") {
        if (auto m = trng::TrngMechanism::byName(value))
            cfg.mechanism = *m;
        else
            throw std::invalid_argument(
                "unknown TRNG mechanism '" + value +
                "' (known: drange, quac; use mechanism.name= and "
                "mechanism.bits/round/in/out= for a custom one)");
    } else if (key.rfind("mechanism.", 0) == 0) {
        if (!applyMechanismField(cfg.mechanism, key.substr(10), value))
            throw std::invalid_argument("unknown key");
    } else if (key == "fill-mechanism") {
        if (value == "-")
            cfg.fillMechanism.reset();
        else if (auto m = trng::TrngMechanism::byName(value))
            cfg.fillMechanism = *m;
        else
            throw std::invalid_argument(
                "unknown TRNG mechanism '" + value +
                "' (known: drange, quac, '-'; use fill-mechanism.name= "
                "and fill-mechanism.bits/round/in/out= for a custom "
                "one)");
    } else if (key.rfind("fill-mechanism.", 0) == 0) {
        if (!cfg.fillMechanism)
            cfg.fillMechanism = cfg.mechanism;
        if (!applyMechanismField(*cfg.fillMechanism, key.substr(15),
                                 value))
            throw std::invalid_argument("unknown key");
    } else if (key == "buffer-entries") {
        cfg.bufferEntries = parseUnsigned(value);
    } else if (key == "buffer-partitions") {
        cfg.bufferPartitions = parseUnsigned(value);
    } else if (key == "low-util-threshold") {
        cfg.lowUtilThreshold = parseUnsigned(value);
    } else if (key == "powerdown") {
        cfg.powerDownThreshold = parseU64(value);
    } else if (key == "budget") {
        cfg.instrBudget = parseU64(value);
    } else if (key == "max-cycles") {
        cfg.maxBusCycles = parseU64(value);
    } else if (key == "seed") {
        cfg.seed = parseU64(value);
    } else if (key == "priorities") {
        cfg.priorities.clear();
        if (value != "-") {
            std::istringstream iss(value);
            std::string item;
            while (std::getline(iss, item, ','))
                if (!item.empty())
                    cfg.priorities.push_back(parseInt(item));
        }
    } else if (key.rfind("timings.", 0) == 0) {
        if (!applyTimingsField(cfg.timings, key.substr(8), value))
            throw std::invalid_argument("unknown key");
    } else if (key.rfind("geometry.", 0) == 0) {
        if (!applyGeometryField(cfg.geometry, key.substr(9), value))
            throw std::invalid_argument("unknown key");
    } else if (key.rfind("service.", 0) == 0) {
        if (!applyServiceField(cfg.service, key.substr(8), value))
            throw std::invalid_argument(
                "unknown key (known service.* keys: enabled, arrival, "
                "offered-mbps, clients, burst, period, slo, duration, "
                "shed, shed-limit)");
    } else if (key.rfind("fault.", 0) == 0) {
        if (!applyFaultField(cfg.fault, key.substr(6), value))
            throw std::invalid_argument(
                "unknown key (known fault.* keys: models, seed, "
                "bitflip-rate, cells, weak-cells, weak-severity, "
                "drift-interval, stuck-rows, spares, "
                "blacklist-threshold, retry-limit, monitor, "
                "outage-period, outage-duration, outage-scope)");
    } else if (key.rfind("backend.", 0) == 0) {
        if (!applyBackendField(cfg, key.substr(8), value))
            throw std::invalid_argument("unknown key");
    } else if (key.rfind("trace.", 0) == 0) {
        if (!applyTraceField(cfg, key.substr(6), value))
            throw std::invalid_argument("unknown key");
    } else {
        throw std::invalid_argument("unknown key");
    }
}

} // namespace

std::string
serializeConfig(const SimConfig &cfg)
{
    std::ostringstream o;
    o << "scheduler=" << cfg.scheduler;
    o << " rng-aware=" << (cfg.rngAwareQueueing ? 1 : 0);
    o << " buffering=" << (cfg.buffering ? 1 : 0);
    o << " fill=" << cfg.fillPolicy;
    o << " predictor=" << cfg.predictor;
    o << " low-util=" << (cfg.lowUtilFill ? 1 : 0);
    o << " mapping=" << cfg.addressMapping;
    o << " fill-placement=" << cfg.fillPlacement;
    serializeMechanism(o, "mechanism", cfg.mechanism);
    if (cfg.fillMechanism)
        serializeMechanism(o, "fill-mechanism", *cfg.fillMechanism);
    else
        o << " fill-mechanism=-";
    o << " buffer-entries=" << cfg.bufferEntries;
    o << " buffer-partitions=" << cfg.bufferPartitions;
    o << " low-util-threshold=" << cfg.lowUtilThreshold;
    o << " powerdown=" << cfg.powerDownThreshold;
    o << " budget=" << cfg.instrBudget;
    o << " max-cycles=" << cfg.maxBusCycles;
    o << " seed=" << cfg.seed;
    o << " priorities=";
    if (cfg.priorities.empty()) {
        o << '-';
    } else {
        for (std::size_t i = 0; i < cfg.priorities.size(); ++i)
            o << (i ? "," : "") << cfg.priorities[i];
    }
    const dram::DramTimings &t = cfg.timings;
    o << " timings.tck=" << fmt(t.tCKns) << " timings.trcd=" << t.tRCD
      << " timings.tcl=" << t.tCL << " timings.tcwl=" << t.tCWL
      << " timings.trp=" << t.tRP << " timings.tras=" << t.tRAS
      << " timings.trc=" << t.tRC << " timings.tbl=" << t.tBL
      << " timings.tccd=" << t.tCCD << " timings.trtp=" << t.tRTP
      << " timings.twr=" << t.tWR << " timings.twtr=" << t.tWTR
      << " timings.trrd=" << t.tRRD << " timings.tfaw=" << t.tFAW
      << " timings.trfc=" << t.tRFC << " timings.trefi=" << t.tREFI
      << " timings.txp=" << t.tXP << " timings.trtrs=" << t.tRTRS;
    const dram::DramGeometry &g = cfg.geometry;
    o << " geometry.channels=" << g.channels
      << " geometry.ranks=" << g.ranksPerChannel
      << " geometry.banks=" << g.banksPerRank
      << " geometry.rows=" << g.rowsPerBank
      << " geometry.rowbytes=" << g.rowBytes;
    const service::ServiceConfig &sv = cfg.service;
    o << " service.enabled=" << (sv.enabled ? 1 : 0)
      << " service.arrival=" << sv.arrival
      << " service.offered-mbps=" << fmt(sv.offeredMbps)
      << " service.clients=" << sv.clients
      << " service.burst=" << fmt(sv.burstFactor)
      << " service.period=" << sv.periodCycles
      << " service.slo=" << sv.sloTargetCycles
      << " service.duration=" << sv.durationCycles
      << " service.shed=" << sv.shed
      << " service.shed-limit=" << sv.shedLimit;
    const fault::FaultConfig &fl = cfg.fault;
    o << " fault.models=" << (fl.models.empty() ? "-" : fl.models)
      << " fault.seed=" << fl.seed
      << " fault.bitflip-rate=" << fmt(fl.bitflipRate)
      << " fault.cells=" << fl.cellsPerChannel
      << " fault.weak-cells=" << fl.weakCells
      << " fault.weak-severity=" << fl.weakSeverity
      << " fault.drift-interval=" << fl.driftInterval
      << " fault.stuck-rows=" << fl.stuckRows
      << " fault.spares=" << fl.spareCells
      << " fault.blacklist-threshold=" << fl.blacklistThreshold
      << " fault.retry-limit=" << fl.retryLimit
      << " fault.monitor=" << (fl.monitor ? 1 : 0)
      << " fault.outage-period=" << fl.outagePeriod
      << " fault.outage-duration=" << fl.outageDuration
      << " fault.outage-scope=" << fl.outageScope;
    o << " backend.kind=" << cfg.backend
      << " backend.read-latency=" << cfg.backendReadLatency
      << " backend.write-latency=" << cfg.backendWriteLatency
      << " backend.gap=" << cfg.backendGap;
    o << " trace.record=" << pathToken(cfg.traceRecord)
      << " trace.replay=" << pathToken(cfg.traceReplay);
    return o.str();
}

void
applyConfigText(SimConfig &cfg, const std::string &text)
{
    std::istringstream iss(text);
    std::string token;
    while (iss >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument("bad config token '" + token +
                                        "': expected key=value");
        try {
            applyToken(cfg, token.substr(0, eq), token.substr(eq + 1));
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument("bad config token '" + token +
                                        "': " + e.what());
        } catch (const std::out_of_range &e) {
            throw std::invalid_argument("bad config token '" + token +
                                        "': " + e.what());
        }
    }
}

SimConfig
parseConfig(const std::string &text)
{
    SimConfig cfg;
    applyConfigText(cfg, text);
    return cfg;
}

} // namespace dstrange::sim
