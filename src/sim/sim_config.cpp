#include "sim/sim_config.h"

#include <algorithm>

namespace dstrange::sim {

const char *
designName(SystemDesign design)
{
    switch (design) {
      case SystemDesign::RngOblivious:
        return "RNG-Oblivious";
      case SystemDesign::GreedyIdle:
        return "Greedy";
      case SystemDesign::DrStrange:
        return "DR-STRANGE";
      case SystemDesign::DrStrangeNoPred:
        return "DR-STRANGE(NoPred)";
      case SystemDesign::DrStrangeRl:
        return "DR-STRANGE+RL";
      case SystemDesign::DrStrangeNoLowUtil:
        return "DR-STRANGE(Thr=0)";
      case SystemDesign::RngAwareNoBuffer:
        return "RNG-Aware";
      case SystemDesign::FrFcfsBaseline:
        return "FR-FCFS";
      case SystemDesign::BlissBaseline:
        return "BLISS";
    }
    return "?";
}

const char *
designKey(SystemDesign design)
{
    switch (design) {
      case SystemDesign::RngOblivious:
        return "oblivious";
      case SystemDesign::GreedyIdle:
        return "greedy";
      case SystemDesign::DrStrange:
        return "drstrange";
      case SystemDesign::DrStrangeNoPred:
        return "drstrange-nopred";
      case SystemDesign::DrStrangeRl:
        return "drstrange-rl";
      case SystemDesign::DrStrangeNoLowUtil:
        return "drstrange-nolowutil";
      case SystemDesign::RngAwareNoBuffer:
        return "rng-aware";
      case SystemDesign::FrFcfsBaseline:
        return "frfcfs";
      case SystemDesign::BlissBaseline:
        return "bliss";
    }
    return "?";
}

std::optional<SystemDesign>
designFromString(std::string_view name)
{
    for (SystemDesign d : kAllDesigns)
        if (name == designKey(d) || name == designName(d))
            return d;
    return std::nullopt;
}

void
applyDesign(SimConfig &cfg, SystemDesign design)
{
    // Start from the RNG-oblivious baseline so reapplying a preset from
    // any prior state is deterministic.
    cfg.scheduler = "fr-fcfs-cap";
    cfg.rngAwareQueueing = false;
    cfg.buffering = false;
    cfg.fillPolicy = "none";
    cfg.predictor = "simple";
    cfg.lowUtilFill = false;

    switch (design) {
      case SystemDesign::RngOblivious:
        break;
      case SystemDesign::FrFcfsBaseline:
        cfg.scheduler = "fr-fcfs";
        break;
      case SystemDesign::BlissBaseline:
        cfg.scheduler = "bliss";
        break;
      case SystemDesign::RngAwareNoBuffer:
        cfg.rngAwareQueueing = true;
        break;
      case SystemDesign::GreedyIdle:
        cfg.rngAwareQueueing = true;
        cfg.buffering = true;
        cfg.fillPolicy = "greedy-oracle";
        break;
      case SystemDesign::DrStrangeNoPred:
        cfg.rngAwareQueueing = true;
        cfg.buffering = true;
        cfg.fillPolicy = "engine";
        cfg.predictor = "none";
        break;
      case SystemDesign::DrStrange:
        cfg.rngAwareQueueing = true;
        cfg.buffering = true;
        cfg.fillPolicy = "engine";
        cfg.lowUtilFill = true;
        break;
      case SystemDesign::DrStrangeNoLowUtil:
        cfg.rngAwareQueueing = true;
        cfg.buffering = true;
        cfg.fillPolicy = "engine";
        break;
      case SystemDesign::DrStrangeRl:
        cfg.rngAwareQueueing = true;
        cfg.buffering = true;
        cfg.fillPolicy = "engine";
        cfg.predictor = "rl";
        cfg.lowUtilFill = true;
        break;
    }
}

SimConfig
designConfig(SystemDesign design)
{
    SimConfig cfg;
    applyDesign(cfg, design);
    return cfg;
}

mem::McConfig
mcConfigFor(const SimConfig &cfg)
{
    mem::McConfig mc;
    mc.scheduler = cfg.scheduler;
    mc.rngAwareQueueing = cfg.rngAwareQueueing;
    mc.bufferEntries = cfg.buffering ? cfg.bufferEntries : 0;
    mc.bufferPartitions = cfg.buffering ? cfg.bufferPartitions : 0;
    mc.fill = cfg.buffering ? mem::fillModeFromName(cfg.fillPolicy)
                            : mem::FillMode::None;
    mc.predictor = cfg.predictor;
    mc.lowUtilThreshold = cfg.lowUtilFill ? cfg.lowUtilThreshold : 0;
    mc.fillPlacement = mem::fillPlacementFromName(cfg.fillPlacement);
    mc.addressMapping = cfg.addressMapping;
    if (cfg.predictor == "rl")
        mc.rlConfig.seed = cfg.seed * 7919 + 17;

    // A fill session cannot abort once a round starts, so an idle period
    // only counts as "long" if it covers a whole session of the
    // mechanism used for filling. For D-RaNGe this resolves to the
    // paper's 40-cycle PeriodThreshold; QUAC-TRNG's long rounds need
    // more room.
    const trng::TrngMechanism &fill_mech =
        cfg.fillMechanism.value_or(cfg.mechanism);
    mc.fillMechanism = cfg.fillMechanism;
    mc.periodThreshold = std::max<Cycle>(
        40, fill_mech.switchInLatency + fill_mech.roundLatency +
                fill_mech.switchOutLatency);
    mc.powerDownThreshold = cfg.powerDownThreshold;
    mc.backend = cfg.backend;
    mc.backendReadLatency = cfg.backendReadLatency;
    mc.backendWriteLatency = cfg.backendWriteLatency;
    mc.backendGap = cfg.backendGap;
    mc.fault = cfg.fault;
    return mc;
}

} // namespace dstrange::sim
