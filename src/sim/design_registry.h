/**
 * @file
 * String-keyed registry of named system designs (presets over the
 * SimConfig policy knobs). The paper's nine designs are built in; user
 * code can register additional presets — typically pairing a custom
 * scheduler or predictor factory with the policy knobs that select it —
 * and they become reachable from the CLI's --design flag, config text
 * (design=KEY), and Runner::run(name) without any library edits.
 */

#ifndef DSTRANGE_SIM_DESIGN_REGISTRY_H
#define DSTRANGE_SIM_DESIGN_REGISTRY_H

#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "sim/sim_config.h"

namespace dstrange::sim {

/**
 * Process-global design-preset registry. Keys are the designKey()
 * strings for the built-in designs ("oblivious", "greedy", "drstrange",
 * "drstrange-nopred", "drstrange-rl", "drstrange-nolowutil",
 * "rng-aware", "frfcfs", "bliss"); lookups also accept display names
 * ("DR-STRANGE").
 *
 * Thread-safe: lookups take a shared lock and add() an exclusive one,
 * so parallel sweeps (sim::SweepRunner) can apply presets while user
 * code registers new ones.
 */
class DesignRegistry
{
  public:
    /** Applies a preset's policy knobs onto a configuration. */
    using Preset = std::function<void(SimConfig &)>;

    static DesignRegistry &instance();

    /**
     * Register a preset under @p key with a human-readable
     * @p display_name (shown in tables; may equal the key).
     * @throws std::invalid_argument if the key is empty or taken.
     */
    void add(const std::string &key, const std::string &display_name,
             Preset preset);

    /**
     * Apply the preset registered under @p name (key or display name)
     * onto @p cfg.
     * @throws std::out_of_range if @p name is unknown (the message
     *         lists the registered keys).
     */
    void apply(const std::string &name, SimConfig &cfg) const;

    bool contains(const std::string &name) const;

    /** Display name of a registered design. @throws std::out_of_range */
    std::string displayName(const std::string &name) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    struct Entry
    {
        std::string displayName;
        Preset preset;
    };

    DesignRegistry();
    Entry at(const std::string &name) const;

    mutable std::shared_mutex mu;
    std::map<std::string, Entry> entries;
};

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_DESIGN_REGISTRY_H
