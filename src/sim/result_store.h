/**
 * @file
 * On-disk persistence for simulation results. Two layers live here:
 *
 * 1. ResultStore — a crash-safe, multi-process-shared cache directory
 *    for alone-run baselines (`DS_CACHE_DIR`). sim::Runner consults it
 *    inside its in-memory alone-run cache, so repeated bench
 *    invocations (and concurrent sweep shards pointed at one
 *    directory) stop recomputing the same single-app baselines.
 *
 * 2. Free-function JSON (de)serialization of Runner::WorkloadResult
 *    and AloneResult, reusing JsonWriter on the way out and the small
 *    JsonValue reader on the way in. Doubles use exact (shortest
 *    round-trip) formatting, so a deserialized result is bit-identical
 *    to the one serialized.
 */

#ifndef DSTRANGE_SIM_RESULT_STORE_H
#define DSTRANGE_SIM_RESULT_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "sim/metrics.h"
#include "sim/runner.h"

namespace dstrange::sim {

/**
 * Persistent alone-run cache over one directory. Each baseline lives in
 * its own JSON file named by the hash of its cache key (the trace
 * identity plus the full canonical config serialization — the same key
 * Runner's in-memory cache uses), stamped with a schema/build
 * fingerprint.
 *
 * Safety properties:
 *  - Writes are atomic (temp file + rename), so a crash mid-write can
 *    never leave a half-written file where a reader finds it.
 *  - An advisory file lock (POSIX flock on `<dir>/.lock`) serializes
 *    writers and excludes readers during the rename window, so any
 *    number of concurrent processes — e.g. sweep shards — can share one
 *    directory.
 *  - Every file embeds its full key text and fingerprint; a hash
 *    collision, a stale fingerprint (schema bump, different compiler),
 *    or a truncated/corrupt file is treated as a miss and recomputed,
 *    never trusted.
 *
 * Hit/miss/store counters are cumulative over the store's lifetime and
 * safe to read concurrently.
 */
class ResultStore
{
  public:
    /**
     * Open (creating if needed) a cache directory.
     * @param dir          Directory for cache files.
     * @param fingerprint  Version stamp embedded in (and required of)
     *                     every file; empty selects buildFingerprint().
     * @throws std::runtime_error when the directory cannot be created.
     */
    explicit ResultStore(std::string dir, std::string fingerprint = "");

    /** Store configured by DS_CACHE_DIR, or nullptr when unset/empty
     *  (the default: no persistence). An unusable directory also
     *  yields nullptr, with a stderr warning — the env path degrades
     *  instead of throwing out of Runner's constructor. */
    static std::shared_ptr<ResultStore> openFromEnv();

    /**
     * The default version stamp: cache schema version, the compiler
     * identification, a build-time hash of the entire src/ tree (so
     * editing any simulator source invalidates cached baselines
     * automatically), and the DS_FAST_FORWARD engine mode (so a
     * step-1 validation run never consumes fast-forward-computed
     * baselines). Old files read as misses after any change.
     */
    static std::string buildFingerprint();

    /** Cached baseline for @p key, or nullopt on any miss (absent,
     *  corrupt, wrong key, or wrong fingerprint). Never throws. A hit
     *  refreshes the file's mtime so size-bounded eviction (see
     *  setMaxBytes) approximates LRU over *uses*, not just writes. */
    std::optional<AloneResult> loadAlone(const std::string &key) const;

    /** Persist a baseline (atomic; last writer wins). Returns false on
     *  I/O failure — callers lose persistence, not correctness. When a
     *  size bound is set, the store then evicts oldest-mtime cache
     *  files until the directory fits the budget again. */
    bool storeAlone(const std::string &key,
                    const AloneResult &result) const;

    /**
     * Record the measured wall-clock cost of one sweep cell (identified
     * by its canonical cell key) so later sharded runs can balance
     * shards by real cost instead of a hash. Costs live in `cost-*.json`
     * files — a separate namespace from the `alone-*` baselines, which
     * the size-bounded eviction therefore never touches. Costs are
     * estimates, not correctness data: the file embeds the key and
     * schema but not the build fingerprint, so a rebuild keeps its
     * timing hints. Atomic like storeAlone(); returns false on I/O
     * failure.
     */
    bool storeCellCost(const std::string &cell_key, double wall_ms) const;

    /** Recorded wall-clock cost for a sweep cell, or nullopt when no
     *  (valid) record exists. Never throws. */
    std::optional<double> loadCellCost(const std::string &cell_key) const;

    /**
     * Bound the total size of cache files in the directory (bytes;
     * 0 = unlimited, the default). The constructor seeds this from the
     * DS_CACHE_MAX_MB environment variable. Enforcement happens on
     * store, under the directory's exclusive lock, by removing the
     * least-recently-used (oldest mtime) `alone-*.json` files first;
     * concurrent readers of an evicted file simply miss and recompute.
     */
    void setMaxBytes(std::uint64_t bytes) { maxBytes = bytes; }
    std::uint64_t maxBytesBound() const { return maxBytes; }

    const std::string &dir() const { return root; }
    const std::string &fingerprint() const { return stamp; }

    /** Baselines served from disk since this store was opened. */
    std::uint64_t hits() const { return nHits.load(); }
    /** Lookups that fell through to recomputation. */
    std::uint64_t misses() const { return nMisses.load(); }
    /** Baselines written to disk. */
    std::uint64_t stores() const { return nStores.load(); }

  private:
    std::string filePath(const std::string &key) const;
    std::string costPath(const std::string &cell_key) const;
    /** Delete oldest-mtime cache files until the budget is met. Must
     *  be called with the exclusive directory lock held; never throws. */
    void evictOverBudget() const;
    /**
     * Remove `*.tmp.*` droppings left behind by writers that crashed
     * between creating a temp file and renaming it. Age-gated (only
     * files older than ten minutes), so an in-flight write by a live
     * concurrent process is never touched. Runs at most once per store,
     * on the first write, under the exclusive directory lock; never
     * throws.
     */
    void sweepStaleTmp() const;

    std::string root;
    std::string stamp;
    std::uint64_t maxBytes = 0;
    mutable std::atomic<bool> tmpSwept{false};
    mutable std::atomic<std::uint64_t> nHits{0};
    mutable std::atomic<std::uint64_t> nMisses{0};
    mutable std::atomic<std::uint64_t> nStores{0};
};

/** Serialize an alone-run baseline as a JSON value (exact doubles). */
void writeAloneResult(JsonWriter &w, const AloneResult &result);

/** Parse an alone-run baseline written by writeAloneResult().
 *  @throws std::runtime_error / std::invalid_argument on malformed
 *  input. */
AloneResult aloneResultFromJson(const JsonValue &v);

/** Serialize a full workload result as a JSON value (exact doubles). */
void writeWorkloadResult(JsonWriter &w,
                         const Runner::WorkloadResult &result);

/** Parse a workload result written by writeWorkloadResult().
 *  @throws std::runtime_error / std::invalid_argument on malformed
 *  input. */
Runner::WorkloadResult workloadResultFromJson(const JsonValue &v);

/** writeWorkloadResult() as a standalone JSON document string. */
std::string serializeWorkloadResult(const Runner::WorkloadResult &result);

/** Parse a document produced by serializeWorkloadResult(). */
Runner::WorkloadResult parseWorkloadResult(const std::string &text);

} // namespace dstrange::sim

#endif // DSTRANGE_SIM_RESULT_STORE_H
