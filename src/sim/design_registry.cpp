#include "sim/design_registry.h"

#include <mutex>
#include <stdexcept>

#include "common/registry_key.h"

namespace dstrange::sim {

DesignRegistry::DesignRegistry()
{
    for (SystemDesign d : kAllDesigns) {
        add(designKey(d), designName(d),
            [d](SimConfig &cfg) { applyDesign(cfg, d); });
    }
}

DesignRegistry &
DesignRegistry::instance()
{
    static DesignRegistry registry;
    return registry;
}

void
DesignRegistry::add(const std::string &key,
                    const std::string &display_name, Preset preset)
{
    validateRegistryKey("design", key);
    if (!preset)
        throw std::invalid_argument("design preset for '" + key +
                                    "' must not be empty");
    std::unique_lock<std::shared_mutex> lock(mu);
    if (!entries
             .emplace(key, Entry{display_name.empty() ? key : display_name,
                                 std::move(preset)})
             .second)
        throw std::invalid_argument("design '" + key +
                                    "' is already registered");
}

DesignRegistry::Entry
DesignRegistry::at(const std::string &name) const
{
    // Returns a copy so the preset runs lock-free (a preset that
    // registers another design from inside would otherwise deadlock).
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = entries.find(name);
    if (it == entries.end()) {
        // Fall back to display names ("DR-STRANGE" for "drstrange").
        for (auto e = entries.begin(); e != entries.end(); ++e) {
            if (e->second.displayName == name)
                return e->second;
        }
        std::string known;
        for (const auto &[k, e] : entries)
            known += (known.empty() ? "" : ", ") + k;
        throw std::out_of_range("unknown design '" + name +
                                "' (registered: " + known + ")");
    }
    return it->second;
}

void
DesignRegistry::apply(const std::string &name, SimConfig &cfg) const
{
    at(name).preset(cfg);
}

bool
DesignRegistry::contains(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    if (entries.count(name) != 0)
        return true;
    for (const auto &[key, entry] : entries)
        if (entry.displayName == name)
            return true;
    return false;
}

std::string
DesignRegistry::displayName(const std::string &name) const
{
    return at(name).displayName;
}

std::vector<std::string>
DesignRegistry::keys() const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[key, entry] : entries)
        out.push_back(key);
    return out;
}

} // namespace dstrange::sim
