#include "sim/metrics.h"

#include <algorithm>
#include <limits>
#include <cassert>

namespace dstrange::sim {

double
slowdown(const cpu::CoreStats &shared, const AloneResult &alone)
{
    if (alone.execCpuCycles <= 0.0 || shared.finishCycle == 0)
        return 1.0;
    return static_cast<double>(shared.finishCycle) / alone.execCpuCycles;
}

double
memSlowdown(const cpu::CoreStats &shared, const AloneResult &alone)
{
    constexpr double kMinAloneMcpi = 1e-3;
    if (alone.mcpi < kMinAloneMcpi)
        return slowdown(shared, alone);
    return shared.mcpi() / alone.mcpi;
}

double
unfairness(const std::vector<double> &mem_slowdowns)
{
    assert(!mem_slowdowns.empty());
    // An application whose memory requests are served faster than in its
    // alone run experiences no memory-related slowdown; the index
    // measures relative harm, so each slowdown is floored at 1.
    double lo = std::numeric_limits<double>::max();
    double hi = 1.0;
    for (double sd : mem_slowdowns) {
        const double clamped = std::max(1.0, sd);
        lo = std::min(lo, clamped);
        hi = std::max(hi, clamped);
    }
    return hi / lo;
}

double
weightedSpeedup(const std::vector<double> &ipc_shared,
                const std::vector<double> &ipc_alone)
{
    assert(ipc_shared.size() == ipc_alone.size());
    double ws = 0.0;
    for (std::size_t i = 0; i < ipc_shared.size(); ++i)
        ws += ipc_alone[i] > 0.0 ? ipc_shared[i] / ipc_alone[i] : 0.0;
    return ws;
}

} // namespace dstrange::sim
