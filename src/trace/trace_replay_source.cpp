#include "trace/trace_replay_source.h"

#include <utility>

#include "mem/memory_controller.h"

namespace dstrange::trace {

namespace {

bool
isServicePort(const TraceRecord &rec, std::int32_t service_port)
{
    return service_port >= 0 &&
           rec.port == static_cast<std::uint32_t>(service_port);
}

} // namespace

TraceReplaySource::TraceReplaySource(TraceTape recorded_tape)
    : recording(std::move(recorded_tape))
{
}

void
TraceReplaySource::tickService(Cycle now, mem::MemoryController &mc)
{
    while (cursor < recording.records.size()) {
        const TraceRecord &rec = recording.records[cursor];
        if (rec.cycle > now || !isServicePort(rec, recording.header.servicePort))
            break;
        mem::Request req;
        req.type = byteToReqType(rec.type);
        req.addr = rec.addr;
        req.core = rec.port;
        req.token = cursor;
        if (!mc.enqueue(req, now))
            break; // Degraded mode: head-of-line retry next cycle.
        ++cursor;
    }
}

void
TraceReplaySource::tickCores(Cycle now, mem::MemoryController &mc)
{
    while (cursor < recording.records.size()) {
        const TraceRecord &rec = recording.records[cursor];
        // A service-port record at the head belongs to the *next*
        // cycle's pre-tick phase, never to this post-tick phase.
        if (rec.cycle > now || isServicePort(rec, recording.header.servicePort))
            break;
        mem::Request req;
        req.type = byteToReqType(rec.type);
        req.addr = rec.addr;
        req.core = rec.port;
        req.token = cursor;
        if (!mc.enqueue(req, now))
            break; // Degraded mode: head-of-line retry next cycle.
        ++cursor;
    }
}

Cycle
TraceReplaySource::nextEventCycle() const
{
    return finished() ? kNoEvent : recording.records[cursor].cycle;
}

} // namespace dstrange::trace
