/**
 * @file
 * Replays a recorded request tape into a memory controller, standing in
 * for the cores (and the service driver) of the original run. Because
 * the controller's evolution is a pure function of its configuration
 * and the accepted-request stream, replaying the stream with the same
 * configuration reproduces every controller-side metric bit-identically
 * — at a fraction of the recorded run's cost, since no core or service
 * model executes.
 */

#ifndef DSTRANGE_TRACE_TRACE_REPLAY_SOURCE_H
#define DSTRANGE_TRACE_TRACE_REPLAY_SOURCE_H

#include <cstddef>

#include "trace/trace_reader.h"

namespace dstrange::mem {
class MemoryController;
}

namespace dstrange::trace {

/**
 * Cursor over a TraceTape that re-enqueues records at their recorded
 * cycles, preserving the two enqueue phases of sim::System's tick:
 * service-port records enqueue before the controller tick of their
 * cycle (tickService) and every other record after it (tickCores),
 * exactly as the original issuers did. One cursor suffices because the
 * recorder appends in enqueue order, which puts a cycle's service
 * records ahead of its core records.
 *
 * With the recorded configuration a re-enqueue can never fail (the
 * original enqueue succeeded against the same controller state); should
 * a caller replay into a smaller-queued controller anyway, the head
 * record retries next cycle and the tape degrades to a load generator
 * instead of a bit-identical replay.
 */
class TraceReplaySource
{
  public:
    explicit TraceReplaySource(TraceTape recorded_tape);

    const TraceTape &tape() const { return recording; }

    /** Enqueue due service-port records (call before mc.tick(now)). */
    void tickService(Cycle now, mem::MemoryController &mc);

    /** Enqueue due core-port records (call after mc.tick(now)). */
    void tickCores(Cycle now, mem::MemoryController &mc);

    bool finished() const { return cursor >= recording.records.size(); }

    /** Arrival cycle of the head record; kNoEvent when exhausted. */
    Cycle nextEventCycle() const;

    /** Bus cycle the recorded run stopped at (the replay run bound). */
    Cycle endCycle() const { return recording.endCycle; }

    std::uint64_t replayedCount() const { return cursor; }

  private:
    TraceTape recording;
    std::size_t cursor = 0;
};

} // namespace dstrange::trace

#endif // DSTRANGE_TRACE_TRACE_REPLAY_SOURCE_H
