#include "trace/trace_writer.h"

#include <cstdio>
#include <stdexcept>

namespace dstrange::trace {

TraceWriter::TraceWriter(const std::string &path, const TraceHeader &header)
    : targetPath(path), tmpPath(path + ".tmp"),
      out(tmpPath, std::ios::binary | std::ios::trunc),
      fnv(fnv1a64(std::string_view{}))
{
    if (!out)
        throw std::runtime_error("cannot create trace file '" + tmpPath +
                                 "'");
    std::string head;
    putU32(head, kMagic);
    putU32(head, kVersion);
    putU32(head, static_cast<std::uint32_t>(header.ports.size()));
    putI32(head, header.servicePort);
    for (const TracePortInfo &p : header.ports) {
        putI32(head, p.priority);
        head.push_back(p.hasPriority ? 1 : 0);
    }
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    if (!out)
        throw std::runtime_error("cannot write trace header to '" +
                                 tmpPath + "'");
}

TraceWriter::~TraceWriter()
{
    if (!finalized) {
        out.close();
        std::remove(tmpPath.c_str());
    }
}

void
TraceWriter::append(const TraceRecord &rec)
{
    const std::string bytes = encodeRecord(rec);
    fnv = fnv1a64Update(fnv, bytes);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ++nRecords;
}

void
TraceWriter::finalize(Cycle end_cycle)
{
    if (finalized)
        return;
    std::string foot;
    putU32(foot, kFooterMagic);
    putU64(foot, nRecords);
    putU64(foot, end_cycle);
    putU64(foot, fnv);
    out.write(foot.data(), static_cast<std::streamsize>(foot.size()));
    out.flush();
    if (!out)
        throw std::runtime_error("cannot write trace footer to '" +
                                 tmpPath + "'");
    out.close();
    if (std::rename(tmpPath.c_str(), targetPath.c_str()) != 0)
        throw std::runtime_error("cannot rename '" + tmpPath + "' to '" +
                                 targetPath + "'");
    finalized = true;
}

} // namespace dstrange::trace
