/**
 * @file
 * The binary request-trace format shared by the writer and the reader:
 * a versioned little-endian container for the controller-boundary
 * request stream (one record per *accepted* enqueue — cycle, address,
 * type, port, priority), framed by a header carrying the port topology
 * and a footer carrying the record count, the final simulated cycle,
 * and an FNV-1a fingerprint of the record bytes.
 *
 * Layout (all integers little-endian, no padding):
 *
 *   header   u32 magic ("DSRT")     u32 version (=1)
 *            u32 numPorts           i32 servicePort (-1 = none)
 *            numPorts x { i32 priority, u8 hasPriority }
 *   records  recordCount x { u64 cycle, u64 addr, u8 type, u8 port,
 *                            i32 priority }              (22 bytes)
 *   footer   u32 footerMagic ("DSRF")
 *            u64 recordCount        u64 endCycle
 *            u64 fnv1a64 over the raw record bytes
 *
 * The footer doubles as the crash marker: a file without a valid
 * footer (the writer appends it only in finalize(), after which the
 * tmp file is renamed into place) is rejected by the reader, so a
 * torn write can never replay as a silently shorter run.
 */

#ifndef DSTRANGE_TRACE_TRACE_FORMAT_H
#define DSTRANGE_TRACE_TRACE_FORMAT_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/request.h"

namespace dstrange::trace {

inline constexpr std::uint32_t kMagic = 0x54525344;       ///< "DSRT" (LE).
inline constexpr std::uint32_t kFooterMagic = 0x46525344; ///< "DSRF" (LE).
inline constexpr std::uint32_t kVersion = 1;

/** Fixed encoded sizes (the structs below are in-memory forms only). */
inline constexpr std::size_t kRecordBytes = 22;
inline constexpr std::size_t kHeaderFixedBytes = 16;
inline constexpr std::size_t kPortEntryBytes = 5;
inline constexpr std::size_t kFooterBytes = 28;

/** One accepted controller-boundary request. */
struct TraceRecord
{
    Cycle cycle = 0;
    Addr addr = 0;
    std::uint8_t type = 0; ///< 0 = Read, 1 = Write, 2 = Rng.
    std::uint8_t port = 0; ///< Issuing port (core index or service port).
    std::int32_t priority = 0; ///< The port's OS priority (0 if unset).
};

/** Per-port configuration captured at record time. */
struct TracePortInfo
{
    std::int32_t priority = 0;
    bool hasPriority = false; ///< Was a priority explicitly configured?
};

/** Port topology of the recorded system. */
struct TraceHeader
{
    /** Enqueuing ports; cores first, the service driver (if any) last. */
    std::vector<TracePortInfo> ports;
    /** Port index of the service driver, or -1 when none was present. */
    std::int32_t servicePort = -1;
};

/** Stable wire encoding of a mem::ReqType. */
inline std::uint8_t
reqTypeToByte(mem::ReqType type)
{
    switch (type) {
      case mem::ReqType::Read:
        return 0;
      case mem::ReqType::Write:
        return 1;
      case mem::ReqType::Rng:
        return 2;
    }
    throw std::logic_error("unrepresentable request type");
}

/** Inverse of reqTypeToByte; throws std::runtime_error on junk. */
inline mem::ReqType
byteToReqType(std::uint8_t b)
{
    switch (b) {
      case 0:
        return mem::ReqType::Read;
      case 1:
        return mem::ReqType::Write;
      case 2:
        return mem::ReqType::Rng;
      default:
        throw std::runtime_error("trace record has unknown request type " +
                                 std::to_string(static_cast<unsigned>(b)));
    }
}

/** Append @p v to @p out as little-endian bytes (shift-based, so the
 *  encoding is identical on any host endianness). */
inline void
putU32(std::string &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putU64(std::string &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putI32(std::string &out, std::int32_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
}

/** Encode one record into its 22-byte wire form. */
inline std::string
encodeRecord(const TraceRecord &rec)
{
    std::string out;
    out.reserve(kRecordBytes);
    putU64(out, rec.cycle);
    putU64(out, rec.addr);
    out.push_back(static_cast<char>(rec.type));
    out.push_back(static_cast<char>(rec.port));
    putI32(out, rec.priority);
    return out;
}

/** Fold @p data into a streaming FNV-1a state (basis = dstrange::fnv1a64
 *  of the empty string). */
inline std::uint64_t
fnv1a64Update(std::uint64_t h, std::string_view data)
{
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace dstrange::trace

#endif // DSTRANGE_TRACE_TRACE_FORMAT_H
