/**
 * @file
 * Streaming binary trace recorder for the controller-boundary request
 * stream. Writes to `<path>.tmp` and renames into place on finalize()
 * (the sim::ResultStore crash-safety idiom), fingerprinting the record
 * bytes with FNV-1a as they stream so the reader can detect corruption
 * without a second pass.
 */

#ifndef DSTRANGE_TRACE_TRACE_WRITER_H
#define DSTRANGE_TRACE_TRACE_WRITER_H

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/trace_format.h"

namespace dstrange::trace {

/**
 * Records one run's accepted requests. Append order must be the
 * enqueue-success order (sim::System guarantees this by hooking
 * mem::MemoryController's trace sink), because replay re-enqueues
 * records in file order.
 */
class TraceWriter
{
  public:
    /**
     * Open `<path>.tmp` and write the header.
     * @throws std::runtime_error when the file cannot be created.
     */
    TraceWriter(const std::string &path, const TraceHeader &header);

    /** Remove the tmp file if finalize() was never reached. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (streams its bytes and updates the FNV state). */
    void append(const TraceRecord &rec);

    /**
     * Write the footer, flush, and atomically rename the tmp file onto
     * the target path.
     * @throws std::runtime_error when any write or the rename fails.
     */
    void finalize(Cycle end_cycle);

    std::uint64_t recordCount() const { return nRecords; }

  private:
    std::string targetPath;
    std::string tmpPath;
    std::ofstream out;
    std::uint64_t nRecords = 0;
    std::uint64_t fnv;
    bool finalized = false;
};

} // namespace dstrange::trace

#endif // DSTRANGE_TRACE_TRACE_WRITER_H
