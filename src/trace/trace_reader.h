/**
 * @file
 * Loader for recorded request traces. Every malformation — wrong magic
 * or version, a truncated or torn file, a record-count or fingerprint
 * mismatch — is a hard std::runtime_error, never a silently shorter or
 * garbled tape: replay results are only meaningful when the tape is
 * exactly what the recorder wrote.
 */

#ifndef DSTRANGE_TRACE_TRACE_READER_H
#define DSTRANGE_TRACE_TRACE_READER_H

#include <string>
#include <vector>

#include "trace/trace_format.h"

namespace dstrange::trace {

/** A fully-loaded, verified trace. */
struct TraceTape
{
    TraceHeader header;
    std::vector<TraceRecord> records;
    /** Bus cycle the recorded run stopped at (the replay run bound). */
    Cycle endCycle = 0;

    unsigned numPorts() const
    {
        return static_cast<unsigned>(header.ports.size());
    }
};

/**
 * Load and verify @p path.
 * @throws std::runtime_error on I/O failure or any format violation.
 */
TraceTape loadTrace(const std::string &path);

} // namespace dstrange::trace

#endif // DSTRANGE_TRACE_TRACE_READER_H
