#include "trace/trace_reader.h"

#include <fstream>
#include <sstream>

namespace dstrange::trace {

namespace {

std::uint32_t
getU32(const std::string &data, std::size_t off)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data[off + i]))
             << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::string &data, std::size_t off)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data[off + i]))
             << (8 * i);
    return v;
}

std::int32_t
getI32(const std::string &data, std::size_t off)
{
    return static_cast<std::int32_t>(getU32(data, off));
}

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw std::runtime_error("bad trace file '" + path + "': " + why);
}

} // namespace

TraceTape
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open trace file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();

    if (data.size() < kHeaderFixedBytes + kFooterBytes)
        fail(path, "truncated (smaller than header + footer)");
    if (getU32(data, 0) != kMagic)
        fail(path, "wrong magic (not a drstrange request trace)");
    const std::uint32_t version = getU32(data, 4);
    if (version != kVersion)
        fail(path, "unsupported version " + std::to_string(version) +
                       " (supported: " + std::to_string(kVersion) + ")");

    TraceTape tape;
    const std::uint32_t n_ports = getU32(data, 8);
    tape.header.servicePort = getI32(data, 12);
    // A port count beyond any real topology means the field is garbage;
    // bound it before using it to size the header.
    if (n_ports > 4096)
        fail(path, "implausible port count " + std::to_string(n_ports));
    if (tape.header.servicePort >= 0 &&
        static_cast<std::uint32_t>(tape.header.servicePort) >= n_ports)
        fail(path, "service port out of range");

    const std::size_t header_size =
        kHeaderFixedBytes + n_ports * kPortEntryBytes;
    if (data.size() < header_size + kFooterBytes)
        fail(path, "truncated inside the port table");
    for (std::uint32_t i = 0; i < n_ports; ++i) {
        const std::size_t off = kHeaderFixedBytes + i * kPortEntryBytes;
        TracePortInfo p;
        p.priority = getI32(data, off);
        p.hasPriority = data[off + 4] != 0;
        tape.header.ports.push_back(p);
    }

    const std::size_t body_size = data.size() - header_size - kFooterBytes;
    if (body_size % kRecordBytes != 0)
        fail(path, "record region is not a whole number of records "
                   "(truncated or torn write)");
    const std::size_t n_records = body_size / kRecordBytes;

    const std::size_t foot = data.size() - kFooterBytes;
    if (getU32(data, foot) != kFooterMagic)
        fail(path, "missing footer (recording did not finalize)");
    if (getU64(data, foot + 4) != n_records)
        fail(path, "record count mismatch (footer says " +
                       std::to_string(getU64(data, foot + 4)) +
                       ", file holds " + std::to_string(n_records) + ")");
    tape.endCycle = getU64(data, foot + 12);
    const std::uint64_t want_fnv = getU64(data, foot + 20);
    const std::uint64_t got_fnv = fnv1a64(
        std::string_view(data).substr(header_size, body_size));
    if (got_fnv != want_fnv)
        fail(path, "fingerprint mismatch (file corrupted)");

    tape.records.reserve(n_records);
    Cycle prev_cycle = 0;
    for (std::size_t i = 0; i < n_records; ++i) {
        const std::size_t off = header_size + i * kRecordBytes;
        TraceRecord rec;
        rec.cycle = getU64(data, off);
        rec.addr = getU64(data, off + 8);
        rec.type = static_cast<std::uint8_t>(data[off + 16]);
        rec.port = static_cast<std::uint8_t>(data[off + 17]);
        rec.priority = getI32(data, off + 18);
        byteToReqType(rec.type); // Validate the type byte.
        if (rec.port >= n_ports)
            fail(path, "record " + std::to_string(i) +
                           " names port " + std::to_string(rec.port) +
                           " of " + std::to_string(n_ports));
        if (rec.cycle < prev_cycle)
            fail(path, "record " + std::to_string(i) +
                           " goes backwards in time");
        prev_cycle = rec.cycle;
        tape.records.push_back(rec);
    }
    return tape;
}

} // namespace dstrange::trace
