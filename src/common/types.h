/**
 * @file
 * Fundamental type aliases shared by every subsystem.
 */

#ifndef DSTRANGE_COMMON_TYPES_H
#define DSTRANGE_COMMON_TYPES_H

#include <cstdint>
#include <string_view>

namespace dstrange {

/** A point in time or a duration, measured in DRAM bus cycles (800 MHz). */
using Cycle = std::uint64_t;

/** A point in time or a duration, measured in CPU cycles (4 GHz). */
using CpuCycle = std::uint64_t;

/** A physical byte address. */
using Addr = std::uint64_t;

/** Identifier of a core (and of the application pinned to it). */
using CoreId = std::uint32_t;

/** Number of CPU cycles that elapse per DRAM bus cycle (4 GHz / 800 MHz). */
inline constexpr unsigned kCpuCyclesPerBusCycle = 5;

/**
 * Event-horizon sentinel: "this component schedules no future event on
 * its own". Used by the cycle-skipping fast-forward machinery; a
 * component returning kNoEvent changes state only in reaction to other
 * components' events (e.g. a stalled core waiting for a completion).
 */
inline constexpr Cycle kNoEvent = ~Cycle{0};

/** DRAM bus frequency in Hz (DDR3-1600: 800 MHz bus clock). */
inline constexpr double kBusFreqHz = 800e6;

/** CPU core frequency in Hz. */
inline constexpr double kCpuFreqHz = 4e9;

/** Cache-line size in bytes; all memory requests are one line. */
inline constexpr unsigned kLineBytes = 64;

/**
 * 64-bit FNV-1a hash. Unlike std::hash, the result is pinned by the
 * algorithm itself — identical on every platform, process, and library
 * build — so it is safe to use for cross-process agreements (sweep
 * shard ownership, persistent cache file names).
 */
inline constexpr std::uint64_t
fnv1a64(std::string_view data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace dstrange

#endif // DSTRANGE_COMMON_TYPES_H
