/**
 * @file
 * Minimal JSON parser, the read-side counterpart of JsonWriter. Parses
 * the documents this repo itself writes (BENCH_*.json perf records,
 * persistent alone-run cache files) into an immutable value tree.
 * Object members preserve insertion order, so a document round-tripped
 * through JsonWriter compares field-for-field in the original order —
 * the property run_all's shard merge relies on when it diffs per-cell
 * metric lists.
 */

#ifndef DSTRANGE_COMMON_JSON_READER_H
#define DSTRANGE_COMMON_JSON_READER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dstrange {

/**
 * One parsed JSON value: null, bool, number, string, array, or object.
 * Accessors throw std::runtime_error on a kind mismatch so malformed
 * documents surface as exceptions, never as silently-defaulted fields.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /**
     * Parse a complete JSON document (trailing garbage is an error).
     * @throws std::invalid_argument on malformed input, with the byte
     *         offset of the first error in the message.
     */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }

    /** @throws std::runtime_error unless the value is a Bool. */
    bool asBool() const;
    /** @throws std::runtime_error unless the value is a Number. */
    double asDouble() const;
    /**
     * Number as an unsigned integer, parsed from the original token so
     * 64-bit counters survive beyond double's 2^53 integer range.
     * @throws std::runtime_error unless the value is a non-negative
     *         integer Number.
     */
    std::uint64_t asU64() const;
    /** @throws std::runtime_error unless the value is a String. */
    const std::string &asString() const;
    /** @throws std::runtime_error unless the value is an Array. */
    const std::vector<JsonValue> &array() const;
    /** Object members in document order.
     *  @throws std::runtime_error unless the value is an Object. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** First member named @p key, or nullptr when absent (or when the
     *  value is not an object). */
    const JsonValue *find(const std::string &key) const;
    /** Like find(), but @throws std::runtime_error naming the missing
     *  @p key — for fields a document must have. */
    const JsonValue &at(const std::string &key) const;

  private:
    friend class JsonParser;

    Kind k = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text; ///< String payload, or the raw number token.
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;
};

} // namespace dstrange

#endif // DSTRANGE_COMMON_JSON_READER_H
