/**
 * @file
 * Fixed-capacity FIFO ring buffer. Used for the random number buffer, the
 * RL predictor's idle-period history, and bounded bookkeeping queues.
 */

#ifndef DSTRANGE_COMMON_RING_BUFFER_H
#define DSTRANGE_COMMON_RING_BUFFER_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace dstrange {

/**
 * A bounded FIFO with O(1) push/pop and stable capacity. Unlike
 * std::deque it never allocates after construction, which keeps the
 * per-cycle simulator loop allocation-free.
 */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity)
        : slots(capacity), head(0), count(0)
    {
        assert(capacity > 0 && "ring buffer needs non-zero capacity");
    }

    /** Number of elements currently stored. */
    std::size_t size() const { return count; }

    /** Maximum number of elements. */
    std::size_t capacity() const { return slots.size(); }

    bool empty() const { return count == 0; }
    bool full() const { return count == slots.size(); }

    /**
     * Append an element at the back.
     * @retval true on success, false if the buffer is full.
     */
    bool
    push(const T &value)
    {
        if (full())
            return false;
        slots[(head + count) % slots.size()] = value;
        ++count;
        return true;
    }

    /** Oldest element. @pre !empty() */
    const T &
    front() const
    {
        assert(!empty());
        return slots[head];
    }

    /** Remove the oldest element. @pre !empty() */
    void
    pop()
    {
        assert(!empty());
        head = (head + 1) % slots.size();
        --count;
    }

    /** Random access from the front (0 == oldest). @pre i < size() */
    const T &
    at(std::size_t i) const
    {
        assert(i < count);
        return slots[(head + i) % slots.size()];
    }

    /** Drop all elements. */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::vector<T> slots;
    std::size_t head;
    std::size_t count;
};

} // namespace dstrange

#endif // DSTRANGE_COMMON_RING_BUFFER_H
