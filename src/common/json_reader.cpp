#include "common/json_reader.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace dstrange {

namespace {

[[noreturn]] void
kindError(const char *want, JsonValue::Kind have)
{
    const char *names[] = {"null", "bool",  "number",
                           "string", "array", "object"};
    throw std::runtime_error(std::string("JSON value is ") +
                             names[static_cast<int>(have)] + ", expected " +
                             want);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (k != Kind::Bool)
        kindError("bool", k);
    return boolean;
}

double
JsonValue::asDouble() const
{
    if (k != Kind::Number)
        kindError("number", k);
    return number;
}

std::uint64_t
JsonValue::asU64() const
{
    if (k != Kind::Number)
        kindError("number", k);
    // Reparse the original token: doubles lose integer precision past
    // 2^53, and counters (cycle counts, cache statistics) are uint64.
    if (text.empty() || text[0] == '-' ||
        text.find_first_of(".eE") != std::string::npos)
        kindError("non-negative integer", k);
    return std::strtoull(text.c_str(), nullptr, 10);
}

const std::string &
JsonValue::asString() const
{
    if (k != Kind::String)
        kindError("string", k);
    return text;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    if (k != Kind::Array)
        kindError("array", k);
    return items;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (k != Kind::Object)
        kindError("object", k);
    return fields;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (k != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : fields)
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw std::runtime_error("JSON object has no member '" + key +
                                 "'");
    return *v;
}

/** Recursive-descent parser over the input string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &input) : in(input) {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue(0);
        skipWs();
        if (pos != in.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    // Our own writer nests a handful of levels; 128 is far beyond any
    // document this repo produces while keeping hostile input from
    // overflowing the stack.
    static constexpr int kMaxDepth = 128;

    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::invalid_argument("JSON parse error at offset " +
                                    std::to_string(pos) + ": " + what);
    }

    void skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r'))
            ++pos;
    }

    char peek()
    {
        if (pos >= in.size())
            fail("unexpected end of input");
        return in[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (in.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    unsigned parseHex4()
    {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
            ++pos;
        }
        return cp;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= in.size())
                fail("unterminated string");
            const char c = in[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos; // consume the backslash
            const char esc = peek();
            ++pos;
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = parseHex4();
                // Surrogate pair: a high surrogate must be followed by
                // \uDC00-\uDFFF; combine into one code point.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (pos + 1 >= in.size() || in[pos] != '\\' ||
                        in[pos + 1] != 'u')
                        fail("unpaired UTF-16 surrogate");
                    pos += 2;
                    const unsigned lo = parseHex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired UTF-16 surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape sequence");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < in.size() &&
               (std::isdigit(static_cast<unsigned char>(in[pos])) ||
                in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E' ||
                in[pos] == '+' || in[pos] == '-'))
            ++pos;
        const std::string token = in.substr(start, pos - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            fail("malformed number '" + token + "'");
        JsonValue out;
        out.k = JsonValue::Kind::Number;
        out.number = v;
        out.text = token;
        return out;
    }

    JsonValue parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        skipWs();
        const char c = peek();
        JsonValue out;
        switch (c) {
          case '{': {
            ++pos;
            out.k = JsonValue::Kind::Object;
            skipWs();
            if (peek() == '}') {
                ++pos;
                return out;
            }
            for (;;) {
                skipWs();
                std::string name = parseString();
                skipWs();
                expect(':');
                out.fields.emplace_back(std::move(name),
                                        parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return out;
            }
          }
          case '[': {
            ++pos;
            out.k = JsonValue::Kind::Array;
            skipWs();
            if (peek() == ']') {
                ++pos;
                return out;
            }
            for (;;) {
                out.items.push_back(parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return out;
            }
          }
          case '"':
            out.k = JsonValue::Kind::String;
            out.text = parseString();
            return out;
          case 't':
            if (!consumeLiteral("true"))
                fail("invalid literal");
            out.k = JsonValue::Kind::Bool;
            out.boolean = true;
            return out;
          case 'f':
            if (!consumeLiteral("false"))
                fail("invalid literal");
            out.k = JsonValue::Kind::Bool;
            out.boolean = false;
            return out;
          case 'n':
            if (!consumeLiteral("null"))
                fail("invalid literal");
            return out;
          default:
            if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
                return parseNumber();
            fail("unexpected character");
        }
    }

    const std::string &in;
    std::size_t pos = 0;
};

JsonValue
JsonValue::parse(const std::string &input)
{
    return JsonParser(input).parseDocument();
}

} // namespace dstrange
