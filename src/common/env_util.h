/**
 * @file
 * Environment-variable parsing shared by the bench harness and the
 * examples, so every DS_* override applies the same typo-safety policy.
 */

#ifndef DSTRANGE_COMMON_ENV_UTIL_H
#define DSTRANGE_COMMON_ENV_UTIL_H

#include <cstdint>
#include <cstdlib>
#include <string_view>

namespace dstrange {

/**
 * Read an unsigned integer from the environment. Keeps the fallback on
 * an unset, unparseable, or zero value so a typo'd override cannot
 * silently produce a degenerate run.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    // strtoull would truncate "2e5" to 2 and wrap "-1" to huge; both
    // must fall back rather than yield a degenerate run.
    if (*env == '\0' || *env == '-' || *env == '+')
        return fallback;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 10);
    if (end == nullptr || *end != '\0')
        return fallback;
    return v > 0 ? v : fallback;
}

/**
 * Read a boolean flag from the environment. "0", "false", "off" and
 * "no" (and the empty string) disable; any other value enables; unset
 * keeps the fallback.
 */
inline bool
envFlag(const char *name, bool fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    const std::string_view v(env);
    return !(v.empty() || v == "0" || v == "false" || v == "off" ||
             v == "no");
}

} // namespace dstrange

#endif // DSTRANGE_COMMON_ENV_UTIL_H
