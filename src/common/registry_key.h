/**
 * @file
 * Shared key validation for the string-keyed policy registries
 * (mem::SchedulerRegistry, strange::PredictorRegistry,
 * sim::DesignRegistry). Keys travel through the whitespace-tokenized
 * key=value config text (sim/config_text.h), so they must stay
 * single-token and '='-free.
 */

#ifndef DSTRANGE_COMMON_REGISTRY_KEY_H
#define DSTRANGE_COMMON_REGISTRY_KEY_H

#include <cctype>
#include <stdexcept>
#include <string>

namespace dstrange {

/** @throws std::invalid_argument on an empty or non-serializable key. */
inline void
validateRegistryKey(const char *what, const std::string &key)
{
    if (key.empty())
        throw std::invalid_argument(std::string(what) +
                                    " key must not be empty");
    for (char c : key) {
        if (c == '=' || std::isspace(static_cast<unsigned char>(c)))
            throw std::invalid_argument(
                std::string(what) + " key '" + key +
                "' must not contain whitespace or '='");
    }
}

} // namespace dstrange

#endif // DSTRANGE_COMMON_REGISTRY_KEY_H
