/**
 * @file
 * Minimal fixed-width table printer for the benchmark harness, so that
 * every bench binary emits the paper's rows/series in a uniform format.
 */

#ifndef DSTRANGE_COMMON_TABLE_PRINTER_H
#define DSTRANGE_COMMON_TABLE_PRINTER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace dstrange {

/**
 * Collects rows of string cells and prints them with aligned columns.
 * Numeric helpers format with a fixed precision so series are easy to
 * compare against the paper's figures.
 */
class TablePrinter
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row. Rows may be ragged; short rows are padded. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 3);

    /** Render the table to the stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace dstrange

#endif // DSTRANGE_COMMON_TABLE_PRINTER_H
