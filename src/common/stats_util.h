/**
 * @file
 * Small statistics helpers used by the metrics layer and the benchmark
 * harness: means, medians, quartiles and box-plot summaries matching the
 * paper's figures.
 */

#ifndef DSTRANGE_COMMON_STATS_UTIL_H
#define DSTRANGE_COMMON_STATS_UTIL_H

#include <vector>

#include "common/latency_histogram.h"

namespace dstrange {

/** Five-number box-plot summary plus outlier count (1.5 IQR rule). */
struct BoxSummary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    /** Values above q3 + 1.5*(q3-q1), as the paper's Figure 2 marks. */
    std::size_t highOutliers = 0;
};

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &values);

/** Geometric mean; 0 for an empty input. @pre all values > 0 */
double geomean(const std::vector<double> &values);

/**
 * Linear-interpolation percentile.
 * @param values sample set (copied and sorted internally)
 * @param p percentile in [0, 1]
 */
double percentile(std::vector<double> values, double p);

/**
 * Exact nearest-rank percentile: the smallest sample such that at least
 * ceil(p * n) samples are <= it — an actual member of the sample set,
 * never an interpolated value, matching LatencyHistogram::percentile's
 * convention on raw samples.
 * @param values sample set (copied and sorted internally); 0 when empty
 * @param p percentile in [0, 1] (clamped)
 */
double exactPercentile(std::vector<double> values, double p);

/**
 * Merge latency histograms (e.g. per-shard service histograms) into one.
 * Bucket counts add, so percentiles of the merge are exactly those of
 * the pooled sample set; an empty input yields an empty histogram.
 */
LatencyHistogram mergeHistograms(const std::vector<LatencyHistogram> &parts);

/** Compute the box-plot summary of a sample set. */
BoxSummary boxSummary(const std::vector<double> &values);

} // namespace dstrange

#endif // DSTRANGE_COMMON_STATS_UTIL_H
