#include "common/stats_util.h"

#include <algorithm>
#include <cmath>

namespace dstrange {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    if (p >= 1.0)
        return values.back();
    const double pos = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

double
exactPercentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double n = static_cast<double>(values.size());
    const double clamped = std::min(std::max(p, 0.0), 1.0);
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(clamped * n));
    if (rank < 1)
        rank = 1;
    if (rank > values.size())
        rank = values.size();
    return values[rank - 1];
}

LatencyHistogram
mergeHistograms(const std::vector<LatencyHistogram> &parts)
{
    LatencyHistogram merged;
    for (const LatencyHistogram &part : parts)
        merged.merge(part);
    return merged;
}

BoxSummary
boxSummary(const std::vector<double> &values)
{
    BoxSummary box;
    if (values.empty())
        return box;
    std::vector<double> sorted(values);
    std::sort(sorted.begin(), sorted.end());
    box.min = sorted.front();
    box.max = sorted.back();
    box.q1 = percentile(sorted, 0.25);
    box.median = percentile(sorted, 0.50);
    box.q3 = percentile(sorted, 0.75);
    const double fence = box.q3 + 1.5 * (box.q3 - box.q1);
    for (auto it = sorted.rbegin(); it != sorted.rend() && *it > fence; ++it)
        ++box.highOutliers;
    return box;
}

} // namespace dstrange
