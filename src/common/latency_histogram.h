/**
 * @file
 * Fixed-bucket log-linear latency histogram (HDR-histogram style) for
 * the open-loop service layer's tail-latency metrics. Buckets are a
 * pure function of the recorded value — integer counts, no floating
 * accumulation — so percentiles are deterministic regardless of
 * recording order and two histograms merge by plain count addition.
 *
 * Layout: values below 2^kLinearBits land in exact single-value
 * buckets; above that each power-of-two octave is split into
 * 2^kSubBits sub-buckets, bounding the relative quantization error at
 * 2^-kSubBits (~1.6%). Percentiles are nearest-rank and report the
 * bucket's upper bound, so p50 <= p99 <= p999 <= max() always holds.
 */

#ifndef DSTRANGE_COMMON_LATENCY_HISTOGRAM_H
#define DSTRANGE_COMMON_LATENCY_HISTOGRAM_H

#include <array>
#include <bit>
#include <cstdint>

#include "common/types.h"

namespace dstrange {

class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^6 = 64 sub-buckets per octave. */
    static constexpr unsigned kSubBits = 6;
    /** Values below 2^(kSubBits+1) are counted exactly. */
    static constexpr unsigned kLinearBits = kSubBits + 1;
    /** One linear region + one (shift+1) band per remaining octave. */
    static constexpr std::size_t kBuckets =
        (64 - kSubBits + 1) << kSubBits;

    /** Bucket index of @p v (total over all uint64 values). */
    static constexpr std::size_t
    bucketOf(std::uint64_t v)
    {
        if (v < (std::uint64_t{1} << kLinearBits))
            return static_cast<std::size_t>(v);
        const unsigned msb = std::bit_width(v) - 1;
        const unsigned shift = msb - kSubBits;
        return (static_cast<std::size_t>(shift + 1) << kSubBits) |
               static_cast<std::size_t>((v >> shift) &
                                        ((1u << kSubBits) - 1));
    }

    /** Largest value mapping to bucket @p idx (the reported quantile). */
    static constexpr std::uint64_t
    bucketUpperBound(std::size_t idx)
    {
        if (idx < (std::size_t{1} << kLinearBits))
            return static_cast<std::uint64_t>(idx);
        const unsigned shift =
            static_cast<unsigned>(idx >> kSubBits) - 1;
        const std::uint64_t base =
            ((std::uint64_t{1} << kSubBits) + (idx & ((1u << kSubBits) - 1)))
            << shift;
        return base + ((std::uint64_t{1} << shift) - 1);
    }

    void
    record(std::uint64_t v)
    {
        counts[bucketOf(v)]++;
        total++;
        sum += v;
        if (total == 1 || v < minValue)
            minValue = v;
        if (v > maxValue)
            maxValue = v;
    }

    std::uint64_t count() const { return total; }
    std::uint64_t valueSum() const { return sum; }
    std::uint64_t min() const { return total == 0 ? 0 : minValue; }
    std::uint64_t max() const { return maxValue; }
    double
    mean() const
    {
        return total == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(total);
    }

    /**
     * Nearest-rank percentile for @p p in (0, 1]: the upper bound of
     * the bucket holding the ceil(p * count)-th smallest sample.
     * Exact for values below 2^kLinearBits; within 2^-kSubBits above.
     * Returns 0 for an empty histogram.
     */
    std::uint64_t
    percentile(double p) const
    {
        if (total == 0)
            return 0;
        // ceil(p * total) without float-rounding surprises at p = 1.
        std::uint64_t rank = static_cast<std::uint64_t>(
            p * static_cast<double>(total));
        if (static_cast<double>(rank) < p * static_cast<double>(total))
            ++rank;
        if (rank == 0)
            rank = 1;
        if (rank > total)
            rank = total;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen >= rank)
                return bucketUpperBound(i);
        }
        return maxValue; // Unreachable: seen reaches total.
    }

    /** Add @p other's counts into this histogram (exact: integers). */
    void
    merge(const LatencyHistogram &other)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            counts[i] += other.counts[i];
        if (other.total > 0) {
            if (total == 0 || other.minValue < minValue)
                minValue = other.minValue;
            if (other.maxValue > maxValue)
                maxValue = other.maxValue;
        }
        total += other.total;
        sum += other.sum;
    }

    /** Order-independent FNV fingerprint (lockstep verification). */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        auto mix = [&h](std::uint64_t v) {
            for (int i = 0; i < 8; ++i) {
                h ^= (v >> (8 * i)) & 0xff;
                h *= 0x100000001b3ull;
            }
        };
        mix(total);
        mix(sum);
        mix(minValue);
        mix(maxValue);
        for (std::size_t i = 0; i < kBuckets; ++i) {
            if (counts[i] != 0) {
                mix(i);
                mix(counts[i]);
            }
        }
        return h;
    }

  private:
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    std::uint64_t minValue = 0;
    std::uint64_t maxValue = 0;
};

} // namespace dstrange

#endif // DSTRANGE_COMMON_LATENCY_HISTOGRAM_H
