/**
 * @file
 * Deterministic pseudo-random generators used for workload synthesis and
 * for simulating physical entropy. All simulator randomness flows through
 * these so that every experiment is bit-reproducible.
 */

#ifndef DSTRANGE_COMMON_RNG_H
#define DSTRANGE_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace dstrange {

/**
 * SplitMix64: a tiny, high-quality 64-bit mixer. Used to seed other
 * generators and for cheap stateless hashing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Return the next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/** Stateless 64-bit hash with the same mixing function as SplitMix64. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256**: fast all-purpose generator with 256-bit state. This is the
 * simulator's stand-in for the physical entropy harvested from DRAM timing
 * failures (see trng/entropy_source.h) and the driver of all synthetic
 * trace generation.
 */
class Xoshiro256ss
{
  public:
    explicit Xoshiro256ss(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    /** Return the next 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Lemire-style multiply-shift reduction; the tiny bias is
        // irrelevant for simulation and keeps the draw branch-free.
#if defined(__SIZEOF_INT128__)
        __extension__ typedef unsigned __int128 uint128;
        return static_cast<std::uint64_t>(
            (static_cast<uint128>(next()) * bound) >> 64);
#else
        // No 128-bit type: compute the high 64 bits of the 64x64
        // product from 32-bit halves (same result as the int128 path).
        const std::uint64_t x = next();
        const std::uint64_t x_lo = x & 0xffffffffu;
        const std::uint64_t x_hi = x >> 32;
        const std::uint64_t b_lo = bound & 0xffffffffu;
        const std::uint64_t b_hi = bound >> 32;
        const std::uint64_t mid = x_hi * b_lo + ((x_lo * b_lo) >> 32);
        return x_hi * b_hi + (mid >> 32) +
               ((x_lo * b_hi + (mid & 0xffffffffu)) >> 32);
#endif
    }

    /**
     * Sample a geometric number of trials-before-success with the given
     * mean. Used to draw "compute instructions until the next memory
     * access" so that request interarrivals are memoryless.
     */
    std::uint64_t
    nextGeometric(double mean)
    {
        if (mean <= 0.0)
            return 0;
        const double p = 1.0 / (mean + 1.0);
        double u = nextDouble();
        if (u > 0.999999999999)
            u = 0.999999999999;
        return static_cast<std::uint64_t>(
            std::floor(std::log1p(-u) / std::log1p(-p)));
    }

    /** true with the given probability. */
    bool
    nextBool(double probability)
    {
        return nextDouble() < probability;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace dstrange

#endif // DSTRANGE_COMMON_RNG_H
