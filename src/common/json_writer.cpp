#include "common/json_writer.h"

#include <charconv>
#include <cstdio>

namespace dstrange {

void
JsonWriter::comma()
{
    if (pendingKey) {
        pendingKey = false;
        return; // Value follows its key; no comma.
    }
    if (!needComma.empty()) {
        if (needComma.back())
            out << ',';
        needComma.back() = true;
    }
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            escaped += "\\\"";
            break;
          case '\\':
            escaped += "\\\\";
            break;
          case '\n':
            escaped += "\\n";
            break;
          case '\t':
            escaped += "\\t";
            break;
          case '\r':
            escaped += "\\r";
            break;
          case '\b':
            escaped += "\\b";
            break;
          case '\f':
            escaped += "\\f";
            break;
          default:
            // RFC 8259: all other control characters must be escaped;
            // emitting them raw produces unparseable BENCH_*.json.
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                escaped += buf;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out << '{';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out << '}';
    needComma.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out << '[';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out << ']';
    needComma.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    comma();
    out << '"' << escape(name) << "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    comma();
    out << '"' << escape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", number);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::valueExact(double number)
{
    comma();
    // Shortest round-trip form (std::to_chars without a precision
    // argument); 32 bytes comfortably hold any double so formatted.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), number);
    out.write(buf, res.ptr - buf);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    comma();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    comma();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    comma();
    out << (flag ? "true" : "false");
    return *this;
}

} // namespace dstrange
