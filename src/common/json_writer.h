/**
 * @file
 * Minimal JSON emitter for machine-readable experiment results (used by
 * the CLI simulator's --json output). Write-only, no parsing.
 */

#ifndef DSTRANGE_COMMON_JSON_WRITER_H
#define DSTRANGE_COMMON_JSON_WRITER_H

#include <sstream>
#include <string>
#include <vector>

namespace dstrange {

/** Streaming JSON writer with automatic comma placement. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object key; must be followed by a value or begin*(). */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    /**
     * Emit a double with the shortest representation that parses back
     * to the exact same bits (value() rounds to 6 significant digits
     * for readable perf records). The persistent alone-run cache uses
     * this so a cached baseline is bit-identical to a recomputed one.
     */
    JsonWriter &valueExact(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);

    /** Render the accumulated document. */
    std::string str() const { return out.str(); }

  private:
    void comma();
    static std::string escape(const std::string &text);

    std::ostringstream out;
    std::vector<bool> needComma; ///< Per nesting level.
    bool pendingKey = false;
};

} // namespace dstrange

#endif // DSTRANGE_COMMON_JSON_WRITER_H
