/**
 * @file
 * Contiguous FIFO with index-based front consumption. Used for the
 * simulator's completion/pending lists, which are consumed strictly from
 * the front while new entries append at the back.
 */

#ifndef DSTRANGE_COMMON_POP_VECTOR_H
#define DSTRANGE_COMMON_POP_VECTOR_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace dstrange {

/**
 * A vector-backed FIFO whose pop_front() only advances a head index;
 * the dead prefix is recycled when the buffer empties or the prefix
 * outgrows the live part. Unlike std::deque it stores elements
 * contiguously and never allocates in steady state (after reserve()),
 * and unlike erase(begin()) consumption it is O(1) per pop.
 */
template <typename T>
class PopVector
{
  public:
    PopVector() = default;

    /** Pre-size the backing store (steady-state allocation freedom). */
    void reserve(std::size_t n) { store.reserve(n + n / 2); }

    std::size_t size() const { return store.size() - head; }
    bool empty() const { return head == store.size(); }

    void
    push_back(const T &value)
    {
        compactIfWorthwhile();
        store.push_back(value);
    }

    const T &
    front() const
    {
        assert(!empty());
        return store[head];
    }

    T &
    front()
    {
        assert(!empty());
        return store[head];
    }

    void
    pop_front()
    {
        assert(!empty());
        ++head;
        if (head == store.size()) {
            store.clear();
            head = 0;
        }
    }

    /** Random access from the front (0 == oldest). */
    const T &operator[](std::size_t i) const
    {
        assert(i < size());
        return store[head + i];
    }
    T &operator[](std::size_t i)
    {
        assert(i < size());
        return store[head + i];
    }

    /** Iteration over the live range (oldest to newest). */
    auto begin() { return store.begin() + static_cast<std::ptrdiff_t>(head); }
    auto end() { return store.end(); }
    auto begin() const
    {
        return store.begin() + static_cast<std::ptrdiff_t>(head);
    }
    auto end() const { return store.end(); }

    void
    clear()
    {
        store.clear();
        head = 0;
    }

  private:
    void
    compactIfWorthwhile()
    {
        // Recycle the dead prefix before it forces the vector to grow:
        // once it dominates the live part, shift the live elements down.
        if (head > 16 && head > store.size() - head) {
            store.erase(store.begin(),
                        store.begin() + static_cast<std::ptrdiff_t>(head));
            head = 0;
        }
    }

    std::vector<T> store;
    std::size_t head = 0;
};

} // namespace dstrange

#endif // DSTRANGE_COMMON_POP_VECTOR_H
