#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dstrange {

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    headerRow = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows.push_back(std::move(row));
}

std::string
TablePrinter::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::size_t n_cols = headerRow.size();
    for (const auto &row : rows)
        n_cols = std::max(n_cols, row.size());

    std::vector<std::size_t> widths(n_cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    widen(headerRow);
    for (const auto &row : rows)
        widen(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < n_cols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cell;
        }
        os << '\n';
    };

    if (!headerRow.empty()) {
        emit(headerRow);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows)
        emit(row);
}

} // namespace dstrange
