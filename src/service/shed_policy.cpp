#include "service/shed_policy.h"

#include <mutex>
#include <stdexcept>

#include "common/registry_key.h"
#include "common/rng.h"

namespace dstrange::service {

namespace {

constexpr std::uint64_t kClassSalt = 0x7b6f3e1d5ca94281ULL;

class ShedNone final : public ShedPolicy
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "shed-none";
        return n;
    }

    bool
    admit(std::uint64_t, std::size_t) override
    {
        return true;
    }
};

/** Drop new arrivals while the backlog sits at the limit: the classic
 *  bounded-queue admission control, shedding exactly the requests that
 *  would have waited longest. */
class ShedTail final : public ShedPolicy
{
  public:
    explicit ShedTail(const ShedContext &ctx) : limit(ctx.limit) {}

    const std::string &
    name() const override
    {
        static const std::string n = "shed-tail";
        return n;
    }

    bool
    admit(std::uint64_t, std::size_t backlog) override
    {
        return backlog < limit;
    }

  private:
    std::uint64_t limit;
};

/** Hash each arrival into four priority classes (0 = highest). The low
 *  two classes shed at half the limit, everything at the limit, so
 *  high-priority traffic keeps its latency budget deep into overload. */
class ShedPriority final : public ShedPolicy
{
  public:
    explicit ShedPriority(const ShedContext &ctx)
        : seed(ctx.seed), limit(ctx.limit)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "shed-priority";
        return n;
    }

    bool
    admit(std::uint64_t arrival_index, std::size_t backlog) override
    {
        if (backlog >= limit)
            return false;
        if (2 * backlog >= limit) {
            const std::uint64_t cls =
                mix64(seed ^ kClassSalt ^ arrival_index) & 3;
            return cls < 2;
        }
        return true;
    }

  private:
    std::uint64_t seed;
    std::uint64_t limit;
};

} // namespace

ShedRegistry::ShedRegistry()
{
    add("shed-none", [](const ShedContext &) {
        return std::make_unique<ShedNone>();
    });
    add("shed-tail", [](const ShedContext &ctx) {
        return std::make_unique<ShedTail>(ctx);
    });
    add("shed-priority", [](const ShedContext &ctx) {
        return std::make_unique<ShedPriority>(ctx);
    });
}

ShedRegistry &
ShedRegistry::instance()
{
    static ShedRegistry registry;
    return registry;
}

void
ShedRegistry::add(const std::string &key, ShedPolicyFactory factory)
{
    validateRegistryKey("shed policy", key);
    if (!factory)
        throw std::invalid_argument("shed policy factory for '" + key +
                                    "' must not be empty");
    std::unique_lock<std::shared_mutex> lock(mu);
    if (!factories.emplace(key, std::move(factory)).second)
        throw std::invalid_argument("shed policy '" + key +
                                    "' is already registered");
}

std::unique_ptr<ShedPolicy>
ShedRegistry::make(const std::string &key, const ShedContext &ctx) const
{
    // Copy the factory out so user factories run lock-free.
    ShedPolicyFactory factory;
    {
        std::shared_lock<std::shared_mutex> lock(mu);
        const auto it = factories.find(key);
        if (it == factories.end()) {
            std::string known;
            for (const auto &[k, f] : factories)
                known += (known.empty() ? "" : ", ") + k;
            throw std::out_of_range("unknown shed policy '" + key +
                                    "' (registered: " + known + ")");
        }
        factory = it->second;
    }
    return factory(ctx);
}

bool
ShedRegistry::contains(const std::string &key) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return factories.count(key) != 0;
}

std::vector<std::string>
ShedRegistry::keys() const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[key, factory] : factories)
        out.push_back(key);
    return out;
}

} // namespace dstrange::service
