/**
 * @file
 * Seeded arrival processes for the open-loop service layer, behind a
 * string-keyed registry (like the scheduler / predictor / mapping
 * registries). A process is a deterministic stream of arrival cycles:
 * peek() exposes the next arrival, pop() consumes it. All randomness
 * flows through Xoshiro256ss, so a (key, params) pair always produces
 * the same stream — the property the golden-value tests pin.
 *
 * Built-in keys:
 *  - "poisson"     Memoryless arrivals at the offered rate.
 *  - "bursty"      MMPP-style on/off: exponential on/off dwells; the
 *                  on-phase rate is burstFactor times the mean so the
 *                  long-run offered rate is preserved.
 *  - "diurnal"     Sinusoidal rate schedule over periodCycles with
 *                  relative amplitude (1 - 1/burstFactor).
 *  - "closed-loop" Parity shim: `clients` requests outstanding at all
 *                  times; a completion releases the next arrival.
 */

#ifndef DSTRANGE_SERVICE_ARRIVAL_PROCESS_H
#define DSTRANGE_SERVICE_ARRIVAL_PROCESS_H

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace dstrange::service {

/** Parameters shared by every arrival process. */
struct ArrivalParams
{
    /** Mean gap between arrivals in bus cycles (may be fractional at
     *  saturating loads; processes accumulate fractional time). */
    double meanGapCycles = 10.0;
    /** Logical client count (seeding spread; closed-loop window). */
    unsigned clients = 1024;
    /** Burstiness knob (see ServiceConfig::burstFactor). */
    double burstFactor = 4.0;
    /** On/off or sinusoidal schedule period in bus cycles. */
    Cycle periodCycles = 20000;
    std::uint64_t seed = 1;
};

/**
 * A deterministic arrival stream. Arrival cycles are nondecreasing;
 * several arrivals may share a cycle (sub-cycle mean gaps).
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Cycle of the next pending arrival; kNoEvent when none is
     *  scheduled (closed-loop with every client in flight). */
    virtual Cycle peek() const = 0;

    /** Consume the pending arrival and schedule the next one.
     *  @pre peek() != kNoEvent */
    virtual void pop() = 0;

    /** A previously popped request completed (closed-loop feedback;
     *  open-loop processes ignore it). */
    virtual void onCompletion(Cycle now) { (void)now; }
};

/**
 * Process-global arrival-process registry, keyed like the scheduler /
 * predictor / mapping registries. Thread-safe: lookups take a shared
 * lock, add() an exclusive one.
 */
class ArrivalRegistry
{
  public:
    using ArrivalFactory = std::function<std::unique_ptr<ArrivalProcess>(
        const ArrivalParams &)>;

    /** Key of the default process. */
    static constexpr const char *kDefault = "poisson";

    static ArrivalRegistry &instance();

    /** @throws std::invalid_argument on empty/duplicate/unserializable
     *  keys or an empty factory. */
    void add(const std::string &key, ArrivalFactory factory);

    /**
     * Instantiate the process registered under @p key.
     * @throws std::out_of_range on an unknown key (the message lists
     *         the registered keys).
     */
    std::unique_ptr<ArrivalProcess> make(const std::string &key,
                                         const ArrivalParams &params) const;

    bool contains(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    ArrivalRegistry();

    mutable std::shared_mutex mu;
    std::map<std::string, ArrivalFactory> factories;
};

} // namespace dstrange::service

#endif // DSTRANGE_SERVICE_ARRIVAL_PROCESS_H
