/**
 * @file
 * Open-loop RNG-as-a-service driver: multiplexes the configured
 * arrival process's logical clients onto one extra memory-controller
 * request port and tracks every request's lifecycle (arrival ->
 * backlog -> controller enqueue -> completion), recording end-to-end
 * latency into a deterministic LatencyHistogram. Unlike the
 * closed-loop cores, the backlog is unbounded: offered load beyond the
 * system's capacity piles up and shows as tail-latency collapse — the
 * saturation behaviour the SloReport quantifies.
 */

#ifndef DSTRANGE_SERVICE_OPEN_LOOP_SERVICE_H
#define DSTRANGE_SERVICE_OPEN_LOOP_SERVICE_H

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/latency_histogram.h"
#include "common/types.h"
#include "mem/memory_controller.h"
#include "service/arrival_process.h"
#include "service/service_config.h"
#include "service/shed_policy.h"

namespace dstrange::service {

/** Lifecycle counters of one service run (all exact integers). */
struct ServiceStats
{
    std::uint64_t offered = 0;   ///< Arrivals generated in the window.
    std::uint64_t shed = 0;      ///< Arrivals refused by admission control.
    std::uint64_t issued = 0;    ///< Accepted by the memory controller.
    std::uint64_t completed = 0; ///< Completions delivered.
    std::uint64_t overSlo = 0;   ///< Completions above the SLO target.
    std::uint64_t servedBuffer = 0;  ///< Completions tagged Buffer.
    std::uint64_t servedStaging = 0; ///< Completions tagged Staging.
    std::uint64_t servedEngine = 0;  ///< Completions tagged Engine.
    std::uint64_t maxBacklog = 0;    ///< Peak backlog depth observed.
    Cycle lastCompletion = 0;        ///< Cycle of the last completion.
    /** End-to-end latency (arrival to completion, backlog included). */
    LatencyHistogram latency;
};

/**
 * The driver. Owned by sim::System when ServiceConfig::enabled; ticks
 * before the memory controller each bus cycle and participates in the
 * fast-forward horizon protocol like any other component.
 */
class OpenLoopService
{
  public:
    /**
     * @param port the CoreId of the extra controller port this driver
     *        issues on (System uses the first id past the real cores).
     */
    OpenLoopService(const ServiceConfig &config, CoreId port,
                    mem::MemoryController &controller,
                    std::uint64_t seed);

    /** Generate due arrivals and drain the backlog into the MC. */
    void tick(Cycle now);

    /**
     * Earliest cycle >= @p now this driver does non-batchable work:
     * now while a backlog waits on a full RNG queue (retry every
     * cycle), else the next pending arrival (clamped so the
     * generation-window close itself is an event).
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Quiescent spans carry no per-cycle service state. */
    void fastForward(Cycle from, Cycle to);

    /** Completion callback (routed by sim::System via the port id). */
    void onCompletion(std::uint64_t token, Cycle now,
                      mem::ServePath path);

    /** Generation window closed, backlog empty, nothing in flight. */
    bool drained() const;

    const ServiceStats &stats() const { return statistics; }
    const ServiceConfig &config() const { return cfg; }
    CoreId port() const { return portId; }
    std::size_t backlogDepth() const { return backlog.size(); }
    /** Backlog bound the shed policy was built with (0-auto resolved). */
    std::uint64_t shedLimit() const { return resolvedShedLimit; }

    /** Offered-load conversion: mean cycles between 64-bit requests. */
    static double
    meanGapCycles(double offered_mbps)
    {
        return (64.0 * kBusFreqHz) /
               (offered_mbps > 1e-9 ? offered_mbps * 1e6 : 1e-3);
    }

  private:
    ServiceConfig cfg;
    CoreId portId;
    mem::MemoryController &mc;
    std::unique_ptr<ArrivalProcess> arrival;
    /** Admission control applied as each arrival is generated. */
    std::unique_ptr<ShedPolicy> shedPolicy;
    std::uint64_t resolvedShedLimit = 0;
    std::uint64_t arrivalIndex = 0; ///< Generated-arrival ordinal.
    /** Logical arrival cycles awaiting controller admission. */
    std::deque<Cycle> backlog;
    /** token -> logical arrival cycle of requests inside the MC. */
    std::unordered_map<std::uint64_t, Cycle> inflight;
    std::uint64_t nextToken = 1;
    bool doneGenerating = false;
    ServiceStats statistics;
};

} // namespace dstrange::service

#endif // DSTRANGE_SERVICE_OPEN_LOOP_SERVICE_H
