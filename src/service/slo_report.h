/**
 * @file
 * Per-run service-level report: goodput, tail-latency percentiles,
 * SLO-violation share, serve-path mix, and a saturation verdict,
 * derived from one OpenLoopService run's ServiceStats. Serializes
 * bit-exactly through JsonWriter/JsonValue so service cells round-trip
 * through the persistent sweep caches like any other result.
 */

#ifndef DSTRANGE_SERVICE_SLO_REPORT_H
#define DSTRANGE_SERVICE_SLO_REPORT_H

#include <string>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/types.h"
#include "service/open_loop_service.h"
#include "service/service_config.h"

namespace dstrange::service {

/** The service layer's answer to "did this design survive the load". */
struct SloReport
{
    std::string arrival;      ///< Arrival-process key of the run.
    std::string shedPolicy;   ///< Admission-control key of the run.
    double offeredMbps = 0.0; ///< Configured offered load.
    Cycle sloTargetCycles = 0;
    Cycle durationCycles = 0;

    std::uint64_t offered = 0;
    std::uint64_t shed = 0;   ///< Arrivals refused by admission control.
    std::uint64_t completed = 0;
    std::uint64_t overSlo = 0;
    std::uint64_t servedBuffer = 0;
    std::uint64_t servedStaging = 0;
    std::uint64_t servedEngine = 0;
    std::uint64_t maxBacklog = 0;
    Cycle lastCompletion = 0;

    Cycle p50 = 0;  ///< Nearest-rank percentiles in bus cycles.
    Cycle p99 = 0;
    Cycle p999 = 0;
    Cycle maxLatency = 0;
    double meanLatency = 0.0;

    double pctOverSlo = 0.0;    ///< % of completions above the target.
    double pctShed = 0.0;       ///< % of offered arrivals shed.
    double completedRps = 0.0;  ///< Completions per second of wall time.
    double goodputRps = 0.0;    ///< Within-SLO completions per second.
    /**
     * The offered load exceeded the design's service capacity: the run
     * could not complete every generated request, or draining the
     * backlog took more than 1/8 of the generation window past its
     * close. Purely integer-derived, so the verdict is deterministic.
     */
    bool saturated = false;

    /** Derive the report from a finished run's counters. */
    static SloReport from(const ServiceConfig &cfg,
                          const ServiceStats &stats);

    /** Emit as a JSON object (caller owns surrounding structure). */
    void writeJson(JsonWriter &w) const;

    /** Parse a writeJson() document back, bit-exactly. */
    static SloReport fromJson(const JsonValue &v);
};

} // namespace dstrange::service

#endif // DSTRANGE_SERVICE_SLO_REPORT_H
