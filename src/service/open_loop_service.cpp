#include "service/open_loop_service.h"

#include <algorithm>

#include "common/rng.h"

namespace dstrange::service {

OpenLoopService::OpenLoopService(const ServiceConfig &config, CoreId port,
                                 mem::MemoryController &controller,
                                 std::uint64_t seed)
    : cfg(config), portId(port), mc(controller)
{
    ArrivalParams params;
    params.meanGapCycles = meanGapCycles(cfg.offeredMbps);
    params.clients = cfg.clients;
    params.burstFactor = cfg.burstFactor;
    params.periodCycles = cfg.periodCycles;
    params.seed = mix64(seed ^ 0x5e21c0deull);
    arrival = ArrivalRegistry::instance().make(cfg.arrival, params);

    ShedContext sctx;
    sctx.seed = mix64(seed ^ 0x5ed9a7c3ull); // Distinct salt: shedding
                                             // never correlates with
                                             // arrival randomness.
    sctx.limit = cfg.shedLimit;
    if (sctx.limit == 0) {
        // Auto limit: the arrivals that fit inside one SLO window at
        // the offered rate — a deeper backlog guarantees the newcomer
        // misses the SLO, so shedding it loses no goodput.
        const double per_window =
            static_cast<double>(cfg.sloTargetCycles) /
            meanGapCycles(cfg.offeredMbps);
        sctx.limit = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(per_window));
    }
    resolvedShedLimit = sctx.limit;
    shedPolicy = ShedRegistry::instance().make(cfg.shed, sctx);
}

void
OpenLoopService::tick(Cycle now)
{
    // 1. Generate every arrival due at or before this cycle. Arrival
    // streams are monotone, so the first arrival at or past the window
    // close ends generation for good.
    if (!doneGenerating) {
        if (now >= cfg.durationCycles) {
            doneGenerating = true;
        } else {
            for (;;) {
                const Cycle a = arrival->peek();
                if (a == kNoEvent || a > now)
                    break;
                if (a >= cfg.durationCycles) {
                    doneGenerating = true;
                    break;
                }
                arrival->pop();
                statistics.offered++;
                // Admission control: a shed arrival is counted offered
                // but never queued (its closed-loop slot, if any, is
                // released immediately). Decisions depend only on the
                // seeded policy, the arrival ordinal, and the backlog
                // depth — all deterministic at generation ticks, which
                // are span-ending events already.
                if (shedPolicy->admit(arrivalIndex++, backlog.size())) {
                    backlog.push_back(a);
                } else {
                    statistics.shed++;
                    arrival->onCompletion(now);
                }
            }
        }
    }

    // 2. Drain the backlog into the controller, oldest first. A false
    // return means the RNG queue is full: stop and retry next cycle
    // (the request keeps its logical arrival time, so queueing delay
    // counts against the latency SLO).
    while (!backlog.empty()) {
        mem::Request req;
        req.type = mem::ReqType::Rng;
        req.core = portId;
        req.token = nextToken;
        if (!mc.enqueue(req, now))
            break;
        inflight.emplace(nextToken, backlog.front());
        ++nextToken;
        backlog.pop_front();
        statistics.issued++;
    }
    statistics.maxBacklog =
        std::max(statistics.maxBacklog,
                 static_cast<std::uint64_t>(backlog.size()));
}

Cycle
OpenLoopService::nextEventCycle(Cycle now) const
{
    if (!backlog.empty())
        return now;
    if (doneGenerating)
        return kNoEvent;
    // The window close is always an event — the tick there flips
    // doneGenerating, which the stop condition reads — so the horizon
    // never extends past it even when the next arrival (or kNoEvent,
    // e.g. closed-loop with all clients in flight) lies beyond.
    const Cycle horizon = std::min(arrival->peek(), cfg.durationCycles);
    return horizon <= now ? now : horizon;
}

void
OpenLoopService::fastForward(Cycle from, Cycle to)
{
    (void)from;
    (void)to;
}

void
OpenLoopService::onCompletion(std::uint64_t token, Cycle now,
                              mem::ServePath path)
{
    const auto it = inflight.find(token);
    if (it == inflight.end())
        return;
    const Cycle latency = now - it->second;
    inflight.erase(it);

    statistics.completed++;
    statistics.lastCompletion = now;
    statistics.latency.record(latency);
    if (latency > cfg.sloTargetCycles)
        statistics.overSlo++;
    switch (path) {
      case mem::ServePath::Buffer:
        statistics.servedBuffer++;
        break;
      case mem::ServePath::Staging:
        statistics.servedStaging++;
        break;
      default:
        statistics.servedEngine++;
        break;
    }
    arrival->onCompletion(now);
}

bool
OpenLoopService::drained() const
{
    return doneGenerating && backlog.empty() && inflight.empty();
}

} // namespace dstrange::service
