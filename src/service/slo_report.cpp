#include "service/slo_report.h"

#include <algorithm>

namespace dstrange::service {

SloReport
SloReport::from(const ServiceConfig &cfg, const ServiceStats &stats)
{
    SloReport r;
    r.arrival = cfg.arrival;
    r.shedPolicy = cfg.shed;
    r.offeredMbps = cfg.offeredMbps;
    r.sloTargetCycles = cfg.sloTargetCycles;
    r.durationCycles = cfg.durationCycles;

    r.offered = stats.offered;
    r.shed = stats.shed;
    r.completed = stats.completed;
    r.overSlo = stats.overSlo;
    r.servedBuffer = stats.servedBuffer;
    r.servedStaging = stats.servedStaging;
    r.servedEngine = stats.servedEngine;
    r.maxBacklog = stats.maxBacklog;
    r.lastCompletion = stats.lastCompletion;

    r.p50 = stats.latency.percentile(0.50);
    r.p99 = stats.latency.percentile(0.99);
    r.p999 = stats.latency.percentile(0.999);
    r.maxLatency = stats.latency.max();
    r.meanLatency = stats.latency.mean();

    if (r.offered > 0)
        r.pctShed = 100.0 * static_cast<double>(r.shed) /
                    static_cast<double>(r.offered);
    if (r.completed > 0) {
        r.pctOverSlo = 100.0 * static_cast<double>(r.overSlo) /
                       static_cast<double>(r.completed);
        // Wall time spans the generation window plus any drain tail.
        const Cycle wall =
            std::max(r.lastCompletion, r.durationCycles);
        const double seconds =
            static_cast<double>(wall > 0 ? wall : 1) / kBusFreqHz;
        r.completedRps = static_cast<double>(r.completed) / seconds;
        r.goodputRps =
            static_cast<double>(r.completed - r.overSlo) / seconds;
    }

    const Cycle drain_lag = r.lastCompletion > r.durationCycles
                                ? r.lastCompletion - r.durationCycles
                                : 0;
    // Shed arrivals were never admitted, so capacity is judged against
    // the admitted volume (identical to the old formula when shed==0).
    r.saturated = r.completed < r.offered - r.shed ||
                  drain_lag * 8 > r.durationCycles;
    return r;
}

void
SloReport::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("arrival").value(arrival);
    w.key("shed_policy").value(shedPolicy);
    w.key("offered_mbps").valueExact(offeredMbps);
    w.key("slo_target_cycles").value(sloTargetCycles);
    w.key("duration_cycles").value(durationCycles);
    w.key("offered").value(offered);
    w.key("shed").value(shed);
    w.key("completed").value(completed);
    w.key("over_slo").value(overSlo);
    w.key("served_buffer").value(servedBuffer);
    w.key("served_staging").value(servedStaging);
    w.key("served_engine").value(servedEngine);
    w.key("max_backlog").value(maxBacklog);
    w.key("last_completion").value(lastCompletion);
    w.key("p50").value(p50);
    w.key("p99").value(p99);
    w.key("p999").value(p999);
    w.key("max_latency").value(maxLatency);
    w.key("mean_latency").valueExact(meanLatency);
    w.key("pct_over_slo").valueExact(pctOverSlo);
    w.key("pct_shed").valueExact(pctShed);
    w.key("completed_rps").valueExact(completedRps);
    w.key("goodput_rps").valueExact(goodputRps);
    w.key("saturated").value(saturated);
    w.endObject();
}

SloReport
SloReport::fromJson(const JsonValue &v)
{
    SloReport r;
    r.arrival = v.at("arrival").asString();
    r.shedPolicy = v.at("shed_policy").asString();
    r.offeredMbps = v.at("offered_mbps").asDouble();
    r.sloTargetCycles = v.at("slo_target_cycles").asU64();
    r.durationCycles = v.at("duration_cycles").asU64();
    r.offered = v.at("offered").asU64();
    r.shed = v.at("shed").asU64();
    r.completed = v.at("completed").asU64();
    r.overSlo = v.at("over_slo").asU64();
    r.servedBuffer = v.at("served_buffer").asU64();
    r.servedStaging = v.at("served_staging").asU64();
    r.servedEngine = v.at("served_engine").asU64();
    r.maxBacklog = v.at("max_backlog").asU64();
    r.lastCompletion = v.at("last_completion").asU64();
    r.p50 = v.at("p50").asU64();
    r.p99 = v.at("p99").asU64();
    r.p999 = v.at("p999").asU64();
    r.maxLatency = v.at("max_latency").asU64();
    r.meanLatency = v.at("mean_latency").asDouble();
    r.pctOverSlo = v.at("pct_over_slo").asDouble();
    r.pctShed = v.at("pct_shed").asDouble();
    r.completedRps = v.at("completed_rps").asDouble();
    r.goodputRps = v.at("goodput_rps").asDouble();
    r.saturated = v.at("saturated").asBool();
    return r;
}

} // namespace dstrange::service
