#include "service/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "common/registry_key.h"
#include "common/rng.h"

namespace dstrange::service {

namespace {

/** Floor of the fractional arrival clock, saturating at kNoEvent - 1
 *  so a runaway clock can never collide with the sentinel. */
Cycle
clockToCycle(double t)
{
    if (t >= 1.8e19)
        return kNoEvent - 1;
    return static_cast<Cycle>(t);
}

/**
 * Exponential gap with the given mean, drawn by inverse CDF.
 * 1 - nextDouble() lies in (0, 1], so the log is always finite.
 */
double
expGap(Xoshiro256ss &rng, double mean)
{
    return -std::log(1.0 - rng.nextDouble()) * mean;
}

/** Memoryless arrivals: i.i.d. exponential gaps at the offered rate. */
class PoissonProcess final : public ArrivalProcess
{
  public:
    explicit PoissonProcess(const ArrivalParams &p)
        : rng(mix64(p.seed ^ 0x706f6973736f6eull)),
          meanGap(std::max(p.meanGapCycles, 1e-9))
    {
        advance();
    }

    Cycle peek() const override { return next; }
    void pop() override { advance(); }

  private:
    void
    advance()
    {
        clock += expGap(rng, meanGap);
        next = clockToCycle(clock);
    }

    Xoshiro256ss rng;
    double meanGap;
    double clock = 0.0;
    Cycle next = 0;
};

/**
 * MMPP-style on/off process: exponential dwells in an ON phase (rate
 * burstFactor times the mean, duty 1/burstFactor) and a silent OFF
 * phase. Gaps crossing a phase edge restart from the edge — exact for
 * memoryless gaps.
 */
class BurstyProcess final : public ArrivalProcess
{
  public:
    explicit BurstyProcess(const ArrivalParams &p)
        : rng(mix64(p.seed ^ 0x6275727374ull)),
          burst(std::max(p.burstFactor, 1.0)),
          onGap(std::max(p.meanGapCycles, 1e-9) / burst),
          onDwell(std::max<double>(p.periodCycles, 1.0) / burst),
          offDwell(std::max<double>(p.periodCycles, 1.0) *
                   (1.0 - 1.0 / burst))
    {
        phaseEnd = expGap(rng, onDwell);
        advance();
    }

    Cycle peek() const override { return next; }
    void pop() override { advance(); }

  private:
    void
    advance()
    {
        for (;;) {
            if (!on) {
                clock = phaseEnd;
                on = true;
                phaseEnd = clock + expGap(rng, onDwell);
            }
            const double gap = expGap(rng, onGap);
            if (offDwell <= 0.0 || clock + gap <= phaseEnd) {
                clock += gap;
                next = clockToCycle(clock);
                return;
            }
            clock = phaseEnd;
            on = false;
            phaseEnd = clock + expGap(rng, offDwell);
        }
    }

    Xoshiro256ss rng;
    double burst;
    double onGap;
    double onDwell;
    double offDwell;
    double clock = 0.0;
    double phaseEnd = 0.0;
    bool on = true;
    Cycle next = 0;
};

/**
 * Sinusoidal rate schedule: the instantaneous rate is the mean rate
 * times (1 + a sin(2 pi t / period)) with a = 1 - 1/burstFactor, so
 * the long-run offered load matches the poisson process. Gaps are
 * exponential at the rate in effect when the gap starts (a standard
 * piecewise approximation — deterministic, which is what matters).
 */
class DiurnalProcess final : public ArrivalProcess
{
  public:
    explicit DiurnalProcess(const ArrivalParams &p)
        : rng(mix64(p.seed ^ 0x646975726e616cull)),
          meanGap(std::max(p.meanGapCycles, 1e-9)),
          period(std::max<double>(p.periodCycles, 1.0)),
          amplitude(std::clamp(1.0 - 1.0 / std::max(p.burstFactor, 1.0),
                               0.0, 0.95))
    {
        advance();
    }

    Cycle peek() const override { return next; }
    void pop() override { advance(); }

  private:
    void
    advance()
    {
        const double rate_scale =
            1.0 + amplitude *
                      std::sin(2.0 * 3.141592653589793 * clock / period);
        clock += expGap(rng, meanGap / std::max(rate_scale, 0.05));
        next = clockToCycle(clock);
    }

    Xoshiro256ss rng;
    double meanGap;
    double period;
    double amplitude;
    double clock = 0.0;
    Cycle next = 0;
};

/**
 * Closed-loop parity shim: `clients` requests are in flight at all
 * times — every completion immediately releases the next arrival —
 * so a service cell can be compared against the paper's closed-loop
 * methodology under the same harness.
 */
class ClosedLoopProcess final : public ArrivalProcess
{
  public:
    explicit ClosedLoopProcess(const ArrivalParams &p)
    {
        ready.assign(std::max(p.clients, 1u), 0);
    }

    Cycle
    peek() const override
    {
        return ready.empty() ? kNoEvent : ready.front();
    }

    void pop() override { ready.pop_front(); }

    void
    onCompletion(Cycle now) override
    {
        ready.push_back(now + 1);
    }

  private:
    std::deque<Cycle> ready;
};

} // namespace

ArrivalRegistry::ArrivalRegistry()
{
    factories["poisson"] = [](const ArrivalParams &p) {
        return std::make_unique<PoissonProcess>(p);
    };
    factories["bursty"] = [](const ArrivalParams &p) {
        return std::make_unique<BurstyProcess>(p);
    };
    factories["diurnal"] = [](const ArrivalParams &p) {
        return std::make_unique<DiurnalProcess>(p);
    };
    factories["closed-loop"] = [](const ArrivalParams &p) {
        return std::make_unique<ClosedLoopProcess>(p);
    };
}

ArrivalRegistry &
ArrivalRegistry::instance()
{
    static ArrivalRegistry registry;
    return registry;
}

void
ArrivalRegistry::add(const std::string &key, ArrivalFactory factory)
{
    validateRegistryKey("arrival process", key);
    if (!factory)
        throw std::invalid_argument("arrival process '" + key +
                                    "' has an empty factory");
    std::unique_lock lock(mu);
    if (!factories.emplace(key, std::move(factory)).second)
        throw std::invalid_argument("arrival process '" + key +
                                    "' is already registered");
}

std::unique_ptr<ArrivalProcess>
ArrivalRegistry::make(const std::string &key,
                      const ArrivalParams &params) const
{
    std::shared_lock lock(mu);
    const auto it = factories.find(key);
    if (it == factories.end()) {
        std::string known;
        for (const auto &[k, v] : factories)
            known += (known.empty() ? "" : ", ") + k;
        throw std::out_of_range("unknown arrival process '" + key +
                                "' (known: " + known + ")");
    }
    return it->second(params);
}

bool
ArrivalRegistry::contains(const std::string &key) const
{
    std::shared_lock lock(mu);
    return factories.count(key) != 0;
}

std::vector<std::string>
ArrivalRegistry::keys() const
{
    std::shared_lock lock(mu);
    std::vector<std::string> out;
    for (const auto &[k, v] : factories)
        out.push_back(k);
    return out;
}

} // namespace dstrange::service
