/**
 * @file
 * Admission-control / load-shedding policies at the service boundary.
 * A ShedPolicy decides, per generated arrival, whether the request is
 * admitted to the backlog or shed immediately; shedding under fault
 * pressure trades completed volume for tail latency, keeping goodput
 * (within-SLO completions) from collapsing when the machine loses RNG
 * throughput to discarded rounds or outages. Policies live behind the
 * string-keyed ShedRegistry so new strategies plug into config text
 * (`service.shed=`), the CLI, sweeps, and cache keys without touching
 * service code. Decisions are pure functions of (seed, arrival index,
 * backlog depth) — deterministic and fast-forward safe.
 */

#ifndef DSTRANGE_SERVICE_SHED_POLICY_H
#define DSTRANGE_SERVICE_SHED_POLICY_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace dstrange::service {

/** Everything a shed-policy factory needs at construction time. */
struct ShedContext
{
    std::uint64_t seed = 0;  ///< Derived from the service seed.
    std::uint64_t limit = 0; ///< Backlog bound (resolved, nonzero).
};

/** One admission decision per generated arrival. */
class ShedPolicy
{
  public:
    virtual ~ShedPolicy() = default;

    virtual const std::string &name() const = 0;

    /**
     * Admit the @p arrival_index-th generated request given the current
     * @p backlog depth? Must be deterministic in its arguments and any
     * seeded construction state.
     */
    virtual bool admit(std::uint64_t arrival_index,
                       std::size_t backlog) = 0;
};

/** Factory producing one configured shed policy. */
using ShedPolicyFactory =
    std::function<std::unique_ptr<ShedPolicy>(const ShedContext &)>;

/**
 * Process-global shed-policy registry. Built-in policies are
 * registered on first access:
 *
 *   "shed-none"      admit everything (the default; bit-identical to
 *                    the pre-shedding service layer)
 *   "shed-tail"      drop arrivals while the backlog is at the limit
 *   "shed-priority"  hash arrivals into four priority classes; drop
 *                    the two low classes at half the limit, everything
 *                    at the limit
 *
 * Thread-safe: lookups take a shared lock and add() an exclusive one.
 */
class ShedRegistry
{
  public:
    static ShedRegistry &instance();

    /**
     * Register a factory under @p key.
     * @throws std::invalid_argument if @p key is empty or taken.
     */
    void add(const std::string &key, ShedPolicyFactory factory);

    /**
     * Instantiate the policy registered under @p key.
     * @throws std::out_of_range if @p key is unknown (the message
     *         lists the registered keys).
     */
    std::unique_ptr<ShedPolicy> make(const std::string &key,
                                     const ShedContext &ctx) const;

    bool contains(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    ShedRegistry();

    mutable std::shared_mutex mu;
    std::map<std::string, ShedPolicyFactory> factories;
};

} // namespace dstrange::service

#endif // DSTRANGE_SERVICE_SHED_POLICY_H
