/**
 * @file
 * Configuration of the open-loop RNG-as-a-service layer. Kept free of
 * heavy includes so sim/sim_config.h can embed it; all fields travel
 * through the canonical config text as `service.*` keys, so service
 * cells are cacheable and shardable like any other sweep cell.
 */

#ifndef DSTRANGE_SERVICE_SERVICE_CONFIG_H
#define DSTRANGE_SERVICE_SERVICE_CONFIG_H

#include <string>

#include "common/types.h"

namespace dstrange::service {

/**
 * Open-loop service-layer knobs. When enabled, the System attaches one
 * extra request port to the memory controller and drives it with the
 * configured arrival process, multiplexing @p clients logical clients
 * onto the simulated machine; per-request latency lands in a
 * LatencyHistogram and the run emits a service::SloReport.
 */
struct ServiceConfig
{
    /** Attach the service layer to the system. */
    bool enabled = false;
    /** Arrival-process key (service::ArrivalRegistry): "poisson",
     *  "bursty", "diurnal", or "closed-loop". */
    std::string arrival = "poisson";
    /** Offered RNG load in Mb/s across all clients (one request = one
     *  64-bit number, so 5120 Mb/s is one request per 10 bus cycles). */
    double offeredMbps = 5120.0;
    /** Logical clients multiplexed onto the port. Open-loop processes
     *  use it only for seeding spread; the closed-loop shim caps
     *  requests in flight at this many. */
    unsigned clients = 1024;
    /** Burstiness knob: on/off rate ratio for "bursty", rate-swing
     *  amplitude for "diurnal" (ignored by "poisson"/"closed-loop"). */
    double burstFactor = 4.0;
    /** Period of the "bursty" on/off phases and the "diurnal" rate
     *  schedule, in bus cycles. */
    Cycle periodCycles = 20000;
    /** SLO latency target in bus cycles (end-to-end, arrival to
     *  completion). */
    Cycle sloTargetCycles = 500;
    /** Arrival-generation window in bus cycles; the run then drains
     *  the backlog (until maxBusCycles). */
    Cycle durationCycles = 100000;
    /** Admission-control policy (service::ShedRegistry key):
     *  "shed-none" (default, bit-identical to an unshedded run),
     *  "shed-tail", or "shed-priority". */
    std::string shed = "shed-none";
    /** Backlog bound consulted by the shedding policies; 0 = auto
     *  (the arrivals that fit inside one SLO window at the configured
     *  offered load — deeper backlogs guarantee SLO misses). */
    std::uint64_t shedLimit = 0;
};

} // namespace dstrange::service

#endif // DSTRANGE_SERVICE_SERVICE_CONFIG_H
