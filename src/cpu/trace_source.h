/**
 * @file
 * Trace interface between workload generators and the core model. A
 * trace is a stream of operations, each consisting of a number of
 * compute instructions followed by one memory or RNG operation —
 * the same shape as Ramulator's core traces.
 */

#ifndef DSTRANGE_CPU_TRACE_SOURCE_H
#define DSTRANGE_CPU_TRACE_SOURCE_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "mem/request.h"

namespace dstrange::cpu {

/** One trace element: compute bubbles, then one operation. */
struct TraceOp
{
    /** Compute instructions retired before the operation. */
    std::uint64_t computeInstrs = 0;
    mem::ReqType type = mem::ReqType::Read;
    Addr addr = 0;
};

/** Infinite operation stream; generators synthesize on the fly. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next trace element. */
    virtual TraceOp next() = 0;

    /** Human-readable workload name (for reports). */
    virtual const std::string &name() const = 0;
};

} // namespace dstrange::cpu

#endif // DSTRANGE_CPU_TRACE_SOURCE_H
