/**
 * @file
 * Trace-driven core model: a 128-entry instruction window with 3-wide
 * in-order retire and out-of-order memory completion, the standard
 * Ramulator-style core used by the paper (Table 1: 4 GHz, 3-wide issue,
 * 128-entry instruction window).
 */

#ifndef DSTRANGE_CPU_CORE_H
#define DSTRANGE_CPU_CORE_H

#include <string>

#include "common/pop_vector.h"
#include "common/types.h"
#include "cpu/trace_source.h"
#include "mem/memory_controller.h"

namespace dstrange::cpu {

/** Per-core performance counters. Frozen once the budget is retired. */
struct CoreStats
{
    std::uint64_t instrRetired = 0;
    CpuCycle finishCycle = 0; ///< CPU cycle the budget completed.
    /** Cycles retirement was blocked by a pending memory operation at
     *  the window head. */
    CpuCycle memStallCycles = 0;
    /** Subset of memStallCycles where the blocking operation was an RNG
     *  request. */
    CpuCycle rngStallCycles = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rngRequests = 0;
    bool finished = false;

    /** Instructions per CPU cycle over the measured region. */
    double
    ipc() const
    {
        return finishCycle == 0 ? 0.0
                                : static_cast<double>(instrRetired) /
                                      static_cast<double>(finishCycle);
    }

    /** Memory stall cycles per instruction (the paper's MCPI). */
    double
    mcpi() const
    {
        return instrRetired == 0 ? 0.0
                                 : static_cast<double>(memStallCycles) /
                                       static_cast<double>(instrRetired);
    }
};

/**
 * One simulated core running one application trace. The window is
 * modelled with absolute instruction indices: instructions [retiredIdx,
 * issuedIdx) are in flight, bounded by the window size; retirement
 * cannot pass the oldest incomplete memory operation.
 */
class Core
{
  public:
    struct Config
    {
        unsigned windowSize = 128;
        unsigned issueWidth = 3;
        std::uint64_t instrBudget = 300000;
    };

    Core(CoreId id, const Config &config, TraceSource &trace,
         mem::MemoryController &mc);

    /** Advance one DRAM bus cycle (= kCpuCyclesPerBusCycle CPU cycles). */
    void tickBusCycle(Cycle bus_cycle);

    /**
     * Earliest bus cycle >= @p now at which tickBusCycle() does anything
     * beyond the batchable stall accounting. Returns @p now unless the
     * core is fully stalled — retirement blocked at the window head by
     * an incomplete memory operation AND the frontend unable to issue
     * (blocked on an outstanding RNG value, or window full) — in which
     * case it returns kNoEvent: only a completion delivered by the
     * memory controller (one of *its* events) can unblock it.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Batch-apply the per-cycle stall accounting for bus cycles
     * [@p from, @p to). Bit-identical to ticking each cycle.
     * @pre nextEventCycle(from) == kNoEvent and no completion arrives
     *      inside the span
     */
    void fastForward(Cycle from, Cycle to);

    /** Completion callback for reads and RNG requests. */
    void onCompletion(std::uint64_t token);

    const CoreStats &stats() const { return statistics; }
    bool finished() const { return statistics.finished; }
    CoreId id() const { return coreId; }
    const std::string &traceName() const { return trace.name(); }

  private:
    void cpuTick();
    void fetchNextOp();

    CoreId coreId;
    Config cfg;
    TraceSource &trace;
    mem::MemoryController &mc;

    /** Pending (not yet completed) loads/RNG ops in the window. */
    struct PendingMemOp
    {
        std::uint64_t instrIdx;
        bool done;
        bool isRng;
    };

    std::uint64_t issuedIdx = 0;
    std::uint64_t retiredIdx = 0;
    PopVector<PendingMemOp> memOps;

    /**
     * Token of an outstanding RNG request that blocks further issue.
     * The paper's RNG applications consume each random number
     * immediately (Section 3: later instructions depend on the generated
     * value), so the frontend stalls until the request is served.
     */
    std::uint64_t rngBlockToken = 0;
    bool rngBlocked = false;

    TraceOp currentOp{};
    std::uint64_t computeLeft = 0;
    bool opPending = false;

    CpuCycle cpuCycles = 0;
    Cycle currentBusCycle = 0;
    CoreStats statistics;
};

} // namespace dstrange::cpu

#endif // DSTRANGE_CPU_CORE_H
