#include "cpu/core.h"

#include <algorithm>
#include <cassert>

namespace dstrange::cpu {

Core::Core(CoreId id, const Config &config, TraceSource &trace_source,
           mem::MemoryController &mem_ctrl)
    : coreId(id), cfg(config), trace(trace_source), mc(mem_ctrl)
{
    memOps.reserve(cfg.windowSize);
    fetchNextOp();
}

void
Core::fetchNextOp()
{
    currentOp = trace.next();
    computeLeft = currentOp.computeInstrs;
    opPending = true;
}

void
Core::tickBusCycle(Cycle bus_cycle)
{
    currentBusCycle = bus_cycle;
    for (unsigned i = 0; i < kCpuCyclesPerBusCycle; ++i)
        cpuTick();
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    // Instructions the pipeline moves per bus cycle at full rate.
    const std::uint64_t per_bus =
        static_cast<std::uint64_t>(cfg.issueWidth) * kCpuCyclesPerBusCycle;

    // The oldest incomplete memory operation bounds retirement.
    const PendingMemOp *blocker = nullptr;
    for (const PendingMemOp &op : memOps) {
        if (!op.done) {
            blocker = &op;
            break;
        }
    }

    if (blocker != nullptr && blocker->instrIdx == retiredIdx) {
        // Fully head-blocked. The frontend must also be unable to act:
        // blocked on an RNG value, or out of window space. Anything
        // else (compute issue, a memory operation to enqueue) does
        // per-cycle work we cannot predict.
        if (!rngBlocked && issuedIdx - retiredIdx < cfg.windowSize)
            return now;
        // A completed front op pending its drop resolves in one tick.
        if (memOps.front().done && memOps.front().instrIdx < retiredIdx)
            return now;
        return kNoEvent; // Only a completion can unblock this core.
    }

    // Retirement has room: it advances at full rate toward the blocker
    // (or the issue point), a linear evolution we can batch. The bus
    // cycle where it arrives — or where the compute stream or the
    // instruction budget runs out, or the finished/stall bookkeeping
    // changes — is the event.
    Cycle ev = kNoEvent;

    if (blocker != nullptr) {
        // Full-rate retirement needs at least per_bus headroom through
        // every skipped cycle.
        const std::uint64_t room = blocker->instrIdx - retiredIdx;
        if (room < per_bus)
            return now;
        ev = std::min(ev, now + room / per_bus);
        if (!rngBlocked) {
            // The frontend issues compute alongside (retirement keeps
            // feeding window space at the same rate).
            if (computeLeft < per_bus)
                return now; // A memory op (or fetch) issues this cycle.
            ev = std::min(ev, now + computeLeft / per_bus);
        }
    } else {
        // No incomplete operation: pure compute burst. Completed ops
        // behind the retirement point (if any) drop within the tick;
        // require the window gap that makes both stages run at exactly
        // full rate.
        if (rngBlocked || computeLeft < per_bus ||
            issuedIdx - retiredIdx < cfg.issueWidth)
            return now;
        if (!memOps.empty())
            return now; // All-done ops drain in a few normal ticks.
        ev = std::min(ev, now + computeLeft / per_bus);
    }

    if (!statistics.finished) {
        // The budget-crossing CPU cycle sets finished/finishCycle; the
        // bus cycle containing it must tick normally, so the span must
        // keep retirement strictly below the budget.
        const std::uint64_t to_budget = cfg.instrBudget - retiredIdx;
        if (to_budget <= per_bus)
            return now;
        ev = std::min(ev, now + (to_budget - 1) / per_bus);
    }
    return ev;
}

void
Core::fastForward(Cycle from, Cycle to)
{
    assert(to > from);
    assert(nextEventCycle(from) >= to);
    const CpuCycle span =
        static_cast<CpuCycle>(to - from) * kCpuCyclesPerBusCycle;
    cpuCycles += span;
    currentBusCycle = to - 1;

    const PendingMemOp *blocker = nullptr;
    for (const PendingMemOp &op : memOps) {
        if (!op.done) {
            blocker = &op;
            break;
        }
    }

    if (blocker != nullptr && blocker->instrIdx == retiredIdx) {
        // Head-blocked stall: every skipped CPU cycle counts a memory
        // stall (and an RNG stall when the blocking op is one).
        if (!statistics.finished) {
            statistics.memStallCycles += span;
            if (blocker->isRng)
                statistics.rngStallCycles += span;
        }
        return;
    }

    // Linear advance (see nextEventCycle): retirement — and, unless
    // RNG-blocked, compute issue — at exactly issueWidth per CPU cycle.
    const std::uint64_t instrs =
        static_cast<std::uint64_t>(cfg.issueWidth) * span;
    retiredIdx += instrs;
    if (!rngBlocked) {
        // The frontend advanced alongside (the horizon guaranteed the
        // compute stream covers the span).
        issuedIdx += instrs;
        computeLeft -= instrs;
    }
    // Completed operations the retirement point passed drop exactly as
    // the per-cycle ticks would have dropped them.
    while (!memOps.empty() && memOps.front().done &&
           memOps.front().instrIdx < retiredIdx) {
        memOps.pop_front();
    }
    if (!statistics.finished)
        statistics.instrRetired = std::min(retiredIdx, cfg.instrBudget);
}

void
Core::onCompletion(std::uint64_t token)
{
    if (rngBlocked && token == rngBlockToken)
        rngBlocked = false;
    // Completions arrive roughly in order; the matching entry is near the
    // front of the (small) pending list.
    for (PendingMemOp &op : memOps) {
        if (op.instrIdx == token && !op.done) {
            op.done = true;
            return;
        }
    }
    assert(false && "completion token does not match any pending op");
}

void
Core::cpuTick()
{
    cpuCycles++;

    // ---- Retire stage -------------------------------------------------
    // Retirement cannot pass the oldest incomplete memory operation.
    std::uint64_t retire_limit = issuedIdx;
    bool head_blocked_rng = false;
    bool head_blocked = false;
    for (const PendingMemOp &op : memOps) {
        if (!op.done) {
            retire_limit = op.instrIdx;
            head_blocked = retire_limit == retiredIdx;
            head_blocked_rng = op.isRng;
            break;
        }
    }

    const std::uint64_t retire_to =
        std::min(retiredIdx + cfg.issueWidth, retire_limit);
    const std::uint64_t retired_now = retire_to - retiredIdx;
    retiredIdx = retire_to;

    // Drop completed memory ops that have fully retired.
    while (!memOps.empty() && memOps.front().done &&
           memOps.front().instrIdx < retiredIdx) {
        memOps.pop_front();
    }

    if (!statistics.finished) {
        statistics.instrRetired = std::min(retiredIdx, cfg.instrBudget);
        if (retired_now == 0 && head_blocked) {
            statistics.memStallCycles++;
            if (head_blocked_rng)
                statistics.rngStallCycles++;
        }
        if (retiredIdx >= cfg.instrBudget) {
            statistics.finished = true;
            statistics.finishCycle = cpuCycles;
        }
    }

    // ---- Issue stage ---------------------------------------------------
    unsigned inserted = 0;
    while (inserted < cfg.issueWidth) {
        if (rngBlocked)
            break; // Waiting on a random number the next code consumes.
        const std::uint64_t in_window = issuedIdx - retiredIdx;
        if (in_window >= cfg.windowSize)
            break; // Window full.

        if (computeLeft > 0) {
            const std::uint64_t take = std::min<std::uint64_t>(
                {computeLeft, cfg.issueWidth - inserted,
                 cfg.windowSize - in_window});
            computeLeft -= take;
            issuedIdx += take;
            inserted += static_cast<unsigned>(take);
            continue;
        }

        // The operation part of the current trace element.
        assert(opPending);
        mem::Request req;
        req.type = currentOp.type;
        req.addr = currentOp.addr;
        req.core = coreId;
        req.token = issuedIdx;
        if (!mc.enqueue(req, currentBusCycle))
            break; // Queue full: re-try next cycle (frontend stall).

        if (currentOp.type == mem::ReqType::Read) {
            memOps.push_back({issuedIdx, false, false});
            if (!statistics.finished)
                statistics.reads++;
        } else if (currentOp.type == mem::ReqType::Rng) {
            memOps.push_back({issuedIdx, false, true});
            rngBlocked = true;
            rngBlockToken = issuedIdx;
            if (!statistics.finished)
                statistics.rngRequests++;
        } else {
            // Writes are posted: they commit via the write queue and do
            // not block retirement.
            if (!statistics.finished)
                statistics.writes++;
        }
        issuedIdx++;
        inserted++;
        fetchNextOp();
    }
}

} // namespace dstrange::cpu
