#include "cpu/core.h"

#include <algorithm>
#include <cassert>

namespace dstrange::cpu {

Core::Core(CoreId id, const Config &config, TraceSource &trace_source,
           mem::MemoryController &mem_ctrl)
    : coreId(id), cfg(config), trace(trace_source), mc(mem_ctrl)
{
    fetchNextOp();
}

void
Core::fetchNextOp()
{
    currentOp = trace.next();
    computeLeft = currentOp.computeInstrs;
    opPending = true;
}

void
Core::tickBusCycle(Cycle bus_cycle)
{
    currentBusCycle = bus_cycle;
    for (unsigned i = 0; i < kCpuCyclesPerBusCycle; ++i)
        cpuTick();
}

void
Core::onCompletion(std::uint64_t token)
{
    if (rngBlocked && token == rngBlockToken)
        rngBlocked = false;
    // Completions arrive roughly in order; the matching entry is near the
    // front of the (small) pending list.
    for (PendingMemOp &op : memOps) {
        if (op.instrIdx == token && !op.done) {
            op.done = true;
            return;
        }
    }
    assert(false && "completion token does not match any pending op");
}

void
Core::cpuTick()
{
    cpuCycles++;

    // ---- Retire stage -------------------------------------------------
    // Retirement cannot pass the oldest incomplete memory operation.
    std::uint64_t retire_limit = issuedIdx;
    bool head_blocked_rng = false;
    bool head_blocked = false;
    for (const PendingMemOp &op : memOps) {
        if (!op.done) {
            retire_limit = op.instrIdx;
            head_blocked = retire_limit == retiredIdx;
            head_blocked_rng = op.isRng;
            break;
        }
    }

    const std::uint64_t retire_to =
        std::min(retiredIdx + cfg.issueWidth, retire_limit);
    const std::uint64_t retired_now = retire_to - retiredIdx;
    retiredIdx = retire_to;

    // Drop completed memory ops that have fully retired.
    while (!memOps.empty() && memOps.front().done &&
           memOps.front().instrIdx < retiredIdx) {
        memOps.pop_front();
    }

    if (!statistics.finished) {
        statistics.instrRetired = std::min(retiredIdx, cfg.instrBudget);
        if (retired_now == 0 && head_blocked) {
            statistics.memStallCycles++;
            if (head_blocked_rng)
                statistics.rngStallCycles++;
        }
        if (retiredIdx >= cfg.instrBudget) {
            statistics.finished = true;
            statistics.finishCycle = cpuCycles;
        }
    }

    // ---- Issue stage ---------------------------------------------------
    unsigned inserted = 0;
    while (inserted < cfg.issueWidth) {
        if (rngBlocked)
            break; // Waiting on a random number the next code consumes.
        const std::uint64_t in_window = issuedIdx - retiredIdx;
        if (in_window >= cfg.windowSize)
            break; // Window full.

        if (computeLeft > 0) {
            const std::uint64_t take = std::min<std::uint64_t>(
                {computeLeft, cfg.issueWidth - inserted,
                 cfg.windowSize - in_window});
            computeLeft -= take;
            issuedIdx += take;
            inserted += static_cast<unsigned>(take);
            continue;
        }

        // The operation part of the current trace element.
        assert(opPending);
        mem::Request req;
        req.type = currentOp.type;
        req.addr = currentOp.addr;
        req.core = coreId;
        req.token = issuedIdx;
        if (!mc.enqueue(req, currentBusCycle))
            break; // Queue full: re-try next cycle (frontend stall).

        if (currentOp.type == mem::ReqType::Read) {
            memOps.push_back({issuedIdx, false, false});
            if (!statistics.finished)
                statistics.reads++;
        } else if (currentOp.type == mem::ReqType::Rng) {
            memOps.push_back({issuedIdx, false, true});
            rngBlocked = true;
            rngBlockToken = issuedIdx;
            if (!statistics.finished)
                statistics.rngRequests++;
        } else {
            // Writes are posted: they commit via the write queue and do
            // not block retirement.
            if (!statistics.finished)
                statistics.writes++;
        }
        issuedIdx++;
        inserted++;
        fetchNextOp();
    }
}

} // namespace dstrange::cpu
