#include "api/simulation_builder.h"

#include <stdexcept>

#include "dram/mapping_registry.h"
#include "fault/fault_registry.h"
#include "mem/backend_registry.h"
#include "mem/scheduler_registry.h"
#include "service/arrival_process.h"
#include "service/shed_policy.h"
#include "sim/config_text.h"
#include "sim/design_registry.h"
#include "sim/result_store.h"
#include "strange/predictor_registry.h"

namespace dstrange::sim {

SimulationBuilder &
SimulationBuilder::cacheDir(std::string dir)
{
    cacheDirOverride = std::move(dir);
    return *this;
}

std::shared_ptr<ResultStore>
SimulationBuilder::makeStore() const
{
    if (!cacheDirOverride)
        return ResultStore::openFromEnv();
    if (cacheDirOverride->empty())
        return nullptr;
    return std::make_shared<ResultStore>(*cacheDirOverride);
}

Runner
SimulationBuilder::buildRunner() const
{
    return Runner(cfg, makeStore());
}

SweepRunner
SimulationBuilder::buildSweepRunner(unsigned jobs) const
{
    return SweepRunner(cfg, jobs, makeStore());
}

SimulationBuilder
SimulationBuilder::fromText(const std::string &text)
{
    return SimulationBuilder().applyText(text);
}

SimulationBuilder &
SimulationBuilder::design(SystemDesign d)
{
    applyDesign(cfg, d);
    return *this;
}

SimulationBuilder &
SimulationBuilder::design(const std::string &name)
{
    DesignRegistry::instance().apply(name, cfg);
    return *this;
}

SimulationBuilder &
SimulationBuilder::scheduler(std::string registry_key)
{
    if (!mem::SchedulerRegistry::instance().contains(registry_key))
        throw std::out_of_range("unknown scheduler '" + registry_key +
                                "' (register it first)");
    cfg.scheduler = std::move(registry_key);
    return *this;
}

SimulationBuilder &
SimulationBuilder::rngAwareQueueing(bool on)
{
    cfg.rngAwareQueueing = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::buffering(bool on)
{
    cfg.buffering = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::fillPolicy(std::string mode)
{
    mem::fillModeFromName(mode); // validate early
    cfg.fillPolicy = std::move(mode);
    return *this;
}

SimulationBuilder &
SimulationBuilder::predictor(std::string registry_key)
{
    if (!strange::PredictorRegistry::instance().contains(registry_key))
        throw std::out_of_range("unknown predictor '" + registry_key +
                                "' (register it first)");
    cfg.predictor = std::move(registry_key);
    return *this;
}

SimulationBuilder &
SimulationBuilder::lowUtilFill(bool on)
{
    cfg.lowUtilFill = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::addressMapping(std::string registry_key)
{
    if (!dram::MappingRegistry::instance().contains(registry_key))
        throw std::out_of_range("unknown mapping '" + registry_key +
                                "' (register it first)");
    cfg.addressMapping = std::move(registry_key);
    return *this;
}

SimulationBuilder &
SimulationBuilder::fillPlacement(std::string name)
{
    mem::fillPlacementFromName(name); // validate early
    cfg.fillPlacement = std::move(name);
    return *this;
}

SimulationBuilder &
SimulationBuilder::backend(std::string registry_key)
{
    if (!mem::BackendRegistry::instance().contains(registry_key))
        throw std::out_of_range("unknown backend '" + registry_key +
                                "' (register it first)");
    cfg.backend = std::move(registry_key);
    return *this;
}

SimulationBuilder &
SimulationBuilder::backendReadLatency(Cycle cycles)
{
    cfg.backendReadLatency = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::backendWriteLatency(Cycle cycles)
{
    cfg.backendWriteLatency = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::backendGap(Cycle cycles)
{
    cfg.backendGap = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::recordTrace(std::string path)
{
    cfg.traceRecord = std::move(path);
    return *this;
}

SimulationBuilder &
SimulationBuilder::replayTrace(std::string path)
{
    cfg.traceReplay = std::move(path);
    return *this;
}

SimulationBuilder &
SimulationBuilder::mechanism(const trng::TrngMechanism &m)
{
    cfg.mechanism = m;
    return *this;
}

SimulationBuilder &
SimulationBuilder::mechanism(const std::string &name)
{
    const auto m = trng::TrngMechanism::byName(name);
    if (!m)
        throw std::out_of_range("unknown TRNG mechanism '" + name +
                                "' (known: drange, quac)");
    cfg.mechanism = *m;
    return *this;
}

SimulationBuilder &
SimulationBuilder::fillMechanism(const trng::TrngMechanism &m)
{
    cfg.fillMechanism = m;
    return *this;
}

SimulationBuilder &
SimulationBuilder::fillMechanism(const std::string &name)
{
    const auto m = trng::TrngMechanism::byName(name);
    if (!m)
        throw std::out_of_range("unknown TRNG mechanism '" + name +
                                "' (known: drange, quac)");
    cfg.fillMechanism = *m;
    return *this;
}

SimulationBuilder &
SimulationBuilder::noFillMechanism()
{
    cfg.fillMechanism.reset();
    return *this;
}

SimulationBuilder &
SimulationBuilder::timings(const dram::DramTimings &t)
{
    cfg.timings = t;
    return *this;
}

SimulationBuilder &
SimulationBuilder::geometry(const dram::DramGeometry &g)
{
    cfg.geometry = g;
    return *this;
}

SimulationBuilder &
SimulationBuilder::bufferEntries(unsigned entries)
{
    cfg.bufferEntries = entries;
    return *this;
}

SimulationBuilder &
SimulationBuilder::bufferPartitions(unsigned partitions)
{
    cfg.bufferPartitions = partitions;
    return *this;
}

SimulationBuilder &
SimulationBuilder::lowUtilThreshold(unsigned occupancy)
{
    cfg.lowUtilThreshold = occupancy;
    return *this;
}

SimulationBuilder &
SimulationBuilder::powerDownThreshold(Cycle cycles)
{
    cfg.powerDownThreshold = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::instrBudget(std::uint64_t instructions)
{
    cfg.instrBudget = instructions;
    return *this;
}

SimulationBuilder &
SimulationBuilder::maxBusCycles(Cycle cycles)
{
    cfg.maxBusCycles = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::priorities(std::vector<int> per_core)
{
    cfg.priorities = std::move(per_core);
    return *this;
}

SimulationBuilder &
SimulationBuilder::seed(std::uint64_t s)
{
    cfg.seed = s;
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceEnabled(bool on)
{
    cfg.service.enabled = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceArrival(std::string registry_key)
{
    if (!service::ArrivalRegistry::instance().contains(registry_key))
        throw std::out_of_range("unknown arrival process '" +
                                registry_key + "' (register it first)");
    cfg.service.arrival = std::move(registry_key);
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceOfferedMbps(double mbps)
{
    cfg.service.offeredMbps = mbps;
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceClients(unsigned clients)
{
    cfg.service.clients = clients;
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceSloTarget(Cycle cycles)
{
    cfg.service.sloTargetCycles = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceDuration(Cycle cycles)
{
    cfg.service.durationCycles = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceShedPolicy(std::string registry_key)
{
    if (!service::ShedRegistry::instance().contains(registry_key))
        throw std::out_of_range("unknown shed policy '" + registry_key +
                                "' (register it first)");
    cfg.service.shed = std::move(registry_key);
    return *this;
}

SimulationBuilder &
SimulationBuilder::serviceShedLimit(std::uint64_t limit)
{
    cfg.service.shedLimit = limit;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultModels(const std::string &models_csv)
{
    std::size_t pos = 0;
    while (pos <= models_csv.size() && !models_csv.empty()) {
        const std::size_t comma = models_csv.find(',', pos);
        const std::string key = models_csv.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (!key.empty() &&
            !fault::FaultRegistry::instance().contains(key))
            throw std::out_of_range("unknown fault model '" + key +
                                    "' (register it first)");
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    cfg.fault.models = models_csv;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultSeed(std::uint64_t s)
{
    cfg.fault.seed = s;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultBitflipRate(double rate)
{
    cfg.fault.bitflipRate = rate;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultCells(unsigned cells_per_channel)
{
    cfg.fault.cellsPerChannel = cells_per_channel;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultWeakCells(unsigned cells)
{
    cfg.fault.weakCells = cells;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultWeakSeverity(unsigned severity)
{
    cfg.fault.weakSeverity = severity;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultDriftInterval(std::uint64_t uses)
{
    cfg.fault.driftInterval = uses;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultStuckRows(unsigned rows)
{
    cfg.fault.stuckRows = rows;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultSpares(unsigned cells)
{
    cfg.fault.spareCells = cells;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultMonitor(bool on)
{
    cfg.fault.monitor = on;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultBlacklistThreshold(unsigned failures)
{
    cfg.fault.blacklistThreshold = failures;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultRetryLimit(unsigned rounds)
{
    cfg.fault.retryLimit = rounds;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultOutagePeriod(Cycle cycles)
{
    cfg.fault.outagePeriod = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultOutageDuration(Cycle cycles)
{
    cfg.fault.outageDuration = cycles;
    return *this;
}

SimulationBuilder &
SimulationBuilder::faultOutageScope(std::string scope)
{
    if (scope != "channel" && scope != "rank")
        throw std::out_of_range("unknown outage scope '" + scope +
                                "' (known: channel, rank)");
    cfg.fault.outageScope = std::move(scope);
    return *this;
}

SimulationBuilder &
SimulationBuilder::applyText(const std::string &text)
{
    applyConfigText(cfg, text);
    return *this;
}

std::string
SimulationBuilder::toText() const
{
    return serializeConfig(cfg);
}

} // namespace dstrange::sim
