#include "api/random_device.h"

#include <cmath>

namespace dstrange::api {

RandomDevice::RandomDevice() : RandomDevice(Config{})
{
}

RandomDevice::RandomDevice(const Config &config)
    : cfg(config), entropy(mix64(config.sim.seed) ^ 0xfeed)
{
    mc = std::make_unique<mem::MemoryController>(
        sim::mcConfigFor(cfg.sim), cfg.sim.timings, cfg.sim.geometry,
        cfg.sim.mechanism,
        /*num_cores=*/1);
    mc->setCompletionCallback(
        [this](CoreId, std::uint64_t, mem::ReqType, mem::ServePath) {
            completions++;
        });
}

void
RandomDevice::tick()
{
    mc->tick(now);
    now++;
}

RandomDevice::Result
RandomDevice::getRandom(std::size_t n_bytes)
{
    Result res;
    const std::uint64_t words =
        std::max<std::uint64_t>(1, (n_bytes * 8 + 63) / 64);

    const Cycle start = now;
    const std::uint64_t buffer_hits_before =
        mc->stats().rngServedFromBuffer;

    std::uint64_t submitted = 0;
    const std::uint64_t target = completions + words;
    while (completions < target) {
        if (submitted < words) {
            mem::Request req;
            req.type = mem::ReqType::Rng;
            req.core = 0;
            req.token = nextToken;
            if (mc->enqueue(req, now)) {
                nextToken++;
                submitted++;
            }
        }
        tick();
    }

    res.bytes = entropy.nextBytes(n_bytes);
    res.latencyNs =
        static_cast<double>(now - start) * cfg.sim.timings.tCKns;
    res.servedFromBuffer =
        mc->stats().rngServedFromBuffer - buffer_hits_before == words;
    return res;
}

void
RandomDevice::idle(double ns)
{
    const auto cycles =
        static_cast<Cycle>(std::ceil(ns / cfg.sim.timings.tCKns));
    for (Cycle i = 0; i < cycles; ++i)
        tick();
}

double
RandomDevice::bufferLevelBits() const
{
    const strange::BufferSet *buf = mc->buffer();
    return buf ? buf->levelBits() : 0.0;
}

double
RandomDevice::elapsedNs() const
{
    return static_cast<double>(now) * cfg.sim.timings.tCKns;
}

} // namespace dstrange::api
