/**
 * @file
 * Application interface (Section 5.3): a getrandom()-style blocking API
 * over the simulated DRAM-TRNG memory system. Requests are served from
 * the random number buffer when possible and by on-demand generation
 * otherwise, and the call reports the latency the application would
 * observe.
 */

#ifndef DSTRANGE_API_RANDOM_DEVICE_H
#define DSTRANGE_API_RANDOM_DEVICE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_controller.h"
#include "sim/sim_config.h"
#include "trng/entropy_source.h"

namespace dstrange::api {

/**
 * A simulated /dev/random backed by the DRAM TRNG system. The device
 * owns a memory controller with no other traffic; idle() models the
 * host system's quiet time, during which DR-STRaNGe configurations fill
 * their random number buffer.
 */
class RandomDevice
{
  public:
    struct Config
    {
        /**
         * Full policy/parameter configuration of the backing memory
         * system. Defaults to the DR-STRaNGe design (SimConfig's
         * default) with the device's historical seed; select another
         * design with sim::applyDesign / sim::SimulationBuilder, or
         * flip individual policy knobs directly.
         */
        sim::SimConfig sim;

        Config() { sim.seed = 42; }
    };

    explicit RandomDevice(const Config &config);

    /** Default-configured device (DR-STRaNGe over D-RaNGe). */
    RandomDevice();

    /** Result of one getRandom() call. */
    struct Result
    {
        std::vector<std::uint8_t> bytes;
        double latencyNs = 0.0;
        bool servedFromBuffer = false;
    };

    /**
     * Blocking read of @p n_bytes random bytes, like getrandom(2).
     * Advances simulated time until the request completes.
     */
    Result getRandom(std::size_t n_bytes);

    /** Let the system sit idle for @p ns nanoseconds (buffer refill). */
    void idle(double ns);

    /** Bits currently available in the random number buffer (0 if none). */
    double bufferLevelBits() const;

    /** Total simulated time elapsed, in nanoseconds. */
    double elapsedNs() const;

  private:
    void tick();

    Config cfg;
    std::unique_ptr<mem::MemoryController> mc;
    trng::EntropySource entropy;
    Cycle now = 0;
    std::uint64_t nextToken = 0;
    std::uint64_t completions = 0;
};

} // namespace dstrange::api

#endif // DSTRANGE_API_RANDOM_DEVICE_H
