/**
 * @file
 * Fluent facade over the composable configuration API. One builder
 * covers the whole construction surface: select a named design preset
 * (built-in or registered in sim::DesignRegistry), override individual
 * policy knobs (scheduler / predictor registry keys, buffering, fill,
 * low-utilization mode) and numeric parameters, serialize the result to
 * canonical key=value text (sim/config_text.h), and produce System,
 * Runner, or api::RandomDevice instances.
 *
 *   auto runner = sim::SimulationBuilder()
 *                     .design(sim::SystemDesign::DrStrange)
 *                     .mechanism("quac")
 *                     .bufferEntries(32)
 *                     .instrBudget(200000)
 *                     .buildRunner();
 */

#ifndef DSTRANGE_API_SIMULATION_BUILDER_H
#define DSTRANGE_API_SIMULATION_BUILDER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/sim_config.h"
#include "sim/sweep_runner.h"
#include "sim/system.h"

namespace dstrange::sim {

/**
 * Fluent single-entry-point builder over SimConfig: design presets,
 * policy knobs, numeric parameters, canonical config text, and the
 * simulation products (System, Runner, SweepRunner, grid cells) all
 * hang off one chainable object.
 */
class SimulationBuilder
{
  public:
    /** Starts from SimConfig{} defaults (the DR-STRaNGe design). */
    SimulationBuilder() = default;

    /** Starts from an existing configuration. */
    explicit SimulationBuilder(SimConfig base) : cfg(std::move(base)) {}

    /**
     * Parse a builder from canonical key=value text (the format
     * toText() emits; also accepts design=KEY presets).
     * @throws std::invalid_argument on malformed text.
     */
    static SimulationBuilder fromText(const std::string &text);

    // --- Design presets ----------------------------------------------
    /** Reset the policy knobs to a paper design. */
    SimulationBuilder &design(SystemDesign d);
    /**
     * Reset the policy knobs to a design registered in
     * sim::DesignRegistry (key or display name; covers user-registered
     * designs). @throws std::out_of_range when unknown.
     */
    SimulationBuilder &design(const std::string &name);

    // --- Policy knobs ------------------------------------------------
    /** Registry-keyed setters validate eagerly: @throws
     *  std::out_of_range when the key is not registered (yet). */
    SimulationBuilder &scheduler(std::string registry_key);
    SimulationBuilder &rngAwareQueueing(bool on);
    SimulationBuilder &buffering(bool on);
    SimulationBuilder &fillPolicy(std::string mode);
    SimulationBuilder &predictor(std::string registry_key);
    SimulationBuilder &lowUtilFill(bool on);
    /** Physical-address interleaving policy (dram::MappingRegistry
     *  key, e.g. "row-bank-col-ch" or "row-bank-col-rank-ch"). */
    SimulationBuilder &addressMapping(std::string registry_key);
    /** Cross-channel placement of engine buffer-fill sessions
     *  ("first-idle" or "round-robin"). */
    SimulationBuilder &fillPlacement(std::string name);
    /** Channel timing model behind the controller
     *  (mem::BackendRegistry key: "ddr4" cycle-accurate, or
     *  "fixed-latency" analytical). */
    SimulationBuilder &backend(std::string registry_key);
    /** Read/write service latency of the fixed-latency backend. */
    SimulationBuilder &backendReadLatency(Cycle cycles);
    SimulationBuilder &backendWriteLatency(Cycle cycles);
    /** Minimum cycles between column commands (fixed-latency). */
    SimulationBuilder &backendGap(Cycle cycles);

    // --- Request-trace capture and replay ----------------------------
    /** Record every accepted controller request to a binary trace at
     *  @p path (written crash-safely when the run finishes). */
    SimulationBuilder &recordTrace(std::string path);
    /** Replay a recorded trace instead of simulating cores/service;
     *  controller-side metrics reproduce the recorded run exactly. */
    SimulationBuilder &replayTrace(std::string path);

    // --- Mechanisms and numeric parameters ---------------------------
    /** TRNG mechanism serving demand RNG requests. */
    SimulationBuilder &mechanism(const trng::TrngMechanism &m);
    /** Built-in mechanism by name ("drange"/"quac").
     *  @throws std::out_of_range when unknown. */
    SimulationBuilder &mechanism(const std::string &name);
    /** Separate mechanism for buffer fills (hybrid designs,
     *  Section 8.7); the default is the demand mechanism. */
    SimulationBuilder &fillMechanism(const trng::TrngMechanism &m);
    SimulationBuilder &fillMechanism(const std::string &name);
    /** Fills use the demand mechanism again (undo fillMechanism()). */
    SimulationBuilder &noFillMechanism();
    SimulationBuilder &timings(const dram::DramTimings &t);
    SimulationBuilder &geometry(const dram::DramGeometry &g);
    SimulationBuilder &bufferEntries(unsigned entries);
    SimulationBuilder &bufferPartitions(unsigned partitions);
    /** Queue-occupancy threshold below which low-util fill kicks in. */
    SimulationBuilder &lowUtilThreshold(unsigned occupancy);
    /** Idle cycles before a rank enters power-down. */
    SimulationBuilder &powerDownThreshold(Cycle cycles);
    /** Per-core instruction budget ending the simulation. */
    SimulationBuilder &instrBudget(std::uint64_t instructions);
    /** Hard bus-cycle cap (0 = none), a safety net over instrBudget. */
    SimulationBuilder &maxBusCycles(Cycle cycles);
    /** Per-core scheduling priorities (empty = all equal). */
    SimulationBuilder &priorities(std::vector<int> per_core);
    SimulationBuilder &seed(std::uint64_t s);

    // --- Open-loop service layer (service::OpenLoopService) ----------
    /** Attach the open-loop RNG request service to the built system. */
    SimulationBuilder &serviceEnabled(bool on);
    /** Arrival process (service::ArrivalRegistry key, e.g. "poisson",
     *  "bursty", "diurnal", "closed-loop").
     *  @throws std::out_of_range when the key is not registered. */
    SimulationBuilder &serviceArrival(std::string registry_key);
    /** Aggregate offered RNG load in Mbps across all logical clients. */
    SimulationBuilder &serviceOfferedMbps(double mbps);
    /** Logical client population (closed-loop concurrency; also the
     *  bursty/diurnal modulation base). */
    SimulationBuilder &serviceClients(unsigned clients);
    /** SLO latency target in bus cycles (requests above it count as
     *  over-SLO in the SloReport). */
    SimulationBuilder &serviceSloTarget(Cycle cycles);
    /** Bus cycles over which new requests are generated. */
    SimulationBuilder &serviceDuration(Cycle cycles);
    /** Admission-control policy (service::ShedRegistry key:
     *  "shed-none", "shed-tail", "shed-priority").
     *  @throws std::out_of_range when the key is not registered. */
    SimulationBuilder &serviceShedPolicy(std::string registry_key);
    /** Backlog bound the shed policy trips at (0 = derive from the SLO
     *  target and offered rate). */
    SimulationBuilder &serviceShedLimit(std::uint64_t limit);

    // --- Fault injection (fault::FaultPlane / fault::FaultyBackend) --
    /**
     * Comma-separated fault::FaultRegistry keys to inject ("bitflip",
     * "weak-cell", "stuck-row", "outage"); empty disables injection.
     * @throws std::out_of_range when any key is not registered.
     */
    SimulationBuilder &faultModels(const std::string &models_csv);
    /** Seed of the fault plane (independent of the master seed). */
    SimulationBuilder &faultSeed(std::uint64_t s);
    /** Expected silently-flipped bits per 256-bit round ("bitflip"). */
    SimulationBuilder &faultBitflipRate(double rate);
    /** RNG cell pool per channel / weak and stuck population sizes. */
    SimulationBuilder &faultCells(unsigned cells_per_channel);
    SimulationBuilder &faultWeakCells(unsigned cells);
    SimulationBuilder &faultWeakSeverity(unsigned severity);
    /** Uses per severity step a weak cell drifts by (0 = no drift). */
    SimulationBuilder &faultDriftInterval(std::uint64_t uses);
    SimulationBuilder &faultStuckRows(unsigned rows);
    /** Screened spare cells per channel for blacklist remapping. */
    SimulationBuilder &faultSpares(unsigned cells);
    /** Health monitor on/off and its escalation bounds. */
    SimulationBuilder &faultMonitor(bool on);
    SimulationBuilder &faultBlacklistThreshold(unsigned failures);
    SimulationBuilder &faultRetryLimit(unsigned rounds);
    /** Periodic rank/channel outage windows ("outage" model). */
    SimulationBuilder &faultOutagePeriod(Cycle cycles);
    SimulationBuilder &faultOutageDuration(Cycle cycles);
    /** Outage blast radius: "channel" or "rank".
     *  @throws std::out_of_range on any other value. */
    SimulationBuilder &faultOutageScope(std::string scope);

    // --- Execution environment ---------------------------------------
    /**
     * Persistent alone-run cache directory for the built Runner /
     * SweepRunner (see sim::ResultStore): baselines are read from and
     * written back to @p dir, shared safely between concurrent
     * processes. An empty string disables persistence. When this
     * setter is never called, the built products fall back to the
     * DS_CACHE_DIR environment variable (unset = no persistence).
     */
    SimulationBuilder &cacheDir(std::string dir);

    // --- Text form ---------------------------------------------------
    /** Apply key=value tokens on top of the current state.
     *  @throws std::invalid_argument on malformed text. */
    SimulationBuilder &applyText(const std::string &text);
    /** Canonical key=value serialization of the current state. */
    std::string toText() const;

    // --- Products ----------------------------------------------------
    /** The built configuration (valid to copy and use directly). */
    const SimConfig &config() const { return cfg; }
    /** The memory-controller slice of the configuration. */
    mem::McConfig mcConfig() const { return mcConfigFor(cfg); }
    /** Experiment runner over this configuration (honors cacheDir()). */
    Runner buildRunner() const;
    /** One simulated system over explicit per-core traces. */
    System buildSystem(
        std::vector<std::unique_ptr<cpu::TraceSource>> traces) const
    {
        return System(cfg, std::move(traces));
    }

    /** Parallel sweep executor over this configuration (jobs == 0
     *  selects DS_JOBS / hardware_concurrency; honors cacheDir()). */
    SweepRunner buildSweepRunner(unsigned jobs = 0) const;

    /**
     * One SweepRunner grid cell that runs @p spec under exactly this
     * builder's configuration — the way to put arbitrary knob
     * combinations (hybrid mechanisms, power-down thresholds, custom
     * schedulers) next to design-key cells in one parallel grid.
     */
    SweepRunner::Cell buildSweepCell(workloads::WorkloadSpec spec) const
    {
        SweepRunner::Cell cell;
        cell.config = cfg;
        cell.spec = std::move(spec);
        return cell;
    }

  private:
    std::shared_ptr<ResultStore> makeStore() const;

    SimConfig cfg;
    /** nullopt = DS_CACHE_DIR default; "" = persistence disabled. */
    std::optional<std::string> cacheDirOverride;
};

} // namespace dstrange::sim

#endif // DSTRANGE_API_SIMULATION_BUILDER_H
