#include "trng/bit_quality.h"

#include <array>
#include <cmath>

#if defined(__has_include)
#if __has_include(<bit>)
#include <bit>
#endif
#endif

namespace dstrange::trng {

namespace {

int
popcount8(std::uint8_t b)
{
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
    return std::popcount(b);
#else
    // Pre-C++20 toolchains lack std::popcount: SWAR count on one byte.
    unsigned v = b;
    v = v - ((v >> 1) & 0x55u);
    v = (v & 0x33u) + ((v >> 2) & 0x33u);
    return static_cast<int>((v + (v >> 4)) & 0x0Fu);
#endif
}

std::uint64_t
countOnes(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t ones = 0;
    for (std::uint8_t b : bytes)
        ones += static_cast<std::uint64_t>(popcount8(b));
    return ones;
}

} // namespace

TestResult
monobitTest(const std::vector<std::uint8_t> &bytes)
{
    TestResult res;
    const double n = static_cast<double>(bytes.size()) * 8.0;
    if (n == 0.0)
        return res;
    const double ones = static_cast<double>(countOnes(bytes));
    res.statistic = std::abs(2.0 * ones - n) / std::sqrt(n);
    res.pass = res.statistic < 3.29;
    return res;
}

TestResult
runsTest(const std::vector<std::uint8_t> &bytes)
{
    TestResult res;
    const std::size_t n_bits = bytes.size() * 8;
    if (n_bits < 2)
        return res;

    auto bit_at = [&](std::size_t i) {
        return (bytes[i / 8] >> (i % 8)) & 1;
    };

    std::uint64_t runs = 1;
    for (std::size_t i = 1; i < n_bits; ++i)
        if (bit_at(i) != bit_at(i - 1))
            ++runs;

    const double n = static_cast<double>(n_bits);
    const double pi =
        static_cast<double>(countOnes(bytes)) / n; // fraction of ones
    const double expected = 2.0 * n * pi * (1.0 - pi) + 1.0;
    const double variance =
        2.0 * n * pi * (1.0 - pi) * (2.0 * pi * (1.0 - pi));
    if (variance <= 0.0)
        return res;
    res.statistic =
        std::abs(static_cast<double>(runs) - expected) / std::sqrt(variance);
    res.pass = res.statistic < 3.29;
    return res;
}

TestResult
chiSquareByteTest(const std::vector<std::uint8_t> &bytes)
{
    TestResult res;
    if (bytes.size() < 2560) // need >=10 expected per bin
        return res;
    std::array<std::uint64_t, 256> hist{};
    for (std::uint8_t b : bytes)
        hist[b]++;
    const double expected = static_cast<double>(bytes.size()) / 256.0;
    double chi2 = 0.0;
    for (std::uint64_t h : hist) {
        const double d = static_cast<double>(h) - expected;
        chi2 += d * d / expected;
    }
    res.statistic = chi2;
    res.pass = chi2 > 160.0 && chi2 < 380.0;
    return res;
}

TestResult
serialCorrelationTest(const std::vector<std::uint8_t> &bytes)
{
    TestResult res;
    const std::size_t n = bytes.size();
    if (n < 2)
        return res;

    double sum_x = 0.0, sum_x2 = 0.0, sum_xy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = bytes[i];
        sum_x += x;
        sum_x2 += x * x;
        sum_xy += x * bytes[(i + 1) % n];
    }
    const double nn = static_cast<double>(n);
    const double num = nn * sum_xy - sum_x * sum_x;
    const double den = nn * sum_x2 - sum_x * sum_x;
    if (den == 0.0)
        return res;
    res.statistic = num / den;
    res.pass = std::abs(res.statistic) < 0.05;
    return res;
}

double
shannonEntropyPerByte(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.empty())
        return 0.0;
    std::array<std::uint64_t, 256> hist{};
    for (std::uint8_t b : bytes)
        hist[b]++;
    double entropy = 0.0;
    const double n = static_cast<double>(bytes.size());
    for (std::uint64_t h : hist) {
        if (h == 0)
            continue;
        const double p = static_cast<double>(h) / n;
        entropy -= p * std::log2(p);
    }
    return entropy;
}

} // namespace dstrange::trng
