#include "trng/rng_engine.h"

#include <cassert>

namespace dstrange::trng {

RngEngine::RngEngine(const TrngMechanism &mechanism,
                     mem::MemoryBackend &channel)
    : RngEngine(mechanism, mechanism, channel)
{
}

RngEngine::RngEngine(const TrngMechanism &demand_mechanism,
                     const TrngMechanism &fill_mechanism,
                     mem::MemoryBackend &channel)
    : demandMech(demand_mechanism), fillMech(fill_mechanism),
      activeMech(&demandMech), chan(channel)
{
    assert(demandMech.bitsPerRound > 0.0 && demandMech.roundLatency > 0);
    assert(fillMech.bitsPerRound > 0.0 && fillMech.roundLatency > 0);
}

bool
RngEngine::isHybrid() const
{
    return demandMech.name != fillMech.name;
}

bool
RngEngine::canResumeAs(SessionKind new_kind) const
{
    return !isHybrid() || new_kind == kind;
}

void
RngEngine::start(Cycle now, SessionKind session_kind)
{
    assert(idle());
    state = State::SwitchingIn;
    wind = Wind::None;
    kind = session_kind;
    activeMech =
        session_kind == SessionKind::Fill ? &fillMech : &demandMech;
    phaseEndsAt = now + activeMech->switchInLatency;
    // Occupation is extended cycle by cycle in tick() so an aborted
    // switch-in does not leave the channel fenced to the full horizon.
    chan.occupyForRng(now + kAbortPenalty);
}

void
RngEngine::resume(Cycle now)
{
    assert(parked());
    wind = Wind::None;
    beginRound(now);
}

void
RngEngine::beginRound(Cycle now)
{
    state = State::Round;
    phaseEndsAt = now + activeMech->roundLatency;
}

void
RngEngine::abortSwitchIn(Cycle now)
{
    assert(switchingIn());
    state = State::Regular;
    wind = Wind::None;
    aborts++;
    chan.occupyForRng(now + kAbortPenalty);
}

Cycle
RngEngine::nextEventCycle(Cycle now) const
{
    switch (state) {
      case State::Regular:
        return kNoEvent;
      case State::Parked:
        // A pending stop takes effect on the very next tick; otherwise a
        // parked engine only reacts to the controller.
        return wind == Wind::Stop ? now : kNoEvent;
      case State::SwitchingIn:
      case State::Round:
      case State::SwitchingOut:
        // The phase completes during the tick at phaseEndsAt - 1 (tick()
        // fires when now + 1 >= phaseEndsAt); every earlier tick only
        // counts cycles and extends the channel occupancy.
        return phaseEndsAt > now + 1 ? phaseEndsAt - 1 : now;
    }
    return now;
}

void
RngEngine::fastForward(Cycle from, Cycle to)
{
    assert(to > from);
    if (state == State::Regular)
        return;
    // Per-cycle ticks extend the occupation monotonically; the batched
    // span's final extension (from cycle to - 1) covers them all.
    chan.occupyForRng(to - 1 + kAbortPenalty);
    if (state == State::Parked)
        parkedCycles += to - from;
    else
        occupiedCycles += to - from;
}

void
RngEngine::fastForwardPhases(unsigned transitions)
{
    assert(state == State::Round || state == State::SwitchingIn);
    assert(wind == Wind::None);
    for (unsigned i = 0; i < transitions; ++i) {
        if (state == State::SwitchingIn) {
            state = State::Round; // Switch-in completes; first round.
        } else {
            // One round completes; the bits are routed by the caller.
            chan.noteRngRound();
            bitsProduced += activeMech->bitsPerRound;
        }
        phaseEndsAt += activeMech->roundLatency;
    }
}

void
RngEngine::fastForwardFinalRound()
{
    assert(state == State::Round && wind == Wind::Stop);
    chan.noteRngRound();
    bitsProduced += activeMech->bitsPerRound;
    state = State::SwitchingOut;
    phaseEndsAt += activeMech->switchOutLatency;
}

double
RngEngine::tick(Cycle now)
{
    if (state == State::Regular)
        return 0.0;

    chan.occupyForRng(now + kAbortPenalty);

    if (state == State::Parked) {
        parkedCycles++;
        if (wind == Wind::Stop) {
            state = State::SwitchingOut;
            phaseEndsAt = now + activeMech->switchOutLatency;
            occupiedCycles++;
        }
        return 0.0;
    }

    occupiedCycles++;
    if (now + 1 < phaseEndsAt)
        return 0.0;

    // The current phase completes at the end of this cycle.
    const Cycle next = phaseEndsAt;
    switch (state) {
      case State::SwitchingIn:
        beginRound(next);
        return 0.0;
      case State::Round: {
        chan.noteRngRound();
        bitsProduced += activeMech->bitsPerRound;
        if (wind == Wind::Stop) {
            state = State::SwitchingOut;
            phaseEndsAt = next + activeMech->switchOutLatency;
        } else if (wind == Wind::Park) {
            state = State::Parked;
        } else {
            beginRound(next);
        }
        return activeMech->bitsPerRound;
      }
      case State::SwitchingOut:
        state = State::Regular;
        wind = Wind::None;
        return 0.0;
      case State::Parked:
      case State::Regular:
        break;
    }
    return 0.0;
}

} // namespace dstrange::trng
