#include "trng/entropy_source.h"

// EntropySource is header-only; this translation unit anchors the library.
