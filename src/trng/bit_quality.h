/**
 * @file
 * NIST-SP800-22-style statistical quality checks for random bitstreams.
 * Used in tests and examples to validate the simulated entropy source the
 * same way the paper's TRNG mechanisms validate their post-processed
 * output.
 */

#ifndef DSTRANGE_TRNG_BIT_QUALITY_H
#define DSTRANGE_TRNG_BIT_QUALITY_H

#include <cstdint>
#include <vector>

namespace dstrange::trng {

/** Result of one statistical test. */
struct TestResult
{
    double statistic = 0.0; ///< Test-specific statistic (e.g. |z|).
    bool pass = false;      ///< Pass at the test's default significance.
};

/**
 * Frequency (monobit) test: the fraction of ones should be ~0.5.
 * Passes when |z| < 3.29 (alpha ~ 0.001).
 */
TestResult monobitTest(const std::vector<std::uint8_t> &bytes);

/**
 * Runs test: the number of maximal same-bit runs should match the
 * expectation for an unbiased source. Passes when |z| < 3.29.
 */
TestResult runsTest(const std::vector<std::uint8_t> &bytes);

/**
 * Byte-level chi-square uniformity test over 256 bins. Passes when the
 * statistic lies within a generous [160, 380] band (df = 255).
 */
TestResult chiSquareByteTest(const std::vector<std::uint8_t> &bytes);

/**
 * First-order serial correlation of consecutive bytes; near 0 for a good
 * source. Passes when |r| < 0.05.
 */
TestResult serialCorrelationTest(const std::vector<std::uint8_t> &bytes);

/** Shannon entropy per byte (max 8.0). */
double shannonEntropyPerByte(const std::vector<std::uint8_t> &bytes);

} // namespace dstrange::trng

#endif // DSTRANGE_TRNG_BIT_QUALITY_H
