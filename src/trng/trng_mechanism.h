/**
 * @file
 * Parametric model of a DRAM-based TRNG mechanism. A mechanism is
 * described by how many random bits one "round" of timing-violation
 * accesses yields on one channel, how long a round occupies the channel,
 * and the cost of switching the channel between Regular and RNG modes
 * (timing parameters must be changed and banks precharged on both edges).
 */

#ifndef DSTRANGE_TRNG_TRNG_MECHANISM_H
#define DSTRANGE_TRNG_TRNG_MECHANISM_H

#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace dstrange::trng {

/**
 * TRNG mechanism parameters. Two concrete instances model the paper's
 * mechanisms:
 *
 * - D-RaNGe (HPCA'19): one low-latency round reads one RNG cell per bank
 *   (8 bits / round / channel) in one PeriodThreshold-sized burst; modest
 *   sustained throughput (~563 Mb/s system-wide), low 64-bit latency.
 * - QUAC-TRNG (ISCA'21): one quadruple-activation + SHA-256 round yields
 *   512 bits but takes much longer; high sustained throughput
 *   (~3.4 Gb/s system-wide), high 64-bit latency.
 */
struct TrngMechanism
{
    std::string name = "custom";

    /** Random bits one round yields on one channel (fractional allowed
     *  for the Figure-2 throughput-sweep mechanisms). */
    double bitsPerRound = 8.0;

    /** Bus cycles one round occupies the channel. */
    Cycle roundLatency = 40;

    /** Bus cycles to enter RNG mode (precharge + timing-parameter swap). */
    Cycle switchInLatency = 24;

    /** Bus cycles to restore Regular mode. */
    Cycle switchOutLatency = 16;

    /** Sustained per-channel throughput in Mb/s (rounds back to back). */
    double perChannelThroughputMbps() const;

    /** Sustained system throughput in Mb/s over @p channels channels. */
    double systemThroughputMbps(unsigned channels) const;

    /**
     * Latency in bus cycles to generate @p bits on demand with
     * @p channels channels operating in parallel from Regular mode,
     * including both mode switches.
     */
    Cycle demandLatency(unsigned bits, unsigned channels) const;

    /**
     * Look up a built-in mechanism by CLI key or display name:
     * "drange"/"D-RaNGe" or "quac"/"QUAC-TRNG". nullopt when unknown.
     */
    static std::optional<TrngMechanism> byName(std::string_view name);

    /** The D-RaNGe mechanism model. */
    static TrngMechanism dRange();

    /** The QUAC-TRNG mechanism model. */
    static TrngMechanism quacTrng();

    /**
     * A D-RaNGe-latency mechanism scaled to the given *system* throughput
     * (Figure 2 sweep: round latency is held at D-RaNGe's value and the
     * per-round yield is scaled).
     */
    static TrngMechanism withSystemThroughput(double mbps, unsigned channels);
};

} // namespace dstrange::trng

#endif // DSTRANGE_TRNG_TRNG_MECHANISM_H
