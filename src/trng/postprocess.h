/**
 * @file
 * Bitstream post-processing used by DRAM TRNG mechanisms: the von
 * Neumann corrector D-RaNGe applies to raw RNG-cell reads, and
 * SHA-256-based conditioning as used by QUAC-TRNG. Both consume raw
 * (possibly biased) bits and emit unbiased output bits, with the
 * throughput cost the mechanisms' quoted rates already account for.
 */

#ifndef DSTRANGE_TRNG_POSTPROCESS_H
#define DSTRANGE_TRNG_POSTPROCESS_H

#include <cstdint>
#include <vector>

namespace dstrange::trng {

/**
 * Von Neumann corrector: consumes bit pairs, emits the first bit of
 * each discordant pair (01 -> 0, 10 -> 1), discards concordant pairs.
 * Removes bias from independent-but-biased bits at a 4x-plus rate cost.
 */
class VonNeumannCorrector
{
  public:
    /** Feed one raw bit; returns true if an output bit was produced. */
    bool feed(bool raw_bit, bool &out_bit);

    /** Process a whole byte vector (bit order: LSB first per byte). */
    std::vector<std::uint8_t>
    process(const std::vector<std::uint8_t> &raw);

    /** Raw bits consumed so far. */
    std::uint64_t rawBitsIn() const { return bitsIn; }

    /** Output bits produced so far. */
    std::uint64_t bitsOut() const { return bitsEmitted; }

    /** Output/input bit ratio (0.25 for unbiased input). */
    double efficiency() const;

  private:
    bool havePending = false;
    bool pendingBit = false;
    std::uint64_t bitsIn = 0;
    std::uint64_t bitsEmitted = 0;
};

/**
 * SHA-256 conditioner: compresses each 64-byte raw block into a 32-byte
 * conditioned block (2:1 entropy extraction, QUAC-TRNG's scheme).
 * Partial trailing blocks are buffered until full.
 */
class Sha256Conditioner
{
  public:
    /** Feed raw bytes; conditioned output is appended to out. */
    void feed(const std::vector<std::uint8_t> &raw,
              std::vector<std::uint8_t> &out);

    /** Raw bytes buffered awaiting a full block. */
    std::size_t pendingBytes() const { return pending.size(); }

  private:
    std::vector<std::uint8_t> pending;
};

} // namespace dstrange::trng

#endif // DSTRANGE_TRNG_POSTPROCESS_H
