/**
 * @file
 * Compact SHA-256 implementation (FIPS 180-4). QUAC-TRNG post-processes
 * the raw QUAC sieve with SHA-256 to condition the entropy; this is the
 * same conditioning step, used by the post-processing pipeline and the
 * security examples.
 */

#ifndef DSTRANGE_TRNG_SHA256_H
#define DSTRANGE_TRNG_SHA256_H

#include <array>
#include <cstdint>
#include <vector>

namespace dstrange::trng {

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    void
    update(const std::vector<std::uint8_t> &data)
    {
        update(data.data(), data.size());
    }

    /** Finalize and return the 32-byte digest (object becomes reusable
     *  only after reset()). */
    std::array<std::uint8_t, 32> digest();

    /** Restore the initial state. */
    void reset();

    /** One-shot convenience helper. */
    static std::array<std::uint8_t, 32>
    hash(const std::vector<std::uint8_t> &data);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state;
    std::uint64_t bitLength = 0;
    std::array<std::uint8_t, 64> buffer;
    std::size_t bufferLen = 0;
};

} // namespace dstrange::trng

#endif // DSTRANGE_TRNG_SHA256_H
