/**
 * @file
 * Per-channel RNG-mode execution engine. The memory controller starts the
 * engine to put a channel in RNG mode; the engine then occupies the DRAM
 * channel for the mode-switch and per-round latencies of the configured
 * TRNG mechanism and reports the bits each completed round yields.
 */

#ifndef DSTRANGE_TRNG_RNG_ENGINE_H
#define DSTRANGE_TRNG_RNG_ENGINE_H

#include <cstdint>

#include "common/types.h"
#include "mem/memory_backend.h"
#include "trng/trng_mechanism.h"

namespace dstrange::trng {

/**
 * Drives RNG-mode operation on one DRAM channel.
 *
 * State machine: Regular -> SwitchingIn -> Round -> (Round ...) ->
 * SwitchingOut -> Regular. A stop request takes effect at the end of the
 * current round — the paper's mechanisms cannot abort a round because
 * non-standard timing parameters are active and data integrity elsewhere
 * in the array must be preserved. Two refinements:
 *
 * - An in-progress *switch-in* can be aborted cheaply (the timing-
 *   parameter swap is rolled back before any access happened); a
 *   mispredicted fill session therefore wastes an opportunity but does
 *   not commit the channel to a full round.
 * - After serving demand the controller may *park* the channel in RNG
 *   mode: rounds pause but the non-standard timing parameters stay in
 *   effect, so an imminent next RNG request resumes generation without
 *   paying the switch-in again (the paper's "RNG requests are served in
 *   bursts" behaviour). A parked channel still cannot serve regular
 *   requests until it switches out.
 */
class RngEngine
{
  public:
    /** What a session is generating for; hybrid configurations may use
     *  different mechanisms for the two (Section 8.7 future work). */
    enum class SessionKind : std::uint8_t
    {
        Demand, ///< On-demand 64-bit request service.
        Fill,   ///< Proactive random number buffer filling.
    };

    /** Single-mechanism engine (demand and fill share the mechanism). */
    RngEngine(const TrngMechanism &mechanism, mem::MemoryBackend &channel);

    /** Hybrid engine: separate demand and fill mechanisms. */
    RngEngine(const TrngMechanism &demand_mechanism,
              const TrngMechanism &fill_mechanism,
              mem::MemoryBackend &channel);

    /** true when the channel is fully back in Regular mode. */
    bool idle() const { return state == State::Regular; }

    /** true from switch-in start until switch-out end (incl. parked). */
    bool active() const { return state != State::Regular; }

    /** true while committed to at least one more round completion. */
    bool inRound() const { return state == State::Round; }

    /** true while still swapping timing parameters (abortable phase). */
    bool switchingIn() const { return state == State::SwitchingIn; }

    /** true while parked in RNG mode (rounds paused). */
    bool parked() const { return state == State::Parked; }

    /**
     * Begin switching the channel into RNG mode for the given session
     * kind (which selects the mechanism in hybrid configurations).
     * @pre idle()
     */
    void start(Cycle now, SessionKind kind = SessionKind::Demand);

    /**
     * Resume rounds from the parked state (no switch-in needed). The
     * parked mechanism stays active; see canResumeAs().
     * @pre parked()
     */
    void resume(Cycle now);

    /**
     * true if a parked engine can serve @p kind without switching
     * mechanisms (always true for single-mechanism engines).
     */
    bool canResumeAs(SessionKind kind) const;

    /** Kind of the current/last session. */
    SessionKind sessionKind() const { return kind; }

    /** Ask the engine to exit RNG mode after the current round. */
    void requestStop() { wind = Wind::Stop; }

    /** Ask the engine to park in RNG mode after the current round. */
    void requestPark() { wind = Wind::Park; }

    /** Cancel a pending stop/park (more demand arrived). */
    void cancelStop() { wind = Wind::None; }

    /**
     * Abort an in-progress switch-in: the timing-parameter swap has not
     * completed, so it can be rolled back quickly without a round and
     * without the full switch-out; no bits are produced. Used when a
     * regular request arrives during a mispredicted fill session.
     * @pre switchingIn()
     */
    void abortSwitchIn(Cycle now);

    /**
     * Advance one bus cycle.
     * @return random bits produced this cycle (non-zero only on the cycle
     *         a round completes).
     */
    double tick(Cycle now);

    /**
     * Earliest cycle >= @p now at which tick() does anything beyond the
     * batchable per-cycle bookkeeping (occupancy extension and
     * occupied/parked-cycle counting): a phase completion, or an
     * immediate parked-to-switch-out transition. kNoEvent when the
     * engine is idle or parked without a pending stop — it then changes
     * state only when the controller tells it to.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Batch-apply the per-cycle tick() effects for bus cycles
     * [@p from, @p to) in one step (cycle counting and channel-fence
     * extension; phase completions inside the span are applied
     * separately via fastForwardPhases()). Bit-identical to ticking
     * each cycle.
     */
    void fastForward(Cycle from, Cycle to);

    /** End cycle of the current phase (switch or round). */
    Cycle phaseEndCycle() const { return phaseEndsAt; }

    /**
     * Batch-apply @p transitions consecutive phase completions of a
     * generating engine inside a fast-forwarded span: a pending
     * switch-in completion (no bits) followed by round completions
     * (each producing bitsPerRound and noting one channel RNG round),
     * exactly as the per-cycle ticks would. The engine keeps
     * generating afterwards (the span proved no stop/park interferes).
     * @pre (inRound() || switchingIn()) && no stop/park pending
     */
    void fastForwardPhases(unsigned transitions);

    /**
     * Batch-apply the final round completion of a stopping engine
     * inside a fast-forwarded span: the round's bits are produced and
     * the engine moves to SwitchingOut, whose completion is the span's
     * bounding event.
     * @pre inRound() && a stop is pending
     */
    void fastForwardFinalRound();

    /** true while a stop is requested for the end of the round. */
    bool stopRequested() const { return wind == Wind::Stop; }

    /** true while a park is requested for the end of the round. */
    bool parkRequested() const { return wind == Wind::Park; }

    /** true when no end-of-round disposition is pending. */
    bool windNone() const { return wind == Wind::None; }

    /** Total bits produced since construction. */
    double totalBits() const { return bitsProduced; }

    /** Bus cycles spent switching or generating (excludes parking). */
    Cycle totalOccupiedCycles() const { return occupiedCycles; }

    /** Bus cycles spent parked in RNG mode. */
    Cycle totalParkedCycles() const { return parkedCycles; }

    /** Number of aborted switch-ins (wasted fill attempts). */
    std::uint64_t totalAborts() const { return aborts; }

    /** Mechanism of the current/last session. */
    const TrngMechanism &mechanism() const { return *activeMech; }

    const TrngMechanism &demandMechanism() const { return demandMech; }
    const TrngMechanism &fillMechanism() const { return fillMech; }

    /** true when demand and fill use distinct mechanisms. */
    bool isHybrid() const;

  private:
    enum class State : std::uint8_t
    {
        Regular,
        SwitchingIn,
        Round,
        SwitchingOut,
        Parked,
    };

    /** Requested end-of-round disposition. */
    enum class Wind : std::uint8_t
    {
        None, ///< Keep generating rounds.
        Park, ///< Pause rounds, stay in RNG mode.
        Stop, ///< Switch back to Regular mode.
    };

    void beginRound(Cycle now);

    TrngMechanism demandMech;
    TrngMechanism fillMech;
    const TrngMechanism *activeMech;
    mem::MemoryBackend &chan;

    State state = State::Regular;
    Wind wind = Wind::None;
    SessionKind kind = SessionKind::Demand;
    Cycle phaseEndsAt = 0;

    double bitsProduced = 0.0;
    Cycle occupiedCycles = 0;
    Cycle parkedCycles = 0;
    std::uint64_t aborts = 0;

    /** Bus cycles the channel stays fenced after an abort (rollback). */
    static constexpr Cycle kAbortPenalty = 2;
};

} // namespace dstrange::trng

#endif // DSTRANGE_TRNG_RNG_ENGINE_H
