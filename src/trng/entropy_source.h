/**
 * @file
 * Simulated physical entropy. On real hardware the bits come from DRAM
 * timing failures in reserved RNG cells; in the simulator they come from a
 * deterministic-seeded xoshiro256** stream so that experiments reproduce
 * bit-for-bit. The BitQuality suite (bit_quality.h) validates that the
 * stream behaves like the unbiased post-processed output the paper's TRNG
 * mechanisms deliver.
 */

#ifndef DSTRANGE_TRNG_ENTROPY_SOURCE_H
#define DSTRANGE_TRNG_ENTROPY_SOURCE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dstrange::trng {

/**
 * Produces the random payload bits of the simulated TRNG. One instance is
 * shared by the whole memory system; every harvested bit is counted so
 * tests can check conservation (bits served == bits harvested).
 */
class EntropySource
{
  public:
    explicit EntropySource(std::uint64_t seed) : gen(seed) {}

    /** Harvest one 64-bit random word. */
    std::uint64_t
    next64()
    {
        bitsHarvested += 64;
        return gen.next();
    }

    /** Harvest @p n bytes into a vector (for the RandomDevice API). */
    std::vector<std::uint8_t>
    nextBytes(std::size_t n)
    {
        std::vector<std::uint8_t> out(n);
        std::uint64_t word = 0;
        unsigned have = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (have == 0) {
                word = next64();
                have = 8;
            }
            out[i] = static_cast<std::uint8_t>(word & 0xff);
            word >>= 8;
            --have;
        }
        return out;
    }

    /** Total bits harvested since construction. */
    std::uint64_t totalBitsHarvested() const { return bitsHarvested; }

  private:
    Xoshiro256ss gen;
    std::uint64_t bitsHarvested = 0;
};

} // namespace dstrange::trng

#endif // DSTRANGE_TRNG_ENTROPY_SOURCE_H
