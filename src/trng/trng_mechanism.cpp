#include "trng/trng_mechanism.h"

#include <cassert>
#include <cmath>

namespace dstrange::trng {

double
TrngMechanism::perChannelThroughputMbps() const
{
    return bitsPerRound / static_cast<double>(roundLatency) * kBusFreqHz /
           1e6;
}

double
TrngMechanism::systemThroughputMbps(unsigned channels) const
{
    return perChannelThroughputMbps() * channels;
}

Cycle
TrngMechanism::demandLatency(unsigned bits, unsigned channels) const
{
    assert(channels > 0);
    const double bits_per_channel =
        static_cast<double>(bits) / static_cast<double>(channels);
    const auto rounds = static_cast<Cycle>(
        std::ceil(bits_per_channel / bitsPerRound));
    return switchInLatency + rounds * roundLatency + switchOutLatency;
}

std::optional<TrngMechanism>
TrngMechanism::byName(std::string_view name)
{
    if (name == "drange" || name == "D-RaNGe")
        return dRange();
    if (name == "quac" || name == "QUAC-TRNG")
        return quacTrng();
    return std::nullopt;
}

TrngMechanism
TrngMechanism::dRange()
{
    TrngMechanism m;
    m.name = "D-RaNGe";
    // One round pipelines reduced-tRCD reads across the banks of a
    // channel and harvests 8 random bits (one RNG cell per bank).
    // Sustained: 8 b / 5 cyc * 800 MHz = 1.28 Gb/s per channel. The
    // calibration is system-level: with the paper's most intensive RNG
    // benchmark (one blocking 64-bit request per ~150 instructions) the
    // on-demand latency of 5 + 2*5 + 3 = 18 bus cycles across 4 channels
    // reproduces the baseline's ~60-70%% RNG channel occupancy and the
    // resulting non-RNG slowdowns of Figures 1 and 6. A fill session
    // interrupted during the switch-in (timing-parameter swap) aborts
    // and yields nothing, which is what makes idle-period *prediction*
    // profitable over unconditional filling (Fig. 13); see
    // EXPERIMENTS.md for the calibration discussion.
    m.bitsPerRound = 8.0;
    m.roundLatency = 5;
    m.switchInLatency = 5;
    m.switchOutLatency = 3;
    return m;
}

TrngMechanism
TrngMechanism::quacTrng()
{
    TrngMechanism m;
    m.name = "QUAC-TRNG";
    // One QUAC round (quadruple activation over a 64-byte-wide segment +
    // SHA-256 post-processing) yields 512 bits; sustained 512 b / 119 cyc
    // * 800 MHz = 3.44 Gb/s per channel, with a much higher 64-bit demand
    // latency than D-RaNGe: a full 119-cycle round must complete before
    // the first 64 bits are available.
    m.bitsPerRound = 512.0;
    m.roundLatency = 119;
    m.switchInLatency = 16;
    m.switchOutLatency = 12;
    return m;
}

TrngMechanism
TrngMechanism::withSystemThroughput(double mbps, unsigned channels)
{
    assert(mbps > 0.0 && channels > 0);
    TrngMechanism m = dRange();
    m.name = "sweep-" + std::to_string(static_cast<int>(mbps)) + "Mbps";
    const double per_channel = mbps / channels;
    // Hold D-RaNGe's round latency fixed (the paper's Figure 2 isolates
    // throughput) and scale the per-round yield.
    m.bitsPerRound = per_channel * 1e6 *
                     (static_cast<double>(m.roundLatency) / kBusFreqHz);
    return m;
}

} // namespace dstrange::trng
