#include "trng/postprocess.h"

#include "trng/sha256.h"

namespace dstrange::trng {

bool
VonNeumannCorrector::feed(bool raw_bit, bool &out_bit)
{
    bitsIn++;
    if (!havePending) {
        havePending = true;
        pendingBit = raw_bit;
        return false;
    }
    havePending = false;
    if (pendingBit == raw_bit)
        return false; // Concordant pair: discard.
    out_bit = pendingBit;
    bitsEmitted++;
    return true;
}

std::vector<std::uint8_t>
VonNeumannCorrector::process(const std::vector<std::uint8_t> &raw)
{
    std::vector<std::uint8_t> out;
    std::uint8_t acc = 0;
    unsigned nbits = 0;
    for (std::uint8_t byte : raw) {
        for (int b = 0; b < 8; ++b) {
            bool out_bit = false;
            if (feed((byte >> b) & 1, out_bit)) {
                acc |= static_cast<std::uint8_t>(out_bit) << nbits;
                if (++nbits == 8) {
                    out.push_back(acc);
                    acc = 0;
                    nbits = 0;
                }
            }
        }
    }
    return out; // Trailing partial byte is dropped (caller re-feeds).
}

double
VonNeumannCorrector::efficiency() const
{
    return bitsIn == 0 ? 0.0
                       : static_cast<double>(bitsEmitted) /
                             static_cast<double>(bitsIn);
}

void
Sha256Conditioner::feed(const std::vector<std::uint8_t> &raw,
                        std::vector<std::uint8_t> &out)
{
    pending.insert(pending.end(), raw.begin(), raw.end());
    std::size_t offset = 0;
    while (pending.size() - offset >= 64) {
        Sha256 h;
        h.update(pending.data() + offset, 64);
        const auto digest = h.digest();
        out.insert(out.end(), digest.begin(), digest.end());
        offset += 64;
    }
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(offset));
}

} // namespace dstrange::trng
