#include "fault/fault_plane.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "trng/bit_quality.h"

namespace dstrange::fault {

namespace {

// Cell-ranking salts, independent of the block-synthesis hash streams
// in fault_registry.cpp so classification never correlates with data.
constexpr std::uint64_t kRankSalt = 0x2545f4914f6cdd1dULL;
constexpr std::uint64_t kRankChannelSalt = 0xff51afd7ed558ccdULL;
constexpr std::uint64_t kRankCellSalt = 0xc4ceb9fe1a85ec53ULL;

bool
listsKey(const std::string &models, const char *key)
{
    std::istringstream iss(models);
    std::string item;
    while (std::getline(iss, item, ','))
        if (item == key)
            return true;
    return false;
}

} // namespace

bool
hasCellModels(const FaultConfig &cfg)
{
    std::istringstream iss(cfg.models);
    std::string item;
    while (std::getline(iss, item, ','))
        if (!item.empty() && item != "outage")
            return true;
    return false;
}

bool
hasOutageModel(const FaultConfig &cfg)
{
    return cfg.outagePeriod > 0 && cfg.outageDuration > 0 &&
           listsKey(cfg.models, "outage");
}

void
FaultReport::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("models").value(models);
    w.key("monitor").value(monitor);
    w.key("rounds_audited").value(roundsAudited);
    w.key("rounds_discarded").value(roundsDiscarded);
    w.key("discards_stuck").value(discardsStuck);
    w.key("discards_weak").value(discardsWeak);
    w.key("discards_other").value(discardsOther);
    w.key("corrupted_bits").value(corruptedBits);
    w.key("blacklisted").value(blacklisted);
    w.key("remapped").value(remapped);
    w.key("forced_blacklists").value(forcedBlacklists);
    w.key("blacklist_exhausted").value(blacklistExhausted);
    w.endObject();
}

FaultReport
FaultReport::fromJson(const JsonValue &v)
{
    FaultReport r;
    r.models = v.at("models").asString();
    r.monitor = v.at("monitor").asBool();
    r.roundsAudited = v.at("rounds_audited").asU64();
    r.roundsDiscarded = v.at("rounds_discarded").asU64();
    r.discardsStuck = v.at("discards_stuck").asU64();
    r.discardsWeak = v.at("discards_weak").asU64();
    r.discardsOther = v.at("discards_other").asU64();
    r.corruptedBits = v.at("corrupted_bits").asU64();
    r.blacklisted = v.at("blacklisted").asU64();
    r.remapped = v.at("remapped").asU64();
    r.forcedBlacklists = v.at("forced_blacklists").asU64();
    r.blacklistExhausted = v.at("blacklist_exhausted").asU64();
    return r;
}

FaultPlane::FaultPlane(const FaultConfig &config, unsigned n_channels)
    : cfg(config), models(makeModels(config))
{
    bool want_stuck = false;
    bool want_weak = false;
    for (const auto &m : models) {
        if (m->name() == "stuck-row")
            want_stuck = true;
        else if (m->name() == "weak-cell")
            want_weak = true;
    }
    counters.models = cfg.models;
    counters.monitor = cfg.monitor;

    const std::uint32_t cells = std::max(1u, cfg.cellsPerChannel);
    channels.resize(n_channels);
    for (unsigned ch = 0; ch < n_channels; ++ch) {
        ChannelState &st = channels[ch];
        // Deterministic fault assignment: rank the active ids by hash;
        // the worst-ranked become stuck, the next tier weak. Counts for
        // unlisted models collapse to zero, so e.g. `models=bitflip`
        // leaves every cell healthy.
        std::vector<std::pair<std::uint64_t, std::uint32_t>> rank;
        rank.reserve(cells);
        for (std::uint32_t id = 0; id < cells; ++id)
            rank.emplace_back(mix64(cfg.seed ^ kRankSalt ^
                                    ch * kRankChannelSalt ^
                                    id * kRankCellSalt),
                              id);
        std::sort(rank.begin(), rank.end());
        const std::uint32_t n_stuck =
            want_stuck ? std::min<std::uint32_t>(cfg.stuckRows, cells)
                       : 0;
        const std::uint32_t n_weak =
            want_weak ? std::min<std::uint32_t>(cfg.weakCells,
                                                cells - n_stuck)
                      : 0;
        std::vector<CellClass> cls(cells, CellClass::Healthy);
        for (std::uint32_t i = 0; i < n_stuck; ++i)
            cls[rank[i].second] = CellClass::Stuck;
        for (std::uint32_t i = n_stuck; i < n_stuck + n_weak; ++i)
            cls[rank[i].second] = CellClass::Weak;

        st.pool.reserve(cells);
        for (std::uint32_t id = 0; id < cells; ++id)
            st.pool.push_back(Cell{id, cls[id], 0, 0});
        // Spares are screened healthy cells above the active range,
        // consumed highest-id-first (pop_back) for determinism.
        st.spares.reserve(cfg.spareCells);
        for (std::uint32_t s = 0; s < cfg.spareCells; ++s)
            st.spares.push_back(cells + s);
        st.peekExtraUses.assign(st.pool.size(), 0);
    }
}

FaultPlane::~FaultPlane() = default;

FaultPlane::Audit
FaultPlane::evalRound(unsigned channel, const Cell &cell,
                      std::uint64_t use) const
{
    RoundContext ctx;
    ctx.seed = cfg.seed;
    ctx.channel = channel;
    ctx.cell = cell.id;
    ctx.use = use;
    ctx.cls = cell.cls;
    if (cell.cls == CellClass::Weak) {
        unsigned k = std::max(1u, cfg.weakSeverity);
        if (cfg.driftInterval > 0) {
            const std::uint64_t steps = use / cfg.driftInterval;
            k = steps >= k - 1 ? 1 : k - static_cast<unsigned>(steps);
        }
        ctx.severity = k;
    }

    AuditBlock block = healthyBlock(ctx);
    Audit a;
    for (const auto &m : models)
        a.flips += m->corrupt(block, ctx);
    const std::vector<std::uint8_t> bytes(block.begin(), block.end());
    a.pass = trng::monobitTest(bytes).pass && trng::runsTest(bytes).pass;
    return a;
}

void
FaultPlane::blacklistCell(ChannelState &st, std::size_t index)
{
    counters.blacklisted++;
    if (!st.spares.empty()) {
        const std::uint32_t id = st.spares.back();
        st.spares.pop_back();
        st.pool[index] = Cell{id, CellClass::Healthy, 0, 0};
        counters.remapped++;
        return;
    }
    counters.blacklistExhausted++;
    // Never empty the pool: with one cell left the channel limps on,
    // discarding whatever that cell produces.
    if (st.pool.size() <= 1)
        return;
    st.pool.erase(st.pool.begin() +
                  static_cast<std::ptrdiff_t>(index));
    if (index < st.pointer)
        --st.pointer;
    if (st.pointer >= st.pool.size())
        st.pointer = 0;
}

bool
FaultPlane::onRound(unsigned channel, bool demand_waiting)
{
    ChannelState &st = channels[channel];
    const std::size_t idx = st.pointer;
    Cell &c = st.pool[idx];
    const Audit a = evalRound(channel, c, c.useCount);
    c.useCount++;
    st.pointer = (st.pointer + 1) % st.pool.size();

    if (a.pass) {
        counters.roundsAudited++;
        counters.corruptedBits += a.flips;
        st.consecDiscards = 0;
        return true;
    }

    counters.roundsDiscarded++;
    switch (c.cls) {
      case CellClass::Stuck:
        counters.discardsStuck++;
        break;
      case CellClass::Weak:
        counters.discardsWeak++;
        break;
      case CellClass::Healthy:
        counters.discardsOther++;
        break;
    }
    c.failCount++;
    bool retired = false;
    if (cfg.monitor && c.failCount >= cfg.blacklistThreshold) {
        blacklistCell(st, idx);
        retired = true;
    }
    if (cfg.monitor && demand_waiting &&
        ++st.consecDiscards >= cfg.retryLimit) {
        // Bounded retry-then-refill: demand has starved through
        // retryLimit consecutive discards — stop retrying the rotation
        // and force the offender out so the next refill can succeed.
        if (!retired) {
            counters.forcedBlacklists++;
            blacklistCell(st, idx);
        }
        st.consecDiscards = 0;
    }
    return false;
}

void
FaultPlane::commitRound(unsigned channel)
{
    ChannelState &st = channels[channel];
    Cell &c = st.pool[st.pointer];
    const Audit a = evalRound(channel, c, c.useCount);
    assert(a.pass && "fast-forward replayed a failing round");
    c.useCount++;
    st.pointer = (st.pointer + 1) % st.pool.size();
    counters.roundsAudited++;
    counters.corruptedBits += a.flips;
    st.consecDiscards = 0;
}

void
FaultPlane::beginPeek()
{
    for (ChannelState &st : channels) {
        st.peekPointer = st.pointer;
        st.peekExtraUses.assign(st.pool.size(), 0);
    }
}

bool
FaultPlane::peekRound(unsigned channel)
{
    ChannelState &st = channels[channel];
    const std::size_t idx = st.peekPointer;
    const Cell &c = st.pool[idx];
    const Audit a =
        evalRound(channel, c, c.useCount + st.peekExtraUses[idx]);
    st.peekExtraUses[idx]++;
    st.peekPointer = (st.peekPointer + 1) % st.pool.size();
    return a.pass;
}

unsigned
FaultPlane::faultyActive(unsigned channel) const
{
    unsigned n = 0;
    for (const Cell &c : channels[channel].pool)
        if (c.cls != CellClass::Healthy)
            ++n;
    return n;
}

unsigned
FaultPlane::sparesLeft(unsigned channel) const
{
    return static_cast<unsigned>(channels[channel].spares.size());
}

std::string
FaultPlane::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const ChannelState &st : channels) {
        h = mix64(h ^ st.pointer);
        h = mix64(h ^ st.consecDiscards);
        h = mix64(h ^ st.spares.size());
        for (const Cell &c : st.pool) {
            h = mix64(h ^ c.id);
            h = mix64(h ^ c.useCount);
            h = mix64(h ^ c.failCount);
            h = mix64(h ^ static_cast<std::uint64_t>(c.cls));
        }
    }
    std::ostringstream o;
    o << "fault.audited=" << counters.roundsAudited << '\n'
      << "fault.discarded=" << counters.roundsDiscarded << '\n'
      << "fault.corrupted=" << counters.corruptedBits << '\n'
      << "fault.blacklisted=" << counters.blacklisted << '\n'
      << "fault.state=" << std::hex << h << '\n';
    return o.str();
}

} // namespace dstrange::fault
