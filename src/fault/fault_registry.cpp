#include "fault/fault_registry.h"

#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/registry_key.h"
#include "common/rng.h"

namespace dstrange::fault {

namespace {

// Distinct salts keep every hash stream independent: the healthy block,
// each model's draws, and the plane's cell ranking never correlate.
constexpr std::uint64_t kChannelSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kCellSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kUseSalt = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kWordSalt = 0x27d4eb2f165667c5ULL;
constexpr std::uint64_t kFlipSalt = 0x85ebca6b2b2ae35ULL;
constexpr std::uint64_t kStuckSalt = 0xb492b66fbe98f273ULL;
constexpr std::uint64_t kWeakSalt = 0x9ae16a3b2f90404fULL;

std::uint64_t
blockSeed(const RoundContext &ctx)
{
    return mix64(ctx.seed ^ ctx.channel * kChannelSalt ^
                 ctx.cell * kCellSalt ^ ctx.use * kUseSalt);
}

void
storeWord(AuditBlock &block, unsigned word, std::uint64_t v)
{
    for (unsigned b = 0; b < 8; ++b)
        block[word * 8 + b] = static_cast<std::uint8_t>(v >> (8 * b));
}

std::uint64_t
loadWord(const AuditBlock &block, unsigned word)
{
    std::uint64_t v = 0;
    for (unsigned b = 0; b < 8; ++b)
        v |= static_cast<std::uint64_t>(block[word * 8 + b]) << (8 * b);
    return v;
}

/** Transient single-bit upsets: flips survive the audit (the block
 *  stays statistically healthy), so they count as silently corrupted
 *  bits delivered downstream. */
class BitflipModel final : public FaultModel
{
  public:
    explicit BitflipModel(const FaultConfig &cfg) : rate(cfg.bitflipRate)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "bitflip";
        return n;
    }

    std::uint64_t
    corrupt(AuditBlock &block, const RoundContext &ctx) const override
    {
        if (rate <= 0.0)
            return 0;
        const double expected = 256.0 * rate;
        const std::uint64_t whole =
            static_cast<std::uint64_t>(expected);
        const double frac = expected - static_cast<double>(whole);
        const std::uint64_t base = blockSeed(ctx) ^ kFlipSalt;
        const double u =
            static_cast<double>(mix64(base) >> 11) * 0x1.0p-53;
        std::uint64_t flips = whole + (u < frac ? 1 : 0);
        // XOR through a mask so colliding draws cancel and the returned
        // count is the number of bits actually changed.
        AuditBlock mask{};
        for (std::uint64_t j = 0; j < flips; ++j) {
            const std::uint64_t pos = mix64(base ^ (j + 1)) & 255;
            mask[pos >> 3] ^= static_cast<std::uint8_t>(1u << (pos & 7));
        }
        std::uint64_t changed = 0;
        for (unsigned i = 0; i < block.size(); ++i) {
            block[i] ^= mask[i];
            changed += static_cast<unsigned>(
                __builtin_popcount(static_cast<unsigned>(mask[i])));
        }
        return changed;
    }

  private:
    double rate;
};

/** Ones-biased cells: each output word is ORed with an AND of k random
 *  masks, pushing ones-density to 1/2 + 2^-(k+1). The audit's monobit
 *  test catches the bias with probability rising as k shrinks (entropy
 *  drift lowers k over use). Audit-visible, so no silent corruption. */
class WeakCellModel final : public FaultModel
{
  public:
    explicit WeakCellModel(const FaultConfig &) {}

    const std::string &
    name() const override
    {
        static const std::string n = "weak-cell";
        return n;
    }

    std::uint64_t
    corrupt(AuditBlock &block, const RoundContext &ctx) const override
    {
        if (ctx.cls != CellClass::Weak)
            return 0;
        const unsigned k = ctx.severity > 0 ? ctx.severity : 1;
        const std::uint64_t base = blockSeed(ctx) ^ kWeakSalt;
        for (unsigned w = 0; w < 4; ++w) {
            std::uint64_t bias = ~0ULL;
            for (unsigned d = 0; d < k; ++d)
                bias &= mix64(base ^ (w * 8 + d + 1));
            storeWord(block, w, loadWord(block, w) | bias);
        }
        return 0;
    }
};

/** Stuck-at rows: the whole block reads all-zeros or all-ones (the
 *  polarity is a per-cell hash). The audit always catches these. */
class StuckRowModel final : public FaultModel
{
  public:
    explicit StuckRowModel(const FaultConfig &) {}

    const std::string &
    name() const override
    {
        static const std::string n = "stuck-row";
        return n;
    }

    std::uint64_t
    corrupt(AuditBlock &block, const RoundContext &ctx) const override
    {
        if (ctx.cls != CellClass::Stuck)
            return 0;
        const std::uint64_t h = mix64(ctx.seed ^ kStuckSalt ^
                                      ctx.channel * kChannelSalt ^
                                      ctx.cell * kCellSalt);
        block.fill((h & 1) ? 0xff : 0x00);
        return 0;
    }
};

/** Timed rank/channel outages live in the "faulty" decorator backend
 *  (fault/faulty_backend.h), not in audit blocks; the registry entry
 *  exists so `fault.models=outage` validates and enumerates like every
 *  other key. */
class OutageModel final : public FaultModel
{
  public:
    explicit OutageModel(const FaultConfig &) {}

    const std::string &
    name() const override
    {
        static const std::string n = "outage";
        return n;
    }

    std::uint64_t
    corrupt(AuditBlock &, const RoundContext &) const override
    {
        return 0;
    }
};

} // namespace

AuditBlock
healthyBlock(const RoundContext &ctx)
{
    const std::uint64_t base = blockSeed(ctx);
    AuditBlock block{};
    for (unsigned w = 0; w < 4; ++w)
        storeWord(block, w, mix64(base ^ (w + 1) * kWordSalt));
    return block;
}

FaultRegistry::FaultRegistry()
{
    add("bitflip", [](const FaultConfig &cfg) {
        return std::make_unique<BitflipModel>(cfg);
    });
    add("weak-cell", [](const FaultConfig &cfg) {
        return std::make_unique<WeakCellModel>(cfg);
    });
    add("stuck-row", [](const FaultConfig &cfg) {
        return std::make_unique<StuckRowModel>(cfg);
    });
    add("outage", [](const FaultConfig &cfg) {
        return std::make_unique<OutageModel>(cfg);
    });
}

FaultRegistry &
FaultRegistry::instance()
{
    static FaultRegistry registry;
    return registry;
}

void
FaultRegistry::add(const std::string &key, FaultModelFactory factory)
{
    validateRegistryKey("fault model", key);
    // Keys also travel inside the comma-joined fault.models value.
    if (key.find(',') != std::string::npos)
        throw std::invalid_argument("fault model key '" + key +
                                    "' must not contain a comma");
    if (!factory)
        throw std::invalid_argument("fault model factory for '" + key +
                                    "' must not be empty");
    std::unique_lock<std::shared_mutex> lock(mu);
    if (!factories.emplace(key, std::move(factory)).second)
        throw std::invalid_argument("fault model '" + key +
                                    "' is already registered");
}

std::unique_ptr<FaultModel>
FaultRegistry::make(const std::string &key, const FaultConfig &cfg) const
{
    // Copy the factory out so user factories run lock-free (one that
    // registers another model from inside would otherwise deadlock).
    FaultModelFactory factory;
    {
        std::shared_lock<std::shared_mutex> lock(mu);
        const auto it = factories.find(key);
        if (it == factories.end()) {
            std::string known;
            for (const auto &[k, f] : factories)
                known += (known.empty() ? "" : ", ") + k;
            throw std::out_of_range("unknown fault model '" + key +
                                    "' (registered: " + known + ")");
        }
        factory = it->second;
    }
    return factory(cfg);
}

bool
FaultRegistry::contains(const std::string &key) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return factories.count(key) != 0;
}

std::vector<std::string>
FaultRegistry::keys() const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto &[key, factory] : factories)
        out.push_back(key);
    return out;
}

std::vector<std::unique_ptr<FaultModel>>
makeModels(const FaultConfig &cfg)
{
    std::vector<std::unique_ptr<FaultModel>> models;
    std::istringstream iss(cfg.models);
    std::string key;
    while (std::getline(iss, key, ','))
        if (!key.empty())
            models.push_back(FaultRegistry::instance().make(key, cfg));
    return models;
}

} // namespace dstrange::fault
