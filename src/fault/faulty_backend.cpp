#include "fault/faulty_backend.h"

#include <utility>

#include "common/rng.h"

namespace dstrange::fault {

namespace {

constexpr std::uint64_t kPhaseSalt = 0x60642e2a34326f15ULL;
constexpr std::uint64_t kRankPickSalt = 0x3c79ac492ba7b653ULL;

} // namespace

FaultyBackend::FaultyBackend(std::unique_ptr<mem::MemoryBackend> in,
                             const FaultConfig &cfg,
                             unsigned channel_index)
    : inner(std::move(in)), period(cfg.outagePeriod),
      duration(cfg.outageDuration),
      rankScope(cfg.outageScope == "rank")
{
    if (period > 0) {
        phase =
            mix64(cfg.seed ^ kPhaseSalt ^ channel_index) % period;
        if (duration > period)
            duration = period; // A window can't outlast its period.
    }
    const unsigned ranks = inner->numRanks();
    if (ranks > 0)
        affectedRank = static_cast<unsigned>(
            mix64(cfg.seed ^ kRankPickSalt ^ channel_index) % ranks);
}

bool
FaultyBackend::outageActive(Cycle now) const
{
    if (period == 0 || duration == 0 || now < phase)
        return false;
    return (now - phase) % period < duration;
}

Cycle
FaultyBackend::nextOutageEdge(Cycle now) const
{
    if (period == 0 || duration == 0)
        return kNoEvent;
    if (now < phase)
        return phase;
    const Cycle pos = (now - phase) % period;
    return pos < duration ? now + (duration - pos)
                          : now + (period - pos);
}

bool
FaultyBackend::canIssue(dram::DramCmd cmd, unsigned bankIdx,
                        Cycle now) const
{
    if (outageActive(now) &&
        (!rankScope || inner->rankOf(bankIdx) == affectedRank))
        return false;
    return inner->canIssue(cmd, bankIdx, now);
}

bool
FaultyBackend::refreshBusy(Cycle now) const
{
    // A channel-scope outage blocks like a long refresh, which also
    // keeps the engine/fill paths (all gated on refreshBusy) out of the
    // window. Rank-scope outages leave the channel schedulable.
    return inner->refreshBusy(now) ||
           (!rankScope && outageActive(now));
}

Cycle
FaultyBackend::nextEventCycle(Cycle now, bool engine_active) const
{
    const Cycle inner_ev = inner->nextEventCycle(now, engine_active);
    const Cycle edge = nextOutageEdge(now);
    return edge < inner_ev ? edge : inner_ev;
}

} // namespace dstrange::fault
