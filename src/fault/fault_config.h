/**
 * @file
 * Configuration of the deterministic fault-injection layer. Kept free
 * of heavy includes so sim/sim_config.h and mem/memory_controller.h can
 * embed it; all fields travel through the canonical config text as
 * `fault.*` keys, so faulty cells are cacheable and shardable like any
 * other sweep cell.
 */

#ifndef DSTRANGE_FAULT_FAULT_CONFIG_H
#define DSTRANGE_FAULT_FAULT_CONFIG_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace dstrange::fault {

/**
 * Knobs of the seeded fault-injection layer. `models` is the master
 * switch: a comma-separated list of fault::FaultRegistry keys (empty =
 * no injection, the default — a default-constructed config is inert and
 * bit-identical to the pre-fault simulator). Every injected fault is a
 * pure hash of (seed, channel, cell, per-cell use count), so runs are
 * reproducible and the fast-forward engine can replay tick-path
 * decisions bit-identically.
 */
struct FaultConfig
{
    /** CSV of FaultRegistry keys ("bitflip", "weak-cell", "stuck-row",
     *  "outage"); empty = fault injection off. */
    std::string models;
    /** Fault-stream seed, independent of the simulation seed so fault
     *  environments can be varied against a fixed workload. */
    std::uint64_t seed = 1;
    /** Expected flipped bits per 256-bit audit block ("bitflip"). */
    double bitflipRate = 0.02;
    /** Active RNG cells rotated round-robin per channel. */
    unsigned cellsPerChannel = 64;
    /** Cells classified weak per channel ("weak-cell"). */
    unsigned weakCells = 8;
    /** Initial weak-cell bias exponent k: ones-density 1/2 + 2^-(k+1),
     *  so larger = milder (k=3 fails its audit intermittently, k=1
     *  always). */
    unsigned weakSeverity = 3;
    /** Uses per one-step severity decay toward k=1 (entropy drift);
     *  0 = stable cells. */
    std::uint64_t driftInterval = 0;
    /** Cells stuck at all-zeros/all-ones per channel ("stuck-row"). */
    unsigned stuckRows = 2;
    /** Healthy screened spare cells per channel available to the health
     *  monitor for remapping blacklisted cells. */
    unsigned spareCells = 16;
    /** Audit failures before the health monitor blacklists a cell. */
    unsigned blacklistThreshold = 3;
    /** Consecutive discarded rounds while demand is waiting before the
     *  monitor force-blacklists the failing cell (the bounded
     *  retry-then-refill path). */
    unsigned retryLimit = 8;
    /** Health monitor (blacklist/remap mitigation) enabled. Injection
     *  with the monitor off measures the unmitigated system. */
    bool monitor = true;
    /** Cycles between outage windows ("outage"; 0 = none even when the
     *  model is listed). */
    Cycle outagePeriod = 0;
    /** Outage window length in cycles. */
    Cycle outageDuration = 0;
    /** Outage blast radius: "channel" blocks the whole channel,
     *  "rank" only the banks of one seeded-per-channel rank. */
    std::string outageScope = "channel";

    /** Fault injection active (any model listed)? */
    bool enabled() const { return !models.empty(); }
};

} // namespace dstrange::fault

#endif // DSTRANGE_FAULT_FAULT_CONFIG_H
