/**
 * @file
 * String-keyed registry of composable fault models. A fault model is a
 * *pure* corruption of the 256-bit raw audit block a TRNG round exposes
 * to the health monitor: given the same RoundContext it must produce
 * the same corruption, because the fast-forward engine re-evaluates
 * rounds it skipped and the result has to match the tick path bit for
 * bit. Models listed in FaultConfig::models compose in list order.
 */

#ifndef DSTRANGE_FAULT_FAULT_REGISTRY_H
#define DSTRANGE_FAULT_FAULT_REGISTRY_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "fault/fault_config.h"

namespace dstrange::fault {

/** Health classification assigned to a cell at plane construction. */
enum class CellClass : std::uint8_t
{
    Healthy = 0,
    Weak = 1,  ///< Biased ones-density, optionally drifting worse.
    Stuck = 2, ///< Row stuck at all-zeros or all-ones.
};

/**
 * Everything a fault model may consult for one round. Values only — a
 * model must stay a pure function of this context (no internal state),
 * which is what makes skipped-span replay deterministic.
 */
struct RoundContext
{
    std::uint64_t seed = 0;  ///< FaultConfig::seed.
    unsigned channel = 0;
    std::uint32_t cell = 0;  ///< Cell id within the channel's pool.
    std::uint64_t use = 0;   ///< Per-cell use count before this round.
    CellClass cls = CellClass::Healthy;
    unsigned severity = 0;   ///< Effective weak bias exponent k.
};

/** A TRNG round's raw audit block: 256 bits read back for testing. */
using AuditBlock = std::array<std::uint8_t, 32>;

/** The deterministic healthy block for a round (before corruption). */
AuditBlock healthyBlock(const RoundContext &ctx);

/**
 * One composable corruption of a round's audit block.
 *
 * @return the number of bits flipped relative to the input block that
 *         would survive into delivered output if the round's audit
 *         passes (silent corruption accounting); class-level
 *         corruptions (stuck/weak) that the audit is expected to catch
 *         return 0.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    virtual const std::string &name() const = 0;

    virtual std::uint64_t corrupt(AuditBlock &block,
                                  const RoundContext &ctx) const = 0;
};

/** Factory producing one configured fault model. */
using FaultModelFactory =
    std::function<std::unique_ptr<FaultModel>(const FaultConfig &)>;

/**
 * Process-global fault-model registry. Built-in models are registered
 * on first access:
 *
 *   "bitflip"    transient bit flips in otherwise healthy blocks —
 *                rarely fails the audit, so flipped bits are *silent*
 *                corruption delivered downstream
 *   "weak-cell"  ones-biased cells with optional severity drift; the
 *                audit catches them with probability rising in bias
 *   "stuck-row"  all-zeros/all-ones rows; the audit always catches them
 *   "outage"     timed rank/channel unavailability windows (applied by
 *                the "faulty" decorator MemoryBackend, not to blocks)
 *
 * Thread-safe: lookups take a shared lock and add() an exclusive one,
 * so parallel sweeps can build fault planes while user code registers
 * new models.
 */
class FaultRegistry
{
  public:
    static FaultRegistry &instance();

    /**
     * Register a factory under @p key.
     * @throws std::invalid_argument if @p key is empty, contains
     *         whitespace or a comma, or is already taken.
     */
    void add(const std::string &key, FaultModelFactory factory);

    /**
     * Instantiate the model registered under @p key.
     * @throws std::out_of_range if @p key is unknown (the message lists
     *         the registered keys).
     */
    std::unique_ptr<FaultModel> make(const std::string &key,
                                     const FaultConfig &cfg) const;

    bool contains(const std::string &key) const;

    /** Registered keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    FaultRegistry();

    mutable std::shared_mutex mu;
    std::map<std::string, FaultModelFactory> factories;
};

/**
 * Split FaultConfig::models on commas and instantiate each key.
 * @throws std::out_of_range for unknown keys.
 */
std::vector<std::unique_ptr<FaultModel>>
makeModels(const FaultConfig &cfg);

} // namespace dstrange::fault

#endif // DSTRANGE_FAULT_FAULT_REGISTRY_H
